# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test vet hogvet simvet certify certify-tier lint bench bench-compare examples experiments tenants tiering verify golden trace chaos fuzz clean

build:
	go build ./...

vet:
	go vet ./...

# Static hint-safety gate: hogc -vet exits non-zero on error-severity
# findings, over both the .hog sources in the tree and the built-in
# benchmarks.
hogvet: build
	@for f in examples/*.hog internal/compiler/testdata/*.hog; do \
		echo "hogc -vet $$f"; \
		go run ./cmd/hogc -vet -stats=false $$f >/dev/null || exit 1; \
	done
	@for b in `go run ./cmd/memhog list`; do \
		echo "hogc -vet -bench $$b"; \
		go run ./cmd/hogc -vet -stats=false -bench $$b >/dev/null || exit 1; \
	done

# Simulator-source invariants: the seven SV passes (determinism,
# map-order, emit pairing, nil-safe recorders, dropped errors,
# hot-path allocations, stale suppressions) over the whole module.
# Exits non-zero on any diagnostic.
simvet: build
	go run ./cmd/simvet ./...

# hogflow residency certificates: every benchmark's report must match
# its golden listing, and the listing must not depend on the campaign
# worker count.
certify: build
	@for b in `go run ./cmd/memhog list`; do \
		echo "memhog certify $$b"; \
		go run ./cmd/memhog certify $$b > /tmp/memhog-cert-got.txt; \
		{ echo "==== $$b ===="; cat internal/footprint/testdata/$$b.cert.golden; echo; } \
			| diff -u - /tmp/memhog-cert-got.txt || exit 1; \
	done
	@go run ./cmd/memhog -j 1 certify > /tmp/memhog-cert-j1.txt
	@go run ./cmd/memhog -j 8 certify > /tmp/memhog-cert-j8.txt
	@cmp /tmp/memhog-cert-j1.txt /tmp/memhog-cert-j8.txt
	@echo "certify: six goldens match, worker-count independent"

# Two-tier residency certificates: every benchmark's `certify -far`
# report must match its per-ratio golden listings, and the listing
# must not depend on the campaign worker count.
certify-tier: build
	@for b in `go run ./cmd/memhog list`; do \
		echo "memhog certify -far $$b"; \
		go run ./cmd/memhog certify -far $$b > /tmp/memhog-tiercert-got.txt; \
		for r in 1:0 3:1 1:1 1:3; do \
			f=`echo $$r | tr : -`; \
			echo "==== $$b @ $$r ===="; \
			cat internal/footprint/testdata/$$b.tier$$f.cert.golden; \
			echo; \
		done | diff -u - /tmp/memhog-tiercert-got.txt || exit 1; \
	done
	@go run ./cmd/memhog -j 1 certify -far > /tmp/memhog-tiercert-j1.txt
	@go run ./cmd/memhog -j 8 certify -far > /tmp/memhog-tiercert-j8.txt
	@cmp /tmp/memhog-tiercert-j1.txt /tmp/memhog-tiercert-j8.txt
	@echo "certify-tier: 24 tier goldens match, worker-count independent"

lint: build vet hogvet simvet certify certify-tier

test: build vet
	go test ./...

# Scaled-machine campaign + ablations; minutes. BenchmarkSimMatrix
# also writes BENCH_sim.json (events/sec and virtual-seconds per wall
# second for every benchmark × version) for regression tracking.
bench:
	go test -run XXX -bench=. -benchmem ./...
	@test -f BENCH_sim.json || { echo "bench: BenchmarkSimMatrix never wrote BENCH_sim.json" >&2; exit 1; }
	@echo "bench: wrote BENCH_sim.json"

# Perf regression gate: rerun the simulator-throughput matrix once per
# cell and diff it against the committed baseline. Fails on any cell
# more than 25% below BENCH_baseline.json; refresh the baseline (copy
# BENCH_sim.json over it) only with a justification in the PR.
bench-compare: build
	@rm -f BENCH_sim.json
	go test -run XXX -bench BenchmarkSimMatrix -benchtime 1x .
	@test -f BENCH_sim.json || { echo "bench-compare: BenchmarkSimMatrix never wrote BENCH_sim.json" >&2; exit 1; }
	go run ./cmd/benchdiff -baseline BENCH_baseline.json -fresh BENCH_sim.json -max-regress 0.25

examples:
	go run ./examples/quickstart
	go run ./examples/interactive
	go run ./examples/stencil
	go run ./examples/indirect
	go run ./examples/timeline

# Full Table-1 platform; 10-15 minutes serial. `-j 0` runs the
# campaign's independent simulations on one worker per CPU with
# byte-identical output.
experiments:
	go run ./cmd/memhog -j 0 all

# Multi-tenant smoke: the NUMA-sharded campaign on the scaled machine
# must produce byte-identical tables at any worker count.
tenants: build
	@go run ./cmd/memhog -quick -quiet -j 1 tenants > /tmp/memhog-tenants-j1.txt
	@go run ./cmd/memhog -quick -quiet -j 4 tenants > /tmp/memhog-tenants-j4.txt
	@cmp /tmp/memhog-tenants-j1.txt /tmp/memhog-tenants-j4.txt
	@cat /tmp/memhog-tenants-j1.txt
	@echo "tenants: deterministic at any -j"

# Memory-tiering smoke: the DRAM:far sweep on the scaled machine must
# produce byte-identical tables at any worker count (the command also
# fails if Buffered ever takes more hard faults than Original).
tiering: build
	@go run ./cmd/memhog -quick -quiet -j 1 tiering > /tmp/memhog-tiering-j1.txt
	@go run ./cmd/memhog -quick -quiet -j 4 tiering > /tmp/memhog-tiering-j4.txt
	@cmp /tmp/memhog-tiering-j1.txt /tmp/memhog-tiering-j4.txt
	@cat /tmp/memhog-tiering-j1.txt
	@echo "tiering: deterministic at any -j"

# Check the paper's claims at full scale; exits non-zero on failure.
verify:
	go run ./cmd/memhog verify

# Regenerate the compiler's golden listings after intentional analysis
# changes.
golden:
	go run ./cmd/gen-golden

# Flight-recorder smoke test: the Chrome trace export must be valid
# JSON and byte-identical at any worker-pool setting.
trace: build
	@go run ./cmd/memhog -quick -quiet -j 1 trace matvec B > /tmp/memhog-trace-j1.json
	@go run ./cmd/memhog -quick -quiet -j 4 trace matvec B > /tmp/memhog-trace-j4.json
	@cmp /tmp/memhog-trace-j1.json /tmp/memhog-trace-j4.json
	@python3 -m json.tool /tmp/memhog-trace-j1.json > /dev/null
	@echo "trace: deterministic, valid JSON ($$(wc -c < /tmp/memhog-trace-j1.json) bytes)"

# Fault injection: the chaos property harness and the quick chaos
# matrix (benchmarks × versions × fault classes, continuously audited)
# under the race detector, plus a byte-identical replay check.
chaos: build
	go test -race -run 'TestChaos|TestMetamorphic' ./internal/chaostest/ ./internal/experiments/
	@go run ./cmd/memhog -quick -quiet -json chaos matvec B -seed 7 > /tmp/memhog-chaos-a.json
	@go run ./cmd/memhog -quick -quiet -json chaos matvec B -seed 7 > /tmp/memhog-chaos-b.json
	@cmp /tmp/memhog-chaos-a.json /tmp/memhog-chaos-b.json
	@echo "chaos: replay deterministic"

# Short fuzz sessions over the language front end and the chaos plan
# codec; `go test -fuzz=<name> -fuzztime=0` explores indefinitely.
fuzz:
	go test -fuzz=FuzzParse -fuzztime=10s ./internal/lang/
	go test -fuzz=FuzzVet -fuzztime=10s ./internal/lang/
	go test -fuzz=FuzzChaosPlan -fuzztime=10s ./internal/chaos/

clean:
	go clean ./...
