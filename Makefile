# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test vet hogvet lint bench examples experiments verify golden trace clean

build:
	go build ./...

vet:
	go vet ./...

# Static hint-safety gate: hogc -vet exits non-zero on error-severity
# findings, over both the .hog sources in the tree and the built-in
# benchmarks.
hogvet: build
	@for f in examples/*.hog internal/compiler/testdata/*.hog; do \
		echo "hogc -vet $$f"; \
		go run ./cmd/hogc -vet -stats=false $$f >/dev/null || exit 1; \
	done
	@for b in `go run ./cmd/memhog list`; do \
		echo "hogc -vet -bench $$b"; \
		go run ./cmd/hogc -vet -stats=false -bench $$b >/dev/null || exit 1; \
	done

lint: build vet hogvet

test: build vet
	go test ./...

# Scaled-machine campaign + ablations; minutes.
bench:
	go test -run XXX -bench=. -benchmem ./...

examples:
	go run ./examples/quickstart
	go run ./examples/interactive
	go run ./examples/stencil
	go run ./examples/indirect
	go run ./examples/timeline

# Full Table-1 platform; 10-15 minutes serial. `-j 0` runs the
# campaign's independent simulations on one worker per CPU with
# byte-identical output.
experiments:
	go run ./cmd/memhog -j 0 all

# Check the paper's claims at full scale; exits non-zero on failure.
verify:
	go run ./cmd/memhog verify

# Regenerate the compiler's golden listings after intentional analysis
# changes.
golden:
	go run ./cmd/gen-golden

# Flight-recorder smoke test: the Chrome trace export must be valid
# JSON and byte-identical at any worker-pool setting.
trace: build
	@go run ./cmd/memhog -quick -quiet -j 1 trace matvec B > /tmp/memhog-trace-j1.json
	@go run ./cmd/memhog -quick -quiet -j 4 trace matvec B > /tmp/memhog-trace-j4.json
	@cmp /tmp/memhog-trace-j1.json /tmp/memhog-trace-j4.json
	@python3 -m json.tool /tmp/memhog-trace-j1.json > /dev/null
	@echo "trace: deterministic, valid JSON ($$(wc -c < /tmp/memhog-trace-j1.json) bytes)"

clean:
	go clean ./...
