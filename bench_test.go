// Benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation, plus ablation benches for the design choices
// DESIGN.md calls out. All benches run the scaled campaign (the tiny
// test machine) so `go test -bench=.` finishes in minutes; the full
// Table 1 platform is exercised by `memhog all` and recorded in
// EXPERIMENTS.md.
//
// The interesting output is the custom metrics reported via
// b.ReportMetric (virtual seconds, normalized response, fault counts),
// not ns/op.
package memhogs

import (
	"encoding/json"
	"os"
	"strconv"
	"testing"
	"time"

	"memhogs/internal/compiler"
	"memhogs/internal/driver"
	"memhogs/internal/events"
	"memhogs/internal/experiments"
	"memhogs/internal/kernel"
	"memhogs/internal/rt"
	"memhogs/internal/sim"
	"memhogs/internal/vm"
	"memhogs/internal/workload"
)

func quickOpts() experiments.Opts { return experiments.Quick() }

// benchCampaign runs the full Versions campaign (24 simulations, the
// heaviest experiment) at one worker-pool size; comparing the two
// benchmarks below measures the campaign engine's parallel speedup.
func benchCampaign(b *testing.B, workers int) {
	b.Helper()
	o := quickOpts()
	o.Workers = workers
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunVersions(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignSerial is the one-worker baseline.
func BenchmarkCampaignSerial(b *testing.B) { benchCampaign(b, 1) }

// BenchmarkCampaignParallel runs the same campaign with one worker per
// CPU. On a >= 4-core machine expect well over 1.5x the serial
// throughput; the runs are independent simulations, so scaling is
// limited only by the compile cache's brief serialization.
func BenchmarkCampaignParallel(b *testing.B) { benchCampaign(b, 0) }

// BenchmarkTable1 renders the platform table (static).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table1(quickOpts()).String() == "" {
			b.Fatal("empty")
		}
	}
}

// BenchmarkTable2 compiles all six benchmarks and reports analysis
// sizes.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(quickOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1 reproduces Figure 1: interactive response vs sleep
// time with the original and prefetching MATVEC.
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.RunSweep(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		last := s.Sleeps[len(s.Sleeps)-1]
		b.ReportMetric(float64(s.Response[rt.ModePrefetch][last])/float64(s.Alone[last]), "P-resp-x")
		b.ReportMetric(float64(s.Response[rt.ModeOriginal][last])/float64(s.Alone[last]), "O-resp-x")
	}
}

// benchVersions runs the shared O/P/R/B dataset once per iteration.
func benchVersions(b *testing.B) *experiments.Versions {
	b.Helper()
	v, err := experiments.RunVersions(quickOpts())
	if err != nil {
		b.Fatal(err)
	}
	return v
}

// BenchmarkFig7 reproduces Figure 7: the execution-time breakdown of
// all four versions of all six benchmarks. Reported metric: mean
// speedup of buffered releasing over prefetch-only.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		v := benchVersions(b)
		if experiments.Fig7(v) == "" {
			b.Fatal("empty")
		}
		var sum, n float64
		for _, spec := range v.Specs {
			p := v.Results[spec.Name][rt.ModePrefetch].Elapsed
			bb := v.Results[spec.Name][rt.ModeBuffered].Elapsed
			if bb > 0 {
				sum += float64(p) / float64(bb)
				n++
			}
		}
		b.ReportMetric(sum/n, "P/B-speedup")
	}
}

// BenchmarkFig8 reproduces Figure 8: soft faults caused by the paging
// daemon's reference-bit invalidations.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		v := benchVersions(b)
		var pf, rel int64
		for _, spec := range v.Specs {
			pf += v.Results[spec.Name][rt.ModePrefetch].VM.SoftFaultsDaemon
			rel += v.Results[spec.Name][rt.ModeAggressive].VM.SoftFaultsDaemon
		}
		b.ReportMetric(float64(pf), "P-softfaults")
		b.ReportMetric(float64(rel), "R-softfaults")
	}
}

// BenchmarkTable3 reproduces Table 3: paging-daemon activity with and
// without releasing.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		v := benchVersions(b)
		var stolenO, stolenR int64
		for _, spec := range v.Specs {
			stolenO += v.Results[spec.Name][rt.ModeOriginal].Daemon.Stolen
			stolenR += v.Results[spec.Name][rt.ModeAggressive].Daemon.Stolen
		}
		b.ReportMetric(float64(stolenO), "O-stolen")
		b.ReportMetric(float64(stolenR), "R-stolen")
	}
}

// BenchmarkFig9 reproduces Figure 9: outcomes of freed pages.
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		v := benchVersions(b)
		if experiments.Fig9(v).String() == "" {
			b.Fatal("empty")
		}
		r := v.Results["mgrid"][rt.ModeAggressive].Phys
		if r.FreedByRelease > 0 {
			b.ReportMetric(100*float64(r.RescuedRelease)/float64(r.FreedByRelease), "mgrid-rescued-%")
		}
	}
}

// BenchmarkFig10a reproduces Figure 10(a): interactive response across
// sleep times for all MATVEC versions.
func BenchmarkFig10a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.RunSweep(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		last := s.Sleeps[len(s.Sleeps)-1]
		b.ReportMetric(float64(s.Response[rt.ModeBuffered][last])/float64(s.Alone[last]), "B-resp-x")
	}
}

// BenchmarkFig10b reproduces Figure 10(b): normalized interactive
// response for every benchmark and version at the fixed sleep time.
func BenchmarkFig10b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := experiments.RunInteractive(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		worstP, worstB := 0.0, 0.0
		for _, spec := range d.Specs {
			p := float64(d.Results[spec.Name][rt.ModePrefetch].Interactive.MeanResponse) / float64(d.Alone)
			bb := float64(d.Results[spec.Name][rt.ModeBuffered].Interactive.MeanResponse) / float64(d.Alone)
			if p > worstP {
				worstP = p
			}
			if bb > worstB {
				worstB = bb
			}
		}
		b.ReportMetric(worstP, "worst-P-x")
		b.ReportMetric(worstB, "worst-B-x")
	}
}

// BenchmarkFig10c reproduces Figure 10(c): interactive hard faults per
// sweep.
func BenchmarkFig10c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := experiments.RunInteractive(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(d.Results["matvec"][rt.ModePrefetch].Interactive.MeanPageIns, "P-pageins")
		b.ReportMetric(d.Results["matvec"][rt.ModeBuffered].Interactive.MeanPageIns, "B-pageins")
	}
}

// runScaled runs one scaled benchmark with a tweaked configuration and
// reports its virtual elapsed time.
func runScaled(b *testing.B, name string, mode rt.Mode, tweak func(*driver.RunConfig)) *driver.Result {
	b.Helper()
	spec, err := workload.ScaledByName(name)
	if err != nil {
		b.Fatal(err)
	}
	cfg := driver.TestRunConfig(mode)
	cfg.RT = rt.DefaultConfig(mode)
	if tweak != nil {
		tweak(&cfg)
	}
	r, err := driver.Run(spec, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkAblationBuffering compares aggressive releasing against
// buffered releasing on MATVEC (the paper's R-vs-B headline).
func BenchmarkAblationBuffering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := runScaled(b, "matvec", rt.ModeAggressive, nil)
		bu := runScaled(b, "matvec", rt.ModeBuffered, nil)
		b.ReportMetric(r.Elapsed.Seconds(), "R-vsec")
		b.ReportMetric(bu.Elapsed.Seconds(), "B-vsec")
		b.ReportMetric(float64(r.Phys.RescuedRelease), "R-rescues")
	}
}

// BenchmarkAblationBatchSize varies the run-time layer's release batch
// (the paper fixes 100 and notes it never experimented with it).
func BenchmarkAblationBatchSize(b *testing.B) {
	for _, batch := range []int{10, 100, 1000} {
		batch := batch
		b.Run(sizeName(batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := runScaled(b, "fftpde", rt.ModeBuffered, func(c *driver.RunConfig) {
					c.RT.ReleaseBatch = batch
				})
				b.ReportMetric(r.Elapsed.Seconds(), "vsec")
				b.ReportMetric(float64(r.Releaser.Freed), "freed")
			}
		})
	}
}

// BenchmarkAblationWorkers varies the number of prefetch worker
// threads.
func BenchmarkAblationWorkers(b *testing.B) {
	for _, workers := range []int{1, 4, 8, 16} {
		workers := workers
		b.Run(sizeName(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := runScaled(b, "matvec", rt.ModePrefetch, func(c *driver.RunConfig) {
					c.RT.Workers = workers
				})
				b.ReportMetric(r.Elapsed.Seconds(), "vsec")
				b.ReportMetric(r.Times[vm.BucketStallIO].Seconds(), "io-vsec")
			}
		})
	}
}

// BenchmarkAblationSharedPage compares lazy shared-page updates (the
// paper's choice) against immediate updates.
func BenchmarkAblationSharedPage(b *testing.B) {
	for _, immediate := range []bool{false, true} {
		immediate := immediate
		name := "lazy"
		if immediate {
			name = "immediate"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := runScaled(b, "matvec", rt.ModeBuffered, func(c *driver.RunConfig) {
					c.Kernel.PM.ImmediateUpdates = immediate
				})
				b.ReportMetric(r.Elapsed.Seconds(), "vsec")
				b.ReportMetric(float64(r.PM.SharedRefreshes), "refreshes")
			}
		})
	}
}

// BenchmarkAblationThresholdNotify evaluates §3.1.1's unexplored
// alternative: refresh the shared page when free memory drifts beyond
// a threshold, instead of only on the process's own memory activity.
func BenchmarkAblationThresholdNotify(b *testing.B) {
	for _, threshold := range []int{0, 16, 64} {
		threshold := threshold
		name := "lazy"
		if threshold > 0 {
			name = sizeName(threshold)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := runScaled(b, "fftpde", rt.ModeBuffered, func(c *driver.RunConfig) {
					c.Kernel.PM.NotifyThreshold = threshold
				})
				b.ReportMetric(r.Elapsed.Seconds(), "vsec")
				b.ReportMetric(float64(r.PM.SharedRefreshes), "refreshes")
			}
		})
	}
}

// BenchmarkAblationConservativeReleases compares the paper's
// aggressive insertion policy against the conservative §2.3.2 policy
// (skip releases whose reuse the compiler expects to exploit).
func BenchmarkAblationConservativeReleases(b *testing.B) {
	for _, aggressive := range []bool{true, false} {
		aggressive := aggressive
		name := "aggressive"
		if !aggressive {
			name = "conservative"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := runScaled(b, "matvec", rt.ModeAggressive, func(c *driver.RunConfig) {
					c.TargetTweak = func(t *compiler.Target) { t.Aggressive = aggressive }
				})
				b.ReportMetric(r.Elapsed.Seconds(), "vsec")
				b.ReportMetric(float64(r.Phys.RescuedRelease), "rescues")
			}
		})
	}
}

// BenchmarkAblationRescue compares the free-list rescue mechanism
// against reading freed pages back from swap.
func BenchmarkAblationRescue(b *testing.B) {
	for _, noRescue := range []bool{false, true} {
		noRescue := noRescue
		name := "rescue"
		if noRescue {
			name = "no-rescue"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := runScaled(b, "mgrid", rt.ModeAggressive, func(c *driver.RunConfig) {
					c.Kernel.VM.NoRescue = noRescue
				})
				b.ReportMetric(r.Elapsed.Seconds(), "vsec")
				b.ReportMetric(float64(r.VM.PageIns), "pageins")
			}
		})
	}
}

// BenchmarkAblationHardwareRefBits asks the paper's closing question:
// how much of the soft-fault overhead disappears on a machine with
// hardware reference bits?
func BenchmarkAblationHardwareRefBits(b *testing.B) {
	for _, hw := range []bool{false, true} {
		hw := hw
		name := "software"
		if hw {
			name = "hardware"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := runScaled(b, "buk", rt.ModePrefetch, func(c *driver.RunConfig) {
					c.Kernel.VM.HardwareRefBits = hw
				})
				b.ReportMetric(r.Elapsed.Seconds(), "vsec")
				b.ReportMetric(float64(r.VM.SoftFaultsDaemon), "daemon-softfaults")
			}
		})
	}
}

// BenchmarkAblationReadahead varies swap-in clustering.
func BenchmarkAblationReadahead(b *testing.B) {
	for _, ra := range []int{1, 4, 8, 16} {
		ra := ra
		b.Run(sizeName(ra), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := runScaled(b, "embar", rt.ModeOriginal, func(c *driver.RunConfig) {
					c.Kernel.VM.Readahead = ra
				})
				b.ReportMetric(r.Elapsed.Seconds(), "vsec")
				b.ReportMetric(float64(r.VM.HardFaults), "hardfaults")
			}
		})
	}
}

// BenchmarkExtensionAdaptive evaluates the paper's proposed fix for
// MGRID and FFTPDE ("generate more adaptive code"): adaptive codegen
// resolves symbolic strides at run time and tracks true trailing
// references under unknown bounds.
func BenchmarkExtensionAdaptive(b *testing.B) {
	for _, bench := range []string{"fftpde", "mgrid"} {
		bench := bench
		for _, adaptive := range []bool{false, true} {
			adaptive := adaptive
			name := bench + "/baseline"
			if adaptive {
				name = bench + "/adaptive"
			}
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					r := runScaled(b, bench, rt.ModeBuffered, func(c *driver.RunConfig) {
						c.TargetTweak = func(t *compiler.Target) { t.Adaptive = adaptive }
					})
					b.ReportMetric(r.Elapsed.Seconds(), "vsec")
					b.ReportMetric(float64(r.Phys.RescuedRelease), "rescues")
					b.ReportMetric(float64(r.Daemon.Stolen), "stolen")
				}
			})
		}
	}
}

// BenchmarkReactiveVsProactive compares the §2.2 design points: the
// VINO-style reactive scheme (OS asks the app for victims at reclaim
// time) against the paper's pro-active releasing, under the
// interactive workload. The paper predicts the reactive scheme fails
// to protect the interactive task.
func BenchmarkReactiveVsProactive(b *testing.B) {
	for _, mode := range []rt.Mode{rt.ModeReactive, rt.ModeBuffered} {
		mode := mode
		name := "reactive"
		if mode == rt.ModeBuffered {
			name = "proactive"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := runScaled(b, "matvec", mode, func(c *driver.RunConfig) {
					c.Repeat = true
					c.Horizon = 15 * sim.Second
					c.InteractiveSleep = 2 * sim.Second
				})
				b.ReportMetric(r.Interactive.MeanResponse.Millis(), "resp-ms")
				b.ReportMetric(float64(r.Daemon.Stolen), "stolen")
				b.ReportMetric(float64(r.Daemon.Donated), "donated")
			}
		})
	}
}

// BenchmarkDuel runs two memory hogs concurrently (prefetch-only vs
// buffered releasing): the multiprogrammed scenario of the paper's
// introduction.
func BenchmarkDuel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		kcfg := kernel.TestConfig()
		pa, pb, err := driver.RunPair("matvec", "mgrid", rt.ModePrefetch, kcfg, true, 30*60*sim.Second)
		if err != nil {
			b.Fatal(err)
		}
		ra, rb, err := driver.RunPair("matvec", "mgrid", rt.ModeBuffered, kcfg, true, 30*60*sim.Second)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(pa.Stolen+pb.Stolen), "P-mutual-stolen")
		b.ReportMetric(float64(ra.Stolen+rb.Stolen), "B-mutual-stolen")
	}
}

// BenchmarkSensitivity sweeps memory size for MATVEC (P vs B): the
// crossover study the paper's fixed platform leaves open.
func BenchmarkSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.RunSensitivity(quickOpts(), "matvec", []float64{0.5, 1.25})
		if err != nil {
			b.Fatal(err)
		}
		scarce := s.Points[0]
		ample := s.Points[len(s.Points)-1]
		b.ReportMetric(float64(scarce.Stolen[rt.ModePrefetch]), "scarce-P-stolen")
		b.ReportMetric(float64(ample.Stolen[rt.ModePrefetch]), "ample-P-stolen")
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed: virtual
// seconds simulated per wall second on the densest workload.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := runScaled(b, "cgm", rt.ModeBuffered, nil)
		b.ReportMetric(r.Elapsed.Seconds(), "vsec")
	}
}

// BenchmarkInteractiveAlone measures the baseline interactive response
// machinery.
func BenchmarkInteractiveAlone(b *testing.B) {
	cfg := driver.TestRunConfig(rt.ModeOriginal)
	for i := 0; i < b.N; i++ {
		resp := driver.AloneResponse(cfg.Kernel, sim.Second, 5)
		if resp <= 0 {
			b.Fatal("no response")
		}
	}
}

func sizeName(n int) string { return strconv.Itoa(n) }

// simCell is one row of BENCH_sim.json: simulator throughput for one
// benchmark × version on the scaled machine, flight recorder on.
type simCell struct {
	Bench          string  `json:"bench"`
	Version        string  `json:"version"`
	Events         int64   `json:"events"`
	VirtualSec     float64 `json:"virtual_sec"`
	WallSec        float64 `json:"wall_sec"`
	EventsPerSec   float64 `json:"events_per_sec"`
	VirtualPerWall float64 `json:"virtual_sec_per_wall_sec"`
}

// BenchmarkSimMatrix measures raw simulator throughput — flight-
// recorder events emitted per wall second and virtual seconds
// simulated per wall second — for every benchmark × version, and
// writes the final measurements to BENCH_sim.json, the artifact `make
// bench` publishes for tracking simulator-performance regressions.
func BenchmarkSimMatrix(b *testing.B) {
	var cells []simCell
	for _, spec := range workload.AllScaled() {
		for _, mode := range experiments.Modes {
			spec, mode := spec, mode
			b.Run(spec.Name+"/"+mode.String(), func(b *testing.B) {
				var last simCell
				for i := 0; i < b.N; i++ {
					var rec *events.Recorder
					cfg := driver.TestRunConfig(mode)
					cfg.RT = rt.DefaultConfig(mode)
					cfg.OnSystem = func(sys *kernel.System) {
						rec = events.New(sys.Sim, 1<<16)
						sys.SetEvents(rec)
					}
					start := time.Now()
					r, err := driver.Run(spec, cfg)
					if err != nil {
						b.Fatal(err)
					}
					wall := time.Since(start).Seconds()
					var emitted int64
					counts := rec.Counts()
					for k := events.Kind(0); k < events.KindCount; k++ {
						emitted += counts.Get(k)
					}
					last = simCell{
						Bench:      spec.Name,
						Version:    mode.String(),
						Events:     emitted,
						VirtualSec: r.Elapsed.Seconds(),
						WallSec:    wall,
					}
					if wall > 0 {
						last.EventsPerSec = float64(emitted) / wall
						last.VirtualPerWall = last.VirtualSec / wall
					}
					b.ReportMetric(last.EventsPerSec, "ev/s")
					b.ReportMetric(last.VirtualPerWall, "vsec/s")
				}
				cells = append(cells, last)
			})
		}
	}
	// The multi-tenant cells: the NUMA-sharded kernel (per-node clock
	// daemons, balancer) plus the open-loop job stream, with matvec as
	// the hog population.
	for _, mode := range experiments.Modes {
		mode := mode
		b.Run("tenants/"+mode.String(), func(b *testing.B) {
			spec, err := workload.ScaledByName("matvec")
			if err != nil {
				b.Fatal(err)
			}
			var last simCell
			for i := 0; i < b.N; i++ {
				var rec *events.Recorder
				cfg := driver.DefaultTenantConfig(mode)
				cfg.Kernel = kernel.TestConfig()
				cfg.Kernel.Nodes = 4
				cfg.JobPages = 16
				cfg.MeanInterarrival = 100 * sim.Millisecond
				cfg.Horizon = 3 * sim.Second
				cfg.OnSystem = func(sys *kernel.System) {
					rec = events.New(sys.Sim, 1<<16)
					sys.SetEvents(rec)
				}
				start := time.Now()
				if _, err := driver.RunTenants(spec, cfg); err != nil {
					b.Fatal(err)
				}
				wall := time.Since(start).Seconds()
				var emitted int64
				counts := rec.Counts()
				for k := events.Kind(0); k < events.KindCount; k++ {
					emitted += counts.Get(k)
				}
				last = simCell{
					Bench:      "tenants",
					Version:    mode.String(),
					Events:     emitted,
					VirtualSec: cfg.Horizon.Seconds(),
					WallSec:    wall,
				}
				if wall > 0 {
					last.EventsPerSec = float64(emitted) / wall
					last.VirtualPerWall = last.VirtualSec / wall
				}
				b.ReportMetric(last.EventsPerSec, "ev/s")
				b.ReportMetric(last.VirtualPerWall, "vsec/s")
			}
			cells = append(cells, last)
		})
	}

	// The tiering cells: FFTPDE under buffered releasing with the same
	// total budget split DRAM:far at each campaign ratio. 1:0 measures
	// the far-tier code's overhead on an all-DRAM machine; the other
	// ratios exercise the demote/promote paths under real traffic.
	for _, ratio := range experiments.TieringRatios {
		ratio := ratio
		b.Run("tiering/B@"+ratio.String(), func(b *testing.B) {
			spec, err := workload.ScaledByName("fftpde")
			if err != nil {
				b.Fatal(err)
			}
			var last simCell
			for i := 0; i < b.N; i++ {
				var rec *events.Recorder
				cfg := driver.TestRunConfig(rt.ModeBuffered)
				cfg.RT = rt.DefaultConfig(rt.ModeBuffered)
				dram, far := ratio.Split(cfg.Kernel.UserMemPages)
				cfg.Kernel.UserMemPages = dram
				cfg.Kernel.Far.Pages = far
				cfg.OnSystem = func(sys *kernel.System) {
					rec = events.New(sys.Sim, 1<<16)
					sys.SetEvents(rec)
				}
				start := time.Now()
				r, err := driver.Run(spec, cfg)
				if err != nil {
					b.Fatal(err)
				}
				wall := time.Since(start).Seconds()
				var emitted int64
				counts := rec.Counts()
				for k := events.Kind(0); k < events.KindCount; k++ {
					emitted += counts.Get(k)
				}
				last = simCell{
					Bench:      "tiering",
					Version:    "B@" + ratio.String(),
					Events:     emitted,
					VirtualSec: r.Elapsed.Seconds(),
					WallSec:    wall,
				}
				if wall > 0 {
					last.EventsPerSec = float64(emitted) / wall
					last.VirtualPerWall = last.VirtualSec / wall
				}
				b.ReportMetric(last.EventsPerSec, "ev/s")
				b.ReportMetric(last.VirtualPerWall, "vsec/s")
			}
			cells = append(cells, last)
		})
	}

	// A -bench filter that selects only some cells must not publish a
	// partial artifact.
	if len(cells) != (len(workload.AllScaled())+1)*len(experiments.Modes)+len(experiments.TieringRatios) {
		return
	}
	data, err := json.MarshalIndent(cells, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_sim.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
