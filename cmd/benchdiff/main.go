// benchdiff compares a fresh BENCH_sim.json against the committed
// BENCH_baseline.json and fails when simulator throughput regressed
// beyond a threshold.
//
// Usage:
//
//	benchdiff [-baseline BENCH_baseline.json] [-fresh BENCH_sim.json] [-max-regress 0.25]
//
// Both files are BenchmarkSimMatrix artifacts: one row per benchmark ×
// version with events/sec and virtual-seconds/wall-second. Every cell
// present in the baseline must be present in the fresh file (a partial
// run is an error, not a pass), and a baseline cell without a positive
// events/sec is a corrupt artifact, not a regression. Cells only in
// the fresh file are reported — they mean the baseline needs
// regenerating — but do not fail the run. The exit status is non-zero
// when any cell's events/sec falls more than -max-regress below its
// baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

type cell struct {
	Bench          string  `json:"bench"`
	Version        string  `json:"version"`
	Events         int64   `json:"events"`
	VirtualSec     float64 `json:"virtual_sec"`
	WallSec        float64 `json:"wall_sec"`
	EventsPerSec   float64 `json:"events_per_sec"`
	VirtualPerWall float64 `json:"virtual_sec_per_wall_sec"`
}

func load(path string) (map[string]cell, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cells []cell
	if err := json.Unmarshal(data, &cells); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]cell, len(cells))
	for _, c := range cells {
		m[c.Bench+"/"+c.Version] = c
	}
	return m, nil
}

func sortedKeys(m map[string]cell) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// compare diffs the fresh artifact against the baseline, writing the
// report to out and diagnostics to errOut, and returns the process
// exit code: 0 clean, 1 regression or missing cells, 2 corrupt
// baseline (a cell without a positive events/sec cannot anchor a
// ratio — the old behavior quietly marked such cells REGRESSED).
func compare(base, now map[string]cell, maxRegress float64, out, errOut io.Writer) int {
	var regressions, missing, corrupt []string
	doubled := 0
	keys := sortedKeys(base)
	fmt.Fprintf(out, "%-12s %14s %14s %8s\n", "cell", "base ev/s", "fresh ev/s", "ratio")
	for _, k := range keys {
		b := base[k]
		if !(b.EventsPerSec > 0) { // catches zero, negative and NaN
			corrupt = append(corrupt, k)
			continue
		}
		f, ok := now[k]
		if !ok {
			missing = append(missing, k)
			continue
		}
		ratio := f.EventsPerSec / b.EventsPerSec
		mark := ""
		if ratio < 1-maxRegress {
			mark = "  REGRESSED"
			regressions = append(regressions, k)
		}
		if ratio >= 2 {
			doubled++
		}
		fmt.Fprintf(out, "%-12s %14.0f %14.0f %7.2fx%s\n", k, b.EventsPerSec, f.EventsPerSec, ratio, mark)
	}
	fmt.Fprintf(out, "benchdiff: %d/%d cells at >= 2x baseline throughput\n", doubled, len(keys))

	var freshOnly []string
	for _, k := range sortedKeys(now) {
		if _, ok := base[k]; !ok {
			freshOnly = append(freshOnly, k)
		}
	}
	if len(freshOnly) > 0 {
		fmt.Fprintf(out, "benchdiff: %d fresh cells have no baseline (regenerate it): %v\n",
			len(freshOnly), freshOnly)
	}

	switch {
	case len(corrupt) > 0:
		fmt.Fprintf(errOut, "benchdiff: baseline has %d cells without a positive events/sec: %v\n",
			len(corrupt), corrupt)
		return 2
	case len(missing) > 0:
		fmt.Fprintf(errOut, "benchdiff: fresh artifact is missing %d baseline cells: %v\n",
			len(missing), missing)
		return 1
	case len(regressions) > 0:
		fmt.Fprintf(errOut, "benchdiff: %d cells regressed more than %.0f%%: %v\n",
			len(regressions), maxRegress*100, regressions)
		return 1
	}
	return 0
}

func main() {
	baseline := flag.String("baseline", "BENCH_baseline.json", "committed baseline artifact")
	fresh := flag.String("fresh", "BENCH_sim.json", "fresh BenchmarkSimMatrix artifact")
	maxRegress := flag.Float64("max-regress", 0.25, "fail when a cell's events/sec drops more than this fraction below baseline")
	flag.Parse()

	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	now, err := load(*fresh)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	os.Exit(compare(base, now, *maxRegress, os.Stdout, os.Stderr))
}
