package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mkcell(bench, version string, evPerSec float64) cell {
	return cell{Bench: bench, Version: version, Events: 1000, WallSec: 1, EventsPerSec: evPerSec}
}

func runCompare(t *testing.T, base, now []cell, maxRegress float64) (int, string, string) {
	t.Helper()
	bm := map[string]cell{}
	for _, c := range base {
		bm[c.Bench+"/"+c.Version] = c
	}
	nm := map[string]cell{}
	for _, c := range now {
		nm[c.Bench+"/"+c.Version] = c
	}
	var out, errOut strings.Builder
	code := compare(bm, nm, maxRegress, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestCompareClean(t *testing.T) {
	code, out, errOut := runCompare(t,
		[]cell{mkcell("matvec", "O", 100), mkcell("matvec", "R", 200)},
		[]cell{mkcell("matvec", "O", 110), mkcell("matvec", "R", 190)},
		0.25)
	if code != 0 {
		t.Fatalf("exit %d, want 0 (stderr: %s)", code, errOut)
	}
	if strings.Contains(out, "REGRESSED") {
		t.Fatalf("clean diff flagged a regression:\n%s", out)
	}
}

func TestCompareRegression(t *testing.T) {
	code, out, errOut := runCompare(t,
		[]cell{mkcell("matvec", "O", 100)},
		[]cell{mkcell("matvec", "O", 50)},
		0.25)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(errOut, "regressed") {
		t.Fatalf("regression not reported:\nout: %s\nerr: %s", out, errOut)
	}
}

func TestCompareMissingCell(t *testing.T) {
	code, _, errOut := runCompare(t,
		[]cell{mkcell("matvec", "O", 100), mkcell("matvec", "R", 100)},
		[]cell{mkcell("matvec", "O", 100)},
		0.25)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errOut, "missing") || !strings.Contains(errOut, "matvec/R") {
		t.Fatalf("missing cell not reported: %s", errOut)
	}
}

func TestCompareZeroBaselineIsCorruptNotRegressed(t *testing.T) {
	// The old code divided by the baseline without a guard: a zero
	// events/sec baseline produced ratio 0 and the cell was reported
	// REGRESSED — a data problem dressed up as a perf problem. It must
	// be a distinct, non-regression failure.
	code, out, errOut := runCompare(t,
		[]cell{mkcell("matvec", "O", 0), mkcell("matvec", "R", 100)},
		[]cell{mkcell("matvec", "O", 100), mkcell("matvec", "R", 100)},
		0.25)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if strings.Contains(out, "REGRESSED") {
		t.Fatalf("corrupt baseline reported as regression:\n%s", out)
	}
	if !strings.Contains(errOut, "positive events/sec") || !strings.Contains(errOut, "matvec/O") {
		t.Fatalf("corrupt cell not identified: %s", errOut)
	}
}

func TestCompareFreshOnlyCellsReported(t *testing.T) {
	// New benchmark cells with no baseline yet must be surfaced (the
	// baseline needs regenerating) without failing the run.
	code, out, _ := runCompare(t,
		[]cell{mkcell("matvec", "O", 100)},
		[]cell{mkcell("matvec", "O", 100), mkcell("tenants", "B", 500)},
		0.25)
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	if !strings.Contains(out, "no baseline") || !strings.Contains(out, "tenants/B") {
		t.Fatalf("fresh-only cell not reported:\n%s", out)
	}
}

func TestLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(`[
		{"bench":"matvec","version":"O","events":10,"wall_sec":1,"events_per_sec":10}
	]`), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := m["matvec/O"]
	if !ok || c.EventsPerSec != 10 {
		t.Fatalf("load = %+v", m)
	}
	if _, err := load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("load of absent file did not error")
	}
}
