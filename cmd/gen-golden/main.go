// Command gen-golden regenerates every golden-file family from one
// registry: the compiler's listings, the verifier's diagnostic
// listings (with benchmark parameters bound, so the residency
// certification evaluates at paper scale), the tampered dead-hint
// listing, and the hogflow residency certificates. Run it after an
// intentional change to the analysis or the checks and review the
// diff; main_test.go asserts a fresh run leaves the tree clean.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"memhogs/internal/compiler"
	"memhogs/internal/experiments"
	"memhogs/internal/footprint"
	"memhogs/internal/hogvet"
	"memhogs/internal/kernel"
	"memhogs/internal/lang"
	"memhogs/internal/workload"
)

// family is one golden-file family: a name for -only selection and a
// generator returning path → content for every file the family owns.
type family struct {
	name string
	gen  func(root string, tgt compiler.Target) (map[string]string, error)
}

// families is the registry. Paths are relative to the repository
// root, where `go run ./cmd/gen-golden` runs.
func families() []family {
	return []family{
		{"compiler", genCompilerListings},
		{"hogvet", genHogvetListings},
		{"deadhint", genDeadHint},
		{"certfixtures", genCertFixtures},
		{"certificates", genCertificates},
		{"tierfixtures", genTierFixtures},
		{"tiercertificates", genTierCertificates},
	}
}

// target is the shared compile target: the paper's full-size machine.
func target() compiler.Target {
	cfg := kernel.DefaultConfig()
	return compiler.DefaultTarget(cfg.PageSize, cfg.UserMemPages)
}

// generate runs every family and merges the outputs. Paths in the
// result are relative to root, which locates fixture inputs.
func generate(root string, tgt compiler.Target) (map[string]string, error) {
	out := map[string]string{}
	for _, f := range families() {
		files, err := f.gen(root, tgt)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f.name, err)
		}
		for path, content := range files {
			if _, dup := out[path]; dup {
				return nil, fmt.Errorf("%s: duplicate golden path %s", f.name, path)
			}
			out[path] = content
		}
	}
	return out, nil
}

func genCompilerListings(_ string, tgt compiler.Target) (map[string]string, error) {
	out := map[string]string{}
	for _, s := range workload.All() {
		c, err := compiler.Compile(s.Program(nil), tgt)
		if err != nil {
			return nil, err
		}
		out["internal/compiler/testdata/"+s.Name+".golden"] = c.Listing()
	}
	return out, nil
}

func genHogvetListings(_ string, tgt compiler.Target) (map[string]string, error) {
	out := map[string]string{}
	for _, s := range workload.All() {
		c, err := compiler.Compile(s.Program(nil), tgt)
		if err != nil {
			return nil, err
		}
		out["internal/hogvet/testdata/"+s.Name+".golden"] = hogvet.VetParams(c, s.Params).String()
	}
	return out, nil
}

func genDeadHint(root string, tgt compiler.Target) (map[string]string, error) {
	src, err := os.ReadFile(filepath.Join(root, "internal/hogvet/testdata/deadhint.hog"))
	if err != nil {
		return nil, err
	}
	prog, err := lang.Parse(string(src))
	if err != nil {
		return nil, err
	}
	c, err := compiler.Compile(prog, tgt)
	if err != nil {
		return nil, err
	}
	hints, err := hogvet.TamperDeadHint(c, "b")
	if err != nil {
		return nil, err
	}
	ds := hogvet.VetSchedule(c.Prog, c.Target, hints, hogvet.DefaultOptions())
	return map[string]string{"internal/hogvet/testdata/deadhint.golden": ds.String()}, nil
}

// genCertFixtures regenerates the residency-certification fixture
// goldens: hand-written programs pinning HV011 (overflow), HV012
// (deadwindow), and HV013 (uncert), one diagnostic listing each.
func genCertFixtures(root string, tgt compiler.Target) (map[string]string, error) {
	out := map[string]string{}
	for _, name := range []string{"overflow", "deadwindow", "uncert"} {
		src, err := os.ReadFile(filepath.Join(root, "internal/hogvet/testdata/"+name+".hog"))
		if err != nil {
			return nil, err
		}
		prog, err := lang.Parse(string(src))
		if err != nil {
			return nil, err
		}
		c, err := compiler.Compile(prog, tgt)
		if err != nil {
			return nil, err
		}
		out["internal/hogvet/testdata/"+name+".golden"] = hogvet.VetParams(c, nil).String()
	}
	return out, nil
}

func genCertificates(_ string, tgt compiler.Target) (map[string]string, error) {
	full := tgt
	full.Prefetch = true
	full.Release = true
	out := map[string]string{}
	for _, s := range workload.All() {
		prog := s.Program(nil)
		c, err := compiler.Compile(prog, full)
		if err != nil {
			return nil, err
		}
		certs := map[footprint.Version]*footprint.Certificate{}
		for _, v := range footprint.Versions() {
			certs[v] = footprint.Certify(prog, full, c.Hints(), v, footprint.Opts{Params: s.Params})
		}
		out["internal/footprint/testdata/"+s.Name+".cert.golden"] = footprint.Report(certs)
	}
	return out, nil
}

// Tier-fixture certification options, mirrored by
// internal/hogvet/tierfixtures_test.go: a 1200-page far tier (the far
// share of a 3:1 split of the 4800-page allotment) behind the
// kernel's default min-prio 1 demotion gate.
const (
	tierFixtureFarPages = 1200
	tierFixtureMinPrio  = 1
)

// genTierFixtures regenerates the two-tier certification fixture
// goldens: hand-written programs pinning HV014 (faroverflow), HV015
// (thrash), and HV016 (deadthresh), one diagnostic listing each.
func genTierFixtures(root string, tgt compiler.Target) (map[string]string, error) {
	out := map[string]string{}
	for _, name := range []string{"faroverflow", "thrash", "deadthresh"} {
		src, err := os.ReadFile(filepath.Join(root, "internal/hogvet/testdata/"+name+".hog"))
		if err != nil {
			return nil, err
		}
		prog, err := lang.Parse(string(src))
		if err != nil {
			return nil, err
		}
		c, err := compiler.Compile(prog, tgt)
		if err != nil {
			return nil, err
		}
		ds := hogvet.VetParamsFar(c, nil, tierFixtureFarPages, tierFixtureMinPrio)
		out["internal/hogvet/testdata/"+name+".golden"] = ds.String()
	}
	return out, nil
}

// genTierCertificates regenerates the two-tier residency certificates
// for every benchmark at every DRAM:far ratio of the tiering
// campaign: the paper-scale memory budget is split by the ratio, the
// schedule recompiles against the DRAM share, and the certificate
// carries the far-tier occupancy and demotion-flow bounds (the 1:0
// baseline certifies the single-tier world). `make certify-tier`
// diffs `memhog certify -far` against these listings.
func genTierCertificates(_ string, _ compiler.Target) (map[string]string, error) {
	cfg := kernel.DefaultConfig()
	out := map[string]string{}
	for _, s := range workload.All() {
		for _, ratio := range experiments.TieringRatios {
			dram, far := ratio.Split(cfg.UserMemPages)
			full := compiler.DefaultTarget(cfg.PageSize, dram)
			full.Prefetch = true
			full.Release = true
			prog := s.Program(nil)
			c, err := compiler.Compile(prog, full)
			if err != nil {
				return nil, err
			}
			opts := footprint.Opts{Params: s.Params, FarPages: far, FarMinPrio: cfg.Far.MinPrio}
			certs := map[footprint.Version]*footprint.Certificate{}
			for _, v := range footprint.Versions() {
				certs[v] = footprint.Certify(prog, full, c.Hints(), v, opts)
			}
			name := fmt.Sprintf("internal/footprint/testdata/%s.tier%d-%d.cert.golden",
				s.Name, ratio.DRAM, ratio.Far)
			out[name] = footprint.Report(certs)
		}
	}
	return out, nil
}

func main() {
	files, err := generate(".", target())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	paths := make([]string, 0, len(files))
	for p := range files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := os.WriteFile(p, []byte(files[p]), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("wrote", p)
	}
}
