// Command gen-golden regenerates the compiler's golden listings
// (internal/compiler/testdata) and the verifier's golden diagnostic
// listings (internal/hogvet/testdata) for the built-in benchmarks.
// Run it after an intentional change to the analysis or the checks and
// review the diff.
package main

import (
	"fmt"
	"os"

	"memhogs/internal/compiler"
	"memhogs/internal/hogvet"
	"memhogs/internal/kernel"
	"memhogs/internal/lang"
	"memhogs/internal/workload"
)

func main() {
	cfg := kernel.DefaultConfig()
	tgt := compiler.DefaultTarget(cfg.PageSize, cfg.UserMemPages)
	for _, s := range workload.All() {
		c := compiler.MustCompile(s.Program(nil), tgt)
		write("internal/compiler/testdata/"+s.Name+".golden", c.Listing())
		write("internal/hogvet/testdata/"+s.Name+".golden", hogvet.Vet(c).String())
	}
	write("internal/hogvet/testdata/deadhint.golden", deadHintListing(tgt))
}

// deadHintListing regenerates the HV010 golden: it compiles the
// deadhint fixture and appends a synthetic release for the
// never-referenced array b, cloned from a's release so every other
// check stays quiet. internal/hogvet's deadhint_test.go duplicates
// this construction; keep the two in sync.
func deadHintListing(tgt compiler.Target) string {
	src, err := os.ReadFile("internal/hogvet/testdata/deadhint.hog")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	prog, err := lang.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	c := compiler.MustCompile(prog, tgt)
	hints := c.Hints()
	var dead *compiler.Hint
	maxTag := 0
	for i := range hints {
		if hints[i].Tag > maxTag {
			maxTag = hints[i].Tag
		}
		if hints[i].Kind == compiler.HintRelease {
			dead = &hints[i]
		}
	}
	var b *lang.Array
	for _, a := range c.Prog.Arrays {
		if a.Name == "b" {
			b = a
		}
	}
	if dead == nil || b == nil {
		fmt.Fprintln(os.Stderr, "deadhint fixture lost its release hint or array b")
		os.Exit(1)
	}
	synth := *dead
	synth.Array = b
	synth.Tag = maxTag + 1
	ds := hogvet.VetSchedule(c.Prog, c.Target, append(hints, synth), hogvet.DefaultOptions())
	return ds.String()
}

func write(path, content string) {
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("wrote", path)
}
