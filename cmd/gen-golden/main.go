// Command gen-golden regenerates the compiler's golden listings
// (internal/compiler/testdata) and the verifier's golden diagnostic
// listings (internal/hogvet/testdata) for the built-in benchmarks.
// Run it after an intentional change to the analysis or the checks and
// review the diff.
package main

import (
	"fmt"
	"os"

	"memhogs/internal/compiler"
	"memhogs/internal/hogvet"
	"memhogs/internal/kernel"
	"memhogs/internal/workload"
)

func main() {
	cfg := kernel.DefaultConfig()
	tgt := compiler.DefaultTarget(cfg.PageSize, cfg.UserMemPages)
	for _, s := range workload.All() {
		c := compiler.MustCompile(s.Program(nil), tgt)
		write("internal/compiler/testdata/"+s.Name+".golden", c.Listing())
		write("internal/hogvet/testdata/"+s.Name+".golden", hogvet.Vet(c).String())
	}
}

func write(path, content string) {
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("wrote", path)
}
