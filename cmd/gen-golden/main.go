// Command gen-golden regenerates the compiler's golden listings for
// the built-in benchmarks (internal/compiler/testdata). Run it after
// an intentional change to the analysis and review the diff.
package main

import (
	"fmt"
	"os"

	"memhogs/internal/compiler"
	"memhogs/internal/kernel"
	"memhogs/internal/workload"
)

func main() {
	cfg := kernel.DefaultConfig()
	tgt := compiler.DefaultTarget(cfg.PageSize, cfg.UserMemPages)
	for _, s := range workload.All() {
		c := compiler.MustCompile(s.Program(nil), tgt)
		path := "internal/compiler/testdata/" + s.Name + ".golden"
		if err := os.WriteFile(path, []byte(c.Listing()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("wrote", path)
	}
}
