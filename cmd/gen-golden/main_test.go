package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestTreeClean asserts a fresh gen-golden run reproduces every golden
// file byte-for-byte: the checked-in goldens are exactly what the
// registry generates, so regeneration never leaves a dirty tree.
func TestTreeClean(t *testing.T) {
	root := repoRoot(t)
	files, err := generate(root, target())
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("registry generated no goldens")
	}
	for path, want := range files {
		got, err := os.ReadFile(filepath.Join(root, path))
		if err != nil {
			t.Errorf("%s: missing on disk (run `go run ./cmd/gen-golden`): %v", path, err)
			continue
		}
		if string(got) != want {
			t.Errorf("%s: differs from a fresh generation; run `go run ./cmd/gen-golden`", path)
		}
	}
}

// repoRoot walks up from the test's working directory (cmd/gen-golden)
// to the directory containing go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// TestDeterministic demands two fresh generations be byte-identical —
// the same property `memhog certify` needs across worker counts.
func TestDeterministic(t *testing.T) {
	root := repoRoot(t)
	a, err := generate(root, target())
	if err != nil {
		t.Fatal(err)
	}
	b, err := generate(root, target())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("generation produced %d then %d files", len(a), len(b))
	}
	for p, c := range a {
		if b[p] != c {
			t.Errorf("%s: not deterministic", p)
		}
	}
}
