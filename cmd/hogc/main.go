// Command hogc is the standalone prefetch/release compiler: it reads a
// loop-nest program, runs the paper's analysis pass, and prints the
// transformed code with the inserted prefetch and release calls plus
// an analysis summary.
//
// Usage:
//
//	hogc [-mem MB] [-page KB] [-latency ms] [-version O|P|R|B] file.hog
//	hogc -bench matvec            # compile a built-in benchmark
//
// With no file and no -bench, the source is read from stdin.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"memhogs"
)

func main() {
	memMB := flag.Int("mem", 75, "memory size the compiler may assume, in MB")
	pageKB := flag.Int("page", 16, "page size in KB")
	version := flag.String("version", "B", "program version: O, P, R or B")
	bench := flag.String("bench", "", "compile a built-in benchmark instead of a file")
	stats := flag.Bool("stats", true, "print the analysis summary")
	flag.Parse()

	var src string
	switch {
	case *bench != "":
		s, err := memhogs.BenchmarkSource(*bench, memhogs.DefaultMachine())
		if err != nil {
			fatal("%v", err)
		}
		src = s
	case flag.NArg() >= 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal("%v", err)
		}
		src = string(data)
	default:
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal("%v", err)
		}
		src = string(data)
	}

	var v memhogs.Version
	switch *version {
	case "O":
		v = memhogs.Original
	case "P":
		v = memhogs.PrefetchOnly
	case "R":
		v = memhogs.Aggressive
	case "B":
		v = memhogs.Buffered
	default:
		fatal("unknown version %q (want O, P, R or B)", *version)
	}

	machine := memhogs.DefaultMachine()
	machine.MemoryMB = *memMB
	machine.PageSizeKB = *pageKB

	prog, err := memhogs.Compile(src, machine, v)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Print(prog.Listing())
	if *stats {
		st := prog.Stats()
		fmt.Printf("\n// analysis: %d nests, %d refs (%d indirect)\n", st.Nests, st.Refs, st.IndirectRefs)
		fmt.Printf("// inserted: %d prefetch, %d release (%d zero-priority, %d with reuse)\n",
			st.PrefetchDirectives, st.ReleaseDirectives, st.ZeroPriorityReleases, st.ReusePriorityReleases)
		if st.MisdetectedReuse > 0 {
			fmt.Printf("// warning: %d symbolic-stride reference(s) with misdetected temporal reuse\n", st.MisdetectedReuse)
		}
		if st.UnknownBoundLoops > 0 {
			fmt.Printf("// note: %d loop(s) with bounds unknown at compile time (conservative analysis)\n", st.UnknownBoundLoops)
		}
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "hogc: "+format+"\n", args...)
	os.Exit(1)
}
