// Command hogc is the standalone prefetch/release compiler: it reads a
// loop-nest program, runs the paper's analysis pass, and prints the
// transformed code with the inserted prefetch and release calls,
// followed by the static verifier's diagnostics (and, with -stats, the
// analysis summary routed through the same formatter).
//
// Usage:
//
//	hogc [-mem MB] [-page KB] [-version O|P|R|B] file.hog
//	hogc -bench matvec            # compile a built-in benchmark
//	hogc -vet -bench fftpde       # diagnostics only, no listing
//
// With no file and no -bench, the source is read from stdin. hogc
// exits non-zero when compilation fails or when the verifier reports
// an error-severity finding.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"memhogs"
)

func main() {
	memMB := flag.Int("mem", 75, "memory size the compiler may assume, in MB")
	pageKB := flag.Int("page", 16, "page size in KB")
	version := flag.String("version", "B", "program version: O, P, R or B")
	bench := flag.String("bench", "", "compile a built-in benchmark instead of a file")
	stats := flag.Bool("stats", true, "print the analysis summary")
	vet := flag.Bool("vet", false, "print verifier diagnostics only (no listing)")
	flag.Parse()

	var src string
	switch {
	case *bench != "":
		s, err := memhogs.BenchmarkSource(*bench, memhogs.DefaultMachine())
		if err != nil {
			fatal("%v", err)
		}
		src = s
	case flag.NArg() >= 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal("%v", err)
		}
		src = string(data)
	default:
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal("%v", err)
		}
		src = string(data)
	}

	var v memhogs.Version
	switch *version {
	case "O":
		v = memhogs.Original
	case "P":
		v = memhogs.PrefetchOnly
	case "R":
		v = memhogs.Aggressive
	case "B":
		v = memhogs.Buffered
	default:
		fatal("unknown version %q (want O, P, R or B)", *version)
	}

	machine := memhogs.DefaultMachine()
	machine.MemoryMB = *memMB
	machine.PageSizeKB = *pageKB

	prog, err := memhogs.Compile(src, machine, v)
	if err != nil {
		fatal("%v", err)
	}

	// Diagnostics always go through the verifier's formatter — the old
	// ad-hoc "// warning:"/"// note:" lines are now real findings
	// (HV006, HV008) and survive -stats=false.
	rep := prog.Vet()
	if *stats {
		rep = prog.VetWithStats()
	}
	if *vet {
		fmt.Print(rep)
	} else {
		fmt.Print(prog.Listing())
		fmt.Println()
		fmt.Print(rep)
	}
	if rep.HasErrors() {
		os.Exit(1)
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "hogc: "+format+"\n", args...)
	os.Exit(1)
}
