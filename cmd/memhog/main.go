// Command memhog regenerates the paper's tables and figures and runs
// individual benchmarks on the simulated platform.
//
// Usage:
//
//	memhog table1|table2|table3|fig1|fig7|fig8|fig9|fig10a|fig10b|fig10c|locks
//	memhog all                  # every table and figure, in paper order
//	memhog verify               # check the paper's claims; exit 1 on failure
//	memhog run <benchmark>      # one benchmark, all four versions
//	memhog listing <benchmark>  # transformed code with inserted hints
//	memhog vet [benchmark...]   # static hint-safety diagnostics (default: all)
//	memhog certify [-far] [benchmark...] # hogflow residency certificates
//	                            # (-far: two-tier, at every DRAM:far ratio)
//	memhog timeline <benchmark> [O|P|R|B]  # memory dynamics over time
//	memhog trace <benchmark> [O|P|R|B]     # event-level flight recorder
//	memhog chaos <benchmark> [O|P|R|B] [-seed N] [-faults ...]
//	                            # deterministic fault injection + auditing
//	memhog chaosmatrix [-seed N] # benchmarks × versions × fault classes
//	memhog sensitivity <benchmark>         # memory-size sweep
//	memhog tiering [benchmark...]          # DRAM:far-tier ratio sweep
//	memhog duel <a> <b>         # two memory hogs sharing the machine
//	memhog list                 # benchmark names
//
// Flags:
//
//	-quick    use the scaled-down machine and benchmarks (seconds, not minutes)
//	-quiet    suppress per-run progress lines
//	-json     machine-readable output (run command)
//	-log      trace command: emit the merged event log instead of Chrome JSON
//	-j N      run campaign simulations on N workers (0 = one per CPU,
//	          1 = serial); output is byte-identical at any setting
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"memhogs"
)

// app carries the parsed global flags and derived machine/campaign
// configuration into the subcommand bodies.
type app struct {
	quick, quiet, asJSON, asLog bool
	machine                     memhogs.Machine
	campaign                    memhogs.Campaign
}

// command is one registered subcommand. The registry below is the
// single source of truth: dispatch, the -h text, and the help
// coverage test all read it, so a subcommand cannot exist without
// being documented.
type command struct {
	name  string
	args  string // synopsis after the name, "" if none
	brief string // one-line description for the usage text
	run   func(a *app)
}

// commands in usage order. Experiment ids (table1, fig7, locks, ...)
// are not commands: anything not found here falls through to
// campaign.Experiment.
var commands = []command{
	{"all", "", "every table and figure, paper order", (*app).cmdAll},
	{"run", "<bench>", "one benchmark in all four versions", (*app).cmdRun},
	{"listing", "<bench>", "transformed code with inserted hints", (*app).cmdListing},
	{"vet", "[bench...]", "static hint-safety diagnostics, exit 1 on errors", (*app).cmdVet},
	{"certify", "[-far] [bench...]", "hogflow residency certificates (default: all; -far for the two-tier DRAM:far sweep)", (*app).cmdCertify},
	{"timeline", "<bench> [O|P|R|B]", "memory dynamics over time", (*app).cmdTimeline},
	{"trace", "<bench> [O|P|R|B]", "flight recorder: Chrome trace JSON on stdout (-log for the merged event log)", (*app).cmdTrace},
	{"chaos", "<bench> [O|P|R|B] [-seed N] [-faults class|plan]", "deterministic fault injection with continuous invariant auditing", (*app).cmdChaos},
	{"chaosmatrix", "[-seed N]", "benchmarks × versions × fault classes campaign; exit 1 if any cell wedges or fails its audits", (*app).cmdChaosMatrix},
	{"sensitivity", "<bench>", "memory-size sweep (P vs B crossover)", (*app).cmdSensitivity},
	{"tenants", "[bench...]", "NUMA-sharded node: hogs vs open-loop job stream, response-time tail", (*app).cmdTenants},
	{"tiering", "[bench...]", "DRAM:far-tier sweep: releases as demotion hints across memory splits", (*app).cmdTiering},
	{"duel", "<a> <b>", "two memory hogs sharing the machine", (*app).cmdDuel},
	{"verify", "", "check the paper's claims, exit 1 on failure", (*app).cmdVerify},
	{"list", "", "benchmark names", (*app).cmdList},
}

func main() {
	quick := flag.Bool("quick", false, "use the scaled-down machine and benchmarks")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON (run command only)")
	asLog := flag.Bool("log", false, "trace: emit the merged event log instead of Chrome JSON")
	workers := flag.Int("j", 0, "campaign worker pool size (0 = one per CPU, 1 = serial)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}

	var progress io.Writer = os.Stderr
	if *quiet {
		progress = nil
	}
	machine := memhogs.DefaultMachine()
	if *quick {
		machine = memhogs.TestMachine()
	}
	a := &app{
		quick:    *quick,
		quiet:    *quiet,
		asJSON:   *asJSON,
		asLog:    *asLog,
		machine:  machine,
		campaign: memhogs.Campaign{Quick: *quick, Workers: *workers, Progress: progress},
	}

	name := flag.Arg(0)
	for i := range commands {
		if commands[i].name == name {
			commands[i].run(a)
			return
		}
	}
	// Experiment ids (including extras like "locks" that are not part
	// of the paper-order list).
	out, err := a.campaign.Experiment(name)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Println(out)
}

func (a *app) cmdList() {
	for _, name := range memhogs.BenchmarkNames() {
		fmt.Println(name)
	}
}

func (a *app) cmdRun() {
	if flag.NArg() < 2 {
		fatal("run: need a benchmark name (see 'memhog list')")
	}
	name := flag.Arg(1)
	var reports []*memhogs.Report
	for _, v := range memhogs.Versions() {
		rep, err := memhogs.RunBenchmark(name, v, a.machine)
		if err != nil {
			fatal("%v", err)
		}
		if a.asJSON {
			reports = append(reports, rep)
		} else {
			fmt.Print(rep)
		}
	}
	if a.asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fatal("%v", err)
		}
	}
}

func (a *app) cmdVet() {
	names := flag.Args()[1:]
	if len(names) == 0 {
		names = memhogs.BenchmarkNames()
	}
	failed := false
	for _, name := range names {
		rep, err := memhogs.VetBenchmark(name, a.machine)
		if err != nil {
			fatal("%v", err)
		}
		fmt.Printf("==== %s ====\n%s\n", name, rep)
		failed = failed || rep.HasErrors()
	}
	if failed {
		os.Exit(1)
	}
}

func (a *app) cmdCertify() {
	fs := flag.NewFlagSet("certify", flag.ExitOnError)
	far := fs.Bool("far", false, "two-tier certificates at every DRAM:far ratio of the tiering sweep")
	fs.Parse(flag.Args()[1:])
	names := fs.Args()
	if len(names) == 0 {
		names = memhogs.BenchmarkNames()
	}
	for _, name := range names {
		if *far {
			out, err := memhogs.CertifyBenchmarkTiered(name, a.machine)
			if err != nil {
				fatal("%v", err)
			}
			fmt.Print(out)
			continue
		}
		out, err := memhogs.CertifyBenchmark(name, a.machine)
		if err != nil {
			fatal("%v", err)
		}
		fmt.Printf("==== %s ====\n%s\n", name, out)
	}
}

func (a *app) cmdListing() {
	if flag.NArg() < 2 {
		fatal("listing: need a benchmark name")
	}
	src, err := memhogs.BenchmarkSource(flag.Arg(1), a.machine)
	if err != nil {
		fatal("%v", err)
	}
	prog, err := memhogs.Compile(src, a.machine, memhogs.Buffered)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Print(prog.Listing())
}

func (a *app) cmdDuel() {
	if flag.NArg() < 3 {
		fatal("duel: need two benchmark names")
	}
	out, err := memhogs.Duel(flag.Arg(1), flag.Arg(2), a.machine)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Print(out)
}

func (a *app) cmdSensitivity() {
	if flag.NArg() < 2 {
		fatal("sensitivity: need a benchmark name")
	}
	out, err := a.campaign.Sensitivity(flag.Arg(1))
	if err != nil {
		fatal("%v", err)
	}
	fmt.Println(out)
}

func (a *app) cmdTenants() {
	var benches []string
	for i := 1; i < flag.NArg(); i++ {
		benches = append(benches, flag.Arg(i))
	}
	out, err := a.campaign.Tenants(benches...)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Println(out)
}

func (a *app) cmdTiering() {
	var benches []string
	for i := 1; i < flag.NArg(); i++ {
		benches = append(benches, flag.Arg(i))
	}
	out, err := a.campaign.Tiering(benches...)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Println(out)
}

func (a *app) cmdTimeline() {
	if flag.NArg() < 2 {
		fatal("timeline: need a benchmark name")
	}
	version := versionArg(2)
	seconds := 20
	if a.quick {
		seconds = 5
	}
	out, err := memhogs.Timeline(flag.Arg(1), version, a.machine, seconds, 2000)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Print(out)
}

func (a *app) cmdTrace() {
	if flag.NArg() < 2 {
		fatal("trace: need a benchmark name")
	}
	version := versionArg(2)
	tr, err := memhogs.Trace(flag.Arg(1), version, a.machine, 0, -1)
	if err != nil {
		fatal("%v", err)
	}
	if a.asLog {
		fmt.Print(tr.Log)
		return
	}
	// A short write here (full disk, closed pipe) would truncate the
	// Chrome trace into unparseable JSON; found by simvet SV005.
	if _, err := os.Stdout.Write(tr.ChromeJSON); err != nil {
		fatal("writing trace: %v", err)
	}
	if !a.quiet {
		fmt.Fprint(os.Stderr, tr.Summary)
	}
}

func (a *app) cmdChaos() {
	if flag.NArg() < 2 {
		fatal("chaos: need a benchmark name (see 'memhog list')")
	}
	rest := flag.Args()[2:]
	version := memhogs.Buffered
	if len(rest) > 0 && !strings.HasPrefix(rest[0], "-") {
		version = versionArg(2)
		rest = rest[1:]
	}
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "fault plan seed; equal seeds replay byte-identical runs")
	faults := fs.String("faults", "all",
		"fault class ("+strings.Join(memhogs.ChaosClasses(), "|")+") or a plan string")
	audit := fs.Int("audit", 0, "audit cadence in virtual milliseconds (0 = default)")
	seconds := fs.Int("seconds", 0, "loop the program until the given virtual time")
	_ = fs.Parse(rest) // ExitOnError: a bad flag never returns
	rep, err := memhogs.Chaos(flag.Arg(1), version, a.machine, memhogs.ChaosOptions{
		Seed:               *seed,
		Faults:             *faults,
		AuditEveryMS:       *audit,
		InteractiveSleepMS: -1,
		Seconds:            *seconds,
	})
	if err != nil {
		fatal("%v", err)
	}
	if a.asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal("%v", err)
		}
	} else {
		fmt.Print(rep)
	}
}

func (a *app) cmdChaosMatrix() {
	fs := flag.NewFlagSet("chaosmatrix", flag.ExitOnError)
	seed := fs.Uint64("seed", 7, "campaign seed")
	_ = fs.Parse(flag.Args()[1:]) // ExitOnError: a bad flag never returns
	out, err := a.campaign.ChaosMatrix(*seed)
	fmt.Print(out)
	if err != nil {
		fatal("%v", err)
	}
}

func (a *app) cmdVerify() {
	out, ok, err := a.campaign.Verify()
	if err != nil {
		fatal("%v", err)
	}
	fmt.Print(out)
	if !ok {
		os.Exit(1)
	}
}

func (a *app) cmdAll() {
	out, err := a.campaign.All()
	if err != nil {
		fatal("%v", err)
	}
	fmt.Print(out)
}

// versionArg parses the optional version letter at argument position i
// (default B, the paper's best version).
func versionArg(i int) memhogs.Version {
	if flag.NArg() <= i {
		return memhogs.Buffered
	}
	switch flag.Arg(i) {
	case "O":
		return memhogs.Original
	case "P":
		return memhogs.PrefetchOnly
	case "R":
		return memhogs.Aggressive
	case "B":
		return memhogs.Buffered
	}
	fatal("unknown version %q (want O, P, R or B)", flag.Arg(i))
	panic("unreachable")
}

// usageText renders the help text from the command registry (the
// coverage test asserts every registered command appears in it).
func usageText() string {
	var b strings.Builder
	fmt.Fprintf(&b, "memhog — \"Taming the Memory Hogs\" (OSDI 2000) reproduction\n\n")
	fmt.Fprintf(&b, "usage:\n")
	fmt.Fprintf(&b, "  memhog [-quick] [-j N] <experiment>   one of: %v\n", memhogs.ExperimentIDs())
	for _, c := range commands {
		left := "memhog [-quick] " + c.name
		if c.args != "" {
			left += " " + c.args
		}
		fmt.Fprintf(&b, "  %-47s %s\n", left, c.brief)
	}
	return b.String()
}

func usage() {
	fmt.Fprint(os.Stderr, usageText())
	flag.PrintDefaults()
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "memhog: "+format+"\n", args...)
	os.Exit(1)
}
