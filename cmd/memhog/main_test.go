package main

import (
	"regexp"
	"strings"
	"testing"
)

// TestUsageListsEveryCommand pins the contract behind the registry:
// a subcommand cannot be dispatchable without appearing in the -h
// output (historically trace/chaos were added to the switch but not
// the help text).
func TestUsageListsEveryCommand(t *testing.T) {
	text := usageText()
	for _, c := range commands {
		re := regexp.MustCompile(`(^|\s)` + regexp.QuoteMeta(c.name) + `(\s|$)`)
		if !re.MatchString(text) {
			t.Errorf("subcommand %q missing from usage text:\n%s", c.name, text)
		}
		if c.brief == "" {
			t.Errorf("subcommand %q has no description", c.name)
		}
	}
	// The critical quartet from the issue must be registered at all.
	for _, name := range []string{"chaos", "chaosmatrix", "trace", "vet"} {
		found := false
		for _, c := range commands {
			if c.name == name {
				found = true
			}
		}
		if !found {
			t.Errorf("expected subcommand %q to be registered", name)
		}
	}
}

// TestCommandNamesUnique guards against a registry entry shadowing
// another (dispatch takes the first match).
func TestCommandNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range commands {
		if seen[c.name] {
			t.Errorf("duplicate subcommand %q", c.name)
		}
		seen[c.name] = true
		if strings.TrimSpace(c.name) != c.name || c.name == "" {
			t.Errorf("malformed subcommand name %q", c.name)
		}
	}
}
