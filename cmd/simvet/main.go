// Command simvet runs the repository's static-analysis suite
// (internal/analysis): seven passes that prove the simulator's
// determinism and instrumentation invariants at compile time.
//
//	SV001 nodeterm — no wall-clock/global-rand/env in the simulated stack
//	SV002 maporder — no map-iteration order reaching rendered output
//	SV003 emitpair — chaos sites co-located with events; registries never drift
//	SV004 nilrecv  — //simvet:nilsafe types tolerate nil receivers
//	SV005 errdrop  — no silently dropped errors chaos can trigger
//	SV006 hotalloc — no heap allocation or boxing in //simvet:hot paths
//	SV007 staleallow — no //simvet:allow directive that suppresses nothing
//
// Two modes:
//
//	simvet [packages]           standalone whole-program run (default ./...)
//	go vet -vettool=$(which simvet) ./...   unit-checker protocol
//
// Suppress a finding with `//simvet:allow SVnnn reason` on the line
// or the line above; the reason is mandatory.
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"strings"

	"memhogs/internal/analysis"
	"memhogs/internal/analysis/emitpair"
	"memhogs/internal/analysis/errdrop"
	"memhogs/internal/analysis/hotalloc"
	"memhogs/internal/analysis/maporder"
	"memhogs/internal/analysis/nilrecv"
	"memhogs/internal/analysis/nodeterm"
	"memhogs/internal/analysis/staleallow"
)

// suite is the full simvet pass list.
var suite = []*analysis.Analyzer{
	nodeterm.Analyzer,
	maporder.Analyzer,
	emitpair.Analyzer,
	nilrecv.Analyzer,
	errdrop.Analyzer,
	hotalloc.Analyzer,
	staleallow.Analyzer,
}

func main() {
	args := os.Args[1:]
	// The cmd/go vet driver probes the tool's identity and flags
	// before handing it compilation units. The version line must match
	// what toolID expects: with a "devel" version the last field has
	// to be a buildID, which doubles as the vet cache key — hash the
	// executable so rebuilding simvet invalidates cached results.
	if len(args) == 1 && args[0] == "-V=full" {
		fmt.Printf("simvet version devel buildID=%s\n", selfID())
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		unitCheck(args[0])
		return
	}
	if len(args) > 0 && (args[0] == "-h" || args[0] == "-help" || args[0] == "--help") {
		usage()
		return
	}
	standalone(args)
}

// selfID hashes the running executable; any rebuild changes it.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

func usage() {
	fmt.Println("usage: simvet [packages]   (default ./...)")
	fmt.Println("       go vet -vettool=$(command -v simvet) [packages]")
	fmt.Println()
	fmt.Println("passes:")
	for _, a := range suite {
		fmt.Printf("  %s %-9s %s\n", a.Code, a.Name, a.Doc)
	}
	fmt.Println()
	fmt.Println("suppress one finding with `//simvet:allow SVnnn reason` on the line or the line above")
}

// standalone loads the module's packages from source and runs the
// whole suite in one process, which also enables the whole-program
// registry checks without any vetx plumbing.
func standalone(patterns []string) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, pkgs, _, err := analysis.LoadModule(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simvet: %v\n", err)
		os.Exit(1)
	}
	diags, err := analysis.RunAnalyzers(suite, pkgs, loader.Fset, analysis.NewFactStore(), nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simvet: %v\n", err)
		os.Exit(1)
	}
	cwd, _ := os.Getwd()
	analysis.Relativize(cwd, diags)
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}
