package main

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"

	"memhogs/internal/analysis"
)

// modulePath is the module this tool audits; units outside it (the
// standard library, when go vet asks for fact-only visits) are passed
// through without type-checking.
const modulePath = "memhogs"

// vetConfig is the JSON payload cmd/go writes for each compilation
// unit when driving a -vettool (the unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// savedFacts is the gob payload of a .vetx file: every package fact
// known after analyzing the unit (its own plus everything inherited
// from its imports), so facts propagate transitively through direct-
// import vetx handoffs.
type savedFacts struct {
	Facts []analysis.PackageFact
}

func registerFactTypes() {
	for _, a := range suite {
		for _, f := range a.FactTypes {
			// Register a non-nil instance of the concrete type.
			gob.Register(reflect.New(reflect.TypeOf(f).Elem()).Interface())
		}
	}
}

func unitCheck(cfgFile string) {
	registerFactTypes()
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatalf("read %s: %v", cfgFile, err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("parse %s: %v", cfgFile, err)
	}

	facts := analysis.NewFactStore()
	for _, vetx := range sortedValues(cfg.PackageVetx) {
		loadVetx(vetx, facts)
	}

	inModule := cfg.ImportPath == modulePath || strings.HasPrefix(cfg.ImportPath, modulePath+"/") ||
		strings.HasPrefix(cfg.ImportPath, modulePath+" [") // test-augmented variant
	if !inModule {
		// Standard-library (or foreign) unit visited only for facts:
		// nothing to analyze, just keep the fact chain flowing.
		writeVetx(cfg.VetxOutput, facts)
		return
	}

	l := analysis.NewLoader()
	for path, file := range cfg.PackageFile {
		l.Exports[path] = file
	}
	for src, canonical := range cfg.ImportMap {
		if file, ok := cfg.PackageFile[canonical]; ok {
			l.Exports[src] = file
		}
	}

	var astFiles []*ast.File
	for _, f := range cfg.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(cfg.Dir, f)
		}
		af, err := parser.ParseFile(l.Fset, f, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx(cfg.VetxOutput, facts)
				return
			}
			fatalf("parse %s: %v", f, err)
		}
		astFiles = append(astFiles, af)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(cfg.ImportPath, l.Fset, astFiles, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(cfg.VetxOutput, facts)
			return
		}
		fatalf("typecheck %s: %v", cfg.ImportPath, err)
	}

	lp := &analysis.LoadedPackage{Path: cfg.ImportPath, Files: astFiles, Pkg: pkg, Info: info}
	isTestFile := func(name string) bool {
		return strings.HasSuffix(name, "_test.go")
	}
	diags, err := analysis.RunAnalyzers(suite, []*analysis.LoadedPackage{lp}, l.Fset, facts, isTestFile)
	if err != nil {
		fatalf("%v", err)
	}
	writeVetx(cfg.VetxOutput, facts)
	if cfg.VetxOnly {
		return
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

func loadVetx(file string, into *analysis.FactStore) {
	f, err := os.Open(file)
	if err != nil {
		return // a dep with no vetx simply contributes no facts
	}
	defer f.Close()
	var saved savedFacts
	if err := gob.NewDecoder(f).Decode(&saved); err != nil {
		return
	}
	for _, pf := range saved.Facts {
		into.Set(pf.Path, pf.Fact)
	}
}

func writeVetx(path string, facts *analysis.FactStore) {
	if path == "" {
		return
	}
	all := facts.All() // already sorted for deterministic bytes
	f, err := os.Create(path)
	if err != nil {
		fatalf("write vetx: %v", err)
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(savedFacts{Facts: all}); err != nil {
		fatalf("encode vetx: %v", err)
	}
}

func sortedValues(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "simvet: "+format+"\n", args...)
	os.Exit(1)
}
