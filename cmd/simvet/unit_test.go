package main

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"memhogs/internal/analysis"
	"memhogs/internal/analysis/emitpair"
)

// TestVetxRoundTrip drives the unitchecker fact protocol end to end:
// every registered fact type must survive gob encode → decode through
// a .vetx file with its payload intact, exactly as facts cross
// compilation-unit boundaries under `go vet -vettool`.
func TestVetxRoundTrip(t *testing.T) {
	registerFactTypes()

	in := analysis.NewFactStore()
	in.Set("memhogs/internal/kernel", &emitpair.EmittedKinds{Kinds: []string{"DaemonClear", "DaemonSteal"}})
	in.Set("memhogs/internal/kernel", &emitpair.FiredSites{Sites: []string{"SiteDiskRead"}})
	in.Set("memhogs/internal/events", &emitpair.DeclaredKinds{
		Kinds: []emitpair.KindDecl{{Name: "DaemonClear", Pos: "events.go:10"}},
	})
	in.Set("memhogs/internal/chaos", &emitpair.DeclaredSites{
		Sites: []emitpair.KindDecl{{Name: "SiteDiskRead", Pos: "chaos.go:20"}},
	})

	vetx := filepath.Join(t.TempDir(), "unit.vetx")
	writeVetx(vetx, in)

	out := analysis.NewFactStore()
	loadVetx(vetx, out)

	got, want := out.All(), in.All()
	if len(got) != len(want) {
		t.Fatalf("round trip kept %d facts, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Path != want[i].Path || !reflect.DeepEqual(got[i].Fact, want[i].Fact) {
			t.Errorf("fact %d: got (%s, %#v), want (%s, %#v)",
				i, got[i].Path, got[i].Fact, want[i].Path, want[i].Fact)
		}
	}
}

// TestVetxDeterministicBytes pins that the same fact store always
// serializes to identical bytes: .vetx files double as vet cache
// inputs, so nondeterministic encoding would defeat caching.
func TestVetxDeterministicBytes(t *testing.T) {
	registerFactTypes()
	dir := t.TempDir()

	write := func(name string) []byte {
		s := analysis.NewFactStore()
		// Insert in shuffled order; FactStore.All sorts.
		s.Set("memhogs/internal/events", &emitpair.DeclaredKinds{Kinds: []emitpair.KindDecl{{Name: "K", Pos: "p"}}})
		s.Set("memhogs/internal/chaos", &emitpair.DeclaredSites{Sites: []emitpair.KindDecl{{Name: "S", Pos: "q"}}})
		s.Set("memhogs/internal/chaos", &emitpair.FiredSites{Sites: []string{"S"}})
		path := filepath.Join(dir, name)
		writeVetx(path, s)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if a, b := write("a.vetx"), write("b.vetx"); !bytes.Equal(a, b) {
		t.Fatal("identical fact stores produced different .vetx bytes")
	}
}

// TestVetxEmptyAndMissing pins the tolerant paths: a unit with no
// dependencies' facts loads nothing from a missing file, and an empty
// store round-trips to an empty store.
func TestVetxEmptyAndMissing(t *testing.T) {
	registerFactTypes()
	s := analysis.NewFactStore()
	loadVetx(filepath.Join(t.TempDir(), "absent.vetx"), s)
	if n := len(s.All()); n != 0 {
		t.Fatalf("missing vetx contributed %d facts", n)
	}

	path := filepath.Join(t.TempDir(), "empty.vetx")
	writeVetx(path, analysis.NewFactStore())
	out := analysis.NewFactStore()
	loadVetx(path, out)
	if n := len(out.All()); n != 0 {
		t.Fatalf("empty store round-tripped to %d facts", n)
	}
}

// TestVetxCorruptIgnored pins that a truncated or garbage .vetx is
// skipped (contributing no facts) instead of failing the unit — the
// same recovery the vet cache relies on.
func TestVetxCorruptIgnored(t *testing.T) {
	registerFactTypes()
	path := filepath.Join(t.TempDir(), "corrupt.vetx")
	if err := os.WriteFile(path, []byte("not a gob stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := analysis.NewFactStore()
	loadVetx(path, s)
	if n := len(s.All()); n != 0 {
		t.Fatalf("corrupt vetx contributed %d facts", n)
	}
}

// TestFactTypesRegistered demands that every fact type any suite
// analyzer declares actually crosses the gob boundary: a fact type
// missing from registerFactTypes would silently fail to encode and
// break cross-unit checks only in vet-tool mode.
func TestFactTypesRegistered(t *testing.T) {
	registerFactTypes()
	for _, a := range suite {
		for _, f := range a.FactTypes {
			inst := reflect.New(reflect.TypeOf(f).Elem()).Interface().(analysis.Fact)
			s := analysis.NewFactStore()
			s.Set("p", inst)
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(savedFacts{Facts: s.All()}); err != nil {
				t.Errorf("%s: fact %T does not gob-encode: %v", a.Name, f, err)
			}
		}
	}
}
