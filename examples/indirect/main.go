// Indirect: histogramming through a data-dependent index (the BUK
// pattern, rank[key[i]]). The compiler can prefetch indirect
// references — it evaluates key[i+d] ahead of time — but it never
// releases them, because "it is too hard to predict whether the data
// will be accessed again" (§3.2). The randomly-accessed array
// therefore stays resident while the sequential arrays are streamed
// and released behind the sweep — a replacement decision better than
// the OS's uniform policy.
package main

import (
	"fmt"
	"log"

	"memhogs"
)

const src = `
program histogram
param N
array key[131072] of int64
array hist[131072] of int64
for i = 0 to N-1 {
    hist[key[i]] = hist[key[i]] + 1 @ 40
}
`

func main() {
	machine := memhogs.TestMachine()

	for _, v := range []memhogs.Version{memhogs.PrefetchOnly, memhogs.Aggressive} {
		prog, err := memhogs.Compile(src, machine, v)
		if err != nil {
			log.Fatal(err)
		}
		// The index array's contents are supplied by the application:
		// a deterministic pseudo-random key stream.
		prog.SetData("key", func(i int64) int64 {
			x := uint64(i)
			x ^= x >> 33
			x *= 0xff51afd7ed558ccd
			x ^= x >> 33
			return int64(x % 131072)
		})
		if v == memhogs.Aggressive {
			fmt.Println("=== transformed code (note: hist is prefetched but never released) ===")
			fmt.Println(prog.Listing())
		}
		rep, err := prog.Run(memhogs.RunOptions{
			Params:             map[string]int64{"N": 131072},
			InteractiveSleepMS: -1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(rep)
	}

	fmt.Println("\nExpected shape: with releasing, the sequential key array is freed behind")
	fmt.Println("the sweep, the random hist array stays resident, and the paging daemon is idle.")
}
