// Interactive: the paper's headline experiment (§1.1, Figure 10). An
// out-of-core matrix-vector multiplication shares the machine with an
// "interactive" task that touches 1 MB and then thinks. Without
// releases, the memory hog — especially the prefetching version —
// destroys the interactive task's response time; with compiler-
// inserted releases both win.
package main

import (
	"fmt"
	"log"

	"memhogs"
)

func main() {
	machine := memhogs.TestMachine()
	const sleepMS = 1000 // interactive think time
	const horizon = 10   // virtual seconds per run

	fmt.Println("out-of-core MATVEC vs a 1 MB interactive task")
	fmt.Printf("interactive think time: %d ms\n\n", sleepMS)

	fmt.Printf("%-22s %16s %14s\n", "version", "mean response", "pages re-read")
	for _, v := range memhogs.Versions() {
		rep, err := memhogs.RunBenchmarkOpts("matvec", v, machine, memhogs.RunOptions{
			InteractiveSleepMS: sleepMS,
			RepeatSeconds:      horizon,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %13.2f ms %14.1f\n",
			describe(v), rep.InteractiveMeanResponseMS, rep.InteractivePageInsPerSweep)
	}

	fmt.Println("\nExpected shape (paper Figure 10): the original and prefetch-only versions")
	fmt.Println("steal the interactive task's pages (it re-reads its whole data set from")
	fmt.Println("disk every sweep); both releasing versions restore run-alone response.")
}

func describe(v memhogs.Version) string {
	switch v {
	case memhogs.Original:
		return "O  original"
	case memhogs.PrefetchOnly:
		return "P  prefetch only"
	case memhogs.Aggressive:
		return "R  aggressive release"
	default:
		return "B  buffered release"
	}
}
