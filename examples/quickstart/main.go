// Quickstart: compile a small out-of-core program, look at the code
// the compiler produced, and run it in all four versions of the paper
// (original, prefetch-only, aggressive releasing, release buffering).
package main

import (
	"fmt"
	"log"

	"memhogs"
)

// A simple out-of-core sweep: b = 2a + 1 over arrays larger than the
// test machine's 4 MB of memory. The "@ 50" annotations give the
// modelled cost of one iteration in nanoseconds.
const src = `
program quickstart
param N
known N = 262144
array a[N] of float64
array b[N] of float64
for i = 0 to N-1 {
    b[i] = a[i] * 2 + 1 @ 50
}
`

func main() {
	machine := memhogs.TestMachine()

	// Compile once with hints to see what the compiler inserted.
	prog, err := memhogs.Compile(src, machine, memhogs.Buffered)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== transformed code (compiler-inserted pf/rel calls) ===")
	fmt.Println(prog.Listing())
	st := prog.Stats()
	fmt.Printf("analysis: %d refs, %d prefetch directives, %d release directives (%d with reuse priority)\n\n",
		st.Refs, st.PrefetchDirectives, st.ReleaseDirectives, st.ReusePriorityReleases)

	// Run each version and compare.
	fmt.Println("=== the four program versions ===")
	for _, v := range memhogs.Versions() {
		p, err := memhogs.Compile(src, machine, v)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := p.Run(memhogs.RunOptions{InteractiveSleepMS: -1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(rep)
	}
	fmt.Println("\nExpected shape: prefetching (P) hides most I/O stall; releasing (R/B)")
	fmt.Println("also silences the paging daemon (zero activations, zero pages stolen).")
}
