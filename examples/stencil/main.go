// Stencil: the paper's worked example (§2.4, Figure 3) — a nearest-
// neighbour averaging kernel with group locality. The compiler
// identifies the *leading* reference of the group (a[i+1][...]) as the
// one to prefetch and the *trailing* reference (a[i-1][...]) as the
// one to release, and encodes the temporal reuse along i in the
// release priority (equation 2).
//
// The example also shows how the analysis depends on the memory the
// compiler may assume: with ample memory, the reuse along i is
// exploitable and the prefetch is gated to the first rows; on a tiny
// machine it is not.
package main

import (
	"fmt"
	"log"

	"memhogs"
)

const stencil = `
program stencil
param N
known N = 1024
array a[N][N] of float64
for i = 1 to N-2 {
    for j = 1 to N-2 {
        a[i][j] = (a[i+1][j-1] + a[i+1][j] + a[i+1][j+1]
                 + a[i][j-1]   + a[i][j]   + a[i][j+1]
                 + a[i-1][j-1] + a[i-1][j] + a[i-1][j+1]) / 9 @ 60
    }
}
`

func main() {
	big := memhogs.DefaultMachine() // 75 MB: three rows easily fit
	tiny := memhogs.TestMachine()   // 4 MB

	for _, m := range []struct {
		name string
		mach memhogs.Machine
	}{{"75 MB machine", big}, {"4 MB machine", tiny}} {
		prog, err := memhogs.Compile(stencil, m.mach, memhogs.Buffered)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", m.name)
		fmt.Println(prog.Listing())
		st := prog.Stats()
		fmt.Printf("groups merged %d references into %d prefetch + %d release directive(s)\n\n",
			st.Refs, st.PrefetchDirectives, st.ReleaseDirectives)
	}

	// Run it on the tiny machine: the 8 MB array does not fit in 4 MB.
	prog, err := memhogs.Compile(stencil, tiny, memhogs.Buffered)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := prog.Run(memhogs.RunOptions{InteractiveSleepMS: -1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("out-of-core run on the 4 MB machine (buffered releasing):")
	fmt.Print(rep)
}
