// Timeline: watch the memory system's dynamics while a memory hog and
// an interactive task share the machine. With prefetch-only (P), the
// hog's resident set swallows the machine within a fraction of a
// second, the interactive task's pages go to zero, and the paging
// daemon's stolen-page counter climbs. With buffered releasing (B),
// the free list stays stocked, the daemon stays idle, and the
// interactive task keeps its pages.
package main

import (
	"fmt"
	"log"

	"memhogs"
)

func main() {
	machine := memhogs.TestMachine()
	for _, v := range []memhogs.Version{memhogs.PrefetchOnly, memhogs.Buffered} {
		fmt.Printf("=== matvec (%s) with a 1 MB interactive task ===\n", v)
		out, err := memhogs.Timeline("matvec", v, machine, 5, 1000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
	}
}
