package memhogs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestDuelFacade(t *testing.T) {
	out, err := Duel("matvec", "embar", TestMachine())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"matvec", "embar", "stolen(A)", "O", "B"} {
		if !strings.Contains(out, want) {
			t.Errorf("duel output missing %q:\n%s", want, out)
		}
	}
}

func TestSensitivityFacade(t *testing.T) {
	out, err := Sensitivity("matvec", true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "mem/data") {
		t.Fatalf("sensitivity output malformed:\n%s", out)
	}
}

func TestCampaignFacadeParallelExperiment(t *testing.T) {
	// The Campaign facade must produce the same rendered experiment at
	// any worker count (table3 rides on the heaviest campaign).
	serial, err := Campaign{Quick: true, Workers: 1}.Experiment("table3")
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Campaign{Quick: true, Workers: 4}.Experiment("table3")
	if err != nil {
		t.Fatal(err)
	}
	if serial != parallel {
		t.Errorf("parallel table3 differs from serial:\n%s\nvs\n%s", parallel, serial)
	}
	if !strings.Contains(serial, "pages released") {
		t.Errorf("table3 malformed:\n%s", serial)
	}
}

func TestCampaignFacadeUnknownID(t *testing.T) {
	if _, err := (Campaign{Quick: true}).Experiment("nosuch"); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}

func TestTimelineFacade(t *testing.T) {
	out, err := Timeline("matvec", PrefetchOnly, TestMachine(), 3, 500)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"memory timeline", "free", "interactive", "samples"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q", want)
		}
	}
}

func TestTimelineWithoutInteractive(t *testing.T) {
	out, err := Timeline("embar", Buffered, TestMachine(), 3, -1)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "interactive") {
		t.Fatal("interactive task present despite sleepMS < 0")
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep, err := RunBenchmark("embar", Aggressive, TestMachine())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Benchmark != "embar" || back.Version != "R" {
		t.Fatalf("round trip lost identity: %+v", back)
	}
	if back.ElapsedSeconds != rep.ElapsedSeconds || back.PagesReleased != rep.PagesReleased {
		t.Fatal("round trip lost numbers")
	}
}

func TestVerifyQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick campaign")
	}
	out, _, err := Verify(true, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The quick campaign need not pass every full-scale claim, but it
	// must render and evaluate them all.
	if !strings.Contains(out, "claims hold") {
		t.Fatalf("verify output malformed:\n%s", out)
	}
	for _, id := range []string{"C1", "C3", "C7c", "C9a"} {
		if !strings.Contains(out, id) {
			t.Errorf("claim %s not evaluated", id)
		}
	}
}

func TestVetFacade(t *testing.T) {
	// The pathological benchmark reports its signature finding through
	// the public API...
	rep, err := VetBenchmark("fftpde", TestMachine())
	if err != nil {
		t.Fatal(err)
	}
	if rep.HasErrors() || rep.Clean() {
		t.Fatalf("fftpde: want warnings without errors, got %d errors / %d warnings", rep.Errors, rep.Warnings)
	}
	found := false
	for _, f := range rep.Findings {
		if f.Code == "HV006" {
			found = true
			if f.Severity != "warning" || f.Array != "x" || f.Fix == "" {
				t.Fatalf("HV006 finding malformed: %+v", f)
			}
		}
	}
	if !found {
		t.Fatalf("fftpde: no HV006 finding in %v", rep.Findings)
	}
	if !strings.Contains(rep.String(), "HV006") {
		t.Fatalf("rendered report missing HV006:\n%s", rep)
	}

	// ...and the clean benchmark stays clean, with the analysis summary
	// available as HV000 notes.
	clean, err := VetBenchmark("matvec", TestMachine())
	if err != nil {
		t.Fatal(err)
	}
	if !clean.Clean() || len(clean.Findings) != 0 {
		t.Fatalf("matvec: want zero findings, got:\n%s", clean)
	}
	prog, err := Compile(`
program tiny
array a[4096] of float64
for i = 0 to 4095 { a[i] = a[i] + 1 @ 10 }
`, TestMachine(), Buffered)
	if err != nil {
		t.Fatal(err)
	}
	ws := prog.VetWithStats()
	if ws.Notes < 2 || !strings.Contains(ws.String(), "HV000") {
		t.Fatalf("VetWithStats missing HV000 summary notes:\n%s", ws)
	}
}
