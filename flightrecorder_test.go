// Acceptance tests for the event-level flight recorder: every counter
// in the registry must agree with the run's own statistics, the Chrome
// export must be valid JSON, and the whole trace must be byte-for-byte
// deterministic.
package memhogs

import (
	"bytes"
	"encoding/json"
	"testing"

	"memhogs/internal/driver"
	"memhogs/internal/events"
	"memhogs/internal/kernel"
	"memhogs/internal/rt"
	"memhogs/internal/workload"
)

// traceRun runs one scaled benchmark with the recorder attached and
// returns the recorder next to the driver's result.
func traceRun(t *testing.T, bench string, mode rt.Mode) (*events.Recorder, *driver.Result) {
	t.Helper()
	spec, err := workload.ScaledByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	var rec *events.Recorder
	cfg := driver.TestRunConfig(mode)
	cfg.OnSystem = func(sys *kernel.System) {
		rec = events.New(sys.Sim, 1<<18)
		sys.SetEvents(rec)
	}
	res, err := driver.Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rec, res
}

// TestTraceEventCountsMatchRunStats is the core acceptance criterion:
// the recorder's per-kind totals must equal the statistics each layer
// keeps for itself, in every version. A mismatch means an event is
// emitted on the wrong path (or a path is missing instrumentation).
func TestTraceEventCountsMatchRunStats(t *testing.T) {
	for _, mode := range []rt.Mode{rt.ModeOriginal, rt.ModePrefetch, rt.ModeAggressive, rt.ModeBuffered} {
		t.Run(mode.String(), func(t *testing.T) {
			rec, res := traceRun(t, "matvec", mode)
			c := rec.Counts()
			checks := []struct {
				kind events.Kind
				want int64
			}{
				{events.FaultSoft, res.VM.SoftFaults},
				{events.FaultRescue, res.VM.RescueFaults},
				{events.FaultHard, res.VM.HardFaults},
				{events.PageIn, res.VM.PageIns},
				{events.DaemonWake, res.Daemon.Activations},
				{events.DaemonClear, res.Daemon.Invalidations},
				{events.DaemonSteal, res.Daemon.Stolen},
				{events.DaemonDonated, res.Daemon.Donated},
				{events.ReleaserFree, res.Releaser.Freed},
				{events.ReleaserSkipRef, res.Releaser.SkippedRef},
				{events.ReleaserSkipGone, res.Releaser.SkippedGone},
				{events.RTPrefetchFilter, res.RT.PrefetchFiltered},
				{events.RTPrefetchIssue, res.RT.PrefetchIssued},
				{events.RTPrefetchDrop, res.RT.PrefetchDropped},
				{events.RTReleaseDup, res.RT.ReleaseDupDropped},
				{events.RTReleaseNotRes, res.RT.ReleaseNotResident},
				{events.RTReleaseBuffer, res.RT.ReleaseBuffered},
				{events.RTReleaseOverflow, res.RT.ReleaseOverflow},
				{events.RTPressureDrain, res.RT.PressureDrains},
				{events.PMRefresh, res.PM.SharedRefreshes},
			}
			for _, ck := range checks {
				if got := c.Get(ck.kind); got != ck.want {
					t.Errorf("counts[%s] = %d, want %d (layer stat)", ck.kind, got, ck.want)
				}
			}
			// The comparison must not be vacuous. A memory hog always
			// faults; without release hints the daemon must steal, and
			// with them the releaser must free (releases keeping the
			// daemon idle is the paper's headline).
			if c.Get(events.FaultHard) == 0 {
				t.Fatal("trivial run: no hard faults")
			}
			if mode == rt.ModeOriginal && c.Get(events.DaemonSteal) == 0 {
				t.Fatal("unhinted run: daemon stole nothing")
			}
			if mode == rt.ModeBuffered && c.Get(events.ReleaserFree) == 0 {
				t.Fatal("buffered run released nothing")
			}
		})
	}
}

// TestTieringCountersMatchRunStats is the same acceptance criterion
// for the far-memory tier: on a machine whose budget is split
// DRAM:far, the recorder's tier-demote/tier-promote/fault-far totals
// must equal the VM, releaser and far-tier statistics — and the run
// must actually exercise the tier, or the comparison is vacuous.
func TestTieringCountersMatchRunStats(t *testing.T) {
	spec, err := workload.ScaledByName("fftpde")
	if err != nil {
		t.Fatal(err)
	}
	var rec *events.Recorder
	var sysFar *kernel.System
	cfg := driver.TestRunConfig(rt.ModeBuffered)
	cfg.Kernel.UserMemPages -= 64
	cfg.Kernel.Far.Pages = 64
	cfg.OnSystem = func(sys *kernel.System) {
		sysFar = sys
		rec = events.New(sys.Sim, 1<<18)
		sys.SetEvents(rec)
	}
	res, err := driver.Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := rec.Counts()
	checks := []struct {
		kind events.Kind
		want int64
	}{
		{events.TierDemote, res.VM.Demotions},
		{events.TierDemote, res.Releaser.Demoted},
		{events.TierDemote, res.Far.Demotions},
		{events.TierPromote, res.VM.Promotions},
		{events.TierPromote, res.Far.Promotions},
	}
	for _, ck := range checks {
		if got := c.Get(ck.kind); got != ck.want {
			t.Errorf("counts[%s] = %d, want %d (layer stat)", ck.kind, got, ck.want)
		}
	}
	// Every far fault promotes, and prefetch may promote more; the
	// promote total splits exactly across the two paths.
	if got, want := c.Get(events.FaultFar), res.VM.FarFaults; got != want {
		t.Errorf("counts[fault-far] = %d, want %d (VM.FarFaults)", got, want)
	}
	if res.VM.Promotions != res.VM.FarFaults+res.PM.PrefetchPromoted {
		t.Errorf("promotions %d != far faults %d + prefetch promotions %d",
			res.VM.Promotions, res.VM.FarFaults, res.PM.PrefetchPromoted)
	}
	if c.Get(events.TierDemote) == 0 {
		t.Fatal("trivial run: nothing demoted to the far tier")
	}
	if c.Get(events.TierPromote) == 0 {
		t.Fatal("trivial run: nothing promoted back from the far tier")
	}
	// The far-tier high-water mark must be consistent with the
	// recorder's demote/promote totals: it never exceeds total inflow,
	// never exceeds the tier's capacity, and is at least the net
	// occupancy left at the end of the run.
	peakFar := res.VM.PeakFarResident
	if peakFar <= 0 {
		t.Error("PeakFarResident = 0 on a run that demoted pages")
	}
	if peakFar > int64(cfg.Kernel.Far.Pages) {
		t.Errorf("PeakFarResident %d exceeds far-tier size %d", peakFar, cfg.Kernel.Far.Pages)
	}
	if peakFar > c.Get(events.TierDemote) {
		t.Errorf("PeakFarResident %d exceeds tier-demote total %d", peakFar, c.Get(events.TierDemote))
	}
	if net := c.Get(events.TierDemote) - c.Get(events.TierPromote); peakFar < net {
		t.Errorf("PeakFarResident %d below net tier occupancy %d", peakFar, net)
	}
	// End-of-run conservation: pages still in the tier are exactly
	// demotions minus promotions, and the audit must agree.
	if live := res.Far.Demotions - res.Far.Promotions; live != int64(sysFar.Far.UsedCount()) {
		t.Errorf("far tier holds %d pages, demotions-promotions says %d",
			sysFar.Far.UsedCount(), live)
	}
	if err := sysFar.Audit(); err != nil {
		t.Errorf("post-run audit: %v", err)
	}
}

// chromeDoc is the subset of the Chrome trace-event format the tests
// inspect.
type chromeDoc struct {
	TraceEvents []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
		Pid  int    `json:"pid"`
		Tid  int    `json:"tid"`
	} `json:"traceEvents"`
	DisplayTimeUnit string           `json:"displayTimeUnit"`
	OtherData       map[string]int64 `json:"otherData"`
}

// TestTraceFacade checks the public entry point end to end: valid
// Chrome JSON, instant-event counts that agree with the counter
// registry and the run report, and byte-identical output across runs.
func TestTraceFacade(t *testing.T) {
	tr, err := Trace("matvec", Buffered, TestMachine(), 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Dropped != 0 {
		t.Fatalf("quick trace dropped %d events; ring too small for the acceptance check", tr.Dropped)
	}
	var doc chromeDoc
	if err := json.Unmarshal(tr.ChromeJSON, &doc); err != nil {
		t.Fatalf("ChromeJSON is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" || len(doc.TraceEvents) == 0 {
		t.Fatalf("malformed trace document: unit=%q events=%d", doc.DisplayTimeUnit, len(doc.TraceEvents))
	}
	// Count the emitted instant events by name and compare with both
	// the exact counter registry and the run's report.
	byName := map[string]int64{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "i" {
			byName[e.Name]++
		}
	}
	if byName["releaser-free"] != tr.Counters["releaser-free"] ||
		byName["releaser-free"] != tr.Report.PagesReleased {
		t.Errorf("release events %d, counter %d, report %d — must all agree",
			byName["releaser-free"], tr.Counters["releaser-free"], tr.Report.PagesReleased)
	}
	if byName["daemon-steal"] != tr.Counters["daemon-steal"] ||
		byName["daemon-steal"] != tr.Report.PagesStolen {
		t.Errorf("steal events %d, counter %d, report %d — must all agree",
			byName["daemon-steal"], tr.Counters["daemon-steal"], tr.Report.PagesStolen)
	}
	if byName["fault-hard"] != tr.Report.HardFaults {
		t.Errorf("hard-fault events %d, report %d", byName["fault-hard"], tr.Report.HardFaults)
	}
	// otherData carries the exact totals.
	for name, n := range tr.Counters {
		if doc.OtherData[name] != n {
			t.Errorf("otherData[%s] = %d, want %d", name, doc.OtherData[name], n)
		}
	}
	// Determinism: a second run must produce byte-identical output.
	tr2, err := Trace("matvec", Buffered, TestMachine(), 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tr.ChromeJSON, tr2.ChromeJSON) {
		t.Fatal("ChromeJSON differs between identical runs")
	}
	if tr.Log != tr2.Log {
		t.Fatal("Log differs between identical runs")
	}
}
