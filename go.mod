module memhogs

go 1.22
