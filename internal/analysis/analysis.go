// Package analysis is the foundation of simvet, the repository's own
// static-analysis suite: a deliberately small, dependency-free
// reimplementation of the golang.org/x/tools/go/analysis vocabulary
// (Analyzer, Pass, Diagnostic, package facts) on top of the standard
// library's go/ast and go/types.
//
// The paper's thesis is that a compiler can prove memory-management
// properties ahead of execution instead of discovering them run by
// run; simvet applies the same move to this repository's *own*
// invariants. Everything the simulator guarantees dynamically —
// byte-identical parallel campaigns, counter-exact flight recording,
// seed-replayable chaos — rests on rules that used to be enforced only
// by tests: no wall-clock time or unseeded randomness inside the
// simulated stack, no map-iteration order leaking into rendered
// output, every chaos injection site co-located with its flight-
// recorder event, nil-tolerant fast paths on the instrumentation
// types, no silently dropped errors from the storage layers, no heap
// allocation on the per-event hot paths. The analyzers in the sibling
// packages (nodeterm, maporder, emitpair, nilrecv, errdrop, hotalloc,
// staleallow) prove those rules once, statically, in CI — and
// staleallow turns the suite on its own escape hatch, flagging any
// //simvet:allow directive that no longer suppresses anything.
//
// Why not import golang.org/x/tools directly? The module is kept
// dependency-free on purpose (the simulator itself uses nothing but
// the standard library), so this package mirrors the x/tools API
// shape closely enough that the analyzers could be ported to the real
// framework by changing imports, while the driver (cmd/simvet)
// implements both a standalone whole-program mode and the `go vet
// -vettool` unit-checker protocol.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
)

// Analyzer describes one static-analysis pass. Each simvet pass owns
// exactly one diagnostic code (SV001..SV007).
type Analyzer struct {
	// Name is the short pass name, e.g. "nodeterm".
	Name string
	// Code is the stable diagnostic code, e.g. "SV001". Every
	// diagnostic the pass reports carries this code, and
	// `//simvet:allow SV001 <reason>` suppresses it line by line.
	Code string
	// Doc is the one-paragraph description shown by `simvet -help`.
	Doc string
	// Run executes the pass over one package.
	Run func(*Pass) error
	// FactTypes lists the package-fact prototypes the pass exports or
	// imports; the drivers register them for (de)serialization.
	FactTypes []Fact
}

// Fact is a package-level fact: a gob-encodable pointer type that one
// pass attaches to a package and downstream passes (analyzing
// importers of that package) can retrieve. Facts are how emitpair
// checks whole-registry properties package by package.
type Fact interface {
	// AFact is a marker method (same convention as x/tools).
	AFact()
}

// Diagnostic is one finding, positioned in the analyzed package's
// file set.
type Diagnostic struct {
	Pos     token.Pos
	Code    string
	Message string
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// report receives diagnostics; installed by the driver.
	report func(Diagnostic)
	// facts is the driver's shared fact store.
	facts *FactStore
}

// NewPass assembles a Pass; drivers use it, analyzers never do.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, facts *FactStore, report func(Diagnostic)) *Pass {
	return &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info, facts: facts, report: report}
}

// Reportf records a diagnostic at pos under the analyzer's code.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(Diagnostic{Pos: pos, Code: p.Analyzer.Code, Message: fmt.Sprintf(format, args...)})
}

// ExportPackageFact attaches fact to the package being analyzed.
func (p *Pass) ExportPackageFact(fact Fact) {
	p.facts.Set(p.Pkg.Path(), fact)
}

// ImportPackageFact copies the fact of fact's concrete type previously
// exported for pkg into *fact, reporting whether one existed.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	return p.facts.Get(pkg.Path(), fact)
}

// ImportPathFact is ImportPackageFact keyed by import path directly;
// the emitpair whole-registry check walks transitive imports by path.
func (p *Pass) ImportPathFact(path string, fact Fact) bool {
	return p.facts.Get(path, fact)
}

// AllFacts returns every package fact accumulated so far in this run
// (in vet-tool mode: the unit's own facts plus everything carried in
// by its imports' .vetx files). Whole-program checks on the facade
// package union over these.
func (p *Pass) AllFacts() []PackageFact {
	return p.facts.All()
}

// FactStore holds package facts for a whole driver run, keyed by
// (package path, concrete fact type).
type FactStore struct {
	m map[factKey]Fact
}

type factKey struct {
	path string
	typ  reflect.Type
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: map[factKey]Fact{}}
}

// Set records fact for the package at path, replacing any previous
// fact of the same concrete type.
func (s *FactStore) Set(path string, fact Fact) {
	s.m[factKey{path, reflect.TypeOf(fact)}] = fact
}

// Get copies the stored fact of out's concrete type for path into
// *out, reporting whether one existed. out must be a non-nil pointer,
// like the x/tools fact API.
func (s *FactStore) Get(path string, out Fact) bool {
	got, ok := s.m[factKey{path, reflect.TypeOf(out)}]
	if !ok {
		return false
	}
	reflect.ValueOf(out).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

// All returns every stored fact as (path, fact) pairs, sorted by
// package path then fact type so .vetx serialization and any
// diagnostics derived from the iteration stay deterministic.
func (s *FactStore) All() []PackageFact {
	var out []PackageFact
	for k, f := range s.m {
		out = append(out, PackageFact{Path: k.path, Fact: f})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Path != b.Path {
			return a.Path < b.Path
		}
		return reflect.TypeOf(a.Fact).String() < reflect.TypeOf(b.Fact).String()
	})
	return out
}

// PackageFact pairs a fact with the package path it belongs to.
type PackageFact struct {
	Path string
	Fact Fact
}
