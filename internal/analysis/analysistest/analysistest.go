// Package analysistest runs a simvet analyzer over GOPATH-style
// fixture packages (testdata/src/<path>/*.go) and checks its
// diagnostics against `// want "regexp"` comments, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract closely enough
// that the fixtures would port unchanged.
//
// Expectations: a comment `// want "re"` (one or more quoted regexps)
// on a source line demands exactly that many diagnostics on the line,
// each matching one regexp. Lines without a want comment must produce
// no diagnostics. `//simvet:allow SVnnn reason` directives are honored
// before matching, so fixtures can demonstrate the allowlist.
package analysistest

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"memhogs/internal/analysis"
)

// Run loads each named fixture package from testdataDir/src/<path>,
// analyzes them in the given order (list dependencies first so
// package facts flow to their importers), and verifies the want
// expectations in every named package.
func Run(t *testing.T, testdataDir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	RunAll(t, testdataDir, []*analysis.Analyzer{a}, pkgPaths...)
}

// RunAll is Run for a multi-analyzer suite: the fixtures see the
// passes' combined diagnostics, which is what cross-pass checks like
// staleallow (SV007 judges directives against every other pass's
// output) need to demonstrate.
func RunAll(t *testing.T, testdataDir string, analyzers []*analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	srcRoot := filepath.Join(testdataDir, "src")
	l := analysis.NewLoader()

	fixtures, err := discover(srcRoot)
	if err != nil {
		t.Fatalf("discover fixtures: %v", err)
	}
	for path, files := range fixtures {
		l.SrcFiles[path] = files
	}
	if err := l.StdExports(".", externalImports(fixtures)); err != nil {
		t.Fatalf("resolve standard-library imports: %v", err)
	}

	var pkgs []*analysis.LoadedPackage
	for _, path := range pkgPaths {
		lp, err := l.Load(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		pkgs = append(pkgs, lp)
	}
	diags, err := analysis.RunAnalyzers(analyzers, pkgs, l.Fset, analysis.NewFactStore(), nil)
	if err != nil {
		t.Fatalf("run analyzers: %v", err)
	}
	checkWants(t, l, pkgs, diags)
}

// discover maps every directory under srcRoot containing .go files to
// its fixture import path (the slash-separated relative directory).
func discover(srcRoot string) (map[string][]string, error) {
	fixtures := map[string][]string{}
	err := filepath.Walk(srcRoot, func(p string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if fi.IsDir() || !strings.HasSuffix(p, ".go") {
			return nil
		}
		rel, err := filepath.Rel(srcRoot, filepath.Dir(p))
		if err != nil {
			return err
		}
		path := filepath.ToSlash(rel)
		fixtures[path] = append(fixtures[path], p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, files := range fixtures {
		sort.Strings(files)
	}
	return fixtures, nil
}

// externalImports returns the import paths referenced by the fixtures
// that are not fixtures themselves — i.e. the standard-library
// packages whose export data the loader must resolve.
func externalImports(fixtures map[string][]string) []string {
	seen := map[string]bool{}
	fset := token.NewFileSet()
	for _, files := range fixtures {
		for _, f := range files {
			af, err := parser.ParseFile(fset, f, nil, parser.ImportsOnly)
			if err != nil {
				continue // surfaces as a load error later
			}
			for _, imp := range af.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if _, isFixture := fixtures[path]; !isFixture {
					seen[path] = true
				}
			}
		}
	}
	var out []string
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)`)

// quotedRE accepts both x/tools-style backtick patterns and
// double-quoted ones: `re` or "re".
var quotedRE = regexp.MustCompile("`([^`]*)`" + `|"((?:[^"\\]|\\.)*)"`)

type key struct {
	file string
	line int
}

// checkWants compares diagnostics against the fixtures' expectations.
func checkWants(t *testing.T, l *analysis.Loader, pkgs []*analysis.LoadedPackage, diags []analysis.RenderedDiag) {
	t.Helper()
	want := map[key][]*regexp.Regexp{}
	for _, lp := range pkgs {
		for _, f := range lp.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := l.Fset.Position(c.Pos())
					for _, q := range quotedRE.FindAllStringSubmatch(m[1], -1) {
						pat := q[1]
						if pat == "" {
							pat = q[2]
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						}
						k := key{pos.Filename, pos.Line}
						want[k] = append(want[k], re)
					}
				}
			}
		}
	}
	matched := map[key][]bool{}
	for k, res := range want {
		matched[k] = make([]bool, len(res))
	}
	for _, d := range diags {
		k := key{d.File, d.Line}
		res := want[k]
		found := false
		for i, re := range res {
			if !matched[k][i] && re.MatchString(d.Message) {
				matched[k][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", diagString(d))
		}
	}
	for k, res := range want {
		for i, re := range res {
			if !matched[k][i] {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
			}
		}
	}
}

func diagString(d analysis.RenderedDiag) string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Code, d.Message)
}
