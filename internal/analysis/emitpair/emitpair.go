// Package emitpair implements SV003: the chaos/flight-recorder
// registries can never silently drift. Two families of checks, glued
// together with package facts:
//
// Locally (per package): every probabilistic chaos injection call
// (Injector.Fire/FireDelay/FireExtra) must name its site as a
// chaos.<Site> constant and be co-located with an events.Emit of a
// matching kind — in the same function, or in a helper that function
// calls directly in the same package. "Co-located" is what makes a
// chaos run diagnosable: each injected fault lands next to the event
// that records what the stack did about it. Sites the engine itself
// accounts for (disk latency/errors, timed hot-unplug) only need the
// engine's own ChaosInject event and carry no co-location obligation.
//
// Globally (whole program): every declared events.Kind constant must
// be emitted somewhere in non-test code, and every probabilistic
// chaos.Site must be injected somewhere. Each package exports
// EmittedKinds/FiredSites facts; the pass over the root facade
// package ("memhogs", which transitively imports every emitter)
// unions all facts and reports dead registry entries at the facade's
// import of the registry package.
package emitpair

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"memhogs/internal/analysis"
)

// Analyzer is the SV003 pass.
var Analyzer = &analysis.Analyzer{
	Name: "emitpair",
	Code: "SV003",
	Doc: "every chaos injection site must be co-located with an events.Emit of the " +
		"matching kind, and every declared events.Kind must be emitted somewhere",
	Run: run,
	FactTypes: []analysis.Fact{
		(*EmittedKinds)(nil), (*FiredSites)(nil),
		(*DeclaredKinds)(nil), (*DeclaredSites)(nil),
	},
}

// EmittedKinds is the package fact listing every events.Kind constant
// the package passes to Recorder.Emit.
type EmittedKinds struct{ Kinds []string }

// AFact marks EmittedKinds as a fact.
func (*EmittedKinds) AFact() {}

// FiredSites lists every chaos.Site constant the package injects via
// Fire/FireDelay/FireExtra.
type FiredSites struct{ Sites []string }

// AFact marks FiredSites as a fact.
func (*FiredSites) AFact() {}

// KindDecl records one declared events.Kind constant with its
// pre-rendered declaration position (positions cannot cross
// compilation units in vet-tool mode, so they travel as strings).
type KindDecl struct{ Name, Pos string }

// DeclaredKinds is exported by the events package itself.
type DeclaredKinds struct{ Kinds []KindDecl }

// AFact marks DeclaredKinds as a fact.
func (*DeclaredKinds) AFact() {}

// DeclaredSites is exported by the chaos package itself.
type DeclaredSites struct{ Sites []KindDecl }

// AFact marks DeclaredSites as a fact.
func (*DeclaredSites) AFact() {}

// pairing maps each probabilistic chaos site to the event kinds that
// may discharge its co-location obligation (the site→event table in
// docs/INTERNALS.md). Sites absent from the map are engine-accounted:
// the Injector's own ChaosInject event is their only record.
var pairing = map[string][]string{
	"ReleaserStall": {"ReleaserFree", "ReleaserSkipRef", "ReleaserSkipGone"},
	"DaemonStorm":   {"DaemonWake", "DaemonSteal"},
	"ReleaseDrop":   {"RTReleaseDup", "RTReleaseNotRes", "RTReleaseBuffer", "RTReleaseOverflow", "RTReleaseIssue"},
	"ReleaseDup":    {"RTReleaseDup", "RTReleaseNotRes", "RTReleaseBuffer", "RTReleaseOverflow", "RTReleaseIssue"},
	"ReleaseLate":   {"RTReleaseDup", "RTReleaseNotRes", "RTReleaseBuffer", "RTReleaseOverflow", "RTReleaseIssue"},
	"PrefetchDrop":  {"RTPrefetchFilter", "RTPrefetchIssue", "RTPrefetchDrop"},
	"PrefetchDup":   {"RTPrefetchFilter", "RTPrefetchIssue", "RTPrefetchDrop"},
	"StaleShared":   {"PMRefresh"},
}

// engineScheduled sites fire inside the chaos engine on its own
// timeline (mem hot-unplug/replug), so no package outside chaos ever
// calls Fire for them; the whole-program "never injected" check
// exempts them.
var engineScheduled = map[string]bool{
	"MemShrink": true, "MemGrow": true,
	"FarShrink": true, "FarGrow": true,
}

// facadePath is the module-root package whose pass performs the
// whole-program registry checks; it transitively imports every
// emitter (the analyzer testdata mirrors the name).
const facadePath = "memhogs"

func run(pass *analysis.Pass) error {
	inChaosPkg := pass.Pkg.Name() == "chaos"

	emitted := map[string]bool{}
	fired := map[string]bool{}

	// Function summaries for the one-hop co-location rule.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	directEmits := map[*ast.FuncDecl]map[string]bool{}
	callees := map[*ast.FuncDecl][]*ast.FuncDecl{}
	for _, fd := range decls {
		em := map[string]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if kind, ok := emitKind(pass, call); ok {
				em[kind] = true
				emitted[kind] = true
			}
			if callee := analysis.CalleeFunc(pass.TypesInfo, call); callee != nil && callee.Pkg() == pass.Pkg {
				if cd, ok := decls[callee]; ok {
					callees[fd] = append(callees[fd], cd)
				}
			}
			return true
		})
		directEmits[fd] = em
	}

	// The co-location check proper.
	for _, fd := range decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := analysis.CalleeFunc(pass.TypesInfo, call)
			if callee == nil || callee.Pkg() == nil || callee.Pkg().Name() != "chaos" {
				return true
			}
			switch callee.Name() {
			case "Fire", "FireDelay", "FireExtra":
			default:
				return true
			}
			if inChaosPkg {
				return true // the engine's own plumbing
			}
			if len(call.Args) == 0 {
				return true
			}
			site, ok := analysis.ConstName(pass.TypesInfo, call.Args[0], "chaos", "Site")
			if !ok {
				pass.Reportf(call.Pos(), "chaos injection with a non-constant site argument; name the chaos.Site constant so the site registry stays auditable")
				return true
			}
			fired[site] = true
			need := pairing[site]
			if len(need) == 0 {
				return true // engine-accounted site
			}
			if !emitsOneOf(fd, need, directEmits, callees) {
				pass.Reportf(call.Pos(), "chaos site %s injected without a co-located events.Emit of %s (in this function or a direct same-package callee)", site, orList(need))
			}
			return true
		})
	}

	// Registry declarations, exported by the registries themselves.
	if pass.Pkg.Name() == "events" {
		pass.ExportPackageFact(&DeclaredKinds{Kinds: declaredConsts(pass, "Kind", "KindCount")})
	}
	if inChaosPkg {
		pass.ExportPackageFact(&DeclaredSites{Sites: declaredConsts(pass, "Site", "NumSites")})
	}
	pass.ExportPackageFact(&EmittedKinds{Kinds: sortedKeys(emitted)})
	pass.ExportPackageFact(&FiredSites{Sites: sortedKeys(fired)})

	if pass.Pkg.Path() == facadePath {
		checkRegistries(pass)
	}
	return nil
}

// emitKind recognizes a call to events.(*Recorder).Emit and resolves
// its kind argument to a constant name.
func emitKind(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	callee := analysis.CalleeFunc(pass.TypesInfo, call)
	if callee == nil || callee.Name() != "Emit" || callee.Pkg() == nil || callee.Pkg().Name() != "events" {
		return "", false
	}
	if len(call.Args) == 0 {
		return "", false
	}
	return analysis.ConstName(pass.TypesInfo, call.Args[0], "events", "Kind")
}

// emitsOneOf reports whether fd emits any of the kinds directly or
// through one hop into a same-package callee.
func emitsOneOf(fd *ast.FuncDecl, kinds []string, directEmits map[*ast.FuncDecl]map[string]bool, callees map[*ast.FuncDecl][]*ast.FuncDecl) bool {
	for _, k := range kinds {
		if directEmits[fd][k] {
			return true
		}
	}
	for _, cd := range callees[fd] {
		for _, k := range kinds {
			if directEmits[cd][k] {
				return true
			}
		}
	}
	return false
}

// declaredConsts collects the constants of the named type declared in
// this package (excluding the count sentinel), with rendered
// positions.
func declaredConsts(pass *analysis.Pass, typeName, sentinel string) []KindDecl {
	var out []KindDecl
	scope := pass.Pkg.Scope()
	names := scope.Names() // already sorted
	for _, name := range names {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || name == sentinel {
			continue
		}
		named, ok := c.Type().(*types.Named)
		if !ok || named.Obj().Name() != typeName || named.Obj().Pkg() != pass.Pkg {
			continue
		}
		pos := pass.Fset.Position(c.Pos())
		out = append(out, KindDecl{Name: name, Pos: fmt.Sprintf("%s:%d", pos.Filename, pos.Line)})
	}
	return out
}

// checkRegistries runs on the facade package: union every package's
// facts and report registry entries nothing ever uses.
func checkRegistries(pass *analysis.Pass) {
	var declKinds DeclaredKinds
	var declSites DeclaredSites
	emitted := map[string]bool{}
	fired := map[string]bool{}
	for _, pf := range pass.AllFacts() {
		switch f := pf.Fact.(type) {
		case *EmittedKinds:
			for _, k := range f.Kinds {
				emitted[k] = true
			}
		case *FiredSites:
			for _, s := range f.Sites {
				fired[s] = true
			}
		case *DeclaredKinds:
			declKinds = *f
		case *DeclaredSites:
			declSites = *f
		}
	}
	pos := registryImportPos(pass, "events")
	for _, k := range declKinds.Kinds {
		if !emitted[k.Name] {
			pass.Reportf(pos, "events.Kind %s (declared at %s) is never emitted in non-test code; delete it or emit it", k.Name, k.Pos)
		}
	}
	pos = registryImportPos(pass, "chaos")
	for _, s := range declSites.Sites {
		if !fired[s.Name] && !engineScheduled[s.Name] {
			pass.Reportf(pos, "chaos.Site %s (declared at %s) is never injected in non-test code; delete it or fire it", s.Name, s.Pos)
		}
	}
}

// registryImportPos anchors a whole-program diagnostic at the
// facade's import of the registry package (falling back to the first
// file) so the report has a position inside the current compilation
// unit.
func registryImportPos(pass *analysis.Pass, tail string) token.Pos {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if analysis.PkgTail(path) == tail {
				return imp.Pos()
			}
		}
	}
	if len(pass.Files) > 0 {
		return pass.Files[0].Name.Pos()
	}
	return token.NoPos
}

func orList(kinds []string) string {
	if len(kinds) == 1 {
		return "events." + kinds[0]
	}
	return "one of events.{" + strings.Join(kinds, ", ") + "}"
}

func sortedKeys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
