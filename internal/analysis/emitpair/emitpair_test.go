package emitpair_test

import (
	"testing"

	"memhogs/internal/analysis/analysistest"
	"memhogs/internal/analysis/emitpair"
)

func TestEmitpair(t *testing.T) {
	// Dependency order matters: the registries export their
	// declaration facts, the emitters their usage facts, and the
	// facade unions them for the whole-program checks.
	analysistest.Run(t, "testdata", emitpair.Analyzer, "events", "chaos", "pageout", "memhogs")
}
