// Package chaos is a fixture injector mirroring the real fault
// engine: Site constants plus Fire/FireDelay/FireExtra. GhostSite is
// deliberately never injected anywhere, so the whole-program check
// must flag it at the facade; MemShrink is engine-scheduled and
// exempt.
package chaos

// Site identifies one injection point.
type Site uint8

// The fixture site registry.
const (
	ReleaserStall Site = iota
	StaleShared
	DiskSlow
	MemShrink
	GhostSite
	NumSites
)

// Injector decides whether a fault fires.
type Injector struct{ armed bool }

// Fire reports whether the fault fires at this site.
func (in *Injector) Fire(s Site, actor string, page int) bool { return in != nil && in.armed }

// FireDelay returns an injected delay for the site, 0 when unarmed.
func (in *Injector) FireDelay(s Site, actor string) int64 { return 0 }

// FireExtra returns an injected extra-work amount for the site.
func (in *Injector) FireExtra(s Site, actor string) int { return 0 }
