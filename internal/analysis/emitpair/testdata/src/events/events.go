// Package events is a fixture registry mirroring the real flight
// recorder: Kind constants plus a nil-safe Recorder.Emit. GhostKind
// is deliberately never emitted anywhere, so the whole-program check
// must flag it at the facade.
package events

// Kind identifies one event type.
type Kind uint8

// The fixture registry.
const (
	ReleaserFree Kind = iota
	DaemonWake
	PMRefresh
	GhostKind
	KindCount
)

// Recorder counts emitted events.
type Recorder struct {
	counts [KindCount]uint64
}

// Emit records one event; nil receivers are a no-op.
func (r *Recorder) Emit(k Kind, actor, target string, page int, a, b int64) {
	if r == nil {
		return
	}
	r.counts[k]++
}
