// Package memhogs is the fixture facade: like the real module root it
// transitively imports every emitter, so the whole-program registry
// checks run here and the dead entries surface on the registry
// imports.
package memhogs

import (
	"chaos"  // want `chaos\.Site GhostSite \(declared at .*chaos.go:\d+\) is never injected in non-test code`
	"events" // want `events\.Kind GhostKind \(declared at .*events.go:\d+\) is never emitted in non-test code`
	"pageout"
)

// Wire returns the fixture stack's registries, referencing every
// package so the facade mirrors the real module root.
func Wire(d *pageout.Daemon) (events.Kind, chaos.Site) {
	d.GoodDirect(0)
	return events.KindCount, chaos.NumSites
}
