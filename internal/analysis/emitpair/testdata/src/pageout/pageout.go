// Package pageout is a fixture exercising the co-location rule:
// every probabilistic injection must sit next to the Emit that
// records the stack's reaction.
package pageout

import (
	"chaos"
	"events"
)

// Daemon couples an injector with a recorder, like the real layers.
type Daemon struct {
	ev  *events.Recorder
	inj *chaos.Injector
}

// BadStall injects with no event anywhere in reach.
func (d *Daemon) BadStall() {
	d.inj.FireDelay(chaos.ReleaserStall, "releaserd") // want `chaos site ReleaserStall injected without a co-located events\.Emit`
}

// BadWrongKind injects a releaser stall but records only a daemon
// wake — not one of the stall's matching kinds.
func (d *Daemon) BadWrongKind() {
	d.inj.FireDelay(chaos.ReleaserStall, "releaserd") // want `chaos site ReleaserStall injected without a co-located events\.Emit`
	d.ev.Emit(events.DaemonWake, "pageoutd", "", -1, 0, 0)
}

// BadVariableSite hides the site behind a variable, defeating the
// registry audit.
func (d *Daemon) BadVariableSite(s chaos.Site) {
	d.inj.Fire(s, "releaserd", 1) // want `non-constant site argument`
}

// GoodDirect pairs the injection with a matching emit in the same
// function.
func (d *Daemon) GoodDirect(vpn int) {
	d.inj.FireDelay(chaos.ReleaserStall, "releaserd")
	d.ev.Emit(events.ReleaserFree, "releaserd", "", vpn, 0, 0)
}

// GoodHelper pairs through one hop: the directly-called helper emits.
func (d *Daemon) GoodHelper(vpn int) {
	d.inj.FireDelay(chaos.ReleaserStall, "releaserd")
	d.free(vpn)
}

func (d *Daemon) free(vpn int) {
	d.ev.Emit(events.ReleaserFree, "releaserd", "", vpn, 0, 0)
}

// GoodShared covers the single-kind pairing (stale shared page →
// refresh).
func (d *Daemon) GoodShared() {
	if d.inj.Fire(chaos.StaleShared, "pm", -1) {
		d.ev.Emit(events.PMRefresh, "pm", "", -1, 0, 0)
	}
}

// GoodEngineSite: disk latency is engine-accounted (ChaosInject
// only), so no co-location obligation.
func (d *Daemon) GoodEngineSite() int64 {
	return d.inj.FireDelay(chaos.DiskSlow, "disk")
}

// AllowedStall demonstrates the allowlist escape hatch.
func (d *Daemon) AllowedStall() {
	//simvet:allow SV003 stall visible through the releaser queue-depth counter instead
	d.inj.FireDelay(chaos.ReleaserStall, "releaserd")
}
