// Package errdrop implements SV005: errors from operations the chaos
// engine can make fail must not vanish. The fault injector turns disk
// reads into transient errors and memory into a shrinking resource;
// a call site that drops the returned error converts an injected,
// recoverable fault into silent corruption the audit can no longer
// attribute. The pass flags two shapes — a bare call statement whose
// audited callee returns an error, and a multi-value assignment that
// blanks the error position — for callees in the simulated stack
// (disk, mem, kernel, vm, pageout, rt, pdpm, chaos, driver, sim) and
// for real file I/O in package os. A lone `_ = f()` stays legal: it
// is a visible, greppable statement of intent, unlike a silently
// ignored result. Deferred and go'd calls are exempt (their results
// are unobtainable).
package errdrop

import (
	"go/ast"
	"go/types"

	"memhogs/internal/analysis"
)

// Analyzer is the SV005 pass.
var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Code: "SV005",
	Doc: "flag discarded errors from disk/mem/os operations that fault injection " +
		"can make fail; handle them or discard visibly with `_ =`",
	Run: run,
}

// simPkgs are the audited callee packages of the simulated stack.
var simPkgs = map[string]bool{
	"disk": true, "mem": true, "kernel": true, "vm": true,
	"pageout": true, "rt": true, "pdpm": true, "chaos": true,
	"driver": true, "sim": true,
}

// osFuncs are the package-level file operations audited in os.
var osFuncs = map[string]bool{
	"Create": true, "Open": true, "OpenFile": true,
	"WriteFile": true, "ReadFile": true,
	"Remove": true, "RemoveAll": true, "Rename": true,
	"Mkdir": true, "MkdirAll": true, "Truncate": true,
	"Chdir": true, "Symlink": true, "Link": true,
}

// fileMethods are the audited *os.File methods.
var fileMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteAt": true,
	"Close": true, "Sync": true, "Truncate": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt, *ast.GoStmt:
				return false // results are unobtainable by design
			case *ast.ExprStmt:
				call, ok := n.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := analysis.CalleeFunc(pass.TypesInfo, call)
				if !auditedCallee(callee) {
					return true
				}
				if errorResultIndex(callee) >= 0 {
					pass.Reportf(call.Pos(), "%s returns an error that is silently discarded; handle it or discard visibly with `_ =`", calleeLabel(callee))
				}
				return true
			case *ast.AssignStmt:
				checkAssign(pass, n)
				return true
			}
			return true
		})
	}
	return nil
}

// checkAssign flags `n, _ := f.Write(b)`-style blanked errors in
// multi-value assignments from audited callees. A single-result
// `_ = f()` is deliberately allowed.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 || len(as.Lhs) < 2 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	callee := analysis.CalleeFunc(pass.TypesInfo, call)
	if !auditedCallee(callee) {
		return
	}
	idx := errorResultIndex(callee)
	if idx < 0 || idx >= len(as.Lhs) {
		return
	}
	if id, ok := ast.Unparen(as.Lhs[idx]).(*ast.Ident); ok && id.Name == "_" {
		pass.Reportf(as.Pos(), "error result of %s is blanked while its other results are used; a chaos-injected failure would pass unnoticed", calleeLabel(callee))
	}
}

func auditedCallee(f *types.Func) bool {
	if f == nil {
		return false
	}
	path := analysis.FuncPkgPath(f)
	if path == "os" {
		if named := analysis.ReceiverNamed(f); named != nil {
			return named.Obj().Name() == "File" && fileMethods[f.Name()]
		}
		return osFuncs[f.Name()]
	}
	return analysis.MatchesScope(path, simPkgs)
}

// errorResultIndex returns the index of the last error-typed result,
// or -1.
func errorResultIndex(f *types.Func) int {
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return -1
	}
	errType := types.Universe.Lookup("error").Type()
	for i := sig.Results().Len() - 1; i >= 0; i-- {
		if types.Identical(sig.Results().At(i).Type(), errType) {
			return i
		}
	}
	return -1
}

func calleeLabel(f *types.Func) string {
	if named := analysis.ReceiverNamed(f); named != nil {
		return "(*" + named.Obj().Name() + ")." + f.Name()
	}
	return f.Pkg().Name() + "." + f.Name()
}
