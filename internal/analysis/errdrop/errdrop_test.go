package errdrop_test

import (
	"testing"

	"memhogs/internal/analysis/analysistest"
	"memhogs/internal/analysis/errdrop"
)

func TestErrdrop(t *testing.T) {
	analysistest.Run(t, "testdata", errdrop.Analyzer, "disk", "caller")
}
