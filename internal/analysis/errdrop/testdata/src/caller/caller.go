// Package caller exercises the discarded-error shapes against the
// audited disk fixture and package os.
package caller

import (
	"os"

	"disk"
)

// BadStatement drops the submit error on the floor.
func BadStatement(d *disk.Disk) {
	d.Submit(3) // want `\(\*Disk\)\.Submit returns an error that is silently discarded`
}

// BadBlank uses the count but blanks the error.
func BadBlank(d *disk.Disk) int {
	n, _ := d.Flush() // want `error result of \(\*Disk\)\.Flush is blanked`
	return n
}

// BadPackageFunc drops a package-level error.
func BadPackageFunc() {
	disk.Park() // want `disk\.Park returns an error that is silently discarded`
}

// BadFileWrite is the os shape: a write whose failure disappears.
func BadFileWrite(f *os.File, b []byte) {
	f.Write(b) // want `\(\*File\)\.Write returns an error that is silently discarded`
}

// GoodPropagate hands the error up.
func GoodPropagate(d *disk.Disk) error {
	return d.Submit(3)
}

// GoodChecked handles it in place.
func GoodChecked(d *disk.Disk) int {
	n, err := d.Flush()
	if err != nil {
		return -1
	}
	return n
}

// GoodExplicitDiscard is the sanctioned visible discard.
func GoodExplicitDiscard(d *disk.Disk) {
	_ = d.Submit(3)
}

// GoodDefer: a deferred close has nowhere to send its error.
func GoodDefer(f *os.File) {
	defer f.Close()
}

// AllowedFlush demonstrates the allowlist escape hatch.
func AllowedFlush(d *disk.Disk) {
	//simvet:allow SV005 best-effort flush on the shutdown path, failure already logged upstream
	d.Submit(9)
}
