// Package disk is a fixture audited storage layer: chaos can turn
// any of these calls into a transient failure.
package disk

// Disk models the storage device.
type Disk struct{ busy bool }

// Submit enqueues one page write.
func (d *Disk) Submit(page int) error { return nil }

// Flush drains the queue, reporting pages written.
func (d *Disk) Flush() (int, error) { return 0, nil }

// Park spins the device down.
func Park() error { return nil }
