// Package hotalloc implements SV006: per-event hot paths must not
// allocate. The simulator executes millions of virtual events per run
// — every page touch, queue operation, and flight-recorder emit — and
// a single heap allocation or interface boxing on such a path turns
// into garbage-collector pressure that scales with simulated work,
// not with wall-clock configuration. A function opts in by carrying
// `//simvet:hot` on its declaration; inside it the pass flags
//
//   - explicit allocations: new, make, address-taken composite
//     literals, and slice or map literals,
//   - append, which may grow its backing array (preallocate capacity
//     and suppress with an allow directive where growth is amortized),
//   - closures (func literals capture their environment on the heap),
//   - interface boxing: passing or converting a concrete
//     non-pointer-shaped value to an interface, which copies the value
//     to the heap. Pointer-shaped values (pointers, maps, channels,
//     funcs) fit the interface word and are exempt.
//
// Deliberate allocations — one record per scheduled event, a
// writeback request — take a `//simvet:allow SV006 reason` directive.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"memhogs/internal/analysis"
)

// Analyzer is the SV006 pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Code: "SV006",
	Doc: "forbid heap allocation and interface boxing inside //simvet:hot functions; " +
		"per-event paths must reuse preallocated storage",
	Run: run,
}

const marker = "//simvet:hot"

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasMarker(fd.Doc) {
				continue
			}
			checkBody(pass, funcName(fd), fd.Body)
		}
	}
	return nil
}

func hasMarker(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.HasPrefix(c.Text, marker) {
			return true
		}
	}
	return false
}

// funcName renders the declaration for diagnostics, e.g. "Emit" or
// "(*Recorder).Emit".
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if se, ok := t.(*ast.StarExpr); ok {
		if id, ok := se.X.(*ast.Ident); ok {
			return "(*" + id.Name + ")." + fd.Name.Name
		}
	}
	if id, ok := t.(*ast.Ident); ok {
		return "(" + id.Name + ")." + fd.Name.Name
	}
	return fd.Name.Name
}

func checkBody(pass *analysis.Pass, fname string, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, fname, n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "heap allocation (address-taken composite literal) in //simvet:hot %s; reuse preallocated storage", fname)
				}
			}
		case *ast.CompositeLit:
			if t := pass.TypesInfo.Types[n].Type; t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(n.Pos(), "heap allocation (%s literal) in //simvet:hot %s; reuse preallocated storage", litKind(t), fname)
				}
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure allocation (func literal) in //simvet:hot %s; hoist the function out of the per-event path", fname)
		}
		return true
	})
}

func litKind(t types.Type) string {
	if _, ok := t.Underlying().(*types.Map); ok {
		return "map"
	}
	return "slice"
}

func checkCall(pass *analysis.Pass, fname string, call *ast.CallExpr) {
	// Allocating builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "new", "make":
				pass.Reportf(call.Pos(), "heap allocation (%s) in //simvet:hot %s; preallocate outside the per-event path", b.Name(), fname)
			case "append":
				pass.Reportf(call.Pos(), "append in //simvet:hot %s may grow its backing array; preallocate capacity (and allow where growth is amortized)", fname)
			}
			return
		}
	}

	tv := pass.TypesInfo.Types[ast.Unparen(call.Fun)]
	if tv.IsType() {
		// Conversion: only interface targets box.
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && boxes(pass, call.Args[0]) {
			pass.Reportf(call.Pos(), "interface boxing (conversion of %s) in //simvet:hot %s", argType(pass, call.Args[0]), fname)
		}
		return
	}

	typ := tv.Type
	if typ == nil {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if s, ok := pass.TypesInfo.Selections[sel]; ok {
				typ = s.Type()
			}
		}
	}
	if typ == nil {
		return
	}
	sig, ok := typ.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		if call.Ellipsis.IsValid() && i == len(call.Args)-1 {
			continue // forwarding a slice, not boxing its elements
		}
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		if boxes(pass, arg) {
			pass.Reportf(arg.Pos(), "interface boxing (%s argument) in //simvet:hot %s; avoid interface parameters on the per-event path", argType(pass, arg), fname)
		}
	}
}

// boxes reports whether passing e to an interface heap-allocates: the
// static type is concrete and not pointer-shaped (a pointer, map,
// channel, or func fits the interface data word without allocating).
func boxes(pass *analysis.Pass, e ast.Expr) bool {
	tv := pass.TypesInfo.Types[ast.Unparen(e)]
	if tv.Type == nil || tv.IsNil() {
		return false
	}
	t := tv.Type
	if types.IsInterface(t) {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return false
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}

func argType(pass *analysis.Pass, e ast.Expr) string {
	if t := pass.TypesInfo.Types[ast.Unparen(e)].Type; t != nil {
		return t.String()
	}
	return "value"
}
