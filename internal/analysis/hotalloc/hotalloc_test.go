package hotalloc_test

import (
	"testing"

	"memhogs/internal/analysis/analysistest"
	"memhogs/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotalloc.Analyzer, "ring")
}
