// Package ring is the hotalloc fixture: a miniature flight-recorder
// ring whose hot paths demonstrate every SV006 finding and every
// sanctioned shape.
package ring

type rec struct{ a, b int }

func logf(format string, args ...interface{}) {}

func sink(interface{}) {}

func takePtr(*rec) {}

// Hot demonstrates the findings.
//
//simvet:hot
func Hot(buf []rec, n int) {
	p := new(rec) // want `heap allocation \(new\)`
	_ = p
	m := make(map[int]int) // want `heap allocation \(make\)`
	_ = m
	grown := append(buf, rec{}) // want `append in //simvet:hot Hot may grow`
	_ = grown
	r := &rec{a: n} // want `address-taken composite literal`
	_ = r
	xs := []int{n} // want `heap allocation \(slice literal\)`
	_ = xs
	logf("event %d", n) // want `interface boxing \(int argument\)`
	f := func() int { return n } // want `closure allocation`
	_ = f
	sink(interface{}(rec{a: n})) // want `interface boxing \(conversion of ring.rec\)`
}

// CleanHot shows the alloc-free idioms the pass accepts: writing into
// preallocated storage, struct literals that stay on the stack, and
// pointer-shaped values crossing interface boundaries.
//
//simvet:hot
func CleanHot(buf []rec, r *rec, n int) {
	buf[0] = rec{a: n}
	buf[0].b += n
	takePtr(&buf[0])
	sink(r)            // pointer fits the interface word
	sink(nil)          // nil boxes nothing
	logf("forwarding") // no variadic args, nothing to box
}

// Forward passes a ready-made slice through a variadic call: the
// elements were boxed by whoever built the slice, not here.
//
//simvet:hot
func Forward(args ...interface{}) {
	logf("fwd", args...)
}

// Allowed demonstrates the escape hatch for a deliberate allocation.
//
//simvet:hot
func Allowed() *rec {
	//simvet:allow SV006 one record per session, not per event
	return new(rec)
}

// cold is unmarked: the pass ignores it entirely.
func cold() *rec {
	return &rec{}
}
