package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// LoadedPackage is one type-checked package ready for analysis.
type LoadedPackage struct {
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Loader type-checks a set of packages from source, resolving the
// remaining imports (standard library, other modules) from compiler
// export data. Source packages are looked up through SrcFiles; export
// data through Exports. The zero value is not usable; call NewLoader.
type Loader struct {
	Fset *token.FileSet

	// SrcFiles maps an import path to the .go files to type-check it
	// from; packages absent from the map are imported via Exports.
	SrcFiles map[string][]string
	// Exports maps an import path to a gc export-data file
	// (produced by `go list -export` or read from a vet .cfg).
	Exports map[string]string

	loaded map[string]*LoadedPackage
	active map[string]bool // import-cycle guard
	gc     types.Importer
}

// NewLoader returns a Loader over a fresh file set.
func NewLoader() *Loader {
	l := &Loader{
		Fset:     token.NewFileSet(),
		SrcFiles: map[string][]string{},
		Exports:  map[string]string{},
		loaded:   map[string]*LoadedPackage{},
		active:   map[string]bool{},
	}
	l.gc = importer.ForCompiler(l.Fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := l.Exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return l
}

// Import implements types.Importer so the loader can hand itself to
// go/types: source packages are type-checked recursively, everything
// else comes from export data.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if lp, ok := l.loaded[path]; ok {
		return lp.Pkg, nil
	}
	if _, ok := l.SrcFiles[path]; ok {
		lp, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return lp.Pkg, nil
	}
	return l.gc.Import(path)
}

// Load type-checks the source package at path (which must be present
// in SrcFiles), memoizing the result.
func (l *Loader) Load(path string) (*LoadedPackage, error) {
	if lp, ok := l.loaded[path]; ok {
		return lp, nil
	}
	if l.active[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.active[path] = true
	defer delete(l.active, path)

	files, ok := l.SrcFiles[path]
	if !ok {
		return nil, fmt.Errorf("no source files registered for %q", path)
	}
	var parsed []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(l.Fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, af)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.Fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	lp := &LoadedPackage{Path: path, Files: parsed, Pkg: pkg, Info: info}
	l.loaded[path] = lp
	return lp, nil
}

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	Export     string
	Standard   bool
	Module     *struct{ Path string }
	Incomplete bool
	Error      *struct{ Err string }
}

// GoList runs `go list -export -deps -json` in dir over patterns and
// returns the decoded packages in dependency order (dependencies
// before dependents, as go list guarantees).
func GoList(dir string, patterns ...string) ([]listPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Imports,Export,Standard,Module,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, errBuf.String())
	}
	var pkgs []listPackage
	dec := json.NewDecoder(&out)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decode go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadModule loads every package matched by patterns that belongs to
// the main module rooted at dir, type-checking them from source in
// dependency order; all other packages resolve from export data. It
// returns the module packages in dependency order plus the module
// path itself.
func LoadModule(dir string, patterns ...string) (*Loader, []*LoadedPackage, string, error) {
	pkgs, err := GoList(dir, patterns...)
	if err != nil {
		return nil, nil, "", err
	}
	// The main module's path: go list reports Module for non-standard
	// packages; the module being analyzed is the one whose packages
	// have source directories under dir.
	modPath := ""
	absDir, _ := filepath.Abs(dir)
	l := NewLoader()
	var order []string
	for _, p := range pkgs {
		if p.Error != nil {
			return nil, nil, "", fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		inModule := !p.Standard && p.Module != nil && p.Dir != "" && underDir(p.Dir, absDir)
		if inModule {
			if modPath == "" {
				modPath = p.Module.Path
			}
			var files []string
			for _, f := range p.GoFiles {
				files = append(files, filepath.Join(p.Dir, f))
			}
			l.SrcFiles[p.ImportPath] = files
			order = append(order, p.ImportPath)
		} else if p.Export != "" {
			l.Exports[p.ImportPath] = p.Export
		}
	}
	var loaded []*LoadedPackage
	for _, path := range order {
		lp, err := l.Load(path)
		if err != nil {
			return nil, nil, "", err
		}
		loaded = append(loaded, lp)
	}
	return l, loaded, modPath, nil
}

func underDir(path, root string) bool {
	abs, err := filepath.Abs(path)
	if err != nil {
		return false
	}
	rel, err := filepath.Rel(root, abs)
	if err != nil {
		return false
	}
	return rel == "." || (!strings.HasPrefix(rel, "..") && rel != "")
}

// StdExports resolves export-data files for the given non-source
// import paths (typically standard-library imports of testdata
// packages) and merges them into the loader. dir anchors the `go
// list` invocation (any directory inside a module works).
func (l *Loader) StdExports(dir string, paths []string) error {
	if len(paths) == 0 {
		return nil
	}
	sort.Strings(paths)
	pkgs, err := GoList(dir, paths...)
	if err != nil {
		return err
	}
	for _, p := range pkgs {
		if p.Export != "" {
			if _, ok := l.SrcFiles[p.ImportPath]; !ok {
				l.Exports[p.ImportPath] = p.Export
			}
		}
	}
	return nil
}
