// Package maporder implements SV002: map iteration order must never
// reach rendered output. The campaign engine promises byte-identical
// reports at any worker count and the flight recorder promises
// deterministic traces; a `for k := range m` whose body appends to a
// slice, writes to an io.Writer/strings.Builder, or emits events
// bakes Go's randomized map order into those bytes. Appending into a
// slice is legal when the function visibly sorts afterwards (the
// collect-then-sort idiom used throughout the repo); writes and event
// emissions inside the loop are always flagged.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"memhogs/internal/analysis"
)

// Analyzer is the SV002 pass.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Code: "SV002",
	Doc: "flag map-range loops whose body appends to a slice (without a later sort), " +
		"writes to an io.Writer, or emits events — map order would leak into rendered output",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Sort calls anywhere in the function discharge append-effects of
	// map-range loops that precede them.
	var sortPositions []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := analysis.CalleeFunc(pass.TypesInfo, call)
		switch analysis.FuncPkgPath(callee) {
		case "sort", "slices":
			sortPositions = append(sortPositions, call.Pos())
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rs.X]
		if !ok || tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(pass, rs, sortPositions)
		return true
	})
}

func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt, sortPositions []token.Pos) {
	sortedAfter := func() bool {
		for _, p := range sortPositions {
			if p > rs.End() {
				return true
			}
		}
		return false
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, rs, n)
		case *ast.AssignStmt:
			// x = append(x, ...) where x was declared before the
			// loop: iteration order becomes element order.
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass.TypesInfo, call) || i >= len(n.Lhs) {
					continue
				}
				target, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident)
				if !ok {
					// Appends into indexed/field targets keyed by the
					// map key (byPrio[k] = append(...)) are
					// order-independent; leave them alone.
					continue
				}
				obj := pass.TypesInfo.Defs[target]
				if obj == nil {
					obj = pass.TypesInfo.Uses[target]
				}
				if obj == nil || obj.Pos() >= rs.Pos() {
					continue // declared inside the loop: per-iteration state
				}
				if sortedAfter() {
					continue // collect-then-sort idiom
				}
				pass.Reportf(n.Pos(), "append to %q inside range over map without a later sort; the slice inherits random map order", target.Name)
			}
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, rs *ast.RangeStmt, call *ast.CallExpr) {
	callee := analysis.CalleeFunc(pass.TypesInfo, call)
	if callee == nil {
		return
	}
	name := callee.Name()
	switch analysis.FuncPkgPath(callee) {
	case "fmt":
		if strings.HasPrefix(name, "Fprint") {
			pass.Reportf(call.Pos(), "fmt.%s inside range over map; the writer sees random map order — iterate sorted keys instead", name)
		}
		return
	case "io":
		if name == "WriteString" {
			pass.Reportf(call.Pos(), "io.WriteString inside range over map; the writer sees random map order — iterate sorted keys instead")
		}
		return
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	switch {
	case name == "Emit":
		pass.Reportf(call.Pos(), "event emission %s.Emit inside range over map; the event stream would record random map order", recvTypeName(callee))
	case name == "Write" || name == "WriteString" || name == "WriteByte" || name == "WriteRune":
		// Builders and writers constructed inside the loop body hold
		// per-iteration state; only writes to longer-lived sinks leak
		// the order.
		if recvDeclaredBefore(pass.TypesInfo, call, rs.Pos()) {
			pass.Reportf(call.Pos(), "%s.%s inside range over map; the output sees random map order — iterate sorted keys instead", recvTypeName(callee), name)
		}
	}
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func recvTypeName(f *types.Func) string {
	if named := analysis.ReceiverNamed(f); named != nil {
		return named.Obj().Name()
	}
	return "receiver"
}

// recvDeclaredBefore reports whether the method call's receiver is an
// identifier declared before pos (a long-lived sink) rather than a
// per-iteration local. Non-identifier receivers (fields, index
// expressions) are conservatively treated as long-lived.
func recvDeclaredBefore(info *types.Info, call *ast.CallExpr, pos token.Pos) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return true
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return true
	}
	obj := info.Uses[id]
	if obj == nil {
		return true
	}
	return obj.Pos() < pos
}
