package maporder_test

import (
	"testing"

	"memhogs/internal/analysis/analysistest"
	"memhogs/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, "testdata", maporder.Analyzer, "render")
}
