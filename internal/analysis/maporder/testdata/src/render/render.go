// Package render is a fixture of rendering code over maps: the bad
// shapes leak Go's randomized map order into output; the good shapes
// sort first or keep per-iteration state.
package render

import (
	"fmt"
	"sort"
	"strings"
)

// Stream is a stand-in for an event recorder.
type Stream struct{ n int }

// Emit records one event.
func (s *Stream) Emit(kind string, v int) { s.n++ }

// BadReport writes rows straight out of map order.
func BadReport(w *strings.Builder, counts map[string]int) {
	for k, v := range counts {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt\.Fprintf inside range over map`
	}
}

// BadCollect builds a row slice in map order and never sorts it.
func BadCollect(counts map[string]int) []string {
	var rows []string
	for k := range counts {
		rows = append(rows, k) // want `append to "rows" inside range over map without a later sort`
	}
	return rows
}

// BadEmit replays a map into the event stream in random order.
func BadEmit(s *Stream, counts map[string]int) {
	for k, v := range counts {
		s.Emit(k, v) // want `event emission Stream\.Emit inside range over map`
	}
}

// BadBuilder writes to a long-lived builder from inside the loop.
func BadBuilder(counts map[string]int) string {
	var b strings.Builder
	for k := range counts {
		b.WriteString(k) // want `Builder\.WriteString inside range over map`
	}
	return b.String()
}

// GoodCollectThenSort is the sanctioned idiom: gather, then sort.
func GoodCollectThenSort(counts map[string]int) []string {
	var rows []string
	for k := range counts {
		rows = append(rows, k)
	}
	sort.Strings(rows)
	return rows
}

// GoodPerIteration state declared inside the loop body never leaks
// order across iterations.
func GoodPerIteration(counts map[string]int) int {
	total := 0
	for k := range counts {
		var b strings.Builder
		b.WriteString(k)
		total += b.Len()
	}
	return total
}

// GoodKeyedInsert writes into a map keyed by the iteration variable;
// insertion order of a map is irrelevant.
func GoodKeyedInsert(counts map[string]int) map[string][]int {
	out := map[string][]int{}
	for k, v := range counts {
		out[k] = append(out[k], v)
	}
	return out
}

// GoodSum is pure reduction: no order-dependent effect at all.
func GoodSum(counts map[string]int) int {
	total := 0
	for _, v := range counts {
		total += v
	}
	return total
}

// AllowedDebugDump demonstrates the allowlist: a debug-only dump that
// deliberately tolerates unstable order.
func AllowedDebugDump(w *strings.Builder, counts map[string]int) {
	for k := range counts {
		//simvet:allow SV002 debug dump, order deliberately unstable and never diffed
		fmt.Fprintln(w, k)
	}
}
