// Package nilrecv implements SV004: instrumentation must cost one
// branch when it is off. The flight recorder and tracer hang off the
// simulated stack as pointers that are nil unless a run asks for
// observability, and every hot-path call like rec.Emit(...) relies on
// the method itself tolerating a nil receiver. A type opts in by
// carrying `//simvet:nilsafe` on its declaration; every exported
// pointer-receiver method of such a type must then either open with a
// receiver nil guard or touch the receiver only through further
// method calls (which are themselves checked). A forgotten guard is a
// latent panic that only fires in un-instrumented runs — the exact
// configuration the test suite exercises least.
package nilrecv

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"memhogs/internal/analysis"
)

// Analyzer is the SV004 pass.
var Analyzer = &analysis.Analyzer{
	Name: "nilrecv",
	Code: "SV004",
	Doc: "exported methods of //simvet:nilsafe types must tolerate nil receivers: " +
		"guard first, or use the receiver only as a method-call receiver",
	Run: run,
}

const marker = "//simvet:nilsafe"

func run(pass *analysis.Pass) error {
	marked := markedTypes(pass)
	if len(marked) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := fn.Type().(*types.Signature)
			if _, isPtr := sig.Recv().Type().(*types.Pointer); !isPtr {
				continue // value receivers cannot be nil
			}
			named := analysis.ReceiverNamed(fn)
			if named == nil || !marked[named.Obj()] {
				continue
			}
			checkMethod(pass, fd, named)
		}
	}
	return nil
}

// markedTypes collects the type names whose declarations carry the
// nilsafe marker (in the spec's doc, line comment, or the enclosing
// gendecl's doc).
func markedTypes(pass *analysis.Pass) map[*types.TypeName]bool {
	marked := map[*types.TypeName]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if hasMarker(gd.Doc) || hasMarker(ts.Doc) || hasMarker(ts.Comment) {
					if tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
						marked[tn] = true
					}
				}
			}
		}
	}
	return marked
}

func hasMarker(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.HasPrefix(c.Text, marker) {
			return true
		}
	}
	return false
}

func checkMethod(pass *analysis.Pass, fd *ast.FuncDecl, named *types.Named) {
	recv := receiverObj(pass, fd)
	if recv == nil {
		return // anonymous receiver: the body cannot dereference it
	}
	if startsWithNilGuard(pass, fd.Body, recv) {
		return
	}
	if pos, bad := firstDeref(pass, fd.Body, recv); bad {
		pass.Reportf(pos, "exported method (*%s).%s dereferences its receiver without a leading nil guard; //simvet:nilsafe types must keep the one-branch-when-off guarantee", named.Obj().Name(), fd.Name.Name)
	}
}

func receiverObj(pass *analysis.Pass, fd *ast.FuncDecl) types.Object {
	if len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	name := fd.Recv.List[0].Names[0]
	if name.Name == "_" {
		return nil
	}
	return pass.TypesInfo.Defs[name]
}

// startsWithNilGuard accepts the sanctioned shapes:
//
//	if r == nil { ... return }        as the first statement,
//	if r == nil || cheap { return }   (|| short-circuits, so the
//	                                  right side never sees nil), or
//	if r != nil { ... }               with only returns after it.
func startsWithNilGuard(pass *analysis.Pass, body *ast.BlockStmt, recv types.Object) bool {
	if len(body.List) == 0 {
		return true // empty body cannot dereference
	}
	ifs, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	// Peel `||` chains down to the leftmost operand: only that one is
	// guaranteed to evaluate before any dereference.
	cond := ast.Unparen(ifs.Cond)
	inOr := false
	for {
		be, isBin := cond.(*ast.BinaryExpr)
		if !isBin || be.Op != token.LOR {
			break
		}
		cond = ast.Unparen(be.X)
		inOr = true
	}
	cmp, ok := nilComparison(pass, cond, recv)
	if !ok {
		return false
	}
	if inOr && cmp != "==" {
		// `if r != nil || ...` falls through with r still nil.
		return false
	}
	switch cmp {
	case "==":
		// The guard body must leave the function.
		n := len(ifs.Body.List)
		if n == 0 {
			return false
		}
		_, isReturn := ifs.Body.List[n-1].(*ast.ReturnStmt)
		return isReturn
	case "!=":
		// Everything live must be inside the guard.
		for _, s := range body.List[1:] {
			if _, isReturn := s.(*ast.ReturnStmt); !isReturn {
				return false
			}
		}
		return true
	}
	return false
}

func nilComparison(pass *analysis.Pass, cond ast.Expr, recv types.Object) (string, bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return "", false
	}
	op := be.Op.String()
	if op != "==" && op != "!=" {
		return "", false
	}
	isRecv := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == recv
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	if (isRecv(be.X) && isNil(be.Y)) || (isNil(be.X) && isRecv(be.Y)) {
		return op, true
	}
	return "", false
}

// firstDeref finds the first expression that would fault on a nil
// receiver: a field selection, indexing, or explicit dereference.
// Method calls through the receiver are fine (callees are themselves
// nil-safe by this pass), as are nil comparisons and passing the
// pointer along.
func firstDeref(pass *analysis.Pass, body *ast.BlockStmt, recv types.Object) (pos token.Pos, bad bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if bad {
			return false
		}
		switch e := n.(type) {
		case *ast.SelectorExpr:
			id, ok := ast.Unparen(e.X).(*ast.Ident)
			if !ok || pass.TypesInfo.Uses[id] != recv {
				return true
			}
			if sel, ok := pass.TypesInfo.Selections[e]; ok && sel.Kind() == types.FieldVal {
				pos, bad = e.Pos(), true
				return false
			}
		case *ast.StarExpr:
			if id, ok := ast.Unparen(e.X).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == recv {
				pos, bad = e.Pos(), true
				return false
			}
		case *ast.IndexExpr:
			if id, ok := ast.Unparen(e.X).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == recv {
				pos, bad = e.Pos(), true
				return false
			}
		}
		return true
	})
	return pos, bad
}
