package nilrecv_test

import (
	"testing"

	"memhogs/internal/analysis/analysistest"
	"memhogs/internal/analysis/nilrecv"
)

func TestNilrecv(t *testing.T) {
	analysistest.Run(t, "testdata", nilrecv.Analyzer, "stream")
}
