// Package stream is a fixture for the nil-receiver discipline on
// instrumentation types.
package stream

// Stream mimics the flight recorder: nil when recording is off.
//
//simvet:nilsafe
type Stream struct {
	events []int
	n      int
}

// Emit is the canonical shape: guard, then work.
func (s *Stream) Emit(v int) {
	if s == nil {
		return
	}
	s.events = append(s.events, v)
	s.n++
}

// Len uses the inverted guard shape.
func (s *Stream) Len() int {
	if s != nil {
		return s.n
	}
	return 0
}

// Last combines the nil check with an emptiness check; || short-
// circuits, so the right side never evaluates on a nil receiver.
func (s *Stream) Last() int {
	if s == nil || len(s.events) == 0 {
		return -1
	}
	return s.events[len(s.events)-1]
}

// Tail touches the receiver only through checked method calls.
func (s *Stream) Tail() int {
	if s.Len() == 0 {
		return -1
	}
	return s.Len() - 1
}

// Stop forgets the guard and writes a field.
func (s *Stream) Stop() {
	s.n = 0 // want `exported method \(\*Stream\)\.Stop dereferences its receiver without a leading nil guard`
}

// Snapshot guards too late: the dereference precedes the check.
func (s *Stream) Snapshot() []int {
	out := append([]int(nil), s.events...) // want `exported method \(\*Stream\)\.Snapshot dereferences its receiver without a leading nil guard`
	if s == nil {
		return nil
	}
	return out
}

// reset is unexported: internal callers own the nil check.
func (s *Stream) reset() {
	s.events = s.events[:0]
}

// Sampler has no marker, so its methods may assume non-nil receivers.
type Sampler struct{ ticks int }

// Tick is legal: Sampler never claimed nil-safety.
func (p *Sampler) Tick() { p.ticks++ }

// Meter is marked but its flagged method carries an allowlist entry.
//
//simvet:nilsafe
type Meter struct{ total int }

// Add documents why this one method may assume a receiver.
func (m *Meter) Add(v int) {
	//simvet:allow SV004 Add is only reachable from Attach, which allocates the Meter
	m.total += v
}

// Total keeps the contract.
func (m *Meter) Total() int {
	if m == nil {
		return 0
	}
	return m.total
}
