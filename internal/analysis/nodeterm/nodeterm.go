// Package nodeterm implements SV001: the simulated stack must be a
// pure function of its inputs. Inside the simulator packages
// (internal/{kernel,vm,pageout,rt,pdpm,disk,chaos,driver,sim}) any
// reference to wall-clock time (time.Now and friends), to the global
// math/rand generators, or to process environment lookups would make
// runs non-reproducible: virtual time comes from sim.Time and
// randomness from per-site seeded sim.Rand streams. Campaign
// parallelism, flight-recorder byte-determinism, and chaos replay all
// assume this. Sanctioned call sites (none today) take a
// `//simvet:allow SV001 reason` directive.
package nodeterm

import (
	"go/ast"
	"go/types"

	"memhogs/internal/analysis"
)

// Analyzer is the SV001 pass.
var Analyzer = &analysis.Analyzer{
	Name: "nodeterm",
	Code: "SV001",
	Doc: "forbid wall-clock time, global math/rand, and environment lookups " +
		"inside the simulated stack; use sim.Time and per-site seeded sim.Rand streams",
	Run: run,
}

// audited is the set of simulated-stack packages (matched as
// internal/<name> in the real tree, or the bare name in testdata).
var audited = map[string]bool{
	"kernel": true, "vm": true, "pageout": true, "rt": true,
	"pdpm": true, "disk": true, "chaos": true, "driver": true, "sim": true,
}

// timeFuncs are the wall-clock entry points of package time. Pure
// arithmetic (time.Duration, time.Unix) stays legal: only functions
// that read or wait on the host clock are banned.
var timeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// osFuncs are the environment lookups: values derived from them vary
// between hosts and CI runs.
var osFuncs = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true, "ExpandEnv": true,
}

func run(pass *analysis.Pass) error {
	if !analysis.MatchesScope(pass.Pkg.Path(), audited) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if _, isFunc := obj.(*types.Func); !isFunc {
				// Naming the rand.Rand type in a signature is fine;
				// only calls into the packages are nondeterministic.
				return true
			}
			name := obj.Name()
			switch obj.Pkg().Path() {
			case "time":
				if timeFuncs[name] {
					pass.Reportf(sel.Pos(), "wall-clock call time.%s in simulated package %s; use virtual sim.Time", name, pass.Pkg.Name())
				}
			case "math/rand", "math/rand/v2":
				// Any use of the package is banned: the top-level
				// functions share unseeded global state, and even a
				// locally constructed rand.New escapes the per-site
				// stream discipline sim.Rand enforces.
				pass.Reportf(sel.Pos(), "math/rand reference rand.%s in simulated package %s; use a per-site seeded sim.Rand stream", name, pass.Pkg.Name())
			case "os":
				if osFuncs[name] {
					pass.Reportf(sel.Pos(), "environment lookup os.%s in simulated package %s; thread configuration through explicit parameters", name, pass.Pkg.Name())
				}
			}
			return true
		})
	}
	return nil
}
