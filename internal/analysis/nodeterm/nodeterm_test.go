package nodeterm_test

import (
	"testing"

	"memhogs/internal/analysis/analysistest"
	"memhogs/internal/analysis/nodeterm"
)

func TestNodeterm(t *testing.T) {
	// kernel is audited (true positives + an allowlisted site);
	// metrics is outside the simulated stack (all negatives).
	analysistest.Run(t, "testdata", nodeterm.Analyzer, "kernel", "metrics")
}
