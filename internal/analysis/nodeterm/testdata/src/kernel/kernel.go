// Package kernel is a fixture standing in for the simulated kernel:
// it sits inside the audited scope, so every wall-clock, global-rand,
// and environment reference below must be flagged.
package kernel

import (
	"math/rand"
	"os"
	"time"
)

// Clock tracks elapsed time the wrong way.
type Clock struct {
	start time.Time
}

// Start captures the host clock.
func (c *Clock) Start() {
	c.start = time.Now() // want `wall-clock call time\.Now`
}

// Elapsed measures against the host clock.
func (c *Clock) Elapsed() time.Duration {
	return time.Since(c.start) // want `wall-clock call time\.Since`
}

// Jitter draws from the unseeded global generator.
func Jitter(n int) int {
	return rand.Intn(n) // want `math/rand reference rand\.Intn`
}

// Seeded still escapes the per-site stream discipline.
func Seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want `math/rand reference rand\.New` `math/rand reference rand\.NewSource`
}

// Tuned reads host configuration at simulation time.
func Tuned() string {
	return os.Getenv("MEMHOG_TUNING") // want `environment lookup os\.Getenv`
}

// BootBanner is the sanctioned exception: the one-off startup banner
// may timestamp itself, which the allowlist records with a reason.
func BootBanner() time.Time {
	//simvet:allow SV001 startup banner timestamps the human-readable log header only
	return time.Now()
}

// Arithmetic on durations never touches the host clock and stays
// legal.
func Arithmetic(d time.Duration) time.Duration {
	return 2*d + time.Millisecond
}
