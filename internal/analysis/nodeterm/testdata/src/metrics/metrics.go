// Package metrics is a fixture outside the audited simulator scope:
// reporting code may read the host clock and environment freely, so
// nothing here is flagged.
package metrics

import (
	"os"
	"time"
)

// Stamp timestamps a report; legal outside the simulated stack.
func Stamp() time.Time {
	return time.Now()
}

// OutputDir reads host configuration; legal outside the simulated
// stack.
func OutputDir() string {
	return os.Getenv("MEMHOG_OUT")
}
