package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// RenderedDiag is a diagnostic resolved to a concrete file position,
// ready to print and to match against suppression directives.
type RenderedDiag struct {
	File    string // path as recorded in the file set
	Line    int
	Col     int
	Code    string
	Message string
}

func (d RenderedDiag) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Code, d.Message)
}

// allowRE matches the suppression directive. The reason is mandatory:
// an allowlist entry without a justification is itself a smell.
//
//	//simvet:allow SV001 startup banner timestamps the log header
var allowRE = regexp.MustCompile(`^//simvet:allow\s+(SV\d{3})\s+\S`)

// allowSet records, per file and line, the diagnostic codes allowed
// there. A directive suppresses matching diagnostics on its own line
// and on the line directly below it (so it can sit above the
// offending statement).
type allowSet map[string]map[int]map[string]bool

func (s allowSet) add(file string, line int, code string) {
	if s[file] == nil {
		s[file] = map[int]map[string]bool{}
	}
	if s[file][line] == nil {
		s[file][line] = map[string]bool{}
	}
	s[file][line][code] = true
}

func (s allowSet) allows(d RenderedDiag) bool {
	lines := s[d.File]
	if lines == nil {
		return false
	}
	return lines[d.Line][d.Code] || lines[d.Line-1][d.Code]
}

// collectAllows scans a file's comments for //simvet:allow directives.
func collectAllows(fset *token.FileSet, f *ast.File, into allowSet) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := allowRE.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			into.add(pos.Filename, pos.Line, m[1])
		}
	}
}

// RunAnalyzers executes each analyzer over each loaded package (in
// the given order, which must be dependency order so package facts
// flow upward), applies //simvet:allow suppression, and returns the
// surviving diagnostics sorted by position. testFile, when non-nil,
// marks files whose diagnostics should be dropped (used by the
// vet-tool driver, whose compilation units include _test.go files).
func RunAnalyzers(analyzers []*Analyzer, pkgs []*LoadedPackage, fset *token.FileSet, facts *FactStore, testFile func(string) bool) ([]RenderedDiag, error) {
	allows := allowSet{}
	for _, lp := range pkgs {
		for _, f := range lp.Files {
			collectAllows(fset, f, allows)
		}
	}
	var diags []RenderedDiag
	for _, lp := range pkgs {
		for _, a := range analyzers {
			report := func(d Diagnostic) {
				pos := fset.Position(d.Pos)
				diags = append(diags, RenderedDiag{
					File:    pos.Filename,
					Line:    pos.Line,
					Col:     pos.Column,
					Code:    d.Code,
					Message: d.Message,
				})
			}
			pass := NewPass(a, fset, lp.Files, lp.Pkg, lp.Info, facts, report)
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, lp.Path, err)
			}
		}
	}
	var kept []RenderedDiag
	for _, d := range diags {
		if allows.allows(d) {
			continue
		}
		if testFile != nil && testFile(d.File) {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Code < b.Code
	})
	return kept, nil
}

// Relativize rewrites each diagnostic's file path relative to dir
// when possible, for stable, readable output.
func Relativize(dir string, diags []RenderedDiag) {
	for i := range diags {
		if rel, err := filepath.Rel(dir, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}
}
