package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// RenderedDiag is a diagnostic resolved to a concrete file position,
// ready to print and to match against suppression directives.
type RenderedDiag struct {
	File    string // path as recorded in the file set
	Line    int
	Col     int
	Code    string
	Message string
}

func (d RenderedDiag) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Code, d.Message)
}

// allowRE matches the suppression directive. The reason is mandatory:
// an allowlist entry without a justification is itself a smell.
//
//	//simvet:allow SV001 startup banner timestamps the log header
var allowRE = regexp.MustCompile(`^//simvet:allow\s+(SV\d{3})\s+\S`)

// staleAllowCode is the diagnostic code of the staleallow pass. The
// runner keys the stale-directive sweep on its presence in the suite
// (the pass body itself is a no-op: only the runner sees every
// directive next to every diagnostic).
const staleAllowCode = "SV007"

// allowEntry is one //simvet:allow directive: where it sits and
// whether it suppressed anything this run.
type allowEntry struct {
	col  int
	used bool
}

// allowSet records, per file, line, and diagnostic code, the
// suppression directives in force. A directive suppresses matching
// diagnostics on its own line and on the line directly below it (so
// it can sit above the offending statement).
type allowSet map[string]map[int]map[string]*allowEntry

func (s allowSet) add(file string, line, col int, code string) {
	if s[file] == nil {
		s[file] = map[int]map[string]*allowEntry{}
	}
	if s[file][line] == nil {
		s[file][line] = map[string]*allowEntry{}
	}
	s[file][line][code] = &allowEntry{col: col}
}

// allows reports whether a directive covers d, marking the directive
// used: the staleallow sweep later flags the entries never marked.
func (s allowSet) allows(d RenderedDiag) bool {
	lines := s[d.File]
	if lines == nil {
		return false
	}
	for _, line := range []int{d.Line, d.Line - 1} {
		if e := lines[line][d.Code]; e != nil {
			e.used = true
			return true
		}
	}
	return false
}

// stale returns an SV007 diagnostic for every directive that
// suppressed nothing, judged only against the codes of the passes in
// this run: an allow for a pass that did not execute is unjudged, not
// stale. SV007 directives themselves are never flagged — they exist
// to keep a stale allow on purpose, which is a one-level escape, not
// a tower.
func (s allowSet) stale(codes map[string]bool) []RenderedDiag {
	var out []RenderedDiag
	for file, lines := range s {
		for line, byCode := range lines {
			for code, e := range byCode {
				if e.used || code == staleAllowCode || !codes[code] {
					continue
				}
				out = append(out, RenderedDiag{
					File: file,
					Line: line,
					Col:  e.col,
					Code: staleAllowCode,
					Message: fmt.Sprintf(
						"stale //simvet:allow %s: no %s diagnostic on this line or the line below",
						code, code),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Message < b.Message
	})
	return out
}

// collectAllows scans a file's comments for //simvet:allow directives.
func collectAllows(fset *token.FileSet, f *ast.File, into allowSet) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := allowRE.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			into.add(pos.Filename, pos.Line, pos.Column, m[1])
		}
	}
}

// RunAnalyzers executes each analyzer over each loaded package (in
// the given order, which must be dependency order so package facts
// flow upward), applies //simvet:allow suppression, and returns the
// surviving diagnostics sorted by position. testFile, when non-nil,
// marks files whose diagnostics should be dropped (used by the
// vet-tool driver, whose compilation units include _test.go files).
func RunAnalyzers(analyzers []*Analyzer, pkgs []*LoadedPackage, fset *token.FileSet, facts *FactStore, testFile func(string) bool) ([]RenderedDiag, error) {
	allows := allowSet{}
	for _, lp := range pkgs {
		for _, f := range lp.Files {
			collectAllows(fset, f, allows)
		}
	}
	var diags []RenderedDiag
	for _, lp := range pkgs {
		for _, a := range analyzers {
			report := func(d Diagnostic) {
				pos := fset.Position(d.Pos)
				diags = append(diags, RenderedDiag{
					File:    pos.Filename,
					Line:    pos.Line,
					Col:     pos.Column,
					Code:    d.Code,
					Message: d.Message,
				})
			}
			pass := NewPass(a, fset, lp.Files, lp.Pkg, lp.Info, facts, report)
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, lp.Path, err)
			}
		}
	}
	var kept []RenderedDiag
	for _, d := range diags {
		if allows.allows(d) {
			continue
		}
		if testFile != nil && testFile(d.File) {
			continue
		}
		kept = append(kept, d)
	}
	// With staleallow in the suite, sweep for directives that
	// suppressed nothing. The sweep runs after every pass's output has
	// been matched, so `used` is final; its own diagnostics go back
	// through the allowlist, which is how `//simvet:allow SV007` keeps
	// a stale directive on purpose.
	staleOn := false
	codes := map[string]bool{}
	for _, a := range analyzers {
		codes[a.Code] = true
		if a.Code == staleAllowCode {
			staleOn = true
		}
	}
	if staleOn {
		for _, d := range allows.stale(codes) {
			if allows.allows(d) {
				continue
			}
			if testFile != nil && testFile(d.File) {
				continue
			}
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Code < b.Code
	})
	return kept, nil
}

// Relativize rewrites each diagnostic's file path relative to dir
// when possible, for stable, readable output.
func Relativize(dir string, diags []RenderedDiag) {
	for i := range diags {
		if rel, err := filepath.Rel(dir, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}
}
