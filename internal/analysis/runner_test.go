package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// runnerFixture parses src as one single-file package, ready for
// RunAnalyzers (the passes under test never touch type information).
func runnerFixture(t *testing.T, src string) (*token.FileSet, []*LoadedPackage) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	return fset, []*LoadedPackage{{Path: "p", Files: []*ast.File{f}}}
}

const staleSrc = `package p

func f() int {
	//simvet:allow SV901 nothing on the next line ever fires
	return 1
}
`

// TestStaleSweepGating pins SV007's switch: the same directive that
// suppresses nothing is reported only when the staleallow pass is in
// the suite, and only for codes the run actually executed.
func TestStaleSweepGating(t *testing.T) {
	noop := func(*Pass) error { return nil }
	sv901 := &Analyzer{Name: "quiet", Code: "SV901", Run: noop}
	sv007 := &Analyzer{Name: "staleallow", Code: "SV007", Run: noop}

	fset, pkgs := runnerFixture(t, staleSrc)
	diags, err := RunAnalyzers([]*Analyzer{sv901}, pkgs, fset, NewFactStore(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("without staleallow in the suite got %v, want none", diags)
	}

	fset, pkgs = runnerFixture(t, staleSrc)
	diags, err = RunAnalyzers([]*Analyzer{sv901, sv007}, pkgs, fset, NewFactStore(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Code != "SV007" || diags[0].Line != 4 {
		t.Fatalf("with staleallow got %v, want one SV007 at line 4", diags)
	}
	if !strings.Contains(diags[0].Message, "SV901") {
		t.Fatalf("SV007 message %q does not name the stale code", diags[0].Message)
	}

	// A directive naming a pass outside the run is unjudged: with only
	// staleallow executing, SV901's fate is unknown.
	fset, pkgs = runnerFixture(t, staleSrc)
	diags, err = RunAnalyzers([]*Analyzer{sv007}, pkgs, fset, NewFactStore(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("directive for a pass outside the run got %v, want none", diags)
	}
}

// TestStaleSweepSpared pins the two ways a directive escapes SV007: by
// suppressing a real diagnostic, and by an SV007 allow on the line
// above keeping it on purpose.
func TestStaleSweepSpared(t *testing.T) {
	firing := &Analyzer{Name: "loud", Code: "SV901", Run: func(p *Pass) error {
		// Report on the fixture's return statement, under the live
		// directive.
		ast.Inspect(p.Files[0], func(n ast.Node) bool {
			if r, ok := n.(*ast.ReturnStmt); ok {
				p.Reportf(r.Pos(), "synthetic finding")
			}
			return true
		})
		return nil
	}}
	sv007 := &Analyzer{Name: "staleallow", Code: "SV007", Run: func(*Pass) error { return nil }}

	fset, pkgs := runnerFixture(t, staleSrc)
	diags, err := RunAnalyzers([]*Analyzer{firing, sv007}, pkgs, fset, NewFactStore(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("live directive got %v, want none", diags)
	}

	fset, pkgs = runnerFixture(t, `package p

func f() int {
	//simvet:allow SV007 stale on purpose, migration in flight
	//simvet:allow SV901 retired call site
	return 1
}
`)
	quiet := &Analyzer{Name: "quiet", Code: "SV901", Run: func(*Pass) error { return nil }}
	diags, err = RunAnalyzers([]*Analyzer{quiet, sv007}, pkgs, fset, NewFactStore(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("kept-on-purpose directive got %v, want none", diags)
	}
}
