// Package staleallow implements SV007: every `//simvet:allow`
// directive must still be earning its keep. A directive suppresses
// diagnostics of one code on its own line and the line below; when
// the code it names no longer fires there — the offending call was
// removed, the pass got smarter, the line drifted during a refactor —
// the directive becomes a standing lie about the code next to it, and
// the next reader inherits a justification for a violation that no
// longer exists. SV007 reports any directive that suppressed nothing,
// judged only against the passes actually in the run (an allow for a
// pass that did not execute is unjudged, not stale).
//
// The pass body is empty on purpose: staleness is a property of the
// whole run, not of any one package's AST — only the driver sees
// every directive next to every surviving diagnostic — so the
// detection lives in analysis.RunAnalyzers, keyed on this analyzer's
// presence in the suite. A stale directive can itself be kept
// deliberately (say, mid-migration) with `//simvet:allow SV007
// reason` on the line above.
package staleallow

import "memhogs/internal/analysis"

// Analyzer is the SV007 pass. Its Run is a no-op: listing it in a
// suite switches on the runner's stale-directive sweep.
var Analyzer = &analysis.Analyzer{
	Name: "staleallow",
	Code: "SV007",
	Doc: "report //simvet:allow directives that suppress nothing: the named " +
		"code no longer fires on the directive's line or the line below",
	Run: func(*analysis.Pass) error { return nil },
}
