package staleallow_test

import (
	"testing"

	"memhogs/internal/analysis"
	"memhogs/internal/analysis/analysistest"
	"memhogs/internal/analysis/nodeterm"
	"memhogs/internal/analysis/staleallow"
)

// TestStaleAllow runs SV007 next to a real pass (nodeterm) so the
// fixture can show all four directive fates: live (suppresses a real
// SV001), stale (suppresses nothing → SV007), unjudged (names a pass
// not in the run), and kept-on-purpose (stale but covered by an SV007
// allow on the line above). The runner-level gating — no sweep
// without the analyzer in the suite — is pinned by the analysis
// package's own tests.
func TestStaleAllow(t *testing.T) {
	analysistest.RunAll(t, "testdata",
		[]*analysis.Analyzer{nodeterm.Analyzer, staleallow.Analyzer}, "kernel")
}
