// Package kernel is a fixture standing in for the simulated kernel:
// it sits inside nodeterm's audited scope, so SV001 fires here and
// the //simvet:allow directives below are judged live or stale by
// whether they actually suppress one of its findings.
package kernel

import "time"

// BootBanner carries a live directive: the time.Now call on the line
// below really trips SV001, the allow really suppresses it, and SV007
// stays quiet.
func BootBanner() time.Time {
	//simvet:allow SV001 startup banner timestamps the human-readable log header only
	return time.Now()
}

// Arithmetic carries a stale directive: nothing on the directive's
// line or the line below reads the wall clock (duration arithmetic is
// legal), so the allow suppresses nothing and SV007 flags it.
func Arithmetic(d time.Duration) time.Duration {
	//simvet:allow SV001 the addition below reads the host clock // want `stale //simvet:allow SV001: no SV001 diagnostic`
	return 2*d + time.Millisecond
}

// Boxed carries a directive for a pass that is not part of this run:
// whether SV006 would fire here is unknowable without running
// hotalloc, so the directive is unjudged, not stale.
func Boxed() interface{} {
	//simvet:allow SV006 boxing the constant is sanctioned on this cold path
	return 1
}

// Retired keeps a stale directive on purpose: the SV007 allow on the
// line above it records that the migration is still in flight, which
// suppresses the staleness report without founding a tower (SV007
// directives are themselves never judged).
func Retired(d time.Duration) time.Duration {
	//simvet:allow SV007 call site retired mid-migration, directive kept until the branch lands
	//simvet:allow SV001 retired wall-clock call site
	return d
}
