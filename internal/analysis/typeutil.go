package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// PkgTail returns the last slash-separated element of an import path.
func PkgTail(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// MatchesScope reports whether pkgPath denotes one of the named
// simulator-stack packages. Real packages live at
// "<module>/internal/<name>"; analyzer testdata packages use the bare
// path "<name>". Matching both lets one analyzer serve production
// code and its own test fixtures.
func MatchesScope(pkgPath string, names map[string]bool) bool {
	tail := PkgTail(pkgPath)
	if !names[tail] {
		return false
	}
	return pkgPath == tail || strings.HasSuffix(pkgPath, "internal/"+tail)
}

// CalleeFunc resolves the function or method a call expression
// invokes, or nil for builtins, conversions, and indirect calls
// through function values.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fn]
	case *ast.SelectorExpr:
		obj = info.Uses[fn.Sel]
	default:
		return nil
	}
	f, _ := obj.(*types.Func)
	return f
}

// FuncPkgPath returns the import path of the package declaring f, or
// "" for builtins.
func FuncPkgPath(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// ConstName resolves expr to a named constant declared in a package
// whose name is pkgName and whose type's name is typeName, returning
// the constant's name and true on a match. It accepts both qualified
// references (events.FaultSoft) and bare identifiers from inside the
// declaring package.
func ConstName(info *types.Info, expr ast.Expr, pkgName, typeName string) (string, bool) {
	var obj types.Object
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	default:
		return "", false
	}
	c, ok := obj.(*types.Const)
	if !ok || c.Pkg() == nil || c.Pkg().Name() != pkgName {
		return "", false
	}
	named, ok := c.Type().(*types.Named)
	if !ok || named.Obj().Name() != typeName {
		return "", false
	}
	return c.Name(), true
}

// ReceiverNamed returns the named type of a method's receiver
// (unwrapping one pointer), or nil if f is not a method.
func ReceiverNamed(f *types.Func) *types.Named {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
