// Package chaos is a deterministic, seed-driven fault-injection
// engine for the simulated memory system. A fault plan is pure data —
// a seed plus a list of per-site probabilities and schedules — and the
// injector it configures is threaded through the kernel, pageout, rt,
// pdpm and disk layers at injection points co-located with the
// flight-recorder Emit calls, so every injected fault is visible in
// the event stream and every run is replayable byte-for-byte under
// the sim clock.
//
// Determinism follows the repo-wide rule that every stochastic
// component owns its own sim.Rand stream: the injector keeps one
// stream per site, derived from the plan seed, so a site that never
// fires never draws, and a plan whose probabilities are all zero
// perturbs nothing — the run is byte-identical to one with no
// injector at all (the metamorphic property chaostest checks).
//
// Like the flight recorder, a nil *Injector is valid everywhere and
// injects nothing at the cost of one branch.
package chaos

import (
	"memhogs/internal/events"
	"memhogs/internal/mem"
	"memhogs/internal/sim"
)

// Site identifies one injection point class in the stack.
type Site uint8

// Injection sites. The order is stable (plan strings and event
// payloads reference it by name, not index).
const (
	// ReleaserStall delays the releaser daemon before it handles a
	// dequeued request (magnitude: stall duration).
	ReleaserStall Site = iota
	// DaemonStorm inflates the paging daemon's steal target for one
	// activation (magnitude: extra pages beyond desfree).
	DaemonStorm
	// ReleaseDrop loses a compiler release hint before the run-time
	// layer sees it.
	ReleaseDrop
	// ReleaseDup delivers a release hint twice (exercises the
	// one-request-behind duplicate filter).
	ReleaseDup
	// ReleaseLate holds a release hint back and re-delivers it after a
	// later hint (out-of-order arrival).
	ReleaseLate
	// PrefetchDrop loses a compiler prefetch hint.
	PrefetchDrop
	// PrefetchDup delivers a prefetch hint twice.
	PrefetchDup
	// StaleShared makes the shared page lie: a refresh or bitmap
	// update is skipped, so the run-time layer observes stale
	// residency and limit data.
	StaleShared
	// DiskSlow adds a latency spike before a disk request is
	// positioned (magnitude: extra delay).
	DiskSlow
	// DiskError fails a disk read transfer; the disk retries with
	// exponential backoff (magnitude: base backoff).
	DiskError
	// MemShrink hot-unplugs physical frames at a scheduled time
	// (magnitude: pages to take offline).
	MemShrink
	// MemGrow brings hot-unplugged frames back online (magnitude:
	// pages).
	MemGrow
	// FarSlow adds a latency spike to a far-tier promotion (magnitude:
	// extra delay).
	FarSlow
	// FarDrop loses a demotion decision: the released page goes to swap
	// even though its priority earned a far-tier slot.
	FarDrop
	// FarShrink hot-unplugs free far-tier slots at a scheduled time
	// (magnitude: slots to take offline).
	FarShrink
	// FarGrow brings hot-unplugged far-tier slots back online
	// (magnitude: slots).
	FarGrow
	NumSites
)

var siteNames = [NumSites]string{
	ReleaserStall: "releaser-stall",
	DaemonStorm:   "daemon-storm",
	ReleaseDrop:   "release-drop",
	ReleaseDup:    "release-dup",
	ReleaseLate:   "release-late",
	PrefetchDrop:  "prefetch-drop",
	PrefetchDup:   "prefetch-dup",
	StaleShared:   "stale-shared",
	DiskSlow:      "disk-slow",
	DiskError:     "disk-error",
	MemShrink:     "mem-shrink",
	MemGrow:       "mem-grow",
	FarSlow:       "far-slow",
	FarDrop:       "far-drop",
	FarShrink:     "far-shrink",
	FarGrow:       "far-grow",
}

// durationSite marks sites whose magnitude is a duration (plan
// strings format those with a unit suffix).
var durationSite = [NumSites]bool{
	ReleaserStall: true,
	DiskSlow:      true,
	DiskError:     true,
	FarSlow:       true,
}

// timedSite marks sites that fire at a scheduled time rather than
// probabilistically at an injection point.
var timedSite = [NumSites]bool{
	MemShrink: true,
	MemGrow:   true,
	FarShrink: true,
	FarGrow:   true,
}

// defaultMag is the magnitude used when a fault leaves Mag zero.
var defaultMag = [NumSites]int64{
	ReleaserStall: int64(2 * sim.Millisecond),
	DaemonStorm:   64,
	DiskSlow:      int64(10 * sim.Millisecond),
	DiskError:     int64(2 * sim.Millisecond),
	MemShrink:     64,
	MemGrow:       64,
	FarSlow:       int64(1 * sim.Millisecond),
	FarShrink:     32,
	FarGrow:       32,
}

// String returns the site's stable plan-string name.
func (s Site) String() string {
	if s < NumSites {
		return siteNames[s]
	}
	return "unknown"
}

// Timed reports whether the site fires on a schedule instead of a
// probability roll.
func (s Site) Timed() bool { return s < NumSites && timedSite[s] }

// Fault arms one site. Probabilistic sites roll Prob at every
// opportunity inside the [After, Until) window (Until zero means no
// end); timed sites (mem-shrink/grow) fire once at At. Mag is the
// site-specific magnitude; zero selects the site default.
type Fault struct {
	Site  Site
	Prob  float64
	Mag   int64
	At    sim.Time
	After sim.Time
	Until sim.Time

	// Node scopes a timed mem-shrink/grow fault to one memory node of
	// a sharded pool: 0 means unscoped (the historical whole-machine
	// behavior), k+1 targets node k (plan-string option "node=k").
	Node int
}

// Plan is a complete fault schedule: pure, replayable data.
type Plan struct {
	Seed   uint64
	Faults []Fault
}

// TargetsFar reports whether any fault in the plan arms a far-tier
// site. Such plans only do anything on a machine configured with a
// far tier; callers without one use this to enable it.
func (p Plan) TargetsFar() bool {
	for _, f := range p.Faults {
		switch f.Site {
		case FarSlow, FarDrop, FarShrink, FarGrow:
			return true
		}
	}
	return false
}

// Counts is the per-site number of injected faults.
type Counts [NumSites]int64

// Get returns the count for one site.
func (c Counts) Get(s Site) int64 { return c[s] }

// Total returns the number of faults injected across all sites.
func (c Counts) Total() int64 {
	var t int64
	for _, n := range c {
		t += n
	}
	return t
}

// Map returns the nonzero counts keyed by site name.
func (c Counts) Map() map[string]int64 {
	m := map[string]int64{}
	for s, n := range c {
		if n != 0 {
			m[siteNames[s]] = n
		}
	}
	return m
}

// Injector executes a Plan. A nil *Injector is valid at every
// injection point and injects nothing.
type Injector struct {
	sim *sim.Sim
	rec *events.Recorder

	// One independent stream per site: a plan listing only disk
	// faults draws exactly the same releaser decisions (none) as a
	// plan with no releaser faults at all.
	rngs   [NumSites]*sim.Rand
	faults [NumSites][]Fault
	timed  []Fault
	counts Counts

	// OnFault, if non-nil, runs synchronously after every injected
	// fault; the driver wires the continuous audit here so invariant
	// violations are caught at the step that caused them.
	OnFault func(Site)
}

// NewInjector builds the injector for one run. rec may be nil
// (injections then go unrecorded but still fire).
func NewInjector(s *sim.Sim, rec *events.Recorder, plan Plan) *Injector {
	in := &Injector{sim: s, rec: rec}
	for site := Site(0); site < NumSites; site++ {
		// Salt the per-site seeds so sites decorrelate even for small
		// consecutive plan seeds.
		in.rngs[site] = sim.NewRand(plan.Seed*0x9e3779b97f4a7c15 + uint64(site)*0x9e37 + 1)
	}
	for _, f := range plan.Faults {
		if f.Site >= NumSites {
			continue
		}
		if f.Site.Timed() {
			in.timed = append(in.timed, f)
		} else {
			in.faults[f.Site] = append(in.faults[f.Site], f)
		}
	}
	return in
}

// Counts returns the per-site injection totals so far.
func (in *Injector) Counts() Counts {
	if in == nil {
		return Counts{}
	}
	return in.counts
}

// inject records one fired fault: count, event, audit hook.
func (in *Injector) inject(site Site, actor string, page int, mag int64) {
	in.counts[site]++
	in.rec.Emit(events.ChaosInject, actor, siteNames[site], page, mag, 0)
	if in.OnFault != nil {
		in.OnFault(site)
	}
}

// roll decides whether a probabilistic site fires now and returns the
// armed magnitude. Nothing is drawn when the site is unarmed or
// outside its window, so an armed-elsewhere plan cannot perturb this
// site's stream.
func (in *Injector) roll(site Site, actor string, page int) (int64, bool) {
	if in == nil || len(in.faults[site]) == 0 {
		return 0, false
	}
	now := in.sim.Now()
	for i := range in.faults[site] {
		f := &in.faults[site][i]
		if now < f.After || (f.Until > 0 && now >= f.Until) {
			continue
		}
		if f.Prob <= 0 {
			continue
		}
		if f.Prob < 1 && in.rngs[site].Float64() >= f.Prob {
			continue
		}
		mag := f.Mag
		if mag == 0 {
			mag = defaultMag[site]
		}
		in.inject(site, actor, page, mag)
		return mag, true
	}
	return 0, false
}

// Fire rolls a probabilistic site whose magnitude is irrelevant
// (dropped/duplicated/late hints, stale shared-page updates).
func (in *Injector) Fire(site Site, actor string, page int) bool {
	_, ok := in.roll(site, actor, page)
	return ok
}

// FireDelay rolls a site whose magnitude is a duration (releaser
// stalls, disk latency spikes, disk-error backoff); zero means the
// fault did not fire.
func (in *Injector) FireDelay(site Site, actor string) sim.Time {
	mag, ok := in.roll(site, actor, -1)
	if !ok {
		return 0
	}
	return sim.Time(mag)
}

// FireExtra rolls a site whose magnitude is a page count (daemon
// steal storms); zero means the fault did not fire.
func (in *Injector) FireExtra(site Site, actor string) int {
	mag, ok := in.roll(site, actor, -1)
	if !ok {
		return 0
	}
	return int(mag)
}

// shrinkRetry is the re-try cadence when a hot-unplug cannot take all
// requested frames offline at once (memory must be stolen first).
const shrinkRetry = 10 * sim.Millisecond

// ScheduleMem arms the plan's timed mem-shrink/grow faults against
// phys. maxOffline caps the total frames ever offline at once so a
// shrink cannot wedge the machine; kick (may be nil) asks the paging
// daemons for memory when a shrink needs more free frames — it is
// called with the targeted node index, or -1 for an unscoped fault
// (kick whichever daemons the kernel sees fit). A fault with Node set
// unplugs/replugs only that node's region.
func (in *Injector) ScheduleMem(phys *mem.Phys, maxOffline int, kick func(node int)) {
	if in == nil {
		return
	}
	for _, f := range in.timed {
		f := f
		mag := f.Mag
		if mag == 0 {
			mag = defaultMag[f.Site]
		}
		at := f.At
		if at == 0 {
			at = f.After
		}
		// node < 0 means whole-machine; otherwise the fault is scoped
		// to one memory region (clamped so a stale plan cannot panic).
		node := f.Node - 1
		if node >= phys.Nodes() {
			node = phys.Nodes() - 1
		}
		switch f.Site {
		case MemShrink:
			remaining := int(mag)
			var step func()
			step = func() {
				if over := phys.OfflineCount() + remaining - maxOffline; over > 0 {
					remaining -= over
				}
				if remaining <= 0 {
					return
				}
				var got int
				if node >= 0 {
					got = phys.OfflineNode(node, remaining)
				} else {
					got = phys.Offline(remaining)
				}
				remaining -= got
				if got > 0 {
					in.inject(MemShrink, "chaos", -1, int64(got))
				}
				if remaining > 0 {
					// Not enough free frames yet: ask for memory and
					// take the rest as it is freed.
					if kick != nil {
						kick(node)
					}
					in.sim.After(shrinkRetry, step)
				}
			}
			in.sim.At(at, step)
		case MemGrow:
			in.sim.At(at, func() {
				var got int
				if node >= 0 {
					got = phys.OnlineNode(node, int(mag))
				} else {
					got = phys.Online(int(mag))
				}
				if got > 0 {
					in.inject(MemGrow, "chaos", -1, int64(got))
				}
			})
		}
	}
}

// ScheduleFar arms the plan's timed far-shrink/grow faults against the
// far tier. Only free slots can go offline (demoted pages stay where
// they are, as on a real device being drained), so a shrink takes what
// is drainable now and retries on the ScheduleMem cadence — promotions
// replenish the free stacks — until it reaches its magnitude or the
// maxOffline cap. A no-op when the run has no far tier, which is what
// keeps far faults in an "all" plan inert on far-disabled runs.
func (in *Injector) ScheduleFar(far *mem.FarTier, maxOffline int) {
	if in == nil || far == nil {
		return
	}
	for _, f := range in.timed {
		f := f
		mag := f.Mag
		if mag == 0 {
			mag = defaultMag[f.Site]
		}
		at := f.At
		if at == 0 {
			at = f.After
		}
		switch f.Site {
		case FarShrink:
			remaining := int(mag)
			var step func()
			step = func() {
				if over := far.OfflineCount() + remaining - maxOffline; over > 0 {
					remaining -= over
				}
				if remaining <= 0 {
					return
				}
				got := far.Offline(remaining)
				remaining -= got
				if got > 0 {
					in.inject(FarShrink, "chaos", -1, int64(got))
				}
				if remaining > 0 {
					in.sim.After(shrinkRetry, step)
				}
			}
			in.sim.At(at, step)
		case FarGrow:
			in.sim.At(at, func() {
				if got := far.Online(int(mag)); got > 0 {
					in.inject(FarGrow, "chaos", -1, int64(got))
				}
			})
		}
	}
}
