package chaos

import (
	"reflect"
	"strings"
	"testing"

	"memhogs/internal/mem"
	"memhogs/internal/sim"
)

func TestPlanStringRoundTrip(t *testing.T) {
	plans := []Plan{
		{Seed: 7},
		{Seed: 1, Faults: []Fault{{Site: ReleaseDrop, Prob: 0.05}}},
		{Seed: 42, Faults: []Fault{
			{Site: ReleaserStall, Prob: 0.1, Mag: int64(5 * sim.Millisecond)},
			{Site: DiskError, Prob: 0.02, After: 10 * sim.Millisecond, Until: 2 * sim.Second},
			{Site: DaemonStorm, Prob: 1, Mag: 128},
			{Site: MemShrink, At: 50 * sim.Millisecond, Mag: 96},
			{Site: MemGrow, At: 250 * sim.Millisecond},
			{Site: StaleShared, Prob: 0.30000000000000004},
			{Site: DiskSlow, Prob: 0.5, Mag: 1234567}, // odd ns count
		}},
	}
	for _, p := range plans {
		s := p.String()
		got, err := ParsePlan(s)
		if err != nil {
			t.Fatalf("ParsePlan(%q): %v", s, err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Errorf("round trip %q: got %+v want %+v", s, got, p)
		}
	}
}

func TestParsePlanErrors(t *testing.T) {
	bad := []string{
		"seed=x",
		"no-such-site",
		"release-drop:p=2",
		"release-drop:p=nan",
		"release-drop:p",
		"disk-slow:mag=5xs",
		"daemon-storm:mag=-3",
		"disk-error:after=5ms,until=5ms",
		"disk-error:until=1ms,after=2ms",
		"release-drop:wat=1",
		"releaser-stall:mag=99999999999s",
	}
	for _, s := range bad {
		if _, err := ParsePlan(s); err == nil {
			t.Errorf("ParsePlan(%q): expected error", s)
		}
	}
}

func TestClassPlans(t *testing.T) {
	total := 0
	for _, name := range ClassNames() {
		p, err := ClassPlan(name, 9)
		if err != nil {
			t.Fatalf("ClassPlan(%q): %v", name, err)
		}
		if p.Seed != 9 {
			t.Errorf("ClassPlan(%q) seed %d", name, p.Seed)
		}
		if len(p.Faults) == 0 {
			t.Errorf("ClassPlan(%q) is empty", name)
		}
		if name != "all" {
			total += len(p.Faults)
		} else if len(p.Faults) != func() int {
			n := 0
			for _, c := range classOrder {
				if c != "all" {
					n += len(classes[c])
				}
			}
			return n
		}() {
			t.Errorf("ClassPlan(all) has %d faults", len(p.Faults))
		}
		// Every class plan must survive the string round trip.
		rt, err := ParsePlan(p.String())
		if err != nil || !reflect.DeepEqual(rt, p) {
			t.Errorf("ClassPlan(%q) round trip failed: %v", name, err)
		}
	}
	if _, err := ClassPlan("bogus", 1); err == nil || !strings.Contains(err.Error(), "unknown fault class") {
		t.Errorf("ClassPlan(bogus) = %v, want unknown-class error", err)
	}
}

func TestNilInjector(t *testing.T) {
	var in *Injector
	if in.Fire(ReleaseDrop, "x", 1) {
		t.Error("nil injector fired")
	}
	if d := in.FireDelay(DiskSlow, "x"); d != 0 {
		t.Errorf("nil injector delay %v", d)
	}
	if n := in.FireExtra(DaemonStorm, "x"); n != 0 {
		t.Errorf("nil injector extra %d", n)
	}
	if in.Counts().Total() != 0 {
		t.Error("nil injector counted")
	}
	in.ScheduleMem(nil, 0, nil) // must not panic
}

// decisions runs the same Fire sequence and returns the outcomes.
func decisions(seed uint64, n int) []bool {
	s := sim.New()
	in := NewInjector(s, nil, Plan{Seed: seed, Faults: []Fault{{Site: ReleaseDrop, Prob: 0.5}}})
	out := make([]bool, n)
	for i := range out {
		out[i] = in.Fire(ReleaseDrop, "t", i)
	}
	return out
}

func TestDeterminism(t *testing.T) {
	a, b := decisions(3, 200), decisions(3, 200)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different decision sequences")
	}
	c := decisions(4, 200)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical decision sequences")
	}
	fired := 0
	for _, v := range a {
		if v {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("p=0.5 fired %d/%d times", fired, len(a))
	}
}

func TestZeroProbabilityDrawsNothing(t *testing.T) {
	s := sim.New()
	// Arm every probabilistic site at p=0; none may ever fire, and none
	// may consume randomness (checked indirectly: the p=1 control site
	// still fires on its own untouched stream).
	var faults []Fault
	for site := Site(0); site < NumSites; site++ {
		if site.Timed() {
			continue
		}
		faults = append(faults, Fault{Site: site, Prob: 0})
	}
	in := NewInjector(s, nil, Plan{Seed: 1, Faults: faults})
	for i := 0; i < 100; i++ {
		for site := Site(0); site < NumSites; site++ {
			if site.Timed() {
				continue
			}
			if in.Fire(site, "t", i) {
				t.Fatalf("zero-probability site %s fired", site)
			}
		}
	}
	if in.Counts().Total() != 0 {
		t.Fatalf("zero-probability plan injected %d faults", in.Counts().Total())
	}
}

func TestWindow(t *testing.T) {
	s := sim.New()
	in := NewInjector(s, nil, Plan{Seed: 1, Faults: []Fault{{
		Site:  DiskSlow,
		Prob:  1,
		Mag:   int64(3 * sim.Millisecond),
		After: 10 * sim.Millisecond,
		Until: 20 * sim.Millisecond,
	}}})
	check := func(at sim.Time, want sim.Time) {
		s.At(at, func() {
			if got := in.FireDelay(DiskSlow, "t"); got != want {
				t.Errorf("at %v: delay %v, want %v", at, got, want)
			}
		})
	}
	check(0, 0)
	check(9*sim.Millisecond, 0)
	check(10*sim.Millisecond, 3*sim.Millisecond) // inclusive start
	check(19*sim.Millisecond, 3*sim.Millisecond)
	check(20*sim.Millisecond, 0) // exclusive end
	check(30*sim.Millisecond, 0)
	s.Run(0)
}

func TestDefaultMagnitudes(t *testing.T) {
	s := sim.New()
	in := NewInjector(s, nil, Plan{Seed: 1, Faults: []Fault{
		{Site: ReleaserStall, Prob: 1}, // Mag 0 selects the default
		{Site: DaemonStorm, Prob: 1},
	}})
	if got := in.FireDelay(ReleaserStall, "t"); got != sim.Time(defaultMag[ReleaserStall]) {
		t.Errorf("default stall magnitude %v", got)
	}
	if got := in.FireExtra(DaemonStorm, "t"); got != int(defaultMag[DaemonStorm]) {
		t.Errorf("default storm magnitude %d", got)
	}
	if in.Counts().Get(ReleaserStall) != 1 || in.Counts().Get(DaemonStorm) != 1 {
		t.Errorf("counts %v", in.Counts().Map())
	}
}

func TestScheduleMemShrinkGrow(t *testing.T) {
	s := sim.New()
	phys := mem.New(s, 64)
	in := NewInjector(s, nil, Plan{Seed: 1, Faults: []Fault{
		{Site: MemShrink, At: 5 * sim.Millisecond, Mag: 16},
		{Site: MemGrow, At: 15 * sim.Millisecond, Mag: 16},
	}})
	kicked := 0
	in.ScheduleMem(phys, 32, func(int) { kicked++ })
	s.At(10*sim.Millisecond, func() {
		if phys.OfflineCount() != 16 {
			t.Errorf("at 10ms: %d offline, want 16", phys.OfflineCount())
		}
	})
	s.Run(20 * sim.Millisecond)
	if phys.OfflineCount() != 0 {
		t.Errorf("after grow: %d offline, want 0", phys.OfflineCount())
	}
	if phys.FreeCount() != 64 {
		t.Errorf("after grow: %d free, want 64", phys.FreeCount())
	}
	if in.Counts().Get(MemShrink) == 0 || in.Counts().Get(MemGrow) == 0 {
		t.Errorf("timed faults not recorded: %v", in.Counts().Map())
	}
}

func TestScheduleMemRespectsCap(t *testing.T) {
	s := sim.New()
	phys := mem.New(s, 64)
	in := NewInjector(s, nil, Plan{Seed: 1, Faults: []Fault{
		{Site: MemShrink, At: sim.Millisecond, Mag: 1000},
	}})
	in.ScheduleMem(phys, 24, nil)
	s.Run(sim.Second)
	if phys.OfflineCount() != 24 {
		t.Errorf("offline %d, want the cap 24", phys.OfflineCount())
	}
}

func FuzzChaosPlan(f *testing.F) {
	f.Add("seed=7;releaser-stall:p=0.1,mag=5ms;disk-error:p=0.02;mem-shrink:at=50ms,mag=96")
	f.Add("release-drop:p=1;release-dup:p=0.5;release-late:p=0.5,after=1ms,until=2s")
	f.Add("seed=0;stale-shared;prefetch-drop:p=0.999")
	f.Add("mem-grow:at=1s;disk-slow:mag=250us,p=0.25")
	f.Add(";;;seed=18446744073709551615;daemon-storm:mag=9223372036854775807")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ParsePlan(src)
		if err != nil {
			return
		}
		// Decode must be a retraction of encode: the canonical string
		// parses back to the identical plan.
		enc := p.String()
		p2, err := ParsePlan(enc)
		if err != nil {
			t.Fatalf("re-parse %q: %v", enc, err)
		}
		if !reflect.DeepEqual(p2, p) {
			t.Fatalf("unstable round trip: %q -> %+v -> %+v", src, p, p2)
		}
		// Execution must not panic or hang for any valid plan.
		s := sim.New()
		phys := mem.New(s, 32)
		in := NewInjector(s, nil, p)
		in.ScheduleMem(phys, 16, nil)
		for _, at := range []sim.Time{0, sim.Millisecond, 100 * sim.Millisecond} {
			at := at
			s.At(at, func() {
				for site := Site(0); site < NumSites; site++ {
					if !site.Timed() {
						in.Fire(site, "fuzz", 0)
					}
				}
			})
		}
		s.Run(200 * sim.Millisecond)
	})
}
