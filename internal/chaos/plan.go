package chaos

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"memhogs/internal/sim"
)

// The plan string format is the CLI/replay interface:
//
//	seed=7;releaser-stall:p=0.1,mag=5ms;disk-error:p=0.02;mem-shrink:at=50ms,mag=96
//
// Entries are ';'-separated. "seed=N" sets the plan seed; every other
// entry is a site name optionally followed by ':' and ','-separated
// k=v options: p (probability), mag (magnitude: bare integer, or a
// duration like 250us/5ms/1.5s for duration sites), at (timed sites),
// after/until (probabilistic window), node (scopes a timed
// mem-shrink/grow to one memory node of a sharded pool).
// ParsePlan(p.String()) is the identity for any valid plan.

// String encodes the plan in the parseable replay format.
func (p Plan) String() string {
	parts := []string{fmt.Sprintf("seed=%d", p.Seed)}
	for _, f := range p.Faults {
		parts = append(parts, f.String())
	}
	return strings.Join(parts, ";")
}

// FaultsString encodes just the fault entries, without the seed — the
// form the memhog chaos -faults flag takes (the seed travels in -seed).
func (p Plan) FaultsString() string {
	parts := make([]string, 0, len(p.Faults))
	for _, f := range p.Faults {
		parts = append(parts, f.String())
	}
	return strings.Join(parts, ";")
}

// String encodes one fault as a plan-string entry.
func (f Fault) String() string {
	var opts []string
	if f.Prob != 0 {
		opts = append(opts, "p="+strconv.FormatFloat(f.Prob, 'g', -1, 64))
	}
	if f.Mag != 0 {
		if durationSite[f.Site] {
			opts = append(opts, "mag="+formatDur(sim.Time(f.Mag)))
		} else {
			opts = append(opts, "mag="+strconv.FormatInt(f.Mag, 10))
		}
	}
	if f.At != 0 {
		opts = append(opts, "at="+formatDur(f.At))
	}
	if f.After != 0 {
		opts = append(opts, "after="+formatDur(f.After))
	}
	if f.Until != 0 {
		opts = append(opts, "until="+formatDur(f.Until))
	}
	if f.Node != 0 {
		opts = append(opts, "node="+strconv.Itoa(f.Node-1))
	}
	if len(opts) == 0 {
		return f.Site.String()
	}
	return f.Site.String() + ":" + strings.Join(opts, ",")
}

// formatDur renders a duration exactly with the largest unit that
// divides it, so parsing the result reproduces the same Time.
func formatDur(t sim.Time) string {
	switch {
	case t != 0 && t%sim.Second == 0:
		return strconv.FormatInt(int64(t/sim.Second), 10) + "s"
	case t != 0 && t%sim.Millisecond == 0:
		return strconv.FormatInt(int64(t/sim.Millisecond), 10) + "ms"
	case t != 0 && t%sim.Microsecond == 0:
		return strconv.FormatInt(int64(t/sim.Microsecond), 10) + "us"
	default:
		return strconv.FormatInt(int64(t), 10) + "ns"
	}
}

// parseDur accepts a bare nanosecond count or a float with an
// ns/us/ms/s suffix.
func parseDur(s string) (sim.Time, error) {
	unit := sim.Nanosecond
	num := s
	switch {
	case strings.HasSuffix(s, "ns"):
		num = s[:len(s)-2]
	case strings.HasSuffix(s, "us"):
		num, unit = s[:len(s)-2], sim.Microsecond
	case strings.HasSuffix(s, "ms"):
		num, unit = s[:len(s)-2], sim.Millisecond
	case strings.HasSuffix(s, "s"):
		num, unit = s[:len(s)-1], sim.Second
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("bad duration %q", s)
	}
	ns := v * float64(unit)
	// >= because float64(MaxInt64) rounds up to 2^63, which would
	// overflow the conversion below.
	if math.IsNaN(ns) || ns < 0 || ns >= float64(math.MaxInt64) {
		return 0, fmt.Errorf("duration %q out of range", s)
	}
	return sim.Time(ns), nil
}

// SiteByName resolves a plan-string site name.
func SiteByName(name string) (Site, bool) {
	for s := Site(0); s < NumSites; s++ {
		if siteNames[s] == name {
			return s, true
		}
	}
	return NumSites, false
}

// ParsePlan decodes the plan string format; see Plan.String.
func ParsePlan(s string) (Plan, error) {
	var p Plan
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if v, ok := strings.CutPrefix(part, "seed="); ok {
			seed, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("chaos: bad seed %q", v)
			}
			p.Seed = seed
			continue
		}
		f, err := parseFault(part)
		if err != nil {
			return Plan{}, err
		}
		p.Faults = append(p.Faults, f)
	}
	return p, nil
}

func parseFault(s string) (Fault, error) {
	name, opts, _ := strings.Cut(s, ":")
	site, ok := SiteByName(strings.TrimSpace(name))
	if !ok {
		return Fault{}, fmt.Errorf("chaos: unknown site %q (known: %s)",
			name, strings.Join(siteNames[:], " "))
	}
	f := Fault{Site: site}
	if opts == "" {
		return f, nil
	}
	for _, opt := range strings.Split(opts, ",") {
		k, v, found := strings.Cut(strings.TrimSpace(opt), "=")
		if !found || v == "" {
			return Fault{}, fmt.Errorf("chaos: %s: option %q is not k=v", name, opt)
		}
		switch k {
		case "p":
			prob, err := strconv.ParseFloat(v, 64)
			if err != nil || math.IsNaN(prob) || prob < 0 || prob > 1 {
				return Fault{}, fmt.Errorf("chaos: %s: probability %q not in [0,1]", name, v)
			}
			f.Prob = prob
		case "mag":
			if durationSite[site] {
				d, err := parseDur(v)
				if err != nil {
					return Fault{}, fmt.Errorf("chaos: %s: %v", name, err)
				}
				f.Mag = int64(d)
			} else {
				mag, err := strconv.ParseInt(v, 10, 64)
				if err != nil || mag < 0 {
					return Fault{}, fmt.Errorf("chaos: %s: bad magnitude %q", name, v)
				}
				f.Mag = mag
			}
		case "node":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return Fault{}, fmt.Errorf("chaos: %s: bad node %q", name, v)
			}
			f.Node = n + 1
		case "at", "after", "until":
			d, err := parseDur(v)
			if err != nil {
				return Fault{}, fmt.Errorf("chaos: %s: %v", name, err)
			}
			switch k {
			case "at":
				f.At = d
			case "after":
				f.After = d
			case "until":
				f.Until = d
			}
		default:
			return Fault{}, fmt.Errorf("chaos: %s: unknown option %q", name, k)
		}
	}
	if f.Until > 0 && f.Until <= f.After {
		return Fault{}, fmt.Errorf("chaos: %s: empty window [%s, %s)", name, f.After, f.Until)
	}
	return f, nil
}

// Fault classes: named plans for the chaos matrix, each stressing one
// failure family at intensities that perturb a run without drowning
// it.
var classes = map[string][]Fault{
	"hints": {
		{Site: ReleaseDrop, Prob: 0.05},
		{Site: ReleaseDup, Prob: 0.05},
		{Site: ReleaseLate, Prob: 0.05},
		{Site: PrefetchDrop, Prob: 0.05},
		{Site: PrefetchDup, Prob: 0.05},
	},
	"stall": {
		{Site: ReleaserStall, Prob: 0.1},
		{Site: DaemonStorm, Prob: 0.5},
	},
	"disk": {
		{Site: DiskSlow, Prob: 0.05},
		{Site: DiskError, Prob: 0.02},
	},
	"stale": {
		{Site: StaleShared, Prob: 0.1},
	},
	"unplug": {
		{Site: MemShrink, At: 50 * sim.Millisecond},
		{Site: MemGrow, At: 250 * sim.Millisecond},
	},
	"far": {
		{Site: FarSlow, Prob: 0.05},
		{Site: FarDrop, Prob: 0.1},
		{Site: FarShrink, At: 50 * sim.Millisecond},
		{Site: FarGrow, At: 250 * sim.Millisecond},
	},
}

// classOrder fixes the enumeration order for campaigns and help text.
var classOrder = []string{"hints", "stall", "disk", "stale", "unplug", "far", "all"}

// ClassNames lists the named fault classes in their stable order.
func ClassNames() []string {
	out := make([]string, len(classOrder))
	copy(out, classOrder)
	return out
}

// ClassPlan returns the named fault-class plan with the given seed.
// "all" combines every class.
func ClassPlan(class string, seed uint64) (Plan, error) {
	p := Plan{Seed: seed}
	if class == "all" {
		for _, name := range classOrder {
			if name == "all" {
				continue
			}
			p.Faults = append(p.Faults, classes[name]...)
		}
		return p, nil
	}
	faults, ok := classes[class]
	if !ok {
		known := ClassNames()
		sort.Strings(known)
		return Plan{}, fmt.Errorf("chaos: unknown fault class %q (known: %s)",
			class, strings.Join(known, " "))
	}
	p.Faults = append(p.Faults, faults...)
	return p, nil
}
