// Package chaostest is the property-testing harness for the memory
// stack under fault injection: it runs scaled benchmarks with a chaos
// plan and the full safety net (continuous audits on a virtual-time
// cadence plus an audit after every injected fault), generates
// reproducible random plans, and shrinks a failing plan to a minimal
// one whose replay command can be pasted straight into memhog chaos.
package chaostest

import (
	"fmt"

	"memhogs/internal/chaos"
	"memhogs/internal/driver"
	"memhogs/internal/kernel"
	"memhogs/internal/rt"
	"memhogs/internal/sim"
	"memhogs/internal/workload"
)

// AuditEvery is the harness's continuous-audit cadence; small enough
// that a corrupting fault is caught within a few events of its cause.
const AuditEvery = 5 * sim.Millisecond

// Horizon bounds each harness run. The slowest scaled benchmark needs
// a few virtual seconds clean; this leaves a wide margin for fault-
// induced slowdown while still failing fast on a genuine wedge.
const Horizon = 120 * sim.Second

// Config returns the harness RunConfig for one benchmark version
// under plan: scaled machine, run to completion, auditing on the
// cadence and after every fault.
func Config(mode rt.Mode, plan *chaos.Plan) driver.RunConfig {
	return driver.RunConfig{
		Kernel:           kernel.TestConfig(),
		Mode:             mode,
		RT:               rt.DefaultConfig(mode),
		Horizon:          Horizon,
		InteractiveSleep: -1,
		Chaos:            plan,
		AuditEvery:       AuditEvery,
		AuditOnFault:     true,
	}
}

// RunPlan executes one scaled benchmark version under plan.
func RunPlan(bench string, mode rt.Mode, plan chaos.Plan) (*driver.Result, error) {
	spec, err := workload.ScaledByName(bench)
	if err != nil {
		return nil, err
	}
	return driver.Run(spec, Config(mode, &plan))
}

// Check runs the plan and enforces the harness properties: every
// audit stays clean (no corruption), and the program still completes
// (faults degrade throughput, they never wedge the machine).
func Check(bench string, mode rt.Mode, plan chaos.Plan) error {
	res, err := RunPlan(bench, mode, plan)
	if err != nil {
		return err
	}
	if !res.Done {
		return fmt.Errorf("%s/%s did not complete within %v under %d injected faults",
			bench, mode, Horizon, res.Chaos.Total())
	}
	return nil
}

// RandomPlan derives a reproducible fault plan from seed: one to four
// probabilistic faults at modest intensities, occasionally with a
// timed hot-unplug/replug pair on top. Equal seeds give equal plans.
func RandomPlan(seed uint64) chaos.Plan {
	rng := sim.NewRand(sim.Hash64(seed) + 1)
	var sites []chaos.Site
	for s := chaos.Site(0); s < chaos.NumSites; s++ {
		if !s.Timed() {
			sites = append(sites, s)
		}
	}
	p := chaos.Plan{Seed: seed}
	n := 1 + rng.Intn(4)
	for i := 0; i < n; i++ {
		p.Faults = append(p.Faults, chaos.Fault{
			Site: sites[rng.Intn(len(sites))],
			Prob: 0.01 + 0.15*rng.Float64(),
		})
	}
	if rng.Intn(3) == 0 {
		p.Faults = append(p.Faults,
			chaos.Fault{Site: chaos.MemShrink, At: 20 * sim.Millisecond, Mag: 64},
			chaos.Fault{Site: chaos.MemGrow, At: 200 * sim.Millisecond, Mag: 64})
	}
	return p
}

// Shrink greedily minimizes a failing plan: any single fault whose
// removal keeps the plan failing is dropped, until no removal does.
// fails must be deterministic (harness runs are).
func Shrink(plan chaos.Plan, fails func(chaos.Plan) bool) chaos.Plan {
	for {
		shrunk := false
		for i := range plan.Faults {
			cand := chaos.Plan{Seed: plan.Seed}
			cand.Faults = append(cand.Faults, plan.Faults[:i]...)
			cand.Faults = append(cand.Faults, plan.Faults[i+1:]...)
			if fails(cand) {
				plan, shrunk = cand, true
				break
			}
		}
		if !shrunk {
			return plan
		}
	}
}

// Repro renders the exact CLI command that replays a failure
// byte-for-byte (-quick selects the scaled machine the harness runs).
func Repro(bench string, mode rt.Mode, plan chaos.Plan) string {
	return fmt.Sprintf("memhog -quick chaos %s %s -seed %d -faults %q",
		bench, mode, plan.Seed, plan.FaultsString())
}
