package chaostest

import (
	"bytes"
	"reflect"
	"testing"

	"memhogs/internal/chaos"
	"memhogs/internal/driver"
	"memhogs/internal/events"
	"memhogs/internal/kernel"
	"memhogs/internal/rt"
	"memhogs/internal/workload"
)

var benches = []string{"matvec", "mgrid", "cgm", "fftpde", "buk", "embar"}

// TestChaosInvariants is the property test: for every benchmark and
// program version, a seed-derived random fault plan must leave every
// continuous audit clean and let the program complete. A failure is
// shrunk to a minimal plan and reported as a pasteable replay command.
func TestChaosInvariants(t *testing.T) {
	for _, bench := range benches {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			for mi, mode := range []rt.Mode{rt.ModeOriginal, rt.ModePrefetch, rt.ModeAggressive, rt.ModeBuffered} {
				seed := uint64(len(bench)*31 + mi + 1) // reproducible, distinct per cell
				plan := RandomPlan(seed)
				err := Check(bench, mode, plan)
				if err == nil {
					continue
				}
				min := Shrink(plan, func(p chaos.Plan) bool {
					return Check(bench, mode, p) != nil
				})
				t.Errorf("%s/%s seed %d: %v\nminimal failing plan: %s\nreplay: %s",
					bench, mode, seed, err, min, Repro(bench, mode, min))
			}
		})
	}
}

// TestRandomPlanDeterministic pins the generator: equal seeds must
// give equal plans (the repro command depends on it).
func TestRandomPlanDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		a, b := RandomPlan(seed), RandomPlan(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: %s != %s", seed, a, b)
		}
		if len(a.Faults) == 0 {
			t.Fatalf("seed %d produced an empty plan", seed)
		}
	}
}

// TestShrinkFindsMinimalPlan checks the shrinker against a synthetic
// failure predicate: only one fault of five matters, and the shrunk
// plan must contain exactly it.
func TestShrinkFindsMinimalPlan(t *testing.T) {
	plan := chaos.Plan{Seed: 3, Faults: []chaos.Fault{
		{Site: chaos.ReleaseDrop, Prob: 0.1},
		{Site: chaos.DiskSlow, Prob: 0.1},
		{Site: chaos.DaemonStorm, Prob: 0.9}, // the culprit
		{Site: chaos.PrefetchDup, Prob: 0.1},
		{Site: chaos.StaleShared, Prob: 0.1},
	}}
	fails := func(p chaos.Plan) bool {
		for _, f := range p.Faults {
			if f.Site == chaos.DaemonStorm {
				return true
			}
		}
		return false
	}
	min := Shrink(plan, fails)
	if len(min.Faults) != 1 || min.Faults[0].Site != chaos.DaemonStorm {
		t.Fatalf("shrunk to %s, want just daemon-storm", min)
	}
	if min.Seed != 3 {
		t.Fatalf("shrink changed the seed to %d", min.Seed)
	}
}

// tracedRun runs one scaled benchmark version to completion with the
// flight recorder attached, under the given config mutator.
func tracedRun(t *testing.T, bench string, mode rt.Mode, mutate func(*driver.RunConfig)) (*driver.Result, []byte) {
	t.Helper()
	spec, err := workload.ScaledByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	var rec *events.Recorder
	cfg := Config(mode, nil)
	cfg.Chaos = nil
	cfg.OnSystem = func(sys *kernel.System) {
		rec = events.New(sys.Sim, 1<<17)
		sys.SetEvents(rec)
	}
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := driver.Run(spec, cfg)
	if err != nil {
		t.Fatalf("%s/%s: %v", bench, mode, err)
	}
	return res, rec.Chrome()
}

// TestMetamorphicZeroProbabilityPlan is the metamorphic property: a
// chaos plan whose probabilities are all zero must leave every run
// byte-identical to a plain run — same Result, same event trace — for
// every benchmark and version. This is what guarantees the injection
// points are free when disarmed (no stray randomness, no perturbed
// scheduling).
func TestMetamorphicZeroProbabilityPlan(t *testing.T) {
	zero := chaos.Plan{Seed: 99}
	for s := chaos.Site(0); s < chaos.NumSites; s++ {
		if !s.Timed() {
			zero.Faults = append(zero.Faults, chaos.Fault{Site: s, Prob: 0})
		}
	}
	for _, bench := range benches {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			for _, mode := range []rt.Mode{rt.ModeOriginal, rt.ModePrefetch, rt.ModeAggressive, rt.ModeBuffered} {
				plain, plainTrace := tracedRun(t, bench, mode, nil)
				chaosed, chaosTrace := tracedRun(t, bench, mode, func(cfg *driver.RunConfig) {
					p := zero
					cfg.Chaos = &p
				})
				if !bytes.Equal(plainTrace, chaosTrace) {
					t.Errorf("%s/%s: zero-probability plan changed the event trace (%d vs %d bytes)",
						bench, mode, len(plainTrace), len(chaosTrace))
				}
				if !reflect.DeepEqual(plain, chaosed) {
					t.Errorf("%s/%s: zero-probability plan changed the Result\nplain:  %+v\nchaos:  %+v",
						bench, mode, plain, chaosed)
				}
			}
		})
	}
}
