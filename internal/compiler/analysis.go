package compiler

import (
	"fmt"
	"sort"
	"strings"

	"memhogs/internal/lang"
)

// loopNode mirrors one lang.Loop within a nest, with analysis results.
type loopNode struct {
	l        *lang.Loop
	parent   *loopNode
	children []*loopNode
	assigns  []*lang.Assign
	depth    int
	seq      int   // stable position within the nest, for deterministic keys
	trips    int64 // -1 when unknown at compile time

	volumePages int64 // pages touched by one full iteration; -1 unknown
	volumeDone  bool
}

// indirectSpec describes an a[b[i]] subscript.
type indirectSpec struct {
	idxArr *lang.Array
	idxLin *lang.Affine
}

// refInfo is one static array reference with its analysis results.
type refInfo struct {
	ref  *lang.Ref
	arr  *lang.Array
	elem int
	lin  *lang.Affine  // nil for indirect target refs
	ind  *indirectSpec // non-nil for indirect target refs
	path []*loopNode   // enclosing loops, outermost first

	temporal    []*loopNode // loops carrying (possibly misdetected) temporal reuse
	misdetected bool
	exploitable []*loopNode // temporal loops whose reuse fits in memory
	driving     *loopNode   // innermost loop that advances the reference
	group       *group

	synthetic bool // index-array read synthesized from an indirect ref
}

// group is a set of references with identical variable terms on the
// same array ("group locality"); the leading reference is prefetched
// and the trailing one released (§3.2).
type group struct {
	key     string
	refs    []*refInfo
	leader  *refInfo
	trailer *refInfo
}

// nestAnalysis is the per-nest working set.
type nestAnalysis struct {
	cc      *compileCtx
	formals []string
	root    *loopNode
	byLoop  map[*lang.Loop]*loopNode
	refs    []*refInfo
	groups  []*group
}

// compileNest analyzes one top-level loop and produces its executable
// form with directives attached.
func (cc *compileCtx) compileNest(root *lang.Loop, formals []string) (*xloop, error) {
	na := &nestAnalysis{cc: cc, formals: formals, byLoop: map[*lang.Loop]*loopNode{}}
	var err error
	na.root, err = na.buildTree(root, nil, 0)
	if err != nil {
		return nil, err
	}
	if err := na.collectRefs(na.root, nil); err != nil {
		return nil, err
	}
	na.analyzeReuse()
	na.buildGroups()
	na.analyzeLocality()
	dirs := na.placeDirectives()
	return cc.emitLoop(na, na.root, dirs)
}

func (na *nestAnalysis) buildTree(l *lang.Loop, parent *loopNode, depth int) (*loopNode, error) {
	n := &loopNode{l: l, parent: parent, depth: depth, seq: len(na.byLoop), trips: -1}
	na.byLoop[l] = n
	if lo, ok := l.Lo.TryEval(na.cc.known); ok {
		if hi, ok2 := l.Hi.TryEval(na.cc.known); ok2 {
			t := (hi-lo)/l.Step + 1
			if t < 0 {
				t = 0
			}
			n.trips = t
		}
	}
	if n.trips < 0 {
		na.cc.c.Stats.UnknownBoundLoops++
	}
	for _, s := range l.Body {
		switch st := s.(type) {
		case *lang.Loop:
			child, err := na.buildTree(st, n, depth+1)
			if err != nil {
				return nil, err
			}
			n.children = append(n.children, child)
		case *lang.Assign:
			n.assigns = append(n.assigns, st)
		case *lang.Call:
			return nil, fmt.Errorf("call inside loop nest is not supported (hoist it)")
		default:
			return nil, fmt.Errorf("unsupported statement %T in nest", s)
		}
	}
	return n, nil
}

func (na *nestAnalysis) collectRefs(n *loopNode, path []*loopNode) error {
	path = append(path, n)
	for _, a := range n.assigns {
		for _, r := range lang.StmtRefs(a) {
			lin, ind, err := na.cc.linearize(r)
			if err != nil {
				return err
			}
			p := append([]*loopNode{}, path...)
			if ind != nil {
				na.cc.c.Stats.IndirectRefs++
				// The indirect target itself.
				na.refs = append(na.refs, &refInfo{
					ref: r, arr: r.Array, elem: r.Array.ElemSize,
					ind: ind, path: p,
				})
				// The index-array read participates in the ordinary
				// affine analysis.
				na.refs = append(na.refs, &refInfo{
					ref: r, arr: ind.idxArr, elem: ind.idxArr.ElemSize,
					lin: ind.idxLin, path: p, synthetic: true,
				})
			} else {
				na.refs = append(na.refs, &refInfo{
					ref: r, arr: r.Array, elem: r.Array.ElemSize,
					lin: lin, path: p,
				})
			}
			na.cc.c.Stats.Refs++
		}
	}
	for _, ch := range n.children {
		if err := na.collectRefs(ch, path); err != nil {
			return err
		}
	}
	return nil
}

// linearize flattens a reference's subscripts into a single affine
// element offset (row-major). An indirect subscript is only allowed as
// the sole subscript of a one-dimensional array.
func (cc *compileCtx) linearize(r *lang.Ref) (*lang.Affine, *indirectSpec, error) {
	if len(r.Index) == 1 {
		if ind, ok := r.Index[0].(*lang.Indirect); ok {
			return nil, &indirectSpec{idxArr: ind.Array, idxLin: ind.Idx}, nil
		}
	}
	// Evaluate dimension extents with compile-time-known values.
	scales := make([]int64, len(r.Array.Dims))
	scale := int64(1)
	for d := len(r.Array.Dims) - 1; d >= 0; d-- {
		scales[d] = scale
		v, ok := r.Array.Dims[d].TryEval(cc.known)
		if !ok {
			return nil, nil, fmt.Errorf("array %s: dimension %d not known at compile time", r.Array.Name, d)
		}
		scale *= v
	}
	lin := &lang.Affine{}
	for d, idx := range r.Index {
		aff, ok := idx.(*lang.Affine)
		if !ok {
			return nil, nil, fmt.Errorf("array %s: indirect subscript must be the only subscript", r.Array.Name)
		}
		lin = lang.AddAffine(lin, lang.ScaleAffine(aff, scales[d]))
	}
	return lin, nil, nil
}

// analyzeReuse computes per-reference temporal reuse sets. A symbolic
// (parameter) stride makes the subscript look independent of the loop
// variable, so the analysis misdetects temporal reuse — the FFTPDE
// pathology the paper describes.
func (na *nestAnalysis) analyzeReuse() {
	for _, r := range na.refs {
		if r.ind != nil {
			// "it is not possible to reason statically about any
			// reuse that they may have."
			continue
		}
		for _, n := range r.path {
			coef, symbolic := r.lin.CoefOf(n.l.Var)
			switch {
			case symbolic && !na.cc.c.Target.Adaptive:
				// The subscript looks independent of the loop
				// variable, so the analysis misdetects temporal reuse
				// (the paper's FFTPDE pathology). Adaptive codegen
				// resolves the stride at run time instead.
				r.temporal = append(r.temporal, n)
				r.misdetected = true
				na.cc.c.Stats.MisdetectedReuse++
			case !symbolic && coef == 0:
				r.temporal = append(r.temporal, n)
			}
		}
		// Driving loop: innermost enclosing loop that actually
		// advances the reference (known non-zero coefficient).
		for i := len(r.path) - 1; i >= 0; i-- {
			coef, symbolic := r.lin.CoefOf(r.path[i].l.Var)
			if coef != 0 && !symbolic {
				r.driving = r.path[i]
				break
			}
		}
		if r.driving == nil {
			// Symbolic strides still advance at run time; the
			// innermost symbolic-coefficient loop drives execution.
			for i := len(r.path) - 1; i >= 0; i-- {
				if _, symbolic := r.lin.CoefOf(r.path[i].l.Var); symbolic {
					r.driving = r.path[i]
					break
				}
			}
		}
		if r.driving == nil {
			// Loop-invariant within the nest: attach to the innermost
			// enclosing loop; the directive fires once.
			r.driving = r.path[len(r.path)-1]
		}
	}
	for _, r := range na.refs {
		if r.ind != nil {
			// Indirect targets are driven by the innermost loop their
			// index expression depends on.
			for i := len(r.path) - 1; i >= 0; i-- {
				if r.ind.idxLin.DependsOn(r.path[i].l.Var) {
					r.driving = r.path[i]
					break
				}
			}
			if r.driving == nil {
				r.driving = r.path[len(r.path)-1]
			}
		}
	}
}

// buildGroups partitions affine references by array and variable-term
// signature; references within a group differ only in constant offset.
func (na *nestAnalysis) buildGroups() {
	byKey := map[string]*group{}
	for _, r := range na.refs {
		if r.ind != nil {
			continue
		}
		key := groupKey(r)
		g := byKey[key]
		if g == nil {
			g = &group{key: key}
			byKey[key] = g
			na.groups = append(na.groups, g)
		}
		g.refs = append(g.refs, r)
		r.group = g
	}
	for _, g := range na.groups {
		g.leader, g.trailer = g.refs[0], g.refs[0]
		for _, r := range g.refs[1:] {
			if r.lin.Const > g.leader.lin.Const {
				g.leader = r
			}
			if r.lin.Const < g.trailer.lin.Const {
				g.trailer = r
			}
		}
	}
	// Stable order for deterministic tag assignment.
	sort.Slice(na.groups, func(i, j int) bool { return na.groups[i].key < na.groups[j].key })
	na.cc.c.Stats.Groups += len(na.groups)
}

func groupKey(r *refInfo) string {
	var b strings.Builder
	b.WriteString(r.arr.Name)
	// Group locality only holds for references in the same loop
	// context: same-named variables of sibling loops must not merge.
	fmt.Fprintf(&b, "@%d", r.path[len(r.path)-1].seq)
	terms := append([]lang.Term{}, r.lin.Terms...)
	sort.Slice(terms, func(i, j int) bool { return terms[i].Var < terms[j].Var })
	for _, t := range terms {
		fmt.Fprintf(&b, "|%s*%d*%s", t.Var, t.Coef, t.CoefParam)
	}
	if r.synthetic {
		b.WriteString("|idx")
	}
	return b.String()
}

// volume computes the pages touched by one full iteration of n
// (everything beneath it), or -1 when unknown. Indirect targets are
// charged their whole array ("it is not possible to reason statically
// about reuse").
func (na *nestAnalysis) volume(n *loopNode) int64 {
	if n.volumeDone {
		return n.volumePages
	}
	n.volumeDone = true
	page := int64(na.cc.c.Target.PageSize)
	var total int64
	for _, r := range na.refs {
		// Only references strictly beneath n (n on their path).
		idx := -1
		for i, pn := range r.path {
			if pn == n {
				idx = i
				break
			}
		}
		if idx < 0 {
			continue
		}
		if r.ind != nil {
			elems, err := r.arr.NumElems(na.cc.known)
			if err != nil {
				n.volumePages = -1
				return -1
			}
			total += (elems*int64(r.elem) + page - 1) / page
			continue
		}
		bytes := int64(r.elem)
		for _, inner := range r.path[idx+1:] {
			coef, symbolic := r.lin.CoefOf(inner.l.Var)
			if symbolic {
				n.volumePages = -1
				return -1
			}
			if coef == 0 {
				continue
			}
			if inner.trips < 0 {
				n.volumePages = -1
				return -1
			}
			if inner.trips > 0 {
				span := (inner.trips - 1) * abs64(coef) * int64(r.elem)
				bytes += span
			}
		}
		total += (bytes + page - 1) / page
	}
	n.volumePages = total
	return total
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// analyzeLocality decides which temporal reuses are exploitable: the
// volume of data accessed between reuses (one iteration of the
// carrying loop) must fit in the memory the compiler assumes.
// Unknown volumes are treated as "does not fit" — "it is preferable to
// assume that only the smallest working set will fit in memory" (§2.4).
func (na *nestAnalysis) analyzeLocality() {
	effMem := int64(float64(na.cc.c.Target.MemoryPages) * na.cc.c.Target.EffMemFrac)
	for _, r := range na.refs {
		for _, ln := range r.temporal {
			v := na.volume(ln)
			if v >= 0 && v <= effMem {
				r.exploitable = append(r.exploitable, ln)
			}
		}
	}
}

// priority implements equation (2): Σ 2^depth over the loops carrying
// temporal reuse (including misdetected ones), outermost depth 0.
func priority(r *refInfo) int {
	p := 0
	for _, ln := range r.temporal {
		d := ln.depth
		if d > 20 {
			d = 20
		}
		p += 1 << uint(d)
	}
	return p
}
