package compiler

import (
	"testing"

	"memhogs/internal/lang"
	"memhogs/internal/sim"
)

// analyze compiles a program and returns the nest analysis of its
// first top-level loop, for white-box assertions.
func analyze(t *testing.T, src string, tgt Target) (*Compiled, *nestAnalysis) {
	t.Helper()
	prog := lang.MustParse(src)
	c := &Compiled{Prog: prog, Target: tgt, procs: map[*lang.Proc][]xstmt{}}
	known := lang.Env{}
	for k, v := range prog.Known {
		known[k] = v
	}
	cc := &compileCtx{c: c, known: known}
	root, ok := prog.Body[0].(*lang.Loop)
	if !ok {
		t.Fatal("first statement is not a loop")
	}
	na := &nestAnalysis{cc: cc, byLoop: map[*lang.Loop]*loopNode{}}
	var err error
	na.root, err = na.buildTree(root, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := na.collectRefs(na.root, nil); err != nil {
		t.Fatal(err)
	}
	na.analyzeReuse()
	na.buildGroups()
	na.analyzeLocality()
	return c, na
}

const analysisSrc = `
program a
param N
known N = 1024
array A[N][N] of float64
array x[N] of float64
for i = 0 to N-1 {
    for j = 0 to N-1 {
        A[i][j] = A[i][j] + x[j] @ 20
    }
}
`

func TestVolumeComputation(t *testing.T) {
	tgt := DefaultTarget(16<<10, 4800)
	_, na := analyze(t, analysisSrc, tgt)
	inner := na.root.children[0]
	// Volume is charged per static reference (conservative): the A
	// write, the A read and the x read each round up to one page.
	if v := na.volume(inner); v != 3 {
		t.Errorf("inner volume = %d pages, want 3", v)
	}
	// One i-iteration spans a row of A (1024*8 = 8 KB, under a page)
	// per A reference plus x's 8 KB: still 3 page-charges.
	if v := na.volume(na.root); v != 3 {
		t.Errorf("outer volume = %d pages, want 3", v)
	}
}

func TestTemporalAndExploitable(t *testing.T) {
	tgt := DefaultTarget(16<<10, 4800)
	_, na := analyze(t, analysisSrc, tgt)
	var xref *refInfo
	for _, r := range na.refs {
		if r.arr.Name == "x" {
			xref = r
		}
	}
	if xref == nil {
		t.Fatal("x ref not found")
	}
	if len(xref.temporal) != 1 || xref.temporal[0] != na.root {
		t.Fatalf("x temporal loops wrong: %d", len(xref.temporal))
	}
	// The i-iteration volume (2 pages) fits easily: exploitable.
	if len(xref.exploitable) != 1 {
		t.Fatalf("x reuse not exploitable: %d", len(xref.exploitable))
	}
	if priority(xref) != 1 { // 2^depth(i)=2^0
		t.Fatalf("priority(x) = %d, want 1", priority(xref))
	}
}

func TestTinyMemoryMakesReuseUnexploitable(t *testing.T) {
	tgt := DefaultTarget(16<<10, 2) // two pages of "memory"
	_, na := analyze(t, analysisSrc, tgt)
	for _, r := range na.refs {
		if r.arr.Name == "x" && len(r.exploitable) != 0 {
			t.Fatal("reuse exploitable with 2-page memory")
		}
	}
}

func TestPrefetchDistanceMath(t *testing.T) {
	tgt := DefaultTarget(16<<10, 4800)
	tgt.FaultLatency = 8 * sim.Millisecond
	_, na := analyze(t, analysisSrc, tgt)
	var aref *refInfo
	for _, r := range na.refs {
		if r.arr.Name == "A" && !r.ref.Write {
			aref = r
		}
	}
	if aref == nil {
		t.Fatal("A read ref not found")
	}
	// A advances 8 bytes per j-iteration: 2048 iterations per page at
	// 20 ns each = 40.96 us per page; 8 ms / 40.96 us = 196 pages,
	// capped at MemoryPages/16 = 256... -> 196.
	if d := na.prefetchPages(aref); d != 196 {
		t.Errorf("prefetch distance = %d, want 196", d)
	}
	tgt2 := tgt
	tgt2.MaxPrefetchPages = 64
	na.cc.c.Target = tgt2
	if d := na.prefetchPages(aref); d != 64 {
		t.Errorf("capped distance = %d, want 64", d)
	}
}

func TestGroupLeaderTrailerOrder(t *testing.T) {
	tgt := DefaultTarget(16<<10, 4800)
	_, na := analyze(t, `
program g
param N
known N = 512
array a[N][N] of float64
for i = 1 to N-2 {
    for j = 0 to N-1 {
        a[i][j] = a[i+1][j] + a[i-1][j] @ 10
    }
}
`, tgt)
	if len(na.groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(na.groups))
	}
	g := na.groups[0]
	// Leader = a[i+1][j] (const +512 elements), trailer = a[i-1][j].
	if g.leader.lin.Const != 512 || g.trailer.lin.Const != -512 {
		t.Fatalf("leader/trailer consts = %d/%d, want 512/-512",
			g.leader.lin.Const, g.trailer.lin.Const)
	}
}

func TestGateVarsOnlyEnclosing(t *testing.T) {
	tgt := DefaultTarget(16<<10, 4800)
	_, na := analyze(t, analysisSrc, tgt)
	for _, r := range na.refs {
		if r.arr.Name != "x" {
			continue
		}
		gates := gateVars(r)
		if len(gates) != 1 || gates[0] != "i" {
			t.Fatalf("gates for x = %v, want [i]", gates)
		}
	}
}

func TestIndirectVolumeChargedWholeArray(t *testing.T) {
	tgt := DefaultTarget(16<<10, 4800)
	_, na := analyze(t, `
program ind
param N
known N = 1048576
array b[N] of int64
array a[N] of float64
for i = 0 to N-1 {
    a[b[i]] = a[b[i]] + 1 @ 10
}
`, tgt)
	// a is 8 MB = 512 pages; the loop volume must include all of it
	// (plus b's touch and the indirect's own page).
	v := na.volume(na.root)
	if v < 1024 { // two full arrays' worth: a charged twice (read+write refs)
		t.Fatalf("volume = %d pages, expected whole-array charge", v)
	}
}
