package compiler

import (
	"fmt"
	"math"

	"memhogs/internal/lang"
)

// xstmt is an executable statement node.
type xstmt interface{ isX() }

// xloop is an executable loop with hint directives attached. When
// strip is non-nil the loop runs in strip-mined mode: the interpreter
// jumps from page crossing to page crossing instead of iterating
// element by element (the effect of the compiler's loop splitting).
type xloop struct {
	v      string
	lo, hi lang.Scalar
	step   int64
	body   []xstmt
	dirs   []*xdir
	strip  *stripPlan

	// Slot-resolved forms, filled by finalize.
	vSlot    int32
	clo, chi cscalar
}

func (*xloop) isX() {}

// xassign is an executable compute statement: touch its sites, then
// account its cost.
type xassign struct {
	cost  float64
	sites []*accessSite
}

func (*xassign) isX() {}

// xcall binds formals and runs the (single) compiled body of a proc.
type xcall struct {
	proc *lang.Proc
	args []lang.Scalar
	body []xstmt

	// Slot-resolved forms, filled by finalize.
	cargs       []cscalar
	formalSlots []int32
}

func (*xcall) isX() {}

// accessSite is one dynamic memory access point.
type accessSite struct {
	id    int
	arr   *lang.Array
	lin   *lang.Affine  // nil for indirect
	ind   *indirectSpec // the a[b[i]] form
	elem  int
	write bool

	// Slot-resolved forms, filled by finalize: clin mirrors lin, cidx
	// mirrors ind.idxLin.
	clin caffine
	cidx caffine
}

// dirKind distinguishes prefetch from release directives.
type dirKind int8

// Directive kinds.
const (
	dirPf dirKind = iota
	dirRel
)

// xdir is a compiler-inserted hint directive. It observes the page of
// its address expression at each iteration of the loop it is attached
// to and fires when the page changes (the strip-mined form of the
// inserted call). Release directives pass the priority of equation (2)
// and the static tag (request identifier).
type xdir struct {
	id   int
	tag  int
	kind dirKind
	prio int

	pagesAhead int64 // software-pipelining distance for affine prefetches
	itersAhead int64 // look-ahead iterations for indirect prefetches

	gates []string // loop vars that must all be at their first iteration

	arr     *lang.Array
	lin     *lang.Affine
	ind     *indirectSpec
	elem    int
	loopVar string

	// Slot-resolved forms, filled by finalize: clin mirrors lin, cidx
	// mirrors ind.idxLin.
	clin        caffine
	cidx        caffine
	loopVarSlot int32
	gateSlots   []int32
}

// stripPlan marks an innermost all-affine loop for strip-mode
// execution.
type stripPlan struct {
	cost  float64
	sites []*accessSite
}

// placeDirectives decides, per group, the prefetch (leader) and
// release (trailer) directives, and per indirect reference a
// per-iteration prefetch. It returns directives keyed by the loop they
// attach to.
func (na *nestAnalysis) placeDirectives() map[*loopNode][]*xdir {
	out := map[*loopNode][]*xdir{}
	tgt := na.cc.c.Target
	attach := func(n *loopNode, d *xdir) {
		d.loopVar = n.l.Var
		out[n] = append(out[n], d)
	}
	for _, g := range na.groups {
		if tgt.Prefetch {
			r := g.leader
			d := &xdir{
				id:         na.cc.c.newDir(),
				tag:        na.cc.c.newTag(),
				kind:       dirPf,
				pagesAhead: na.prefetchPages(r),
				gates:      gateVars(r),
				arr:        r.arr, lin: r.lin, elem: r.elem,
			}
			na.cc.c.Stats.PrefetchDirs++
			attach(r.driving, d)
			na.cc.recordHint(d, r, false)
		}
		if tgt.Release {
			r := g.trailer
			// Conservative (§2.3.2) policy: skip releases for
			// references whose reuse the compiler expects to exploit.
			// The paper's evaluated policy is aggressive: always
			// insert, encoding the reuse in the priority.
			if !tgt.Aggressive && len(r.exploitable) > 0 {
				continue
			}
			// When the loop bounds separating the group's leading and
			// trailing references are unknown, the compiler cannot
			// place the release precisely ("the loop bounds change
			// dynamically on different calls to the same procedures,
			// making it impossible to release memory optimally"): it
			// falls back to releasing behind the *leading* reference,
			// which frees pages the trailing references still need —
			// the MGRID rescue pathology of Figure 9.
			imprecise := false
			if g.leader != g.trailer && pathHasUnknownTrips(r) && !tgt.Adaptive {
				r = g.leader
				imprecise = true
				na.cc.c.Stats.ImpreciseReleases++
			}
			prio := priority(r)
			if prio == 0 {
				na.cc.c.Stats.ZeroPrioReleases++
			} else {
				na.cc.c.Stats.ReusePrioReleases++
			}
			d := &xdir{
				id:   na.cc.c.newDir(),
				tag:  na.cc.c.newTag(),
				kind: dirRel,
				prio: prio,
				arr:  r.arr, lin: r.lin, elem: r.elem,
			}
			na.cc.c.Stats.ReleaseDirs++
			attach(r.driving, d)
			na.cc.recordHint(d, r, imprecise)
		}
	}
	if tgt.Prefetch {
		seen := map[string]bool{}
		for _, r := range na.refs {
			if r.ind == nil {
				continue
			}
			// Identical indirect accesses (e.g. the read and write of
			// rank[key[i]]) need only one prefetch stream.
			key := fmt.Sprintf("%s[%s[%s]]@%d", r.arr.Name, r.ind.idxArr.Name,
				lang.FormatAffine(r.ind.idxLin), r.path[len(r.path)-1].seq)
			if seen[key] {
				continue
			}
			seen[key] = true
			// "While it is possible to issue prefetches for indirect
			// references, it is not possible to reason statically
			// about any reuse" — prefetch every iteration, never
			// release.
			d := &xdir{
				id:         na.cc.c.newDir(),
				tag:        na.cc.c.newTag(),
				kind:       dirPf,
				itersAhead: na.iterDistance(r),
				arr:        r.arr, ind: r.ind, elem: r.elem,
			}
			na.cc.c.Stats.PrefetchDirs++
			attach(r.driving, d)
			na.cc.recordHint(d, r, false)
		}
	}
	return out
}

// pathHasUnknownTrips reports whether any loop enclosing the reference
// has bounds the compiler cannot evaluate.
func pathHasUnknownTrips(r *refInfo) bool {
	for _, n := range r.path {
		if n.trips < 0 {
			return true
		}
	}
	return false
}

// gateVars returns the loop variables of exploitable temporal loops
// strictly enclosing the driving loop: the prefetch only runs while
// they are all at their first iteration (the effect of peeling the
// first iteration of those loops).
func gateVars(r *refInfo) []string {
	var gates []string
	for _, ln := range r.exploitable {
		if ln.depth < r.driving.depth {
			gates = append(gates, ln.l.Var)
		}
	}
	return gates
}

// estIterNS estimates the user-CPU cost of one iteration of n's body
// in nanoseconds, assuming UnknownTrip for unevaluable bounds.
func (na *nestAnalysis) estIterNS(n *loopNode) float64 {
	tgt := na.cc.c.Target
	cost := 0.0
	for _, a := range n.assigns {
		cost += assignCost(a, tgt.OpCostNS)
	}
	for _, ch := range n.children {
		trips := ch.trips
		if trips < 0 {
			trips = tgt.UnknownTrip
		}
		cost += float64(trips) * na.estIterNS(ch)
	}
	if cost <= 0 {
		cost = tgt.OpCostNS
	}
	return cost
}

func assignCost(a *lang.Assign, opCost float64) float64 {
	if a.CostNS > 0 {
		return a.CostNS
	}
	ops := lang.Ops(a.RHS)
	if ops < 1 {
		ops = 1
	}
	return float64(ops) * opCost
}

// prefetchPages computes the software-pipelining distance in pages:
// enough pages ahead that the fault latency is hidden behind the
// computation on one page.
func (na *nestAnalysis) prefetchPages(r *refInfo) int64 {
	tgt := na.cc.c.Target
	iterNS := na.estIterNS(r.driving)
	coef, symbolic := r.lin.CoefOf(r.driving.l.Var)
	itersPerPage := int64(1)
	if !symbolic && coef != 0 {
		ipp := int64(tgt.PageSize) / (abs64(coef) * int64(r.elem))
		if ipp > 1 {
			itersPerPage = ipp
		}
	}
	pageNS := iterNS * float64(itersPerPage)
	if pageNS <= 0 {
		pageNS = 1
	}
	pd := int64(math.Ceil(float64(tgt.FaultLatency) / pageNS))
	if pd < 1 {
		pd = 1
	}
	if pd > int64(tgt.MaxPrefetchPages) {
		pd = int64(tgt.MaxPrefetchPages)
	}
	return pd
}

// iterDistance computes the look-ahead in iterations for indirect
// prefetches.
func (na *nestAnalysis) iterDistance(r *refInfo) int64 {
	tgt := na.cc.c.Target
	iterNS := na.estIterNS(r.driving)
	if iterNS <= 0 {
		iterNS = 1
	}
	d := int64(math.Ceil(float64(tgt.FaultLatency) / iterNS))
	if d < 1 {
		d = 1
	}
	if d > 1<<16 {
		d = 1 << 16
	}
	return d
}

func (c *Compiled) newTag() int  { c.numTags++; return c.numTags - 1 }
func (c *Compiled) newDir() int  { c.numDirs++; return c.numDirs - 1 }
func (c *Compiled) newSite() int { c.numSites++; return c.numSites - 1 }

// emitLoop builds the executable loop tree, attaching directives and
// choosing strip mode for innermost all-affine loops.
func (cc *compileCtx) emitLoop(na *nestAnalysis, n *loopNode, dirs map[*loopNode][]*xdir) (*xloop, error) {
	xl := &xloop{
		v:    n.l.Var,
		lo:   n.l.Lo,
		hi:   n.l.Hi,
		step: n.l.Step,
		dirs: dirs[n],
	}
	// Preserve source statement order.
	for _, s := range n.l.Body {
		switch st := s.(type) {
		case *lang.Loop:
			child, err := cc.emitLoop(na, na.byLoop[st], dirs)
			if err != nil {
				return nil, err
			}
			xl.body = append(xl.body, child)
		case *lang.Assign:
			xa, err := cc.compileAssign(st, na)
			if err != nil {
				return nil, err
			}
			xl.body = append(xl.body, xa)
		default:
			return nil, fmt.Errorf("unsupported statement %T in loop", s)
		}
	}
	// Strip mode: innermost, all body statements are assigns with
	// affine sites, and all attached directives are affine.
	if len(n.children) == 0 {
		eligible := true
		plan := &stripPlan{}
		for _, s := range xl.body {
			xa, ok := s.(*xassign)
			if !ok {
				eligible = false
				break
			}
			plan.cost += xa.cost
			for _, site := range xa.sites {
				if site.ind != nil {
					eligible = false
					break
				}
				plan.sites = append(plan.sites, site)
			}
			if !eligible {
				break
			}
		}
		for _, d := range xl.dirs {
			if d.ind != nil {
				eligible = false
			}
		}
		if eligible && len(plan.sites) > 0 {
			xl.strip = plan
		}
	}
	return xl, nil
}

// compileAssign builds the executable form of an assignment. The
// statement's references become access sites; an indirect reference
// contributes two sites (the index-array read, then the target).
func (cc *compileCtx) compileAssign(a *lang.Assign, _ *nestAnalysis) (*xassign, error) {
	xa := &xassign{cost: assignCost(a, cc.c.Target.OpCostNS)}
	for _, r := range lang.StmtRefs(a) {
		lin, ind, err := cc.linearize(r)
		if err != nil {
			return nil, err
		}
		if ind != nil {
			xa.sites = append(xa.sites,
				&accessSite{id: cc.c.newSite(), arr: ind.idxArr, lin: ind.idxLin, elem: ind.idxArr.ElemSize},
				&accessSite{id: cc.c.newSite(), arr: r.Array, ind: ind, elem: r.Array.ElemSize, write: r.Write})
		} else {
			xa.sites = append(xa.sites,
				&accessSite{id: cc.c.newSite(), arr: r.Array, lin: lin, elem: r.Array.ElemSize, write: r.Write})
		}
	}
	return xa, nil
}
