// Package compiler implements the paper's SUIF-style analysis pass
// (§3.2) over the loop-nest language: reuse analysis, locality
// analysis against an assumed memory size, prefetch scheduling via
// software pipelining, and — the paper's contribution — aggressive
// insertion of release hints for trailing references, with reuse
// information encoded as a priority:
//
//	priority(x) = Σ_{i ∈ temporal(x)} 2^depth(i)          (2)
//
// Each top-level loop nest is analyzed independently ("reuses that
// occur between independent sets of loops are not considered"), and
// procedures are compiled once ("we only generate a single version of
// the code"), which together produce the paper's MGRID and CGM
// pathologies without special-casing.
package compiler

import (
	"fmt"

	"memhogs/internal/lang"
	"memhogs/internal/sim"
)

// Target describes the machine model given to the compiler: "the size
// of main memory, the page size, and the page fault latency" (§3.2),
// plus cost-model knobs.
type Target struct {
	PageSize     int
	MemoryPages  int      // physical pages the compiler may assume
	EffMemFrac   float64  // fraction of memory assumed usable (default 0.75)
	FaultLatency sim.Time // page-fault latency for prefetch scheduling
	OpCostNS     float64  // default cost per arithmetic op when a statement has none
	// UnknownTrip is the iteration count assumed for loops whose
	// bounds the compiler cannot evaluate, used only for prefetch
	// scheduling (locality analysis treats unknown as "does not fit").
	UnknownTrip int64
	// MaxPrefetchPages caps the software-pipelining distance.
	MaxPrefetchPages int
	// Aggressive enables the paper's evaluated policy: insert a
	// release for every trailing reference, encoding reuse in the
	// priority. When false, releases are inserted only for references
	// with no exploitable temporal reuse (the conservative §2.3.2
	// policy, kept for ablation).
	Aggressive bool
	// Prefetch/Release toggles let the same analysis produce the
	// paper's four program versions: O (neither), P (prefetch only),
	// R/B (both; the run-time layer distinguishes R from B).
	Prefetch bool
	Release  bool

	// Adaptive enables the paper's proposed future work ("the
	// solution to the problems experienced by MGRID and FFTPDE is to
	// generate more adaptive code", §4.2): symbolic strides are
	// treated as run-time-resolved rather than loop-invariant (no
	// misdetected temporal reuse, so FFTPDE's releases get correct
	// zero priorities), and releases under unknown bounds track the
	// true trailing reference instead of falling back to the leader
	// (no MGRID imprecision).
	Adaptive bool
}

// DefaultTarget returns a target for the paper's platform. The
// prefetch distance is capped at a fraction of memory so pipelined
// prefetches cannot themselves flush the working set.
func DefaultTarget(pageSize, memoryPages int) Target {
	maxPf := memoryPages / 16
	if maxPf > 256 {
		maxPf = 256
	}
	if maxPf < 2 {
		maxPf = 2
	}
	return Target{
		PageSize:         pageSize,
		MemoryPages:      memoryPages,
		EffMemFrac:       0.75,
		FaultLatency:     8 * sim.Millisecond,
		OpCostNS:         5,
		UnknownTrip:      100,
		MaxPrefetchPages: maxPf,
		Aggressive:       true,
		Prefetch:         true,
		Release:          true,
	}
}

// Stats summarizes what the compiler did (Table 2 inputs).
type Stats struct {
	Nests             int
	Refs              int
	IndirectRefs      int
	Groups            int
	PrefetchDirs      int
	ReleaseDirs       int
	ZeroPrioReleases  int
	ReusePrioReleases int
	MisdetectedReuse  int // symbolic-stride refs wrongly given temporal reuse
	ImpreciseReleases int // releases placed behind the leader (unknown bounds)
	UnknownBoundLoops int
}

// Compiled is the output of Compile: an executable plan with hint
// directives attached, plus analysis statistics and a transformed-code
// listing.
type Compiled struct {
	Prog   *lang.Program
	Target Target
	Main   []xstmt
	Stats  Stats

	numTags  int
	numDirs  int
	numSites int
	procs    map[*lang.Proc][]xstmt
	hints    []Hint

	// Scalar-name slot table: finalize resolves every param, loop
	// variable, and formal to a dense index so the interpreter can run
	// over flat vectors instead of a string-keyed map (see slots.go).
	slots     map[string]int32
	slotNames []string
}

// NumTags returns the number of distinct hint tags (request
// identifiers) the compiler placed.
func (c *Compiled) NumTags() int { return c.numTags }

// Compile analyzes and transforms a program for the given target.
func Compile(prog *lang.Program, tgt Target) (*Compiled, error) {
	if tgt.PageSize <= 0 || tgt.MemoryPages <= 0 {
		return nil, fmt.Errorf("compiler: target needs PageSize and MemoryPages")
	}
	if tgt.EffMemFrac <= 0 || tgt.EffMemFrac > 1 {
		tgt.EffMemFrac = 0.75
	}
	if tgt.UnknownTrip <= 0 {
		tgt.UnknownTrip = 100
	}
	if tgt.MaxPrefetchPages <= 0 {
		tgt.MaxPrefetchPages = 256
	}
	c := &Compiled{
		Prog:   prog,
		Target: tgt,
		procs:  map[*lang.Proc][]xstmt{},
	}
	known := lang.Env{}
	for k, v := range prog.Known {
		known[k] = v
	}
	cc := &compileCtx{c: c, known: known}
	// Compile procedures once each (single version of code).
	for _, pr := range prog.Procs {
		cc.proc = pr.Name
		body, err := cc.compileBody(pr.Body, pr.Formals)
		if err != nil {
			return nil, fmt.Errorf("proc %s: %w", pr.Name, err)
		}
		c.procs[pr] = body
	}
	cc.proc = ""
	main, err := cc.compileBody(prog.Body, nil)
	if err != nil {
		return nil, err
	}
	c.Main = main
	c.finalize()
	return c, nil
}

// MustCompile panics on error; for compiled-in workloads and tests.
func MustCompile(prog *lang.Program, tgt Target) *Compiled {
	c, err := Compile(prog, tgt)
	if err != nil {
		panic(err)
	}
	return c
}

// containsCall reports whether the loop body contains a procedure
// call at any depth.
func containsCall(l *lang.Loop) bool {
	for _, s := range l.Body {
		switch st := s.(type) {
		case *lang.Call:
			return true
		case *lang.Loop:
			if containsCall(st) {
				return true
			}
		}
	}
	return false
}

// compileCtx carries state across nest compilations.
type compileCtx struct {
	c     *Compiled
	known lang.Env
	proc  string // name of the procedure being compiled; "" for main
}

// compileBody compiles a statement list. formals are symbols bound at
// call time (unknown to the compiler).
func (cc *compileCtx) compileBody(body []lang.Stmt, formals []string) ([]xstmt, error) {
	var out []xstmt
	for _, s := range body {
		switch st := s.(type) {
		case *lang.Loop:
			if containsCall(st) {
				// A driver loop (e.g. MGRID's V-cycle): execute it
				// plainly and compile each inner nest independently —
				// "reuses that occur between independent sets of loops
				// are not considered."
				inner, err := cc.compileBody(st.Body, formals)
				if err != nil {
					return nil, err
				}
				out = append(out, &xloop{v: st.Var, lo: st.Lo, hi: st.Hi, step: st.Step, body: inner})
				continue
			}
			cc.c.Stats.Nests++
			xl, err := cc.compileNest(st, formals)
			if err != nil {
				return nil, err
			}
			out = append(out, xl)
		case *lang.Assign:
			xa, err := cc.compileAssign(st, nil)
			if err != nil {
				return nil, err
			}
			out = append(out, xa)
		case *lang.Call:
			pr := st.Proc
			xc := &xcall{proc: pr, args: st.Args, body: cc.c.procs[pr]}
			if xc.body == nil {
				return nil, fmt.Errorf("call of uncompiled proc %s", pr.Name)
			}
			out = append(out, xc)
		default:
			return nil, fmt.Errorf("unsupported statement %T", s)
		}
	}
	return out, nil
}
