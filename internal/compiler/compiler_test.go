package compiler

import (
	"strings"
	"testing"

	"memhogs/internal/lang"
	"memhogs/internal/sim"
)

// testTarget: 16 KB pages, 4800-page memory, like the paper's
// platform.
func testTarget() Target {
	t := DefaultTarget(16<<10, 4800)
	t.FaultLatency = 8 * sim.Millisecond
	return t
}

const matvecSrc = `
program matvec
param N, M
known N = 3200
known M = 16384
array A[N][M] of float64
array x[M] of float64
array y[N] of float64
for i = 0 to N-1 {
    for j = 0 to M-1 {
        y[i] = y[i] + A[i][j] * x[j] @ 20
    }
}
`

func compileMatvec(t *testing.T) *Compiled {
	t.Helper()
	return MustCompile(lang.MustParse(matvecSrc), testTarget())
}

// recordingHints captures everything the compiled program emits.
type recordingHints struct {
	touches    []int64
	writes     map[int64]bool
	workNS     float64
	prefetches map[int][]int64 // tag -> pages in order
	releases   map[int][]int64
	relPrio    map[int]int
}

func newRec() *recordingHints {
	return &recordingHints{
		writes:     map[int64]bool{},
		prefetches: map[int][]int64{},
		releases:   map[int][]int64{},
		relPrio:    map[int]int{},
	}
}

func (h *recordingHints) Touch(page int64, write bool) {
	h.touches = append(h.touches, page)
	if write {
		h.writes[page] = true
	}
}
func (h *recordingHints) Work(ns float64) { h.workNS += ns }
func (h *recordingHints) Prefetch(tag int, pages []int64) {
	h.prefetches[tag] = append(h.prefetches[tag], pages...)
}
func (h *recordingHints) Release(tag, prio int, page int64) {
	h.releases[tag] = append(h.releases[tag], page)
	h.relPrio[tag] = prio
}

func (h *recordingHints) allPrefetched() map[int64]bool {
	out := map[int64]bool{}
	for _, pages := range h.prefetches {
		for _, p := range pages {
			out[p] = true
		}
	}
	return out
}

func (h *recordingHints) allReleased() map[int64]bool {
	out := map[int64]bool{}
	for _, pages := range h.releases {
		for _, p := range pages {
			out[p] = true
		}
	}
	return out
}

func TestMatvecAnalysis(t *testing.T) {
	c := compileMatvec(t)
	st := c.Stats
	if st.Nests != 1 {
		t.Errorf("nests = %d", st.Nests)
	}
	// Groups: y (two refs merge), A, x.
	if st.Groups != 3 {
		t.Errorf("groups = %d, want 3", st.Groups)
	}
	if st.PrefetchDirs != 3 || st.ReleaseDirs != 3 {
		t.Errorf("dirs = %d pf / %d rel, want 3/3", st.PrefetchDirs, st.ReleaseDirs)
	}
	// A is streamed (no temporal reuse): priority 0. x has temporal
	// reuse along i (depth 0): priority 1. y has temporal reuse along
	// j (depth 1): priority 2.
	if st.ZeroPrioReleases != 1 || st.ReusePrioReleases != 2 {
		t.Errorf("release priorities: zero=%d reuse=%d, want 1/2", st.ZeroPrioReleases, st.ReusePrioReleases)
	}
	if st.MisdetectedReuse != 0 {
		t.Errorf("misdetected reuse on a fully affine program: %d", st.MisdetectedReuse)
	}
}

func TestMatvecExecutionTouchesEveryPage(t *testing.T) {
	// Shrink the problem to keep the test fast.
	prog := lang.MustParse(strings.ReplaceAll(strings.ReplaceAll(matvecSrc,
		"known N = 3200", "known N = 64"), "known M = 16384", "known M = 8192"))
	c := MustCompile(prog, testTarget())
	img, err := c.Bind(nil)
	if err != nil {
		t.Fatal(err)
	}
	h := newRec()
	if err := img.Run(h); err != nil {
		t.Fatal(err)
	}
	// A is 64*8192*8 = 4 MB = 256 pages; x is 4 pages; y is 1 page.
	a := prog.FindArray("A")
	aLo, aHi := img.PageRange(a)
	if aHi-aLo+1 != 256 {
		t.Fatalf("A spans %d pages, want 256", aHi-aLo+1)
	}
	seen := map[int64]bool{}
	for _, p := range h.touches {
		seen[p] = true
	}
	for p := aLo; p <= aHi; p++ {
		if !seen[p] {
			t.Fatalf("page %d of A never touched", p)
		}
	}
	// y pages are written; A pages are not.
	y := prog.FindArray("y")
	yLo, _ := img.PageRange(y)
	if !h.writes[yLo] {
		t.Error("y page not marked written")
	}
	if h.writes[aLo] {
		t.Error("A page marked written")
	}
	// Work: N*M iterations at 20ns.
	want := float64(64*8192) * 20
	if h.workNS < want*0.999 || h.workNS > want*1.001 {
		t.Errorf("work = %.0fns, want %.0f", h.workNS, want)
	}
}

func TestMatvecPrefetchCoversMatrix(t *testing.T) {
	prog := lang.MustParse(strings.ReplaceAll(strings.ReplaceAll(matvecSrc,
		"known N = 3200", "known N = 64"), "known M = 16384", "known M = 8192"))
	c := MustCompile(prog, testTarget())
	img, _ := c.Bind(nil)
	h := newRec()
	if err := img.Run(h); err != nil {
		t.Fatal(err)
	}
	pf := h.allPrefetched()
	a := prog.FindArray("A")
	aLo, aHi := img.PageRange(a)
	missing := 0
	for p := aLo; p <= aHi; p++ {
		if !pf[p] {
			missing++
		}
	}
	if missing > 0 {
		t.Fatalf("%d A pages never prefetched", missing)
	}
	// The release stream covers A too (trailing-edge releases).
	rel := h.allReleased()
	relA := 0
	for p := aLo; p <= aHi; p++ {
		if rel[p] {
			relA++
		}
	}
	if relA < int(aHi-aLo) {
		t.Fatalf("only %d A pages released", relA)
	}
}

func TestMatvecVectorPrefetchGatedToFirstRow(t *testing.T) {
	prog := lang.MustParse(strings.ReplaceAll(strings.ReplaceAll(matvecSrc,
		"known N = 3200", "known N = 64"), "known M = 16384", "known M = 8192"))
	c := MustCompile(prog, testTarget())
	img, _ := c.Bind(nil)
	h := newRec()
	if err := img.Run(h); err != nil {
		t.Fatal(err)
	}
	// x's reuse along i is exploitable, so its prefetches happen only
	// during the first i iteration: exactly its 4 pages, no repeats
	// beyond the pipelining overlap.
	x := prog.FindArray("x")
	xLo, xHi := img.PageRange(x)
	count := 0
	for _, pages := range h.prefetches {
		for _, p := range pages {
			if p >= xLo && p <= xHi {
				count++
			}
		}
	}
	if count == 0 {
		t.Fatal("x never prefetched")
	}
	if count > 2*int(xHi-xLo+1) {
		t.Fatalf("x prefetched %d times; gating to the first row failed", count)
	}
	// But x is RELEASED on every row (the paper's aggressive-release
	// pathology): about 4 pages * 64 rows.
	relX := 0
	for _, pages := range h.releases {
		for _, p := range pages {
			if p >= xLo && p <= xHi {
				relX++
			}
		}
	}
	if relX < 100 {
		t.Fatalf("x released only %d times; expected one release stream per row", relX)
	}
}

func TestReleasePriorities(t *testing.T) {
	c := compileMatvec(t)
	img, _ := c.Bind(nil)
	_ = img
	// Find priorities by running a tiny variant instead: inspect the
	// statistics gathered at compile time via the listing.
	lst := c.Listing()
	if !strings.Contains(lst, "prio=0") {
		t.Error("no zero-priority release in listing")
	}
	if !strings.Contains(lst, "prio=1") {
		t.Error("no priority-1 release (vector with outer-loop reuse)")
	}
	if !strings.Contains(lst, "prio=2") {
		t.Error("no priority-2 release (y with inner-loop reuse)")
	}
}

func TestIndirectNeverReleased(t *testing.T) {
	prog := lang.MustParse(`
program buk
param N
known N = 65536
array key[N] of int64
array rank[N] of int64
for i = 0 to N-1 {
    rank[key[i]] = rank[key[i]] + 1 @ 10
}
`)
	prog.SetData("key", func(i int64) int64 { return int64(sim.Hash64(uint64(i)) % 65536) })
	c := MustCompile(prog, testTarget())
	if c.Stats.IndirectRefs != 2 { // read and write of rank[key[i]]
		t.Errorf("indirect refs = %d, want 2", c.Stats.IndirectRefs)
	}
	img, err := c.Bind(nil)
	if err != nil {
		t.Fatal(err)
	}
	h := newRec()
	if err := img.Run(h); err != nil {
		t.Fatal(err)
	}
	rank := prog.FindArray("rank")
	rLo, rHi := img.PageRange(rank)
	for _, pages := range h.releases {
		for _, p := range pages {
			if p >= rLo && p <= rHi {
				t.Fatalf("randomly-accessed array released (page %d)", p)
			}
		}
	}
	// But rank pages ARE prefetched (indirect prefetching).
	pf := h.allPrefetched()
	got := 0
	for p := rLo; p <= rHi; p++ {
		if pf[p] {
			got++
		}
	}
	if got == 0 {
		t.Fatal("indirect target never prefetched")
	}
	// And key, the sequential index array, is released.
	key := prog.FindArray("key")
	kLo, kHi := img.PageRange(key)
	rel := h.allReleased()
	gotK := 0
	for p := kLo; p <= kHi; p++ {
		if rel[p] {
			gotK++
		}
	}
	if gotK == 0 {
		t.Fatal("sequential index array never released")
	}
}

func TestSymbolicStrideMisdetection(t *testing.T) {
	prog := lang.MustParse(`
program fftlike
param N, S
known N = 1048576
array a[N] of float64
for k = 0 to N/2-1 {
    a[S*k] = a[S*k] + 1 @ 15
}
`)
	c := MustCompile(prog, testTarget())
	if c.Stats.MisdetectedReuse == 0 {
		t.Fatal("symbolic stride did not trigger reuse misdetection")
	}
	if c.Stats.ReusePrioReleases == 0 {
		t.Fatal("misdetected reuse should yield a non-zero release priority")
	}
	// Execution still sweeps: bind S=2 and check the release stream
	// advances through pages even though the compiler thought the ref
	// was invariant.
	img, err := c.Bind(map[string]int64{"S": 2})
	if err != nil {
		t.Fatal(err)
	}
	h := newRec()
	if err := img.Run(h); err != nil {
		t.Fatal(err)
	}
	if len(h.allReleased()) < 100 {
		t.Fatalf("symbolic-stride ref released %d pages; expected a sweep", len(h.allReleased()))
	}
	for tag, prio := range h.relPrio {
		if prio == 0 {
			t.Errorf("tag %d released with priority 0; misdetection should give reuse priority", tag)
		}
	}
}

func TestAdaptiveFixesSymbolicStrideMisdetection(t *testing.T) {
	src := `
program fftlike
param N, S
known N = 1048576
array a[N] of float64
for k = 0 to N/2-1 {
    a[S*k] = a[S*k] + 1 @ 15
}
`
	tgt := testTarget()
	tgt.Adaptive = true
	c := MustCompile(lang.MustParse(src), tgt)
	if c.Stats.MisdetectedReuse != 0 {
		t.Fatalf("adaptive codegen still misdetects reuse: %+v", c.Stats)
	}
	if c.Stats.ZeroPrioReleases != 1 || c.Stats.ReusePrioReleases != 0 {
		t.Fatalf("adaptive releases should be priority 0: %+v", c.Stats)
	}
	// Execution unchanged.
	img, err := c.Bind(map[string]int64{"S": 2})
	if err != nil {
		t.Fatal(err)
	}
	h := newRec()
	if err := img.Run(h); err != nil {
		t.Fatal(err)
	}
	if len(h.allReleased()) < 100 {
		t.Fatal("adaptive version did not release the sweep")
	}
}

func TestAdaptiveFixesImpreciseReleases(t *testing.T) {
	src := `
program stencil
param N
array a[262144] of float64
proc sweep(n) {
    for i = 1 to n-1 {
        a[i] = a[i+1] + a[i-1] @ 20
    }
}
call sweep(N)
`
	tgt := testTarget()
	c := MustCompile(lang.MustParse(src), tgt)
	if c.Stats.ImpreciseReleases == 0 {
		t.Fatal("baseline should place imprecise releases under unknown bounds")
	}
	tgt.Adaptive = true
	ca := MustCompile(lang.MustParse(src), tgt)
	if ca.Stats.ImpreciseReleases != 0 {
		t.Fatalf("adaptive codegen still imprecise: %+v", ca.Stats)
	}
}

func TestUnknownBoundsConservative(t *testing.T) {
	prog := lang.MustParse(`
program unknown
param N
array a[1048576] of float64
proc sweep(n) {
    for i = 0 to n-1 {
        a[i] = a[i] + 1 @ 15
    }
}
call sweep(N)
`)
	c := MustCompile(prog, testTarget())
	if c.Stats.UnknownBoundLoops == 0 {
		t.Fatal("formal-bounded loop not counted as unknown")
	}
	img, err := c.Bind(map[string]int64{"N": 4096})
	if err != nil {
		t.Fatal(err)
	}
	h := newRec()
	if err := img.Run(h); err != nil {
		t.Fatal(err)
	}
	if len(h.touches) == 0 {
		t.Fatal("nothing executed")
	}
}

func TestProcSingleVersionDifferentBindings(t *testing.T) {
	prog := lang.MustParse(`
program multi
param N
known N = 8192
array a[N] of float64
proc sweep(n) {
    for i = 0 to n-1 {
        a[i] = a[i] + 1 @ 15
    }
}
call sweep(N)
call sweep(N/2)
`)
	c := MustCompile(prog, testTarget())
	img, err := c.Bind(nil)
	if err != nil {
		t.Fatal(err)
	}
	h := newRec()
	if err := img.Run(h); err != nil {
		t.Fatal(err)
	}
	// Work: 8192 + 4096 iterations at 15ns.
	want := float64(8192+4096) * 15
	if h.workNS != want {
		t.Fatalf("work = %.0f, want %.0f (both calls must run the single compiled body)", h.workNS, want)
	}
}

func TestStencilGroupLeaderTrailer(t *testing.T) {
	// The paper's Figure 3 example: a[i+1][*] is the leading edge
	// (prefetched), a[i-1][*] the trailing edge (released).
	prog := lang.MustParse(`
program stencil
param N
known N = 512
array a[N][N] of float64
for i = 1 to N-2 {
    for j = 1 to N-2 {
        a[i][j] = a[i+1][j] + a[i-1][j] + a[i][j+1] + a[i][j-1] @ 30
    }
}
`)
	c := MustCompile(prog, testTarget())
	// All five refs share variable terms (i*N + j ± consts): one group.
	if c.Stats.Groups != 1 {
		t.Fatalf("groups = %d, want 1 (group locality)", c.Stats.Groups)
	}
	if c.Stats.PrefetchDirs != 1 || c.Stats.ReleaseDirs != 1 {
		t.Fatalf("dirs = %d/%d, want 1/1", c.Stats.PrefetchDirs, c.Stats.ReleaseDirs)
	}
	lst := c.Listing()
	// Leader is a[i+1][j] -> linear const +N = +512; trailer a[i-1][j]
	// -> -512... trailer includes j-1 (const -1): min const is -N-?
	// a[i][j-1] has const -1; a[i-1][j] has const -512. Trailer: -512.
	if !strings.Contains(lst, "pf(&a[") || !strings.Contains(lst, "rel(&a[") {
		t.Fatalf("listing missing pf/rel:\n%s", lst)
	}
}

func TestBindErrors(t *testing.T) {
	c := compileMatvec(t)
	if _, err := c.Bind(map[string]int64{}); err != nil {
		t.Fatalf("binding with known params failed: %v", err)
	}
	prog := lang.MustParse(`
program p
param Q
array a[Q] of float64
a[0] = 1
`)
	c2, err := Compile(prog, testTarget())
	if err == nil {
		// Q unknown: linearization of a 1-D array doesn't need the
		// dim... binding without Q must fail.
		if _, err := c2.Bind(nil); err == nil {
			t.Fatal("bind with unbound param succeeded")
		}
	}
}

func TestIndirectWithoutDataFailsBind(t *testing.T) {
	prog := lang.MustParse(`
program p
array b[1024] of int64
array a[1024] of float64
for i = 0 to 1023 {
    a[b[i]] = 1 @ 5
}
`)
	c := MustCompile(prog, testTarget())
	if _, err := c.Bind(nil); err == nil {
		t.Fatal("bind succeeded without a data generator for the index array")
	}
}

func TestConservativePolicySkipsExploitableReleases(t *testing.T) {
	tgt := testTarget()
	tgt.Aggressive = false
	c := MustCompile(lang.MustParse(matvecSrc), tgt)
	// x and y have exploitable reuse: only A's release (priority 0,
	// no reuse) survives under the conservative §2.3.2 policy.
	if c.Stats.ReleaseDirs != 1 || c.Stats.ZeroPrioReleases != 1 {
		t.Fatalf("conservative releases = %d (zero-prio %d), want 1/1",
			c.Stats.ReleaseDirs, c.Stats.ZeroPrioReleases)
	}
}

func TestPrefetchOnlyAndOriginalModes(t *testing.T) {
	tgt := testTarget()
	tgt.Release = false
	p := MustCompile(lang.MustParse(matvecSrc), tgt)
	if p.Stats.ReleaseDirs != 0 || p.Stats.PrefetchDirs == 0 {
		t.Fatalf("prefetch-only mode wrong: %+v", p.Stats)
	}
	tgt.Prefetch = false
	o := MustCompile(lang.MustParse(matvecSrc), tgt)
	if o.Stats.PrefetchDirs != 0 || o.Stats.ReleaseDirs != 0 {
		t.Fatalf("original mode wrong: %+v", o.Stats)
	}
	// The original program still executes.
	prog := lang.MustParse(strings.ReplaceAll(strings.ReplaceAll(matvecSrc,
		"known N = 3200", "known N = 16"), "known M = 16384", "known M = 2048"))
	o2 := MustCompile(prog, tgt)
	img, _ := o2.Bind(nil)
	h := newRec()
	if err := img.Run(h); err != nil {
		t.Fatal(err)
	}
	if len(h.prefetches) != 0 || len(h.releases) != 0 {
		t.Fatal("original mode emitted hints")
	}
	if len(h.touches) == 0 {
		t.Fatal("original mode did not execute")
	}
}

func TestPrefetchDistanceScalesWithLatency(t *testing.T) {
	slow := testTarget()
	slow.FaultLatency = 20 * sim.Millisecond
	fast := testTarget()
	fast.FaultLatency = 1 * sim.Millisecond
	cs := MustCompile(lang.MustParse(matvecSrc), slow)
	cf := MustCompile(lang.MustParse(matvecSrc), fast)
	ds := maxPagesAhead(cs.Main)
	df := maxPagesAhead(cf.Main)
	if ds <= df {
		t.Fatalf("prefetch distance did not scale with latency: %d (20ms) vs %d (1ms)", ds, df)
	}
}

func maxPagesAhead(list []xstmt) int64 {
	var m int64
	for _, s := range list {
		if xl, ok := s.(*xloop); ok {
			for _, d := range xl.dirs {
				if d.kind == dirPf && d.pagesAhead > m {
					m = d.pagesAhead
				}
			}
			if v := maxPagesAhead(xl.body); v > m {
				m = v
			}
		}
	}
	return m
}

func TestStripModeMatchesGeneralMode(t *testing.T) {
	// A program whose innermost loop is strip-eligible: run it, then
	// run a logically identical program forced into general mode by an
	// indirect ref that resolves to the identity, and compare touches.
	src := `
program strip
param N
known N = 32768
array a[N] of float64
for i = 0 to N-1 {
    a[i] = a[i] + 1 @ 10
}
`
	c := MustCompile(lang.MustParse(src), testTarget())
	img, _ := c.Bind(nil)
	h1 := newRec()
	if err := img.Run(h1); err != nil {
		t.Fatal(err)
	}

	srcInd := `
program gen
param N
known N = 32768
array idx[N] of int64
array a[N] of float64
for i = 0 to N-1 {
    a[idx[i]] = a[idx[i]] + 1 @ 10
}
`
	p2 := lang.MustParse(srcInd)
	p2.SetData("idx", func(i int64) int64 { return i })
	c2 := MustCompile(p2, testTarget())
	img2, err := c2.Bind(nil)
	if err != nil {
		t.Fatal(err)
	}
	h2 := newRec()
	if err := img2.Run(h2); err != nil {
		t.Fatal(err)
	}
	// a occupies the same page count in both runs; identity
	// indirection touches the same sequence of a-pages.
	a1 := c.Prog.FindArray("a")
	lo1, hi1 := img.PageRange(a1)
	a2 := p2.FindArray("a")
	lo2, hi2 := img2.PageRange(a2)
	if hi1-lo1 != hi2-lo2 {
		t.Fatalf("page ranges differ: %d vs %d", hi1-lo1, hi2-lo2)
	}
	seq1 := pagesIn(h1.touches, lo1, hi1, lo1)
	seq2 := pagesIn(h2.touches, lo2, hi2, lo2)
	if len(seq1) != len(seq2) {
		t.Fatalf("touch counts differ: strip=%d general=%d", len(seq1), len(seq2))
	}
	for i := range seq1 {
		if seq1[i] != seq2[i] {
			t.Fatalf("touch sequence diverges at %d: %d vs %d", i, seq1[i], seq2[i])
		}
	}
	// Work totals agree exactly.
	if h1.workNS != h2.workNS {
		t.Fatalf("work differs: %.0f vs %.0f", h1.workNS, h2.workNS)
	}
}

func pagesIn(touches []int64, lo, hi, base int64) []int64 {
	var out []int64
	for _, p := range touches {
		if p >= lo && p <= hi {
			out = append(out, p-base)
		}
	}
	return out
}

func TestListingContainsDirectives(t *testing.T) {
	c := compileMatvec(t)
	lst := c.Listing()
	for _, want := range []string{"pf(&A[", "rel(&A[", "pf(&x[", "rel(&x[", "if first(i)"} {
		if !strings.Contains(lst, want) {
			t.Errorf("listing missing %q:\n%s", want, lst)
		}
	}
}

func TestTable2StatsShape(t *testing.T) {
	c := compileMatvec(t)
	img, _ := c.Bind(nil)
	if img.DataBytes != 3200*16384*8+16384*8+3200*8 {
		t.Fatalf("data bytes = %d", img.DataBytes)
	}
	if img.TotalPages < 25600 {
		t.Fatalf("total pages = %d, want >= 25600 (400 MB of data)", img.TotalPages)
	}
}
