package compiler

import (
	"fmt"

	"memhogs/internal/lang"
)

// Hints is the interface the compiled program runs against — the
// run-time layer (package rt) implements it on top of the kernel.
// Pages are virtual page numbers within the owning process's address
// space.
type Hints interface {
	// Touch references a page (taking faults as needed).
	Touch(page int64, write bool)
	// Work accounts ns nanoseconds of user computation.
	Work(ns float64)
	// Prefetch is a compiler-inserted prefetch call for one or more
	// pages (more than one only for the software-pipelining prologue).
	Prefetch(tag int, pages []int64)
	// Release is a compiler-inserted release call: the page currently
	// holding the trailing reference, the equation-(2) priority, and
	// the static request identifier.
	Release(tag int, prio int, page int64)
}

// Image is a compiled program bound to parameter values, with arrays
// laid out page-aligned in a single address space.
type Image struct {
	C   *Compiled
	Env lang.Env

	bases      map[*lang.Array]int64 // byte offsets
	lens       map[*lang.Array]int64 // element counts
	TotalPages int
	DataBytes  int64
	pageShift  uint

	// Initial slot vectors (params and known values resolved to the
	// compiler's slot table); each Run clones them.
	initVals  []int64
	initBound []bool
}

// Bind lays out the program's arrays for the given parameter values
// and validates that every indirection index array has a data
// generator attached.
func (c *Compiled) Bind(params map[string]int64) (*Image, error) {
	env := lang.Env{}
	for k, v := range c.Prog.Known {
		env[k] = v
	}
	for k, v := range params {
		env[k] = v
	}
	for _, p := range c.Prog.Params {
		if _, ok := env[p]; !ok {
			return nil, fmt.Errorf("compiler: param %s not bound", p)
		}
	}
	shift := uint(0)
	for 1<<shift != c.Target.PageSize {
		shift++
		if shift > 30 {
			return nil, fmt.Errorf("compiler: page size %d not a power of two", c.Target.PageSize)
		}
	}
	img := &Image{
		C: c, Env: env,
		bases:     map[*lang.Array]int64{},
		lens:      map[*lang.Array]int64{},
		pageShift: shift,
	}
	ps := int64(c.Target.PageSize)
	var off int64
	for _, a := range c.Prog.Arrays {
		elems, err := a.NumElems(env)
		if err != nil {
			return nil, err
		}
		img.bases[a] = off
		img.lens[a] = elems
		bytes := elems * int64(a.ElemSize)
		img.DataBytes += bytes
		off += (bytes + ps - 1) / ps * ps
	}
	img.TotalPages = int(off / ps)
	if img.TotalPages == 0 {
		img.TotalPages = 1
	}
	img.initVals = make([]int64, len(c.slotNames))
	img.initBound = make([]bool, len(c.slotNames))
	for i, name := range c.slotNames {
		if v, ok := env[name]; ok {
			img.initVals[i] = v
			img.initBound[i] = true
		}
	}
	// Every indirection array must be able to produce values.
	if err := c.checkIndirectData(c.Main); err != nil {
		return nil, err
	}
	for _, body := range c.procs {
		if err := c.checkIndirectData(body); err != nil {
			return nil, err
		}
	}
	return img, nil
}

func (c *Compiled) checkIndirectData(body []xstmt) error {
	for _, s := range body {
		switch x := s.(type) {
		case *xloop:
			for _, d := range x.dirs {
				if d.ind != nil && d.ind.idxArr.Data == nil {
					return fmt.Errorf("compiler: index array %s has no data generator", d.ind.idxArr.Name)
				}
			}
			if err := c.checkIndirectData(x.body); err != nil {
				return err
			}
		case *xassign:
			for _, site := range x.sites {
				if site.ind != nil && site.ind.idxArr.Data == nil {
					return fmt.Errorf("compiler: index array %s has no data generator", site.ind.idxArr.Name)
				}
			}
		}
	}
	return nil
}

// PageRange returns the [first, last] virtual pages of an array.
func (img *Image) PageRange(a *lang.Array) (int64, int64) {
	base := img.bases[a]
	end := base + img.lens[a]*int64(a.ElemSize) - 1
	return base >> img.pageShift, end >> img.pageShift
}

func (img *Image) byteOf(a *lang.Array, elem int64) int64 {
	return img.bases[a] + elem*int64(a.ElemSize)
}

// Run executes the bound program against the run-time layer.
func (img *Image) Run(h Hints) error {
	r := &runner{
		img:      img,
		h:        h,
		vals:     append([]int64(nil), img.initVals...),
		bound:    append([]bool(nil), img.initBound...),
		isFirst:  make([]bool, len(img.C.slotNames)),
		dirLast:  make([]int64, img.C.numDirs),
		siteLast: make([]int64, img.C.numSites),
	}
	for i := range r.dirLast {
		r.dirLast[i] = -1
	}
	for i := range r.siteLast {
		r.siteLast[i] = -1
	}
	return r.stmts(img.C.Main)
}

// runner is the per-run interpreter state. Scalars live in flat
// slot-indexed vectors (see slots.go): vals/bound mirror what the old
// lang.Env map held (bound[s] false = name absent), isFirst tracks the
// first-iteration flag per loop variable for prefetch gating.
type runner struct {
	img      *Image
	h        Hints
	vals     []int64
	bound    []bool
	isFirst  []bool
	dirLast  []int64
	siteLast []int64
	scratch  []int64
}

func (r *runner) stmts(list []xstmt) error {
	for _, s := range list {
		var err error
		switch x := s.(type) {
		case *xloop:
			err = r.loop(x)
		case *xassign:
			err = r.assign(x)
		case *xcall:
			err = r.call(x)
		default:
			err = fmt.Errorf("compiler: unknown executable node %T", s)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (r *runner) call(c *xcall) error {
	type saved struct {
		val int64
		had bool
	}
	olds := make([]saved, len(c.formalSlots))
	for i, s := range c.formalSlots {
		v, err := r.evalScalar(&c.cargs[i])
		if err != nil {
			return fmt.Errorf("call %s: %w", c.proc.Name, err)
		}
		olds[i] = saved{val: r.vals[s], had: r.bound[s]}
		r.vals[s] = v
		r.bound[s] = true
	}
	err := r.stmts(c.body)
	for i, s := range c.formalSlots {
		r.vals[s] = olds[i].val
		r.bound[s] = olds[i].had
	}
	return err
}

func (r *runner) loop(l *xloop) error {
	lo, err := r.evalScalar(&l.clo)
	if err != nil {
		return err
	}
	hi, err := r.evalScalar(&l.chi)
	if err != nil {
		return err
	}
	if lo > hi {
		return nil
	}
	s := l.vSlot
	savedVal, had := r.vals[s], r.bound[s]
	savedFirst := r.isFirst[s]
	defer func() {
		r.vals[s] = savedVal
		r.bound[s] = had
		r.isFirst[s] = savedFirst
	}()

	if l.strip != nil {
		return r.stripLoop(l, lo, hi)
	}
	first := true
	for v := lo; v <= hi; v += l.step {
		r.vals[s] = v
		r.bound[s] = true
		r.isFirst[s] = first
		for _, d := range l.dirs {
			if err := r.fire(d); err != nil {
				return err
			}
		}
		if err := r.stmts(l.body); err != nil {
			return err
		}
		first = false
	}
	return nil
}

// indirectElem resolves an a[b[i]] target element, with a shift on the
// attached loop variable (by slot) for look-ahead. idx is the
// slot-compiled form of ind.idxLin.
func (r *runner) indirectElem(arr *lang.Array, ind *indirectSpec, idxc *caffine, loopVarSlot int32, shift int64) (int64, bool) {
	var old int64
	if shift != 0 {
		old = r.vals[loopVarSlot]
		r.vals[loopVarSlot] = old + shift
	}
	idx, err := r.evalAffine(idxc)
	if shift != 0 {
		r.vals[loopVarSlot] = old
	}
	if err != nil {
		return 0, false
	}
	n := r.img.lens[ind.idxArr]
	if n == 0 {
		return 0, false
	}
	if idx < 0 {
		return 0, false
	}
	if idx >= n {
		idx = n - 1 // clamped look-ahead past the end
	}
	v := ind.idxArr.Data(idx)
	m := r.img.lens[arr]
	if m == 0 {
		return 0, false
	}
	v %= m
	if v < 0 {
		v += m
	}
	return v, true
}

// fire evaluates one directive at the current iteration and issues its
// hint when the observed page changed.
func (r *runner) fire(d *xdir) error {
	var page int64
	if d.ind != nil {
		elem, ok := r.indirectElem(d.arr, d.ind, &d.cidx, d.loopVarSlot, d.itersAhead)
		if !ok {
			return nil
		}
		page = r.img.byteOf(d.arr, elem) >> r.img.pageShift
	} else {
		elem, err := r.evalAffine(&d.clin)
		if err != nil {
			return err
		}
		page = r.img.byteOf(d.arr, elem) >> r.img.pageShift
	}
	if page == r.dirLast[d.id] {
		return nil
	}
	firstObs := r.dirLast[d.id] < 0
	r.dirLast[d.id] = page
	r.issue(d, page, firstObs)
	return nil
}

// issue performs the hint call for a directive observation.
func (r *runner) issue(d *xdir, page int64, firstObs bool) {
	if d.kind == dirRel {
		r.h.Release(d.tag, d.prio, page)
		return
	}
	for _, g := range d.gateSlots {
		if !r.isFirst[g] {
			return
		}
	}
	if d.ind != nil {
		r.scratch = append(r.scratch[:0], page)
		r.h.Prefetch(d.tag, r.scratch)
		return
	}
	lo, hi := r.img.PageRange(d.arr)
	var from, to int64
	if firstObs {
		from, to = page, page+d.pagesAhead
	} else {
		from, to = page+d.pagesAhead, page+d.pagesAhead
	}
	if from < lo {
		from = lo
	}
	if to > hi {
		to = hi
	}
	if from > to {
		return
	}
	r.scratch = r.scratch[:0]
	for p := from; p <= to; p++ {
		r.scratch = append(r.scratch, p)
	}
	r.h.Prefetch(d.tag, r.scratch)
}

func (r *runner) assign(a *xassign) error {
	for _, s := range a.sites {
		var elem int64
		if s.ind != nil {
			e, ok := r.indirectElem(s.arr, s.ind, &s.cidx, 0, 0)
			if !ok {
				continue
			}
			elem = e
		} else {
			e, err := r.evalAffine(&s.clin)
			if err != nil {
				return err
			}
			elem = e
		}
		page := r.img.byteOf(s.arr, elem) >> r.img.pageShift
		if page != r.siteLast[s.id] {
			r.siteLast[s.id] = page
			r.h.Touch(page, s.write)
		}
	}
	r.h.Work(a.cost)
	return nil
}

// tracked is one linear address stream followed by the strip-mode
// executor: a body access site or a directive.
type tracked struct {
	pos   int64 // byte position
	delta int64 // bytes per iteration
	last  int64 // last observed page
	site  *accessSite
	dir   *xdir
}

// coefVal evaluates the (possibly symbolic) coefficient of slot v in
// lin. An unbound stride parameter contributes zero, as the map lookup
// used to.
func (r *runner) coefVal(lin *caffine, v int32) int64 {
	for i := range lin.terms {
		t := &lin.terms[i]
		if t.slot == v {
			c := t.coef
			if t.coefSlot >= 0 {
				if !r.bound[t.coefSlot] {
					return 0
				}
				c *= r.vals[t.coefSlot]
			}
			return c
		}
	}
	return 0
}

// stripLoop executes an innermost all-affine loop by jumping from page
// crossing to page crossing: the observable effects (touches, hints,
// accumulated work) are identical to element-by-element execution at
// page granularity.
func (r *runner) stripLoop(l *xloop, lo, hi int64) error {
	r.vals[l.vSlot] = lo
	r.bound[l.vSlot] = true
	r.isFirst[l.vSlot] = true
	tr := make([]tracked, 0, len(l.strip.sites)+len(l.dirs))
	for _, s := range l.strip.sites {
		base, err := r.evalAffine(&s.clin)
		if err != nil {
			return err
		}
		tr = append(tr, tracked{
			pos:   r.img.byteOf(s.arr, base),
			delta: r.coefVal(&s.clin, l.vSlot) * l.step * int64(s.elem),
			last:  -1,
			site:  s,
		})
	}
	for _, d := range l.dirs {
		base, err := r.evalAffine(&d.clin)
		if err != nil {
			return err
		}
		// Directive state persists across loop entries (the compiler
		// hoists the pipelining state out of the loop), so track it in
		// the run-wide slot, not per entry.
		tr = append(tr, tracked{
			pos:   r.img.byteOf(d.arr, base),
			delta: r.coefVal(&d.clin, l.vSlot) * l.step * int64(d.elem),
			last:  r.dirLast[d.id],
			dir:   d,
		})
	}
	ps := int64(r.img.C.Target.PageSize)
	shift := r.img.pageShift
	iters := (hi-lo)/l.step + 1
	var it int64
	for it < iters {
		for i := range tr {
			t := &tr[i]
			page := t.pos >> shift
			if page == t.last {
				continue
			}
			firstObs := t.last < 0
			t.last = page
			if t.site != nil {
				r.h.Touch(page, t.site.write)
			} else {
				r.dirLast[t.dir.id] = page
				r.issue(t.dir, page, firstObs)
			}
		}
		steps := iters - it
		for i := range tr {
			t := &tr[i]
			if t.delta == 0 {
				continue
			}
			var s int64
			off := t.pos & (ps - 1)
			if t.delta > 0 {
				s = (ps - off + t.delta - 1) / t.delta
			} else {
				s = (off - t.delta) / -t.delta
			}
			if s < 1 {
				s = 1
			}
			if s < steps {
				steps = s
			}
		}
		r.h.Work(l.strip.cost * float64(steps))
		for i := range tr {
			tr[i].pos += tr[i].delta * steps
		}
		it += steps
		// After the first advance the loop is no longer at its first
		// iteration (gating for peeled prefetches).
		r.isFirst[l.vSlot] = false
	}
	return nil
}
