package compiler

import (
	"testing"

	"memhogs/internal/lang"
)

func TestEmptyLoopRuns(t *testing.T) {
	prog := lang.MustParse(`
program empty
param N
array a[16] of float64
for i = 1 to N {
    a[0] = a[0] + 1 @ 10
}
`)
	c := MustCompile(prog, testTarget())
	img, err := c.Bind(map[string]int64{"N": 0})
	if err != nil {
		t.Fatal(err)
	}
	h := newRec()
	if err := img.Run(h); err != nil {
		t.Fatal(err)
	}
	if h.workNS != 0 || len(h.touches) != 0 {
		t.Fatalf("empty loop executed: work=%v touches=%d", h.workNS, len(h.touches))
	}
}

func TestStepLoops(t *testing.T) {
	prog := lang.MustParse(`
program stepped
array a[16384] of float64
for i = 0 to 16383 step 4 {
    a[i] = a[i] + 1 @ 10
}
`)
	c := MustCompile(prog, testTarget())
	img, _ := c.Bind(nil)
	h := newRec()
	if err := img.Run(h); err != nil {
		t.Fatal(err)
	}
	// 4096 iterations at 10ns.
	if h.workNS != 40960 {
		t.Fatalf("work = %v, want 40960", h.workNS)
	}
	// The array spans 8 pages; a stride-4 sweep still touches all.
	if len(h.allTouched()) != 8 {
		t.Fatalf("touched %d pages, want 8", len(h.allTouched()))
	}
}

func TestFormalShadowsParam(t *testing.T) {
	prog := lang.MustParse(`
program shadow
param n
array a[1024] of float64
proc f(n) {
    for i = 0 to n-1 {
        a[i] = 1 @ 10
    }
}
call f(8)
call f(n)
`)
	c := MustCompile(prog, testTarget())
	img, err := c.Bind(map[string]int64{"n": 16})
	if err != nil {
		t.Fatal(err)
	}
	h := newRec()
	if err := img.Run(h); err != nil {
		t.Fatal(err)
	}
	// 8 + 16 iterations.
	if h.workNS != 240 {
		t.Fatalf("work = %v, want 240 (formal binding broken)", h.workNS)
	}
}

func TestNestedProcFormalRestored(t *testing.T) {
	prog := lang.MustParse(`
program restore
param N
array a[1024] of float64
proc inner(k) {
    for i = 0 to k-1 { a[i] = 2 @ 10 }
}
proc outer(k) {
    call inner(4)
    for i = 0 to k-1 { a[i] = 1 @ 10 }
}
call outer(N)
`)
	c := MustCompile(prog, testTarget())
	img, err := c.Bind(map[string]int64{"N": 8})
	if err != nil {
		t.Fatal(err)
	}
	h := newRec()
	if err := img.Run(h); err != nil {
		t.Fatal(err)
	}
	// inner runs 4 iterations, then outer's own loop must see k=8
	// again: 4 + 8 = 12 iterations.
	if h.workNS != 120 {
		t.Fatalf("work = %v, want 120 (formal not restored after nested call)", h.workNS)
	}
}

func TestNegativeDirectionRef(t *testing.T) {
	// A reference moving backward through memory while the loop
	// ascends.
	prog := lang.MustParse(`
program backward
array a[16384] of float64
array b[16384] of float64
for i = 0 to 16383 {
    b[i] = a[16383-i] @ 10
}
`)
	c := MustCompile(prog, testTarget())
	img, _ := c.Bind(nil)
	h := newRec()
	if err := img.Run(h); err != nil {
		t.Fatal(err)
	}
	// Both arrays fully touched: 8 pages each.
	if len(h.allTouched()) != 16 {
		t.Fatalf("touched %d pages, want 16", len(h.allTouched()))
	}
}

func TestPrefetchClampedToArray(t *testing.T) {
	prog := lang.MustParse(`
program clamp
array a[2048] of float64
for i = 0 to 2047 {
    a[i] = a[i] + 1 @ 10
}
`)
	c := MustCompile(prog, testTarget())
	img, _ := c.Bind(nil)
	h := newRec()
	if err := img.Run(h); err != nil {
		t.Fatal(err)
	}
	lo, hi := img.PageRange(c.Prog.FindArray("a"))
	for p := range h.allPrefetched() {
		if p < lo || p > hi {
			t.Fatalf("prefetch of page %d outside array [%d,%d]", p, lo, hi)
		}
	}
}

func TestRunReentrant(t *testing.T) {
	// The same Image must be runnable repeatedly (the driver's Repeat
	// mode) with identical observable behaviour.
	prog := lang.MustParse(`
program again
array a[8192] of float64
for i = 0 to 8191 {
    a[i] = a[i] * 2 @ 10
}
`)
	c := MustCompile(prog, testTarget())
	img, _ := c.Bind(nil)
	h1 := newRec()
	if err := img.Run(h1); err != nil {
		t.Fatal(err)
	}
	h2 := newRec()
	if err := img.Run(h2); err != nil {
		t.Fatal(err)
	}
	if h1.workNS != h2.workNS || len(h1.touches) != len(h2.touches) {
		t.Fatalf("second run differs: work %v/%v touches %d/%d",
			h1.workNS, h2.workNS, len(h1.touches), len(h2.touches))
	}
}

func (h *recordingHints) allTouched() map[int64]bool {
	out := map[int64]bool{}
	for _, p := range h.touches {
		out[p] = true
	}
	return out
}
