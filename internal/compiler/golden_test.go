package compiler

import (
	"os"
	"path/filepath"
	"testing"

	"memhogs/internal/workload"
)

// TestGoldenListings locks the analysis output for the six built-in
// benchmarks: any change to reuse analysis, locality analysis,
// scheduling, priorities or placement shows up as a diff against
// testdata/*.golden. Regenerate intentionally with
// `go run ./cmd/gen-golden`.
func TestGoldenListings(t *testing.T) {
	tgt := DefaultTarget(16<<10, 4800)
	for _, spec := range workload.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			c := MustCompile(spec.Program(nil), tgt)
			got := c.Listing()
			path := filepath.Join("testdata", spec.Name+".golden")
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run `go run ./cmd/gen-golden`): %v", err)
			}
			if got != string(want) {
				t.Errorf("listing changed; if intentional run `go run ./cmd/gen-golden`\n--- got\n%s\n--- want\n%s", got, want)
			}
		})
	}
}

// TestGoldenDeterminism compiles each benchmark twice and demands
// byte-identical listings (tag assignment, group ordering and
// directive placement must all be deterministic).
func TestGoldenDeterminism(t *testing.T) {
	tgt := DefaultTarget(16<<10, 4800)
	for _, spec := range workload.All() {
		a := MustCompile(spec.Program(nil), tgt).Listing()
		b := MustCompile(spec.Program(nil), tgt).Listing()
		if a != b {
			t.Fatalf("%s: listing not deterministic", spec.Name)
		}
	}
}
