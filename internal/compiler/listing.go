package compiler

import (
	"fmt"
	"strings"

	"memhogs/internal/lang"
)

// Listing renders the transformed program: the original loops with the
// compiler-inserted prefetch and release calls shown as pseudo-code,
// in the style of the paper's Figure 5 —
// pf(addr, pages_ahead, tag) and rel(addr, priority, tag).
func (c *Compiled) Listing() string {
	var b strings.Builder
	fmt.Fprintf(&b, "// %s — transformed by the prefetch/release compiler\n", c.Prog.Name)
	fmt.Fprintf(&b, "// target: %d pages of %d bytes, fault latency %v\n",
		c.Target.MemoryPages, c.Target.PageSize, c.Target.FaultLatency)
	for _, pr := range c.Prog.Procs {
		fmt.Fprintf(&b, "proc %s(%s) {\n", pr.Name, strings.Join(pr.Formals, ", "))
		listStmts(&b, c.procs[pr], 1)
		b.WriteString("}\n")
	}
	listStmts(&b, c.Main, 0)
	return b.String()
}

func listStmts(b *strings.Builder, list []xstmt, indent int) {
	pad := strings.Repeat("    ", indent)
	for _, s := range list {
		switch x := s.(type) {
		case *xloop:
			fmt.Fprintf(b, "%sfor %s = %s to %s", pad, x.v, x.lo, x.hi)
			if x.step != 1 {
				fmt.Fprintf(b, " step %d", x.step)
			}
			b.WriteString(" {\n")
			for _, d := range x.dirs {
				listDir(b, d, indent+1)
			}
			listStmts(b, x.body, indent+1)
			fmt.Fprintf(b, "%s}\n", pad)
		case *xassign:
			fmt.Fprintf(b, "%scompute(%.0fns", pad, x.cost)
			for _, site := range x.sites {
				b.WriteString(", ")
				b.WriteString(siteString(site))
			}
			b.WriteString(")\n")
		case *xcall:
			fmt.Fprintf(b, "%scall %s(", pad, x.proc.Name)
			for i, a := range x.args {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(a.String())
			}
			b.WriteString(")\n")
		}
	}
}

func listDir(b *strings.Builder, d *xdir, indent int) {
	pad := strings.Repeat("    ", indent)
	addr := dirAddr(d)
	switch d.kind {
	case dirPf:
		gate := ""
		if len(d.gates) > 0 {
			gate = fmt.Sprintf(" if first(%s)", strings.Join(d.gates, ","))
		}
		if d.ind != nil {
			fmt.Fprintf(b, "%spf(%s, +%d iters, tag=%d)%s\n", pad, addr, d.itersAhead, d.tag, gate)
		} else {
			fmt.Fprintf(b, "%spf(%s, +%d pages, tag=%d)%s\n", pad, addr, d.pagesAhead, d.tag, gate)
		}
	case dirRel:
		fmt.Fprintf(b, "%srel(%s, prio=%d, tag=%d)\n", pad, addr, d.prio, d.tag)
	}
}

func dirAddr(d *xdir) string {
	if d.ind != nil {
		return fmt.Sprintf("&%s[%s[%s]]", d.arr.Name, d.ind.idxArr.Name, lang.FormatAffine(d.ind.idxLin))
	}
	return fmt.Sprintf("&%s[%s]", d.arr.Name, lang.FormatAffine(d.lin))
}

func siteString(s *accessSite) string {
	mode := "r"
	if s.write {
		mode = "w"
	}
	if s.ind != nil {
		return fmt.Sprintf("%s[%s[%s]]:%s", s.arr.Name, s.ind.idxArr.Name, lang.FormatAffine(s.ind.idxLin), mode)
	}
	return fmt.Sprintf("%s[%s]:%s", s.arr.Name, lang.FormatAffine(s.lin), mode)
}
