package compiler

import "memhogs/internal/lang"

// HintKind distinguishes the two directive families in the exported
// schedule.
type HintKind int8

// Hint kinds.
const (
	HintPrefetch HintKind = iota
	HintRelease
)

// String returns the pseudo-code spelling of the kind.
func (k HintKind) String() string {
	if k == HintRelease {
		return "rel"
	}
	return "pf"
}

// Hint is the externally visible description of one compiler-inserted
// directive: everything a verifier (internal/hogvet) needs to re-derive
// and cross-check the analysis without reaching into the executable
// form. Pointers reference the program AST the schedule was compiled
// from.
type Hint struct {
	ID       int
	Tag      int
	Kind     HintKind
	Priority int // equation (2) value passed by release directives

	Proc string // enclosing procedure name; "" for the main body

	Array *lang.Array
	Elem  int
	// Affine is the linearized element offset for affine directives;
	// nil for indirect targets, which carry IndexArray/IndexAffine
	// (the a[b[i]] form) instead.
	Affine      *lang.Affine
	IndexArray  *lang.Array
	IndexAffine *lang.Affine

	// Loop is the loop the directive is attached to (it is evaluated
	// once per iteration of that loop); Path lists the enclosing loops
	// of the reference within its nest, outermost first, ending at or
	// below Loop.
	Loop *lang.Loop
	Path []*lang.Loop

	PagesAhead int64
	ItersAhead int64
	Gates      []string

	// Imprecise marks a release that fell back to the group's leading
	// reference because unknown loop bounds separate it from the true
	// trailing reference (the MGRID pathology).
	Imprecise bool
}

// Hints returns the full directive schedule in placement order (which
// is deterministic). The slice is a copy; the pointed-to AST nodes are
// shared with the compiled program.
func (c *Compiled) Hints() []Hint {
	return append([]Hint(nil), c.hints...)
}

// recordHint captures the schedule entry for a directive at placement
// time.
func (cc *compileCtx) recordHint(d *xdir, r *refInfo, imprecise bool) {
	h := Hint{
		ID:         d.id,
		Tag:        d.tag,
		Priority:   d.prio,
		Proc:       cc.proc,
		Array:      d.arr,
		Elem:       d.elem,
		Affine:     d.lin,
		Loop:       r.driving.l,
		PagesAhead: d.pagesAhead,
		ItersAhead: d.itersAhead,
		Gates:      append([]string(nil), d.gates...),
		Imprecise:  imprecise,
	}
	if d.kind == dirRel {
		h.Kind = HintRelease
	}
	if d.ind != nil {
		h.IndexArray = d.ind.idxArr
		h.IndexAffine = d.ind.idxLin
	}
	for _, n := range r.path {
		h.Path = append(h.Path, n.l)
	}
	cc.c.hints = append(cc.c.hints, h)
}
