package compiler

import (
	"fmt"

	"memhogs/internal/lang"
)

// Scalar-environment slot assignment. The interpreter used to evaluate
// every subscript and loop bound against a lang.Env (map[string]int64),
// which put a string hash and map probe on the per-element hot path —
// profiling showed it dominating the indirect benchmarks. Compile
// instead interns every scalar name (params, loop variables, formals,
// symbolic stride parameters) into a dense slot table and attaches
// slot-resolved forms (cscalar, caffine) to the executable nodes; the
// runner then works over flat []int64 / []bool vectors. The lang forms
// stay on the nodes as the source of truth for analysis and listings.

// cscalar is a lang.Scalar with its symbol resolved to a slot. name is
// kept only for error messages.
type cscalar struct {
	name            string // "" for constants
	slot            int32
	scale, div, off int64
}

// cterm is one term of a compiled affine: coef·vals[slot], with the
// coefficient optionally scaled by a bound stride parameter.
type cterm struct {
	slot      int32
	coefSlot  int32 // slot of the symbolic stride parameter, -1 if none
	coef      int64
	varName   string // for error messages
	paramName string
}

// caffine is a lang.Affine with every symbol resolved to a slot.
type caffine struct {
	k     int64
	terms []cterm
}

// slotOf interns a scalar name, assigning slots densely in first-use
// order (deterministic: the finalize walk visits nodes in source order).
func (c *Compiled) slotOf(name string) int32 {
	if s, ok := c.slots[name]; ok {
		return s
	}
	s := int32(len(c.slotNames))
	c.slots[name] = s
	c.slotNames = append(c.slotNames, name)
	return s
}

func (c *Compiled) compileScalar(s lang.Scalar) cscalar {
	if s.Name == "" {
		return cscalar{off: s.Offset}
	}
	return cscalar{name: s.Name, slot: c.slotOf(s.Name), scale: s.Scale, div: s.Div, off: s.Offset}
}

func (c *Compiled) compileAffine(a *lang.Affine) caffine {
	ca := caffine{k: a.Const}
	if len(a.Terms) > 0 {
		ca.terms = make([]cterm, 0, len(a.Terms))
	}
	for _, t := range a.Terms {
		ct := cterm{slot: c.slotOf(t.Var), coefSlot: -1, coef: t.Coef, varName: t.Var}
		if t.CoefParam != "" {
			ct.coefSlot = c.slotOf(t.CoefParam)
			ct.paramName = t.CoefParam
		}
		ca.terms = append(ca.terms, ct)
	}
	return ca
}

// finalize assigns slots across the whole program and attaches compiled
// scalar/affine forms to every executable node. Proc bodies are walked
// in declaration order (once each — xcall shares the compiled body), so
// slot numbering is deterministic.
func (c *Compiled) finalize() {
	c.slots = map[string]int32{}
	for _, pr := range c.Prog.Procs {
		c.compileSlotStmts(c.procs[pr])
	}
	c.compileSlotStmts(c.Main)
}

func (c *Compiled) compileSlotStmts(list []xstmt) {
	for _, s := range list {
		switch x := s.(type) {
		case *xloop:
			x.vSlot = c.slotOf(x.v)
			x.clo = c.compileScalar(x.lo)
			x.chi = c.compileScalar(x.hi)
			for _, d := range x.dirs {
				if d.lin != nil {
					d.clin = c.compileAffine(d.lin)
				}
				if d.ind != nil {
					d.cidx = c.compileAffine(d.ind.idxLin)
					d.loopVarSlot = c.slotOf(d.loopVar)
				}
				for _, g := range d.gates {
					d.gateSlots = append(d.gateSlots, c.slotOf(g))
				}
			}
			c.compileSlotStmts(x.body)
		case *xassign:
			for _, site := range x.sites {
				if site.lin != nil {
					site.clin = c.compileAffine(site.lin)
				}
				if site.ind != nil {
					site.cidx = c.compileAffine(site.ind.idxLin)
				}
			}
		case *xcall:
			// The shared proc body was compiled by the proc walk; only
			// the call's own arguments and formal bindings live here.
			x.formalSlots = make([]int32, len(x.proc.Formals))
			for i, f := range x.proc.Formals {
				x.formalSlots[i] = c.slotOf(f)
			}
			x.cargs = make([]cscalar, len(x.args))
			for i, a := range x.args {
				x.cargs[i] = c.compileScalar(a)
			}
		}
	}
}

// evalScalar is cscalar evaluation against the runner's slot vectors,
// matching lang.Scalar.Eval exactly (including error text).
func (r *runner) evalScalar(s *cscalar) (int64, error) {
	if s.name == "" {
		return s.off, nil
	}
	if !r.bound[s.slot] {
		return 0, fmt.Errorf("lang: unbound symbol %q", s.name)
	}
	x := s.scale * r.vals[s.slot]
	if s.div > 1 {
		x /= s.div
	}
	return x + s.off, nil
}

// evalAffine is caffine evaluation against the runner's slot vectors,
// matching lang.Affine.Eval exactly (including error text).
func (r *runner) evalAffine(a *caffine) (int64, error) {
	v := a.k
	for i := range a.terms {
		t := &a.terms[i]
		if !r.bound[t.slot] {
			return 0, fmt.Errorf("lang: unbound variable %q in subscript", t.varName)
		}
		c := t.coef
		if t.coefSlot >= 0 {
			if !r.bound[t.coefSlot] {
				return 0, fmt.Errorf("lang: unbound stride parameter %q", t.paramName)
			}
			c *= r.vals[t.coefSlot]
		}
		v += c * r.vals[t.slot]
	}
	return v, nil
}
