package compiler

import (
	"fmt"
	"testing"

	"memhogs/internal/lang"
	"memhogs/internal/sim"
)

// clearStrip forces general (per-iteration) execution by removing the
// strip plans from an executable tree.
func clearStrip(list []xstmt) {
	for _, s := range list {
		if xl, ok := s.(*xloop); ok {
			xl.strip = nil
			clearStrip(xl.body)
		}
	}
}

func clearAllStrip(c *Compiled) {
	clearStrip(c.Main)
	for _, body := range c.procs {
		clearStrip(body)
	}
}

// setHints collects page sets per hint kind.
type setHints struct {
	touched  map[int64]bool
	prefetch map[int64]bool
	released map[int64]bool
	work     float64
}

func newSetHints() *setHints {
	return &setHints{touched: map[int64]bool{}, prefetch: map[int64]bool{}, released: map[int64]bool{}}
}

func (h *setHints) Touch(page int64, write bool) { h.touched[page] = true }
func (h *setHints) Work(ns float64)              { h.work += ns }
func (h *setHints) Prefetch(tag int, pages []int64) {
	for _, p := range pages {
		h.prefetch[p] = true
	}
}
func (h *setHints) Release(tag, prio int, page int64) { h.released[page] = true }

// randomProgram builds a random affine loop-nest program. The
// generator keeps subscripts in bounds by sizing arrays from the
// maximum possible subscript value.
func randomProgram(r *sim.Rand, id int) *lang.Program {
	depth := 1 + r.Intn(2)           // 1..2 loops
	trips := int64(64 + r.Intn(512)) // per loop
	narr := 1 + r.Intn(2)

	src := fmt.Sprintf("program rand%d\n", id)
	// Max subscript: sum over loops of coef*trips + const.
	maxIdx := int64(0)
	type term struct {
		coef int64
		v    string
	}
	vars := []string{"i", "j"}[:depth]
	// One ref per array with random coefficients.
	refs := make([][]term, narr)
	consts := make([]int64, narr)
	for a := 0; a < narr; a++ {
		var ts []term
		for _, v := range vars {
			c := int64(r.Intn(4)) // 0..3
			if c > 0 {
				ts = append(ts, term{coef: c, v: v})
			}
		}
		if len(ts) == 0 {
			ts = append(ts, term{coef: 1, v: vars[len(vars)-1]})
		}
		refs[a] = ts
		consts[a] = int64(r.Intn(8))
		idx := consts[a]
		for _, t := range ts {
			idx += t.coef * (trips - 1)
		}
		if idx > maxIdx {
			maxIdx = idx
		}
	}
	for a := 0; a < narr; a++ {
		src += fmt.Sprintf("array a%d[%d] of float64\n", a, maxIdx+8)
	}
	for d, v := range vars {
		src += fmt.Sprintf("%sfor %s = 0 to %d {\n", indentN(d), v, trips-1)
	}
	// Body: one assignment touching every array.
	expr := ""
	for a := 0; a < narr; a++ {
		sub := fmt.Sprintf("%d", consts[a])
		for _, t := range refs[a] {
			sub = fmt.Sprintf("%d*%s+%s", t.coef, t.v, sub)
		}
		if a == 0 {
			expr = fmt.Sprintf("a0[%s] = a0[%s]", sub, sub)
		} else {
			expr += fmt.Sprintf(" + a%d[%s]", a, sub)
		}
	}
	src += indentN(depth) + expr + " @ 25\n"
	for d := depth - 1; d >= 0; d-- {
		src += indentN(d) + "}\n"
	}
	return lang.MustParse(src)
}

func indentN(n int) string {
	s := ""
	for i := 0; i < n; i++ {
		s += "    "
	}
	return s
}

// TestStripEquivalenceRandom property-checks that strip-mode execution
// observes the same pages, emits the same hint page sets, and accounts
// the same work as plain per-iteration execution, across random affine
// programs.
func TestStripEquivalenceRandom(t *testing.T) {
	r := sim.NewRand(20260706)
	for trial := 0; trial < 40; trial++ {
		prog := randomProgram(r, trial)
		tgt := testTarget()

		cs := MustCompile(prog, tgt)
		imgS, err := cs.Bind(nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		hs := newSetHints()
		if err := imgS.Run(hs); err != nil {
			t.Fatalf("trial %d strip: %v", trial, err)
		}

		cg := MustCompile(prog, tgt)
		clearAllStrip(cg)
		imgG, err := cg.Bind(nil)
		if err != nil {
			t.Fatal(err)
		}
		hg := newSetHints()
		if err := imgG.Run(hg); err != nil {
			t.Fatalf("trial %d general: %v", trial, err)
		}

		if len(hs.touched) != len(hg.touched) {
			t.Fatalf("trial %d: touched sets differ: strip=%d general=%d\n%s",
				trial, len(hs.touched), len(hg.touched), lang.Format(prog))
		}
		for p := range hs.touched {
			if !hg.touched[p] {
				t.Fatalf("trial %d: page %d touched only in strip mode", trial, p)
			}
		}
		if len(hs.prefetch) != len(hg.prefetch) || len(hs.released) != len(hg.released) {
			t.Fatalf("trial %d: hint sets differ: pf %d/%d rel %d/%d\n%s",
				trial, len(hs.prefetch), len(hg.prefetch),
				len(hs.released), len(hg.released), lang.Format(prog))
		}
		if hs.work != hg.work {
			t.Fatalf("trial %d: work differs: %v vs %v", trial, hs.work, hg.work)
		}
	}
}

// TestStripEquivalenceNegativeCoef checks descending address streams
// (negative coefficients) across the two executors.
func TestStripEquivalenceNegativeCoef(t *testing.T) {
	prog := lang.MustParse(`
program revsweep
param N
known N = 8192
array a[8200] of float64
for i = 0 to N-1 {
    a[8192-i] = a[8192-i] + 1 @ 10
}
`)
	tgt := testTarget()
	cs := MustCompile(prog, tgt)
	imgS, err := cs.Bind(nil)
	if err != nil {
		t.Fatal(err)
	}
	hs := newSetHints()
	if err := imgS.Run(hs); err != nil {
		t.Fatal(err)
	}
	cg := MustCompile(prog, tgt)
	clearAllStrip(cg)
	imgG, _ := cg.Bind(nil)
	hg := newSetHints()
	if err := imgG.Run(hg); err != nil {
		t.Fatal(err)
	}
	if len(hs.touched) != len(hg.touched) || hs.work != hg.work {
		t.Fatalf("descending sweep differs: touched %d/%d work %v/%v",
			len(hs.touched), len(hg.touched), hs.work, hg.work)
	}
	// The sweep covers the whole array: 8200*8/16384 pages.
	if len(hs.touched) != 5 {
		t.Fatalf("touched %d pages, want 5", len(hs.touched))
	}
}

// TestStripSymbolicStrideEquivalence checks runtime-bound strides.
func TestStripSymbolicStrideEquivalence(t *testing.T) {
	prog := lang.MustParse(`
program symstride
param S
array a[65536] of float64
for k = 0 to 8191 {
    a[S*k] = a[S*k] + 1 @ 10
}
`)
	for _, stride := range []int64{1, 3, 8} {
		tgt := testTarget()
		cs := MustCompile(prog, tgt)
		imgS, err := cs.Bind(map[string]int64{"S": stride})
		if err != nil {
			t.Fatal(err)
		}
		hs := newSetHints()
		if err := imgS.Run(hs); err != nil {
			t.Fatal(err)
		}
		cg := MustCompile(prog, tgt)
		clearAllStrip(cg)
		imgG, _ := cg.Bind(map[string]int64{"S": stride})
		hg := newSetHints()
		if err := imgG.Run(hg); err != nil {
			t.Fatal(err)
		}
		if len(hs.touched) != len(hg.touched) || hs.work != hg.work {
			t.Fatalf("stride %d: touched %d/%d work %v/%v",
				stride, len(hs.touched), len(hg.touched), hs.work, hg.work)
		}
	}
}
