// Package disk models the paging I/O subsystem of the experimental
// platform: a set of disks behind shared adapters, with swap space
// striped page-by-page across all disks (the paper stripes raw swap
// partitions across ten Seagate Cheetah 4LP disks on five SCSI
// adapters).
//
// Each disk services requests FIFO with a positioning phase (cheap if
// the request is sequential with the previous one on that disk) and a
// transfer phase that must also hold the disk's adapter, modelling the
// two-disks-per-adapter bandwidth constraint.
package disk

import (
	"fmt"

	"memhogs/internal/chaos"
	"memhogs/internal/sim"
)

// nearBlocks is the distance (in page-sized blocks) within which
// positioning costs only the short settle time rather than a full
// seek.
const nearBlocks = 32

// maxReadRetries bounds transient-read-error recovery: after this
// many failed attempts the next transfer succeeds unconditionally, so
// an armed disk-error fault can never stall a request forever.
const maxReadRetries = 8

// Op distinguishes reads (page-in) from writes (page-out).
type Op int

// Request operations.
const (
	Read Op = iota
	Write
)

func (o Op) String() string {
	if o == Read {
		return "read"
	}
	return "write"
}

// Request is one page-sized transfer. Done, if non-nil, is invoked in
// the event loop when the transfer completes; Waiter, if non-nil, is
// woken instead.
type Request struct {
	Op     Op
	Block  int64 // absolute block (page) number on the target disk
	Done   func()
	Waiter *sim.Proc

	queuedAt sim.Time
}

// Config holds the disk-model parameters.
type Config struct {
	NumDisks     int      // total spindles
	NumAdapters  int      // adapters; disks are assigned round-robin
	PosTimeMin   sim.Time // positioning (seek+rotate), random portion low
	PosTimeMax   sim.Time // positioning, random portion high
	SeqPosTime   sim.Time // positioning when sequential with previous block
	TransferTime sim.Time // time to move one page over the channel
	Seed         uint64
}

// Stats aggregates per-array counters across all disks.
type Stats struct {
	Reads       int64
	Writes      int64
	SeqHits     int64    // requests that got the sequential-position discount
	ReadRetries int64    // transfers re-issued after an injected read error
	BusyTime    sim.Time // total spindle busy time
	QueueTime   sim.Time // total time requests spent queued before service
}

// Array is the collection of disks plus adapters.
type Array struct {
	sim   *sim.Sim
	cfg   Config
	disks []*disk
	stats Stats

	// Chaos is the fault injector; nil (the default) injects nothing.
	Chaos *chaos.Injector
}

type disk struct {
	arr       *Array
	id        int
	name      string
	adapter   *sim.Sem
	queue     []*Request
	busy      bool
	lastBlock int64
	rng       *sim.Rand
	proc      *sim.Proc
	work      *sim.Waitq
}

// New creates the disk array and starts one service process per disk.
func New(s *sim.Sim, cfg Config) *Array {
	if cfg.NumDisks <= 0 {
		panic("disk: NumDisks must be positive")
	}
	if cfg.NumAdapters <= 0 {
		cfg.NumAdapters = 1
	}
	a := &Array{sim: s, cfg: cfg}
	adapters := make([]*sim.Sem, cfg.NumAdapters)
	for i := range adapters {
		adapters[i] = sim.NewSem(fmt.Sprintf("adapter%d", i), 1)
	}
	for i := 0; i < cfg.NumDisks; i++ {
		d := &disk{
			arr:       a,
			id:        i,
			name:      fmt.Sprintf("disk%d", i),
			adapter:   adapters[i%cfg.NumAdapters],
			lastBlock: -1 << 40, // far away: first request pays a full seek
			rng:       sim.NewRand(cfg.Seed + uint64(i)*0x9e37 + 1),
			work:      sim.NewWaitq(fmt.Sprintf("disk%d.work", i)),
		}
		a.disks = append(a.disks, d)
		d.proc = s.Spawn(d.name, d.serve)
	}
	return a
}

// NumDisks returns the number of spindles.
func (a *Array) NumDisks() int { return len(a.disks) }

// Stats returns a snapshot of the aggregate counters.
func (a *Array) Stats() Stats { return a.stats }

// ResetStats zeroes the aggregate counters.
func (a *Array) ResetStats() { a.stats = Stats{} }

// DiskFor maps a striped swap page number to its disk index. Swap is
// striped with a one-page stripe unit.
func (a *Array) DiskFor(swapPage int64) int {
	d := int(swapPage % int64(len(a.disks)))
	if d < 0 {
		d += len(a.disks)
	}
	return d
}

// Submit enqueues a request on the disk holding swapPage. The caller
// is responsible for arranging to learn of completion through
// req.Done or req.Waiter.
func (a *Array) Submit(swapPage int64, req *Request) {
	d := a.disks[a.DiskFor(swapPage)]
	req.Block = swapPage / int64(len(a.disks)) // block within the stripe column
	req.queuedAt = a.sim.Now()
	d.queue = append(d.queue, req)
	d.work.WakeOne()
}

// QueueDepth returns the number of requests queued (not yet completed)
// on disk i. Exposed for tests.
func (a *Array) QueueDepth(i int) int { return len(a.disks[i].queue) }

// pickNext chooses the next request CSCAN-style: the lowest block at
// or beyond the current head position, wrapping to the lowest block
// overall. Queue sorting is what lets several interleaved sequential
// streams (multiple prefetch pipelines) coalesce into sequential runs
// per region instead of paying a full positioning delay per page.
func (d *disk) pickNext() *Request {
	best, bestWrap := -1, -1
	for i, r := range d.queue {
		if r.Block >= d.lastBlock {
			if best < 0 || r.Block < d.queue[best].Block {
				best = i
			}
		}
		if bestWrap < 0 || r.Block < d.queue[bestWrap].Block {
			bestWrap = i
		}
	}
	idx := best
	if idx < 0 {
		idx = bestWrap
	}
	req := d.queue[idx]
	copy(d.queue[idx:], d.queue[idx+1:])
	d.queue = d.queue[:len(d.queue)-1]
	return req
}

// serve is the per-disk service loop.
func (d *disk) serve(p *sim.Proc) {
	a := d.arr
	for {
		for len(d.queue) == 0 {
			d.work.Wait(p)
		}
		req := d.pickNext()

		a.stats.QueueTime += p.Now() - req.queuedAt

		// Chaos: a controller hiccup before positioning even starts.
		if spike := a.Chaos.FireDelay(chaos.DiskSlow, d.name); spike > 0 {
			p.Sleep(spike)
		}

		// Positioning: near-sequential requests (within a cylinder or
		// two of the last block) pay only the short settle time;
		// distant ones pay a full seek + rotation.
		var pos sim.Time
		dist := req.Block - d.lastBlock
		if dist < 0 {
			dist = -dist
		}
		if dist <= nearBlocks {
			pos = a.cfg.SeqPosTime
			a.stats.SeqHits++
		} else {
			pos = d.rng.Duration(a.cfg.PosTimeMin, a.cfg.PosTimeMax+1)
		}
		start := p.Now()
		p.Sleep(pos)

		// Transfer holds the adapter: two disks share one channel.
		// Chaos can fail a read transfer; the disk backs off
		// (exponentially, from the fault's magnitude) and retries from
		// the already-positioned head, with a retry cap guaranteeing
		// forward progress.
		for attempt := 0; ; attempt++ {
			d.adapter.Acquire(p)
			p.Sleep(a.cfg.TransferTime)
			d.adapter.Release()
			if req.Op != Read || attempt >= maxReadRetries {
				break
			}
			backoff := a.Chaos.FireDelay(chaos.DiskError, d.name)
			if backoff == 0 {
				break
			}
			a.stats.ReadRetries++
			p.Sleep(backoff << uint(attempt))
		}

		d.lastBlock = req.Block
		a.stats.BusyTime += p.Now() - start
		if req.Op == Read {
			a.stats.Reads++
		} else {
			a.stats.Writes++
		}
		if req.Done != nil {
			req.Done()
		}
		if req.Waiter != nil {
			req.Waiter.Wake()
		}
	}
}
