package disk

import (
	"testing"

	"memhogs/internal/sim"
)

func testConfig() Config {
	return Config{
		NumDisks:     4,
		NumAdapters:  2,
		PosTimeMin:   4 * sim.Millisecond,
		PosTimeMax:   9 * sim.Millisecond,
		SeqPosTime:   600 * sim.Microsecond,
		TransferTime: 900 * sim.Microsecond,
		Seed:         1,
	}
}

func TestSingleRequestLatency(t *testing.T) {
	s := sim.New()
	a := New(s, testConfig())
	var done sim.Time
	a.Submit(0, &Request{Op: Read, Done: func() { done = s.Now() }})
	s.Run(0)
	min := 4*sim.Millisecond + 900*sim.Microsecond
	max := 9*sim.Millisecond + 900*sim.Microsecond
	if done < min || done > max {
		t.Fatalf("latency %v outside [%v, %v]", done, min, max)
	}
	if a.Stats().Reads != 1 {
		t.Fatalf("Reads = %d, want 1", a.Stats().Reads)
	}
}

func TestStripingSpreadsAcrossDisks(t *testing.T) {
	s := sim.New()
	a := New(s, testConfig())
	seen := map[int]bool{}
	for pg := int64(0); pg < 8; pg++ {
		seen[a.DiskFor(pg)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("striping hit %d disks, want 4", len(seen))
	}
	// Consecutive pages land on consecutive disks.
	if a.DiskFor(0) == a.DiskFor(1) {
		t.Fatal("adjacent pages on same disk")
	}
}

func TestParallelismAcrossDisks(t *testing.T) {
	s := sim.New()
	cfg := testConfig()
	cfg.PosTimeMin, cfg.PosTimeMax = 5*sim.Millisecond, 5*sim.Millisecond
	a := New(s, cfg)
	completed := 0
	// One request per disk: they should complete in roughly one
	// service time, not four.
	for pg := int64(0); pg < 4; pg++ {
		a.Submit(pg, &Request{Op: Read, Done: func() { completed++ }})
	}
	end := s.Run(0)
	if completed != 4 {
		t.Fatalf("completed %d, want 4", completed)
	}
	// Positioning overlaps fully; transfers serialize pairwise on the
	// two adapters at worst: 5ms + a few transfers.
	if end > 8*sim.Millisecond {
		t.Fatalf("4-wide parallel reads took %v; no parallelism?", end)
	}
}

func TestQueueingSerializesOneDisk(t *testing.T) {
	s := sim.New()
	cfg := testConfig()
	cfg.PosTimeMin, cfg.PosTimeMax = 5*sim.Millisecond, 5*sim.Millisecond
	a := New(s, cfg)
	n := 0
	// Same disk (stride by NumDisks): strictly serial.
	for i := 0; i < 3; i++ {
		// Use widely spaced blocks so the sequential discount never
		// applies.
		a.Submit(int64(i*100*cfg.NumDisks), &Request{Op: Read, Done: func() { n++ }})
	}
	end := s.Run(0)
	if n != 3 {
		t.Fatalf("completed %d, want 3", n)
	}
	want := 3 * (5*sim.Millisecond + 900*sim.Microsecond)
	if end != want {
		t.Fatalf("serial service took %v, want %v", end, want)
	}
}

func TestSequentialDiscount(t *testing.T) {
	s := sim.New()
	cfg := testConfig()
	a := New(s, cfg)
	// Blocks 0 and NumDisks map to blocks 0 and 1 of disk 0.
	a.Submit(0, &Request{Op: Read})
	a.Submit(int64(cfg.NumDisks), &Request{Op: Read})
	s.Run(0)
	if a.Stats().SeqHits != 1 {
		t.Fatalf("SeqHits = %d, want 1", a.Stats().SeqHits)
	}
}

func TestWaiterWoken(t *testing.T) {
	s := sim.New()
	a := New(s, testConfig())
	var woke sim.Time
	s.Spawn("app", func(p *sim.Proc) {
		done := false
		a.Submit(3, &Request{Op: Write, Done: func() { done = true }, Waiter: p})
		for !done {
			p.Park()
		}
		woke = p.Now()
	})
	s.Run(0)
	if woke == 0 {
		t.Fatal("waiter never woke")
	}
	if a.Stats().Writes != 1 {
		t.Fatalf("Writes = %d, want 1", a.Stats().Writes)
	}
}

func TestQueueTimeAccounted(t *testing.T) {
	s := sim.New()
	cfg := testConfig()
	cfg.PosTimeMin, cfg.PosTimeMax = 5*sim.Millisecond, 5*sim.Millisecond
	a := New(s, cfg)
	for i := 0; i < 2; i++ {
		a.Submit(int64(i*50*cfg.NumDisks), &Request{Op: Read})
	}
	s.Run(0)
	// Second request waits one full service of the first.
	if a.Stats().QueueTime < 5*sim.Millisecond {
		t.Fatalf("QueueTime = %v, want >= 5ms", a.Stats().QueueTime)
	}
}

func TestElevatorCoalescesInterleavedStreams(t *testing.T) {
	// Two interleaved sequential streams on one disk: with CSCAN
	// sorting, most requests should get the near-positioning discount
	// even though they arrive alternating between two distant regions.
	s := sim.New()
	cfg := testConfig()
	cfg.NumDisks = 1
	cfg.NumAdapters = 1
	a := New(s, cfg)
	done := 0
	for i := 0; i < 32; i++ {
		a.Submit(int64(i), &Request{Op: Read, Done: func() { done++ }})        // stream A: blocks 0..31
		a.Submit(int64(100000+i), &Request{Op: Read, Done: func() { done++ }}) // stream B: far away
	}
	s.Run(0)
	if done != 64 {
		t.Fatalf("completed %d, want 64", done)
	}
	// Perfect coalescing would be 62 sequential hits (two stream
	// heads pay seeks); demand at least 50.
	if a.Stats().SeqHits < 50 {
		t.Fatalf("SeqHits = %d; elevator failed to coalesce streams", a.Stats().SeqHits)
	}
}

func TestElevatorServicesEverythingUnderContinuousLoad(t *testing.T) {
	// CSCAN must not starve low blocks while high blocks keep
	// arriving: submit a burst, then a trailing low block, and check
	// it completes.
	s := sim.New()
	cfg := testConfig()
	cfg.NumDisks = 1
	cfg.NumAdapters = 1
	a := New(s, cfg)
	low := false
	for i := 10; i < 30; i++ {
		a.Submit(int64(i*1000), &Request{Op: Read})
	}
	a.Submit(1, &Request{Op: Read, Done: func() { low = true }})
	s.Run(0)
	if !low {
		t.Fatal("low block starved")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() sim.Time {
		s := sim.New()
		a := New(s, testConfig())
		for pg := int64(0); pg < 20; pg++ {
			a.Submit(pg*3, &Request{Op: Read})
		}
		return s.Run(0)
	}
	if run() != run() {
		t.Fatal("disk model not deterministic")
	}
}
