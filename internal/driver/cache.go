package driver

import (
	"sort"
	"strconv"
	"strings"
	"sync"

	"memhogs/internal/compiler"
	"memhogs/internal/workload"
)

// CompileCache memoizes compiler output across the runs of a
// campaign, keyed by (spec name, bound params, compiler target). A
// campaign recompiles identical programs many times — the sleep sweep
// alone used to compile the same MATVEC binary for every sleep×mode
// cell — and a Compiled is immutable once built (each Image.Run keeps
// its own interpreter state), so one compilation can back any number
// of concurrent runs.
//
// A CompileCache is safe for concurrent use. Compilation runs outside
// the cache lock, at most once per key: concurrent requests for the
// same key block on a per-entry once while distinct programs compile
// in parallel.
type CompileCache struct {
	mu     sync.Mutex
	m      map[compileKey]*cacheEntry
	hits   int64
	misses int64
}

// compileKey identifies one compilation. compiler.Target is a plain
// value struct (scalars only), so the whole key is comparable; the
// bound params are flattened into a canonical string.
type compileKey struct {
	name   string
	params string
	target compiler.Target
}

type cacheEntry struct {
	once sync.Once
	comp *compiler.Compiled
	err  error
}

// NewCompileCache returns an empty cache.
func NewCompileCache() *CompileCache {
	return &CompileCache{m: map[compileKey]*cacheEntry{}}
}

// CacheStats reports cache effectiveness. The counts are deterministic
// for a fixed job set even under concurrency: exactly one miss is
// charged per distinct key, no matter which run gets there first.
type CacheStats struct {
	Hits   int64
	Misses int64
}

// Stats returns a snapshot of the hit/miss counters.
func (c *CompileCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses}
}

func paramsKey(params map[string]int64) string {
	if len(params) == 0 {
		return ""
	}
	names := make([]string, 0, len(params))
	for k := range params {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, k := range names {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(strconv.FormatInt(params[k], 10))
		b.WriteByte(',')
	}
	return b.String()
}

// Compile returns the memoized compilation of spec for the given
// bindings (nil = the spec's own Params) and target, compiling at
// most once per key. Exported for harnesses that need the Compiled
// itself (e.g. the vet cross-validation, which verifies the same
// schedule its Buffered run executes).
func (c *CompileCache) Compile(spec *workload.Spec, params map[string]int64, tgt compiler.Target) (*compiler.Compiled, error) {
	if params == nil {
		params = spec.Params
	}
	key := compileKey{name: spec.Name, params: paramsKey(params), target: tgt}
	c.mu.Lock()
	e, ok := c.m[key]
	if !ok {
		e = &cacheEntry{}
		c.m[key] = e
		c.misses++
	} else {
		c.hits++
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.comp, e.err = compiler.Compile(spec.Program(params), tgt)
	})
	return e.comp, e.err
}
