package driver

import (
	"reflect"
	"sync"
	"testing"

	"memhogs/internal/compiler"
	"memhogs/internal/rt"
	"memhogs/internal/workload"
)

func scaledSpec(t *testing.T, name string) *workload.Spec {
	t.Helper()
	spec, err := workload.ScaledByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// The four program versions need only three compilations: O (no
// hints) and P (prefetch only) are distinct targets, while R and B
// share one (prefetch + release both on).
func TestCompileCacheSharesTargets(t *testing.T) {
	spec := scaledSpec(t, "matvec")
	cache := NewCompileCache()
	for _, mode := range []rt.Mode{rt.ModeOriginal, rt.ModePrefetch, rt.ModeAggressive, rt.ModeBuffered} {
		cfg := TestRunConfig(mode)
		cfg.RT = rt.DefaultConfig(mode)
		cfg.Cache = cache
		if _, err := Run(spec, cfg); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
	}
	st := cache.Stats()
	if st.Misses != 3 {
		t.Errorf("misses = %d, want 3 (O, P, and shared R/B)", st.Misses)
	}
	if st.Hits != 1 {
		t.Errorf("hits = %d, want 1 (B reusing R's compilation)", st.Hits)
	}
}

// A cached run must be indistinguishable from an uncached one.
func TestCompileCacheResultsIdentical(t *testing.T) {
	spec := scaledSpec(t, "embar")
	cfg := TestRunConfig(rt.ModeBuffered)
	cfg.RT = rt.DefaultConfig(rt.ModeBuffered)
	plain, err := Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cache = NewCompileCache()
	cached, err := Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Run twice more off the warm cache: reuse must not perturb the run.
	warm, err := Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, cached) {
		t.Errorf("cached result differs from uncached:\n%+v\nvs\n%+v", cached, plain)
	}
	if !reflect.DeepEqual(plain, warm) {
		t.Errorf("warm-cache result differs from uncached:\n%+v\nvs\n%+v", warm, plain)
	}
	if st := cfg.Cache.Stats(); st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 1 miss + 1 hit", st)
	}
}

// Concurrent requests for one key charge exactly one miss and all get
// the same Compiled. Run with -race to check the entry handoff.
func TestCompileCacheConcurrentSameKey(t *testing.T) {
	spec := scaledSpec(t, "cgm")
	kcfg := TestRunConfig(rt.ModeBuffered).Kernel
	tgt := compiler.DefaultTarget(kcfg.PageSize, kcfg.UserMemPages)
	cache := NewCompileCache()
	const workers = 8
	comps := make([]*compiler.Compiled, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			comp, err := cache.Compile(spec, nil, tgt)
			if err != nil {
				t.Error(err)
				return
			}
			comps[i] = comp
		}()
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if comps[i] != comps[0] {
			t.Fatalf("worker %d got a different Compiled", i)
		}
	}
	st := cache.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Misses)
	}
	if st.Hits != workers-1 {
		t.Errorf("hits = %d, want %d", st.Hits, workers-1)
	}
}
