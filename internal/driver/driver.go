// Package driver assembles full experiment runs: it boots the
// simulated machine, compiles a benchmark for one of the paper's four
// program versions (O, P, R, B), wires up the PagingDirected PM and
// the run-time layer, optionally starts the interactive task, runs the
// simulation, and collects every statistic the paper's tables and
// figures need.
package driver

import (
	"fmt"

	"memhogs/internal/chaos"
	"memhogs/internal/compiler"
	"memhogs/internal/disk"
	"memhogs/internal/kernel"
	"memhogs/internal/mem"
	"memhogs/internal/pageout"
	"memhogs/internal/pdpm"
	"memhogs/internal/rt"
	"memhogs/internal/sim"
	"memhogs/internal/vm"
	"memhogs/internal/workload"
)

// RunConfig describes one experiment run.
type RunConfig struct {
	Kernel kernel.Config
	Mode   rt.Mode
	RT     rt.Config

	// Params override the spec's full-size bindings (nil = full size).
	Params map[string]int64

	// Repeat loops the out-of-core program until the horizon instead
	// of running it once (the paper's interactive experiments run the
	// out-of-core program "repeatedly").
	Repeat  bool
	Horizon sim.Time

	// InteractiveSleep enables the concurrent interactive task with
	// the given think time; negative disables it.
	InteractiveSleep sim.Time

	// TargetTweak, if non-nil, adjusts the compiler target (for
	// ablations).
	TargetTweak func(*compiler.Target)

	// Cache, if non-nil, memoizes compilation across runs. Campaigns
	// share one cache so each distinct (spec, params, target)
	// combination compiles once; the key is built from the final
	// target, so TargetTweak composes with caching.
	Cache *CompileCache

	// OnSystem, if non-nil, is invoked with the booted system before
	// any process starts (trace recorders, extra instrumentation).
	OnSystem func(*kernel.System)

	// Chaos, if non-nil, runs the experiment under the given fault
	// plan: an injector seeded from the plan is installed on every
	// layer before any process starts, and timed faults (memory
	// hot-unplug) are scheduled on the sim clock.
	Chaos *chaos.Plan

	// AuditEvery, if positive, runs kernel.Audit on that virtual-time
	// cadence; the run fails with the audit error if any tick finds an
	// inconsistency.
	AuditEvery sim.Time

	// AuditOnFault additionally audits immediately after every
	// injected fault (requires Chaos).
	AuditOnFault bool
}

// DefaultRunConfig returns a full-platform configuration for one
// program version with no interactive task.
func DefaultRunConfig(mode rt.Mode) RunConfig {
	return RunConfig{
		Kernel:           kernel.DefaultConfig(),
		Mode:             mode,
		RT:               rt.DefaultConfig(mode),
		Horizon:          30 * 60 * sim.Second,
		InteractiveSleep: -1,
	}
}

// TestRunConfig returns a scaled-down configuration for unit tests and
// Go benchmarks.
func TestRunConfig(mode rt.Mode) RunConfig {
	c := DefaultRunConfig(mode)
	c.Kernel = kernel.TestConfig()
	return c
}

// InteractiveStats reports the interactive task's experience.
type InteractiveStats struct {
	Enabled      bool
	Sweeps       int
	MeanResponse sim.Time
	MaxResponse  sim.Time
	MeanPageIns  float64 // pages read from disk per sweep (Fig 10c)
	TotalPageIns int64
	StolenPages  int64
}

// Result is everything one run produced.
type Result struct {
	Bench   string
	Mode    rt.Mode
	Elapsed sim.Time
	Done    bool // out-of-core program ran to completion (non-Repeat)
	Runs    int  // completed program iterations (Repeat mode)

	Times       [vm.NumBuckets]sim.Time // main-thread breakdown (Fig 7)
	WorkerTimes [vm.NumBuckets]sim.Time

	VM       vm.Stats
	Disk     disk.Stats
	PM       pdpm.Stats
	RT       rt.Stats
	Daemon   pageout.DaemonStats
	Releaser pageout.ReleaserStats
	Balancer pageout.BalancerStats
	Phys     mem.Stats
	Far      mem.FarStats // zero unless the run had a far tier

	CompileStats compiler.Stats
	DataBytes    int64
	TotalPages   int

	// Memory-lock contention on the out-of-core process's address
	// space (the paper's daemon-vs-fault-handler interference).
	MemlockAcquisitions int64
	MemlockContended    int64
	MemlockWait         sim.Time
	MemlockHold         sim.Time

	Interactive InteractiveStats

	// Chaos counts injected faults per site (all zero without a plan);
	// AuditTicks counts completed cadence audits.
	Chaos      chaos.Counts
	AuditTicks int

	// SimClamps counts schedules the event loop had to clamp to "now"
	// because the requested time was already in the past. Any non-zero
	// value is a latent caller bug (see Sim.ClampedSchedules).
	SimClamps int64
}

// StallResources returns the paper's "stall for unavailable resources"
// bucket: memory + locks + CPU.
func (r *Result) StallResources() sim.Time {
	return r.Times[vm.BucketStallMem] + r.Times[vm.BucketStallLock] + r.Times[vm.BucketStallCPU]
}

// TotalTime returns the sum of the main thread's buckets.
func (r *Result) TotalTime() sim.Time {
	var t sim.Time
	for _, d := range r.Times {
		t += d
	}
	return t
}

// Run executes one experiment.
func Run(spec *workload.Spec, cfg RunConfig) (*Result, error) {
	if err := cfg.Kernel.Validate(); err != nil {
		return nil, err
	}
	params := cfg.Params
	if params == nil {
		params = spec.Params
	}

	tgt := compiler.DefaultTarget(cfg.Kernel.PageSize, cfg.Kernel.UserMemPages)
	tgt.Prefetch = cfg.Mode.UsesPrefetch()
	tgt.Release = cfg.Mode.UsesRelease()
	if cfg.TargetTweak != nil {
		cfg.TargetTweak(&tgt)
	}
	var comp *compiler.Compiled
	var err error
	if cfg.Cache != nil {
		comp, err = cfg.Cache.Compile(spec, params, tgt)
	} else {
		comp, err = compiler.Compile(spec.Program(params), tgt)
	}
	if err != nil {
		return nil, fmt.Errorf("compile %s: %w", spec.Name, err)
	}
	cfg.Params = params
	return RunCompiled(spec.Name, comp, cfg)
}

// RunCompiled executes an already-compiled program (the public API's
// custom-program path). The compiled target's Prefetch/Release flags
// must match cfg.Mode.
func RunCompiled(name string, comp *compiler.Compiled, cfg RunConfig) (*Result, error) {
	if err := cfg.Kernel.Validate(); err != nil {
		return nil, err
	}
	img, err := comp.Bind(cfg.Params)
	if err != nil {
		return nil, fmt.Errorf("bind %s: %w", name, err)
	}

	sys := kernel.NewSystem(cfg.Kernel)
	if cfg.OnSystem != nil {
		cfg.OnSystem(sys)
	}

	// Continuous auditing: the first inconsistency stops the run and is
	// reported as the run's error, stamped with when it was found.
	var auditErr error
	audit := func() {
		if auditErr != nil {
			return
		}
		if err := sys.Audit(); err != nil {
			auditErr = fmt.Errorf("at t=%v: %w", sys.Now(), err)
			sys.Sim.Stop()
		}
	}

	var inj *chaos.Injector
	if cfg.Chaos != nil {
		// The injector must exist before the run-time layer is built:
		// rt.New copies System.Chaos.
		inj = chaos.NewInjector(sys.Sim, sys.Events, *cfg.Chaos)
		sys.SetChaos(inj)
		// Hot-unplug may not take so much memory that the daemon's
		// steal target becomes unreachable.
		maxOff := cfg.Kernel.UserMemPages - 2*cfg.Kernel.TargetFreePages
		if maxOff < 0 {
			maxOff = 0
		}
		inj.ScheduleMem(sys.Phys, maxOff, sys.KickDaemons)
		if sys.Far != nil {
			// Far-tier hot-unplug drains only free slots, so leaving
			// half the tier as a floor keeps demotions meaningful.
			inj.ScheduleFar(sys.Far, cfg.Kernel.Far.Pages/2)
		}
		if cfg.AuditOnFault {
			inj.OnFault = func(chaos.Site) { audit() }
		}
	}

	auditTicks := 0
	if cfg.AuditEvery > 0 {
		var tick func()
		tick = func() {
			audit()
			auditTicks++
			if auditErr == nil {
				sys.Sim.At(sys.Now()+cfg.AuditEvery, tick)
			}
		}
		sys.Sim.At(cfg.AuditEvery, tick)
	}

	proc := sys.NewProcess(name, img.TotalPages)
	var pm *pdpm.PM
	if cfg.Mode.UsesPrefetch() {
		pm = proc.AttachPM(0)
	}
	layer := rt.New(proc, pm, cfg.RT)

	var inter *Interactive
	if cfg.InteractiveSleep >= 0 {
		inter = StartInteractive(sys, cfg.InteractiveSleep)
	}

	res := &Result{Bench: name, Mode: cfg.Mode}
	runErrCh := make(chan error, 1)
	proc.Start(!cfg.Repeat, func(th *kernel.Thread) {
		layer.Bind(th)
		for {
			if err := img.Run(layer); err != nil {
				runErrCh <- err
				return
			}
			res.Runs++
			if !cfg.Repeat || (cfg.Horizon > 0 && th.Now() >= cfg.Horizon) {
				return
			}
		}
	})

	sys.Run(cfg.Horizon)
	select {
	case err := <-runErrCh:
		return nil, fmt.Errorf("run %s: %w", name, err)
	default:
	}
	if auditErr != nil {
		return nil, fmt.Errorf("audit %s: %w", name, auditErr)
	}

	res.Elapsed = proc.Elapsed()
	res.Done = proc.Done
	res.Times = proc.Times
	res.WorkerTimes = proc.WorkerTimes
	res.VM = proc.AS.Stats
	if pm != nil {
		res.PM = pm.Stats
	}
	res.RT = layer.Stats
	res.Disk = sys.Disks.Stats()
	res.Daemon = sys.DaemonStats()
	res.Releaser = sys.ReleaserStats()
	res.Balancer = sys.BalancerStats()
	res.Phys = sys.Phys.Stats()
	res.Far = sys.Far.Stats()
	res.CompileStats = comp.Stats
	res.DataBytes = img.DataBytes
	res.TotalPages = img.TotalPages
	res.MemlockAcquisitions = proc.AS.Memlock.Acquisitions
	res.MemlockContended = proc.AS.Memlock.Contended
	res.MemlockWait = proc.AS.Memlock.WaitTime
	res.MemlockHold = proc.AS.Memlock.HoldTime
	if inter != nil {
		res.Interactive = inter.Stats()
	}
	res.Chaos = inj.Counts()
	res.AuditTicks = auditTicks
	res.SimClamps = sys.Sim.ClampedSchedules()
	// Every run doubles as a whole-system consistency check.
	if err := sys.Audit(); err != nil {
		return nil, err
	}
	return res, nil
}

// RunAllVersions runs the four program versions of one benchmark with
// identical settings, mirroring the paper's O/P/R/B bars.
func RunAllVersions(spec *workload.Spec, base RunConfig) (map[rt.Mode]*Result, error) {
	out := map[rt.Mode]*Result{}
	for _, mode := range []rt.Mode{rt.ModeOriginal, rt.ModePrefetch, rt.ModeAggressive, rt.ModeBuffered} {
		cfg := base
		cfg.Mode = mode
		cfg.RT = rt.DefaultConfig(mode)
		r, err := Run(spec, cfg)
		if err != nil {
			return nil, err
		}
		out[mode] = r
	}
	return out, nil
}
