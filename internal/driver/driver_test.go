package driver

import (
	"testing"

	"memhogs/internal/rt"
	"memhogs/internal/sim"
	"memhogs/internal/vm"
	"memhogs/internal/workload"
)

func TestAllScaledBenchmarksRunAllVersions(t *testing.T) {
	for _, spec := range workload.AllScaled() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			results, err := RunAllVersions(spec, TestRunConfig(rt.ModeOriginal))
			if err != nil {
				t.Fatal(err)
			}
			for mode, r := range results {
				if !r.Done {
					t.Errorf("%s/%s did not finish", spec.Name, mode)
				}
				if r.Elapsed <= 0 {
					t.Errorf("%s/%s elapsed = %v", spec.Name, mode, r.Elapsed)
				}
				if r.VM.Touches == 0 {
					t.Errorf("%s/%s no touches", spec.Name, mode)
				}
			}
			o, p := results[rt.ModeOriginal], results[rt.ModePrefetch]
			rr, b := results[rt.ModeAggressive], results[rt.ModeBuffered]
			// Prefetching must issue prefetches; releasing must issue
			// releases.
			if p.PM.PrefetchRequests == 0 {
				t.Error("P version issued no prefetches")
			}
			if rr.RT.ReleaseIssued == 0 {
				t.Errorf("R version issued no releases (%+v)", rr.RT)
			}
			if b.RT.ReleaseCalls == 0 {
				t.Error("B version saw no release hints")
			}
			if o.PM.PrefetchRequests != 0 || o.RT.ReleaseCalls != 0 {
				t.Error("O version used hints")
			}
			// Prefetching must not increase I/O stall (at disk
			// saturation on the tiny test machine P can only match O,
			// so allow 10% tolerance).
			if o.Times[vm.BucketStallIO] > 0 &&
				p.Times[vm.BucketStallIO] > o.Times[vm.BucketStallIO]*11/10 {
				t.Errorf("prefetching increased I/O stall: O=%v P=%v",
					o.Times[vm.BucketStallIO], p.Times[vm.BucketStallIO])
			}
			// Releasing must cut the paging daemon's stealing relative
			// to prefetch-only (Table 3's effect).
			if rr.Daemon.Stolen > p.Daemon.Stolen {
				t.Errorf("aggressive releasing increased daemon stealing: P=%d R=%d",
					p.Daemon.Stolen, rr.Daemon.Stolen)
			}
		})
	}
}

func TestMatvecPrefetchHidesMostStall(t *testing.T) {
	spec := workload.MatvecScaled()
	results, err := RunAllVersions(spec, TestRunConfig(rt.ModeOriginal))
	if err != nil {
		t.Fatal(err)
	}
	o, p := results[rt.ModeOriginal], results[rt.ModePrefetch]
	if o.Times[vm.BucketStallIO] == 0 {
		t.Skip("no I/O stall in original run on this configuration")
	}
	// On the tiny test machine the original version already benefits
	// heavily from swap clustering, so just require improvement.
	frac := float64(p.Times[vm.BucketStallIO]) / float64(o.Times[vm.BucketStallIO])
	if frac >= 1.0 {
		t.Fatalf("prefetching did not reduce I/O stall (O=%v P=%v)",
			o.Times[vm.BucketStallIO], p.Times[vm.BucketStallIO])
	}
}

func TestReleasingReducesDaemonSoftFaults(t *testing.T) {
	spec := workload.EmbarScaled()
	results, err := RunAllVersions(spec, TestRunConfig(rt.ModeOriginal))
	if err != nil {
		t.Fatal(err)
	}
	p, r := results[rt.ModePrefetch], results[rt.ModeAggressive]
	// Figure 8: releasing collapses invalidation-caused soft faults.
	if r.VM.SoftFaultsDaemon > p.VM.SoftFaultsDaemon {
		t.Fatalf("releasing increased daemon soft faults: P=%d R=%d",
			p.VM.SoftFaultsDaemon, r.VM.SoftFaultsDaemon)
	}
}

func TestInteractiveSuffersUnderPrefetchOnlyAndRecoversWithRelease(t *testing.T) {
	spec := workload.MatvecScaled()
	base := TestRunConfig(rt.ModeOriginal)
	base.Repeat = true
	base.Horizon = 20 * sim.Second
	base.InteractiveSleep = 2 * sim.Second

	alone := AloneResponse(base.Kernel, base.InteractiveSleep, 5)
	if alone <= 0 {
		t.Fatal("no baseline response")
	}

	run := func(mode rt.Mode) *Result {
		cfg := base
		cfg.Mode = mode
		cfg.RT = rt.DefaultConfig(mode)
		r, err := Run(spec, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r.Interactive.Sweeps == 0 {
			t.Fatalf("%s: no interactive sweeps", mode)
		}
		return r
	}
	p := run(rt.ModePrefetch)
	b := run(rt.ModeBuffered)
	// Prefetch-only must hurt the interactive task badly; buffered
	// releasing must recover most of it (Figure 10).
	if p.Interactive.MeanResponse < 2*alone {
		t.Errorf("prefetch-only did not hurt interactive response: alone=%v P=%v",
			alone, p.Interactive.MeanResponse)
	}
	if b.Interactive.MeanResponse > p.Interactive.MeanResponse {
		t.Errorf("buffered releasing did not improve interactive response: P=%v B=%v",
			p.Interactive.MeanResponse, b.Interactive.MeanResponse)
	}
}

func TestPrefetchServiceNotChargedToApp(t *testing.T) {
	// "Because we use separate threads to issue the prefetch requests,
	// the prefetch service does not appear in the execution time of
	// the main application" (§4.3): the workers' CPU time must land in
	// WorkerTimes, and the app's own system time must stay close to
	// the original version's.
	spec := workload.EmbarScaled()
	o, err := Run(spec, TestRunConfig(rt.ModeOriginal))
	if err != nil {
		t.Fatal(err)
	}
	p, err := Run(spec, TestRunConfig(rt.ModePrefetch))
	if err != nil {
		t.Fatal(err)
	}
	if p.WorkerTimes[vm.BucketSystem] == 0 {
		t.Fatal("prefetch workers consumed no system time")
	}
	// The app's system time should not balloon relative to O (the
	// paper: "nearly identical across all versions").
	if p.Times[vm.BucketSystem] > o.Times[vm.BucketSystem]*2 {
		t.Fatalf("app system time inflated by prefetching: O=%v P=%v",
			o.Times[vm.BucketSystem], p.Times[vm.BucketSystem])
	}
}

func TestReactiveModeDonatesOnDemand(t *testing.T) {
	spec := workload.EmbarScaled()
	r, err := Run(spec, TestRunConfig(rt.ModeReactive))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Done {
		t.Fatal("reactive run did not finish")
	}
	// No pro-active releases; the daemon pulled victims through the
	// donor callback instead of its clock.
	if r.RT.ReleaseIssued != 0 {
		t.Fatalf("reactive mode issued %d pro-active releases", r.RT.ReleaseIssued)
	}
	if r.Daemon.Donated == 0 {
		t.Fatalf("daemon never used the donor: %+v", r.Daemon)
	}
	// Donations should displace most clock stealing from the hog.
	if r.Daemon.Stolen > r.Daemon.Donated {
		t.Logf("note: clock still stole %d vs %d donated", r.Daemon.Stolen, r.Daemon.Donated)
	}
}

func TestReactiveStillHurtsInteractive(t *testing.T) {
	// The paper's §2.2 argument: a reactive scheme reclaims only when
	// the OS decides memory is short, so the interactive task's pages
	// are already exposed to the daemon's pressure machinery. Compare
	// reactive against pro-active buffering.
	spec := workload.MatvecScaled()
	base := TestRunConfig(rt.ModeReactive)
	base.Repeat = true
	base.Horizon = 15 * sim.Second
	base.InteractiveSleep = 2 * sim.Second
	reactive, err := Run(spec, base)
	if err != nil {
		t.Fatal(err)
	}
	base.Mode = rt.ModeBuffered
	base.RT = rt.DefaultConfig(rt.ModeBuffered)
	buffered, err := Run(spec, base)
	if err != nil {
		t.Fatal(err)
	}
	if reactive.Interactive.MeanResponse < buffered.Interactive.MeanResponse {
		t.Fatalf("reactive protected the interactive task better than pro-active: %v vs %v",
			reactive.Interactive.MeanResponse, buffered.Interactive.MeanResponse)
	}
}

func TestRepeatModeLoopsProgram(t *testing.T) {
	spec := workload.MatvecScaled()
	cfg := TestRunConfig(rt.ModePrefetch)
	cfg.Repeat = true
	cfg.Horizon = 30 * sim.Second
	r, err := Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Runs < 2 {
		t.Fatalf("repeat mode completed %d runs in %v", r.Runs, r.Elapsed)
	}
}

func TestResultAccountingConsistency(t *testing.T) {
	spec := workload.MatvecScaled()
	r, err := Run(spec, TestRunConfig(rt.ModeBuffered))
	if err != nil {
		t.Fatal(err)
	}
	// The main thread's bucket sum cannot exceed elapsed time, and
	// should cover most of it (everything the thread does is
	// accounted).
	total := r.TotalTime()
	if total > r.Elapsed {
		t.Fatalf("accounted %v exceeds elapsed %v", total, r.Elapsed)
	}
	if float64(total) < 0.85*float64(r.Elapsed) {
		t.Fatalf("accounted only %v of %v elapsed", total, r.Elapsed)
	}
}
