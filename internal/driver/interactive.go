package driver

import (
	"memhogs/internal/kernel"
	"memhogs/internal/sim"
)

// Interactive emulates the paper's interactive task (§1.1): it
// repeatedly touches a 1 MB data set, records the time the sweep took
// (the "response time"), then sleeps for a fixed think time. Its pages
// are what the memory hog steals.
type Interactive struct {
	P       *kernel.Process
	Sleep   sim.Time
	Pages   int
	PerPage sim.Time

	responses []sim.Time
	pageIns   []int64
}

// InteractivePages is the task's data set in pages: 1 MB of 16 KB
// pages (the paper reports a 65-page maximum fault count; the extra
// page is the code page, which we fold into the data sweep).
const InteractivePages = 64

// StartInteractive launches the interactive task on a booted system.
func StartInteractive(sys *kernel.System, sleep sim.Time) *Interactive {
	it := &Interactive{
		Sleep:   sleep,
		Pages:   InteractivePages,
		PerPage: 15 * sim.Microsecond,
	}
	it.P = sys.NewProcess("interactive", it.Pages)
	it.P.Start(false, func(th *kernel.Thread) {
		for {
			start := th.Now()
			before := it.P.AS.Stats.PageIns
			for vpn := 0; vpn < it.Pages; vpn++ {
				th.Touch(vpn, false)
				th.User(it.PerPage)
			}
			th.FlushUser()
			it.responses = append(it.responses, th.Now()-start)
			it.pageIns = append(it.pageIns, it.P.AS.Stats.PageIns-before)
			th.SleepIdle(it.Sleep)
		}
	})
	return it
}

// Stats summarizes the sweeps, dropping the first (cold start) sweep.
func (it *Interactive) Stats() InteractiveStats {
	st := InteractiveStats{Enabled: true, StolenPages: it.P.AS.Stats.StolenPages}
	if len(it.responses) <= 1 {
		return st
	}
	resp := it.responses[1:]
	pins := it.pageIns[1:]
	st.Sweeps = len(resp)
	var sum sim.Time
	for _, r := range resp {
		sum += r
		if r > st.MaxResponse {
			st.MaxResponse = r
		}
	}
	st.MeanResponse = MeanTime(sum, len(resp))
	var pi int64
	for _, p := range pins {
		pi += p
	}
	st.TotalPageIns = pi
	st.MeanPageIns = float64(pi) / float64(len(pins))
	return st
}

// MeanTime divides a virtual-time sum by a sample count rounding half
// away from zero, the same convention as the largest-remainder
// rounding in metrics tables. A truncating integer division here would
// bias every mean (and every float ratio built on it, Figure 10 and
// claims C5/C6) low by up to one nanosecond per sample — harmless for
// one run, visibly inconsistent once aggregates are compared against
// table renderings.
func MeanTime(sum sim.Time, n int) sim.Time {
	if n <= 0 {
		return 0
	}
	return (sum + sim.Time(n)/2) / sim.Time(n)
}

// AloneResponse measures the interactive task's response time on an
// otherwise idle machine — the normalization baseline of Figure 10.
func AloneResponse(kcfg kernel.Config, sleep sim.Time, sweeps int) sim.Time {
	sys := kernel.NewSystem(kcfg)
	it := StartInteractive(sys, sleep)
	horizon := sim.Time(sweeps+2) * (sleep + 100*sim.Millisecond)
	if horizon < 10*sim.Second {
		horizon = 10 * sim.Second
	}
	sys.Run(horizon)
	st := it.Stats()
	if st.Sweeps == 0 {
		return 0
	}
	return st.MeanResponse
}
