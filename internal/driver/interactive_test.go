package driver

import (
	"testing"

	"memhogs/internal/compiler"
	"memhogs/internal/kernel"
	"memhogs/internal/lang"
	"memhogs/internal/rt"
	"memhogs/internal/sim"
	"memhogs/internal/workload"
)

func TestAloneResponseIsComputeBound(t *testing.T) {
	cfg := kernel.TestConfig()
	resp := AloneResponse(cfg, sim.Second, 5)
	// 64 pages x 15us = 960us of computation; allow scheduling noise.
	if resp < 900*sim.Microsecond || resp > 2*sim.Millisecond {
		t.Fatalf("alone response = %v, want ~960us", resp)
	}
}

func TestInteractiveStatsDropColdSweep(t *testing.T) {
	sys := kernel.NewSystem(kernel.TestConfig())
	it := StartInteractive(sys, 100*sim.Millisecond)
	sys.Run(2 * sim.Second)
	st := it.Stats()
	if st.Sweeps < 5 {
		t.Fatalf("sweeps = %d", st.Sweeps)
	}
	// After the first (cold) sweep is dropped, steady-state sweeps on
	// an idle machine read nothing from disk.
	if st.MeanPageIns != 0 {
		t.Fatalf("steady-state page-ins = %v, want 0", st.MeanPageIns)
	}
	if st.MeanResponse <= 0 || st.MaxResponse < st.MeanResponse {
		t.Fatalf("response stats inconsistent: %+v", st)
	}
}

func TestInteractiveStatsEmptyWhenNoSweeps(t *testing.T) {
	sys := kernel.NewSystem(kernel.TestConfig())
	it := StartInteractive(sys, sim.Second)
	sys.Run(sim.Millisecond) // too short for even one sweep
	st := it.Stats()
	if st.Sweeps != 0 || st.MeanResponse != 0 {
		t.Fatalf("expected empty stats, got %+v", st)
	}
}

func TestRunCompiledCustomProgram(t *testing.T) {
	prog := lang.MustParse(`
program custom
param N
array a[4096] of float64
for i = 0 to N-1 {
    a[i] = a[i] + 1 @ 20
}
`)
	cfg := TestRunConfig(rt.ModeBuffered)
	tgt := compiler.DefaultTarget(cfg.Kernel.PageSize, cfg.Kernel.UserMemPages)
	comp, err := compiler.Compile(prog, tgt)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Params = map[string]int64{"N": 4096}
	r, err := RunCompiled("custom", comp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Done || r.VM.PageIns == 0 {
		t.Fatalf("custom program did not run: %+v", r.VM)
	}
	if r.Releaser.Freed == 0 {
		t.Fatal("buffered custom program released nothing")
	}
}

func TestMemlockStatsInResult(t *testing.T) {
	spec := mustScaled(t, "mgrid")
	r, err := Run(spec, TestRunConfig(rt.ModePrefetch))
	if err != nil {
		t.Fatal(err)
	}
	if r.MemlockAcquisitions == 0 || r.MemlockHold == 0 {
		t.Fatalf("memlock stats missing: %+v acq, %v hold",
			r.MemlockAcquisitions, r.MemlockHold)
	}
}

func TestOnSystemHook(t *testing.T) {
	spec := mustScaled(t, "matvec")
	cfg := TestRunConfig(rt.ModeOriginal)
	called := false
	cfg.OnSystem = func(sys *kernel.System) {
		called = true
		if sys.Phys.NumFrames() != cfg.Kernel.UserMemPages {
			t.Errorf("hook got wrong system")
		}
	}
	if _, err := Run(spec, cfg); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("OnSystem hook not invoked")
	}
}

func TestTargetTweakApplied(t *testing.T) {
	spec := mustScaled(t, "fftpde")
	cfg := TestRunConfig(rt.ModeBuffered)
	cfg.TargetTweak = func(tg *compiler.Target) { tg.Adaptive = true }
	r, err := Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.CompileStats.MisdetectedReuse != 0 {
		t.Fatalf("adaptive tweak ignored: %+v", r.CompileStats)
	}
}

func TestDeterministicRuns(t *testing.T) {
	spec := mustScaled(t, "buk")
	run := func() *Result {
		r, err := Run(spec, TestRunConfig(rt.ModeAggressive))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Elapsed != b.Elapsed || a.VM != b.VM || a.Daemon != b.Daemon {
		t.Fatalf("nondeterministic results:\n%+v\nvs\n%+v", a.VM, b.VM)
	}
}

func mustScaled(t *testing.T, name string) *workload.Spec {
	t.Helper()
	s, err := workload.ScaledByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
