package driver

import (
	"fmt"

	"memhogs/internal/compiler"
	"memhogs/internal/kernel"
	"memhogs/internal/pdpm"
	"memhogs/internal/rt"
	"memhogs/internal/sim"
	"memhogs/internal/vm"
	"memhogs/internal/workload"
)

// PairResult reports one process of a two-hog run.
type PairResult struct {
	Bench   string
	Mode    rt.Mode
	Elapsed sim.Time
	Done    bool
	Times   [vm.NumBuckets]sim.Time
	VM      vm.Stats
	Stolen  int64 // pages the daemon took from this process
}

// RunPair runs two out-of-core benchmarks concurrently on one machine,
// both in the same program version — the multiprogramming scenario the
// paper's introduction motivates but its evaluation (one hog plus the
// interactive task) does not measure. It answers: does releasing still
// help when the "other application" is another memory hog?
func RunPair(nameA, nameB string, mode rt.Mode, kcfg kernel.Config, scaled bool, horizon sim.Time) (*PairResult, *PairResult, error) {
	lookup := workload.ByName
	if scaled {
		lookup = workload.ScaledByName
	}
	specA, err := lookup(nameA)
	if err != nil {
		return nil, nil, err
	}
	specB, err := lookup(nameB)
	if err != nil {
		return nil, nil, err
	}

	sys := kernel.NewSystem(kcfg)
	type side struct {
		spec *workload.Spec
		res  *PairResult
		proc *kernel.Process
	}
	sides := []*side{{spec: specA}, {spec: specB}}
	runErrCh := make(chan error, len(sides))
	for _, s := range sides {
		prog := s.spec.Program(nil)
		tgt := compiler.DefaultTarget(kcfg.PageSize, kcfg.UserMemPages)
		tgt.Prefetch = mode.UsesPrefetch()
		tgt.Release = mode.UsesRelease()
		comp, err := compiler.Compile(prog, tgt)
		if err != nil {
			return nil, nil, fmt.Errorf("compile %s: %w", s.spec.Name, err)
		}
		img, err := comp.Bind(s.spec.Params)
		if err != nil {
			return nil, nil, fmt.Errorf("bind %s: %w", s.spec.Name, err)
		}
		s.proc = sys.NewProcess(s.spec.Name, img.TotalPages)
		var pm *pdpm.PM
		if mode.UsesPrefetch() {
			pm = s.proc.AttachPM(0)
		}
		layer := rt.New(s.proc, pm, rt.DefaultConfig(mode))
		s.res = &PairResult{Bench: s.spec.Name, Mode: mode}
		s.proc.Start(false, func(th *kernel.Thread) {
			layer.Bind(th)
			if err := img.Run(layer); err != nil {
				runErrCh <- err
			}
		})
	}

	sys.Run(horizon)
	select {
	case err := <-runErrCh:
		return nil, nil, err
	default:
	}
	if err := sys.Audit(); err != nil {
		return nil, nil, err
	}
	for _, s := range sides {
		s.res.Elapsed = s.proc.Elapsed()
		s.res.Done = s.proc.Done
		s.res.Times = s.proc.Times
		s.res.VM = s.proc.AS.Stats
		s.res.Stolen = s.proc.AS.Stats.StolenPages
	}
	return sides[0].res, sides[1].res, nil
}
