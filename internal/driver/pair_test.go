package driver

import (
	"testing"

	"memhogs/internal/kernel"
	"memhogs/internal/rt"
	"memhogs/internal/sim"
)

func TestRunPairCompletes(t *testing.T) {
	a, b, err := RunPair("matvec", "embar", rt.ModePrefetch, kernel.TestConfig(), true, 5*60*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Done || !b.Done {
		t.Fatalf("pair did not finish: %v / %v", a.Done, b.Done)
	}
	if a.VM.Touches == 0 || b.VM.Touches == 0 {
		t.Fatal("a side did no work")
	}
}

func TestPairReleasingReducesMutualStealing(t *testing.T) {
	kcfg := kernel.TestConfig()
	horizon := 5 * 60 * sim.Second
	pa, pb, err := RunPair("matvec", "mgrid", rt.ModePrefetch, kcfg, true, horizon)
	if err != nil {
		t.Fatal(err)
	}
	ra, rb, err := RunPair("matvec", "mgrid", rt.ModeAggressive, kcfg, true, horizon)
	if err != nil {
		t.Fatal(err)
	}
	stolenP := pa.Stolen + pb.Stolen
	stolenR := ra.Stolen + rb.Stolen
	if stolenR > stolenP/2 {
		t.Fatalf("releasing did not cut mutual stealing: P=%d R=%d", stolenP, stolenR)
	}
	// And neither hog should get slower from the other's releases.
	if ra.Elapsed > pa.Elapsed*12/10 {
		t.Fatalf("matvec slower with releasing in the duel: %v vs %v", ra.Elapsed, pa.Elapsed)
	}
}

func TestPairUnknownBenchmark(t *testing.T) {
	if _, _, err := RunPair("nosuch", "embar", rt.ModeOriginal, kernel.TestConfig(), true, sim.Second); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}
