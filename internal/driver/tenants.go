package driver

import (
	"fmt"
	"sort"

	"memhogs/internal/chaos"
	"memhogs/internal/compiler"
	"memhogs/internal/kernel"
	"memhogs/internal/mem"
	"memhogs/internal/pageout"
	"memhogs/internal/pdpm"
	"memhogs/internal/rt"
	"memhogs/internal/sim"
	"memhogs/internal/workload"
)

// TenantConfig describes one multi-tenant run: a population of memory
// hogs (the out-of-core benchmark, looped) colliding with an open-loop
// Poisson arrival process of short interactive jobs on a NUMA-sharded
// machine. The deliverable is the job response-time tail (p50/p99/
// p999), not a single-run mean — the metric reclaim sharding is
// supposed to protect.
type TenantConfig struct {
	Kernel kernel.Config // set Kernel.Nodes for a sharded machine
	Mode   rt.Mode       // hog program version (O, P, R, B)
	RT     rt.Config

	// Hogs is how many copies of the benchmark run concurrently, each
	// repeat-looping until the horizon.
	Hogs int

	// Params override the hog spec's full-size bindings (nil = full).
	Params map[string]int64

	// JobPages and JobPerPage shape one interactive job: it touches
	// JobPages fresh pages, charging JobPerPage of compute per page,
	// then exits. Response time = completion - arrival.
	JobPages   int
	JobPerPage sim.Time

	// MeanInterarrival is the open-loop arrival process's mean gap;
	// arrivals are exponential draws from a dedicated sim.Rand stream
	// seeded by Seed, so the schedule is deterministic and independent
	// of how loaded the machine gets (jobs arrive whether or not
	// earlier jobs finished — that is what makes the tail honest).
	MeanInterarrival sim.Time

	Horizon sim.Time
	Seed    uint64

	// Cache, if non-nil, memoizes hog compilation across runs.
	Cache *CompileCache

	// OnSystem, Chaos, AuditEvery, AuditOnFault mirror RunConfig.
	OnSystem     func(*kernel.System)
	Chaos        *chaos.Plan
	AuditEvery   sim.Time
	AuditOnFault bool
}

// DefaultTenantConfig returns the paper-scale machine sharded into 4
// nodes with two hogs and a 200 ms mean job arrival gap.
func DefaultTenantConfig(mode rt.Mode) TenantConfig {
	kcfg := kernel.DefaultConfig()
	kcfg.Nodes = 4
	return TenantConfig{
		Kernel:           kcfg,
		Mode:             mode,
		RT:               rt.DefaultConfig(mode),
		Hogs:             2,
		JobPages:         32,
		JobPerPage:       15 * sim.Microsecond,
		MeanInterarrival: 200 * sim.Millisecond,
		Horizon:          60 * sim.Second,
		Seed:             1,
	}
}

// maxTenantJobs bounds the arrival schedule so a degenerate
// mean-interarrival cannot enqueue unbounded work.
const maxTenantJobs = 4096

// TenantResult is everything one multi-tenant run produced.
type TenantResult struct {
	Bench string
	Mode  rt.Mode
	Nodes int
	Hogs  int

	HogRuns   int // completed hog iterations across the population
	Arrived   int // jobs whose arrival fired before the horizon
	Completed int // jobs that finished before the run ended

	// Response-time percentiles over completed jobs (nearest-rank).
	P50, P99, P999, Max sim.Time

	Phys     mem.Stats
	Daemon   pageout.DaemonStats
	Releaser pageout.ReleaserStats
	Balancer pageout.BalancerStats

	Chaos      chaos.Counts
	AuditTicks int
}

// Percentile returns the q-quantile (0 < q <= 1) of an ascending
// sorted slice by the nearest-rank definition sorted[ceil(q*n)-1] —
// p999 of 1000 samples is the 1000th, of 2000 the 1999th. Zero
// samples yield zero.
func Percentile(sorted []sim.Time, q float64) sim.Time {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	rank := int(float64(n)*q + 0.9999999999)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// RunTenants executes one multi-tenant experiment.
func RunTenants(spec *workload.Spec, cfg TenantConfig) (*TenantResult, error) {
	if err := cfg.Kernel.Validate(); err != nil {
		return nil, err
	}
	if cfg.Hogs < 0 {
		return nil, fmt.Errorf("tenants: negative hog count %d", cfg.Hogs)
	}
	if cfg.JobPages <= 0 || cfg.MeanInterarrival <= 0 || cfg.Horizon <= 0 {
		return nil, fmt.Errorf("tenants: JobPages, MeanInterarrival and Horizon must be positive")
	}
	params := cfg.Params
	if params == nil {
		params = spec.Params
	}
	tgt := compiler.DefaultTarget(cfg.Kernel.PageSize, cfg.Kernel.UserMemPages)
	tgt.Prefetch = cfg.Mode.UsesPrefetch()
	tgt.Release = cfg.Mode.UsesRelease()
	var comp *compiler.Compiled
	var err error
	if cfg.Cache != nil {
		comp, err = cfg.Cache.Compile(spec, params, tgt)
	} else {
		comp, err = compiler.Compile(spec.Program(params), tgt)
	}
	if err != nil {
		return nil, fmt.Errorf("compile %s: %w", spec.Name, err)
	}

	sys := kernel.NewSystem(cfg.Kernel)
	if cfg.OnSystem != nil {
		cfg.OnSystem(sys)
	}

	var auditErr error
	audit := func() {
		if auditErr != nil {
			return
		}
		if err := sys.Audit(); err != nil {
			auditErr = fmt.Errorf("at t=%v: %w", sys.Now(), err)
			sys.Sim.Stop()
		}
	}
	var inj *chaos.Injector
	if cfg.Chaos != nil {
		inj = chaos.NewInjector(sys.Sim, sys.Events, *cfg.Chaos)
		sys.SetChaos(inj)
		maxOff := cfg.Kernel.UserMemPages - 2*cfg.Kernel.TargetFreePages
		if maxOff < 0 {
			maxOff = 0
		}
		inj.ScheduleMem(sys.Phys, maxOff, sys.KickDaemons)
		if cfg.AuditOnFault {
			inj.OnFault = func(chaos.Site) { audit() }
		}
	}
	auditTicks := 0
	if cfg.AuditEvery > 0 {
		var tick func()
		tick = func() {
			audit()
			auditTicks++
			if auditErr == nil {
				sys.Sim.At(sys.Now()+cfg.AuditEvery, tick)
			}
		}
		sys.Sim.At(cfg.AuditEvery, tick)
	}

	res := &TenantResult{
		Bench: spec.Name,
		Mode:  cfg.Mode,
		Nodes: sys.Phys.Nodes(),
		Hogs:  cfg.Hogs,
	}
	runErrCh := make(chan error, cfg.Hogs)

	// The hog population: each hog is its own process (so home-node
	// placement spreads them round-robin) with its own bound image and
	// run-time layer, looping until the horizon.
	for h := 0; h < cfg.Hogs; h++ {
		img, err := comp.Bind(params)
		if err != nil {
			return nil, fmt.Errorf("bind %s: %w", spec.Name, err)
		}
		proc := sys.NewProcess(fmt.Sprintf("hog%d", h), img.TotalPages)
		var pm *pdpm.PM
		if cfg.Mode.UsesPrefetch() {
			pm = proc.AttachPM(0)
		}
		layer := rt.New(proc, pm, cfg.RT)
		proc.Start(false, func(th *kernel.Thread) {
			layer.Bind(th)
			for {
				if err := img.Run(layer); err != nil {
					runErrCh <- err
					return
				}
				res.HogRuns++
				if cfg.Horizon > 0 && th.Now() >= cfg.Horizon {
					return
				}
			}
		})
	}

	// The open-loop arrival schedule is drawn up front from its own
	// stream: job k's arrival time does not depend on anything the
	// simulation does.
	rng := sim.NewRand(cfg.Seed*0x9e3779b97f4a7c15 + 0x74656e616e7473)
	var arrivals []sim.Time
	for t := rng.Exp(cfg.MeanInterarrival); t < cfg.Horizon && len(arrivals) < maxTenantJobs; t += rng.Exp(cfg.MeanInterarrival) {
		arrivals = append(arrivals, t)
	}
	responses := make([]sim.Time, 0, len(arrivals))
	for i, at := range arrivals {
		i, at := i, at
		sys.Sim.At(at, func() {
			res.Arrived++
			job := sys.NewProcess(fmt.Sprintf("job%d", i), cfg.JobPages)
			job.Start(false, func(th *kernel.Thread) {
				for vpn := 0; vpn < cfg.JobPages; vpn++ {
					th.Touch(vpn, true)
					th.User(cfg.JobPerPage)
				}
				th.FlushUser()
				res.Completed++
				responses = append(responses, th.Now()-at)
			})
		})
	}

	sys.Run(cfg.Horizon)
	select {
	case err := <-runErrCh:
		return nil, fmt.Errorf("run %s: %w", spec.Name, err)
	default:
	}
	if auditErr != nil {
		return nil, fmt.Errorf("audit %s: %w", spec.Name, auditErr)
	}

	sort.Slice(responses, func(a, b int) bool { return responses[a] < responses[b] })
	res.P50 = Percentile(responses, 0.50)
	res.P99 = Percentile(responses, 0.99)
	res.P999 = Percentile(responses, 0.999)
	if n := len(responses); n > 0 {
		res.Max = responses[n-1]
	}
	res.Phys = sys.Phys.Stats()
	res.Daemon = sys.DaemonStats()
	res.Releaser = sys.ReleaserStats()
	res.Balancer = sys.BalancerStats()
	res.Chaos = inj.Counts()
	res.AuditTicks = auditTicks
	// Every run doubles as a whole-system consistency check.
	if err := sys.Audit(); err != nil {
		return nil, err
	}
	return res, nil
}
