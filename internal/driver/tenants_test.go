package driver

import (
	"reflect"
	"testing"

	"memhogs/internal/chaos"
	"memhogs/internal/kernel"
	"memhogs/internal/rt"
	"memhogs/internal/sim"
	"memhogs/internal/workload"
)

// TestMeanTimeRounding pins the integer mean convention: half away
// from zero, matching the largest-remainder rounding the metrics
// tables use. The old code truncated, so a mean of 4.5 printed as 4
// while the table column it fed rounded to 5.
func TestMeanTimeRounding(t *testing.T) {
	cases := []struct {
		sum  sim.Time
		n    int
		want sim.Time
	}{
		{0, 0, 0},
		{10, 0, 0},
		{10, 4, 3}, // 2.5 -> 3
		{9, 2, 5},  // 4.5 -> 5
		{11, 2, 6}, // 5.5 -> 6
		{7, 3, 2},  // 2.33 -> 2
		{8, 3, 3},  // 2.67 -> 3
		{100, 10, 10},
	}
	for _, c := range cases {
		if got := MeanTime(c.sum, c.n); got != c.want {
			t.Errorf("MeanTime(%d, %d) = %d, want %d", c.sum, c.n, got, c.want)
		}
	}
}

func TestPercentileNearestRank(t *testing.T) {
	sorted := make([]sim.Time, 1000)
	for i := range sorted {
		sorted[i] = sim.Time(i + 1) // 1..1000
	}
	cases := []struct {
		q    float64
		want sim.Time
	}{
		{0.50, 500},
		{0.99, 990},
		{0.999, 999},
		{1.0, 1000},
		{0.001, 1},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.q); got != c.want {
			t.Errorf("Percentile(1..1000, %v) = %d, want %d", c.q, got, c.want)
		}
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("Percentile(nil) = %d, want 0", got)
	}
	one := []sim.Time{7}
	for _, q := range []float64{0.001, 0.5, 0.999, 1} {
		if got := Percentile(one, q); got != 7 {
			t.Errorf("Percentile([7], %v) = %d, want 7", q, got)
		}
	}
}

func testTenantConfig() TenantConfig {
	cfg := DefaultTenantConfig(rt.ModeAggressive)
	cfg.Kernel = kernel.TestConfig()
	cfg.Kernel.Nodes = 4
	cfg.JobPages = 16
	cfg.MeanInterarrival = 100 * sim.Millisecond
	cfg.Horizon = 3 * sim.Second
	return cfg
}

// TestRunTenantsDeterministic runs the identical multi-tenant config
// twice and requires bit-identical results — the sharded kernel, the
// balancer, and the open-loop arrival stream must all be functions of
// the config alone.
func TestRunTenantsDeterministic(t *testing.T) {
	spec, err := workload.ScaledByName("matvec")
	if err != nil {
		t.Fatal(err)
	}
	a, err := RunTenants(spec, testTenantConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTenants(spec, testTenantConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical runs differ:\n%+v\n%+v", a, b)
	}
	if a.Arrived == 0 || a.Completed == 0 {
		t.Fatalf("no job traffic: %+v", a)
	}
	if a.Nodes != 4 {
		t.Fatalf("Nodes = %d, want 4", a.Nodes)
	}
	if a.Phys.LocalAllocs == 0 {
		t.Fatalf("no node-local allocations recorded: %+v", a.Phys)
	}
}

// TestRunTenantsAuditUnderNodeScopedUnplug hot-unplugs a single node's
// region mid-run with the continuous audit armed: per-node free-list
// invariants, the packed bitmap, and the balancer's books must hold
// through a scoped shrink/grow cycle.
func TestRunTenantsAuditUnderNodeScopedUnplug(t *testing.T) {
	spec, err := workload.ScaledByName("matvec")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := chaos.ParsePlan("seed=11;mem-shrink:at=50ms,mag=24,node=1;mem-grow:at=400ms,mag=24,node=1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testTenantConfig()
	cfg.Chaos = &plan
	cfg.AuditEvery = 50 * sim.Millisecond
	cfg.AuditOnFault = true
	res, err := RunTenants(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chaos.Get(chaos.MemShrink) == 0 || res.Chaos.Get(chaos.MemGrow) == 0 {
		t.Fatalf("scoped unplug did not fire: %+v", res.Chaos.Map())
	}
	if res.AuditTicks == 0 {
		t.Fatal("cadence audit never ran")
	}
}
