// Package events is the memory system's flight recorder: a typed,
// capacity-bounded ring buffer of decision-point events (faults,
// daemon sweeps and steals, releaser outcomes, run-time hint
// filtering, shared-page updates) stamped with virtual time, plus an
// exact per-kind counter registry that keeps counting even after the
// ring starts dropping.
//
// The sampling recorder in internal/trace answers "what did the gauges
// look like every N milliseconds"; this package answers "what exactly
// happened, in order". Recording is off by default: every layer holds
// a *Recorder that is nil until kernel.System.SetEvents installs one,
// and Emit on a nil Recorder returns immediately, so instrumented hot
// paths cost one call and one branch when disabled (see
// BenchmarkEmitDisabled).
package events

import (
	"memhogs/internal/sim"
)

// Kind is the event type. The set mirrors the decision points of every
// layer the paper's figures talk about.
type Kind uint8

// Event kinds. A and B are kind-specific values; see argLabels.
const (
	FaultSoft         Kind = iota // vm: soft fault (A=1 when daemon-caused)
	FaultRescue                   // vm: free-list rescue (A=1 when on a prefetch)
	FaultHard                     // vm: fault requiring disk I/O
	PageIn                        // vm: page became resident (A: 0 fault, 1 readahead, 2 prefetch)
	DaemonWake                    // daemon: activation (A=free pages)
	DaemonClear                   // daemon: cleared a simulated reference bit
	DaemonSteal                   // daemon: stole a page (A=free after, B=1 for a maxrss trim)
	DaemonDonated                 // daemon: reclaimed a volunteered page (reactive §2.2)
	ReleaserFree                  // releaser: freed a requested page (B=1 when dirty)
	ReleaserSkipRef               // releaser: skipped, referenced since the request
	ReleaserSkipGone              // releaser: skipped, no longer resident
	RTPrefetchFilter              // rt: prefetch hint dropped by the bitmap check
	RTPrefetchIssue               // rt: prefetch hint handed to a worker
	RTPrefetchDrop                // rt: prefetch work queue overflow
	RTReleaseDup                  // rt: one-request-behind duplicate drop
	RTReleaseNotRes               // rt: bitmap says the page is not in memory
	RTReleaseBuffer               // rt: hint parked in a priority queue (A=priority)
	RTReleaseOverflow             // rt: buffered queue hit its cap
	RTReleaseIssue                // rt: batch sent to the OS (A=#pages)
	RTPressureDrain               // rt: near-limit drain (A=current, B=limit)
	PMRefresh                     // pdpm: shared-page update (A=current, B=limit)
	PMPrefetchCall                // pdpm: prefetch system call (A=vm.PrefetchResult)
	PMReleaseCall                 // pdpm: release system call (A=#pages)
	ChaosInject                   // chaos: injected fault (Target=site, A=magnitude)
	AllocLocal                    // mem: frame allocated from the owner's home node (A=node)
	AllocRemote                   // mem: frame stolen from another node (A=home, B=donor)
	BalancerMigrate               // balancer: free frames migrated (Target=dst node, A=#frames, B=src)
	FaultFar                      // vm: fault on a far-resident page (promotes, no disk I/O)
	TierDemote                    // releaser: page demoted DRAM -> far (A=priority, B=1 when dirty)
	TierPromote                   // vm: page promoted far -> DRAM (A=1 via prefetch, B=1 when dirty)
	KindCount
)

var kindNames = [KindCount]string{
	FaultSoft:         "fault-soft",
	FaultRescue:       "fault-rescue",
	FaultHard:         "fault-hard",
	PageIn:            "page-in",
	DaemonWake:        "daemon-wake",
	DaemonClear:       "daemon-clear",
	DaemonSteal:       "daemon-steal",
	DaemonDonated:     "daemon-donated",
	ReleaserFree:      "releaser-free",
	ReleaserSkipRef:   "releaser-skip-ref",
	ReleaserSkipGone:  "releaser-skip-gone",
	RTPrefetchFilter:  "rt-prefetch-filter",
	RTPrefetchIssue:   "rt-prefetch-issue",
	RTPrefetchDrop:    "rt-prefetch-drop",
	RTReleaseDup:      "rt-release-dup",
	RTReleaseNotRes:   "rt-release-notresident",
	RTReleaseBuffer:   "rt-release-buffer",
	RTReleaseOverflow: "rt-release-overflow",
	RTReleaseIssue:    "rt-release-issue",
	RTPressureDrain:   "rt-pressure-drain",
	PMRefresh:         "pm-refresh",
	PMPrefetchCall:    "pm-prefetch-call",
	PMReleaseCall:     "pm-release-call",
	ChaosInject:       "chaos-inject",
	AllocLocal:        "alloc-local",
	AllocRemote:       "alloc-remote",
	BalancerMigrate:   "balancer-migrate",
	FaultFar:          "fault-far",
	TierDemote:        "tier-demote",
	TierPromote:       "tier-promote",
}

// argLabels gives the A/B values a name in exported output; "" means
// the value is meaningless for the kind and is omitted.
var argLabels = [KindCount][2]string{
	FaultSoft:       {"daemon_caused", ""},
	FaultRescue:     {"prefetch", ""},
	PageIn:          {"via", ""},
	DaemonWake:      {"free", ""},
	DaemonSteal:     {"free", "trim"},
	ReleaserFree:    {"", "dirty"},
	RTReleaseBuffer: {"prio", ""},
	RTReleaseIssue:  {"pages", ""},
	RTPressureDrain: {"current", "limit"},
	PMRefresh:       {"current", "limit"},
	PMPrefetchCall:  {"result", ""},
	PMReleaseCall:   {"pages", ""},
	ChaosInject:     {"mag", ""},
	AllocLocal:      {"node", ""},
	AllocRemote:     {"home", "donor"},
	BalancerMigrate: {"frames", "from"},
	TierDemote:      {"prio", "dirty"},
	TierPromote:     {"prefetch", "dirty"},
}

// String returns the kind's stable exported name.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one recorded occurrence.
type Event struct {
	At     sim.Time
	Kind   Kind
	Actor  string // emitting track: a process name or "pageoutd"/"releaserd"
	Target string // secondary subject (e.g. the steal victim); "" if none
	Page   int    // virtual page number; -1 if not page-scoped
	A, B   int64  // kind-specific values, see argLabels
}

// Counts is the exact per-kind totals, unaffected by ring drops.
type Counts [KindCount]int64

// Get returns the total for one kind.
func (c Counts) Get(k Kind) int64 { return c[k] }

// Recorder is the flight recorder. The zero value is not usable; use
// New. A nil *Recorder is valid everywhere and records nothing:
// every exported method tolerates a nil receiver (enforced by simvet
// SV004), which is what keeps recording one branch when off.
//
//simvet:nilsafe
type Recorder struct {
	sim *sim.Sim
	// The ring is stored in fixed-size chunks allocated on first use,
	// so a short run that emits a few thousand events never pays for
	// (or makes the garbage collector scan) the full capacity. head is
	// the ring index of the oldest retained event, n the number
	// retained.
	chunks  [][]Event
	ringCap int
	head    int
	n       int
	dropped int64
	counts  Counts
}

// DefaultCapacity bounds the ring when New is given capacity <= 0.
const DefaultCapacity = 1 << 16

// chunkShift sizes the lazily-allocated ring chunks (1024 events,
// ~80 KB: big enough to amortize, small enough that sparse use stays
// cheap).
const chunkShift = 10

// New creates a recorder stamping events with s's virtual clock,
// retaining at most capacity events (older ones are dropped and
// counted, flight-recorder style).
func New(s *sim.Sim, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	nchunks := (capacity + (1 << chunkShift) - 1) >> chunkShift
	return &Recorder{sim: s, ringCap: capacity, chunks: make([][]Event, nchunks)}
}

// slot returns the event at ring index i, allocating its chunk on
// first touch.
//
//simvet:hot
func (r *Recorder) slot(i int) *Event {
	c := r.chunks[i>>chunkShift]
	if c == nil {
		//simvet:allow SV006 one-time lazy chunk allocation, amortized over 1024 events
		c = make([]Event, 1<<chunkShift)
		r.chunks[i>>chunkShift] = c
	}
	return &c[i&(1<<chunkShift-1)]
}

// Emit records one event. Safe (and free) on a nil Recorder.
//
//simvet:hot
func (r *Recorder) Emit(k Kind, actor, target string, page int, a, b int64) {
	if r == nil {
		return
	}
	r.counts[k]++
	var idx int
	if r.n < r.ringCap {
		idx = (r.head + r.n) % r.ringCap
		r.n++
	} else {
		// Full: overwrite the oldest.
		idx = r.head
		r.head = (r.head + 1) % r.ringCap
		r.dropped++
	}
	*r.slot(idx) = Event{At: r.sim.Now(), Kind: k, Actor: actor, Target: target, Page: page, A: a, B: b}
}

// Len returns the number of events retained in the ring.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return r.n
}

// Dropped returns how many events the bounded ring discarded.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Counts returns the exact per-kind totals (valid even after drops).
func (r *Recorder) Counts() Counts {
	if r == nil {
		return Counts{}
	}
	return r.counts
}

// Events returns the retained events in chronological order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, *r.slot((r.head + i) % r.ringCap))
	}
	return out
}
