package events

import (
	"encoding/json"
	"strings"
	"testing"

	"memhogs/internal/sim"
)

func TestRingReportsDropsInsteadOfGrowing(t *testing.T) {
	s := sim.New()
	r := New(s, 8)
	for i := 0; i < 100; i++ {
		r.Emit(DaemonSteal, "pageoutd", "app", i, 0, 0)
	}
	if r.Len() != 8 {
		t.Fatalf("ring grew: Len = %d, want 8", r.Len())
	}
	if r.Dropped() != 92 {
		t.Fatalf("Dropped = %d, want 92", r.Dropped())
	}
	if got := r.Counts().Get(DaemonSteal); got != 100 {
		t.Fatalf("counter lost events under drops: %d, want 100", got)
	}
	// The ring keeps the most recent events.
	evs := r.Events()
	if len(evs) != 8 || evs[0].Page != 92 || evs[7].Page != 99 {
		t.Fatalf("ring did not keep the newest events: %+v", evs)
	}
}

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	r.Emit(FaultHard, "app", "", 1, 0, 0) // must not panic
	if r.Len() != 0 || r.Dropped() != 0 || r.Events() != nil {
		t.Fatal("nil recorder not inert")
	}
	if (r.Counts() != Counts{}) {
		t.Fatal("nil recorder has counts")
	}
}

func TestLogAndCounterSummary(t *testing.T) {
	s := sim.New()
	r := New(s, 0)
	r.Emit(FaultSoft, "app", "", 3, 1, 0)
	r.Emit(DaemonSteal, "pageoutd", "app", 3, 17, 0)
	log := r.Log()
	for _, want := range []string{"fault-soft", "daemon-steal", "page=3", "of=app", "free=17",
		"counter fault-soft", "0 dropped"} {
		if !strings.Contains(log, want) {
			t.Errorf("log missing %q:\n%s", want, log)
		}
	}
}

func TestChromeIsValidJSON(t *testing.T) {
	s := sim.New()
	r := New(s, 0)
	r.Emit(FaultHard, "app", "", 7, 0, 0)
	r.Emit(PMRefresh, "app", "", -1, 10, 20)
	r.Emit(ReleaserFree, "releaserd", "app", 7, 0, 1)
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
		OtherData   map[string]int64         `json:"otherData"`
	}
	raw := r.Chrome()
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, raw)
	}
	// 2 metadata (process + 2 threads actually = 3) + 3 events.
	if len(doc.TraceEvents) != 6 {
		t.Fatalf("traceEvents = %d entries, want 6:\n%s", len(doc.TraceEvents), raw)
	}
	if doc.OtherData["fault-hard"] != 1 || doc.OtherData["dropped"] != 0 {
		t.Fatalf("otherData counters wrong: %v", doc.OtherData)
	}
	// Deterministic bytes.
	if string(raw) != string(r.Chrome()) {
		t.Fatal("chrome export not deterministic")
	}
}

// BenchmarkEmitDisabled guards the "near-zero overhead when disabled"
// requirement: this is the full cost an instrumented hot path pays
// when no recorder is installed.
func BenchmarkEmitDisabled(b *testing.B) {
	var r *Recorder
	for i := 0; i < b.N; i++ {
		r.Emit(RTReleaseBuffer, "app", "", i, 1, 0)
	}
}

// BenchmarkEmitEnabled is the recording-on cost per event.
func BenchmarkEmitEnabled(b *testing.B) {
	r := New(sim.New(), 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Emit(RTReleaseBuffer, "app", "", i, 1, 0)
	}
}
