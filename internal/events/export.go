package events

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Log renders the retained events as a human-readable merged log: one
// line per event, all tracks interleaved in virtual-time order,
// followed by the exact counter registry and the drop count.
func (r *Recorder) Log() string {
	var b strings.Builder
	for _, e := range r.Events() {
		fmt.Fprintf(&b, "%12s  %-11s %-22s", e.At, e.Actor, e.Kind)
		if e.Page >= 0 {
			fmt.Fprintf(&b, " page=%d", e.Page)
		}
		if e.Target != "" {
			fmt.Fprintf(&b, " of=%s", e.Target)
		}
		labels := argLabels[e.Kind]
		if labels[0] != "" {
			fmt.Fprintf(&b, " %s=%d", labels[0], e.A)
		}
		if labels[1] != "" {
			fmt.Fprintf(&b, " %s=%d", labels[1], e.B)
		}
		b.WriteByte('\n')
	}
	b.WriteString(r.CounterSummary())
	return b.String()
}

// CounterSummary renders the counter registry: one line per nonzero
// kind in declaration order, plus retained/dropped totals.
func (r *Recorder) CounterSummary() string {
	var b strings.Builder
	counts := r.Counts()
	var total int64
	for k := Kind(0); k < KindCount; k++ {
		if counts[k] == 0 {
			continue
		}
		total += counts[k]
		fmt.Fprintf(&b, "counter %-22s %d\n", k, counts[k])
	}
	fmt.Fprintf(&b, "events %d recorded, %d retained, %d dropped by the ring\n",
		total, r.Len(), r.Dropped())
	return b.String()
}

// Chrome renders the retained events as Chrome trace-event JSON
// (loadable in Perfetto / chrome://tracing): one thread track per
// actor, instant events for decisions, and a counter track per process
// from the shared-page refreshes (usage vs limit over time). The JSON
// is built by hand with fixed key order so the bytes are fully
// deterministic.
func (r *Recorder) Chrome() []byte {
	var b strings.Builder
	evs := r.Events()

	// Assign one tid per actor in order of first appearance.
	tids := map[string]int{}
	var actors []string
	for _, e := range evs {
		if _, ok := tids[e.Actor]; !ok {
			tids[e.Actor] = len(tids) + 1
			actors = append(actors, e.Actor)
		}
	}

	b.WriteString("{\"traceEvents\":[\n")
	b.WriteString(`{"name":"process_name","ph":"M","pid":1,"args":{"name":"memhogs"}}`)
	for _, a := range actors {
		fmt.Fprintf(&b, ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":%s}}",
			tids[a], strconv.Quote(a))
	}
	for _, e := range evs {
		ts := float64(e.At) / 1e3 // ns -> us
		if e.Kind == PMRefresh {
			// Counter track: shared-page usage vs limit per process.
			fmt.Fprintf(&b, ",\n{\"name\":%s,\"ph\":\"C\",\"ts\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{\"current\":%d,\"limit\":%d}}",
				strconv.Quote("mem["+e.Actor+"]"), ts, tids[e.Actor], e.A, e.B)
			continue
		}
		fmt.Fprintf(&b, ",\n{\"name\":%s,\"ph\":\"i\",\"ts\":%.3f,\"pid\":1,\"tid\":%d,\"s\":\"t\",\"args\":{",
			strconv.Quote(e.Kind.String()), ts, tids[e.Actor])
		first := true
		arg := func(key string, val string) {
			if !first {
				b.WriteByte(',')
			}
			first = false
			fmt.Fprintf(&b, "%s:%s", strconv.Quote(key), val)
		}
		if e.Page >= 0 {
			arg("page", strconv.Itoa(e.Page))
		}
		if e.Target != "" {
			arg("of", strconv.Quote(e.Target))
		}
		labels := argLabels[e.Kind]
		if labels[0] != "" {
			arg(labels[0], strconv.FormatInt(e.A, 10))
		}
		if labels[1] != "" {
			arg(labels[1], strconv.FormatInt(e.B, 10))
		}
		b.WriteString("}}")
	}
	b.WriteString("\n],\n\"displayTimeUnit\":\"ms\",\n\"otherData\":{")
	counts := r.Counts()
	var keys []string
	kv := map[string]int64{}
	for k := Kind(0); k < KindCount; k++ {
		if counts[k] != 0 {
			keys = append(keys, k.String())
			kv[k.String()] = counts[k]
		}
	}
	sort.Strings(keys)
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s:%d", strconv.Quote(k), kv[k])
	}
	if len(keys) > 0 {
		b.WriteByte(',')
	}
	fmt.Fprintf(&b, "\"dropped\":%d}\n}\n", r.Dropped())
	return []byte(b.String())
}
