package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync"
)

// This file is the campaign engine: every experiment campaign
// (Versions, Interactive, Sweep, sensitivity, vet cross-validation)
// enumerates its planned runs up front as jobs and hands them to a
// worker pool. Each simulation run is a self-contained deterministic
// discrete-event simulation, so execution order cannot affect any
// result; each job writes into a slot assigned at enumeration time,
// and the assembled dataset — and therefore every rendered figure and
// table — is byte-identical whether the campaign ran on one worker or
// many.

// progressSink serializes campaign progress output. Workers complete
// runs in nondeterministic order, so each line must be written
// atomically and its text must be computed only from the job's own
// run — never from another job's result, which may not exist yet.
type progressSink struct {
	mu sync.Mutex
	w  io.Writer
}

func newProgressSink(w io.Writer) *progressSink { return &progressSink{w: w} }

func (p *progressSink) printf(format string, args ...interface{}) {
	if p.w == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintf(p.w, format, args...)
}

// job is one schedulable unit of a campaign: one simulation run (or
// one baseline measurement). run stores its result through a pointer
// chosen when the job was enumerated and returns any error already
// wrapped with the job's identity.
type job struct {
	label string
	run   func() error
}

// workers resolves the pool size: the Workers knob if set, otherwise
// GOMAXPROCS.
func (o Opts) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return n
	}
	return 1
}

// runJobs executes the jobs on a pool of o.workers() goroutines.
// Workers pull jobs in enumeration order. The first failure cancels
// every job not yet started; jobs already in flight run to completion.
// The returned error is deterministic even when several jobs fail:
// because jobs are started in order and started jobs always finish
// and record, the lowest-index failing job is always among the
// recorded failures, and it is the one reported.
func runJobs(o Opts, jobs []job) error {
	n := o.workers()
	if n > len(jobs) {
		n = len(jobs)
	}
	if n <= 1 {
		for i := range jobs {
			if err := jobs[i].run(); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		mu       sync.Mutex
		next     int
		firstIdx = len(jobs)
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if firstErr != nil || next >= len(jobs) {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				if err := jobs[i].run(); err != nil {
					mu.Lock()
					if i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
