package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"testing"

	"memhogs/internal/sim"
)

// renderAll renders every figure and table a campaign feeds, so the
// serial-vs-parallel comparison covers the whole presentation layer.
func renderAll(v *Versions, d *Interactive, s *Sweep) string {
	var b strings.Builder
	b.WriteString(Fig1(s).String())
	b.WriteString(Fig7(v))
	b.WriteString(Fig8(v).String())
	b.WriteString(Fig9(v).String())
	b.WriteString(Fig10a(s).String())
	b.WriteString(Fig10b(d).String())
	b.WriteString(Fig10c(d).String())
	b.WriteString(Table3(v).String())
	b.WriteString(LockTable(v).String())
	return b.String()
}

func runCampaign(t *testing.T, o Opts) (*Versions, *Interactive, *Sweep) {
	t.Helper()
	v, err := RunVersions(o)
	if err != nil {
		t.Fatal(err)
	}
	d, err := RunInteractive(o)
	if err != nil {
		t.Fatal(err)
	}
	s, err := RunSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	return v, d, s
}

// The tentpole acceptance oracle: a parallel campaign's rendered
// figures and tables are byte-identical to a serial campaign's. Run
// with -race; the container may have GOMAXPROCS=1, so the parallel
// side pins Workers explicitly.
func TestCampaignParallelMatchesSerial(t *testing.T) {
	o := Quick()
	o.Benches = []string{"matvec", "embar"}
	o.Horizon = 5 * sim.Second
	// The fixed sleep appears in the sweep too, so the two campaigns'
	// alone baselines can be cross-checked below.
	o.Sleep = 1 * sim.Second

	o.Workers = 1
	var serialLog bytes.Buffer
	o.Progress = &serialLog
	sv, sd, ss := runCampaign(t, o)
	serial := renderAll(sv, sd, ss)

	o.Workers = 4
	var parallelLog bytes.Buffer
	o.Progress = &parallelLog
	pv, pd, ps := runCampaign(t, o)
	parallel := renderAll(pv, pd, ps)

	if serial != parallel {
		t.Errorf("parallel campaign output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}

	// Progress lines arrive in completion order under a parallel
	// campaign, but the multiset of lines is identical.
	sLines := strings.Split(strings.TrimRight(serialLog.String(), "\n"), "\n")
	pLines := strings.Split(strings.TrimRight(parallelLog.String(), "\n"), "\n")
	sort.Strings(sLines)
	sort.Strings(pLines)
	if !equalStrings(sLines, pLines) {
		t.Errorf("progress lines differ:\nserial: %q\nparallel: %q", sLines, pLines)
	}

	// Satellite regression: both interactive campaigns and the sweep
	// must measure the run-alone baseline identically (they once used
	// 6 vs 5 warm sweeps).
	if pd.Alone != ps.Alone[o.Sleep] {
		t.Errorf("alone baselines disagree: interactive %v vs sweep %v",
			pd.Alone, ps.Alone[o.Sleep])
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// The first failing job cancels every job not yet started, and the
// reported error is the lowest-index failure no matter how the pool
// interleaves.
func TestRunJobsErrorPropagation(t *testing.T) {
	o := Quick()
	o.Workers = 4
	failLow := errors.New("job 2 failed")
	failHigh := errors.New("job 50 failed")
	var started int64
	var jobs []job
	for i := 0; i < 200; i++ {
		i := i
		jobs = append(jobs, job{
			label: fmt.Sprintf("job %d", i),
			run: func() error {
				atomic.AddInt64(&started, 1)
				switch i {
				case 2:
					return failLow
				case 50:
					return failHigh
				}
				return nil
			},
		})
	}
	err := runJobs(o, jobs)
	if !errors.Is(err, failLow) {
		t.Fatalf("err = %v, want the lowest-index failure", err)
	}
	// The failure must have cancelled the bulk of the queue. Workers in
	// flight when job 2 fails may still start a handful more.
	if n := atomic.LoadInt64(&started); n >= 200 {
		t.Errorf("all %d jobs ran; failure did not cancel the rest", n)
	}
}

func TestRunJobsSerialStopsAtFirstError(t *testing.T) {
	o := Quick()
	o.Workers = 1
	boom := errors.New("boom")
	var ran int
	jobs := []job{
		{label: "ok", run: func() error { ran++; return nil }},
		{label: "fail", run: func() error { ran++; return boom }},
		{label: "never", run: func() error { ran++; return nil }},
	}
	if err := runJobs(o, jobs); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if ran != 2 {
		t.Errorf("ran = %d jobs, want 2 (stop at first error)", ran)
	}
}

// Satellite regression: RunVersions once hardcoded a 30-minute bound,
// ignoring the campaign's CompletionHorizon. A scaled campaign with a
// tiny horizon must actually stop there.
func TestVersionsHonorsCompletionHorizon(t *testing.T) {
	o := Quick()
	o.Benches = []string{"mgrid"} // slowest scaled benchmark: needs ~4.3 virtual seconds
	o.CompletionHorizon = 100 * sim.Millisecond
	v, err := RunVersions(o)
	if err != nil {
		t.Fatal(err)
	}
	for mode, r := range v.Results["mgrid"] {
		if r.Done {
			t.Errorf("%s finished under a %v horizon", mode, o.CompletionHorizon)
		}
		if r.Elapsed > 2*o.CompletionHorizon {
			t.Errorf("%s ran %v, far past the %v horizon", mode, r.Elapsed, o.CompletionHorizon)
		}
	}
}

func TestWorkersResolution(t *testing.T) {
	if n := (Opts{Workers: 3}).workers(); n != 3 {
		t.Errorf("explicit Workers = %d, want 3", n)
	}
	if n := (Opts{}).workers(); n < 1 {
		t.Errorf("default workers = %d", n)
	}
}

// TestZeroClampsAcrossCampaignMatrix asserts the standard campaign
// never schedules in the past: a nonzero clamp count means some layer
// computed a stale deadline, which the event loop silently repaired
// before the counter made it observable.
func TestZeroClampsAcrossCampaignMatrix(t *testing.T) {
	v, err := RunVersions(Quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range v.Specs {
		for mode, r := range v.Results[spec.Name] {
			if r.SimClamps != 0 {
				t.Errorf("%s/%s: %d past-time schedules were clamped", spec.Name, mode, r.SimClamps)
			}
		}
	}
}
