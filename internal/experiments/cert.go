package experiments

import (
	"fmt"

	"memhogs/internal/compiler"
	"memhogs/internal/driver"
	"memhogs/internal/events"
	"memhogs/internal/footprint"
	"memhogs/internal/kernel"
	"memhogs/internal/metrics"
	"memhogs/internal/rt"
)

// certTightFrac is the declared tightness slack for the residency
// certificates: on the affine benchmarks, in the versions where the
// certificate claims the process fills its allotment (O and P, which
// never release), the observed peak must come within 15% of the
// certified bound. The releasing versions' certificates are sound
// upper bounds with deliberate pipeline slack, so tightness is not
// declared for them.
const certTightFrac = 0.85

// affineBenches are the benchmarks whose certificates carry no ⊤
// windows at paper scale: every reference is affine with
// compile-time-known strides, so the bound is exact analysis, not a
// whole-array fallback.
var affineBenches = map[string]bool{"matvec": true, "embar": true}

// CertCell is one benchmark × version of the static-vs-dynamic
// residency comparison.
type CertCell struct {
	Bench   string
	Version footprint.Version

	BoundPages     int64 // interpreted bound (-1 unresolved)
	CertifiedPages int64 // clamped certificate the soundness check uses
	Clamped        bool
	ObservedPeak   int64 // flight-recorded run's peak resident pages

	Sound         bool // observed ≤ certified
	TightDeclared bool // this cell is under the 15% tightness contract
	Tight         bool // observed ≥ certTightFrac · certified
}

// CertCrossValidation is the dataset behind the residency-certificate
// validation: every benchmark × version's certificate next to the
// peak resident set of an instrumented run.
type CertCrossValidation struct {
	Opts Opts
	Rows []CertCell // spec-major, version-minor, in paper order
}

// modeVersion maps a run-time mode to its certificate interpretation.
func modeVersion(m rt.Mode) footprint.Version {
	switch m {
	case rt.ModeOriginal:
		return footprint.VersionO
	case rt.ModePrefetch:
		return footprint.VersionP
	case rt.ModeAggressive:
		return footprint.VersionR
	default:
		return footprint.VersionB
	}
}

// RunCertCrossValidation certifies every benchmark × version
// statically and runs each cell once with the flight recorder
// installed, comparing the certificate against the dynamically
// observed peak resident set. One job per cell runs on the campaign
// worker pool; rows are assembled afterwards in spec-major order, so
// the result is identical at any worker count.
func RunCertCrossValidation(o Opts) (*CertCrossValidation, error) {
	specs, err := o.specs()
	if err != nil {
		return nil, err
	}
	kcfg := o.kernelConfig()
	sink := newProgressSink(o.Progress)
	cache := driver.NewCompileCache()
	slots := make([]CertCell, len(specs)*len(Modes))
	var jobs []job
	for i, spec := range specs {
		for k, mode := range Modes {
			i, k, spec, mode := i, k, spec, mode
			jobs = append(jobs, job{
				label: fmt.Sprintf("certify %s/%s", spec.Name, modeVersion(mode)),
				run: func() error {
					// The certificate interprets the same compilation the
					// run executes: one cached compile per (spec, mode
					// flags) pair.
					tgt := compiler.DefaultTarget(kcfg.PageSize, kcfg.UserMemPages)
					tgt.Prefetch = mode.UsesPrefetch()
					tgt.Release = mode.UsesRelease()
					comp, err := cache.Compile(spec, nil, tgt)
					if err != nil {
						return fmt.Errorf("compile %s: %w", spec.Name, err)
					}
					ver := modeVersion(mode)
					cert := footprint.Certify(comp.Prog, tgt, comp.Hints(), ver,
						footprint.Opts{Params: spec.Params})

					cfg := driver.RunConfig{
						Kernel:           kcfg,
						Mode:             mode,
						RT:               rt.DefaultConfig(mode),
						Horizon:          o.completionHorizon(),
						InteractiveSleep: -1,
						Cache:            cache,
						OnSystem: func(sys *kernel.System) {
							sys.SetEvents(events.New(sys.Sim, 1<<16))
						},
					}
					r, err := driver.Run(spec, cfg)
					if err != nil {
						return fmt.Errorf("%s/%s: %w", spec.Name, ver, err)
					}

					cell := CertCell{
						Bench:          spec.Name,
						Version:        ver,
						BoundPages:     cert.BoundPages,
						CertifiedPages: cert.CertifiedPages,
						Clamped:        cert.Clamped,
						ObservedPeak:   r.VM.PeakResident,
					}
					cell.Sound = cell.ObservedPeak <= cell.CertifiedPages
					cell.TightDeclared = affineBenches[spec.Name] && !ver.UsesRelease()
					cell.Tight = float64(cell.ObservedPeak) >= certTightFrac*float64(cell.CertifiedPages)
					slots[i*len(Modes)+k] = cell
					sink.printf("certify %s/%s: certified %d, observed %d\n",
						spec.Name, ver, cell.CertifiedPages, cell.ObservedPeak)
					return nil
				},
			})
		}
	}
	if err := runJobs(o, jobs); err != nil {
		return nil, err
	}
	return &CertCrossValidation{Opts: o, Rows: slots}, nil
}

// Validate returns the first violated contract: every cell must be
// sound (observed peak at or below the certificate), and the declared
// cells must be tight within the 15% slack.
func (cv *CertCrossValidation) Validate() error {
	for _, c := range cv.Rows {
		if !c.Sound {
			return fmt.Errorf("%s/%s: observed peak %d pages exceeds certified %d",
				c.Bench, c.Version, c.ObservedPeak, c.CertifiedPages)
		}
		if c.TightDeclared && !c.Tight {
			return fmt.Errorf("%s/%s: certificate %d pages is not tight: observed peak %d below %d%% slack",
				c.Bench, c.Version, c.CertifiedPages, c.ObservedPeak, int(100*(1-certTightFrac)))
		}
	}
	return nil
}

// FormatCertCrossValidation renders the static-vs-dynamic residency
// table: one row per benchmark × version.
func FormatCertCrossValidation(cv *CertCrossValidation) *metrics.Table {
	t := metrics.NewTable("hogflow cross-validation: certified vs observed peak resident pages",
		"benchmark", "version", "bound", "certified", "observed", "sound", "tight")
	for _, c := range cv.Rows {
		bound := fmt.Sprintf("%d", c.BoundPages)
		if c.BoundPages < 0 {
			bound = "?"
		}
		if c.Clamped {
			bound += " (clamped)"
		}
		sound := "yes"
		if !c.Sound {
			sound = "NO"
		}
		tight := "-"
		if c.TightDeclared {
			tight = "yes"
			if !c.Tight {
				tight = "NO"
			}
		}
		t.AddRow(c.Bench, c.Version.String(), bound, c.CertifiedPages, c.ObservedPeak, sound, tight)
	}
	t.AddNote("Sound: the flight-recorded peak resident set never exceeds the certificate.")
	t.AddNote(fmt.Sprintf("Tight (affine benchmarks, non-releasing versions): observed within %d%% of certified.",
		int(100*(1-certTightFrac))))
	return t
}
