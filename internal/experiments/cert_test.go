package experiments

import (
	"strings"
	"testing"

	"memhogs/internal/footprint"
)

// TestCertCrossValidation is the hogflow acceptance check: every
// benchmark × version's flight-recorded peak resident set must stay
// at or below the static residency certificate, and on the affine
// benchmarks the non-releasing certificates must be tight.
func TestCertCrossValidation(t *testing.T) {
	cv, err := RunCertCrossValidation(Quick())
	if err != nil {
		t.Fatal(err)
	}

	if want := 6 * len(Modes); len(cv.Rows) != want {
		t.Fatalf("got %d cells, want %d", len(cv.Rows), want)
	}
	if err := cv.Validate(); err != nil {
		t.Errorf("certificate contract violated: %v\n%s", err, FormatCertCrossValidation(cv))
	}
	for _, c := range cv.Rows {
		if c.ObservedPeak <= 0 {
			t.Errorf("%s/%s: flight recorder observed no resident pages", c.Bench, c.Version)
		}
		if c.CertifiedPages <= 0 {
			t.Errorf("%s/%s: empty certificate", c.Bench, c.Version)
		}
	}

	// The releasing versions must certify strictly below the clamp on
	// the benchmarks whose schedules stream (the point of the paper).
	byCell := map[string]CertCell{}
	for _, c := range cv.Rows {
		byCell[c.Bench+"/"+c.Version.String()] = c
	}
	for _, bench := range []string{"matvec", "embar"} {
		b := byCell[bench+"/B"]
		o := byCell[bench+"/O"]
		if b.Clamped || b.CertifiedPages >= o.CertifiedPages {
			t.Errorf("%s: B certificate %d (clamped=%v) should beat O's %d",
				bench, b.CertifiedPages, b.Clamped, o.CertifiedPages)
		}
	}

	out := FormatCertCrossValidation(cv).String()
	if !strings.Contains(out, "certified") || !strings.Contains(out, "observed") {
		t.Errorf("table missing expected columns:\n%s", out)
	}
	if strings.Contains(out, "NO") {
		t.Errorf("table shows violated cells:\n%s", out)
	}
}

// TestModeVersion pins the mode → certificate-version mapping.
func TestModeVersion(t *testing.T) {
	want := []footprint.Version{footprint.VersionO, footprint.VersionP, footprint.VersionR, footprint.VersionB}
	for i, m := range Modes {
		if got := modeVersion(m); got != want[i] {
			t.Errorf("modeVersion(%v) = %v, want %v", m, got, want[i])
		}
	}
}
