package experiments

import (
	"fmt"
	"sort"
	"strings"

	"memhogs/internal/chaos"
	"memhogs/internal/driver"
	"memhogs/internal/rt"
	"memhogs/internal/sim"
	"memhogs/internal/workload"
)

// ChaosMatrix is the benchmarks × versions × fault-classes campaign:
// every cell runs one benchmark version to completion under one named
// fault class with continuous auditing, on the shared worker pool.
type ChaosMatrix struct {
	Opts    Opts
	Seed    uint64
	Classes []string
	Specs   []*workload.Spec
	// Results[bench][class][mode].
	Results map[string]map[string]map[rt.Mode]*driver.Result
}

// chaosAuditEvery returns the continuous-audit cadence: tight on the
// scaled machine, coarser at full scale where a run spans many
// virtual minutes.
func (o Opts) chaosAuditEvery() sim.Time {
	if o.Scaled {
		return 5 * sim.Millisecond
	}
	return 100 * sim.Millisecond
}

// chaosCellSeed derives a distinct, reproducible plan seed per cell
// so classes and benchmarks decorrelate while the whole matrix stays
// a pure function of the campaign seed.
func chaosCellSeed(seed uint64, bench, class string, mode rt.Mode) uint64 {
	h := seed
	for _, s := range []string{bench, class, mode.String()} {
		for i := 0; i < len(s); i++ {
			h = sim.Hash64(h + uint64(s[i]))
		}
	}
	return h
}

// RunChaosMatrix executes the chaos campaign. Every run audits the
// whole machine on the cadence and after every injected fault, so a
// corrupting fault fails its cell (and therefore the matrix) with the
// audit's diagnosis rather than a downstream symptom.
func RunChaosMatrix(o Opts, seed uint64) (*ChaosMatrix, error) {
	specs, err := o.specs()
	if err != nil {
		return nil, err
	}
	m := &ChaosMatrix{
		Opts:    o,
		Seed:    seed,
		Classes: chaos.ClassNames(),
		Specs:   specs,
		Results: map[string]map[string]map[rt.Mode]*driver.Result{},
	}
	cache := driver.NewCompileCache()
	sink := newProgressSink(o.Progress)
	slots := make([]*driver.Result, len(specs)*len(m.Classes)*len(Modes))
	var jobs []job
	for i, spec := range specs {
		for j, class := range m.Classes {
			for k, mode := range Modes {
				slot := &slots[(i*len(m.Classes)+j)*len(Modes)+k]
				spec, class, mode := spec, class, mode
				jobs = append(jobs, job{
					label: fmt.Sprintf("chaos %s/%s/%s", spec.Name, class, mode),
					run: func() error {
						plan, err := chaos.ClassPlan(class, chaosCellSeed(seed, spec.Name, class, mode))
						if err != nil {
							return err
						}
						cfg := driver.RunConfig{
							Kernel:           o.kernelConfig(),
							Mode:             mode,
							RT:               rt.DefaultConfig(mode),
							Horizon:          o.completionHorizon(),
							InteractiveSleep: -1,
							Cache:            cache,
							Chaos:            &plan,
							AuditEvery:       o.chaosAuditEvery(),
							AuditOnFault:     true,
						}
						// The far class aims its faults at the far
						// tier, so its cells must run with one: split
						// the budget 3:1 like the tiering campaign's
						// first split. Other classes keep the all-DRAM
						// machine, leaving their cells untouched by
						// the tier's existence.
						if class == "far" {
							dram, far := (TierRatio{3, 1}).Split(cfg.Kernel.UserMemPages)
							cfg.Kernel.UserMemPages = dram
							cfg.Kernel.Far.Pages = far
						}
						r, err := driver.Run(spec, cfg)
						if err != nil {
							return fmt.Errorf("chaos %s/%s/%s: %w", spec.Name, class, mode, err)
						}
						*slot = r
						sink.printf("chaos %s/%s/%s: %v, %d faults, %d audits\n",
							spec.Name, class, mode, r.Elapsed, r.Chaos.Total(), r.AuditTicks)
						return nil
					},
				})
			}
		}
	}
	if err := runJobs(o, jobs); err != nil {
		return nil, err
	}
	for i, spec := range specs {
		m.Results[spec.Name] = map[string]map[rt.Mode]*driver.Result{}
		for j, class := range m.Classes {
			cell := map[rt.Mode]*driver.Result{}
			for k, mode := range Modes {
				cell[mode] = slots[(i*len(m.Classes)+j)*len(Modes)+k]
			}
			m.Results[spec.Name][class] = cell
		}
	}
	return m, nil
}

// Check asserts the matrix's cross-cutting claims: every cell ran to
// completion (faults degrade, never wedge), each chaosed cell audited
// on its cadence, and the Buffered version keeps beating Original on
// hard faults even with faults being injected — the paper's headline
// survives the hostile environment.
func (m *ChaosMatrix) Check() error {
	for _, spec := range m.Specs {
		for _, class := range m.Classes {
			cell := m.Results[spec.Name][class]
			for _, mode := range Modes {
				r := cell[mode]
				if !r.Done {
					return fmt.Errorf("chaos %s/%s/%s did not complete", spec.Name, class, mode)
				}
				if r.AuditTicks == 0 {
					return fmt.Errorf("chaos %s/%s/%s ran without a single cadence audit", spec.Name, class, mode)
				}
			}
			b, o := cell[rt.ModeBuffered].VM.HardFaults, cell[rt.ModeOriginal].VM.HardFaults
			if b >= o {
				return fmt.Errorf("chaos %s/%s: Buffered took %d hard faults, Original %d — hints stopped paying off",
					spec.Name, class, b, o)
			}
		}
	}
	return nil
}

// FormatChaosMatrix renders the per-cell elapsed time, injected-fault
// totals and hard faults as a text table, one block per benchmark.
func FormatChaosMatrix(m *ChaosMatrix) *strings.Builder {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos matrix (seed %d): elapsed / faults injected / hard faults\n", m.Seed)
	names := make([]string, 0, len(m.Results))
	for _, spec := range m.Specs {
		names = append(names, spec.Name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "\n%s\n", name)
		fmt.Fprintf(&b, "  %-8s", "class")
		for _, mode := range Modes {
			fmt.Fprintf(&b, " %22s", mode.String())
		}
		b.WriteString("\n")
		for _, class := range m.Classes {
			fmt.Fprintf(&b, "  %-8s", class)
			for _, mode := range Modes {
				r := m.Results[name][class][mode]
				fmt.Fprintf(&b, " %10v %4df %5dh", r.Elapsed, r.Chaos.Total(), r.VM.HardFaults)
			}
			b.WriteString("\n")
		}
	}
	return &b
}
