package experiments

import (
	"testing"
)

// chaosQuick is the quick chaos-matrix campaign CI runs under -race:
// one benchmark across every fault class and version.
func chaosQuick() Opts {
	o := Quick()
	o.Benches = []string{"matvec"}
	return o
}

func TestChaosMatrixQuick(t *testing.T) {
	m, err := RunChaosMatrix(chaosQuick(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	// Fault classes must actually inject: a matrix of zero-fault runs
	// would pass Check while testing nothing.
	for _, class := range m.Classes {
		total := int64(0)
		for _, mode := range Modes {
			total += m.Results["matvec"][class][mode].Chaos.Total()
		}
		if total == 0 {
			t.Errorf("class %s injected no faults anywhere", class)
		}
	}
	out := FormatChaosMatrix(m).String()
	if out == "" {
		t.Fatal("empty chaos matrix rendering")
	}
}

// TestChaosMatrixDeterministic replays one cell with the same seed
// and requires identical statistics — the replayability contract the
// chaos CLI's -seed flag relies on.
func TestChaosMatrixDeterministic(t *testing.T) {
	run := func() *ChaosMatrix {
		o := chaosQuick()
		o.Workers = 2
		m, err := RunChaosMatrix(o, 11)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	for _, class := range a.Classes {
		for _, mode := range Modes {
			ra := a.Results["matvec"][class][mode]
			rb := b.Results["matvec"][class][mode]
			if *ra != *rb {
				t.Errorf("%s/%s differs across identical replays", class, mode)
			}
		}
	}
}
