package experiments

import (
	"fmt"
	"strings"

	"memhogs/internal/driver"
	"memhogs/internal/rt"
	"memhogs/internal/vm"
)

// Claim is one of the paper's checkable claims, evaluated against a
// reproduction run.
type Claim struct {
	ID     string
	Text   string // the paper's claim
	Pass   bool
	Detail string // measured values
}

// CheckClaims evaluates the paper's headline claims against the three
// experiment datasets. Any of the datasets may be nil, in which case
// its claims are skipped.
func CheckClaims(v *Versions, d *Interactive, s *Sweep) []Claim {
	var out []Claim
	add := func(id, text string, pass bool, detail string) {
		out = append(out, Claim{ID: id, Text: text, Pass: pass, Detail: detail})
	}

	if v != nil {
		// C1 — §4.3: "over 85% of the I/O stall eliminated in all
		// cases" (prefetching vs original). Benchmarks that are
		// disk-*bandwidth*-bound in our model (BUK, MGRID, FFTPDE)
		// cannot reach 85% — latency hiding does not create
		// bandwidth — so the reproduction's claim is: at least half
		// the stall hidden everywhere, and >=85% wherever bandwidth
		// permits (deviation D2 in EXPERIMENTS.md).
		allHalf := true
		deep := 0
		var details []string
		for _, spec := range v.Specs {
			o := v.Results[spec.Name][rt.ModeOriginal].Times[vm.BucketStallIO]
			p := v.Results[spec.Name][rt.ModePrefetch].Times[vm.BucketStallIO]
			hidden := 1.0
			if o > 0 {
				hidden = 1 - float64(p)/float64(o)
			}
			if hidden < 0.50 {
				allHalf = false
			}
			if hidden >= 0.85 {
				deep++
			}
			details = append(details, fmt.Sprintf("%s %.0f%%", spec.Name, hidden*100))
		}
		add("C1", "prefetching hides the majority of I/O stall (>=85% where not bandwidth-bound)",
			allHalf && deep >= 2, strings.Join(details, ", "))

		// C2 — §4.3: releasing speeds up the out-of-core application
		// over prefetching alone (13%-50%+). We require the best
		// releasing version to be at least as fast as P on five of
		// six.
		good := 0
		details = details[:0]
		for _, spec := range v.Specs {
			p := v.Results[spec.Name][rt.ModePrefetch].Elapsed
			r := v.Results[spec.Name][rt.ModeAggressive].Elapsed
			b := v.Results[spec.Name][rt.ModeBuffered].Elapsed
			best := r
			if b < best {
				best = b
			}
			if float64(best) <= float64(p)*1.02 {
				good++
			}
			details = append(details, fmt.Sprintf("%s %.2fx", spec.Name, float64(p)/float64(best)))
		}
		add("C2", "releasing improves the out-of-core application over prefetch-only",
			good >= len(v.Specs)-1, strings.Join(details, ", "))

		// C3 — §4.3: MATVEC is "hurt by aggressive releasing" and
		// saved by buffering: B < R, with R rescuing its vector.
		mv := v.Results["matvec"]
		if mv != nil {
			r, b := mv[rt.ModeAggressive], mv[rt.ModeBuffered]
			pass := b.Elapsed < r.Elapsed && r.Phys.RescuedRelease > 10*b.Phys.RescuedRelease
			add("C3", "MATVEC: aggressive releasing thrashes the vector; buffering fixes it",
				pass, fmt.Sprintf("R %.2fs (%d rescues) vs B %.2fs (%d rescues)",
					r.Elapsed.Seconds(), r.Phys.RescuedRelease,
					b.Elapsed.Seconds(), b.Phys.RescuedRelease))
		}

		// C4 — Table 3: daemon stealing cut at least in half
		// everywhere, usually orders of magnitude.
		good = 0
		details = details[:0]
		for _, spec := range v.Specs {
			o := v.Results[spec.Name][rt.ModeOriginal].Daemon.Stolen
			r := v.Results[spec.Name][rt.ModeAggressive].Daemon.Stolen
			if r <= o/2 {
				good++
			}
			details = append(details, fmt.Sprintf("%s %d->%d", spec.Name, o, r))
		}
		add("C4", "releasing cuts paging-daemon stealing by 2x-100x (Table 3)",
			good == len(v.Specs), strings.Join(details, ", "))

		// C5 — Figure 8: releasing collapses invalidation soft
		// faults.
		good = 0
		details = details[:0]
		for _, spec := range v.Specs {
			p := v.Results[spec.Name][rt.ModePrefetch].VM.SoftFaultsDaemon
			r := v.Results[spec.Name][rt.ModeAggressive].VM.SoftFaultsDaemon
			if r <= p/10 || p == 0 {
				good++
			}
			details = append(details, fmt.Sprintf("%s %d->%d", spec.Name, p, r))
		}
		add("C5", "releasing collapses reference-bit soft faults (Figure 8)",
			good >= len(v.Specs)-1, strings.Join(details, ", "))

		// C6 — §4.3: for benchmarks without temporal reuse, R and B
		// behave identically (EMBAR is the cleanest case).
		em := v.Results["embar"]
		if em != nil {
			r, b := em[rt.ModeAggressive], em[rt.ModeBuffered]
			ratio := float64(r.Elapsed) / float64(b.Elapsed)
			pass := ratio > 0.98 && ratio < 1.02
			add("C6", "EMBAR: aggressive and buffered releasing are identical (priority 0)",
				pass, fmt.Sprintf("R %.3fs vs B %.3fs", r.Elapsed.Seconds(), b.Elapsed.Seconds()))
		}

		// C10 — Figure 9: MGRID's releases are imprecise — a large
		// fraction is rescued from the free list.
		mg := v.Results["mgrid"]
		if mg != nil {
			r := mg[rt.ModeAggressive].Phys
			frac := 0.0
			if r.FreedByRelease > 0 {
				frac = float64(r.RescuedRelease) / float64(r.FreedByRelease)
			}
			add("C10", "MGRID: many explicitly released pages are rescued (Figure 9)",
				frac >= 0.25, fmt.Sprintf("%.0f%% rescued", frac*100))
		}
	}

	if d != nil {
		// C7 — Figure 10(b): prefetch-only devastates interactive
		// response; releasing restores it — except FFTPDE-B.
		worstP, bestP := 0.0, 1e18
		okRelease := true
		fftB := 0.0
		var failed []string
		// Both numerator and denominator are half-up rounded means
		// (driver.MeanTime), so these float ratios sit on the same
		// rounding convention as the rendered tables.
		for _, spec := range d.Specs {
			p := float64(d.Results[spec.Name][rt.ModePrefetch].Interactive.MeanResponse) / float64(d.Alone)
			r := float64(d.Results[spec.Name][rt.ModeAggressive].Interactive.MeanResponse) / float64(d.Alone)
			b := float64(d.Results[spec.Name][rt.ModeBuffered].Interactive.MeanResponse) / float64(d.Alone)
			if p > worstP {
				worstP = p
			}
			if p < bestP {
				bestP = p
			}
			if r > 2 {
				okRelease = false
				failed = append(failed, spec.Name+"-R")
			}
			if spec.Name == "fftpde" {
				fftB = b
			} else if b > 2 {
				okRelease = false
				failed = append(failed, spec.Name+"-B")
			}
		}
		add("C7a", "prefetch-only inflates interactive response by large factors",
			bestP >= 5, fmt.Sprintf("P range %.0fx-%.0fx", bestP, worstP))
		add("C7b", "releasing restores near-alone interactive response (except FFTPDE-B)",
			okRelease, fmt.Sprintf("failures: %v", failed))
		add("C7c", "FFTPDE-B fails to release enough memory for the interactive task",
			fftB >= 5, fmt.Sprintf("FFTPDE-B %.0fx", fftB))

		// C8 — Figure 10(c): under P the interactive task re-reads
		// its whole data set; under releasing it re-reads nothing.
		mv := d.Results["matvec"]
		if mv != nil {
			p := mv[rt.ModePrefetch].Interactive.MeanPageIns
			r := mv[rt.ModeAggressive].Interactive.MeanPageIns
			add("C8", "interactive page faults hit the data-set maximum under P, zero under R",
				p >= float64(driver.InteractivePages)*0.9 && r <= 1,
				fmt.Sprintf("P %.1f, R %.1f of %d pages", p, r, driver.InteractivePages))
		}
	}

	if s != nil {
		// C9 — Figure 1: response rises with sleep time, and
		// prefetching is at least as harmful as the original.
		first, last := s.Sleeps[0], s.Sleeps[len(s.Sleeps)-1]
		o0 := float64(s.Response[rt.ModeOriginal][first]) / float64(s.Alone[first])
		oN := float64(s.Response[rt.ModeOriginal][last]) / float64(s.Alone[last])
		pN := float64(s.Response[rt.ModePrefetch][last]) / float64(s.Alone[last])
		bN := float64(s.Response[rt.ModeBuffered][last]) / float64(s.Alone[last])
		add("C9a", "with no sleep the interactive task defends its memory (Figure 1)",
			o0 < 1.5, fmt.Sprintf("O at sleep 0: %.2fx", o0))
		add("C9b", "response rises steeply with sleep time; prefetching comparable or worse",
			oN >= 5 && pN >= 0.8*oN, fmt.Sprintf("O %.0fx, P %.0fx at max sleep", oN, pN))
		add("C9c", "buffered releasing holds the run-alone response at every sleep time",
			bN < 1.5, fmt.Sprintf("B %.2fx at max sleep", bN))
	}
	return out
}

// FormatClaims renders the claim table.
func FormatClaims(claims []Claim) string {
	var b strings.Builder
	b.WriteString("Reproduction claims check\n")
	pass := 0
	for _, c := range claims {
		mark := "FAIL"
		if c.Pass {
			mark = "pass"
			pass++
		}
		fmt.Fprintf(&b, "  [%s] %-4s %s\n         %s\n", mark, c.ID, c.Text, c.Detail)
	}
	fmt.Fprintf(&b, "%d/%d claims hold\n", pass, len(claims))
	return b.String()
}
