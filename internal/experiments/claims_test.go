package experiments

import (
	"strings"
	"testing"

	"memhogs/internal/driver"
	"memhogs/internal/mem"
	"memhogs/internal/pageout"
	"memhogs/internal/rt"
	"memhogs/internal/sim"
	"memhogs/internal/vm"
	"memhogs/internal/workload"
)

// synthVersions builds a Versions dataset with paper-shaped numbers.
func synthVersions(good bool) *Versions {
	specs := workload.AllScaled()
	v := &Versions{Opts: Quick(), Specs: specs, Results: map[string]map[rt.Mode]*driver.Result{}}
	for _, spec := range specs {
		res := map[rt.Mode]*driver.Result{}
		mk := func(io, user sim.Time, stolen int64, softD int64) *driver.Result {
			r := &driver.Result{Bench: spec.Name}
			r.Times[vm.BucketUser] = user
			r.Times[vm.BucketStallIO] = io
			r.Elapsed = user + io
			r.Daemon = pageout.DaemonStats{Stolen: stolen}
			r.VM = vm.Stats{SoftFaultsDaemon: softD}
			return r
		}
		if good {
			res[rt.ModeOriginal] = mk(10*sim.Second, 5*sim.Second, 20000, 500)
			res[rt.ModePrefetch] = mk(1*sim.Second, 5*sim.Second, 21000, 900)
			res[rt.ModeAggressive] = mk(500*sim.Millisecond, 5*sim.Second, 0, 0)
			res[rt.ModeBuffered] = mk(500*sim.Millisecond, 5*sim.Second, 0, 0)
		} else {
			// Prefetching that doesn't hide stall and releasing that
			// makes things worse.
			res[rt.ModeOriginal] = mk(10*sim.Second, 5*sim.Second, 20000, 500)
			res[rt.ModePrefetch] = mk(9*sim.Second, 5*sim.Second, 21000, 900)
			res[rt.ModeAggressive] = mk(12*sim.Second, 5*sim.Second, 19000, 800)
			res[rt.ModeBuffered] = mk(12*sim.Second, 5*sim.Second, 19000, 800)
		}
		// MATVEC's rescue contrast.
		if spec.Name == "matvec" {
			res[rt.ModeAggressive].Phys = mem.Stats{RescuedRelease: 20000, FreedByRelease: 40000}
			res[rt.ModeAggressive].Elapsed = res[rt.ModePrefetch].Elapsed + sim.Second
			res[rt.ModeBuffered].Phys = mem.Stats{RescuedRelease: 10, FreedByRelease: 20000}
		}
		if spec.Name == "mgrid" {
			res[rt.ModeAggressive].Phys = mem.Stats{RescuedRelease: 18000, FreedByRelease: 40000}
		}
		v.Results[spec.Name] = res
	}
	return v
}

func TestClaimsPassOnPaperShapedData(t *testing.T) {
	claims := CheckClaims(synthVersions(true), nil, nil)
	if len(claims) == 0 {
		t.Fatal("no claims evaluated")
	}
	for _, c := range claims {
		if !c.Pass {
			t.Errorf("claim %s failed on paper-shaped data: %s (%s)", c.ID, c.Text, c.Detail)
		}
	}
}

func TestClaimsFailOnBrokenData(t *testing.T) {
	claims := CheckClaims(synthVersions(false), nil, nil)
	failed := 0
	for _, c := range claims {
		if !c.Pass {
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("claims checker accepted broken data")
	}
}

func TestFig7NormalizationOnSynthData(t *testing.T) {
	v := synthVersions(true)
	out := Fig7(v)
	// O normalizes to 100.0 for every benchmark.
	if !strings.Contains(out, "100.0") {
		t.Fatalf("Fig7 missing the O=100 normalization:\n%s", out)
	}
	// Every benchmark section and the legend appear.
	for _, spec := range v.Specs {
		if !strings.Contains(out, spec.Name) {
			t.Errorf("Fig7 missing %s", spec.Name)
		}
	}
	if !strings.Contains(out, "Legend") {
		t.Error("Fig7 missing legend")
	}
}

func TestFormatClaims(t *testing.T) {
	claims := []Claim{
		{ID: "X1", Text: "it works", Pass: true, Detail: "yes"},
		{ID: "X2", Text: "it fails", Pass: false, Detail: "no"},
	}
	out := FormatClaims(claims)
	if !strings.Contains(out, "[pass] X1") || !strings.Contains(out, "[FAIL] X2") {
		t.Fatalf("format wrong:\n%s", out)
	}
	if !strings.Contains(out, "1/2 claims hold") {
		t.Fatalf("tally wrong:\n%s", out)
	}
}

func TestClaimsNilDatasetsSkipped(t *testing.T) {
	if len(CheckClaims(nil, nil, nil)) != 0 {
		t.Fatal("claims produced without data")
	}
}
