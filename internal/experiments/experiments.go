// Package experiments reproduces every table and figure of the
// paper's evaluation (§4). Each experiment has a data-collection
// function (shared across the figures that the paper derives from the
// same runs) and a formatter that renders the paper's table or figure
// as text.
//
// Experiment index:
//
//	Table 1   — hardware characteristics            (Table1)
//	Table 2   — benchmark characteristics           (Table2)
//	Figure 1  — interactive response vs sleep, O/P  (Fig1, from Sweep)
//	Figure 7  — execution-time breakdown O/P/R/B    (Fig7, from Versions)
//	Figure 8  — soft faults from invalidations      (Fig8, from Versions)
//	Table 3   — paging-daemon activity              (Table3, from Versions)
//	Figure 9  — outcomes of freed pages             (Fig9, from Versions)
//	Figure 10a — interactive response vs sleep      (Fig10a, from Sweep)
//	Figure 10b — normalized response, all benches   (Fig10b, from Interactive)
//	Figure 10c — interactive hard faults per sweep  (Fig10c, from Interactive)
package experiments

import (
	"fmt"
	"io"

	"memhogs/internal/driver"
	"memhogs/internal/kernel"
	"memhogs/internal/rt"
	"memhogs/internal/sim"
	"memhogs/internal/workload"
)

// Modes is the paper's program-version order.
var Modes = []rt.Mode{rt.ModeOriginal, rt.ModePrefetch, rt.ModeAggressive, rt.ModeBuffered}

// Opts configures an experiment campaign.
type Opts struct {
	// Scaled selects the small test machine and scaled benchmarks
	// (fast, for CI); otherwise the full Table 1 platform is used.
	Scaled bool

	// Sleep is the interactive task's think time for the fixed-sleep
	// experiments (the paper uses five seconds).
	Sleep sim.Time

	// SleepTimes is the sweep for Figures 1 and 10(a).
	SleepTimes []sim.Time

	// Horizon bounds the repeat-mode interactive experiments.
	Horizon sim.Time

	// CompletionHorizon bounds the run-to-completion experiments
	// (Versions, sensitivity, vet cross-validation). Zero means the
	// paper's full 30 simulated minutes; Quick sets a small bound so a
	// misbehaving scaled benchmark cannot run half an hour of virtual
	// time in CI.
	CompletionHorizon sim.Time

	// Benches filters the benchmark set (nil = all six).
	Benches []string

	// Workers sizes the campaign worker pool (the memhog -j flag):
	// 0 means GOMAXPROCS, 1 forces serial execution. Every run is an
	// isolated deterministic simulation, so rendered figures and
	// tables are byte-identical at any setting.
	Workers int

	// Progress, if non-nil, receives one line per completed run.
	// Writes are serialized; under a parallel campaign the lines
	// arrive in completion order, but each line's text depends only on
	// its own run.
	Progress io.Writer
}

// aloneResponseSweeps is how many measured sweeps the run-alone
// baseline averages over. Both the sleep sweep (Figures 1 and 10a)
// and the fixed-sleep interactive campaign (Figure 10b/c) must use
// the same value: they once differed (5 vs 6), quietly normalizing
// Fig 10(a) and 10(b) against different baselines.
const aloneResponseSweeps = 6

// Default returns the paper's full-scale experiment configuration.
func Default() Opts {
	return Opts{
		Sleep:             5 * sim.Second,
		SleepTimes:        []sim.Time{0, 1 * sim.Second, 2 * sim.Second, 5 * sim.Second, 10 * sim.Second, 15 * sim.Second, 20 * sim.Second, 30 * sim.Second},
		Horizon:           25 * sim.Second,
		CompletionHorizon: 30 * 60 * sim.Second,
	}
}

// Quick returns a scaled-down campaign for tests and Go benchmarks.
func Quick() Opts {
	o := Default()
	o.Scaled = true
	o.Horizon = 10 * sim.Second
	// The slowest scaled run-to-completion benchmark (MGRID-O) needs
	// ~4.3 virtual seconds; 60 s is a >10x safety margin that still
	// keeps a runaway benchmark out of CI.
	o.CompletionHorizon = 60 * sim.Second
	o.Sleep = 1 * sim.Second
	o.SleepTimes = []sim.Time{0, 500 * sim.Millisecond, 1 * sim.Second, 2 * sim.Second}
	return o
}

// completionHorizon returns the bound for run-to-completion
// experiments, defaulting to the paper's 30 simulated minutes.
func (o Opts) completionHorizon() sim.Time {
	if o.CompletionHorizon > 0 {
		return o.CompletionHorizon
	}
	return 30 * 60 * sim.Second
}

func (o Opts) kernelConfig() kernel.Config {
	if o.Scaled {
		return kernel.TestConfig()
	}
	return kernel.DefaultConfig()
}

func (o Opts) specs() ([]*workload.Spec, error) {
	all := workload.All()
	if o.Scaled {
		all = workload.AllScaled()
	}
	if len(o.Benches) == 0 {
		return all, nil
	}
	var out []*workload.Spec
	for _, name := range o.Benches {
		found := false
		for _, s := range all {
			if s.Name == name {
				out = append(out, s)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("experiments: unknown benchmark %q", name)
		}
	}
	return out, nil
}

func (o Opts) progressf(format string, args ...interface{}) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format, args...)
	}
}

// Versions is the shared dataset behind Figure 7, Figure 8, Table 3
// and Figure 9: each benchmark run once to completion in all four
// versions, with the interactive task running concurrently at the
// fixed sleep time (the paper's §4 setup).
type Versions struct {
	Opts    Opts
	Specs   []*workload.Spec
	Results map[string]map[rt.Mode]*driver.Result
}

// RunVersions collects the Versions dataset. The (benchmark × mode)
// grid is enumerated up front and executed on the campaign worker
// pool; a shared compile cache means each benchmark compiles once per
// distinct target (O and P each, R and B together) instead of once
// per run.
func RunVersions(o Opts) (*Versions, error) {
	specs, err := o.specs()
	if err != nil {
		return nil, err
	}
	v := &Versions{Opts: o, Specs: specs, Results: map[string]map[rt.Mode]*driver.Result{}}
	cache := driver.NewCompileCache()
	sink := newProgressSink(o.Progress)
	slots := make([]*driver.Result, len(specs)*len(Modes))
	var jobs []job
	for i, spec := range specs {
		for j, mode := range Modes {
			slot := &slots[i*len(Modes)+j]
			spec, mode := spec, mode
			jobs = append(jobs, job{
				label: fmt.Sprintf("versions %s/%s", spec.Name, mode),
				run: func() error {
					cfg := driver.RunConfig{
						Kernel:           o.kernelConfig(),
						Mode:             mode,
						RT:               rt.DefaultConfig(mode),
						Horizon:          o.completionHorizon(),
						InteractiveSleep: o.Sleep,
						Cache:            cache,
					}
					r, err := driver.Run(spec, cfg)
					if err != nil {
						return fmt.Errorf("%s/%s: %w", spec.Name, mode, err)
					}
					*slot = r
					sink.printf("versions %s/%s: %v\n", spec.Name, mode, r.Elapsed)
					return nil
				},
			})
		}
	}
	if err := runJobs(o, jobs); err != nil {
		return nil, err
	}
	for i, spec := range specs {
		v.Results[spec.Name] = map[rt.Mode]*driver.Result{}
		for j, mode := range Modes {
			v.Results[spec.Name][mode] = slots[i*len(Modes)+j]
		}
	}
	return v, nil
}

// Interactive is the dataset behind Figures 10(b) and 10(c): each
// benchmark repeated until the horizon, all four versions, with the
// interactive task at the fixed sleep time, plus the run-alone
// baseline.
type Interactive struct {
	Opts    Opts
	Specs   []*workload.Spec
	Alone   sim.Time
	Results map[string]map[rt.Mode]*driver.Result
}

// RunInteractive collects the Interactive dataset: the run-alone
// baseline plus the (benchmark × mode) grid, all enumerated as jobs
// for the campaign worker pool. The progress line reports the run's
// own mean response (not the alone-normalized ratio the serial runner
// used to print: the baseline is a concurrent job, and a progress
// label must never depend on another job's result).
func RunInteractive(o Opts) (*Interactive, error) {
	specs, err := o.specs()
	if err != nil {
		return nil, err
	}
	d := &Interactive{Opts: o, Specs: specs, Results: map[string]map[rt.Mode]*driver.Result{}}
	cache := driver.NewCompileCache()
	sink := newProgressSink(o.Progress)
	slots := make([]*driver.Result, len(specs)*len(Modes))
	jobs := []job{{
		label: "interactive alone baseline",
		run: func() error {
			d.Alone = driver.AloneResponse(o.kernelConfig(), o.Sleep, aloneResponseSweeps)
			sink.printf("interactive alone: %v\n", d.Alone)
			return nil
		},
	}}
	for i, spec := range specs {
		for j, mode := range Modes {
			slot := &slots[i*len(Modes)+j]
			spec, mode := spec, mode
			jobs = append(jobs, job{
				label: fmt.Sprintf("interactive %s/%s", spec.Name, mode),
				run: func() error {
					cfg := driver.RunConfig{
						Kernel:           o.kernelConfig(),
						Mode:             mode,
						RT:               rt.DefaultConfig(mode),
						Repeat:           true,
						Horizon:          o.Horizon,
						InteractiveSleep: o.Sleep,
						Cache:            cache,
					}
					r, err := driver.Run(spec, cfg)
					if err != nil {
						return fmt.Errorf("%s/%s: %w", spec.Name, mode, err)
					}
					*slot = r
					sink.printf("interactive %s/%s: %v\n", spec.Name, mode, r.Interactive.MeanResponse)
					return nil
				},
			})
		}
	}
	if err := runJobs(o, jobs); err != nil {
		return nil, err
	}
	for i, spec := range specs {
		d.Results[spec.Name] = map[rt.Mode]*driver.Result{}
		for j, mode := range Modes {
			d.Results[spec.Name][mode] = slots[i*len(Modes)+j]
		}
	}
	return d, nil
}

// Sweep is the dataset behind Figures 1 and 10(a): the interactive
// task's response time across sleep times, with MATVEC running
// concurrently in each version, plus the run-alone baseline per sleep.
type Sweep struct {
	Opts   Opts
	Sleeps []sim.Time
	Alone  map[sim.Time]sim.Time
	// Response[mode][sleep] is the mean interactive response.
	Response map[rt.Mode]map[sim.Time]sim.Time
}

// RunSweep collects the Sweep dataset using the MATVEC kernel, as in
// the paper. Jobs are one deduplicated alone baseline per distinct
// sleep time plus the (sleep × mode) grid; the shared compile cache
// means MATVEC compiles once per distinct target instead of once per
// cell.
func RunSweep(o Opts) (*Sweep, error) {
	spec, err := workload.ByName("matvec")
	if o.Scaled {
		spec, err = workload.ScaledByName("matvec")
	}
	if err != nil {
		return nil, err
	}
	s := &Sweep{
		Opts:     o,
		Sleeps:   o.SleepTimes,
		Alone:    map[sim.Time]sim.Time{},
		Response: map[rt.Mode]map[sim.Time]sim.Time{},
	}
	for _, mode := range Modes {
		s.Response[mode] = map[sim.Time]sim.Time{}
	}
	cache := driver.NewCompileCache()
	sink := newProgressSink(o.Progress)

	type cell struct {
		alone    sim.Time
		response []sim.Time // indexed like Modes
	}
	// Preallocated to full capacity: jobs hold pointers into the
	// backing array, which therefore must never be reallocated.
	cells := make([]cell, 0, len(o.SleepTimes))
	index := map[sim.Time]int{}
	var jobs []job
	for _, sleep := range o.SleepTimes {
		if _, dup := index[sleep]; dup {
			continue // deduplicated: one baseline and one run grid per distinct sleep
		}
		index[sleep] = len(cells)
		cells = append(cells, cell{response: make([]sim.Time, len(Modes))})
		c := &cells[len(cells)-1]
		horizon := sweepHorizon(o, sleep)
		sleep := sleep
		jobs = append(jobs, job{
			label: fmt.Sprintf("sweep alone sleep=%v", sleep),
			run: func() error {
				c.alone = driver.AloneResponse(o.kernelConfig(), sleep, aloneResponseSweeps)
				sink.printf("sweep alone sleep=%v: %v\n", sleep, c.alone)
				return nil
			},
		})
		for j, mode := range Modes {
			j, mode := j, mode
			jobs = append(jobs, job{
				label: fmt.Sprintf("sweep sleep=%v %s", sleep, mode),
				run: func() error {
					cfg := driver.RunConfig{
						Kernel:           o.kernelConfig(),
						Mode:             mode,
						RT:               rt.DefaultConfig(mode),
						Repeat:           true,
						Horizon:          horizon,
						InteractiveSleep: sleep,
						Cache:            cache,
					}
					r, err := driver.Run(spec, cfg)
					if err != nil {
						return fmt.Errorf("sweep %s sleep=%v: %w", mode, sleep, err)
					}
					c.response[j] = r.Interactive.MeanResponse
					sink.printf("sweep sleep=%v %s: %v\n", sleep, mode, r.Interactive.MeanResponse)
					return nil
				},
			})
		}
	}
	if err := runJobs(o, jobs); err != nil {
		return nil, err
	}
	for sleep, i := range index {
		s.Alone[sleep] = cells[i].alone
		for j, mode := range Modes {
			s.Response[mode][sleep] = cells[i].response[j]
		}
	}
	return s, nil
}
