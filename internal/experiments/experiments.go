// Package experiments reproduces every table and figure of the
// paper's evaluation (§4). Each experiment has a data-collection
// function (shared across the figures that the paper derives from the
// same runs) and a formatter that renders the paper's table or figure
// as text.
//
// Experiment index:
//
//	Table 1   — hardware characteristics            (Table1)
//	Table 2   — benchmark characteristics           (Table2)
//	Figure 1  — interactive response vs sleep, O/P  (Fig1, from Sweep)
//	Figure 7  — execution-time breakdown O/P/R/B    (Fig7, from Versions)
//	Figure 8  — soft faults from invalidations      (Fig8, from Versions)
//	Table 3   — paging-daemon activity              (Table3, from Versions)
//	Figure 9  — outcomes of freed pages             (Fig9, from Versions)
//	Figure 10a — interactive response vs sleep      (Fig10a, from Sweep)
//	Figure 10b — normalized response, all benches   (Fig10b, from Interactive)
//	Figure 10c — interactive hard faults per sweep  (Fig10c, from Interactive)
package experiments

import (
	"fmt"
	"io"

	"memhogs/internal/driver"
	"memhogs/internal/kernel"
	"memhogs/internal/rt"
	"memhogs/internal/sim"
	"memhogs/internal/workload"
)

// Modes is the paper's program-version order.
var Modes = []rt.Mode{rt.ModeOriginal, rt.ModePrefetch, rt.ModeAggressive, rt.ModeBuffered}

// Opts configures an experiment campaign.
type Opts struct {
	// Scaled selects the small test machine and scaled benchmarks
	// (fast, for CI); otherwise the full Table 1 platform is used.
	Scaled bool

	// Sleep is the interactive task's think time for the fixed-sleep
	// experiments (the paper uses five seconds).
	Sleep sim.Time

	// SleepTimes is the sweep for Figures 1 and 10(a).
	SleepTimes []sim.Time

	// Horizon bounds the repeat-mode interactive experiments.
	Horizon sim.Time

	// Benches filters the benchmark set (nil = all six).
	Benches []string

	// Progress, if non-nil, receives one line per completed run.
	Progress io.Writer
}

// Default returns the paper's full-scale experiment configuration.
func Default() Opts {
	return Opts{
		Sleep:      5 * sim.Second,
		SleepTimes: []sim.Time{0, 1 * sim.Second, 2 * sim.Second, 5 * sim.Second, 10 * sim.Second, 15 * sim.Second, 20 * sim.Second, 30 * sim.Second},
		Horizon:    25 * sim.Second,
	}
}

// Quick returns a scaled-down campaign for tests and Go benchmarks.
func Quick() Opts {
	o := Default()
	o.Scaled = true
	o.Horizon = 10 * sim.Second
	o.Sleep = 1 * sim.Second
	o.SleepTimes = []sim.Time{0, 500 * sim.Millisecond, 1 * sim.Second, 2 * sim.Second}
	return o
}

func (o Opts) kernelConfig() kernel.Config {
	if o.Scaled {
		return kernel.TestConfig()
	}
	return kernel.DefaultConfig()
}

func (o Opts) specs() ([]*workload.Spec, error) {
	all := workload.All()
	if o.Scaled {
		all = workload.AllScaled()
	}
	if len(o.Benches) == 0 {
		return all, nil
	}
	var out []*workload.Spec
	for _, name := range o.Benches {
		found := false
		for _, s := range all {
			if s.Name == name {
				out = append(out, s)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("experiments: unknown benchmark %q", name)
		}
	}
	return out, nil
}

func (o Opts) progressf(format string, args ...interface{}) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format, args...)
	}
}

// Versions is the shared dataset behind Figure 7, Figure 8, Table 3
// and Figure 9: each benchmark run once to completion in all four
// versions, with the interactive task running concurrently at the
// fixed sleep time (the paper's §4 setup).
type Versions struct {
	Opts    Opts
	Specs   []*workload.Spec
	Results map[string]map[rt.Mode]*driver.Result
}

// RunVersions collects the Versions dataset.
func RunVersions(o Opts) (*Versions, error) {
	specs, err := o.specs()
	if err != nil {
		return nil, err
	}
	v := &Versions{Opts: o, Specs: specs, Results: map[string]map[rt.Mode]*driver.Result{}}
	for _, spec := range specs {
		v.Results[spec.Name] = map[rt.Mode]*driver.Result{}
		for _, mode := range Modes {
			cfg := driver.RunConfig{
				Kernel:           o.kernelConfig(),
				Mode:             mode,
				RT:               rt.DefaultConfig(mode),
				Horizon:          30 * 60 * sim.Second,
				InteractiveSleep: o.Sleep,
			}
			r, err := driver.Run(spec, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", spec.Name, mode, err)
			}
			v.Results[spec.Name][mode] = r
			o.progressf("versions %s/%s: %v\n", spec.Name, mode, r.Elapsed)
		}
	}
	return v, nil
}

// Interactive is the dataset behind Figures 10(b) and 10(c): each
// benchmark repeated until the horizon, all four versions, with the
// interactive task at the fixed sleep time, plus the run-alone
// baseline.
type Interactive struct {
	Opts    Opts
	Specs   []*workload.Spec
	Alone   sim.Time
	Results map[string]map[rt.Mode]*driver.Result
}

// RunInteractive collects the Interactive dataset.
func RunInteractive(o Opts) (*Interactive, error) {
	specs, err := o.specs()
	if err != nil {
		return nil, err
	}
	d := &Interactive{Opts: o, Specs: specs, Results: map[string]map[rt.Mode]*driver.Result{}}
	d.Alone = driver.AloneResponse(o.kernelConfig(), o.Sleep, 6)
	for _, spec := range specs {
		d.Results[spec.Name] = map[rt.Mode]*driver.Result{}
		for _, mode := range Modes {
			cfg := driver.RunConfig{
				Kernel:           o.kernelConfig(),
				Mode:             mode,
				RT:               rt.DefaultConfig(mode),
				Repeat:           true,
				Horizon:          o.Horizon,
				InteractiveSleep: o.Sleep,
			}
			r, err := driver.Run(spec, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", spec.Name, mode, err)
			}
			d.Results[spec.Name][mode] = r
			o.progressf("interactive %s/%s: %.1fx\n", spec.Name, mode,
				float64(r.Interactive.MeanResponse)/float64(d.Alone))
		}
	}
	return d, nil
}

// Sweep is the dataset behind Figures 1 and 10(a): the interactive
// task's response time across sleep times, with MATVEC running
// concurrently in each version, plus the run-alone baseline per sleep.
type Sweep struct {
	Opts   Opts
	Sleeps []sim.Time
	Alone  map[sim.Time]sim.Time
	// Response[mode][sleep] is the mean interactive response.
	Response map[rt.Mode]map[sim.Time]sim.Time
}

// RunSweep collects the Sweep dataset using the MATVEC kernel, as in
// the paper.
func RunSweep(o Opts) (*Sweep, error) {
	spec, err := workload.ByName("matvec")
	if o.Scaled {
		spec, err = workload.ScaledByName("matvec")
	}
	if err != nil {
		return nil, err
	}
	s := &Sweep{
		Opts:     o,
		Sleeps:   o.SleepTimes,
		Alone:    map[sim.Time]sim.Time{},
		Response: map[rt.Mode]map[sim.Time]sim.Time{},
	}
	for _, mode := range Modes {
		s.Response[mode] = map[sim.Time]sim.Time{}
	}
	for _, sleep := range o.SleepTimes {
		horizon := o.Horizon
		if min := 3*sleep + 10*sim.Second; horizon < min {
			horizon = min
		}
		if o.Scaled {
			if min := 3*sleep + 3*sim.Second; horizon < min {
				horizon = min
			}
		}
		s.Alone[sleep] = driver.AloneResponse(o.kernelConfig(), sleep, 5)
		for _, mode := range Modes {
			cfg := driver.RunConfig{
				Kernel:           o.kernelConfig(),
				Mode:             mode,
				RT:               rt.DefaultConfig(mode),
				Repeat:           true,
				Horizon:          horizon,
				InteractiveSleep: sleep,
			}
			r, err := driver.Run(spec, cfg)
			if err != nil {
				return nil, fmt.Errorf("sweep %s sleep=%v: %w", mode, sleep, err)
			}
			s.Response[mode][sleep] = r.Interactive.MeanResponse
			o.progressf("sweep sleep=%v %s: %v\n", sleep, mode, r.Interactive.MeanResponse)
		}
	}
	return s, nil
}
