package experiments

import (
	"strings"
	"testing"

	"memhogs/internal/rt"
	"memhogs/internal/sim"
)

func TestTable1Renders(t *testing.T) {
	out := Table1(Default()).String()
	for _, want := range []string{"75.0 MB", "16 KB", "10 disks", "4 x 225 MHz"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2AllBenchmarks(t *testing.T) {
	tbl, err := Table2(Quick())
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, name := range []string{"matvec", "embar", "buk", "cgm", "mgrid", "fftpde"} {
		if !strings.Contains(out, name) {
			t.Errorf("Table 2 missing %s:\n%s", name, out)
		}
	}
	if tbl.NumRows() != 6 {
		t.Errorf("rows = %d, want 6", tbl.NumRows())
	}
}

func TestTable2FullSizesAreOutOfCore(t *testing.T) {
	tbl, err := Table2(Default())
	if err != nil {
		t.Fatal(err)
	}
	// Every full-size benchmark's data set must exceed the 75 MB of
	// user memory; spot-check MATVEC's 400 MB.
	if !strings.Contains(tbl.String(), "400.1 MB") {
		t.Errorf("MATVEC data set should be ~400 MB:\n%s", tbl.String())
	}
}

func TestVersionsQuickCampaign(t *testing.T) {
	o := Quick()
	o.Benches = []string{"matvec", "embar"}
	v, err := RunVersions(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Results) != 2 {
		t.Fatalf("benchmarks = %d", len(v.Results))
	}
	fig7 := Fig7(v)
	for _, want := range []string{"matvec", "embar", "normalized", "stall-io"} {
		if !strings.Contains(fig7, want) {
			t.Errorf("Fig7 missing %q", want)
		}
	}
	fig8 := Fig8(v).String()
	if !strings.Contains(fig8, "matvec") {
		t.Errorf("Fig8 missing matvec:\n%s", fig8)
	}
	t3 := Table3(v).String()
	if !strings.Contains(t3, "pages released") {
		t.Errorf("Table3 malformed:\n%s", t3)
	}
	fig9 := Fig9(v).String()
	if !strings.Contains(fig9, "rescued") {
		t.Errorf("Fig9 malformed:\n%s", fig9)
	}
	locks := LockTable(v).String()
	if !strings.Contains(locks, "wait/acq") || !strings.Contains(locks, "matvec") {
		t.Errorf("LockTable malformed:\n%s", locks)
	}
	// Science check on the quick campaign: releasing silences the
	// daemon relative to prefetch-only for the streaming benchmark.
	p := v.Results["embar"][rt.ModePrefetch]
	r := v.Results["embar"][rt.ModeAggressive]
	if r.Daemon.Stolen > p.Daemon.Stolen/2 {
		t.Errorf("releasing did not cut daemon stealing: P=%d R=%d", p.Daemon.Stolen, r.Daemon.Stolen)
	}
}

func TestInteractiveQuickCampaign(t *testing.T) {
	o := Quick()
	o.Benches = []string{"matvec"}
	d, err := RunInteractive(o)
	if err != nil {
		t.Fatal(err)
	}
	if d.Alone <= 0 {
		t.Fatal("no alone baseline")
	}
	out := Fig10b(d).String()
	if !strings.Contains(out, "matvec") {
		t.Errorf("Fig10b malformed:\n%s", out)
	}
	outC := Fig10c(d).String()
	if !strings.Contains(outC, "matvec") {
		t.Errorf("Fig10c malformed:\n%s", outC)
	}
	// Prefetch-only hurts the interactive task; buffered releasing
	// recovers it.
	p := d.Results["matvec"][rt.ModePrefetch].Interactive.MeanResponse
	b := d.Results["matvec"][rt.ModeBuffered].Interactive.MeanResponse
	if b > p {
		t.Errorf("B response %v worse than P %v", b, p)
	}
}

func TestSweepQuickCampaign(t *testing.T) {
	o := Quick()
	s, err := RunSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	out := Fig1(s).String()
	if !strings.Contains(out, "with prefetching") {
		t.Errorf("Fig1 malformed:\n%s", out)
	}
	outA := Fig10a(s).String()
	if !strings.Contains(outA, "alone") {
		t.Errorf("Fig10a malformed:\n%s", outA)
	}
	if len(s.Sleeps) != len(o.SleepTimes) {
		t.Fatalf("sleeps = %d", len(s.Sleeps))
	}
}

func TestSensitivitySweep(t *testing.T) {
	o := Quick()
	s, err := RunSensitivity(o, "matvec", []float64{0.5, 1.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 2 {
		t.Fatalf("points = %d", len(s.Points))
	}
	// The crossover: with memory above data size, the daemon stops
	// stealing even without releases.
	scarce, ample := s.Points[0], s.Points[1]
	if ample.Stolen[rt.ModePrefetch] >= scarce.Stolen[rt.ModePrefetch] {
		t.Fatalf("daemon stealing did not drop with ample memory: %d -> %d",
			scarce.Stolen[rt.ModePrefetch], ample.Stolen[rt.ModePrefetch])
	}
	out := FormatSensitivity(s).String()
	if !strings.Contains(out, "mem/data") {
		t.Fatalf("format malformed:\n%s", out)
	}
}

func TestOptsDefaults(t *testing.T) {
	d := Default()
	if d.Scaled {
		t.Error("Default is scaled")
	}
	if d.Sleep != 5*sim.Second {
		t.Errorf("default sleep = %v, want the paper's 5s", d.Sleep)
	}
	if len(d.SleepTimes) < 6 || d.SleepTimes[0] != 0 {
		t.Errorf("sleep sweep malformed: %v", d.SleepTimes)
	}
	q := Quick()
	if !q.Scaled {
		t.Error("Quick not scaled")
	}
	if q.Horizon >= d.Horizon && q.Sleep >= d.Sleep {
		t.Error("Quick not quicker")
	}
	specs, err := q.specs()
	if err != nil || len(specs) != 6 {
		t.Fatalf("specs = %d, %v", len(specs), err)
	}
}

func TestUnknownBenchmarkRejected(t *testing.T) {
	o := Quick()
	o.Benches = []string{"nosuch"}
	if _, err := RunVersions(o); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}
