package experiments

import (
	"fmt"
	"strings"

	"memhogs/internal/metrics"
	"memhogs/internal/rt"
	"memhogs/internal/vm"
)

// Fig1 renders Figure 1: the impact of an out-of-core MATVEC (original
// and prefetching versions) on the interactive task's response time
// across sleep times.
func Fig1(s *Sweep) *metrics.Table {
	t := metrics.NewTable("Figure 1: interactive response time vs sleep time (MATVEC running)",
		"sleep", "alone", "with original", "with prefetching", "orig/alone", "pf/alone")
	for _, sleep := range s.Sleeps {
		alone := s.Alone[sleep]
		o := s.Response[rt.ModeOriginal][sleep]
		p := s.Response[rt.ModePrefetch][sleep]
		t.AddRow(sleep.String(), alone.String(), o.String(), p.String(),
			metrics.Ratio(float64(o), float64(alone)),
			metrics.Ratio(float64(p), float64(alone)))
	}
	t.AddNote("Expected shape: response rises with sleep time; prefetching rises faster and higher.")
	return t
}

// Fig7 renders Figure 7: normalized execution-time breakdowns for the
// four versions of each benchmark, with the paper's four components
// (user, system, stall-resources, stall-I/O).
func Fig7(v *Versions) string {
	var b strings.Builder
	b.WriteString("Figure 7: execution time breakdown, normalized to the original version (O=100)\n")
	for _, spec := range v.Specs {
		res := v.Results[spec.Name]
		base := float64(res[rt.ModeOriginal].TotalTime())
		if base == 0 {
			continue
		}
		t := metrics.NewTable(fmt.Sprintf("  %s", spec.Name),
			"version", "user", "system", "stall-res", "stall-io", "total", "normalized")
		for _, mode := range Modes {
			r := res[mode]
			t.AddRow(mode.String(),
				r.Times[vm.BucketUser].String(),
				r.Times[vm.BucketSystem].String(),
				r.StallResources().String(),
				r.Times[vm.BucketStallIO].String(),
				r.TotalTime().String(),
				fmt.Sprintf("%5.1f", 100*float64(r.TotalTime())/base))
		}
		b.WriteString(t.String())
		// A stacked bar per version, paper-style.
		for _, mode := range Modes {
			r := res[mode]
			bar := metrics.StackedBar(
				[]float64{
					float64(r.Times[vm.BucketUser]),
					float64(r.Times[vm.BucketSystem]),
					float64(r.StallResources()),
					float64(r.Times[vm.BucketStallIO]),
				},
				[]rune{'u', 's', 'r', 'i'},
				base, 60)
			fmt.Fprintf(&b, "  %s |%s\n", mode, bar)
		}
		b.WriteString("\n")
	}
	b.WriteString("Legend: u=user s=system r=stall-resources i=stall-I/O\n")
	return b.String()
}

// Fig8 renders Figure 8: soft page faults caused by the paging
// daemon's reference-bit invalidations, per benchmark and version.
func Fig8(v *Versions) *metrics.Table {
	t := metrics.NewTable("Figure 8: soft page faults caused by reference-bit invalidations",
		"benchmark", "O", "P", "R", "B")
	for _, spec := range v.Specs {
		res := v.Results[spec.Name]
		t.AddRow(spec.Name,
			res[rt.ModeOriginal].VM.SoftFaultsDaemon,
			res[rt.ModePrefetch].VM.SoftFaultsDaemon,
			res[rt.ModeAggressive].VM.SoftFaultsDaemon,
			res[rt.ModeBuffered].VM.SoftFaultsDaemon)
	}
	t.AddNote("Expected shape: P >= O, and releasing (R/B) collapses invalidation faults.")
	return t
}

// Fig9 renders Figure 9: the outcome breakdown for freed pages — who
// freed them (paging daemon vs explicit release) and what fraction of
// each was rescued from the free list.
func Fig9(v *Versions) *metrics.Table {
	t := metrics.NewTable("Figure 9: breakdown of outcomes for freed pages",
		"benchmark", "ver", "freed by daemon", "rescued (daemon)", "freed by release", "rescued (release)")
	for _, spec := range v.Specs {
		for _, mode := range Modes {
			r := v.Results[spec.Name][mode]
			ph := r.Phys
			t.AddRow(spec.Name, mode.String(),
				ph.FreedByDaemon,
				metrics.Pct(float64(ph.RescuedDaemon), float64(ph.FreedByDaemon)),
				ph.FreedByRelease,
				metrics.Pct(float64(ph.RescuedRelease), float64(ph.FreedByRelease)))
		}
	}
	t.AddNote("Expected shapes: with releasing most frees come from releases with few rescues;")
	t.AddNote("MGRID remains imprecise (many rescued releases); MATVEC-R rescues its vector repeatedly.")
	return t
}

// Fig10a renders Figure 10(a): the interactive task's response time
// across sleep times for all MATVEC versions.
func Fig10a(s *Sweep) *metrics.Table {
	t := metrics.NewTable("Figure 10(a): interactive response vs sleep time (MATVEC versions)",
		"sleep", "alone", "O", "P", "R", "B")
	for _, sleep := range s.Sleeps {
		t.AddRow(sleep.String(),
			s.Alone[sleep].String(),
			s.Response[rt.ModeOriginal][sleep].String(),
			s.Response[rt.ModePrefetch][sleep].String(),
			s.Response[rt.ModeAggressive][sleep].String(),
			s.Response[rt.ModeBuffered][sleep].String())
	}
	t.AddNote("Expected shape: O and P inflate with sleep time; R and B track the run-alone response.")
	return t
}

// Fig10b renders Figure 10(b): mean interactive response at the fixed
// sleep time, normalized to running alone, for every benchmark and
// version.
func Fig10b(d *Interactive) *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Figure 10(b): normalized interactive response (sleep %v, alone %v)", d.Opts.Sleep, d.Alone),
		"benchmark", "O", "P", "R", "B")
	for _, spec := range d.Specs {
		row := []interface{}{spec.Name}
		for _, mode := range Modes {
			r := d.Results[spec.Name][mode]
			row = append(row, metrics.Ratio(float64(r.Interactive.MeanResponse), float64(d.Alone)))
		}
		t.AddRow(row...)
	}
	t.AddNote("Expected shape: releasing eliminates the degradation everywhere except FFTPDE-B,")
	t.AddNote("which fails to release enough memory (the paper's exception).")
	return t
}

// Fig10c renders Figure 10(c): the interactive task's hard page faults
// (pages read from disk) per sweep through its data set.
func Fig10c(d *Interactive) *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Figure 10(c): interactive pages read from disk per sweep (sleep %v)", d.Opts.Sleep),
		"benchmark", "O", "P", "R", "B")
	for _, spec := range d.Specs {
		row := []interface{}{spec.Name}
		for _, mode := range Modes {
			r := d.Results[spec.Name][mode]
			row = append(row, fmt.Sprintf("%.1f", r.Interactive.MeanPageIns))
		}
		t.AddRow(row...)
	}
	t.AddNote("The interactive data set is 64 pages; the paper reports a 65-page maximum.")
	return t
}
