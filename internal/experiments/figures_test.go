package experiments

import (
	"strings"
	"testing"

	"memhogs/internal/rt"
	"memhogs/internal/sim"
)

// synthSweep builds a paper-shaped sleep sweep without running the
// simulator.
func synthSweep() *Sweep {
	s := &Sweep{
		Opts:     Default(),
		Sleeps:   []sim.Time{0, sim.Second, 5 * sim.Second},
		Alone:    map[sim.Time]sim.Time{},
		Response: map[rt.Mode]map[sim.Time]sim.Time{},
	}
	for _, m := range Modes {
		s.Response[m] = map[sim.Time]sim.Time{}
	}
	for i, sl := range s.Sleeps {
		s.Alone[sl] = sim.Millisecond
		s.Response[rt.ModeOriginal][sl] = sim.Millisecond * sim.Time(1+i*50)
		s.Response[rt.ModePrefetch][sl] = sim.Millisecond * sim.Time(1+i*150)
		s.Response[rt.ModeAggressive][sl] = sim.Millisecond
		s.Response[rt.ModeBuffered][sl] = sim.Millisecond
	}
	return s
}

func TestFig1Formatting(t *testing.T) {
	out := Fig1(synthSweep()).String()
	for _, want := range []string{"sleep", "alone", "with original", "with prefetching", "301.00x"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig1 missing %q:\n%s", want, out)
		}
	}
}

func TestFig10aFormatting(t *testing.T) {
	out := Fig10a(synthSweep()).String()
	for _, want := range []string{"O", "P", "R", "B", "5.000s"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig10a missing %q:\n%s", want, out)
		}
	}
}

func TestClaimsOnSynthSweep(t *testing.T) {
	claims := CheckClaims(nil, nil, synthSweep())
	byID := map[string]Claim{}
	for _, c := range claims {
		byID[c.ID] = c
	}
	for _, id := range []string{"C9a", "C9b", "C9c"} {
		c, ok := byID[id]
		if !ok {
			t.Fatalf("claim %s missing", id)
		}
		if !c.Pass {
			t.Errorf("claim %s failed on paper-shaped sweep: %s", id, c.Detail)
		}
	}
}
