package experiments

import (
	"fmt"
	"sync"

	"memhogs/internal/driver"
	"memhogs/internal/metrics"
	"memhogs/internal/rt"
	"memhogs/internal/sim"
	"memhogs/internal/workload"
)

// SensitivityPoint is one machine size in the memory sweep.
type SensitivityPoint struct {
	MemPages  int
	DataPages int
	Elapsed   map[rt.Mode]sim.Time
	Stolen    map[rt.Mode]int64
	Released  map[rt.Mode]int64
}

// Sensitivity is the memory-size sweep: the same out-of-core program
// run on machines from "data far exceeds memory" to "data fits",
// locating the crossover where releasing stops mattering. The paper
// fixes memory at 75 MB; this study answers the natural follow-up.
type Sensitivity struct {
	Opts   Opts
	Bench  string
	Points []SensitivityPoint
}

// RunSensitivity sweeps the machine's memory size for one benchmark.
// fractions scale memory relative to the program's data size (e.g.
// 0.25 = memory is a quarter of the data).
func RunSensitivity(o Opts, bench string, fractions []float64) (*Sensitivity, error) {
	spec, err := workload.ByName(bench)
	if o.Scaled {
		spec, err = workload.ScaledByName(bench)
	}
	if err != nil {
		return nil, err
	}
	if len(fractions) == 0 {
		fractions = []float64{0.25, 0.5, 0.75, 1.0, 1.25}
	}
	// Discover the data size from a probe run's compile stats. The
	// probe is a sequencing point: every sweep cell needs dataPages,
	// so only the (fraction × mode) grid behind it is parallelized.
	kcfg := o.kernelConfig()
	cache := driver.NewCompileCache()
	sink := newProgressSink(o.Progress)
	probe, err := driver.Run(spec, driver.RunConfig{
		Kernel:           kcfg,
		Mode:             rt.ModeOriginal,
		RT:               rt.DefaultConfig(rt.ModeOriginal),
		Horizon:          o.completionHorizon(),
		InteractiveSleep: -1,
		Cache:            cache,
	})
	if err != nil {
		return nil, err
	}
	dataPages := probe.TotalPages

	sweepModes := []rt.Mode{rt.ModePrefetch, rt.ModeBuffered}
	s := &Sensitivity{Opts: o, Bench: bench, Points: make([]SensitivityPoint, len(fractions))}
	var jobs []job
	for i, frac := range fractions {
		pages := int(float64(dataPages) * frac)
		if pages < 64 {
			pages = 64
		}
		s.Points[i] = SensitivityPoint{
			MemPages:  pages,
			DataPages: dataPages,
			Elapsed:   map[rt.Mode]sim.Time{},
			Stolen:    map[rt.Mode]int64{},
			Released:  map[rt.Mode]int64{},
		}
		pt := &s.Points[i]
		var mu sync.Mutex // guards pt's maps across this point's two mode jobs
		for _, mode := range sweepModes {
			pages, mode := pages, mode
			jobs = append(jobs, job{
				label: fmt.Sprintf("sensitivity %s mem=%dp %s", bench, pages, mode),
				run: func() error {
					cfg := driver.RunConfig{
						Kernel:           kcfg,
						Mode:             mode,
						RT:               rt.DefaultConfig(mode),
						Horizon:          o.completionHorizon(),
						InteractiveSleep: -1,
						Cache:            cache,
					}
					cfg.Kernel.UserMemPages = pages
					// Keep the daemon thresholds proportionate.
					cfg.Kernel.MinFreePages = pages / 64
					if cfg.Kernel.MinFreePages < 8 {
						cfg.Kernel.MinFreePages = 8
					}
					cfg.Kernel.TargetFreePages = 4 * cfg.Kernel.MinFreePages
					cfg.Kernel.Daemon.MinFree = cfg.Kernel.MinFreePages
					cfg.Kernel.Daemon.TargetFree = cfg.Kernel.TargetFreePages
					cfg.Kernel.PM.MinFree = cfg.Kernel.MinFreePages
					r, err := driver.Run(spec, cfg)
					if err != nil {
						return fmt.Errorf("sensitivity %s mem=%d: %w", mode, pages, err)
					}
					mu.Lock()
					pt.Elapsed[mode] = r.Elapsed
					pt.Stolen[mode] = r.Daemon.Stolen
					pt.Released[mode] = r.Releaser.Freed
					mu.Unlock()
					sink.printf("sensitivity %s mem=%dp %s: %v\n", bench, pages, mode, r.Elapsed)
					return nil
				},
			})
		}
	}
	if err := runJobs(o, jobs); err != nil {
		return nil, err
	}
	return s, nil
}

// FormatSensitivity renders the sweep.
func FormatSensitivity(s *Sensitivity) *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Memory-size sensitivity: %s (data = %d pages)", s.Bench, dataPagesOf(s)),
		"memory", "mem/data", "P elapsed", "B elapsed", "B speedup", "P stolen", "B released")
	for _, pt := range s.Points {
		p := pt.Elapsed[rt.ModePrefetch]
		b := pt.Elapsed[rt.ModeBuffered]
		t.AddRow(
			fmt.Sprintf("%d pages", pt.MemPages),
			fmt.Sprintf("%.2f", float64(pt.MemPages)/float64(pt.DataPages)),
			p.String(), b.String(),
			metrics.Ratio(float64(p), float64(b)),
			pt.Stolen[rt.ModePrefetch],
			pt.Released[rt.ModeBuffered])
	}
	t.AddNote("Expected shape: releasing matters most when memory is scarce; once the data")
	t.AddNote("fits (mem/data >= 1) both versions converge and the daemon goes idle anyway.")
	return t
}

func dataPagesOf(s *Sensitivity) int {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[0].DataPages
}
