package experiments

import (
	"fmt"

	"memhogs/internal/driver"
	"memhogs/internal/metrics"
	"memhogs/internal/rt"
	"memhogs/internal/sim"
	"memhogs/internal/workload"
)

// SensitivityPoint is one machine size in the memory sweep.
type SensitivityPoint struct {
	MemPages  int
	DataPages int
	Elapsed   map[rt.Mode]sim.Time
	Stolen    map[rt.Mode]int64
	Released  map[rt.Mode]int64
}

// Sensitivity is the memory-size sweep: the same out-of-core program
// run on machines from "data far exceeds memory" to "data fits",
// locating the crossover where releasing stops mattering. The paper
// fixes memory at 75 MB; this study answers the natural follow-up.
type Sensitivity struct {
	Opts   Opts
	Bench  string
	Points []SensitivityPoint
}

// RunSensitivity sweeps the machine's memory size for one benchmark.
// fractions scale memory relative to the program's data size (e.g.
// 0.25 = memory is a quarter of the data).
func RunSensitivity(o Opts, bench string, fractions []float64) (*Sensitivity, error) {
	spec, err := workload.ByName(bench)
	if o.Scaled {
		spec, err = workload.ScaledByName(bench)
	}
	if err != nil {
		return nil, err
	}
	if len(fractions) == 0 {
		fractions = []float64{0.25, 0.5, 0.75, 1.0, 1.25}
	}
	// Discover the data size from a probe run's compile stats.
	kcfg := o.kernelConfig()
	probe, err := driver.Run(spec, driver.RunConfig{
		Kernel:           kcfg,
		Mode:             rt.ModeOriginal,
		RT:               rt.DefaultConfig(rt.ModeOriginal),
		Horizon:          time30min,
		InteractiveSleep: -1,
	})
	if err != nil {
		return nil, err
	}
	dataPages := probe.TotalPages

	s := &Sensitivity{Opts: o, Bench: bench}
	for _, frac := range fractions {
		pages := int(float64(dataPages) * frac)
		if pages < 64 {
			pages = 64
		}
		pt := SensitivityPoint{
			MemPages:  pages,
			DataPages: dataPages,
			Elapsed:   map[rt.Mode]sim.Time{},
			Stolen:    map[rt.Mode]int64{},
			Released:  map[rt.Mode]int64{},
		}
		for _, mode := range []rt.Mode{rt.ModePrefetch, rt.ModeBuffered} {
			cfg := driver.RunConfig{
				Kernel:           kcfg,
				Mode:             mode,
				RT:               rt.DefaultConfig(mode),
				Horizon:          time30min,
				InteractiveSleep: -1,
			}
			cfg.Kernel.UserMemPages = pages
			// Keep the daemon thresholds proportionate.
			cfg.Kernel.MinFreePages = pages / 64
			if cfg.Kernel.MinFreePages < 8 {
				cfg.Kernel.MinFreePages = 8
			}
			cfg.Kernel.TargetFreePages = 4 * cfg.Kernel.MinFreePages
			cfg.Kernel.Daemon.MinFree = cfg.Kernel.MinFreePages
			cfg.Kernel.Daemon.TargetFree = cfg.Kernel.TargetFreePages
			cfg.Kernel.PM.MinFree = cfg.Kernel.MinFreePages
			r, err := driver.Run(spec, cfg)
			if err != nil {
				return nil, fmt.Errorf("sensitivity %s mem=%d: %w", mode, pages, err)
			}
			pt.Elapsed[mode] = r.Elapsed
			pt.Stolen[mode] = r.Daemon.Stolen
			pt.Released[mode] = r.Releaser.Freed
			o.progressf("sensitivity %s mem=%dp %s: %v\n", bench, pages, mode, r.Elapsed)
		}
		s.Points = append(s.Points, pt)
	}
	return s, nil
}

const time30min = 30 * 60 * sim.Second

// FormatSensitivity renders the sweep.
func FormatSensitivity(s *Sensitivity) *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Memory-size sensitivity: %s (data = %d pages)", s.Bench, dataPagesOf(s)),
		"memory", "mem/data", "P elapsed", "B elapsed", "B speedup", "P stolen", "B released")
	for _, pt := range s.Points {
		p := pt.Elapsed[rt.ModePrefetch]
		b := pt.Elapsed[rt.ModeBuffered]
		t.AddRow(
			fmt.Sprintf("%d pages", pt.MemPages),
			fmt.Sprintf("%.2f", float64(pt.MemPages)/float64(pt.DataPages)),
			p.String(), b.String(),
			metrics.Ratio(float64(p), float64(b)),
			pt.Stolen[rt.ModePrefetch],
			pt.Released[rt.ModeBuffered])
	}
	t.AddNote("Expected shape: releasing matters most when memory is scarce; once the data")
	t.AddNote("fits (mem/data >= 1) both versions converge and the daemon goes idle anyway.")
	return t
}

func dataPagesOf(s *Sensitivity) int {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[0].DataPages
}
