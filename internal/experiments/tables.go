package experiments

import (
	"fmt"

	"memhogs/internal/compiler"
	"memhogs/internal/metrics"
	"memhogs/internal/rt"
	"memhogs/internal/sim"
)

// Table1 renders the hardware characteristics of the modelled platform
// (the paper's Table 1).
func Table1(o Opts) *metrics.Table {
	cfg := o.kernelConfig()
	t := metrics.NewTable("Table 1: experimental platform (modelled)",
		"characteristic", "value")
	t.AddRow("machine", "SGI Origin 200 (simulated)")
	t.AddRow("processors", fmt.Sprintf("%d x %d MHz", cfg.NCPU, cfg.CPUMHz))
	t.AddRow("user-available memory", metrics.MB(cfg.MemBytes()))
	t.AddRow("page size", fmt.Sprintf("%d KB", cfg.PageSize>>10))
	t.AddRow("swap", fmt.Sprintf("striped over %d disks on %d adapters",
		cfg.Disk.NumDisks, cfg.Disk.NumAdapters))
	t.AddRow("disk positioning", fmt.Sprintf("%v-%v (%v near-sequential)",
		cfg.Disk.PosTimeMin, cfg.Disk.PosTimeMax, cfg.Disk.SeqPosTime))
	t.AddRow("page transfer", cfg.Disk.TransferTime.String())
	t.AddRow("min_freemem / desfree", fmt.Sprintf("%d / %d pages",
		cfg.MinFreePages, cfg.TargetFreePages))
	t.AddRow("swap-in clustering", fmt.Sprintf("%d pages", cfg.VM.Readahead))
	return t
}

// Table2 renders the benchmark characteristics (the paper's Table 2):
// data-set sizes and what the compiler found in each program.
func Table2(o Opts) (*metrics.Table, error) {
	specs, err := o.specs()
	if err != nil {
		return nil, err
	}
	cfg := o.kernelConfig()
	t := metrics.NewTable("Table 2: benchmark characteristics",
		"benchmark", "data set", "pages", "refs", "indirect", "pf dirs", "rel dirs", "reuse-prio", "unknown-bound loops", "access pattern")
	for _, spec := range specs {
		tgt := compiler.DefaultTarget(cfg.PageSize, cfg.UserMemPages)
		comp, err := compiler.Compile(spec.Program(nil), tgt)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		img, err := comp.Bind(spec.Params)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		st := comp.Stats
		t.AddRow(spec.Name, metrics.MB(img.DataBytes), img.TotalPages,
			st.Refs, st.IndirectRefs, st.PrefetchDirs, st.ReleaseDirs,
			st.ReusePrioReleases, st.UnknownBoundLoops, spec.Pattern)
	}
	return t, nil
}

// Table3 renders the paging-daemon activity with and without releasing
// (the paper's Table 3): activations and pages stolen for the original
// program vs the prefetch-and-release version.
func Table3(v *Versions) *metrics.Table {
	t := metrics.NewTable("Table 3: page reclamation activity (original vs prefetch+release)",
		"benchmark",
		"daemon ops (O)", "pages stolen (O)",
		"daemon ops (R)", "pages stolen (R)",
		"pages released (R)")
	for _, spec := range v.Specs {
		o := v.Results[spec.Name][rt.ModeOriginal]
		r := v.Results[spec.Name][rt.ModeAggressive]
		t.AddRow(spec.Name,
			o.Daemon.Activations, o.Daemon.Stolen,
			r.Daemon.Activations, r.Daemon.Stolen,
			r.Releaser.Freed)
	}
	t.AddNote("Releasing should cut daemon activity by large factors (paper: 2x-100x).")
	return t
}

// LockTable renders the memory-lock contention behind the paper's
// §4.3 observation: "the time to handle these page faults is also
// inflated by increased lock contention" — the paging daemon holds
// address-space locks for long batches, the releaser for short ones.
func LockTable(v *Versions) *metrics.Table {
	t := metrics.NewTable("Memory-lock contention on the out-of-core address space",
		"benchmark", "ver", "acquisitions", "contended", "total wait", "total hold", "wait/acq")
	for _, spec := range v.Specs {
		for _, mode := range Modes {
			r := v.Results[spec.Name][mode]
			perAcq := sim.Time(0)
			if r.MemlockAcquisitions > 0 {
				perAcq = r.MemlockWait / sim.Time(r.MemlockAcquisitions)
			}
			t.AddRow(spec.Name, mode.String(),
				r.MemlockAcquisitions, r.MemlockContended,
				r.MemlockWait.String(), r.MemlockHold.String(), perAcq.String())
		}
	}
	t.AddNote("Expected shape: releasing cuts both the contended count and the per-acquisition")
	t.AddNote("wait, because the releaser's short batches replace the daemon's long scans.")
	return t
}

// sweepHorizon mirrors RunSweep's per-sleep horizon (exported for
// tests that want to bound runtimes).
func sweepHorizon(o Opts, sleep sim.Time) sim.Time {
	h := o.Horizon
	if min := 3*sleep + 10*sim.Second; h < min {
		h = min
	}
	return h
}
