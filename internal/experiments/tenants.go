package experiments

import (
	"fmt"

	"memhogs/internal/driver"
	"memhogs/internal/metrics"
	"memhogs/internal/rt"
	"memhogs/internal/sim"
	"memhogs/internal/workload"
)

// The multi-tenant campaign is the datacenter-node experiment the
// paper's single-user setup never ran: a NUMA-sharded machine where a
// hog population collides with an open-loop stream of short
// interactive jobs, and the deliverable is the job tail (p50/p99/p999)
// per program version — does compiler-directed releasing protect the
// tail, not just the mean?

// tenantNodes and tenantHogs fix the campaign's machine shape. Four
// nodes with two hogs leaves half the nodes hog-free, so remote
// allocations and balancer traffic are both exercised.
const (
	tenantNodes = 4
	tenantHogs  = 2
)

// MultiTenant is the dataset behind the tenants campaign: each
// benchmark as the hog population, all four versions, on the sharded
// machine.
type MultiTenant struct {
	Opts    Opts
	Specs   []*workload.Spec
	Nodes   int
	Hogs    int
	Results map[string]map[rt.Mode]*driver.TenantResult
}

// tenantConfig derives the per-run config from campaign options.
func (o Opts) tenantConfig(mode rt.Mode) driver.TenantConfig {
	cfg := driver.DefaultTenantConfig(mode)
	cfg.Kernel = o.kernelConfig()
	cfg.Kernel.Nodes = tenantNodes
	cfg.Mode = mode
	cfg.RT = rt.DefaultConfig(mode)
	cfg.Hogs = tenantHogs
	cfg.Horizon = o.Horizon
	if o.Scaled {
		// The scaled machine has 64-page nodes: shrink the jobs so one
		// job is pressure, not an eviction storm.
		cfg.JobPages = 16
		cfg.MeanInterarrival = 100 * sim.Millisecond
	}
	return cfg
}

// RunMultiTenant collects the MultiTenant dataset. The (benchmark ×
// mode) grid is enumerated up front and executed on the campaign
// worker pool; results land in pre-allocated slots, so rendered output
// is byte-identical at any -j.
func RunMultiTenant(o Opts) (*MultiTenant, error) {
	specs, err := o.specs()
	if err != nil {
		return nil, err
	}
	m := &MultiTenant{
		Opts:    o,
		Specs:   specs,
		Nodes:   tenantNodes,
		Hogs:    tenantHogs,
		Results: map[string]map[rt.Mode]*driver.TenantResult{},
	}
	cache := driver.NewCompileCache()
	sink := newProgressSink(o.Progress)
	slots := make([]*driver.TenantResult, len(specs)*len(Modes))
	var jobs []job
	for i, spec := range specs {
		for j, mode := range Modes {
			slot := &slots[i*len(Modes)+j]
			spec, mode := spec, mode
			jobs = append(jobs, job{
				label: fmt.Sprintf("tenants %s/%s", spec.Name, mode),
				run: func() error {
					cfg := o.tenantConfig(mode)
					cfg.Cache = cache
					r, err := driver.RunTenants(spec, cfg)
					if err != nil {
						return fmt.Errorf("tenants %s/%s: %w", spec.Name, mode, err)
					}
					*slot = r
					sink.printf("tenants %s/%s: p99=%v\n", spec.Name, mode, r.P99)
					return nil
				},
			})
		}
	}
	if err := runJobs(o, jobs); err != nil {
		return nil, err
	}
	for i, spec := range specs {
		m.Results[spec.Name] = map[rt.Mode]*driver.TenantResult{}
		for j, mode := range Modes {
			m.Results[spec.Name][mode] = slots[i*len(Modes)+j]
		}
	}
	return m, nil
}

// TenantTable renders the job response-time tail per benchmark and
// version, plus the NUMA traffic that produced it.
func TenantTable(m *MultiTenant) *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Multi-tenant node: %d nodes, %d hogs, open-loop job stream", m.Nodes, m.Hogs),
		"benchmark", "ver", "jobs done", "p50", "p99", "p999", "max",
		"local alloc", "remote alloc", "balancer moves")
	for _, spec := range m.Specs {
		for _, mode := range Modes {
			r := m.Results[spec.Name][mode]
			t.AddRow(spec.Name, mode.String(),
				fmt.Sprintf("%d/%d", r.Completed, r.Arrived),
				r.P50.String(), r.P99.String(), r.P999.String(), r.Max.String(),
				r.Phys.LocalAllocs, r.Phys.RemoteAllocs, r.Balancer.FramesMoved)
		}
	}
	t.AddNote("Percentiles are nearest-rank over completed job response times.")
	t.AddNote("Releasing (R/B) should flatten the tail: hogs return frames before the")
	t.AddNote("daemons must steal them from under an arriving job.")
	return t
}
