package experiments

import (
	"testing"

	"memhogs/internal/sim"
)

// TestMultiTenantParallelMatchesSerial is the tenants campaign's
// determinism oracle: the rendered table from a parallel campaign must
// be byte-identical to the serial one. Run under -race in CI.
func TestMultiTenantParallelMatchesSerial(t *testing.T) {
	o := Quick()
	o.Benches = []string{"matvec", "embar"}
	o.Horizon = 3 * sim.Second

	o.Workers = 1
	serial, err := RunMultiTenant(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Workers = 4
	parallel, err := RunMultiTenant(o)
	if err != nil {
		t.Fatal(err)
	}

	a, b := TenantTable(serial).String(), TenantTable(parallel).String()
	if a != b {
		t.Fatalf("tenants table differs between -j1 and -j4:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
	for _, spec := range serial.Specs {
		for _, mode := range Modes {
			r := serial.Results[spec.Name][mode]
			if r.Arrived == 0 {
				t.Fatalf("%s/%s: no jobs arrived", spec.Name, mode)
			}
		}
	}
}

// TestTenantTableShape pins the table's machine header and row count:
// one row per benchmark × version.
func TestTenantTableShape(t *testing.T) {
	o := Quick()
	o.Benches = []string{"matvec"}
	o.Horizon = 2 * sim.Second
	m, err := RunMultiTenant(o)
	if err != nil {
		t.Fatal(err)
	}
	tab := TenantTable(m)
	if got, want := tab.NumRows(), len(Modes); got != want {
		t.Fatalf("table rows = %d, want %d", got, want)
	}
	if m.Nodes != tenantNodes || m.Hogs != tenantHogs {
		t.Fatalf("machine shape %d nodes/%d hogs, want %d/%d", m.Nodes, m.Hogs, tenantNodes, tenantHogs)
	}
}
