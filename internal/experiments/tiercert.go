package experiments

import (
	"fmt"

	"memhogs/internal/compiler"
	"memhogs/internal/driver"
	"memhogs/internal/events"
	"memhogs/internal/footprint"
	"memhogs/internal/hogvet"
	"memhogs/internal/kernel"
	"memhogs/internal/metrics"
	"memhogs/internal/rt"
)

// TierCertCell is one benchmark × mode × DRAM:far ratio of the
// two-tier static-vs-dynamic residency comparison.
type TierCertCell struct {
	Bench   string
	Mode    rt.Mode
	Version footprint.Version
	Ratio   TierRatio

	DRAMPages int // DRAM share of the split budget
	FarPages  int // far share (0 at the 1:0 baseline)

	CertifiedPages  int64 // clamped DRAM certificate
	FarBoundPages   int64 // interpreted far-tier bound (-1 unresolved)
	FarCertified    int64 // far bound clamped at the tier size
	ObservedPeak    int64 // flight-recorded peak resident (DRAM) pages
	ObservedFarPeak int64 // flight-recorded peak far-tier pages

	SoundDRAM bool // ObservedPeak ≤ CertifiedPages
	SoundFar  bool // ObservedFarPeak ≤ FarCertified
	HV014     bool // hogvet's far-overflow fired for this cell's schedule
}

// TierCertCrossValidation is the dataset behind the two-tier
// certificate validation: every cell of the tiering campaign's
// benchmark × mode × ratio grid, run under the flight recorder, next
// to its DRAM and far-tier certificates.
type TierCertCrossValidation struct {
	Opts Opts
	Rows []TierCertCell // spec-major, mode-middle, ratio-minor
}

// tierModeVersion maps a tiering-campaign mode to the certificate
// interpretation that soundly bounds it. It differs from modeVersion
// on Reactive: that mode compiles with release hints (so its schedule
// is the same as Buffered's) but never issues a release pro-actively
// at run time — pages leave only via daemon donation, which bypasses
// the releaser's demotion path — so its resident set is bounded by
// the P (everything-stays) interpretation and its far-tier occupancy
// is exactly zero, which VersionP's empty far certificate states.
func tierModeVersion(m rt.Mode) footprint.Version {
	switch m {
	case rt.ModeOriginal:
		return footprint.VersionO
	case rt.ModePrefetch, rt.ModeReactive:
		return footprint.VersionP
	default:
		return footprint.VersionB
	}
}

// RunTierCertCrossValidation closes the loop on the two-tier domain:
// every cell of the tiering campaign (benchmark × mode × DRAM:far
// ratio) is certified statically against the split budget and run
// once with the flight recorder installed, comparing both tiers'
// observed peaks against their certificates. One job per cell runs on
// the campaign worker pool; rows land in pre-allocated slots, so the
// result is identical at any worker count.
func RunTierCertCrossValidation(o Opts) (*TierCertCrossValidation, error) {
	specs, err := o.specs()
	if err != nil {
		return nil, err
	}
	kcfg := o.kernelConfig()
	sink := newProgressSink(o.Progress)
	cache := driver.NewCompileCache()
	stride := len(TieringModes) * len(TieringRatios)
	slots := make([]TierCertCell, len(specs)*stride)
	var jobs []job
	for i, spec := range specs {
		for j, mode := range TieringModes {
			for k, ratio := range TieringRatios {
				slot := &slots[i*stride+j*len(TieringRatios)+k]
				spec, mode, ratio := spec, mode, ratio
				jobs = append(jobs, job{
					label: fmt.Sprintf("tiercert %s/%s@%s", spec.Name, mode, ratio),
					run: func() error {
						// The certificate interprets the same compilation the
						// run executes, against the same split budget.
						dram, far := ratio.Split(kcfg.UserMemPages)
						tgt := compiler.DefaultTarget(kcfg.PageSize, dram)
						tgt.Prefetch = mode.UsesPrefetch()
						tgt.Release = mode.UsesRelease()
						comp, err := cache.Compile(spec, nil, tgt)
						if err != nil {
							return fmt.Errorf("compile %s: %w", spec.Name, err)
						}
						ver := tierModeVersion(mode)
						fopts := footprint.Opts{Params: spec.Params, FarPages: far, FarMinPrio: kcfg.Far.MinPrio}
						cert := footprint.Certify(comp.Prog, tgt, comp.Hints(), ver, fopts)

						// hogvet's far-overflow verdict for the cell, through
						// the verifier's own path.
						hv014 := false
						if far > 0 && len(comp.Hints()) > 0 {
							vopts := hogvet.DefaultOptions()
							vopts.Params = spec.Params
							vopts.FarPages = far
							vopts.FarMinPrio = kcfg.Far.MinPrio
							for _, d := range hogvet.VetSchedule(comp.Prog, tgt, comp.Hints(), vopts) {
								if d.Code == "HV014" {
									hv014 = true
								}
							}
						}

						cfg := o.tieringConfig(mode, ratio)
						cfg.Cache = cache
						cfg.OnSystem = func(sys *kernel.System) {
							sys.SetEvents(events.New(sys.Sim, 1<<16))
						}
						r, err := driver.Run(spec, cfg)
						if err != nil {
							return fmt.Errorf("tiercert %s/%s@%s: %w", spec.Name, mode, ratio, err)
						}

						cell := TierCertCell{
							Bench:           spec.Name,
							Mode:            mode,
							Version:         ver,
							Ratio:           ratio,
							DRAMPages:       dram,
							FarPages:        far,
							CertifiedPages:  cert.CertifiedPages,
							FarBoundPages:   cert.FarBoundPages,
							FarCertified:    cert.FarCertifiedPages,
							ObservedPeak:    r.VM.PeakResident,
							ObservedFarPeak: r.VM.PeakFarResident,
							HV014:           hv014,
						}
						cell.SoundDRAM = cell.ObservedPeak <= cell.CertifiedPages
						cell.SoundFar = cell.ObservedFarPeak <= cell.FarCertified
						*slot = cell
						sink.printf("tiercert %s/%s@%s: dram %d/%d, far %d/%d\n",
							spec.Name, ver, ratio, cell.ObservedPeak, cell.CertifiedPages,
							cell.ObservedFarPeak, cell.FarCertified)
						return nil
					},
				})
			}
		}
	}
	if err := runJobs(o, jobs); err != nil {
		return nil, err
	}
	return &TierCertCrossValidation{Opts: o, Rows: slots}, nil
}

// Validate returns the first violated contract: every cell must be
// sound on both tiers, the versions that never release must observe
// an exactly empty far tier (their far certificate is zero), and
// hogvet's HV014 verdict must agree with the certificate's far bound
// against the configured tier size.
func (cv *TierCertCrossValidation) Validate() error {
	for _, c := range cv.Rows {
		if !c.SoundDRAM {
			return fmt.Errorf("%s/%s@%s: observed DRAM peak %d pages exceeds certified %d",
				c.Bench, c.Version, c.Ratio, c.ObservedPeak, c.CertifiedPages)
		}
		if !c.SoundFar {
			return fmt.Errorf("%s/%s@%s: observed far peak %d pages exceeds certified %d",
				c.Bench, c.Version, c.Ratio, c.ObservedFarPeak, c.FarCertified)
		}
		if !c.Version.UsesRelease() {
			if c.FarCertified != 0 {
				return fmt.Errorf("%s/%s@%s: non-releasing version certifies far peak %d, want 0",
					c.Bench, c.Version, c.Ratio, c.FarCertified)
			}
			if c.ObservedFarPeak != 0 {
				return fmt.Errorf("%s/%s@%s: non-releasing version demoted %d pages to the far tier",
					c.Bench, c.Version, c.Ratio, c.ObservedFarPeak)
			}
		}
		wantHV014 := c.FarPages > 0 && c.FarBoundPages >= 0 && c.FarBoundPages > int64(c.FarPages) &&
			c.Version == footprint.VersionB
		if c.Version == footprint.VersionB && c.HV014 != wantHV014 {
			return fmt.Errorf("%s/%s@%s: HV014 fired=%v, but far bound %d vs tier %d says %v",
				c.Bench, c.Version, c.Ratio, c.HV014, c.FarBoundPages, c.FarPages, wantHV014)
		}
	}
	return nil
}

// FormatTierCertCrossValidation renders the two-tier
// static-vs-dynamic residency table: one row per benchmark × mode ×
// ratio.
func FormatTierCertCrossValidation(cv *TierCertCrossValidation) *metrics.Table {
	t := metrics.NewTable("tierflow cross-validation: certified vs observed peak pages, per tier",
		"benchmark", "version", "ratio", "dram cert", "dram obs", "far cert", "far obs", "sound", "HV014")
	for _, c := range cv.Rows {
		sound := "yes"
		if !c.SoundDRAM || !c.SoundFar {
			sound = "NO"
		}
		hv := "-"
		if c.HV014 {
			hv = "fires"
		}
		t.AddRow(c.Bench, c.Version.String(), c.Ratio.String(),
			c.CertifiedPages, c.ObservedPeak, c.FarCertified, c.ObservedFarPeak, sound, hv)
	}
	t.AddNote("Sound: neither tier's flight-recorded peak exceeds its certificate.")
	t.AddNote("HV014: hogvet proves the far-tier bound exceeds the configured tier at this ratio.")
	return t
}
