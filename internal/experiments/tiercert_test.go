package experiments

import (
	"strings"
	"testing"

	"memhogs/internal/footprint"
	"memhogs/internal/rt"
)

// TestTierCertCrossValidation is the two-tier hogflow acceptance
// check: in every benchmark × mode × DRAM:far ratio cell, the
// flight-recorded peaks of both tiers must stay at or below their
// certificates, the non-releasing versions must observe an exactly
// empty far tier, and HV014 must fire exactly on the buffered cells
// whose certified far bound outgrows the configured tier.
func TestTierCertCrossValidation(t *testing.T) {
	cv, err := RunTierCertCrossValidation(Quick())
	if err != nil {
		t.Fatal(err)
	}

	if want := 6 * len(TieringModes) * len(TieringRatios); len(cv.Rows) != want {
		t.Fatalf("got %d cells, want %d", len(cv.Rows), want)
	}
	if err := cv.Validate(); err != nil {
		t.Errorf("two-tier certificate contract violated: %v\n%s",
			err, FormatTierCertCrossValidation(cv))
	}
	for _, c := range cv.Rows {
		if c.ObservedPeak <= 0 {
			t.Errorf("%s/%s@%s: flight recorder observed no resident pages", c.Bench, c.Version, c.Ratio)
		}
		if c.FarPages == 0 && (c.FarCertified != 0 || c.ObservedFarPeak != 0) {
			t.Errorf("%s/%s@%s: 1:0 baseline has far cert %d / far obs %d, want 0/0",
				c.Bench, c.Version, c.Ratio, c.FarCertified, c.ObservedFarPeak)
		}
	}

	// Non-vacuity: the sweep must exercise both arms of HV014 — at
	// least one buffered cell overflows its far tier and at least one
	// certifies cleanly inside it — and the far tier must actually
	// fill somewhere for the comparison to mean anything.
	var fired, clean, farObserved bool
	for _, c := range cv.Rows {
		if c.Version == footprint.VersionB && c.FarPages > 0 {
			if c.HV014 {
				fired = true
			} else {
				clean = true
			}
		}
		if c.ObservedFarPeak > 0 {
			farObserved = true
		}
	}
	if !fired || !clean {
		t.Errorf("vacuous HV014 sweep: fired=%v clean=%v\n%s",
			fired, clean, FormatTierCertCrossValidation(cv))
	}
	if !farObserved {
		t.Error("vacuous run: no cell ever placed a page in the far tier")
	}

	out := FormatTierCertCrossValidation(cv).String()
	if !strings.Contains(out, "far cert") || !strings.Contains(out, "HV014") {
		t.Errorf("table missing expected columns:\n%s", out)
	}
	if strings.Contains(out, "NO") {
		t.Errorf("table shows violated cells:\n%s", out)
	}
}

// TestTierModeVersion pins the tiering mode → certificate-version
// mapping, in particular that Reactive is judged by the resident (P)
// interpretation: it compiles with release hints but never issues
// them pro-actively, so the buffered (B) bound would be unsound for
// its DRAM side and too generous for its far side.
func TestTierModeVersion(t *testing.T) {
	want := []footprint.Version{footprint.VersionO, footprint.VersionP, footprint.VersionP, footprint.VersionB}
	for i, m := range TieringModes {
		if got := tierModeVersion(m); got != want[i] {
			t.Errorf("tierModeVersion(%v) = %v, want %v", m, got, want[i])
		}
	}
	if tierModeVersion(rt.ModeAggressive) != footprint.VersionB {
		t.Errorf("tierModeVersion(Aggressive) should fall through to B")
	}
}
