package experiments

import (
	"fmt"

	"memhogs/internal/driver"
	"memhogs/internal/metrics"
	"memhogs/internal/rt"
	"memhogs/internal/workload"
)

// The tiering campaign is the figure the paper could not draw in 2000:
// the same memory budget split between DRAM and a CXL-like far tier at
// several ratios, with the compiler's eq. 2 reuse priorities deciding
// which released pages earn a far slot. A release that would have
// thrown a reused page to disk instead parks it one tier down, and the
// re-reference pays ~25 us instead of a ~5 ms swap fault.

// TierRatio is one DRAM:far split of the machine's memory budget.
type TierRatio struct {
	DRAM, Far int // relative parts, e.g. 3:1
}

// String renders the ratio as "3:1".
func (r TierRatio) String() string { return fmt.Sprintf("%d:%d", r.DRAM, r.Far) }

// Split divides total pages according to the ratio (DRAM gets the
// rounding remainder).
func (r TierRatio) Split(total int) (dram, far int) {
	far = total * r.Far / (r.DRAM + r.Far)
	return total - far, far
}

// TieringRatios is the campaign's sweep: 1:0 is the all-DRAM baseline
// (no far tier at all), then progressively more of the budget moves a
// tier down.
var TieringRatios = []TierRatio{{1, 0}, {3, 1}, {1, 1}, {1, 3}}

// TieringModes is the version set the tiering sweep compares. Unlike
// the paper's O/P/R/B bars it swaps aggressive releasing for Reactive:
// Reactive never releases pro-actively (pages leave only via daemon
// donation, which bypasses the releaser's demotion path), so it shows
// what the far tier is worth without hints steering it.
var TieringModes = []rt.Mode{rt.ModeOriginal, rt.ModePrefetch, rt.ModeReactive, rt.ModeBuffered}

// Tiering is the dataset behind the tiering campaign: each benchmark x
// version x DRAM:far ratio, run to completion.
type Tiering struct {
	Opts    Opts
	Specs   []*workload.Spec
	Ratios  []TierRatio
	Results map[string]map[rt.Mode]map[TierRatio]*driver.Result
}

// tieringConfig derives one cell's run config: the machine's total
// memory budget is held fixed and split DRAM:far by the ratio.
func (o Opts) tieringConfig(mode rt.Mode, ratio TierRatio) driver.RunConfig {
	cfg := driver.DefaultRunConfig(mode)
	cfg.Kernel = o.kernelConfig()
	cfg.Mode = mode
	cfg.RT = rt.DefaultConfig(mode)
	cfg.Horizon = o.completionHorizon()
	dram, far := ratio.Split(cfg.Kernel.UserMemPages)
	cfg.Kernel.UserMemPages = dram
	cfg.Kernel.Far.Pages = far
	return cfg
}

// RunTiering collects the Tiering dataset. The (benchmark x mode x
// ratio) grid is enumerated up front and executed on the campaign
// worker pool; results land in pre-allocated slots, so rendered output
// is byte-identical at any -j.
func RunTiering(o Opts) (*Tiering, error) {
	specs, err := o.specs()
	if err != nil {
		return nil, err
	}
	d := &Tiering{
		Opts:    o,
		Specs:   specs,
		Ratios:  TieringRatios,
		Results: map[string]map[rt.Mode]map[TierRatio]*driver.Result{},
	}
	cache := driver.NewCompileCache()
	sink := newProgressSink(o.Progress)
	stride := len(TieringModes) * len(TieringRatios)
	slots := make([]*driver.Result, len(specs)*stride)
	var jobs []job
	for i, spec := range specs {
		for j, mode := range TieringModes {
			for k, ratio := range TieringRatios {
				slot := &slots[i*stride+j*len(TieringRatios)+k]
				spec, mode, ratio := spec, mode, ratio
				jobs = append(jobs, job{
					label: fmt.Sprintf("tiering %s/%s@%s", spec.Name, mode, ratio),
					run: func() error {
						cfg := o.tieringConfig(mode, ratio)
						cfg.Cache = cache
						r, err := driver.Run(spec, cfg)
						if err != nil {
							return fmt.Errorf("tiering %s/%s@%s: %w", spec.Name, mode, ratio, err)
						}
						*slot = r
						sink.printf("tiering %s/%s@%s: elapsed=%v hard=%d far=%d\n",
							spec.Name, mode, ratio, r.Elapsed, r.VM.HardFaults, r.VM.FarFaults)
						return nil
					},
				})
			}
		}
	}
	if err := runJobs(o, jobs); err != nil {
		return nil, err
	}
	for i, spec := range specs {
		d.Results[spec.Name] = map[rt.Mode]map[TierRatio]*driver.Result{}
		for j, mode := range TieringModes {
			d.Results[spec.Name][mode] = map[TierRatio]*driver.Result{}
			for k, ratio := range TieringRatios {
				d.Results[spec.Name][mode][ratio] = slots[i*stride+j*len(TieringRatios)+k]
			}
		}
	}
	return d, nil
}

// Check asserts the campaign's headline invariant: in every (benchmark
// x ratio) cell, Buffered takes no more hard faults than Original —
// hints may only help, at any tier split.
func (d *Tiering) Check() error {
	for _, spec := range d.Specs {
		for _, ratio := range d.Ratios {
			b := d.Results[spec.Name][rt.ModeBuffered][ratio]
			o := d.Results[spec.Name][rt.ModeOriginal][ratio]
			if b.VM.HardFaults > o.VM.HardFaults {
				return fmt.Errorf("tiering %s@%s: Buffered hard faults %d > Original %d",
					spec.Name, ratio, b.VM.HardFaults, o.VM.HardFaults)
			}
		}
	}
	return nil
}

// TieringTable renders the sweep: one row per benchmark x version x
// ratio, with the tier traffic that produced the elapsed time.
func TieringTable(d *Tiering) *metrics.Table {
	t := metrics.NewTable(
		"Memory tiering: fixed budget split DRAM:far, releases as demotion hints",
		"benchmark", "ver", "dram:far", "elapsed", "hard faults", "far hits",
		"demoted", "demote full", "released")
	for _, spec := range d.Specs {
		for _, mode := range TieringModes {
			for _, ratio := range d.Ratios {
				r := d.Results[spec.Name][mode][ratio]
				t.AddRow(spec.Name, mode.String(), ratio.String(),
					r.Elapsed.String(), r.VM.HardFaults, r.VM.FarFaults,
					r.VM.Demotions, r.Far.DemoteFull, r.VM.ReleasedPages)
			}
		}
	}
	t.AddNote("1:0 is the all-DRAM baseline; other rows shrink DRAM and grow the far")
	t.AddNote("tier at a fixed total budget. Demotion is priority-gated: released")
	t.AddNote("pages with reuse (eq. 2 priority >= 1) park in the far tier and a")
	t.AddNote("re-fault pays far latency instead of a disk fault. V (reactive) never")
	t.AddNote("releases, so only O-vs-B shows what hint-steered demotion buys.")
	return t
}
