package experiments

import (
	"testing"

	"memhogs/internal/rt"
)

// TestTieringParallelMatchesSerial is the tiering campaign's
// determinism oracle, the same contract TestCampaignParallelMatchesSerial
// pins for the headline campaign: the rendered table from a parallel
// run must be byte-identical to the serial one. Run under -race in CI.
func TestTieringParallelMatchesSerial(t *testing.T) {
	o := Quick()
	o.Benches = []string{"fftpde"}

	o.Workers = 1
	serial, err := RunTiering(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Workers = 4
	parallel, err := RunTiering(o)
	if err != nil {
		t.Fatal(err)
	}

	a, b := TieringTable(serial).String(), TieringTable(parallel).String()
	if a != b {
		t.Fatalf("tiering table differs between -j1 and -j4:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
	if err := serial.Check(); err != nil {
		t.Fatal(err)
	}

	// The sweep must not be vacuous: with part of the budget moved a
	// tier down, the buffered version's prioritized releases have to
	// demote pages and take far hits somewhere in the sweep.
	var demoted, farHits int64
	for _, ratio := range serial.Ratios {
		r := serial.Results["fftpde"][rt.ModeBuffered][ratio]
		demoted += r.VM.Demotions
		farHits += r.VM.FarFaults
		if ratio.Far == 0 && (r.VM.Demotions != 0 || r.VM.FarFaults != 0) {
			t.Errorf("ratio %s has no far tier but demoted %d / far hits %d",
				ratio, r.VM.Demotions, r.VM.FarFaults)
		}
	}
	if demoted == 0 || farHits == 0 {
		t.Fatalf("vacuous sweep: demoted=%d farHits=%d across all ratios", demoted, farHits)
	}
}

// TestTierRatioSplit pins the budget arithmetic: the split must
// conserve the total and give DRAM the rounding remainder.
func TestTierRatioSplit(t *testing.T) {
	for _, tc := range []struct {
		ratio     TierRatio
		total     int
		dram, far int
	}{
		{TierRatio{1, 0}, 256, 256, 0},
		{TierRatio{3, 1}, 256, 192, 64},
		{TierRatio{1, 1}, 256, 128, 128},
		{TierRatio{1, 3}, 256, 64, 192},
		{TierRatio{3, 1}, 255, 192, 63}, // remainder stays in DRAM
	} {
		dram, far := tc.ratio.Split(tc.total)
		if dram != tc.dram || far != tc.far {
			t.Errorf("%s.Split(%d) = (%d, %d), want (%d, %d)",
				tc.ratio, tc.total, dram, far, tc.dram, tc.far)
		}
		if dram+far != tc.total {
			t.Errorf("%s.Split(%d) loses pages: %d + %d", tc.ratio, tc.total, dram, far)
		}
	}
}
