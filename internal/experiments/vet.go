package experiments

import (
	"fmt"

	"memhogs/internal/compiler"
	"memhogs/internal/driver"
	"memhogs/internal/hogvet"
	"memhogs/internal/metrics"
	"memhogs/internal/rt"
)

// VetCorrelation pairs one class of static verifier findings on one
// benchmark with the run-time counter that class predicts, from an
// actual Buffered-mode run. OK means the prediction held: findings
// imply a nonzero counter.
type VetCorrelation struct {
	Bench    string
	Code     string // verifier check code, e.g. "HV006"
	Findings int    // findings of that code on the benchmark
	Counter  string // simulator counter the findings predict
	Observed int64  // the counter's value in the Buffered run
	OK       bool
}

// VetCrossValidation is the dataset behind the static-vs-dynamic
// comparison: every benchmark's verifier report next to its Buffered
// run.
type VetCrossValidation struct {
	Opts    Opts
	Reports map[string]hogvet.Diagnostics
	Runs    map[string]*driver.Result
	Rows    []VetCorrelation
	Clean   []string // benchmarks with no warning-or-above findings, in run order
}

// vetCounters maps each predictive check to the counter it claims will
// be nonzero at run time:
//
//	HV001 (release before last use)  -> rescued release-freed frames
//	                                    (the MGRID free-list rescues, Fig 9)
//	HV006 (false temporal reuse)     -> pages parked in the release
//	                                    buffer's priority queues (FFTPDE's
//	                                    wrongly retained pages, §4.5)
//	HV007 (hint flood)               -> hints dropped by the run-time
//	                                    filter (CGM/MGRID user time, §4.3)
func vetCounters(r *driver.Result) []struct {
	code, counter string
	observed      int64
} {
	return []struct {
		code, counter string
		observed      int64
	}{
		{"HV001", "rescued releases", r.Phys.RescuedRelease},
		{"HV006", "releases buffered", r.RT.ReleaseBuffered},
		{"HV007", "hints filtered", r.RT.PrefetchFiltered + r.RT.ReleaseDupDropped},
	}
}

// RunVetCrossValidation runs the verifier over every benchmark's
// compiled schedule and each benchmark once in Buffered mode, then
// checks that every predictive finding corresponds to a nonzero
// simulator counter. One job per benchmark runs on the campaign
// worker pool; the correlation rows and the Clean list are assembled
// afterwards in benchmark order, so they are identical at any worker
// count.
func RunVetCrossValidation(o Opts) (*VetCrossValidation, error) {
	specs, err := o.specs()
	if err != nil {
		return nil, err
	}
	kcfg := o.kernelConfig()
	cv := &VetCrossValidation{
		Opts:    o,
		Reports: map[string]hogvet.Diagnostics{},
		Runs:    map[string]*driver.Result{},
	}
	sink := newProgressSink(o.Progress)
	cache := driver.NewCompileCache()
	reports := make([]hogvet.Diagnostics, len(specs))
	runs := make([]*driver.Result, len(specs))
	var jobs []job
	for i, spec := range specs {
		i, spec := i, spec
		jobs = append(jobs, job{
			label: fmt.Sprintf("vet %s", spec.Name),
			run: func() error {
				// The default target equals the Buffered run's target
				// (prefetch and release both on), so the verified
				// schedule and the executed schedule are one cached
				// compilation.
				tgt := compiler.DefaultTarget(kcfg.PageSize, kcfg.UserMemPages)
				comp, err := cache.Compile(spec, nil, tgt)
				if err != nil {
					return fmt.Errorf("compile %s: %w", spec.Name, err)
				}
				reports[i] = hogvet.Vet(comp)

				cfg := driver.RunConfig{
					Kernel:           kcfg,
					Mode:             rt.ModeBuffered,
					RT:               rt.DefaultConfig(rt.ModeBuffered),
					Horizon:          o.completionHorizon(),
					InteractiveSleep: -1,
					Cache:            cache,
				}
				r, err := driver.Run(spec, cfg)
				if err != nil {
					return fmt.Errorf("%s/B: %w", spec.Name, err)
				}
				runs[i] = r
				sink.printf("vet %s: %s\n", spec.Name, reports[i].Summary())
				return nil
			},
		})
	}
	if err := runJobs(o, jobs); err != nil {
		return nil, err
	}
	for i, spec := range specs {
		cv.Reports[spec.Name] = reports[i]
		cv.Runs[spec.Name] = runs[i]
		if len(reports[i].AtLeast(hogvet.Warning)) == 0 {
			cv.Clean = append(cv.Clean, spec.Name)
		}
		for _, c := range vetCounters(runs[i]) {
			n := len(reports[i].ByCode(c.code))
			if n == 0 {
				continue
			}
			cv.Rows = append(cv.Rows, VetCorrelation{
				Bench: spec.Name, Code: c.code, Findings: n,
				Counter: c.counter, Observed: c.observed,
				OK: c.observed > 0,
			})
		}
	}
	return cv, nil
}

// FormatVetCrossValidation renders the static-vs-dynamic table: one
// row per (benchmark, predictive check), the counter it predicts, and
// whether the Buffered run confirmed it.
func FormatVetCrossValidation(cv *VetCrossValidation) *metrics.Table {
	t := metrics.NewTable("hogvet cross-validation: static findings vs Buffered-run counters",
		"benchmark", "check", "findings", "predicted counter", "observed", "confirmed")
	for _, row := range cv.Rows {
		ok := "yes"
		if !row.OK {
			ok = "NO"
		}
		t.AddRow(row.Bench, row.Code, row.Findings, row.Counter, row.Observed, ok)
	}
	t.AddNote("Each static finding class must map to a nonzero run-time counter on the")
	t.AddNote("flagged benchmark (no stale warnings).")
	if len(cv.Clean) > 0 {
		t.AddNote(fmt.Sprintf("Diagnostic-clean at warning level: %v.", cv.Clean))
	}
	return t
}
