package experiments

import (
	"fmt"

	"memhogs/internal/compiler"
	"memhogs/internal/driver"
	"memhogs/internal/hogvet"
	"memhogs/internal/metrics"
	"memhogs/internal/rt"
	"memhogs/internal/sim"
)

// VetCorrelation pairs one class of static verifier findings on one
// benchmark with the run-time counter that class predicts, from an
// actual Buffered-mode run. OK means the prediction held: findings
// imply a nonzero counter.
type VetCorrelation struct {
	Bench    string
	Code     string // verifier check code, e.g. "HV006"
	Findings int    // findings of that code on the benchmark
	Counter  string // simulator counter the findings predict
	Observed int64  // the counter's value in the Buffered run
	OK       bool
}

// VetCrossValidation is the dataset behind the static-vs-dynamic
// comparison: every benchmark's verifier report next to its Buffered
// run.
type VetCrossValidation struct {
	Opts    Opts
	Reports map[string]hogvet.Diagnostics
	Runs    map[string]*driver.Result
	Rows    []VetCorrelation
	Clean   []string // benchmarks with no warning-or-above findings, in run order
}

// vetCounters maps each predictive check to the counter it claims will
// be nonzero at run time:
//
//	HV001 (release before last use)  -> rescued release-freed frames
//	                                    (the MGRID free-list rescues, Fig 9)
//	HV006 (false temporal reuse)     -> pages parked in the release
//	                                    buffer's priority queues (FFTPDE's
//	                                    wrongly retained pages, §4.5)
//	HV007 (hint flood)               -> hints dropped by the run-time
//	                                    filter (CGM/MGRID user time, §4.3)
func vetCounters(r *driver.Result) []struct {
	code, counter string
	observed      int64
} {
	return []struct {
		code, counter string
		observed      int64
	}{
		{"HV001", "rescued releases", r.Phys.RescuedRelease},
		{"HV006", "releases buffered", r.RT.ReleaseBuffered},
		{"HV007", "hints filtered", r.RT.PrefetchFiltered + r.RT.ReleaseDupDropped},
	}
}

// RunVetCrossValidation runs the verifier over every benchmark's
// compiled schedule and each benchmark once in Buffered mode, then
// checks that every predictive finding corresponds to a nonzero
// simulator counter.
func RunVetCrossValidation(o Opts) (*VetCrossValidation, error) {
	specs, err := o.specs()
	if err != nil {
		return nil, err
	}
	kcfg := o.kernelConfig()
	cv := &VetCrossValidation{
		Opts:    o,
		Reports: map[string]hogvet.Diagnostics{},
		Runs:    map[string]*driver.Result{},
	}
	for _, spec := range specs {
		tgt := compiler.DefaultTarget(kcfg.PageSize, kcfg.UserMemPages)
		comp, err := compiler.Compile(spec.Program(nil), tgt)
		if err != nil {
			return nil, fmt.Errorf("compile %s: %w", spec.Name, err)
		}
		cv.Reports[spec.Name] = hogvet.Vet(comp)

		cfg := driver.RunConfig{
			Kernel:           kcfg,
			Mode:             rt.ModeBuffered,
			RT:               rt.DefaultConfig(rt.ModeBuffered),
			Horizon:          30 * 60 * sim.Second,
			InteractiveSleep: -1,
		}
		r, err := driver.Run(spec, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s/B: %w", spec.Name, err)
		}
		cv.Runs[spec.Name] = r
		o.progressf("vet %s: %s\n", spec.Name, cv.Reports[spec.Name].Summary())
		if len(cv.Reports[spec.Name].AtLeast(hogvet.Warning)) == 0 {
			cv.Clean = append(cv.Clean, spec.Name)
		}

		for _, c := range vetCounters(r) {
			n := len(cv.Reports[spec.Name].ByCode(c.code))
			if n == 0 {
				continue
			}
			cv.Rows = append(cv.Rows, VetCorrelation{
				Bench: spec.Name, Code: c.code, Findings: n,
				Counter: c.counter, Observed: c.observed,
				OK: c.observed > 0,
			})
		}
	}
	return cv, nil
}

// FormatVetCrossValidation renders the static-vs-dynamic table: one
// row per (benchmark, predictive check), the counter it predicts, and
// whether the Buffered run confirmed it.
func FormatVetCrossValidation(cv *VetCrossValidation) *metrics.Table {
	t := metrics.NewTable("hogvet cross-validation: static findings vs Buffered-run counters",
		"benchmark", "check", "findings", "predicted counter", "observed", "confirmed")
	for _, row := range cv.Rows {
		ok := "yes"
		if !row.OK {
			ok = "NO"
		}
		t.AddRow(row.Bench, row.Code, row.Findings, row.Counter, row.Observed, ok)
	}
	t.AddNote("Each static finding class must map to a nonzero run-time counter on the")
	t.AddNote("flagged benchmark (no stale warnings).")
	if len(cv.Clean) > 0 {
		t.AddNote(fmt.Sprintf("Diagnostic-clean at warning level: %v.", cv.Clean))
	}
	return t
}
