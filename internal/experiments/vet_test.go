package experiments

import (
	"strings"
	"testing"

	"memhogs/internal/hogvet"
)

// TestVetCrossValidation is the static-vs-dynamic acceptance check:
// every predictive verifier finding must correspond to a nonzero
// simulator counter on the flagged benchmark, the two pathological
// benchmarks must carry their signature warnings, and matvec/embar
// must be diagnostic-clean (no false positives).
func TestVetCrossValidation(t *testing.T) {
	cv, err := RunVetCrossValidation(Quick())
	if err != nil {
		t.Fatal(err)
	}

	if len(cv.Rows) == 0 {
		t.Fatal("no correlations collected")
	}
	for _, row := range cv.Rows {
		if !row.OK {
			t.Errorf("%s: %d %s finding(s) predicted nonzero %q but run observed %d",
				row.Bench, row.Findings, row.Code, row.Counter, row.Observed)
		}
	}

	if len(cv.Reports["fftpde"].ByCode("HV006")) == 0 {
		t.Error("fftpde: missing the false-temporal-reuse warning (HV006)")
	}
	for _, name := range []string{"mgrid", "cgm"} {
		if len(cv.Reports[name].ByCode("HV007")) == 0 {
			t.Errorf("%s: missing the hint-flood warning (HV007)", name)
		}
	}
	if len(cv.Reports["mgrid"].ByCode("HV001")) != 2 {
		t.Errorf("mgrid: want 2 release-before-last-use findings, got %d",
			len(cv.Reports["mgrid"].ByCode("HV001")))
	}
	for _, name := range []string{"matvec", "embar"} {
		if ds := cv.Reports[name].AtLeast(hogvet.Warning); len(ds) != 0 {
			t.Errorf("%s: want zero findings at warning+, got:\n%s", name, ds)
		}
	}
	for _, name := range []string{"matvec", "embar"} {
		found := false
		for _, c := range cv.Clean {
			found = found || c == name
		}
		if !found {
			t.Errorf("%s missing from Clean list %v", name, cv.Clean)
		}
	}

	out := FormatVetCrossValidation(cv).String()
	if !strings.Contains(out, "HV006") || !strings.Contains(out, "hints filtered") {
		t.Errorf("table missing expected content:\n%s", out)
	}
	if strings.Contains(out, "NO") {
		t.Errorf("table shows unconfirmed rows:\n%s", out)
	}
}
