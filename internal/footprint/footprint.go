// Package footprint (hogflow) is a static residency-certification
// engine: an abstract interpretation of a compiled loop-nest program
// (internal/lang) together with its hint schedule
// (compiler.Compiled.Hints) that bounds, per nest and per array, the
// number of resident pages the program can hold, and derives a
// whole-program residency certificate — peak resident pages as a
// function of problem size, per program version O/P/R/B.
//
// # Abstract domain
//
// The domain is page-granular and per (nest, array): an access stream
// is abstracted by the interval of element offsets it can touch,
// computed from the linearized affine subscript — for each loop
// variable, |coefficient| · (trips − 1), plus the constant spread of
// the reference group — and converted to pages. Values are symbolic
// polynomials (Poly) over the program's parameters, so the certificate
// reads as e.g. "N/2048 + 3" and is evaluated only once runtime
// bindings are known. The top element ⊤ for an array is its whole
// declared extent: indirect subscripts (a[b[i]]), symbolic strides
// (the FFTPDE pathology), and dimensions unknown at compile time all
// force ⊤, and the nest is then certified only at the whole-array
// level (diagnosed as HV013 by hogvet).
//
// # Release interpretation
//
// The interpreter models the run-time layer's actual policies
// (internal/rt):
//
//   - versions O and P never release: every touched page stays
//     resident, so a nest's window is its footprint and pages carry
//     over to later nests until the whole array is resident.
//   - version R issues every release immediately: a group covered by a
//     precise release streams — its window is the group's constant
//     spread plus the prefetch pipelining distance plus a small slack
//     for the release path being one request behind and the kernel's
//     swap readahead.
//   - version B issues priority-zero releases immediately (exactly as
//     R does) but parks priority>0 releases in the buffer, which only
//     drains under memory pressure: a group whose release carries
//     reuse priority is retained at its full footprint.
//
// A release that the engine cannot certify — imprecise placement
// behind the group leader (the MGRID fallback), an indirect or
// symbolic target — degrades its array to ⊤ for that nest.
//
// # Two-tier domain
//
// With Opts.FarPages > 0 the certificate becomes a triple of bounds:
// the DRAM peak as before, a far-tier peak occupancy, and a demotion
// flow volume. Only released pages whose eq. 2 reuse priority passes
// the FarMinPrio gate ever reach the far tier (the run-time layer's
// releaser policy), so under O and P the far bounds are exactly zero,
// under R priority-0 streams bypass the tier, and under B the
// retained windows split by priority against the gate. Per-array far
// occupancy accumulates like DRAM carryover (monotone, capped at the
// whole array) and the total is clamped at the tier's physical size;
// the flow bound sums each nest's demotable volume scaled by its
// driver-loop trip product. Imprecise or indirect releases force ⊤ on
// the affected tier: occupancy degrades to the whole array and the
// flow bound to ⊤ outright, since a rescued page can demote again.
//
// # Certificate
//
// Nests are interpreted in program execution order (procedure calls
// are expanded per call site with formals substituted, driver loops
// are transparent and handled by iterating the sequence to a
// fixpoint), maintaining the carried-over resident pages of arrays
// touched earlier. The certified peak is the maximum over nests of
// (windows of touched arrays + carryover of untouched arrays + a
// fixed pipeline slack), clamped at the machine's page allotment —
// the clamp keeps the certificate sound even where the analysis is
// loose, since a process can never hold more frames than exist.
//
// experiments.RunCertCrossValidation validates the certificate
// dynamically: every benchmark × version runs under the flight
// recorder and the observed peak resident set must stay at or below
// the certified bound.
package footprint

import (
	"fmt"
	"sort"
	"strings"

	"memhogs/internal/compiler"
	"memhogs/internal/lang"
)

// Version selects the release interpretation. It deliberately mirrors
// the paper's O/P/R/B program versions without importing the run-time
// layer: R and B share one compiled schedule and differ only in how
// the run-time layer treats priority>0 releases, so the certificate
// needs its own version axis.
type Version int8

// The four interpretations, in the paper's order.
const (
	VersionO Version = iota // no prefetch, no release
	VersionP                // prefetch only
	VersionR                // aggressive releasing: all releases issue immediately
	VersionB                // buffered releasing: priority>0 releases are retained
)

// String returns the paper's one-letter version name.
func (v Version) String() string {
	switch v {
	case VersionO:
		return "O"
	case VersionP:
		return "P"
	case VersionR:
		return "R"
	default:
		return "B"
	}
}

// Versions lists the four interpretations in paper order.
func Versions() []Version { return []Version{VersionO, VersionP, VersionR, VersionB} }

// UsesRelease reports whether the interpretation honors release hints.
func (v Version) UsesRelease() bool { return v == VersionR || v == VersionB }

// Slack constants of the release interpretation, in pages. They
// account for everything that keeps a streamed page resident a little
// longer than the abstract stream window: the kernel's swap readahead
// klustering, the release path running one request behind the access
// stream, partially-filled releaser batches, and scheduling jitter
// between the application and the releaser daemon. Their values are
// validated (and would be tuned) by RunCertCrossValidation's
// soundness assertion.
const (
	// streamSlackPages is added to every streamed group's window.
	streamSlackPages = 24
	// pipelineSlackPages is added once to every nest's total.
	pipelineSlackPages = 64
)

// Opts configures certification.
type Opts struct {
	// Params binds runtime parameters (problem sizes, strides) for
	// evaluating the symbolic bounds, merged over the program's
	// compile-time Known map. Bounds that stay unresolved degrade to
	// the whole array, and ultimately to the clamped memory limit.
	Params map[string]int64

	// FarPages enables the two-tier domain: when positive, the
	// certificate also carries a far-tier occupancy bound, a demotion
	// flow bound and the thrash-window findings, modeling a far tier
	// of this many pages behind the DRAM allotment. Zero (the default)
	// certifies the single-tier world exactly as before.
	FarPages int

	// FarMinPrio is the demotion gate mirrored from the run-time
	// layer (kernel.FarConfig.MinPrio): a released page demotes to the
	// far tier when its eq. 2 reuse priority is >= FarMinPrio, and
	// goes to swap below it. Zero admits every release.
	FarMinPrio int
}

// Policy classifies one array's treatment within one nest.
type Policy int8

// Policies.
const (
	PolicyResident Policy = iota // no (honored) release: footprint stays resident
	PolicyStreamed               // released immediately: only the stream window is resident
	PolicyRetained               // buffered: priority>0 release retains the footprint
	PolicyTop                    // ⊤: non-affine/symbolic/imprecise, whole array assumed resident
)

// String returns the policy name used in certificate listings.
func (p Policy) String() string {
	switch p {
	case PolicyStreamed:
		return "streamed"
	case PolicyRetained:
		return "retained"
	case PolicyTop:
		return "top"
	default:
		return "resident"
	}
}

// ArrayWindow is one array's abstract state within one nest.
type ArrayWindow struct {
	Array          string
	Footprint      Poly   // symbolic footprint bound, in pages
	FootprintPages int64  // evaluated footprint; -1 when unresolved
	WindowPages    int64  // version-specific resident window; -1 when unresolved
	Policy         Policy
	Note           string // reason for ⊤ or retention, if any

	// FarWindowPages is the demotable volume this nest can push into
	// the far tier per execution (releases whose priority passes the
	// FarMinPrio gate); -1 when unresolved, always 0 with the far tier
	// disabled or under a version that never releases.
	FarWindowPages int64
}

// SiteCert is the certificate of one nest occurrence (one call site
// for procedure nests).
type SiteCert struct {
	Label string // e.g. "main:7 (loop i)" or "resid:12 (n=190)"
	Proc  string
	Line  int

	Windows []ArrayWindow
	// TotalPages is the nest's peak contribution: touched windows plus
	// carried-over pages of untouched arrays plus the pipeline slack;
	// -1 when unresolved.
	TotalPages int64
}

// UncertifiedNest records a nest where some array was forced to ⊤
// while the schedule carries releases — the HV013 condition.
type UncertifiedNest struct {
	Proc    string
	Line    int
	Reasons []string // sorted, one per ⊤ array: "array: reason"
}

// DeadWindow records a priority>0 release whose array is provably
// never referenced again after its nest — the HV012 condition: the
// buffered policy retains those pages with zero remaining reuse.
type DeadWindow struct {
	Proc       string
	Line       int
	Array      string
	Tag        int
	Priority   int
	NestsAfter int // full nests executed after the last touch
}

// ThrashWindow records a statically wasted demote→promote round
// trip — the HV015 condition: a buffered (priority>0) release passes
// the FarMinPrio gate, so memory pressure demotes the window to the
// far tier, yet the array's provable next use is the immediately
// following nest — before the demotion can break even, every demoted
// page faults straight back in.
type ThrashWindow struct {
	Proc     string
	Line     int
	Array    string
	Tag      int
	Priority int
	NextProc string // nest that re-touches the array
	NextLine int
}

// Certificate is the whole-program residency certificate for one
// version.
type Certificate struct {
	Program string
	Version Version
	Target  compiler.Target
	Env     lang.Env // Known merged with Opts.Params

	Sites []SiteCert

	// BoundPages is the interpreted peak over the nest sequence; -1
	// when some bound stayed unresolved. CertifiedPages is the bound
	// clamped at Target.MemoryPages (always sound); Clamped reports
	// that the clamp engaged.
	BoundPages     int64
	CertifiedPages int64
	Clamped        bool
	PeakSite       string // label of the site attaining the bound

	// ParamGaps reports that some bound degraded to the whole array
	// because runtime parameters were not supplied (Opts.Params): the
	// certificate is still sound, but BoundPages is not the
	// paper-scale peak, so HV011 must not be judged from it.
	ParamGaps bool

	Uncertified []UncertifiedNest
	DeadWindows []DeadWindow

	// Two-tier extension, populated only when Opts.FarPages > 0 (all
	// zero otherwise). FarBoundPages is the interpreted far-tier peak
	// occupancy (-1 when some demotable volume stayed unresolved);
	// FarCertifiedPages clamps it at the tier's physical size, which
	// keeps it sound regardless — the tier can never hold more slots
	// than it has. DemoteFlowPages bounds the total DRAM→far demotion
	// traffic over the whole run (-1 = ⊤: an imprecise or indirect
	// release can demote the same page repeatedly, so no finite
	// static bound exists).
	FarPages          int   // configured far-tier size, from Opts
	FarMinPrio        int   // demotion gate, from Opts
	FarBoundPages     int64
	FarCertifiedPages int64
	FarClamped        bool
	DemoteFlowPages   int64
	ThrashWindows     []ThrashWindow
}

// Certify interprets the program and its schedule under the given
// version and returns the residency certificate. The hints must come
// from a compilation against tgt (compiler.Compiled.Hints); for
// versions O and P the schedule may be empty.
func Certify(prog *lang.Program, tgt compiler.Target, hints []compiler.Hint, ver Version, opts Opts) *Certificate {
	env := lang.Env{}
	for k, v := range prog.Known {
		env[k] = v
	}
	for k, v := range opts.Params {
		env[k] = v
	}
	in := &interp{
		prog:  prog,
		tgt:   tgt,
		hints: hints,
		ver:   ver,
		env:   env,
		known: knownEnv(prog),
		far:   int64(opts.FarPages),
		prio:  opts.FarMinPrio,
	}
	return in.run()
}

func knownEnv(prog *lang.Program) lang.Env {
	known := lang.Env{}
	for k, v := range prog.Known {
		known[k] = v
	}
	return known
}

// envString renders the evaluation environment deterministically.
func envString(env lang.Env) string {
	keys := make([]string, 0, len(env))
	for k := range env {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, env[k]))
	}
	return strings.Join(parts, " ")
}
