package footprint_test

import (
	"os"
	"path/filepath"
	"testing"

	"memhogs/internal/compiler"
	"memhogs/internal/footprint"
	"memhogs/internal/workload"
)

// certifyAll compiles one benchmark with the full schedule and
// certifies all four versions at paper-scale parameters.
func certifyAll(t *testing.T, spec *workload.Spec) map[footprint.Version]*footprint.Certificate {
	t.Helper()
	prog := spec.Program(nil)
	tgt := compiler.DefaultTarget(16<<10, 4800)
	c, err := compiler.Compile(prog, tgt)
	if err != nil {
		t.Fatalf("%s: %v", spec.Name, err)
	}
	certs := map[footprint.Version]*footprint.Certificate{}
	for _, v := range footprint.Versions() {
		certs[v] = footprint.Certify(prog, tgt, c.Hints(), v, footprint.Opts{Params: spec.Params})
	}
	return certs
}

// TestCertificateShapes pins the paper-level structure of the six
// certificates: which benchmarks certify under the 4800-page
// allotment with buffered releasing, and which provably overflow it
// (mgrid via imprecise releases, fftpde via its symbolic stride).
func TestCertificateShapes(t *testing.T) {
	fits := map[string]bool{
		"matvec": true, "embar": true, "buk": true, "cgm": true,
		"mgrid": false, "fftpde": false,
	}
	uncertified := map[string]bool{
		"matvec": false, "embar": false,
		"buk": true, "cgm": true, "mgrid": true, "fftpde": true,
	}
	for _, spec := range workload.All() {
		certs := certifyAll(t, spec)
		b := certs[footprint.VersionB]
		if b.ParamGaps {
			t.Errorf("%s: B certificate has parameter gaps at paper scale", spec.Name)
		}
		if b.BoundPages < 0 {
			t.Errorf("%s: B bound unresolved", spec.Name)
			continue
		}
		if got := b.BoundPages <= int64(b.Target.MemoryPages); got != fits[spec.Name] {
			t.Errorf("%s: B bound %d vs allotment %d, fits=%v, want fits=%v",
				spec.Name, b.BoundPages, b.Target.MemoryPages, got, fits[spec.Name])
		}
		if got := len(b.Uncertified) > 0; got != uncertified[spec.Name] {
			t.Errorf("%s: uncertified nests = %d, want any=%v", spec.Name, len(b.Uncertified), uncertified[spec.Name])
		}
		// O and P retain everything: every out-of-core benchmark clamps.
		for _, v := range []footprint.Version{footprint.VersionO, footprint.VersionP} {
			if !certs[v].Clamped {
				t.Errorf("%s %s: out-of-core benchmark should clamp, bound %d",
					spec.Name, v, certs[v].BoundPages)
			}
		}
		// Releasing never certifies above the no-release interpretation.
		for _, v := range []footprint.Version{footprint.VersionR, footprint.VersionB} {
			if certs[v].BoundPages >= 0 && certs[v].BoundPages > certs[footprint.VersionO].BoundPages {
				t.Errorf("%s: %s bound %d exceeds O bound %d",
					spec.Name, v, certs[v].BoundPages, certs[footprint.VersionO].BoundPages)
			}
		}
	}
}

// TestCertificateGoldens locks the rendered four-version reports
// against the checked-in listings (the same bytes `memhog certify`
// prints and CI diffs). Regenerate with `go run ./cmd/gen-golden`.
func TestCertificateGoldens(t *testing.T) {
	for _, spec := range workload.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			got := footprint.Report(certifyAll(t, spec))
			want, err := os.ReadFile(filepath.Join("testdata", spec.Name+".cert.golden"))
			if err != nil {
				t.Fatalf("missing golden (run `go run ./cmd/gen-golden`): %v", err)
			}
			if got != string(want) {
				t.Errorf("certificate changed; if intentional run `go run ./cmd/gen-golden`\n--- got\n%s\n--- want\n%s", got, want)
			}
		})
	}
}

// TestCertifyDeterministic demands byte-identical reports across two
// fresh compile+certify rounds — the property `memhog certify` needs
// across -j worker counts.
func TestCertifyDeterministic(t *testing.T) {
	for _, spec := range workload.All() {
		a := footprint.Report(certifyAll(t, spec))
		b := footprint.Report(certifyAll(t, spec))
		if a != b {
			t.Fatalf("%s: certificate report not deterministic", spec.Name)
		}
	}
}

// TestCertificateWithoutParams pins the degraded mode: bounds that
// need runtime parameters fall back to whole arrays, flag ParamGaps,
// and stay sound via the clamp.
func TestCertificateWithoutParams(t *testing.T) {
	spec, err := workload.ByName("cgm")
	if err != nil {
		t.Fatal(err)
	}
	prog := spec.Program(nil)
	tgt := compiler.DefaultTarget(16<<10, 4800)
	c, err := compiler.Compile(prog, tgt)
	if err != nil {
		t.Fatal(err)
	}
	cert := footprint.Certify(prog, tgt, c.Hints(), footprint.VersionB, footprint.Opts{})
	if !cert.ParamGaps {
		t.Fatal("cgm without params should report parameter gaps")
	}
	if cert.CertifiedPages > int64(tgt.MemoryPages) {
		t.Fatalf("certified %d exceeds the allotment", cert.CertifiedPages)
	}
}

// TestEmptyScheduleCertifies pins that versions O and P certify from
// an empty hint schedule (nothing to interpret but the footprints).
func TestEmptyScheduleCertifies(t *testing.T) {
	spec, err := workload.ByName("matvec")
	if err != nil {
		t.Fatal(err)
	}
	prog := spec.Program(nil)
	tgt := compiler.DefaultTarget(16<<10, 4800)
	cert := footprint.Certify(prog, tgt, nil, footprint.VersionO, footprint.Opts{Params: spec.Params})
	if cert.BoundPages <= 0 {
		t.Fatalf("O bound = %d, want positive", cert.BoundPages)
	}
	if !cert.Clamped {
		t.Fatal("out-of-core matvec under O should clamp")
	}
}
