package footprint

import (
	"fmt"
	"sort"
	"strings"

	"memhogs/internal/compiler"
	"memhogs/internal/lang"
)

// interp is the abstract interpreter's working state for one
// (program, schedule, version) certification.
type interp struct {
	prog  *lang.Program
	tgt   compiler.Target
	hints []compiler.Hint
	ver   Version
	env   lang.Env // Known + runtime params: the evaluation environment
	known lang.Env // compile-time Known only: mirrors the compiler's view
	far   int64    // far-tier size in pages; 0 = single-tier domain
	prio  int      // FarMinPrio demotion gate
}

// farOn reports whether the two-tier domain is active for this
// interpretation: a far tier is configured and the version's run-time
// layer issues releases at all (only the releaser demotes — daemon
// steals and donations go to swap, so O and P never populate the
// tier).
func (in *interp) farOn() bool { return in.far > 0 && in.ver.UsesRelease() }

// site is one nest occurrence in program execution order. Procedure
// nests appear once per call site, with the formals bound to the
// actuals of that call (the MGRID "single version of code" case:
// resid(NF) and resid(NC) share one compiled nest and one hint set
// but certify at different extents).
type site struct {
	root *lang.Loop
	proc string
	bind map[string]Poly // formal -> actual, as a Poly over params
	// mult is the product of the trip counts of the enclosing
	// (transparent) driver loops: how many times this nest executes
	// per program run. Carried residency saturates, so the DRAM bound
	// never needs it, but the demotion-flow bound does.
	mult Poly
}

func (s *site) line() int { return s.root.Line }

func (s *site) label() string {
	name := "main"
	if s.proc != "" {
		name = s.proc
	}
	lbl := fmt.Sprintf("%s:%d", name, s.line())
	if len(s.bind) > 0 {
		keys := make([]string, 0, len(s.bind))
		for k := range s.bind {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s=%s", k, s.bind[k].String()))
		}
		lbl += " (" + strings.Join(parts, ", ") + ")"
	}
	return lbl
}

// sites expands the program body into the executed nest sequence:
// driver loops (loops containing calls) are transparent, calls expand
// to the callee's nests under the call's formal bindings.
func (in *interp) sites() []*site {
	var out []*site
	in.bodySites(in.prog.Body, "", nil, ConstPoly(1), &out, 0)
	return out
}

func (in *interp) bodySites(body []lang.Stmt, proc string, bind map[string]Poly, mult Poly, out *[]*site, depth int) {
	if depth > 8 { // defensive: the language has no recursion
		return
	}
	for _, s := range body {
		switch st := s.(type) {
		case *lang.Loop:
			if loopContainsCall(st) {
				in.bodySites(st.Body, proc, bind, mult.Mul(tripPoly(st, bind)), out, depth)
				continue
			}
			*out = append(*out, &site{root: st, proc: proc, bind: bind, mult: mult})
		case *lang.Call:
			nb := map[string]Poly{}
			for i, f := range st.Proc.Formals {
				if i < len(st.Args) {
					nb[f] = scalarPoly(st.Args[i], bind)
				}
			}
			in.bodySites(st.Proc.Body, st.Proc.Name, nb, mult, out, depth+1)
		}
	}
}

func loopContainsCall(l *lang.Loop) bool {
	for _, s := range l.Body {
		switch st := s.(type) {
		case *lang.Call:
			return true
		case *lang.Loop:
			if loopContainsCall(st) {
				return true
			}
		}
	}
	return false
}

// aref is one array reference found by the interpreter's own AST
// walk, with its independently linearized subscript.
type aref struct {
	arr      *lang.Array
	lin      *lang.Affine // nil when indirect or not linearizable
	indirect bool         // the reference target is reached through an index array
	path     []*lang.Loop
}

// collectRefs gathers every reference beneath a nest root, including
// the index-array reads of indirect references (which stream like
// ordinary affine accesses).
func (in *interp) collectRefs(root *lang.Loop) []aref {
	var out []aref
	var walk func(l *lang.Loop, path []*lang.Loop)
	walk = func(l *lang.Loop, path []*lang.Loop) {
		path = append(path, l)
		for _, s := range l.Body {
			switch st := s.(type) {
			case *lang.Loop:
				walk(st, path)
			case *lang.Assign:
				for _, r := range lang.StmtRefs(st) {
					p := append([]*lang.Loop{}, path...)
					lin, ind := in.linearize(r)
					out = append(out, aref{arr: r.Array, lin: lin, indirect: ind, path: p})
					if ind && len(r.Index) == 1 {
						if ix, ok := r.Index[0].(*lang.Indirect); ok {
							out = append(out, aref{arr: ix.Array, lin: ix.Idx, path: p})
						}
					}
				}
			}
		}
	}
	walk(root, nil)
	return out
}

// linearize flattens a reference into a single element offset under
// the compiler's row-major rule and compile-time-known dimensions, so
// signatures here agree with the signatures of the compiled hints. It
// returns (nil, true) for indirect references and (nil, false) when a
// dimension is not known at compile time.
func (in *interp) linearize(r *lang.Ref) (*lang.Affine, bool) {
	if len(r.Index) == 1 {
		if _, ok := r.Index[0].(*lang.Indirect); ok {
			return nil, true
		}
	}
	scales := make([]int64, len(r.Array.Dims))
	scale := int64(1)
	for d := len(r.Array.Dims) - 1; d >= 0; d-- {
		scales[d] = scale
		dim, ok := r.Array.Dims[d].TryEval(in.known)
		if !ok {
			return nil, false
		}
		scale *= dim
	}
	lin := &lang.Affine{}
	for d, idx := range r.Index {
		aff, ok := idx.(*lang.Affine)
		if !ok {
			return nil, true
		}
		lin = lang.AddAffine(lin, lang.ScaleAffine(aff, scales[d]))
	}
	return lin, false
}

// signature canonicalizes an affine's variable terms, matching the
// verifier's group-locality rule: equal signatures touch the same
// address stream up to a constant offset.
func signature(a *lang.Affine) string {
	terms := append([]lang.Term{}, a.Terms...)
	sort.Slice(terms, func(i, j int) bool {
		if terms[i].Var != terms[j].Var {
			return terms[i].Var < terms[j].Var
		}
		return terms[i].CoefParam < terms[j].CoefParam
	})
	var b strings.Builder
	for _, t := range terms {
		fmt.Fprintf(&b, "%s*%d*%s|", t.Var, t.Coef, t.CoefParam)
	}
	return b.String()
}

// group is one signature-equivalence class of affine references to
// one array within one nest.
type group struct {
	sig        string
	minC, maxC int64
	widthElems Poly // interval width in elements, including spread
	ok         bool
	reason     string // why the group forced ⊤, when !ok

	release   *compiler.Hint // matching release directive, if any
	imprecise bool
}

// tripPoly is the loop's trip count as a Poly over params, with the
// site's formal bindings substituted.
func tripPoly(l *lang.Loop, bind map[string]Poly) Poly {
	step := l.Step
	if step <= 0 {
		step = 1
	}
	hi := scalarPoly(l.Hi, bind)
	lo := scalarPoly(l.Lo, bind)
	return hi.Sub(lo).Scale(1, step).AddConst(1)
}

// arrayState is one array's abstract state within one site.
type arrayState struct {
	arr *lang.Array

	fpPoly     Poly  // footprint bound in pages (whole array when top)
	fpPages    int64 // evaluated; -1 unresolved
	wholePages int64 // evaluated whole-array pages; -1 unresolved
	window     int64 // version-specific resident window; -1 unresolved

	policy      Policy
	top         bool
	paramGap    bool // degraded because runtime params were not supplied
	notes       []string
	coversWhole bool // the touched interval spans the whole array
	streamed    bool
	retain      *compiler.Hint // the priority>0 release behind PolicyRetained

	// Two-tier state (zero unless in.farOn()). farOcc is the array's
	// demotable occupancy contribution (capped at the whole array;
	// -1 unresolved); farFlow is the per-execution demotion volume,
	// uncapped since distinct groups release their pages
	// independently (-1 = ⊤: an imprecise/indirect release can demote
	// the same page repeatedly). demote is the first release passing
	// the FarMinPrio gate, for the thrash-window finding.
	farOcc  int64
	farFlow int64
	demote  *compiler.Hint
}

func (st *arrayState) note(s string) {
	for _, n := range st.notes {
		if n == s {
			return
		}
	}
	st.notes = append(st.notes, s)
}

// wholeArray returns the array's total page count: the exact value
// under env (or -1 when unresolved) and the symbolic Poly.
func (in *interp) wholeArray(a *lang.Array) (int64, Poly) {
	poly := ConstPoly(1)
	for _, d := range a.Dims {
		poly = poly.Mul(scalarPoly(d, nil))
	}
	poly = poly.Scale(int64(a.ElemSize), int64(in.tgt.PageSize)).AddConst(1)
	elems, err := a.NumElems(in.env)
	if err != nil {
		return -1, poly
	}
	return ceilDiv(elems*int64(a.ElemSize), int64(in.tgt.PageSize)) + 1, poly
}

// analyzeSite computes the per-array abstract state of one nest
// occurrence under the interpreter's version.
func (in *interp) analyzeSite(s *site) []*arrayState {
	refs := in.collectRefs(s.root)

	// Group affine references by signature; collect ⊤ causes.
	type arrAcc struct {
		arr     *lang.Array
		groups  map[string]*group
		order   []string
		reasons []string
		rels    []*compiler.Hint // every release on the array at this site
	}
	accs := map[*lang.Array]*arrAcc{}
	var arrOrder []*lang.Array
	acc := func(a *lang.Array) *arrAcc {
		if x, ok := accs[a]; ok {
			return x
		}
		x := &arrAcc{arr: a, groups: map[string]*group{}}
		accs[a] = x
		arrOrder = append(arrOrder, a)
		return x
	}
	addReason := func(a *arrAcc, r string) {
		for _, have := range a.reasons {
			if have == r {
				return
			}
		}
		a.reasons = append(a.reasons, r)
	}

	for _, r := range refs {
		a := acc(r.arr)
		if r.indirect {
			addReason(a, "indirectly subscripted (a[b[i]])")
			continue
		}
		if r.lin == nil {
			addReason(a, "dimensions unknown at compile time")
			continue
		}
		symbolic := false
		for _, t := range r.lin.Terms {
			if t.CoefParam != "" {
				symbolic = true
			}
		}
		if symbolic {
			addReason(a, "symbolic stride in subscript")
			continue
		}
		sig := signature(r.lin)
		g, ok := a.groups[sig]
		if !ok {
			g = &group{sig: sig, minC: r.lin.Const, maxC: r.lin.Const, ok: true}
			// Interval width: Σ |coef|·(trips−1) over the group's loop
			// variables, plus the constant spread, plus one.
			for _, t := range r.lin.Terms {
				var loop *lang.Loop
				for _, l := range r.path {
					if l.Var == t.Var {
						loop = l
					}
				}
				if loop == nil {
					g.ok = false
					g.reason = fmt.Sprintf("subscript variable %q not bound by the nest", t.Var)
					break
				}
				coef := t.Coef
				if coef < 0 {
					coef = -coef
				}
				g.widthElems = g.widthElems.Add(tripPoly(loop, s.bind).AddConst(-1).Scale(coef, 1))
			}
			a.groups[sig] = g
			a.order = append(a.order, sig)
		}
		if r.lin.Const < g.minC {
			g.minC = r.lin.Const
		}
		if r.lin.Const > g.maxC {
			g.maxC = r.lin.Const
		}
	}

	// Attach the schedule: releases by group, prefetch distances by
	// array.
	pagesAhead := map[*lang.Array]int64{}
	for i := range in.hints {
		h := &in.hints[i]
		if len(h.Path) == 0 || h.Path[0] != s.root {
			continue
		}
		if h.Kind == compiler.HintPrefetch {
			if h.Array != nil && h.PagesAhead > pagesAhead[h.Array] {
				pagesAhead[h.Array] = h.PagesAhead
			}
			continue
		}
		if h.Array == nil {
			continue
		}
		a := acc(h.Array)
		a.rels = append(a.rels, h)
		switch {
		case h.IndexArray != nil || h.Affine == nil:
			addReason(a, "release of an indirect reference")
		default:
			sig := signature(h.Affine)
			if g, ok := a.groups[sig]; ok {
				if g.release == nil {
					g.release = h
				}
				if h.Imprecise {
					g.imprecise = true
				}
			}
		}
	}

	// Assemble per-array states.
	elem := func(a *lang.Array) int64 { return int64(a.ElemSize) }
	page := int64(in.tgt.PageSize)
	var out []*arrayState
	for _, arr := range arrOrder {
		a := accs[arr]
		st := &arrayState{arr: arr}
		st.wholePages, st.fpPoly = in.wholeArray(arr)

		// ⊤ causes at the array level.
		top := len(a.reasons) > 0
		topReasons := append([]string{}, a.reasons...)
		for _, sig := range a.order {
			g := a.groups[sig]
			if !g.ok {
				top = true
				topReasons = append(topReasons, g.reason)
			}
			if g.imprecise && in.ver.UsesRelease() {
				// An imprecise release fires at the group's leader, so
				// re-referenced pages are rescued back in and never
				// released again: they accumulate like unreleased
				// pages (the MGRID pathology).
				top = true
				topReasons = append(topReasons, "imprecise release placed behind the leader (re-referenced pages are rescued and retained)")
			}
		}

		if top {
			st.top = true
			st.policy = PolicyTop
			st.fpPages = st.wholePages
			st.window = st.wholePages
			st.coversWhole = true
			sort.Strings(topReasons)
			for _, r := range topReasons {
				st.note(r)
			}
			in.farTop(st, a.rels)
			out = append(out, st)
			continue
		}

		// Footprint: sum of group interval pages, capped at the whole
		// array; symbolic form keeps the group sum.
		fpPoly := Poly{}
		fpPages := int64(0)
		widthElemsTotal := int64(0)
		resolved := true
		for _, sig := range a.order {
			g := a.groups[sig]
			w := g.widthElems.AddConst(g.maxC - g.minC + 1)
			gp := w.Scale(elem(arr), page).AddConst(2)
			fpPoly = fpPoly.Add(gp)
			if v, err := w.Eval(in.env); err == nil {
				widthElemsTotal += v
				fpPages += ceilDiv(v*elem(arr), page) + 2
			} else {
				resolved = false
			}
		}
		if !resolved {
			// Unbound parameters: degrade to the whole array (and to
			// the memory limit if even that is unresolved).
			st.top = true
			st.paramGap = true
			st.policy = PolicyTop
			st.fpPoly = fpPoly
			st.fpPages = st.wholePages
			st.window = st.wholePages
			st.coversWhole = true
			st.note("bound unresolved (unbound parameters)")
			in.farTop(st, a.rels)
			out = append(out, st)
			continue
		}
		st.fpPoly = fpPoly
		st.fpPages = fpPages
		if st.wholePages >= 0 && fpPages > st.wholePages {
			st.fpPages = st.wholePages
		}
		if st.wholePages >= 0 {
			if elems, err := arr.NumElems(in.env); err == nil && widthElemsTotal >= elems {
				st.coversWhole = true
			}
		}

		// Version-specific window: each group streams, is retained, or
		// stays resident.
		if !in.ver.UsesRelease() {
			st.policy = PolicyResident
			st.window = st.fpPages
			out = append(out, st)
			continue
		}
		window := int64(0)
		anyStream, anyRetain, anyResident := false, false, false
		for _, sig := range a.order {
			g := a.groups[sig]
			w := g.widthElems.AddConst(g.maxC - g.minC + 1)
			gv, _ := w.Eval(in.env)
			gPages := ceilDiv(gv*elem(arr), page) + 2
			if st.wholePages >= 0 && gPages > st.wholePages {
				gPages = st.wholePages
			}
			switch {
			case g.release == nil:
				window += gPages
				anyResident = true
			case in.ver == VersionB && g.release.Priority > 0:
				window += gPages
				anyRetain = true
				if st.retain == nil {
					st.retain = g.release
				}
				st.note(fmt.Sprintf("release priority %d: buffered, retained until memory pressure", g.release.Priority))
			default:
				spread := ceilDiv((g.maxC-g.minC+1)*elem(arr), page) + 1
				window += spread + pagesAhead[arr] + streamSlackPages
				anyStream = true
			}
			if in.farOn() && g.release != nil && g.release.Priority >= in.prio {
				// Released pages passing the eq. 2 gate demote to the
				// far tier (whether the release issues immediately or
				// drains from the buffer under pressure).
				st.farOcc += gPages
				st.farFlow += gPages
				if st.demote == nil {
					st.demote = g.release
				}
			}
		}
		if st.wholePages >= 0 && st.farOcc > st.wholePages {
			st.farOcc = st.wholePages
		}
		if st.wholePages >= 0 && window > st.wholePages+pagesAhead[arr]+streamSlackPages {
			window = st.wholePages + pagesAhead[arr] + streamSlackPages
		}
		st.window = window
		switch {
		case anyStream && !anyRetain && !anyResident:
			st.policy = PolicyStreamed
			st.streamed = true
		case anyRetain:
			st.policy = PolicyRetained
		case anyStream:
			// Mixed: some groups stream, some stay; the carried pages
			// behave like a resident footprint.
			st.policy = PolicyResident
		default:
			st.policy = PolicyResident
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].arr.Name < out[j].arr.Name })
	return out
}

// farTop applies the two-tier ⊤ to an array state: if any release on
// the array passes the FarMinPrio gate, its whole extent may end up
// in the far tier (occupancy degrades to the whole array, possibly
// unresolved) and the demotion flow is unbounded — a rescued or
// imprecisely released page can demote again on every pass.
func (in *interp) farTop(st *arrayState, rels []*compiler.Hint) {
	if !in.farOn() {
		return
	}
	for _, h := range rels {
		if h.Priority >= in.prio {
			st.farOcc = st.wholePages
			st.farFlow = -1
			if st.demote == nil {
				st.demote = h
			}
			return
		}
	}
}
