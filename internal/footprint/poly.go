package footprint

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"memhogs/internal/lang"
)

// Poly is a multivariate polynomial with rational coefficients over
// symbolic parameters — the value domain of the abstract interpreter.
// Resident-set bounds are polynomials in array extents and loop trip
// counts (e.g. "N/2048 + 3"); they are built symbolically so the
// certificate can be rendered as a function of problem size, and
// evaluated exactly (with a final ceiling) once the runtime bindings
// are known.
//
// Rational coefficients over-approximate the language's truncating
// integer division: for non-negative operands, a/b ≤ ⌈a/b⌉, so every
// Poly built from a Scalar or trip count is an upper bound on the
// integer value it models. That is the direction a residency
// certificate needs.
type Poly struct {
	monos []mono
}

// mono is one monomial: coefficient num/den times the product of
// vars (sorted; a repeated name is a higher power).
type mono struct {
	num, den int64 // den > 0
	vars     []string
}

func (m mono) key() string { return strings.Join(m.vars, "*") }

// degree orders monomials for rendering: higher total degree first,
// then lexicographic variable key.
func (m mono) degree() int { return len(m.vars) }

// ConstPoly returns the polynomial v.
func ConstPoly(v int64) Poly {
	if v == 0 {
		return Poly{}
	}
	return Poly{monos: []mono{{num: v, den: 1}}}
}

// VarPoly returns the polynomial 1·name.
func VarPoly(name string) Poly {
	return Poly{monos: []mono{{num: 1, den: 1, vars: []string{name}}}}
}

// IsZero reports whether the polynomial has no terms.
func (p Poly) IsZero() bool { return len(p.monos) == 0 }

// IsConst reports whether the polynomial has no symbolic terms and
// returns its (ceiled) constant value.
func (p Poly) IsConst() (int64, bool) {
	switch len(p.monos) {
	case 0:
		return 0, true
	case 1:
		if len(p.monos[0].vars) == 0 {
			return ceilDiv(p.monos[0].num, p.monos[0].den), true
		}
	}
	return 0, false
}

func gcd(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// normalize merges monomials with equal variable keys, reduces
// fractions, and drops zeros, producing the canonical sorted form.
func normalize(ms []mono) Poly {
	byKey := map[string]*mono{}
	var keys []string
	for _, m := range ms {
		sort.Strings(m.vars)
		k := m.key()
		if acc, ok := byKey[k]; ok {
			// acc.num/acc.den + m.num/m.den
			num := acc.num*m.den + m.num*acc.den
			den := acc.den * m.den
			acc.num, acc.den = num, den
		} else {
			cp := m
			cp.vars = append([]string(nil), m.vars...)
			byKey[k] = &cp
			keys = append(keys, k)
		}
	}
	var out []mono
	for _, k := range keys {
		m := byKey[k]
		if m.num == 0 {
			continue
		}
		g := gcd(m.num, m.den)
		m.num /= g
		m.den /= g
		if m.den < 0 {
			m.num, m.den = -m.num, -m.den
		}
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].degree() != out[j].degree() {
			return out[i].degree() > out[j].degree()
		}
		return out[i].key() < out[j].key()
	})
	return Poly{monos: out}
}

// Add returns p + q.
func (p Poly) Add(q Poly) Poly {
	return normalize(append(append([]mono(nil), p.monos...), q.monos...))
}

// AddConst returns p + v.
func (p Poly) AddConst(v int64) Poly { return p.Add(ConstPoly(v)) }

// Sub returns p − q.
func (p Poly) Sub(q Poly) Poly { return p.Add(q.Scale(-1, 1)) }

// Scale returns p · num/den.
func (p Poly) Scale(num, den int64) Poly {
	if den == 0 {
		den = 1
	}
	var out []mono
	for _, m := range p.monos {
		out = append(out, mono{num: m.num * num, den: m.den * den, vars: m.vars})
	}
	return normalize(out)
}

// Mul returns p · q.
func (p Poly) Mul(q Poly) Poly {
	var out []mono
	for _, a := range p.monos {
		for _, b := range q.monos {
			out = append(out, mono{
				num:  a.num * b.num,
				den:  a.den * b.den,
				vars: append(append([]string(nil), a.vars...), b.vars...),
			})
		}
	}
	return normalize(out)
}

func ceilDiv(num, den int64) int64 {
	if den == 0 {
		return num
	}
	q := num / den
	if num%den != 0 && (num > 0) == (den > 0) {
		q++
	}
	return q
}

// Eval computes the polynomial's value under env exactly (big.Rat
// arithmetic), rounding the final result up — the sound direction for
// an upper bound. It fails if any variable is unbound.
func (p Poly) Eval(env lang.Env) (int64, error) {
	total := new(big.Rat)
	for _, m := range p.monos {
		t := new(big.Rat).SetFrac64(m.num, m.den)
		for _, v := range m.vars {
			x, ok := env[v]
			if !ok {
				return 0, fmt.Errorf("footprint: unbound symbol %q", v)
			}
			t.Mul(t, new(big.Rat).SetInt64(x))
		}
		total.Add(total, t)
	}
	num, den := total.Num(), total.Denom()
	q := new(big.Int).Div(num, den) // floor for any sign
	r := new(big.Int).Mod(num, den)
	v := q.Int64()
	if r.Sign() != 0 {
		v++
	}
	return v, nil
}

// String renders the polynomial canonically, e.g. "N*M/2048 + 3" or
// "0" when empty.
func (p Poly) String() string {
	if len(p.monos) == 0 {
		return "0"
	}
	var b strings.Builder
	for i, m := range p.monos {
		num := m.num
		if i == 0 {
			if num < 0 {
				b.WriteString("-")
				num = -num
			}
		} else {
			if num < 0 {
				b.WriteString(" - ")
				num = -num
			} else {
				b.WriteString(" + ")
			}
		}
		switch {
		case len(m.vars) == 0:
			fmt.Fprintf(&b, "%d", num)
			if m.den != 1 {
				fmt.Fprintf(&b, "/%d", m.den)
			}
		default:
			if num != 1 {
				fmt.Fprintf(&b, "%d*", num)
			}
			b.WriteString(strings.Join(m.vars, "*"))
			if m.den != 1 {
				fmt.Fprintf(&b, "/%d", m.den)
			}
		}
	}
	return b.String()
}

// scalarPoly converts a lang.Scalar into a Poly, substituting bound
// formals (bind maps a formal name to the Poly of its actual
// argument). Unbound names become free symbols.
func scalarPoly(s lang.Scalar, bind map[string]Poly) Poly {
	if s.Name == "" {
		return ConstPoly(s.Offset)
	}
	base, ok := bind[s.Name]
	if !ok {
		base = VarPoly(s.Name)
	}
	div := s.Div
	if div <= 0 {
		div = 1
	}
	return base.Scale(s.Scale, div).AddConst(s.Offset)
}
