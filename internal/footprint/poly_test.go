package footprint

import (
	"testing"

	"memhogs/internal/lang"
)

func TestPolyArithmetic(t *testing.T) {
	n := VarPoly("N")
	m := VarPoly("M")
	env := lang.Env{"N": 6, "M": 4}

	cases := []struct {
		name string
		p    Poly
		str  string
		want int64
	}{
		{"const", ConstPoly(7), "7", 7},
		{"var", n, "N", 6},
		{"sum", n.Add(m).AddConst(3), "M + N + 3", 13},
		{"sub", n.Sub(m), "-M + N", 2},
		{"product", n.Mul(m), "M*N", 24},
		{"square", n.Mul(n), "N*N", 36},
		{"scale", n.Scale(3, 2), "3*N/2", 9},
		{"cancel", n.Sub(n), "0", 0},
		{"merge", n.Add(n), "2*N", 12},
		{"mixed", n.Mul(m).Scale(1, 8).AddConst(-1), "M*N/8 - 1", 2},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.str {
			t.Errorf("%s: String() = %q, want %q", c.name, got, c.str)
		}
		v, err := c.p.Eval(env)
		if err != nil {
			t.Errorf("%s: Eval: %v", c.name, err)
			continue
		}
		if v != c.want {
			t.Errorf("%s: Eval = %d, want %d", c.name, v, c.want)
		}
	}
}

// TestPolyEvalCeils pins the sound rounding direction: fractional
// values round up, and truncating-division over-approximation never
// undercounts.
func TestPolyEvalCeils(t *testing.T) {
	p := VarPoly("N").Scale(1, 3) // N/3
	v, err := p.Eval(lang.Env{"N": 7})
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 { // ceil(7/3)
		t.Fatalf("Eval(7/3) = %d, want 3", v)
	}
}

func TestPolyEvalUnbound(t *testing.T) {
	if _, err := VarPoly("N").Eval(lang.Env{}); err == nil {
		t.Fatal("want error for unbound symbol")
	}
}

func TestScalarPolySubstitutesFormals(t *testing.T) {
	// Scalar (2*n)/4 + 1 with formal n bound to the actual NF-2.
	s := lang.Scalar{Name: "n", Scale: 2, Div: 4, Offset: 1}
	bind := map[string]Poly{"n": VarPoly("NF").AddConst(-2)}
	p := scalarPoly(s, bind)
	if got := p.String(); got != "NF/2" {
		t.Fatalf("scalarPoly = %q, want %q", got, "NF/2")
	}
	v, err := p.Eval(lang.Env{"NF": 190})
	if err != nil {
		t.Fatal(err)
	}
	if v != 95 {
		t.Fatalf("Eval = %d, want 95", v)
	}
}

func TestIsConst(t *testing.T) {
	if v, ok := ConstPoly(5).Add(ConstPoly(2)).IsConst(); !ok || v != 7 {
		t.Fatalf("IsConst = (%d, %v), want (7, true)", v, ok)
	}
	if _, ok := VarPoly("N").IsConst(); ok {
		t.Fatal("VarPoly should not be const")
	}
}
