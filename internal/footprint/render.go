package footprint

import (
	"fmt"
	"strings"

	"memhogs/internal/metrics"
)

// pagesStr renders a page count, with "?" for unresolved bounds.
func pagesStr(p int64) string {
	if p < 0 {
		return "?"
	}
	return fmt.Sprintf("%d", p)
}

// String renders the certificate as a deterministic plain-text
// listing: header, one table per nest occurrence, the peak line, and
// the uncertified-nest / dead-window findings. The output depends
// only on the certificate's contents, so it is byte-identical across
// worker counts and runs.
func (c *Certificate) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "residency certificate: %s version %s\n", c.Program, c.Version)
	fmt.Fprintf(&b, "target: %d pages x %d B", c.Target.MemoryPages, c.Target.PageSize)
	if c.FarPages > 0 {
		fmt.Fprintf(&b, "; far tier %d pages (min-prio %d)", c.FarPages, c.FarMinPrio)
	}
	if env := envString(c.Env); env != "" {
		fmt.Fprintf(&b, "; %s", env)
	}
	b.WriteString("\n\n")

	for _, s := range c.Sites {
		cols := []string{"array", "footprint (pages)", "eval", "window", "policy", "note"}
		if c.FarPages > 0 {
			cols = append(cols, "far")
		}
		t := metrics.NewTable(fmt.Sprintf("nest %s (peak %s pages)", s.Label, pagesStr(s.TotalPages)),
			cols...)
		for _, w := range s.Windows {
			row := []interface{}{w.Array, w.Footprint.String(), pagesStr(w.FootprintPages),
				pagesStr(w.WindowPages), w.Policy.String(), w.Note}
			if c.FarPages > 0 {
				row = append(row, pagesStr(w.FarWindowPages))
			}
			t.AddRow(row...)
		}
		b.WriteString(t.String())
		b.WriteString("\n")
	}

	switch {
	case c.BoundPages < 0:
		fmt.Fprintf(&b, "interpreted bound: unresolved; certified peak clamped at the %d-page allotment\n",
			c.CertifiedPages)
	case c.Clamped:
		fmt.Fprintf(&b, "interpreted bound: %d pages @ %s; certified peak clamped at the %d-page allotment\n",
			c.BoundPages, c.PeakSite, c.CertifiedPages)
	default:
		fmt.Fprintf(&b, "certified peak: %d pages @ %s (allotment %d)\n",
			c.CertifiedPages, c.PeakSite, c.Target.MemoryPages)
	}

	if c.FarPages > 0 {
		switch {
		case c.FarBoundPages < 0:
			fmt.Fprintf(&b, "far-tier bound: unresolved; certified far peak clamped at the %d-page tier\n",
				c.FarCertifiedPages)
		case c.FarClamped:
			fmt.Fprintf(&b, "far-tier bound: %d pages; certified far peak clamped at the %d-page tier\n",
				c.FarBoundPages, c.FarCertifiedPages)
		default:
			fmt.Fprintf(&b, "certified far peak: %d pages (tier %d)\n", c.FarCertifiedPages, c.FarPages)
		}
		fmt.Fprintf(&b, "demote flow: %s pages\n", pagesStr(c.DemoteFlowPages))
	}

	for _, u := range c.Uncertified {
		fmt.Fprintf(&b, "uncertified nest %s:%d:\n", u.Proc, u.Line)
		for _, r := range u.Reasons {
			fmt.Fprintf(&b, "  %s\n", r)
		}
	}
	for _, d := range c.DeadWindows {
		fmt.Fprintf(&b, "dead window: %s retained by priority-%d release (tag %d) at %s:%d with %d nests still to run\n",
			d.Array, d.Priority, d.Tag, d.Proc, d.Line, d.NestsAfter)
	}
	for _, w := range c.ThrashWindows {
		fmt.Fprintf(&b, "thrash window: %s demoted by priority-%d release (tag %d) at %s:%d is re-touched by the very next nest %s:%d\n",
			w.Array, w.Priority, w.Tag, w.Proc, w.Line, w.NextProc, w.NextLine)
	}
	return b.String()
}

// Report renders the four-version certificate summary used by
// `memhog certify`: the shared header, the per-nest breakdown of the
// buffered (B) interpretation — the version the paper's schedule is
// designed for — and a summary table across O/P/R/B.
func Report(certs map[Version]*Certificate) string {
	b := certs[VersionB]
	if b == nil {
		for _, v := range Versions() {
			if certs[v] != nil {
				b = certs[v]
				break
			}
		}
	}
	if b == nil {
		return ""
	}
	var out strings.Builder
	out.WriteString(b.String())
	out.WriteString("\n")

	far := b.FarPages > 0
	cols := []string{"version", "bound (pages)", "certified", "clamped", "peak nest"}
	if far {
		cols = append(cols, "far bound", "far certified", "demote flow")
	}
	t := metrics.NewTable("certified peak by version", cols...)
	for _, v := range Versions() {
		c := certs[v]
		if c == nil {
			continue
		}
		clamped := "no"
		if c.Clamped {
			clamped = "yes"
		}
		row := []interface{}{v.String(), pagesStr(c.BoundPages), pagesStr(c.CertifiedPages), clamped, c.PeakSite}
		if far {
			row = append(row, pagesStr(c.FarBoundPages), pagesStr(c.FarCertifiedPages), pagesStr(c.DemoteFlowPages))
		}
		t.AddRow(row...)
	}
	t.AddNote("allotment: %d pages; a clamped bound is sound but not tight.", b.Target.MemoryPages)
	if far {
		t.AddNote("far tier: %d pages behind the allotment; O/P never demote, priority<%d releases go to swap.",
			b.FarPages, b.FarMinPrio)
	}
	out.WriteString(t.String())
	return out.String()
}
