package footprint

import (
	"fmt"
	"strings"

	"memhogs/internal/metrics"
)

// pagesStr renders a page count, with "?" for unresolved bounds.
func pagesStr(p int64) string {
	if p < 0 {
		return "?"
	}
	return fmt.Sprintf("%d", p)
}

// String renders the certificate as a deterministic plain-text
// listing: header, one table per nest occurrence, the peak line, and
// the uncertified-nest / dead-window findings. The output depends
// only on the certificate's contents, so it is byte-identical across
// worker counts and runs.
func (c *Certificate) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "residency certificate: %s version %s\n", c.Program, c.Version)
	fmt.Fprintf(&b, "target: %d pages x %d B", c.Target.MemoryPages, c.Target.PageSize)
	if env := envString(c.Env); env != "" {
		fmt.Fprintf(&b, "; %s", env)
	}
	b.WriteString("\n\n")

	for _, s := range c.Sites {
		t := metrics.NewTable(fmt.Sprintf("nest %s (peak %s pages)", s.Label, pagesStr(s.TotalPages)),
			"array", "footprint (pages)", "eval", "window", "policy", "note")
		for _, w := range s.Windows {
			t.AddRow(w.Array, w.Footprint.String(), pagesStr(w.FootprintPages),
				pagesStr(w.WindowPages), w.Policy.String(), w.Note)
		}
		b.WriteString(t.String())
		b.WriteString("\n")
	}

	switch {
	case c.BoundPages < 0:
		fmt.Fprintf(&b, "interpreted bound: unresolved; certified peak clamped at the %d-page allotment\n",
			c.CertifiedPages)
	case c.Clamped:
		fmt.Fprintf(&b, "interpreted bound: %d pages @ %s; certified peak clamped at the %d-page allotment\n",
			c.BoundPages, c.PeakSite, c.CertifiedPages)
	default:
		fmt.Fprintf(&b, "certified peak: %d pages @ %s (allotment %d)\n",
			c.CertifiedPages, c.PeakSite, c.Target.MemoryPages)
	}

	for _, u := range c.Uncertified {
		fmt.Fprintf(&b, "uncertified nest %s:%d:\n", u.Proc, u.Line)
		for _, r := range u.Reasons {
			fmt.Fprintf(&b, "  %s\n", r)
		}
	}
	for _, d := range c.DeadWindows {
		fmt.Fprintf(&b, "dead window: %s retained by priority-%d release (tag %d) at %s:%d with %d nests still to run\n",
			d.Array, d.Priority, d.Tag, d.Proc, d.Line, d.NestsAfter)
	}
	return b.String()
}

// Report renders the four-version certificate summary used by
// `memhog certify`: the shared header, the per-nest breakdown of the
// buffered (B) interpretation — the version the paper's schedule is
// designed for — and a summary table across O/P/R/B.
func Report(certs map[Version]*Certificate) string {
	b := certs[VersionB]
	if b == nil {
		for _, v := range Versions() {
			if certs[v] != nil {
				b = certs[v]
				break
			}
		}
	}
	if b == nil {
		return ""
	}
	var out strings.Builder
	out.WriteString(b.String())
	out.WriteString("\n")

	t := metrics.NewTable("certified peak by version",
		"version", "bound (pages)", "certified", "clamped", "peak nest")
	for _, v := range Versions() {
		c := certs[v]
		if c == nil {
			continue
		}
		clamped := "no"
		if c.Clamped {
			clamped = "yes"
		}
		t.AddRow(v.String(), pagesStr(c.BoundPages), pagesStr(c.CertifiedPages), clamped, c.PeakSite)
	}
	t.AddNote("allotment: %d pages; a clamped bound is sound but not tight.", b.Target.MemoryPages)
	out.WriteString(t.String())
	return out.String()
}
