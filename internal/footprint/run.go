package footprint

import (
	"fmt"
	"strings"

	"memhogs/internal/lang"
)

// run drives the abstract interpretation: expand the nest sequence,
// analyze each site, then iterate the sequence twice — the second
// pass is the fixpoint for driver-loop repetition, since carried-over
// residency saturates after one full round (every carry update is
// monotone and clamped at the whole array).
func (in *interp) run() *Certificate {
	cert := &Certificate{
		Program: in.prog.Name,
		Version: in.ver,
		Target:  in.tgt,
		Env:     in.env,
	}

	sites := in.sites()
	states := make([][]*arrayState, len(sites))
	for i, s := range sites {
		states[i] = in.analyzeSite(s)
		for _, st := range states[i] {
			if st.paramGap {
				cert.ParamGaps = true
			}
		}
	}

	// Record the per-site certificates (windows are pass-independent;
	// totals are filled in below).
	for i, s := range sites {
		sc := SiteCert{Label: s.label(), Proc: s.proc, Line: s.line(), TotalPages: -1}
		if sc.Proc == "" {
			sc.Proc = "main"
		}
		for _, st := range states[i] {
			sc.Windows = append(sc.Windows, ArrayWindow{
				Array:          st.arr.Name,
				Footprint:      st.fpPoly,
				FootprintPages: st.fpPages,
				WindowPages:    st.window,
				Policy:         st.policy,
				Note:           strings.Join(st.notes, "; "),
				FarWindowPages: st.farOcc,
			})
		}
		cert.Sites = append(cert.Sites, sc)
	}

	// Interpret the sequence with carried-over residency. Unresolved
	// bounds (-1) degrade to the machine's full allotment and taint the
	// symbolic bound, but never the clamped certificate.
	mem := int64(in.tgt.MemoryPages)
	val := func(x int64, resolved *bool) int64 {
		if x < 0 {
			*resolved = false
			return mem
		}
		return x
	}
	resolved := true
	carry := map[*lang.Array]int64{}
	var peak int64
	peakSite := ""
	for pass := 0; pass < 2; pass++ {
		for i, s := range sites {
			touched := map[*lang.Array]bool{}
			total := int64(pipelineSlackPages)
			for _, st := range states[i] {
				touched[st.arr] = true
				w := val(st.window, &resolved)
				// Carried-in pages are still resident when the nest
				// starts; a streamed nest drains them only as the
				// stream passes.
				total += carry[st.arr] + w
			}
			for arr, c := range carry {
				if !touched[arr] {
					total += c
				}
			}
			if total > peak {
				peak = total
				peakSite = s.label()
			}
			if total > cert.Sites[i].TotalPages {
				cert.Sites[i].TotalPages = total
			}
			// Advance the carried residency.
			for _, st := range states[i] {
				w := val(st.window, &resolved)
				whole := val(st.wholePages, &resolved)
				if st.streamed && st.coversWhole {
					// The stream touches (and so releases) every page,
					// including everything carried in: only the tail
					// window survives the nest.
					carry[st.arr] = w
					continue
				}
				c := carry[st.arr] + w
				if c > whole {
					c = whole
				}
				carry[st.arr] = c
			}
		}
	}

	if len(sites) == 0 {
		peak = 0
	}
	cert.BoundPages = peak
	if !resolved {
		cert.BoundPages = -1
	}
	cert.CertifiedPages = peak
	if cert.CertifiedPages > mem || !resolved {
		cert.CertifiedPages = mem
		cert.Clamped = true
	}
	cert.PeakSite = peakSite

	in.certifyFar(sites, states, cert)
	in.findUncertified(sites, states, cert)
	in.findDeadWindows(sites, states, cert)
	in.findThrashWindows(sites, states, cert)
	return cert
}

// certifyFar computes the far-tier side of the two-tier certificate:
// a peak occupancy bound (per-array demotable volume accumulated like
// DRAM carryover — monotone, capped at the whole array, saturating
// after the second pass — then summed and clamped at the tier's
// physical size) and a whole-run demotion flow bound (each site's
// demotable volume times its driver-loop trip product). The clamp at
// FarPages keeps the occupancy certificate sound even when a bound
// stays unresolved: the tier cannot hold more slots than it has.
func (in *interp) certifyFar(sites []*site, states [][]*arrayState, cert *Certificate) {
	if in.far <= 0 {
		return
	}
	cert.FarPages = int(in.far)
	cert.FarMinPrio = in.prio

	occResolved := true
	farCarry := map[*lang.Array]int64{}
	for pass := 0; pass < 2; pass++ {
		for i := range sites {
			for _, st := range states[i] {
				if st.farOcc == 0 {
					continue
				}
				if st.farOcc < 0 || st.wholePages < 0 {
					occResolved = false
					farCarry[st.arr] = -1
					continue
				}
				if farCarry[st.arr] < 0 {
					continue
				}
				c := farCarry[st.arr] + st.farOcc
				if c > st.wholePages {
					c = st.wholePages
				}
				farCarry[st.arr] = c
			}
		}
	}
	var occ int64
	for _, c := range farCarry {
		if c < 0 {
			continue
		}
		occ += c
	}
	cert.FarBoundPages = occ
	if !occResolved {
		cert.FarBoundPages = -1
	}
	cert.FarCertifiedPages = occ
	if cert.FarCertifiedPages > in.far || !occResolved {
		cert.FarCertifiedPages = in.far
		cert.FarClamped = true
	}

	flowResolved := true
	var flow int64
	for i, s := range sites {
		for _, st := range states[i] {
			if st.farFlow == 0 {
				continue
			}
			mv, err := s.mult.Eval(in.env)
			if st.farFlow < 0 || err != nil {
				flowResolved = false
				continue
			}
			flow += mv * st.farFlow
		}
	}
	cert.DemoteFlowPages = flow
	if !flowResolved {
		cert.DemoteFlowPages = -1
	}
}

// findUncertified records nests whose schedule carries release
// directives while some array was forced to ⊤ — the schedule streams
// there without a certificate backing it (HV013). Procedure nests are
// reported once, not per call site.
func (in *interp) findUncertified(sites []*site, states [][]*arrayState, cert *Certificate) {
	seen := map[*lang.Loop]bool{}
	for i, s := range sites {
		if seen[s.root] {
			continue
		}
		hasRelease := false
		for j := range in.hints {
			h := &in.hints[j]
			if len(h.Path) > 0 && h.Path[0] == s.root {
				hasRelease = true
				break
			}
		}
		if !hasRelease {
			continue
		}
		var reasons []string
		for _, st := range states[i] {
			if !st.top {
				continue
			}
			for _, n := range st.notes {
				reasons = append(reasons, fmt.Sprintf("%s: %s", st.arr.Name, n))
			}
		}
		if len(reasons) == 0 {
			continue
		}
		seen[s.root] = true
		proc := s.proc
		if proc == "" {
			proc = "main"
		}
		cert.Uncertified = append(cert.Uncertified, UncertifiedNest{
			Proc:    proc,
			Line:    s.line(),
			Reasons: reasons,
		})
	}
}

// findDeadWindows records arrays whose final touch in the nest
// sequence sits under a priority>0 (buffered) release while at least
// one full nest still runs afterwards: the buffer retains the pages
// for reuse that provably never comes (HV012).
func (in *interp) findDeadWindows(sites []*site, states [][]*arrayState, cert *Certificate) {
	last := map[*lang.Array]int{}
	for i := range sites {
		for _, st := range states[i] {
			last[st.arr] = i
		}
	}
	seen := map[*lang.Array]bool{}
	for i, s := range sites {
		for _, st := range states[i] {
			if st.retain == nil || seen[st.arr] {
				continue
			}
			if last[st.arr] != i {
				continue
			}
			after := len(sites) - 1 - i
			if after < 1 {
				continue
			}
			seen[st.arr] = true
			proc := s.proc
			if proc == "" {
				proc = "main"
			}
			cert.DeadWindows = append(cert.DeadWindows, DeadWindow{
				Proc:       proc,
				Line:       s.line(),
				Array:      st.arr.Name,
				Tag:        st.retain.Tag,
				Priority:   st.retain.Priority,
				NestsAfter: after,
			})
		}
	}
}

// findThrashWindows records the HV015 condition, only meaningful in
// the two-tier domain: a buffered (priority>0) release whose priority
// also passes the FarMinPrio gate — so memory pressure demotes the
// retained window to the far tier — while the array's provable next
// use is the immediately following nest. The demotion can never break
// even: every demoted page faults straight back in from the far tier
// before any other work reuses the freed DRAM.
func (in *interp) findThrashWindows(sites []*site, states [][]*arrayState, cert *Certificate) {
	if in.far <= 0 {
		return
	}
	pos := map[*lang.Array][]int{} // sites touching each array, in order
	for i := range sites {
		for _, st := range states[i] {
			pos[st.arr] = append(pos[st.arr], i)
		}
	}
	next := func(arr *lang.Array, i int) int {
		for _, j := range pos[arr] {
			if j > i {
				return j
			}
		}
		return -1
	}
	seen := map[*lang.Array]bool{}
	for i, s := range sites {
		for _, st := range states[i] {
			if st.retain == nil || st.retain.Priority < in.prio || seen[st.arr] {
				continue
			}
			j := next(st.arr, i)
			if j != i+1 {
				continue
			}
			seen[st.arr] = true
			proc, nextProc := s.proc, sites[j].proc
			if proc == "" {
				proc = "main"
			}
			if nextProc == "" {
				nextProc = "main"
			}
			cert.ThrashWindows = append(cert.ThrashWindows, ThrashWindow{
				Proc:     proc,
				Line:     s.line(),
				Array:    st.arr.Name,
				Tag:      st.retain.Tag,
				Priority: st.retain.Priority,
				NextProc: nextProc,
				NextLine: sites[j].line(),
			})
		}
	}
}
