package footprint

import (
	"fmt"
	"strings"

	"memhogs/internal/lang"
)

// run drives the abstract interpretation: expand the nest sequence,
// analyze each site, then iterate the sequence twice — the second
// pass is the fixpoint for driver-loop repetition, since carried-over
// residency saturates after one full round (every carry update is
// monotone and clamped at the whole array).
func (in *interp) run() *Certificate {
	cert := &Certificate{
		Program: in.prog.Name,
		Version: in.ver,
		Target:  in.tgt,
		Env:     in.env,
	}

	sites := in.sites()
	states := make([][]*arrayState, len(sites))
	for i, s := range sites {
		states[i] = in.analyzeSite(s)
		for _, st := range states[i] {
			if st.paramGap {
				cert.ParamGaps = true
			}
		}
	}

	// Record the per-site certificates (windows are pass-independent;
	// totals are filled in below).
	for i, s := range sites {
		sc := SiteCert{Label: s.label(), Proc: s.proc, Line: s.line(), TotalPages: -1}
		if sc.Proc == "" {
			sc.Proc = "main"
		}
		for _, st := range states[i] {
			sc.Windows = append(sc.Windows, ArrayWindow{
				Array:          st.arr.Name,
				Footprint:      st.fpPoly,
				FootprintPages: st.fpPages,
				WindowPages:    st.window,
				Policy:         st.policy,
				Note:           strings.Join(st.notes, "; "),
			})
		}
		cert.Sites = append(cert.Sites, sc)
	}

	// Interpret the sequence with carried-over residency. Unresolved
	// bounds (-1) degrade to the machine's full allotment and taint the
	// symbolic bound, but never the clamped certificate.
	mem := int64(in.tgt.MemoryPages)
	val := func(x int64, resolved *bool) int64 {
		if x < 0 {
			*resolved = false
			return mem
		}
		return x
	}
	resolved := true
	carry := map[*lang.Array]int64{}
	var peak int64
	peakSite := ""
	for pass := 0; pass < 2; pass++ {
		for i, s := range sites {
			touched := map[*lang.Array]bool{}
			total := int64(pipelineSlackPages)
			for _, st := range states[i] {
				touched[st.arr] = true
				w := val(st.window, &resolved)
				// Carried-in pages are still resident when the nest
				// starts; a streamed nest drains them only as the
				// stream passes.
				total += carry[st.arr] + w
			}
			for arr, c := range carry {
				if !touched[arr] {
					total += c
				}
			}
			if total > peak {
				peak = total
				peakSite = s.label()
			}
			if total > cert.Sites[i].TotalPages {
				cert.Sites[i].TotalPages = total
			}
			// Advance the carried residency.
			for _, st := range states[i] {
				w := val(st.window, &resolved)
				whole := val(st.wholePages, &resolved)
				if st.streamed && st.coversWhole {
					// The stream touches (and so releases) every page,
					// including everything carried in: only the tail
					// window survives the nest.
					carry[st.arr] = w
					continue
				}
				c := carry[st.arr] + w
				if c > whole {
					c = whole
				}
				carry[st.arr] = c
			}
		}
	}

	if len(sites) == 0 {
		peak = 0
	}
	cert.BoundPages = peak
	if !resolved {
		cert.BoundPages = -1
	}
	cert.CertifiedPages = peak
	if cert.CertifiedPages > mem || !resolved {
		cert.CertifiedPages = mem
		cert.Clamped = true
	}
	cert.PeakSite = peakSite

	in.findUncertified(sites, states, cert)
	in.findDeadWindows(sites, states, cert)
	return cert
}

// findUncertified records nests whose schedule carries release
// directives while some array was forced to ⊤ — the schedule streams
// there without a certificate backing it (HV013). Procedure nests are
// reported once, not per call site.
func (in *interp) findUncertified(sites []*site, states [][]*arrayState, cert *Certificate) {
	seen := map[*lang.Loop]bool{}
	for i, s := range sites {
		if seen[s.root] {
			continue
		}
		hasRelease := false
		for j := range in.hints {
			h := &in.hints[j]
			if len(h.Path) > 0 && h.Path[0] == s.root {
				hasRelease = true
				break
			}
		}
		if !hasRelease {
			continue
		}
		var reasons []string
		for _, st := range states[i] {
			if !st.top {
				continue
			}
			for _, n := range st.notes {
				reasons = append(reasons, fmt.Sprintf("%s: %s", st.arr.Name, n))
			}
		}
		if len(reasons) == 0 {
			continue
		}
		seen[s.root] = true
		proc := s.proc
		if proc == "" {
			proc = "main"
		}
		cert.Uncertified = append(cert.Uncertified, UncertifiedNest{
			Proc:    proc,
			Line:    s.line(),
			Reasons: reasons,
		})
	}
}

// findDeadWindows records arrays whose final touch in the nest
// sequence sits under a priority>0 (buffered) release while at least
// one full nest still runs afterwards: the buffer retains the pages
// for reuse that provably never comes (HV012).
func (in *interp) findDeadWindows(sites []*site, states [][]*arrayState, cert *Certificate) {
	last := map[*lang.Array]int{}
	for i := range sites {
		for _, st := range states[i] {
			last[st.arr] = i
		}
	}
	seen := map[*lang.Array]bool{}
	for i, s := range sites {
		for _, st := range states[i] {
			if st.retain == nil || seen[st.arr] {
				continue
			}
			if last[st.arr] != i {
				continue
			}
			after := len(sites) - 1 - i
			if after < 1 {
				continue
			}
			seen[st.arr] = true
			proc := s.proc
			if proc == "" {
				proc = "main"
			}
			cert.DeadWindows = append(cert.DeadWindows, DeadWindow{
				Proc:       proc,
				Line:       s.line(),
				Array:      st.arr.Name,
				Tag:        st.retain.Tag,
				Priority:   st.retain.Priority,
				NestsAfter: after,
			})
		}
	}
}
