package hogvet

import (
	"fmt"
	"sort"
	"strings"

	"memhogs/internal/compiler"
	"memhogs/internal/lang"
)

// vetCtx carries the verifier's working state for one program.
type vetCtx struct {
	prog  *lang.Program
	tgt   compiler.Target
	opts  Options
	known lang.Env
	ds    Diagnostics

	refCache map[*lang.Loop][]vetRef // nest root -> collected references
}

// vetRef is one array reference found by the verifier's own AST walk,
// with its independently linearized subscript.
type vetRef struct {
	assign   *lang.Assign
	ref      *lang.Ref
	arr      *lang.Array
	lin      *lang.Affine // nil when indirect or not linearizable
	indirect bool
	path     []*lang.Loop // enclosing loops within the nest, outermost first
}

func (v *vetCtx) add(d Diagnostic) {
	if d.Program == "" {
		d.Program = v.prog.Name
	}
	v.ds = append(v.ds, d)
}

// estTrips evaluates a loop's trip count under the compile-time-known
// bindings, or the assumed UnknownTrip when the bounds are symbolic.
func (v *vetCtx) estTrips(l *lang.Loop) float64 {
	if t, ok := trips(l, v.known); ok {
		return float64(t)
	}
	return float64(v.opts.UnknownTrip)
}

// trips returns the exact trip count when both bounds evaluate under
// env.
func trips(l *lang.Loop, env lang.Env) (int64, bool) {
	lo, ok1 := l.Lo.TryEval(env)
	hi, ok2 := l.Hi.TryEval(env)
	if !ok1 || !ok2 {
		return 0, false
	}
	t := (hi-lo)/l.Step + 1
	if t < 0 {
		t = 0
	}
	return t, true
}

// boundsKnown reports whether every loop on the path has evaluable
// bounds.
func (v *vetCtx) boundsKnown(path []*lang.Loop) bool {
	for _, l := range path {
		if _, ok := trips(l, v.known); !ok {
			return false
		}
	}
	return true
}

// linearize flattens a reference into a single element offset, exactly
// mirroring the compiler's row-major rule (but implemented
// independently so disagreements surface as findings rather than being
// inherited). It returns nil for indirect or non-linearizable
// references.
func (v *vetCtx) linearize(r *lang.Ref) (*lang.Affine, bool) {
	if len(r.Index) == 1 {
		if _, ok := r.Index[0].(*lang.Indirect); ok {
			return nil, true
		}
	}
	scales := make([]int64, len(r.Array.Dims))
	scale := int64(1)
	for d := len(r.Array.Dims) - 1; d >= 0; d-- {
		scales[d] = scale
		dim, ok := r.Array.Dims[d].TryEval(v.known)
		if !ok {
			return nil, false
		}
		scale *= dim
	}
	lin := &lang.Affine{}
	for d, idx := range r.Index {
		aff, ok := idx.(*lang.Affine)
		if !ok {
			return nil, true
		}
		lin = lang.AddAffine(lin, lang.ScaleAffine(aff, scales[d]))
	}
	return lin, false
}

// nestRefs collects (and caches) every reference beneath a nest root,
// including the index-array reads of indirect references (which the
// compiler analyzes as ordinary affine streams).
func (v *vetCtx) nestRefs(root *lang.Loop) []vetRef {
	if refs, ok := v.refCache[root]; ok {
		return refs
	}
	var out []vetRef
	var walk func(l *lang.Loop, path []*lang.Loop)
	walk = func(l *lang.Loop, path []*lang.Loop) {
		path = append(path, l)
		for _, s := range l.Body {
			switch st := s.(type) {
			case *lang.Loop:
				walk(st, path)
			case *lang.Assign:
				for _, r := range lang.StmtRefs(st) {
					p := append([]*lang.Loop{}, path...)
					lin, ind := v.linearize(r)
					out = append(out, vetRef{assign: st, ref: r, arr: r.Array, lin: lin, indirect: ind, path: p})
					if ind && len(r.Index) == 1 {
						if ix, ok := r.Index[0].(*lang.Indirect); ok {
							out = append(out, vetRef{assign: st, ref: r, arr: ix.Array, lin: ix.Idx, path: p})
						}
					}
				}
			}
		}
	}
	walk(root, nil)
	v.refCache[root] = out
	return out
}

// signature canonicalizes an affine's variable terms: two references
// with equal signatures touch the same address stream up to a constant
// offset (the compiler's "group locality").
func signature(a *lang.Affine) string {
	terms := append([]lang.Term{}, a.Terms...)
	sort.Slice(terms, func(i, j int) bool {
		if terms[i].Var != terms[j].Var {
			return terms[i].Var < terms[j].Var
		}
		return terms[i].CoefParam < terms[j].CoefParam
	})
	var b strings.Builder
	for _, t := range terms {
		fmt.Fprintf(&b, "%s*%d*%s|", t.Var, t.Coef, t.CoefParam)
	}
	return b.String()
}

// collectNests returns every top-level loop nest the compiler analyzes
// independently: top-level loops of the main body and of each
// procedure, with driver loops (loops containing calls) transparent,
// mirroring the compiler's nest discovery.
func (v *vetCtx) collectNests() []nest {
	var out []nest
	for _, pr := range v.prog.Procs {
		out = append(out, bodyNests(pr.Body, pr.Name)...)
	}
	out = append(out, bodyNests(v.prog.Body, "")...)
	return out
}

// nest is one independently analyzed loop nest.
type nest struct {
	root *lang.Loop
	proc string
}

func bodyNests(body []lang.Stmt, proc string) []nest {
	var out []nest
	for _, s := range body {
		l, ok := s.(*lang.Loop)
		if !ok {
			continue
		}
		if containsCall(l) {
			// Driver loop: its inner nests are analyzed independently.
			out = append(out, bodyNests(l.Body, proc)...)
			continue
		}
		out = append(out, nest{root: l, proc: proc})
	}
	return out
}

func containsCall(l *lang.Loop) bool {
	for _, s := range l.Body {
		switch st := s.(type) {
		case *lang.Call:
			return true
		case *lang.Loop:
			if containsCall(st) {
				return true
			}
		}
	}
	return false
}

// temporalLoops recomputes, from the AST alone, the loops the
// compiler's reuse analysis attributes temporal reuse to for a
// reference with the given linearized subscript: loops whose variable
// the subscript provably does not advance with (zero coefficient), plus
// — unless the target is adaptive — loops with a symbolic stride, which
// the analysis cannot distinguish from loop invariance (the FFTPDE
// misdetection).
func temporalLoops(lin *lang.Affine, path []*lang.Loop, adaptive bool) (loops []*lang.Loop, symbolic []*lang.Loop) {
	for _, l := range path {
		coef, sym := lin.CoefOf(l.Var)
		switch {
		case sym && !adaptive:
			loops = append(loops, l)
			symbolic = append(symbolic, l)
		case !sym && coef == 0:
			loops = append(loops, l)
		}
	}
	return loops, symbolic
}

// eq2Priority recomputes equation (2) — Σ 2^depth over temporal loops,
// outermost depth 0, depth capped at 20 — independently of the
// compiler's implementation.
func eq2Priority(lin *lang.Affine, path []*lang.Loop, adaptive bool) int {
	loops, _ := temporalLoops(lin, path, adaptive)
	p := 0
	for _, l := range loops {
		d := depthOf(l, path)
		if d > 20 {
			d = 20
		}
		p += 1 << uint(d)
	}
	return p
}

func depthOf(l *lang.Loop, path []*lang.Loop) int {
	for i, p := range path {
		if p == l {
			return i
		}
	}
	return 0
}
