package hogvet

import (
	"fmt"
	"strings"

	"memhogs/internal/compiler"
	"memhogs/internal/footprint"
)

// checkCertificate runs the hogflow residency certification
// (internal/footprint) over the schedule and converts its findings
// into diagnostics: HV011 when the certified peak at the bound
// parameters exceeds the machine's page allotment, HV012 for
// buffered releases that retain pages with provably zero remaining
// reuse, and HV013 for nests whose schedule runs uncertified because
// the analysis was forced to ⊤.
//
// Certification models the buffered (B) run-time policy — the
// configuration the paper's schedules are designed for — so it only
// runs when the target compiles releases at all.
func (v *vetCtx) checkCertificate(hints []compiler.Hint) {
	if !v.tgt.Release || len(hints) == 0 {
		return
	}
	opts := footprint.Opts{Params: v.opts.Params, FarPages: v.opts.FarPages, FarMinPrio: v.opts.FarMinPrio}
	certB := footprint.Certify(v.prog, v.tgt, hints, footprint.VersionB, opts)

	if certB.BoundPages >= 0 && !certB.ParamGaps && certB.BoundPages > int64(v.tgt.MemoryPages) {
		certR := footprint.Certify(v.prog, v.tgt, hints, footprint.VersionR, opts)
		detail := fmt.Sprintf("peak at nest %s; the run-time layer will filter the overflow dynamically, but the schedule alone does not keep the process within its allotment", certB.PeakSite)
		if certR.BoundPages >= 0 && certR.BoundPages <= int64(v.tgt.MemoryPages) {
			detail = fmt.Sprintf("peak at nest %s; aggressive releasing would certify at %d pages, so it is the buffered retention that overflows", certB.PeakSite, certR.BoundPages)
		}
		v.add(Diagnostic{
			Code: "HV011", Check: "certificate-overflow", Severity: Warning,
			Program: v.prog.Name, Tag: -1,
			Message: fmt.Sprintf("certified peak residency %d pages exceeds the %d-page allotment (version B)",
				certB.BoundPages, v.tgt.MemoryPages),
			Detail: detail,
			Fix:    "tighten the release schedule (precise placement, lower retention priorities) or shrink the per-nest working set; `memhog certify` renders the per-nest breakdown",
		})
	}

	for _, d := range certB.DeadWindows {
		proc := d.Proc
		if proc == "main" {
			proc = ""
		}
		v.add(Diagnostic{
			Code: "HV012", Check: "dead-window", Severity: Warning,
			Program: v.prog.Name, Proc: proc, Line: d.Line, Array: d.Array, Tag: d.Tag,
			Message: fmt.Sprintf("buffered release of %q (priority %d) retains pages with zero remaining reuse", d.Array, d.Priority),
			Detail: fmt.Sprintf("this nest is the array's last reference, yet %d full nest(s) still run while the buffer holds its pages against memory pressure",
				d.NestsAfter),
			Fix: "demote the release priority to 0 here so the pages free immediately after the final use",
		})
	}

	for _, u := range certB.Uncertified {
		proc := u.Proc
		if proc == "main" {
			proc = ""
		}
		v.add(Diagnostic{
			Code: "HV013", Check: "uncertified-nest", Severity: Note,
			Program: v.prog.Name, Proc: proc, Line: u.Line, Tag: -1,
			Message: fmt.Sprintf("release schedule runs uncertified in this nest: %d array(s) forced to ⊤", len(u.Reasons)),
			Detail:  strings.Join(u.Reasons, "; "),
			Fix:     "the certificate falls back to whole-array residency here; rely on run-time filtering, or restructure the accesses to be affine with compile-time-known strides",
		})
	}

	if v.opts.FarPages > 0 {
		v.checkFarCertificate(hints, certB)
	}
}

// checkFarCertificate runs the two-tier checks over the buffered
// certificate: HV014 when the certified far-tier peak exceeds the
// configured far size, HV015 for statically wasted demote→promote
// round trips, and HV016 when the FarMinPrio gate is provably inert.
func (v *vetCtx) checkFarCertificate(hints []compiler.Hint, certB *footprint.Certificate) {
	if certB.FarBoundPages >= 0 && !certB.ParamGaps && certB.FarBoundPages > int64(v.opts.FarPages) {
		v.add(Diagnostic{
			Code: "HV014", Check: "far-overflow", Severity: Warning,
			Program: v.prog.Name, Tag: -1,
			Message: fmt.Sprintf("certified far-tier peak %d pages exceeds the %d-page far tier (version B)",
				certB.FarBoundPages, v.opts.FarPages),
			Detail: fmt.Sprintf("demotable volume past the min-prio %d gate outgrows the tier; the far allocator will refuse the overflow and route it to swap, forfeiting the tier's latency advantage",
				v.opts.FarMinPrio),
			Fix: "grow the far share of the DRAM:far split, raise FarMinPrio to admit less, or lower retention priorities so the windows stream to swap instead",
		})
	}

	for _, w := range certB.ThrashWindows {
		proc := w.Proc
		if proc == "main" {
			proc = ""
		}
		v.add(Diagnostic{
			Code: "HV015", Check: "thrash-window", Severity: Warning,
			Program: v.prog.Name, Proc: proc, Line: w.Line, Array: w.Array, Tag: w.Tag,
			Message: fmt.Sprintf("demoted window of %q (priority %d) is re-touched by the very next nest", w.Array, w.Priority),
			Detail: fmt.Sprintf("the priority passes the min-prio %d demotion gate, so memory pressure moves the window to the far tier, yet %s:%d faults it straight back — the round trip can never break even",
				v.opts.FarMinPrio, w.NextProc, w.NextLine),
			Fix: "drop the release priority below the demotion gate here, or reorder the nests so the reuse distance exceeds the demotion break-even",
		})
	}

	// HV016: the gate is statically inert. Judge from the schedule
	// itself, not the certificate, so the check also fires when every
	// release sits in an uncertified (⊤) nest.
	demotable, swapped := 0, 0
	for i := range hints {
		h := &hints[i]
		if h.Kind == compiler.HintPrefetch {
			continue
		}
		if h.Priority >= v.opts.FarMinPrio {
			demotable++
		} else {
			swapped++
		}
	}
	if demotable+swapped > 0 && (demotable == 0 || swapped == 0) {
		msg := fmt.Sprintf("min-prio %d gate demotes nothing: no release priority reaches it, the far tier stays empty", v.opts.FarMinPrio)
		fix := "lower FarMinPrio (or raise retention priorities) so reusable windows actually land in the far tier, or drop the tier from the configuration"
		if swapped == 0 {
			msg = fmt.Sprintf("min-prio %d gate demotes everything: every release priority passes it, the gate filters nothing", v.opts.FarMinPrio)
			fix = "raise FarMinPrio so only windows with real reuse occupy the far tier; priority-0 streams belong on the swap path"
		}
		v.add(Diagnostic{
			Code: "HV016", Check: "dead-threshold", Severity: Warning,
			Program: v.prog.Name, Tag: -1,
			Message: msg,
			Detail: fmt.Sprintf("%d release(s) pass the gate, %d go to swap; a one-sided gate means the DRAM:far split is configured but the eq. 2 priorities never exercise it",
				demotable, swapped),
			Fix: fix,
		})
	}
}
