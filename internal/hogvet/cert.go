package hogvet

import (
	"fmt"
	"strings"

	"memhogs/internal/compiler"
	"memhogs/internal/footprint"
)

// checkCertificate runs the hogflow residency certification
// (internal/footprint) over the schedule and converts its findings
// into diagnostics: HV011 when the certified peak at the bound
// parameters exceeds the machine's page allotment, HV012 for
// buffered releases that retain pages with provably zero remaining
// reuse, and HV013 for nests whose schedule runs uncertified because
// the analysis was forced to ⊤.
//
// Certification models the buffered (B) run-time policy — the
// configuration the paper's schedules are designed for — so it only
// runs when the target compiles releases at all.
func (v *vetCtx) checkCertificate(hints []compiler.Hint) {
	if !v.tgt.Release || len(hints) == 0 {
		return
	}
	opts := footprint.Opts{Params: v.opts.Params}
	certB := footprint.Certify(v.prog, v.tgt, hints, footprint.VersionB, opts)

	if certB.BoundPages >= 0 && !certB.ParamGaps && certB.BoundPages > int64(v.tgt.MemoryPages) {
		certR := footprint.Certify(v.prog, v.tgt, hints, footprint.VersionR, opts)
		detail := fmt.Sprintf("peak at nest %s; the run-time layer will filter the overflow dynamically, but the schedule alone does not keep the process within its allotment", certB.PeakSite)
		if certR.BoundPages >= 0 && certR.BoundPages <= int64(v.tgt.MemoryPages) {
			detail = fmt.Sprintf("peak at nest %s; aggressive releasing would certify at %d pages, so it is the buffered retention that overflows", certB.PeakSite, certR.BoundPages)
		}
		v.add(Diagnostic{
			Code: "HV011", Check: "certificate-overflow", Severity: Warning,
			Program: v.prog.Name, Tag: -1,
			Message: fmt.Sprintf("certified peak residency %d pages exceeds the %d-page allotment (version B)",
				certB.BoundPages, v.tgt.MemoryPages),
			Detail: detail,
			Fix:    "tighten the release schedule (precise placement, lower retention priorities) or shrink the per-nest working set; `memhog certify` renders the per-nest breakdown",
		})
	}

	for _, d := range certB.DeadWindows {
		proc := d.Proc
		if proc == "main" {
			proc = ""
		}
		v.add(Diagnostic{
			Code: "HV012", Check: "dead-window", Severity: Warning,
			Program: v.prog.Name, Proc: proc, Line: d.Line, Array: d.Array, Tag: d.Tag,
			Message: fmt.Sprintf("buffered release of %q (priority %d) retains pages with zero remaining reuse", d.Array, d.Priority),
			Detail: fmt.Sprintf("this nest is the array's last reference, yet %d full nest(s) still run while the buffer holds its pages against memory pressure",
				d.NestsAfter),
			Fix: "demote the release priority to 0 here so the pages free immediately after the final use",
		})
	}

	for _, u := range certB.Uncertified {
		proc := u.Proc
		if proc == "main" {
			proc = ""
		}
		v.add(Diagnostic{
			Code: "HV013", Check: "uncertified-nest", Severity: Note,
			Program: v.prog.Name, Proc: proc, Line: u.Line, Tag: -1,
			Message: fmt.Sprintf("release schedule runs uncertified in this nest: %d array(s) forced to ⊤", len(u.Reasons)),
			Detail:  strings.Join(u.Reasons, "; "),
			Fix:     "the certificate falls back to whole-array residency here; rely on run-time filtering, or restructure the accesses to be affine with compile-time-known strides",
		})
	}
}
