package hogvet_test

import (
	"os"
	"path/filepath"
	"testing"

	"memhogs/internal/hogvet"
)

// certFixture compiles one residency-certification fixture and runs
// the verifier (no runtime params: the fixtures use literal bounds).
func certFixture(t *testing.T, name string) hogvet.Diagnostics {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", name+".hog"))
	if err != nil {
		t.Fatal(err)
	}
	return hogvet.VetParams(compileSrc(t, string(src)), nil)
}

// TestCertFixtureGoldens locks the diagnostic listings of the three
// certification fixtures: overflow pins HV011, deadwindow HV012,
// uncert HV013. Regenerate intentionally with `go run ./cmd/gen-golden`.
func TestCertFixtureGoldens(t *testing.T) {
	for _, name := range []string{"overflow", "deadwindow", "uncert"} {
		name := name
		t.Run(name, func(t *testing.T) {
			got := certFixture(t, name).String()
			want, err := os.ReadFile(filepath.Join("testdata", name+".golden"))
			if err != nil {
				t.Fatalf("missing golden (run `go run ./cmd/gen-golden`): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics changed; if intentional run `go run ./cmd/gen-golden`\n--- got\n%s\n--- want\n%s", got, want)
			}
		})
	}
}

// TestCertFixtureShapes pins each fixture's finding independently of
// the golden bytes: exactly one diagnostic of the expected code and
// severity, carrying the expected array where the check is per-array.
func TestCertFixtureShapes(t *testing.T) {
	cases := []struct {
		fixture  string
		code     string
		severity hogvet.Severity
		array    string
	}{
		{"overflow", "HV011", hogvet.Warning, ""},
		{"deadwindow", "HV012", hogvet.Warning, "r"},
		{"uncert", "HV013", hogvet.Note, ""},
	}
	for _, c := range cases {
		ds := certFixture(t, c.fixture)
		if len(ds) != 1 {
			t.Errorf("%s: want exactly 1 diagnostic, got:\n%s", c.fixture, ds)
			continue
		}
		d := ds[0]
		if d.Code != c.code {
			t.Errorf("%s: code = %s, want %s", c.fixture, d.Code, c.code)
		}
		if d.Severity != c.severity {
			t.Errorf("%s: severity = %v, want %v", c.fixture, d.Severity, c.severity)
		}
		if d.Array != c.array {
			t.Errorf("%s: array = %q, want %q", c.fixture, d.Array, c.array)
		}
	}
}
