package hogvet

import (
	"fmt"

	"memhogs/internal/compiler"
	"memhogs/internal/lang"
)

// VetSchedule verifies an explicit hint schedule against the program
// AST. Vet is the common entry point; this form exists so tests (and
// future tools) can check schedules that did not come straight out of
// the compiler.
func VetSchedule(prog *lang.Program, tgt compiler.Target, hints []compiler.Hint, opts Options) Diagnostics {
	if opts.FloodThreshold <= 0 {
		opts.FloodThreshold = 64
	}
	if opts.UnknownTrip <= 0 {
		opts.UnknownTrip = tgt.UnknownTrip
		if opts.UnknownTrip <= 0 {
			opts.UnknownTrip = 100
		}
	}
	known := lang.Env{}
	for k, val := range prog.Known {
		known[k] = val
	}
	v := &vetCtx{prog: prog, tgt: tgt, opts: opts, known: known, refCache: map[*lang.Loop][]vetRef{}}
	for i := range hints {
		v.checkHint(&hints[i])
	}
	v.checkDuplicates(hints)
	v.checkDeadHints(hints)
	v.checkNests(hints)
	v.checkCertificate(hints)
	v.ds.sortStable()
	return v.ds
}

func hintLine(h *compiler.Hint) int {
	if h.Loop != nil {
		return h.Loop.Line
	}
	return 0
}

func arrName(a *lang.Array) string {
	if a == nil {
		return "?"
	}
	return a.Name
}

// checkHint runs the per-directive checks: HV002 (indirect release),
// HV003 (priority consistency), HV006 (false temporal reuse), HV001
// (release before last use) and HV009 (unproven release region).
func (v *vetCtx) checkHint(h *compiler.Hint) {
	if h.Kind != compiler.HintRelease {
		return
	}
	if h.IndexArray != nil {
		v.add(Diagnostic{
			Code: "HV002", Check: "indirect-release", Severity: Error,
			Proc: h.Proc, Line: hintLine(h), Array: arrName(h.Array), Tag: h.Tag,
			Message: fmt.Sprintf("release of indirectly-subscripted array %s[%s[...]] — §3.2 forbids releasing indirect references",
				arrName(h.Array), arrName(h.IndexArray)),
			Detail: "it is not possible to reason statically about the reuse of an indirect reference, so a release can free pages an arbitrary later iteration still needs",
			Fix:    "drop the release; keep at most the per-iteration prefetch for the indirect stream",
		})
		return
	}
	if h.Affine == nil || len(h.Path) == 0 {
		return
	}

	// HV003: recompute equation (2) independently and cross-check.
	if want := eq2Priority(h.Affine, h.Path, v.tgt.Adaptive); want != h.Priority {
		v.add(Diagnostic{
			Code: "HV003", Check: "priority-mismatch", Severity: Error,
			Proc: h.Proc, Line: hintLine(h), Array: arrName(h.Array), Tag: h.Tag,
			Message: fmt.Sprintf("release of %s (tag %d) stores priority %d, but equation (2) recomputed from the AST gives %d",
				arrName(h.Array), h.Tag, h.Priority, want),
			Detail: "the run-time layer orders buffered releases by this priority; a wrong value retains the wrong pages under memory pressure",
			Fix:    "regenerate the schedule; the stored priority does not match the reference's temporal-reuse set",
		})
	}

	// HV006: the priority claims reuse carried by a symbolic-stride
	// loop — the FFTPDE misdetection.
	if h.Priority > 0 {
		if _, sym := temporalLoops(h.Affine, h.Path, v.tgt.Adaptive); len(sym) > 0 {
			for _, l := range sym {
				param := ""
				for _, t := range h.Affine.Terms {
					if t.Var == l.Var {
						param = t.CoefParam
					}
				}
				v.add(Diagnostic{
					Code: "HV006", Check: "false-temporal-reuse", Severity: Warning,
					Proc: h.Proc, Line: hintLine(h), Array: arrName(h.Array), Tag: h.Tag,
					Message: fmt.Sprintf("release of %s (tag %d) carries priority %d from claimed temporal reuse in loop %q, but the stride %q is symbolic — likely false reuse",
						arrName(h.Array), h.Tag, h.Priority, l.Var, param),
					Detail: "a symbolic stride makes the subscript look loop-invariant; at run time the reference never revisits those pages, so buffered releasing retains memory that is never reused (the FFTPDE pathology, §4.5)",
					Fix:    "make the stride a compile-time constant (a \"known\" param) or compile with Target.Adaptive to resolve strides at run time",
				})
			}
		}
	}

	// HV001: a later reference to the released region. Group-local
	// comparison: references in the same innermost loop whose variable
	// terms match the release's subscript but whose constant offset
	// trails it will touch the released pages on later iterations.
	innermost := h.Path[len(h.Path)-1]
	sig := signature(h.Affine)
	var trailing *vetRef
	var sawOtherPattern bool
	for i, r := range v.nestRefs(h.Path[0]) {
		if r.arr != h.Array {
			continue
		}
		if r.lin == nil || len(r.path) == 0 || r.path[len(r.path)-1] != innermost || signature(r.lin) != sig {
			sawOtherPattern = true
			continue
		}
		if r.lin.Const < h.Affine.Const {
			if trailing == nil || r.lin.Const < trailing.lin.Const {
				trailing = &v.nestRefs(h.Path[0])[i]
			}
		}
	}
	if trailing != nil {
		sev, detail := Error, "the trailing reference provably re-reads pages this release has already freed; the release must move behind the trailing reference"
		if !v.boundsKnown(h.Path) {
			sev = Warning
			detail = "unknown loop bounds separate the leading and trailing references, so the release was placed behind the leader; freed pages are re-referenced and must be rescued by the free list (the MGRID pathology, §4.4)"
		}
		v.add(Diagnostic{
			Code: "HV001", Check: "release-before-last-use", Severity: sev,
			Proc: h.Proc, Line: hintLine(h), Array: arrName(h.Array), Tag: h.Tag,
			Message: fmt.Sprintf("release of %s (tag %d) at offset %s fires %d element(s) ahead of trailing reference %s[%s]",
				arrName(h.Array), h.Tag, lang.FormatAffine(h.Affine),
				h.Affine.Const-trailing.lin.Const, arrName(h.Array), lang.FormatAffine(trailing.lin)),
			Detail: detail,
			Fix:    "make the separating loop bounds known at compile time, or compile with Target.Adaptive to track the true trailing reference",
		})
	}

	// HV009: the same array is also reached through a different
	// subscript pattern in this nest — region disjointness is unproven.
	if sawOtherPattern {
		v.add(Diagnostic{
			Code: "HV009", Check: "unproven-release-region", Severity: Note,
			Proc: h.Proc, Line: hintLine(h), Array: arrName(h.Array), Tag: h.Tag,
			Message: fmt.Sprintf("release of %s (tag %d) is not provably safe: the nest also references %s through a different subscript pattern",
				arrName(h.Array), h.Tag, arrName(h.Array)),
			Detail: "the verifier cannot separate the released region from the other access stream; the run-time rescue path covers mistakes, at the cost of extra soft faults",
		})
	}
}

// checkDuplicates finds reused tags (HV004) and fully shadowed hints
// (HV005).
func (v *vetCtx) checkDuplicates(hints []compiler.Hint) {
	type regionKey struct {
		kind   compiler.HintKind
		arr    *lang.Array
		region string
		loop   *lang.Loop
		proc   string
	}
	region := func(h *compiler.Hint) string {
		if h.IndexArray != nil {
			return fmt.Sprintf("%s[%s]", arrName(h.IndexArray), lang.FormatAffine(h.IndexAffine))
		}
		if h.Affine != nil {
			return lang.FormatAffine(h.Affine)
		}
		return ""
	}
	byTag := map[int]int{}
	byRegion := map[regionKey]int{}
	for i := range hints {
		h := &hints[i]
		if first, ok := byTag[h.Tag]; ok {
			v.add(Diagnostic{
				Code: "HV004", Check: "duplicate-tag", Severity: Error,
				Proc: h.Proc, Line: hintLine(h), Array: arrName(h.Array), Tag: h.Tag,
				Message: fmt.Sprintf("%s hint for %s reuses tag %d already assigned to %s of %s",
					h.Kind, arrName(h.Array), h.Tag, hints[first].Kind, arrName(hints[first].Array)),
				Detail: "tags are the run-time layer's request identifiers; sharing one merges two hint streams and breaks the per-tag duplicate filter",
				Fix:    "regenerate the schedule with unique tags per directive",
			})
		} else {
			byTag[h.Tag] = i
		}
		key := regionKey{kind: h.Kind, arr: h.Array, region: region(h), loop: h.Loop, proc: h.Proc}
		if first, ok := byRegion[key]; ok {
			v.add(Diagnostic{
				Code: "HV005", Check: "shadowed-hint", Severity: Warning,
				Proc: h.Proc, Line: hintLine(h), Array: arrName(h.Array), Tag: h.Tag,
				Message: fmt.Sprintf("%s hint (tag %d) duplicates tag %d for the same region of %s on the same loop and can never contribute",
					h.Kind, h.Tag, hints[first].Tag, arrName(h.Array)),
				Detail: "both hints observe the same address stream at the same point; the run-time filter drops everything the second one produces",
				Fix:    "remove the shadowed directive",
			})
		} else {
			byRegion[key] = i
		}
	}
}

// checkDeadHints flags release directives whose target array is never
// referenced anywhere in the enclosing nest and is not the target of
// any other directive there (HV010). Such a hint cannot have come from
// the nest's reference set: no access or prefetch can make the pages
// resident, so every evaluation streams release hints the run-time
// bitmap filter has to reject one by one. The stock compiler derives
// hints from references and never produces these; they appear in
// hand-written or corrupted schedules.
func (v *vetCtx) checkDeadHints(hints []compiler.Hint) {
	for i := range hints {
		h := &hints[i]
		if h.Kind != compiler.HintRelease || h.Affine == nil || len(h.Path) == 0 {
			continue
		}
		live := false
		for _, r := range v.nestRefs(h.Path[0]) {
			if r.arr == h.Array {
				live = true
				break
			}
		}
		for j := range hints {
			if live {
				break
			}
			if j != i && hints[j].Array == h.Array &&
				len(hints[j].Path) > 0 && hints[j].Path[0] == h.Path[0] {
				live = true
			}
		}
		if live {
			continue
		}
		v.add(Diagnostic{
			Code: "HV010", Check: "dead-hint", Severity: Warning,
			Proc: h.Proc, Line: hintLine(h), Array: arrName(h.Array), Tag: h.Tag,
			Message: fmt.Sprintf("release of %s (tag %d) targets an array this nest never references",
				arrName(h.Array), h.Tag),
			Detail: "no reference or prefetch in the nest can make those pages resident, so every evaluation streams hints the run-time filter must reject one by one — pure per-iteration overhead",
			Fix:    "remove the directive; it cannot have come from this nest's reference set",
		})
	}
}

// checkNests runs the per-nest checks: HV008 (unknown bounds, note)
// and HV007 (hint flood under an unknown-bound loop).
func (v *vetCtx) checkNests(hints []compiler.Hint) {
	byLoop := map[*lang.Loop][]*compiler.Hint{}
	for i := range hints {
		if l := hints[i].Loop; l != nil {
			byLoop[l] = append(byLoop[l], &hints[i])
		}
	}
	for _, ns := range v.collectNests() {
		v.checkNestLoops(ns, ns.root, byLoop, false)
	}
}

func (v *vetCtx) checkNestLoops(ns nest, l *lang.Loop, byLoop map[*lang.Loop][]*compiler.Hint, underUnknown bool) {
	_, known := trips(l, v.known)
	if !known {
		v.add(Diagnostic{
			Code: "HV008", Check: "unknown-bound", Severity: Note,
			Proc: ns.proc, Line: l.Line, Tag: -1,
			Message: fmt.Sprintf("bounds of loop %q (%s to %s) are unknown at compile time; the analysis is conservative",
				l.Var, l.Lo.String(), l.Hi.String()),
		})
		if !underUnknown {
			evals, count := v.floodEstimate(l, byLoop)
			if count > 0 && evals >= v.opts.FloodThreshold {
				v.add(Diagnostic{
					Code: "HV007", Check: "hint-flood", Severity: Warning,
					Proc: ns.proc, Line: l.Line, Tag: -1,
					Message: fmt.Sprintf("unknown-bound loop %q streams an estimated %.0f hint evaluations per iteration from %d directive(s)",
						l.Var, evals, count),
					Detail: "the compiler cannot bound the hint volume, and most evaluations target already-resident pages that the run-time layer must filter one by one — the CGM/MGRID user-time overhead of §4.3",
					Fix:    "make the bound a \"known\" param, hoist the directives out of the inner loops, or compile with Target.Adaptive to gate hint streams on run-time bounds",
				})
			}
		}
	}
	for _, s := range l.Body {
		if child, ok := s.(*lang.Loop); ok {
			v.checkNestLoops(ns, child, byLoop, underUnknown || !known)
		}
	}
}

// floodEstimate sums, over every directive attached at or below l, the
// expected number of evaluations during a single iteration of l
// (directives fire once per iteration of the loop they are attached
// to; unknown inner bounds contribute the assumed UnknownTrip).
func (v *vetCtx) floodEstimate(l *lang.Loop, byLoop map[*lang.Loop][]*compiler.Hint) (evals float64, count int) {
	var walk func(m *lang.Loop, rel float64)
	walk = func(m *lang.Loop, rel float64) {
		if hs := byLoop[m]; len(hs) > 0 {
			evals += rel * float64(len(hs))
			count += len(hs)
		}
		for _, s := range m.Body {
			if child, ok := s.(*lang.Loop); ok {
				walk(child, rel*v.estTrips(child))
			}
		}
	}
	walk(l, 1)
	return evals, count
}
