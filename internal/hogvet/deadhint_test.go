package hogvet_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"memhogs/internal/compiler"
	"memhogs/internal/hogvet"
)

// deadHintSchedule compiles testdata/deadhint.hog and tampers the
// schedule with hogvet.TamperDeadHint — the shared HV010 fixture
// construction also used by cmd/gen-golden.
func deadHintSchedule(t *testing.T) (*compiler.Compiled, []compiler.Hint) {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", "deadhint.hog"))
	if err != nil {
		t.Fatal(err)
	}
	c := compileSrc(t, string(src))
	hints, err := hogvet.TamperDeadHint(c, "b")
	if err != nil {
		t.Fatal(err)
	}
	return c, hints
}

// TestDeadHintGolden locks the HV010 listing for the synthetic dead
// release. Regenerate intentionally with `go run ./cmd/gen-golden`.
func TestDeadHintGolden(t *testing.T) {
	c, hints := deadHintSchedule(t)
	got := vetTampered(c, hints).String()
	want, err := os.ReadFile(filepath.Join("testdata", "deadhint.golden"))
	if err != nil {
		t.Fatalf("missing golden (run `go run ./cmd/gen-golden`): %v", err)
	}
	if got != string(want) {
		t.Errorf("diagnostics changed; if intentional run `go run ./cmd/gen-golden`\n--- got\n%s\n--- want\n%s", got, want)
	}
}

// TestDeadHintWarning pins the finding's shape independently of the
// golden bytes, and the negative: the compiler's own schedule for the
// fixture is clean, so HV010 can only fire on tampered schedules.
func TestDeadHintWarning(t *testing.T) {
	c, hints := deadHintSchedule(t)
	if ds := hogvet.Vet(c); len(ds) != 0 {
		t.Fatalf("compiler-produced schedule should be clean, got:\n%s", ds)
	}
	ds := vetTampered(c, hints).ByCode("HV010")
	if len(ds) != 1 {
		t.Fatalf("want exactly 1 HV010, got:\n%s", vetTampered(c, hints))
	}
	d := ds[0]
	if d.Severity != hogvet.Warning {
		t.Errorf("HV010 severity = %v, want warning", d.Severity)
	}
	if d.Array != "b" {
		t.Errorf("HV010 array = %q, want b", d.Array)
	}
	if !strings.Contains(d.Message, "never references") {
		t.Errorf("HV010 message should explain the dead target: %q", d.Message)
	}
}
