package hogvet

import (
	"fmt"

	"memhogs/internal/compiler"
)

// VetParams verifies a compiled schedule with runtime parameter
// bindings for the residency certification (HV011–HV013). Vet is the
// parameterless form; without bindings, certification bounds that
// depend on runtime parameters degrade to whole arrays and HV011
// stays quiet.
func VetParams(c *compiler.Compiled, params map[string]int64) Diagnostics {
	opts := DefaultOptions()
	opts.Params = params
	return VetSchedule(c.Prog, c.Target, c.Hints(), opts)
}

// VetParamsFar is VetParams with the two-tier certificate checks
// enabled (HV014–HV016): farPages sizes the modeled far-memory tier
// and farMinPrio mirrors the kernel's demotion gate
// (kernel.FarConfig.MinPrio). Shared by the tier fixtures' tests and
// cmd/gen-golden so both sides certify under identical options.
func VetParamsFar(c *compiler.Compiled, params map[string]int64, farPages, farMinPrio int) Diagnostics {
	opts := DefaultOptions()
	opts.Params = params
	opts.FarPages = farPages
	opts.FarMinPrio = farMinPrio
	return VetSchedule(c.Prog, c.Target, c.Hints(), opts)
}

// TamperDeadHint returns the compiled schedule with a synthetic
// release appended for the named never-referenced array, cloned from
// the schedule's last release so every other check stays quiet
// (consistent priority, fresh tag). This is the shape a corrupted or
// hand-written schedule produces — the stock compiler derives hints
// from references and cannot emit it — and it is the HV010 fixture
// construction shared by deadhint_test.go and cmd/gen-golden.
func TamperDeadHint(c *compiler.Compiled, arrayName string) ([]compiler.Hint, error) {
	hints := c.Hints()
	var dead *compiler.Hint
	maxTag := 0
	for i := range hints {
		if hints[i].Tag > maxTag {
			maxTag = hints[i].Tag
		}
		if hints[i].Kind == compiler.HintRelease {
			dead = &hints[i]
		}
	}
	if dead == nil {
		return nil, fmt.Errorf("hogvet: schedule has no release hint to clone")
	}
	for _, a := range c.Prog.Arrays {
		if a.Name == arrayName {
			synth := *dead
			synth.Array = a
			synth.Tag = maxTag + 1
			return append(hints, synth), nil
		}
	}
	return nil, fmt.Errorf("hogvet: program has no array %q", arrayName)
}
