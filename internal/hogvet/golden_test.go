package hogvet_test

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"memhogs/internal/compiler"
	"memhogs/internal/hogvet"
	"memhogs/internal/workload"
)

// TestGoldenDiagnostics locks the verifier's full listing for the six
// built-in benchmarks: matvec and embar must stay clean, fftpde must
// show the false-temporal-reuse warning, mgrid the two leader-placed
// releases, cgm/mgrid/fftpde the hint floods, and mgrid/fftpde the
// certificate overflows. The benchmarks' runtime parameters are bound
// so the residency certification (HV011–HV013) evaluates at paper
// scale. Regenerate intentionally with `go run ./cmd/gen-golden`.
func TestGoldenDiagnostics(t *testing.T) {
	tgt := testTarget()
	for _, spec := range workload.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			c := compiler.MustCompile(spec.Program(nil), tgt)
			got := hogvet.VetParams(c, spec.Params).String()
			path := filepath.Join("testdata", spec.Name+".golden")
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run `go run ./cmd/gen-golden`): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics changed; if intentional run `go run ./cmd/gen-golden`\n--- got\n%s\n--- want\n%s", got, want)
			}
		})
	}
}

// TestGoldenSeverityFloor pins the acceptance shape independently of
// the golden bytes: which checks fire on which benchmark at
// warning-or-above.
func TestGoldenSeverityFloor(t *testing.T) {
	want := map[string][]string{
		"matvec": {},
		"embar":  {},
		"buk":    {},
		"cgm":    {"HV007"},
		"mgrid":  {"HV001", "HV001", "HV007", "HV007", "HV011"},
		"fftpde": {"HV006", "HV007", "HV011"},
	}
	tgt := testTarget()
	for _, spec := range workload.All() {
		c := compiler.MustCompile(spec.Program(nil), tgt)
		var got []string
		for _, d := range hogvet.VetParams(c, spec.Params).AtLeast(hogvet.Warning) {
			got = append(got, d.Code)
		}
		exp := want[spec.Name]
		if len(got) != len(exp) {
			t.Errorf("%s: warnings %v, want %v", spec.Name, got, exp)
			continue
		}
		seen := map[string]int{}
		for _, code := range got {
			seen[code]++
		}
		for _, code := range exp {
			seen[code]--
		}
		for code, n := range seen {
			if n != 0 {
				t.Errorf("%s: warnings %v, want %v (code %s off by %d)", spec.Name, got, exp, code, n)
			}
		}
	}
}

// TestVetDeterministic runs the verifier twice over fresh compilations
// and demands byte-identical output.
func TestVetDeterministic(t *testing.T) {
	tgt := testTarget()
	for _, spec := range workload.All() {
		a := hogvet.VetParams(compiler.MustCompile(spec.Program(nil), tgt), spec.Params).String()
		b := hogvet.VetParams(compiler.MustCompile(spec.Program(nil), tgt), spec.Params).String()
		if a != b {
			t.Fatalf("%s: diagnostics not deterministic", spec.Name)
		}
	}
}

// TestVetFast bounds the verifier's cost: all six benchmarks, compile
// included, well under a second — cheap enough for every CI run.
func TestVetFast(t *testing.T) {
	tgt := testTarget()
	start := time.Now()
	for _, spec := range workload.All() {
		hogvet.Vet(compiler.MustCompile(spec.Program(nil), tgt))
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("verifying all six benchmarks took %v, want < 1s", d)
	}
}
