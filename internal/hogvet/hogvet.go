// Package hogvet is a static hint-safety verifier for compiled release
// schedules: a dataflow pass over the loop-nest AST (internal/lang)
// plus the directive schedule the compiler exports
// (compiler.Compiled.Hints), producing structured diagnostics.
//
// The checks target the statically detectable failure classes the
// paper reports dynamically:
//
//	HV001 release-before-last-use   a release hint dominates a later
//	                                reference to the same array region
//	                                (MGRID's rescue pathology, §4.4)
//	HV002 indirect-release          release of an indirectly-subscripted
//	                                array, which §3.2 forbids
//	HV003 priority-mismatch         the stored release priority differs
//	                                from equation (2) recomputed
//	                                independently from the AST
//	HV004 duplicate-tag             two directives share a request tag
//	HV005 shadowed-hint             two identical hints where the second
//	                                can never contribute
//	HV006 false-temporal-reuse      a release priority claims reuse at a
//	                                loop whose subscript stride is
//	                                symbolic (FFTPDE's pathology, §4.5)
//	HV007 hint-flood                estimated hint evaluations per
//	                                iteration of an unknown-bound loop
//	                                exceed a threshold (CGM/MGRID
//	                                user-time overhead, §4.3)
//	HV008 unknown-bound             note: conservative analysis under a
//	                                loop whose bounds are unknown
//	HV009 unproven-release-region   note: the released array is also
//	                                accessed through a different
//	                                subscript pattern in the same nest
//	HV010 dead-hint                 a release targets an array the
//	                                enclosing nest never references —
//	                                every evaluation is filtered
//	                                run-time overhead
//	HV011 certificate-overflow      the hogflow residency certificate
//	                                (internal/footprint) proves the
//	                                buffered schedule's peak resident
//	                                set exceeds the machine's page
//	                                allotment at the bound parameters
//	HV012 dead-window               a priority>0 (buffered) release
//	                                retains an array past its provably
//	                                last reference while at least one
//	                                full nest still runs
//	HV013 uncertified-nest          note: the residency certificate was
//	                                forced to ⊤ for some array in a
//	                                nest carrying releases — the
//	                                schedule streams there uncertified
//	HV014 far-overflow              the two-tier certificate proves the
//	                                schedule's far-tier peak occupancy
//	                                exceeds the configured far size at
//	                                a DRAM:far ratio (the static twin
//	                                of HV011; needs Options.FarPages)
//	HV015 thrash-window             a buffered window that passes the
//	                                FarMinPrio demotion gate is
//	                                re-touched by the very next nest —
//	                                a statically wasted demote→promote
//	                                round trip
//	HV016 dead-threshold            the FarMinPrio gate provably
//	                                demotes nothing (no release
//	                                reaches it) or everything (it
//	                                filters nothing): the tier is
//	                                configured but the gate is inert
//
// HV000 (analysis-summary) is reserved for informational notes that
// front ends route through the same formatter (cmd/hogc's -stats
// lines).
//
// The verifier is cheap — no simulation, a single walk over the AST
// and the schedule — so it can run in every test and as a CI gate
// (hogc -vet, memhog vet).
package hogvet

import (
	"fmt"
	"sort"
	"strings"

	"memhogs/internal/compiler"
)

// Severity grades a finding.
type Severity int8

// Severities, in increasing order.
const (
	Note Severity = iota
	Warning
	Error
)

// String returns the lower-case severity name.
func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	default:
		return "note"
	}
}

// Diagnostic is one structured finding.
type Diagnostic struct {
	Code     string // stable check code, e.g. "HV006"
	Check    string // short check name, e.g. "false-temporal-reuse"
	Severity Severity

	Program string // program name
	Proc    string // enclosing procedure; "" for the main body
	Line    int    // source line; 0 when unknown
	Array   string // array the finding concerns, if any
	Tag     int    // hint tag the finding concerns; -1 if none

	Message string // one-line statement of the finding
	Detail  string // explanation (why this is a problem)
	Fix     string // suggested fix
}

// Pos renders the source position as program:line, with the enclosing
// procedure when there is one.
func (d *Diagnostic) Pos() string {
	pos := d.Program
	if d.Line > 0 {
		pos = fmt.Sprintf("%s:%d", pos, d.Line)
	}
	if d.Proc != "" {
		pos += " (proc " + d.Proc + ")"
	}
	return pos
}

// String renders the diagnostic in the engine's line format.
func (d *Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s[%s] %s\n", d.Pos(), d.Severity, d.Code, d.Message)
	if d.Detail != "" {
		fmt.Fprintf(&b, "    %s\n", d.Detail)
	}
	if d.Fix != "" {
		fmt.Fprintf(&b, "    fix: %s\n", d.Fix)
	}
	return b.String()
}

// Diagnostics is a sorted list of findings.
type Diagnostics []Diagnostic

// String renders every diagnostic followed by a summary line.
func (ds Diagnostics) String() string {
	var b strings.Builder
	for i := range ds {
		b.WriteString(ds[i].String())
	}
	b.WriteString(ds.Summary())
	b.WriteString("\n")
	return b.String()
}

// Summary returns the "N error(s), N warning(s), N note(s)" line.
func (ds Diagnostics) Summary() string {
	e, w, n := ds.Counts()
	if e+w+n == 0 {
		return "clean: no diagnostics"
	}
	return fmt.Sprintf("%d error(s), %d warning(s), %d note(s)", e, w, n)
}

// Counts tallies findings by severity.
func (ds Diagnostics) Counts() (errors, warnings, notes int) {
	for i := range ds {
		switch ds[i].Severity {
		case Error:
			errors++
		case Warning:
			warnings++
		default:
			notes++
		}
	}
	return
}

// Max returns the highest severity present, or Note-1 when empty.
func (ds Diagnostics) Max() Severity {
	max := Severity(-1)
	for i := range ds {
		if ds[i].Severity > max {
			max = ds[i].Severity
		}
	}
	return max
}

// AtLeast filters to findings at or above the given severity.
func (ds Diagnostics) AtLeast(s Severity) Diagnostics {
	var out Diagnostics
	for i := range ds {
		if ds[i].Severity >= s {
			out = append(out, ds[i])
		}
	}
	return out
}

// ByCode filters to findings with the given code.
func (ds Diagnostics) ByCode(code string) Diagnostics {
	var out Diagnostics
	for i := range ds {
		if ds[i].Code == code {
			out = append(out, ds[i])
		}
	}
	return out
}

// sortStable orders findings by source position, then code, then tag,
// so output is deterministic regardless of check order.
func (ds Diagnostics) sortStable() {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := &ds[i], &ds[j]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Tag < b.Tag
	})
}

// Options tunes the verifier.
type Options struct {
	// FloodThreshold is the estimated number of hint evaluations per
	// iteration of an unknown-bound loop above which HV007 fires.
	FloodThreshold float64
	// UnknownTrip is the iteration count assumed for unknown-bound
	// loops when estimating hint volume; 0 uses the compile target's
	// value.
	UnknownTrip int64
	// Params binds runtime parameters (problem sizes) for the
	// residency certification behind HV011–HV013; bounds that stay
	// unresolved without them never fire HV011.
	Params map[string]int64
	// FarPages enables the two-tier certificate checks HV014–HV016,
	// modeling a far-memory tier of this many pages behind the DRAM
	// allotment. Zero (the default) keeps the single-tier checks only.
	FarPages int
	// FarMinPrio is the demotion gate mirrored from
	// kernel.FarConfig.MinPrio: releases with eq. 2 priority >=
	// FarMinPrio demote to the far tier, below it they go to swap.
	FarMinPrio int
}

// DefaultOptions returns the standard thresholds.
func DefaultOptions() Options { return Options{FloodThreshold: 64} }

// Vet verifies a compiled program's hint schedule against its AST with
// default options.
func Vet(c *compiler.Compiled) Diagnostics {
	return VetSchedule(c.Prog, c.Target, c.Hints(), DefaultOptions())
}

// InfoNotes wraps pre-rendered informational lines as HV000
// analysis-summary notes, so front ends (cmd/hogc's -stats view) route
// them through the same formatter as real findings. Line stays 0, so
// sortStable keeps them ahead of positioned diagnostics.
func InfoNotes(program string, lines ...string) Diagnostics {
	var ds Diagnostics
	for _, l := range lines {
		ds = append(ds, Diagnostic{
			Code: "HV000", Check: "analysis-summary", Severity: Note,
			Program: program, Tag: -1, Message: l,
		})
	}
	return ds
}
