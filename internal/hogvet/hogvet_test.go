package hogvet_test

import (
	"strings"
	"testing"

	"memhogs/internal/compiler"
	"memhogs/internal/hogvet"
	"memhogs/internal/lang"
	"memhogs/internal/workload"
)

func testTarget() compiler.Target { return compiler.DefaultTarget(16<<10, 4800) }

func compileSrc(t *testing.T, src string) *compiler.Compiled {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c, err := compiler.Compile(prog, testTarget())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return c
}

// vetTampered reruns the verifier over a hand-modified schedule.
func vetTampered(c *compiler.Compiled, hints []compiler.Hint) hogvet.Diagnostics {
	return hogvet.VetSchedule(c.Prog, c.Target, hints, hogvet.DefaultOptions())
}

const cleanSrc = `
program clean
array a[100000] of float64
for i = 0 to 99999 {
    a[i] = a[i] + 1 @ 10
}
`

func TestCleanProgramHasNoDiagnostics(t *testing.T) {
	c := compileSrc(t, cleanSrc)
	ds := hogvet.Vet(c)
	if len(ds) != 0 {
		t.Fatalf("want no diagnostics, got:\n%s", ds)
	}
	if got := ds.Summary(); got != "clean: no diagnostics" {
		t.Fatalf("Summary() = %q", got)
	}
	if ds.Max() >= hogvet.Note {
		t.Fatalf("Max() = %v on empty diagnostics", ds.Max())
	}
}

func TestCompiledBenchmarkSchedulesPassSelfCheck(t *testing.T) {
	// The error-severity checks (HV001-known-bounds, HV002, HV003,
	// HV004) must never fire on anything the compiler itself produced:
	// errors are reserved for corrupted or hand-written schedules.
	tgt := testTarget()
	for _, spec := range workload.All() {
		c := compiler.MustCompile(spec.Program(nil), tgt)
		if errs := hogvet.Vet(c).AtLeast(hogvet.Error); len(errs) != 0 {
			t.Errorf("%s: compiler-produced schedule has errors:\n%s", spec.Name, errs)
		}
	}
}

func TestReleaseBeforeLastUseError(t *testing.T) {
	c := compileSrc(t, `
program stencil
array a[100000] of float64
array b[100000] of float64
for i = 1 to 99998 {
    b[i] = a[i-1] + a[i] + a[i+1] @ 10
}
`)
	hints := c.Hints()
	tampered := false
	for i := range hints {
		h := &hints[i]
		if h.Kind == compiler.HintRelease && h.Array.Name == "a" {
			// The compiler put the release behind the trailing reference
			// a[i-1]; move it forward to the leader's offset, as a buggy
			// placement pass would.
			h.Affine = lang.AddAffine(h.Affine, &lang.Affine{Const: 2})
			tampered = true
		}
	}
	if !tampered {
		t.Fatal("no release hint for a found")
	}
	ds := vetTampered(c, hints).ByCode("HV001")
	if len(ds) != 1 {
		t.Fatalf("want 1 HV001, got:\n%s", vetTampered(c, hints))
	}
	if ds[0].Severity != hogvet.Error {
		t.Fatalf("HV001 severity = %v, want error (all bounds known)", ds[0].Severity)
	}
	if !strings.Contains(ds[0].Message, "a[i-1]") {
		t.Fatalf("HV001 message should name the trailing reference: %q", ds[0].Message)
	}
}

func TestIndirectReleaseError(t *testing.T) {
	c := compileSrc(t, `
program ind
array key[100000] of int64
array rank[100000] of int64
for i = 0 to 99999 {
    rank[key[i]] = rank[key[i]] + 1 @ 10
}
`)
	hints := c.Hints()
	tampered := false
	for i := range hints {
		if hints[i].IndexArray != nil {
			hints[i].Kind = compiler.HintRelease
			tampered = true
		}
	}
	if !tampered {
		t.Fatal("no indirect hint found")
	}
	ds := vetTampered(c, hints).ByCode("HV002")
	if len(ds) != 1 || ds[0].Severity != hogvet.Error {
		t.Fatalf("want 1 HV002 error, got:\n%s", vetTampered(c, hints))
	}
}

func TestPriorityMismatchError(t *testing.T) {
	c := compileSrc(t, `
program reuse
array x[1000] of float64
array y[100000] of float64
for i = 0 to 99 {
    for j = 0 to 999 {
        y[i] = y[i] + x[j] @ 10
    }
}
`)
	hints := c.Hints()
	tampered := false
	for i := range hints {
		if hints[i].Kind == compiler.HintRelease && hints[i].Array.Name == "x" {
			hints[i].Priority += 3
			tampered = true
		}
	}
	if !tampered {
		t.Fatal("no release hint for x found")
	}
	ds := vetTampered(c, hints).ByCode("HV003")
	if len(ds) != 1 || ds[0].Severity != hogvet.Error {
		t.Fatalf("want 1 HV003 error, got:\n%s", vetTampered(c, hints))
	}
	// The untampered schedule must cross-check cleanly: the verifier's
	// independent equation-(2) implementation agrees with the compiler.
	if ds := hogvet.Vet(c); len(ds.ByCode("HV003")) != 0 {
		t.Fatalf("untampered schedule flagged:\n%s", ds)
	}
}

func TestDuplicateTagError(t *testing.T) {
	c := compileSrc(t, cleanSrc)
	hints := c.Hints()
	if len(hints) == 0 {
		t.Fatal("no hints")
	}
	dup := hints[0]
	dup.Affine = lang.AddAffine(dup.Affine, &lang.Affine{Const: 7}) // different region, same tag
	hints = append(hints, dup)
	ds := vetTampered(c, hints)
	if got := ds.ByCode("HV004"); len(got) != 1 || got[0].Severity != hogvet.Error {
		t.Fatalf("want 1 HV004 error, got:\n%s", ds)
	}
	if got := ds.ByCode("HV005"); len(got) != 0 {
		t.Fatalf("distinct regions must not be HV005-shadowed, got:\n%s", ds)
	}
}

func TestShadowedHintWarning(t *testing.T) {
	c := compileSrc(t, cleanSrc)
	hints := c.Hints()
	if len(hints) == 0 {
		t.Fatal("no hints")
	}
	dup := hints[0]
	dup.Tag = 9999 // fresh tag, identical region and loop
	hints = append(hints, dup)
	ds := vetTampered(c, hints)
	if got := ds.ByCode("HV005"); len(got) != 1 || got[0].Severity != hogvet.Warning {
		t.Fatalf("want 1 HV005 warning, got:\n%s", ds)
	}
	if got := ds.ByCode("HV004"); len(got) != 0 {
		t.Fatalf("distinct tags must not be HV004, got:\n%s", ds)
	}
}

func TestFalseTemporalReuseOnSymbolicStride(t *testing.T) {
	c := compiler.MustCompile(workload.Fftpde().Program(nil), testTarget())
	ds := hogvet.Vet(c).ByCode("HV006")
	if len(ds) != 1 || ds[0].Severity != hogvet.Warning {
		t.Fatalf("want 1 HV006 warning on fftpde, got:\n%s", hogvet.Vet(c))
	}
	if ds[0].Array != "x" {
		t.Fatalf("HV006 array = %q, want x", ds[0].Array)
	}
	// Adaptive codegen resolves symbolic strides at run time: the
	// schedule it produces must be HV006-clean.
	tgt := testTarget()
	tgt.Adaptive = true
	ca := compiler.MustCompile(workload.Fftpde().Program(nil), tgt)
	if ds := hogvet.Vet(ca).ByCode("HV006"); len(ds) != 0 {
		t.Fatalf("adaptive fftpde still flagged:\n%s", hogvet.Vet(ca))
	}
}

func TestUnprovenReleaseRegionNote(t *testing.T) {
	c := compileSrc(t, `
program strided
array a[100000] of float64
array b[100000] of float64
for i = 0 to 49999 {
    b[i] = a[i] + a[2*i] @ 10
}
`)
	ds := hogvet.Vet(c)
	if got := ds.ByCode("HV009"); len(got) == 0 {
		t.Fatalf("want HV009 notes for overlapping access patterns, got:\n%s", ds)
	}
	if ds.Max() > hogvet.Note {
		t.Fatalf("HV009 must stay a note, got:\n%s", ds)
	}
}

func TestFloodThresholdOption(t *testing.T) {
	c := compiler.MustCompile(workload.Cgm().Program(nil), testTarget())
	if got := hogvet.Vet(c).ByCode("HV007"); len(got) != 1 {
		t.Fatalf("want 1 HV007 on cgm at default threshold, got:\n%s", hogvet.Vet(c))
	}
	opts := hogvet.DefaultOptions()
	opts.FloodThreshold = 1e12
	if got := hogvet.VetSchedule(c.Prog, c.Target, c.Hints(), opts).ByCode("HV007"); len(got) != 0 {
		t.Fatalf("HV007 must respect FloodThreshold, got:\n%s", got)
	}
}

func TestSeverityHelpers(t *testing.T) {
	ds := hogvet.Diagnostics{
		{Code: "HV008", Severity: hogvet.Note},
		{Code: "HV007", Severity: hogvet.Warning},
		{Code: "HV003", Severity: hogvet.Error},
	}
	if e, w, n := ds.Counts(); e != 1 || w != 1 || n != 1 {
		t.Fatalf("Counts() = %d, %d, %d", e, w, n)
	}
	if ds.Max() != hogvet.Error {
		t.Fatalf("Max() = %v", ds.Max())
	}
	if got := ds.AtLeast(hogvet.Warning); len(got) != 2 {
		t.Fatalf("AtLeast(Warning) = %d findings", len(got))
	}
	if got := ds.Summary(); got != "1 error(s), 1 warning(s), 1 note(s)" {
		t.Fatalf("Summary() = %q", got)
	}
	for _, want := range []string{"note", "warning", "error"} {
		var s hogvet.Severity
		switch want {
		case "warning":
			s = hogvet.Warning
		case "error":
			s = hogvet.Error
		}
		if s.String() != want {
			t.Fatalf("Severity.String() = %q, want %q", s.String(), want)
		}
	}
}
