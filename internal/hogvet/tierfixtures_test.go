package hogvet_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"memhogs/internal/hogvet"
)

// Tier-fixture certification options: a 1200-page far tier (the far
// share of a 3:1 split of the 4800-page test allotment) behind the
// kernel's default min-prio 1 demotion gate. cmd/gen-golden certifies
// with the same values when regenerating the goldens.
const (
	tierFixtureFarPages = 1200
	tierFixtureMinPrio  = 1
)

// tierFixture compiles one two-tier certification fixture and runs
// the verifier with the far-tier checks enabled.
func tierFixture(t *testing.T, name string) hogvet.Diagnostics {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", name+".hog"))
	if err != nil {
		t.Fatal(err)
	}
	return hogvet.VetParamsFar(compileSrc(t, string(src)), nil, tierFixtureFarPages, tierFixtureMinPrio)
}

// TestTierFixtureGoldens locks the diagnostic listings of the three
// two-tier certification fixtures: faroverflow pins HV014, thrash
// HV015, deadthresh HV016. Regenerate intentionally with
// `go run ./cmd/gen-golden`.
func TestTierFixtureGoldens(t *testing.T) {
	for _, name := range []string{"faroverflow", "thrash", "deadthresh"} {
		name := name
		t.Run(name, func(t *testing.T) {
			got := tierFixture(t, name).String()
			want, err := os.ReadFile(filepath.Join("testdata", name+".golden"))
			if err != nil {
				t.Fatalf("missing golden (run `go run ./cmd/gen-golden`): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics changed; if intentional run `go run ./cmd/gen-golden`\n--- got\n%s\n--- want\n%s", got, want)
			}
		})
	}
}

// TestTierFixtureShapes pins each fixture's finding independently of
// the golden bytes: exactly one diagnostic of the expected code and
// severity, carrying the expected array where the check is per-array.
func TestTierFixtureShapes(t *testing.T) {
	cases := []struct {
		fixture  string
		code     string
		severity hogvet.Severity
		array    string
	}{
		{"faroverflow", "HV014", hogvet.Warning, ""},
		{"thrash", "HV015", hogvet.Warning, "a"},
		{"deadthresh", "HV016", hogvet.Warning, ""},
	}
	for _, c := range cases {
		ds := tierFixture(t, c.fixture)
		if len(ds) != 1 {
			t.Errorf("%s: want exactly 1 diagnostic, got:\n%s", c.fixture, ds)
			continue
		}
		d := ds[0]
		if d.Code != c.code {
			t.Errorf("%s: code = %s, want %s", c.fixture, d.Code, c.code)
		}
		if d.Severity != c.severity {
			t.Errorf("%s: severity = %v, want %v", c.fixture, d.Severity, c.severity)
		}
		if d.Array != c.array {
			t.Errorf("%s: array = %q, want %q", c.fixture, d.Array, c.array)
		}
	}
}

// TestTierChecksQuietWithoutFar pins the gate on the whole HV014–16
// family: the same fixtures certified without a far tier must not
// produce any two-tier diagnostic, so single-tier callers (every
// existing golden) are untouched by the new checks.
func TestTierChecksQuietWithoutFar(t *testing.T) {
	for _, name := range []string{"faroverflow", "thrash", "deadthresh"} {
		src, err := os.ReadFile(filepath.Join("testdata", name+".hog"))
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range hogvet.VetParams(compileSrc(t, string(src)), nil) {
			if d.Code == "HV014" || d.Code == "HV015" || d.Code == "HV016" {
				t.Errorf("%s: far-disabled run produced %s: %s", name, d.Code, d.Message)
			}
		}
	}
}

// TestDeadThresholdDemotesEverything covers HV016's other arm: with
// the gate at priority 0 every release demotes, so the gate filters
// nothing and the diagnostic names the opposite failure.
func TestDeadThresholdDemotesEverything(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "deadthresh.hog"))
	if err != nil {
		t.Fatal(err)
	}
	ds := hogvet.VetParamsFar(compileSrc(t, string(src)), nil, tierFixtureFarPages, 0)
	found := false
	for _, d := range ds {
		if d.Code == "HV016" {
			found = true
			if want := "demotes everything"; !strings.Contains(d.Message, want) {
				t.Errorf("HV016 message %q does not mention %q", d.Message, want)
			}
		}
	}
	if !found {
		t.Errorf("min-prio 0 gate did not fire HV016; got:\n%s", ds)
	}
}
