package hogvet_test

import (
	"fmt"
	"testing"

	"memhogs/internal/compiler"
	"memhogs/internal/footprint"
	"memhogs/internal/hogvet"
	"memhogs/internal/lang"
	"memhogs/internal/sim"
)

// tierNest is one generated loop nest: the generator emits a sequence
// of them so the shrinker can drop whole nests while a property
// failure persists.
type tierNest struct {
	depth int   // 1..2 loops
	trips int64 // per loop
	coefs []int64
	cons  []int64 // one constant offset per array
	work  int     // @ work annotation
}

// tierProgSrc renders a nest sequence as a .hog program over narr
// shared arrays, so successive nests re-touch each other's data and
// the schedule grows real retained windows and releases.
func tierProgSrc(nests []tierNest, narr int, size int64) string {
	src := "program tierprop\n"
	for a := 0; a < narr; a++ {
		src += fmt.Sprintf("array a%d[%d] of float64\n", a, size)
	}
	vars := []string{"i", "j"}
	for _, n := range nests {
		for d := 0; d < n.depth; d++ {
			src += fmt.Sprintf("%sfor %s = 0 to %d {\n", indentN(d), vars[d], n.trips-1)
		}
		expr := ""
		for a := 0; a < narr; a++ {
			sub := fmt.Sprintf("%d", n.cons[a])
			for d := 0; d < n.depth; d++ {
				if c := n.coefs[a*2+d]; c > 0 {
					sub = fmt.Sprintf("%d*%s+%s", c, vars[d], sub)
				}
			}
			if a == 0 {
				expr = fmt.Sprintf("a0[%s] = a0[%s]", sub, sub)
			} else {
				expr += fmt.Sprintf(" + a%d[%s]", a, sub)
			}
		}
		src += indentN(n.depth) + expr + fmt.Sprintf(" @ %d\n", n.work)
		for d := n.depth - 1; d >= 0; d-- {
			src += indentN(d) + "}\n"
		}
	}
	return src
}

func indentN(n int) string {
	s := ""
	for i := 0; i < n; i++ {
		s += "    "
	}
	return s
}

// randTierNests draws a random nest sequence whose subscripts stay in
// bounds for the returned array size.
func randTierNests(r *sim.Rand) (nests []tierNest, narr int, size int64) {
	narr = 1 + r.Intn(3)
	count := 1 + r.Intn(3)
	for k := 0; k < count; k++ {
		n := tierNest{
			depth: 1 + r.Intn(2),
			trips: int64(64 + r.Intn(768)),
			coefs: make([]int64, narr*2),
			cons:  make([]int64, narr),
			work:  10 + r.Intn(40),
		}
		for a := 0; a < narr; a++ {
			for d := 0; d < n.depth; d++ {
				n.coefs[a*2+d] = int64(r.Intn(4))
			}
			if n.coefs[a*2] == 0 && (n.depth < 2 || n.coefs[a*2+1] == 0) {
				n.coefs[a*2+n.depth-1] = 1
			}
			n.cons[a] = int64(r.Intn(8))
		}
		nests = append(nests, n)
	}
	size = int64(0)
	for _, n := range nests {
		for a := 0; a < narr; a++ {
			idx := n.cons[a]
			for d := 0; d < n.depth; d++ {
				idx += n.coefs[a*2+d] * (n.trips - 1)
			}
			if idx >= size {
				size = idx + 1
			}
		}
	}
	return nests, narr, size + 8
}

// tierPropDRAMPages keeps the compile target small so the generated
// programs' footprints are comparable to the far-tier sizes swept
// below.
const tierPropDRAMPages = 256

// farSweep is the increasing far-tier sizes each program is certified
// at; the monotonicity properties quantify over adjacent pairs.
var farSweep = []int{8, 64, 512, 4096}

// tierPropViolation certifies the program's Buffered schedule at each
// far size in farSweep and returns a description of the first
// violated monotonicity property, or "" if all hold:
//
//   - the DRAM bound never increases as the far tier grows (the far
//     tier is downstream of the DRAM interpretation, so it must not
//     feed back);
//   - the uncapped far bound is the same at every positive tier size;
//   - the far certificate (the capped bound) never shrinks as its cap
//     grows;
//   - HV014 never flips clean→firing as the far tier grows: a
//     schedule that fits a small tier cannot overflow a bigger one.
func tierPropViolation(src string) string {
	viol, _ := tierPropCheck(src)
	return viol
}

// tierPropCheck is tierPropViolation plus the program's uncapped far
// bound, which the property test uses to prove the random sweep is
// not vacuous (some programs must actually demote something).
func tierPropCheck(src string) (string, int64) {
	prog, err := lang.Parse(src)
	if err != nil {
		return "", 0 // an unparseable shrink candidate is not a violation
	}
	tgt := compiler.DefaultTarget(16<<10, tierPropDRAMPages)
	tgt.Prefetch = true
	tgt.Release = true
	c, err := compiler.Compile(prog, tgt)
	if err != nil {
		return "", 0
	}
	type point struct {
		dram, farBound, farCert int64
		hv014                   bool
	}
	points := make([]point, len(farSweep))
	for i, far := range farSweep {
		cert := footprint.Certify(prog, tgt, c.Hints(), footprint.VersionB,
			footprint.Opts{FarPages: far, FarMinPrio: 1})
		p := point{dram: cert.BoundPages, farBound: cert.FarBoundPages, farCert: cert.FarCertifiedPages}
		for _, d := range hogvet.VetParamsFar(c, nil, far, 1) {
			if d.Code == "HV014" {
				p.hv014 = true
			}
		}
		points[i] = p
	}
	for i := 1; i < len(points); i++ {
		prev, cur := points[i-1], points[i]
		f1, f2 := farSweep[i-1], farSweep[i]
		if prev.dram >= 0 && (cur.dram < 0 || cur.dram > prev.dram) {
			return fmt.Sprintf("DRAM bound grew %d → %d when far tier grew %d → %d",
				prev.dram, cur.dram, f1, f2), points[0].farBound
		}
		if cur.farBound != prev.farBound {
			return fmt.Sprintf("far bound changed %d → %d with the tier size (%d → %d): the uncapped bound must not depend on the cap",
				prev.farBound, cur.farBound, f1, f2), points[0].farBound
		}
		if cur.farCert < prev.farCert {
			return fmt.Sprintf("far certificate shrank %d → %d when its cap grew %d → %d",
				prev.farCert, cur.farCert, f1, f2), points[0].farBound
		}
		if !prev.hv014 && cur.hv014 {
			return fmt.Sprintf("HV014 flipped clean→firing when the far tier grew %d → %d", f1, f2), points[0].farBound
		}
	}
	return "", points[0].farBound
}

// TestFarTierMonotone property-checks the two-tier domain across
// random multi-nest affine programs: growing the far tier can only
// relax the verdicts. On failure the nest sequence is greedily shrunk
// (memtest's Shrink idiom, at nest granularity) and the minimal
// program printed as pasteable .hog source.
func TestFarTierMonotone(t *testing.T) {
	r := sim.NewRand(20260809)
	demoting := 0
	for trial := 0; trial < 30; trial++ {
		nests, narr, size := randTierNests(r)
		src := tierProgSrc(nests, narr, size)
		viol, farBound := tierPropCheck(src)
		if farBound != 0 {
			demoting++
		}
		if viol == "" {
			continue
		}
		// Greedy shrink: drop any single nest whose removal keeps the
		// property violated, until none does.
		for {
			shrunk := false
			for i := range nests {
				cand := append(append([]tierNest{}, nests[:i]...), nests[i+1:]...)
				if len(cand) == 0 {
					continue
				}
				if v := tierPropViolation(tierProgSrc(cand, narr, size)); v != "" {
					nests, viol, shrunk = cand, v, true
					break
				}
			}
			if !shrunk {
				break
			}
		}
		t.Fatalf("trial %d: %s\nminimal repro:\n%s", trial, viol, tierProgSrc(nests, narr, size))
	}
	if demoting == 0 {
		t.Fatal("vacuous sweep: no generated program ever had a demotable page")
	}
}

// TestFarTierMonotoneNonVacuous pins that the sweep actually
// exercises the interesting region: a known overflowing program must
// fire HV014 at the small end of farSweep and certify cleanly at a
// big enough tier, so the flip direction the property forbids is the
// one that could plausibly occur.
func TestFarTierMonotoneNonVacuous(t *testing.T) {
	src := tierProgSrc([]tierNest{
		{depth: 2, trips: 700, coefs: []int64{0, 1, 1, 0}, cons: []int64{0, 0}, work: 20},
		{depth: 1, trips: 700, coefs: []int64{1, 0, 1, 0}, cons: []int64{0, 0}, work: 20},
	}, 2, 720*701)
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	tgt := compiler.DefaultTarget(16<<10, tierPropDRAMPages)
	tgt.Prefetch = true
	tgt.Release = true
	c, err := compiler.Compile(prog, tgt)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	fired := map[int]bool{}
	for _, far := range farSweep {
		for _, d := range hogvet.VetParamsFar(c, nil, far, 1) {
			if d.Code == "HV014" {
				fired[far] = true
			}
		}
	}
	if !fired[farSweep[0]] {
		t.Errorf("expected HV014 at the %d-page far tier\n%s", farSweep[0], src)
	}
	if fired[farSweep[len(farSweep)-1]] {
		t.Errorf("expected a clean certificate at the %d-page far tier\n%s",
			farSweep[len(farSweep)-1], src)
	}
	if v := tierPropViolation(src); v != "" {
		t.Errorf("known-good program violates the property: %s", v)
	}
}
