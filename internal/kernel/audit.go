package kernel

import (
	"fmt"

	"memhogs/internal/mem"
)

// Audit cross-checks the VM invariants between the physical frame
// pool and every address space's page table. It is cheap enough to
// run continuously (driver.RunConfig.AuditEvery) and is valid at any
// event-loop boundary, not just end-of-run: pages with a page-in in
// flight and hot-unplugged frames are accounted explicitly instead of
// assumed away. It catches double frees, leaked frames, stale
// identities, resident-count drift, and Busy bits without a backing
// page-in.
//
// Invariants:
//
//  1. Every frame is free, offline, or owned by exactly one virtual
//     page (resident, rescuable, or with a page-in in transit).
//  2. An address space's Resident count equals its number of Present
//     PTEs.
//  3. A Present PTE's frame points back at (AS, vpn) and is not on
//     the free list.
//  4. A non-present PTE that still names a frame (rescuable) points
//     at a free-listed frame with the matching identity.
//  5. A Busy PTE is not Present, names no frame yet, and has a
//     page-in registered in flight; the in-flight registry has no
//     entries beyond the Busy PTEs.
//  6. Free + offline + resident + in-transit frames = total frames.
//  7. Every page is resident in exactly one tier: a far-resident PTE
//     is not Present, not Busy, names no DRAM frame (not even a
//     rescuable one), and points at an in-use far slot carrying its
//     identity; no two PTEs share a slot; per-AS FarResident counts
//     reconcile; used far slots = far-resident PTEs + slots kept by
//     exited owners; and the far tier's own free/offline structures
//     validate.
func (sys *System) Audit() error {
	phys := sys.Phys

	// Pass 0: per-node free-list invariants straight from the
	// allocator — list structure, loan bookkeeping (listNode), per-node
	// counters, and free-vs-bitmap agreement for every node region.
	if err := phys.ValidateFreeLists(); err != nil {
		return fmt.Errorf("audit: %w", err)
	}

	// Pass 1: per-frame checks, collecting the identity of every
	// allocated (non-free, non-offline) frame.
	type key struct {
		owner string
		vpn   int
	}
	owners := map[key]mem.FrameID{}
	free, offline := 0, 0
	for i := 0; i < phys.NumFrames(); i++ {
		f := phys.Frame(mem.FrameID(i))
		if got, want := phys.FrameAllocated(i), !f.OnFreeList() && !f.IsOffline(); got != want {
			return fmt.Errorf("audit: frame %d allocated bitmap says %v but frame state says %v",
				f.ID, got, want)
		}
		if f.IsOffline() {
			if f.OnFreeList() {
				return fmt.Errorf("audit: offline frame %d still on the free list", f.ID)
			}
			if f.Owner != nil {
				return fmt.Errorf("audit: offline frame %d retains owner %s:%d",
					f.ID, f.Owner.OwnerName(), f.VPN)
			}
			offline++
			continue
		}
		if f.OnFreeList() {
			free++
			continue
		}
		if f.Owner == nil {
			return fmt.Errorf("audit: frame %d neither free nor owned", f.ID)
		}
		k := key{f.Owner.OwnerName(), f.VPN}
		if prev, dup := owners[k]; dup {
			return fmt.Errorf("audit: page %s:%d owned by frames %d and %d",
				k.owner, k.vpn, prev, f.ID)
		}
		owners[k] = f.ID
	}
	if free != phys.FreeCount() {
		return fmt.Errorf("audit: free-list count %d != %d frames marked free",
			phys.FreeCount(), free)
	}
	if offline != phys.OfflineCount() {
		return fmt.Errorf("audit: offline count %d != %d frames marked offline",
			phys.OfflineCount(), offline)
	}

	// Pass 2: per-address-space checks. matched marks every allocated
	// frame claimed by a PTE — present pages claim their mapped
	// frame, Busy pages claim the frame allocated for their page-in
	// (which carries their identity but is not yet wired into the
	// PTE).
	matched := map[mem.FrameID]bool{}
	slotOwners := map[mem.FarSlotID]string{}
	residentTotal, inTransit, farTotal := 0, 0, 0
	for _, p := range sys.procs {
		as := p.AS
		resident, busy, far := 0, 0, 0
		for vpn := 0; vpn < as.NumPages(); vpn++ {
			pte := as.PTE(vpn)
			if pte.FarSlot != mem.NoFarSlot {
				// Exactly one tier: a far-resident page holds nothing
				// in DRAM — no mapping, no in-flight page-in, no
				// rescuable frame.
				if pte.Present {
					return fmt.Errorf("audit: %s:%d resident in both DRAM and far tier", p.Name, vpn)
				}
				if pte.Busy {
					return fmt.Errorf("audit: %s:%d busy while far-resident", p.Name, vpn)
				}
				if pte.Frame != mem.NoFrame {
					return fmt.Errorf("audit: %s:%d far-resident but still names frame %d",
						p.Name, vpn, pte.Frame)
				}
				if sys.Far == nil {
					return fmt.Errorf("audit: %s:%d names far slot %d but the machine has no far tier",
						p.Name, vpn, pte.FarSlot)
				}
				s := sys.Far.Slot(pte.FarSlot)
				if !s.InUse() {
					return fmt.Errorf("audit: %s:%d names free far slot %d", p.Name, vpn, s.ID)
				}
				if s.Owner == nil || s.Owner.OwnerName() != p.Name || s.VPN != vpn {
					return fmt.Errorf("audit: %s:%d far slot %d identity mismatch (%v:%d)",
						p.Name, vpn, s.ID, s.Owner, s.VPN)
				}
				if prev, dup := slotOwners[s.ID]; dup {
					return fmt.Errorf("audit: far slot %d claimed by both %s and %s:%d",
						s.ID, prev, p.Name, vpn)
				}
				slotOwners[s.ID] = fmt.Sprintf("%s:%d", p.Name, vpn)
				far++
			}
			switch {
			case pte.Busy:
				busy++
				if pte.Present {
					return fmt.Errorf("audit: %s:%d busy and present", p.Name, vpn)
				}
				if pte.Frame != mem.NoFrame {
					return fmt.Errorf("audit: %s:%d busy but already names frame %d",
						p.Name, vpn, pte.Frame)
				}
				if !as.PageInInFlight(vpn) {
					return fmt.Errorf("audit: %s:%d busy without an in-flight page-in",
						p.Name, vpn)
				}
				// The page-in's frame may not exist yet (the fault may
				// still be waiting for free memory); once allocated it
				// carries our identity.
				if id, ok := owners[key{p.Name, vpn}]; ok {
					matched[id] = true
					inTransit++
				}
			case pte.Present:
				resident++
				if pte.Frame == mem.NoFrame {
					return fmt.Errorf("audit: %s:%d present without frame", p.Name, vpn)
				}
				f := phys.Frame(pte.Frame)
				if f.OnFreeList() {
					return fmt.Errorf("audit: %s:%d present but frame %d is free",
						p.Name, vpn, f.ID)
				}
				if f.IsOffline() {
					return fmt.Errorf("audit: %s:%d present but frame %d is offline",
						p.Name, vpn, f.ID)
				}
				if f.Owner == nil || f.Owner.OwnerName() != p.Name || f.VPN != vpn {
					return fmt.Errorf("audit: %s:%d frame %d identity mismatch (%v:%d)",
						p.Name, vpn, f.ID, f.Owner, f.VPN)
				}
				matched[f.ID] = true
			case pte.Frame != mem.NoFrame:
				// Rescuable: the frame must be free-listed with our
				// identity (otherwise FrameInvalidated should have
				// cleared the PTE).
				f := phys.Frame(pte.Frame)
				if !f.OnFreeList() {
					return fmt.Errorf("audit: %s:%d rescuable frame %d not on free list",
						p.Name, vpn, f.ID)
				}
				if f.Owner == nil || f.Owner.OwnerName() != p.Name || f.VPN != vpn {
					return fmt.Errorf("audit: %s:%d stale rescue identity on frame %d",
						p.Name, vpn, f.ID)
				}
			}
			if pte.Valid && !pte.Present {
				return fmt.Errorf("audit: %s:%d valid but not present", p.Name, vpn)
			}
			// The packed residency/validity bitmaps are the fast-path
			// mirror of the PTE array; they must never drift from it.
			if as.ResidentBit(vpn) != pte.Present {
				return fmt.Errorf("audit: %s:%d residency bitmap %v but PTE present %v",
					p.Name, vpn, as.ResidentBit(vpn), pte.Present)
			}
			if as.ValidBit(vpn) != pte.Valid {
				return fmt.Errorf("audit: %s:%d validity bitmap %v but PTE valid %v",
					p.Name, vpn, as.ValidBit(vpn), pte.Valid)
			}
		}
		if resident != as.Resident {
			return fmt.Errorf("audit: %s resident count %d != %d present PTEs",
				p.Name, as.Resident, resident)
		}
		if busy != as.InFlightPageIns() {
			return fmt.Errorf("audit: %s has %d busy PTEs but %d in-flight page-ins",
				p.Name, busy, as.InFlightPageIns())
		}
		if far != as.FarResident {
			return fmt.Errorf("audit: %s far-resident count %d != %d far-slot PTEs",
				p.Name, as.FarResident, far)
		}
		residentTotal += resident
		farTotal += far
	}

	// Pass 2b: far-tier conservation. Every in-use slot not claimed by
	// a PTE would be a leak: processes never exit mid-audit in this
	// simulator, so used slots and far-resident PTEs must agree
	// exactly, and the tier's internal free/offline bookkeeping must
	// validate.
	if sys.Far != nil {
		if err := sys.Far.Validate(); err != nil {
			return fmt.Errorf("audit: %w", err)
		}
		if used := sys.Far.UsedCount(); used != farTotal {
			return fmt.Errorf("audit: far tier holds %d pages but %d PTEs are far-resident",
				used, farTotal)
		}
	} else if farTotal != 0 {
		return fmt.Errorf("audit: %d far-resident PTEs without a far tier", farTotal)
	}

	// Pass 3: no allocated frame may be unclaimed (a leak), and the
	// frame population must conserve.
	for i := 0; i < phys.NumFrames(); i++ {
		f := phys.Frame(mem.FrameID(i))
		if f.IsOffline() || f.OnFreeList() {
			continue
		}
		if !matched[f.ID] {
			return fmt.Errorf("audit: frame %d (%s:%d) allocated but referenced by no PTE",
				f.ID, f.Owner.OwnerName(), f.VPN)
		}
	}
	if free+offline+residentTotal+inTransit != phys.NumFrames() {
		return fmt.Errorf("audit: conservation failed: free %d + offline %d + resident %d + in-transit %d != %d frames",
			free, offline, residentTotal, inTransit, phys.NumFrames())
	}
	return nil
}
