package kernel

import (
	"fmt"

	"memhogs/internal/mem"
)

// Audit cross-checks the VM invariants between the physical frame
// pool and every address space's page table. It is cheap enough to run
// after every test scenario and catches double frees, leaked frames,
// stale identities, and resident-count drift.
//
// Invariants:
//
//  1. Every frame is either on the free list or owned by exactly one
//     resident virtual page.
//  2. An address space's Resident count equals its number of Present
//     PTEs.
//  3. A Present PTE's frame points back at (AS, vpn) and is not on the
//     free list.
//  4. A non-present PTE that still names a frame (rescuable) points at
//     a free-listed frame with the matching identity.
//  5. Free count + resident pages across all processes = total frames.
func (sys *System) Audit() error {
	phys := sys.Phys

	// Pass 1: per-frame checks, collecting ownership.
	type key struct {
		owner string
		vpn   int
	}
	owners := map[key]mem.FrameID{}
	free := 0
	for i := 0; i < phys.NumFrames(); i++ {
		f := phys.Frame(mem.FrameID(i))
		if f.OnFreeList() {
			free++
			continue
		}
		if f.Owner == nil {
			return fmt.Errorf("audit: frame %d neither free nor owned", f.ID)
		}
		k := key{f.Owner.OwnerName(), f.VPN}
		if prev, dup := owners[k]; dup {
			return fmt.Errorf("audit: page %s:%d owned by frames %d and %d",
				k.owner, k.vpn, prev, f.ID)
		}
		owners[k] = f.ID
	}
	if free != phys.FreeCount() {
		return fmt.Errorf("audit: free-list count %d != %d frames marked free",
			phys.FreeCount(), free)
	}

	// Pass 2: per-address-space checks.
	residentTotal := 0
	for _, p := range sys.procs {
		as := p.AS
		resident := 0
		for vpn := 0; vpn < as.NumPages(); vpn++ {
			pte := as.PTE(vpn)
			switch {
			case pte.Present:
				resident++
				if pte.Frame == mem.NoFrame {
					return fmt.Errorf("audit: %s:%d present without frame", p.Name, vpn)
				}
				f := phys.Frame(pte.Frame)
				if f.OnFreeList() {
					return fmt.Errorf("audit: %s:%d present but frame %d is free",
						p.Name, vpn, f.ID)
				}
				if f.Owner == nil || f.Owner.OwnerName() != p.Name || f.VPN != vpn {
					return fmt.Errorf("audit: %s:%d frame %d identity mismatch (%v:%d)",
						p.Name, vpn, f.ID, f.Owner, f.VPN)
				}
			case pte.Frame != mem.NoFrame:
				// Rescuable: the frame must be free-listed with our
				// identity (otherwise FrameInvalidated should have
				// cleared the PTE).
				f := phys.Frame(pte.Frame)
				if pte.Busy {
					continue // page-in in flight
				}
				if !f.OnFreeList() {
					return fmt.Errorf("audit: %s:%d rescuable frame %d not on free list",
						p.Name, vpn, f.ID)
				}
				if f.Owner == nil || f.Owner.OwnerName() != p.Name || f.VPN != vpn {
					return fmt.Errorf("audit: %s:%d stale rescue identity on frame %d",
						p.Name, vpn, f.ID)
				}
			}
			if pte.Valid && !pte.Present {
				return fmt.Errorf("audit: %s:%d valid but not present", p.Name, vpn)
			}
		}
		if resident != as.Resident {
			return fmt.Errorf("audit: %s resident count %d != %d present PTEs",
				p.Name, as.Resident, resident)
		}
		residentTotal += resident
	}

	// Busy pages own frames that are neither free nor yet present;
	// account for them before the conservation check.
	busy := 0
	for _, p := range sys.procs {
		for vpn := 0; vpn < p.AS.NumPages(); vpn++ {
			if p.AS.PTE(vpn).Busy {
				busy++
			}
		}
	}
	if free+residentTotal+busy != phys.NumFrames() {
		return fmt.Errorf("audit: conservation failed: free %d + resident %d + busy %d != %d frames",
			free, residentTotal, busy, phys.NumFrames())
	}
	return nil
}
