package kernel

import (
	"strings"
	"testing"

	"memhogs/internal/mem"
	"memhogs/internal/sim"
	"memhogs/internal/vm"
)

func TestAuditCleanSystem(t *testing.T) {
	sys := NewSystem(TestConfig())
	p := sys.NewProcess("app", 32)
	p.Start(true, func(th *Thread) {
		for vpn := 0; vpn < 16; vpn++ {
			th.Touch(vpn, vpn%2 == 0)
		}
	})
	sys.Run(0)
	if err := sys.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestAuditUnderPressure(t *testing.T) {
	sys := NewSystem(TestConfig())
	p := sys.NewProcess("hog", 1024)
	p.Start(true, func(th *Thread) {
		for vpn := 0; vpn < 1024; vpn++ {
			th.Touch(vpn, true)
		}
	})
	sys.Run(0)
	if err := sys.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestAuditCatchesDoubleOwnership(t *testing.T) {
	sys := NewSystem(TestConfig())
	p := sys.NewProcess("app", 8)
	p.Start(true, func(th *Thread) {
		th.Touch(0, false)
	})
	sys.Run(0)
	// Corrupt the system: allocate a second frame claiming the same
	// page.
	sys.Phys.TryAlloc(p.AS, 0)
	err := sys.Audit()
	if err == nil || !strings.Contains(err.Error(), "owned by frames") {
		t.Fatalf("audit missed double ownership: %v", err)
	}
}

func TestAuditCatchesResidentDrift(t *testing.T) {
	sys := NewSystem(TestConfig())
	p := sys.NewProcess("app", 8)
	p.Start(true, func(th *Thread) {
		th.Touch(0, false)
	})
	sys.Run(0)
	p.AS.Resident++ // corrupt the counter
	err := sys.Audit()
	if err == nil || !strings.Contains(err.Error(), "resident count") {
		t.Fatalf("audit missed resident drift: %v", err)
	}
}

func TestAuditCatchesValidNonPresent(t *testing.T) {
	sys := NewSystem(TestConfig())
	p := sys.NewProcess("app", 8)
	p.Start(true, func(th *Thread) {
		th.Touch(0, false)
	})
	sys.Run(0)
	pte := p.AS.PTE(3)
	pte.Valid = true // valid without a frame
	err := sys.Audit()
	if err == nil || !strings.Contains(err.Error(), "valid but not present") {
		t.Fatalf("audit missed valid-non-present: %v", err)
	}
}

func TestAuditCatchesFreeListMismatch(t *testing.T) {
	sys := NewSystem(TestConfig())
	p := sys.NewProcess("app", 8)
	p.Start(true, func(th *Thread) {
		th.Touch(0, false)
		th.Touch(1, false)
		// Release page 1 properly through the VM so it sits on the
		// free list with identity...
		p.AS.InvalidateForRelease(1)
		p.AS.TryReclaim(1, mem.FreedRelease)
	})
	sys.Run(0)
	if err := sys.Audit(); err != nil {
		t.Fatalf("legitimate rescuable state flagged: %v", err)
	}
	// ...then corrupt the frame's identity.
	pte := p.AS.PTE(1)
	sys.Phys.Frame(pte.Frame).VPN = 7
	err := sys.Audit()
	if err == nil {
		t.Fatal("audit missed stale rescue identity")
	}
}

// TestAuditCatchesBusyWithoutPageIn is the regression test for the
// audit gap this invariant closed: a Busy PTE used to be skipped in
// pass 2, so a stuck Busy bit (with no page-in behind it) was
// invisible until the conservation total happened to drift.
func TestAuditCatchesBusyWithoutPageIn(t *testing.T) {
	sys := NewSystem(TestConfig())
	p := sys.NewProcess("app", 64)
	p.Start(true, func(th *Thread) {
		th.Touch(0, false)
	})
	sys.Run(0)
	// Page 60 is far beyond the readahead window: untouched, no
	// page-in. A stuck Busy bit there must be flagged.
	p.AS.PTE(60).Busy = true
	err := sys.Audit()
	if err == nil || !strings.Contains(err.Error(), "busy without an in-flight page-in") {
		t.Fatalf("audit missed orphaned Busy bit: %v", err)
	}
}

func TestAuditCatchesBusyAndPresent(t *testing.T) {
	sys := NewSystem(TestConfig())
	p := sys.NewProcess("app", 8)
	p.Start(true, func(th *Thread) {
		th.Touch(0, false)
	})
	sys.Run(0)
	p.AS.PTE(0).Busy = true // page 0 is resident: busy+present is illegal
	err := sys.Audit()
	if err == nil || !strings.Contains(err.Error(), "busy and present") {
		t.Fatalf("audit missed busy+present: %v", err)
	}
}

func TestAuditCatchesLeakedFrame(t *testing.T) {
	sys := NewSystem(TestConfig())
	p := sys.NewProcess("app", 64)
	p.Start(true, func(th *Thread) {
		th.Touch(0, false)
	})
	sys.Run(0)
	// Allocate a frame for a page that is neither present nor busy:
	// nothing references it, so it is leaked.
	sys.Phys.TryAlloc(p.AS, 60)
	err := sys.Audit()
	if err == nil || !strings.Contains(err.Error(), "referenced by no PTE") {
		t.Fatalf("audit missed leaked frame: %v", err)
	}
}

func TestAuditAccountsOfflineFrames(t *testing.T) {
	sys := NewSystem(TestConfig())
	p := sys.NewProcess("app", 8)
	p.Start(true, func(th *Thread) {
		th.Touch(0, false)
	})
	sys.Run(0)
	if got := sys.Phys.Offline(32); got != 32 {
		t.Fatalf("Offline(32) = %d", got)
	}
	if err := sys.Audit(); err != nil {
		t.Fatalf("clean hot-unplugged system flagged: %v", err)
	}
	sys.Phys.Online(32)
	if err := sys.Audit(); err != nil {
		t.Fatalf("clean re-plugged system flagged: %v", err)
	}
}

// TestAuditCleanMidRun drives the audit on a cadence while a heavily
// oversubscribed sweep runs, so it sees Busy PTEs, in-flight page-ins,
// and daemon activity at arbitrary event boundaries — the continuous
// mode the chaos driver uses.
func TestAuditCleanMidRun(t *testing.T) {
	sys := NewSystem(TestConfig())
	p := sys.NewProcess("hog", 1024)
	p.Start(true, func(th *Thread) {
		for vpn := 0; vpn < 1024; vpn++ {
			th.Touch(vpn, true)
		}
	})
	ticks := 0
	var auditErr error
	var tick func()
	tick = func() {
		if auditErr != nil {
			return
		}
		if err := sys.Audit(); err != nil {
			auditErr = err
			sys.Sim.Stop()
			return
		}
		ticks++
		sys.Sim.At(sys.Now()+sim.Millisecond, tick)
	}
	sys.Sim.At(sim.Millisecond, tick)
	sys.Run(0)
	if auditErr != nil {
		t.Fatalf("mid-run audit failed after %d clean ticks: %v", ticks, auditErr)
	}
	if ticks < 10 {
		t.Fatalf("only %d audit ticks ran; the run should span many", ticks)
	}
}

func TestMemlockStatsSurface(t *testing.T) {
	// The paper's contention story: daemon batches hold the lock while
	// faults wait. Force contention and check the counters move.
	cfg := TestConfig()
	sys := NewSystem(cfg)
	p := sys.NewProcess("app", 1024)
	p.Start(true, func(th *Thread) {
		for vpn := 0; vpn < 1024; vpn++ {
			th.Touch(vpn, false)
		}
	})
	sys.Run(0)
	l := p.AS.Memlock
	if l.Acquisitions == 0 {
		t.Fatal("no memlock acquisitions recorded")
	}
	if l.HoldTime == 0 {
		t.Fatal("no memlock hold time recorded")
	}
	// With a 4x-oversubscribed sweep the daemon must have contended
	// with the fault path at least occasionally.
	if l.Contended == 0 {
		t.Log("note: no contention on this configuration (acceptable but unusual)")
	}
}

func TestDaemonExecConsumesCPU(t *testing.T) {
	sys := NewSystem(TestConfig())
	p := sys.NewProcess("hog", 1024)
	p.Start(true, func(th *Thread) {
		for vpn := 0; vpn < 1024; vpn++ {
			th.Touch(vpn, false)
		}
	})
	sys.Run(0)
	if sys.DaemonTime[vm.BucketSystem] == 0 {
		t.Fatal("paging daemon consumed no CPU despite heavy stealing")
	}
}

func TestUserFlushBoundsSkew(t *testing.T) {
	// Accumulated user time must flush at the configured threshold:
	// a long run of tiny User() calls cannot let pending time exceed
	// UserFlush.
	cfg := TestConfig()
	sys := NewSystem(cfg)
	p := sys.NewProcess("app", 4)
	var maxPending sim.Time
	p.Start(true, func(th *Thread) {
		for i := 0; i < 10000; i++ {
			th.User(10 * sim.Microsecond)
			if pend := th.PendingUser(); pend > maxPending {
				maxPending = pend
			}
		}
		th.FlushUser()
	})
	sys.Run(0)
	if maxPending > cfg.UserFlush {
		t.Fatalf("pending user time reached %v, above the %v flush threshold",
			maxPending, cfg.UserFlush)
	}
	if p.Times[vm.BucketUser] != 100*sim.Millisecond {
		t.Fatalf("user time = %v, want 100ms", p.Times[vm.BucketUser])
	}
}
