// Package kernel assembles the simulated machine and operating system:
// physical memory, disks, the paging and releaser daemons, a CPU
// scheduler, and the process/thread abstraction with per-bucket time
// accounting that the paper's Figure 7 breakdowns are built from.
package kernel

import (
	"fmt"

	"memhogs/internal/disk"
	"memhogs/internal/pageout"
	"memhogs/internal/pdpm"
	"memhogs/internal/sim"
	"memhogs/internal/vm"
)

// Config describes the machine and OS tunables. DefaultConfig matches
// the paper's Table 1 platform (SGI Origin 200, IRIX 6.5).
type Config struct {
	// Machine (Table 1).
	NCPU         int      // processors
	CPUMHz       int      // informational; per-iteration work is set by workloads
	CPUQuantum   sim.Time // scheduler time slice
	PageSize     int      // bytes per page (IRIX on Origin: 16 KB)
	UserMemPages int      // physical pages available to user programs (~75 MB)

	// Nodes shards physical memory into that many NUMA regions, each
	// with its own free list, paging daemon, and releaser, plus an
	// inter-node balancer. 0 or 1 selects the paper's single-node
	// machine (byte-identical to the pre-sharding simulator).
	Nodes int

	// VM tunables.
	MinFreePages    int // min_freemem: daemon wakes below this
	TargetFreePages int // desfree: daemon steals until free reaches this

	// Far configures the optional far-memory tier between DRAM and
	// swap. The zero value (Pages == 0) disables it entirely: no tier
	// is built, no demotions happen, and runs are byte-identical to the
	// pre-tiering simulator.
	Far FarConfig

	// Disk subsystem (ten Cheetah 4LP disks, five SCSI adapters).
	Disk disk.Config

	// Fault-path costs.
	VM vm.Params

	// Daemon costs.
	Daemon   pageout.DaemonConfig
	Releaser pageout.ReleaserConfig

	// PagingDirected PM syscall costs.
	PM pdpm.Config

	// UserFlush is the threshold at which accumulated user compute is
	// turned into scheduled CPU time; it bounds the timing skew of the
	// batching optimization.
	UserFlush sim.Time

	Seed uint64
}

// FarConfig sizes and prices the CXL-like far-memory tier: byte
// addressable, a fixed device latency with no positioning cost, and an
// eq. 2 priority threshold deciding which released pages earn a slot
// in it instead of going to swap.
type FarConfig struct {
	Pages   int      // far-tier capacity in pages; 0 disables the tier
	Latency sim.Time // fixed promote latency (no positioning cost)
	CPU     sim.Time // CPU cost of a far fault's bookkeeping
	MinPrio int      // releases with priority >= MinPrio demote to far, below go to swap
}

// DefaultConfig returns the paper's experimental platform (Table 1):
// a 4-processor SGI Origin 200 with roughly 75 MB available to user
// programs, 16 KB pages, and swap striped over ten disks behind five
// SCSI adapters.
func DefaultConfig() Config {
	cfg := Config{
		NCPU:         4,
		CPUMHz:       225,
		CPUQuantum:   10 * sim.Millisecond,
		PageSize:     16 << 10,
		UserMemPages: 75 << 20 >> 14, // 75 MB of 16 KB pages = 4800

		MinFreePages:    64,  // 1 MB
		TargetFreePages: 256, // 4 MB

		Disk: disk.Config{
			NumDisks:     10,
			NumAdapters:  5,
			PosTimeMin:   4 * sim.Millisecond,
			PosTimeMax:   9 * sim.Millisecond,
			SeqPosTime:   600 * sim.Microsecond,
			TransferTime: 900 * sim.Microsecond, // 16 KB at ~17 MB/s
		},

		VM: vm.Params{
			SoftFaultTime: 30 * sim.Microsecond,
			RescueTime:    80 * sim.Microsecond,
			HardFaultCPU:  200 * sim.Microsecond,
			PageoutCPU:    60 * sim.Microsecond,
			Readahead:     8, // IRIX swap klustering
		},

		Daemon: pageout.DaemonConfig{
			PerPage: 6 * sim.Microsecond,
			Batch:   256,
		},
		Releaser: pageout.ReleaserConfig{
			PerPage: 2 * sim.Microsecond,
			Batch:   32,
		},

		PM: pdpm.Config{
			PrefetchCall: 20 * sim.Microsecond,
			ReleaseCall:  15 * sim.Microsecond,
		},

		UserFlush: 500 * sim.Microsecond,
		Seed:      1,

		// Far latencies are pre-set so enabling the tier is just
		// setting Pages: ~25 us device reads sit between DRAM and the
		// millisecond disk path, and MinPrio 1 sends only the lowest
		// reuse class (priority 0) straight to swap.
		Far: FarConfig{
			Latency: 25 * sim.Microsecond,
			CPU:     5 * sim.Microsecond,
			MinPrio: 1,
		},
	}
	cfg.Daemon.MinFree = cfg.MinFreePages
	cfg.Daemon.TargetFree = cfg.TargetFreePages
	cfg.PM.MinFree = cfg.MinFreePages
	return cfg
}

// TestConfig returns a scaled-down machine (a few MB of memory, two
// disks) for fast unit tests and testing.B benchmarks.
func TestConfig() Config {
	cfg := DefaultConfig()
	cfg.UserMemPages = 256 // 4 MB
	cfg.MinFreePages = 8
	cfg.TargetFreePages = 24
	cfg.Disk.NumDisks = 2
	cfg.Disk.NumAdapters = 1
	cfg.Daemon.MinFree = cfg.MinFreePages
	cfg.Daemon.TargetFree = cfg.TargetFreePages
	cfg.PM.MinFree = cfg.MinFreePages
	return cfg
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	switch {
	case c.NCPU <= 0:
		return fmt.Errorf("kernel: NCPU must be positive, got %d", c.NCPU)
	case c.PageSize <= 0 || c.PageSize&(c.PageSize-1) != 0:
		return fmt.Errorf("kernel: PageSize must be a positive power of two, got %d", c.PageSize)
	case c.UserMemPages <= 0:
		return fmt.Errorf("kernel: UserMemPages must be positive, got %d", c.UserMemPages)
	case c.Nodes < 0 || c.Nodes > c.UserMemPages:
		return fmt.Errorf("kernel: Nodes %d out of range", c.Nodes)
	case c.MinFreePages < 0 || c.MinFreePages >= c.UserMemPages:
		return fmt.Errorf("kernel: MinFreePages %d out of range", c.MinFreePages)
	case c.TargetFreePages < c.MinFreePages:
		return fmt.Errorf("kernel: TargetFreePages %d below MinFreePages %d", c.TargetFreePages, c.MinFreePages)
	case c.Disk.NumDisks <= 0:
		return fmt.Errorf("kernel: NumDisks must be positive, got %d", c.Disk.NumDisks)
	case c.CPUQuantum <= 0:
		return fmt.Errorf("kernel: CPUQuantum must be positive")
	case c.Far.Pages < 0:
		return fmt.Errorf("kernel: Far.Pages must be non-negative, got %d", c.Far.Pages)
	case c.Far.Pages > 0 && (c.Far.Latency < 0 || c.Far.CPU < 0 || c.Far.MinPrio < 0):
		return fmt.Errorf("kernel: far-tier latencies and MinPrio must be non-negative")
	}
	return nil
}

// MemBytes returns user-available physical memory in bytes.
func (c Config) MemBytes() int64 {
	return int64(c.UserMemPages) * int64(c.PageSize)
}

// PagesFor returns the number of pages covering n bytes.
func (c Config) PagesFor(bytes int64) int {
	ps := int64(c.PageSize)
	return int((bytes + ps - 1) / ps)
}
