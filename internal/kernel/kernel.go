package kernel

import (
	"fmt"

	"memhogs/internal/chaos"
	"memhogs/internal/disk"
	"memhogs/internal/events"
	"memhogs/internal/mem"
	"memhogs/internal/pageout"
	"memhogs/internal/pdpm"
	"memhogs/internal/sim"
	"memhogs/internal/vm"
)

// System is the assembled machine: simulator, physical memory, disks,
// daemons, and CPU scheduler.
type System struct {
	Cfg   Config
	Sim   *sim.Sim
	Phys  *mem.Phys
	Disks *disk.Array

	// Far is the optional far-memory tier; nil unless Config.Far.Pages
	// is set.
	Far *mem.FarTier

	// Daemons and Releasers hold one paging daemon and one releaser
	// per memory node; Daemon and Releaser alias node 0 (the only
	// entries on an unsharded machine).
	Daemons   []*pageout.Daemon
	Releasers []*pageout.Releaser
	Daemon    *pageout.Daemon
	Releaser  *pageout.Releaser

	// Balancer migrates free frames between nodes; nil on a
	// single-node machine.
	Balancer *pageout.Balancer

	// Events is the flight recorder, nil (recording off) unless
	// SetEvents installed one.
	Events *events.Recorder

	// Chaos is the fault injector, nil (no faults) unless SetChaos
	// installed one.
	Chaos *chaos.Injector

	cpus       *sim.Sem
	DaemonTime [vm.NumBuckets]sim.Time // CPU consumed by the two daemons

	procs      []*Process
	pms        []*pdpm.PM
	nextID     int
	swapCursor int64
}

// NewSystem builds and boots a system: daemons started, scheduler
// ready. It panics on an invalid configuration (construction is
// programmer-controlled).
func NewSystem(cfg Config) *System {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	// The far tier's costs live in vm.Params so the fault path reads
	// them without reaching back into the kernel config.
	cfg.VM.FarLatency = cfg.Far.Latency
	cfg.VM.FarCPU = cfg.Far.CPU
	s := sim.New()
	sys := &System{
		Cfg:  cfg,
		Sim:  s,
		cpus: sim.NewSem("cpus", cfg.NCPU),
	}
	nodes := cfg.Nodes
	if nodes < 1 {
		nodes = 1
	}
	sys.Phys = mem.NewSharded(s, cfg.UserMemPages, nodes)
	nodes = sys.Phys.Nodes() // NewSharded clamps to the frame count
	if cfg.Far.Pages > 0 {
		sys.Far = mem.NewFarTier(cfg.Far.Pages, nodes)
	}

	// Per-node daemons divide the global thresholds so the whole
	// machine keeps the same total reserve; with one node this leaves
	// the paper's tunables untouched.
	dkcfg := cfg.Daemon
	low := cfg.MinFreePages
	if nodes > 1 {
		dkcfg.MinFree = perNode(cfg.Daemon.MinFree, nodes)
		dkcfg.TargetFree = perNode(cfg.Daemon.TargetFree, nodes)
		if dkcfg.TargetFree < dkcfg.MinFree {
			dkcfg.TargetFree = dkcfg.MinFree
		}
		low = perNode(cfg.MinFreePages, nodes)
	}
	sys.Phys.LowWater = low
	sys.Phys.FreeChanged = func(free int) {
		for _, pm := range sys.pms {
			pm.FreeMemChanged(free)
		}
	}
	dcfg := cfg.Disk
	if dcfg.Seed == 0 {
		dcfg.Seed = cfg.Seed
	}
	sys.Disks = disk.New(s, dcfg)
	rcfg := cfg.Releaser
	rcfg.FarMinPrio = cfg.Far.MinPrio
	for k := 0; k < nodes; k++ {
		sys.Daemons = append(sys.Daemons, pageout.NewNodeDaemon(s, sys.Phys, sys.Disks, dkcfg, k))
		sys.Releasers = append(sys.Releasers, pageout.NewNodeReleaser(s, sys.Disks, rcfg, k))
	}
	sys.Daemon, sys.Releaser = sys.Daemons[0], sys.Releasers[0]
	if nodes > 1 {
		sys.Balancer = pageout.NewBalancer(s, sys.Phys, dkcfg.MinFree, dkcfg.TargetFree, dkcfg.PerPage)
	}
	sys.Phys.NeedMemory = func(node int) {
		sys.Daemons[node].Kick()
		if sys.Balancer != nil {
			sys.Balancer.Kick()
		}
	}

	mkExec := func(p *sim.Proc) vm.Exec {
		return &execCtx{sys: sys, proc: p, times: &sys.DaemonTime, flush: func() {}}
	}
	// Interleaved starts keep the historical single-node spawn order
	// ("pageoutd" then "releaserd") and give each node the same local
	// ordering.
	for k := 0; k < nodes; k++ {
		sys.Daemons[k].Start(mkExec)
		sys.Releasers[k].Start(mkExec)
	}
	if sys.Balancer != nil {
		sys.Balancer.Start(mkExec)
	}
	return sys
}

// perNode divides a global page threshold across nodes, never below
// one page.
func perNode(v, nodes int) int {
	v /= nodes
	if v < 1 {
		v = 1
	}
	return v
}

// KickDaemons wakes the paging daemon of one node, or every daemon
// (plus the balancer) when node is out of range — the "some node needs
// memory, not sure which" case chaos hot-unplug uses.
func (sys *System) KickDaemons(node int) {
	if node >= 0 && node < len(sys.Daemons) {
		sys.Daemons[node].Kick()
	} else {
		for _, d := range sys.Daemons {
			d.Kick()
		}
	}
	if sys.Balancer != nil {
		sys.Balancer.Kick()
	}
}

// DaemonStats sums the per-node paging-daemon counters.
func (sys *System) DaemonStats() pageout.DaemonStats {
	var t pageout.DaemonStats
	for _, d := range sys.Daemons {
		t.Activations += d.Stats.Activations
		t.Scanned += d.Stats.Scanned
		t.Invalidations += d.Stats.Invalidations
		t.Stolen += d.Stats.Stolen
		t.Writebacks += d.Stats.Writebacks
		t.Trims += d.Stats.Trims
		t.Donated += d.Stats.Donated
	}
	return t
}

// ReleaserStats sums the per-node releaser counters.
func (sys *System) ReleaserStats() pageout.ReleaserStats {
	var t pageout.ReleaserStats
	for _, r := range sys.Releasers {
		t.Requests += r.Stats.Requests
		t.PagesRequested += r.Stats.PagesRequested
		t.Freed += r.Stats.Freed
		t.SkippedRef += r.Stats.SkippedRef
		t.SkippedGone += r.Stats.SkippedGone
		t.Writebacks += r.Stats.Writebacks
		t.Demoted += r.Stats.Demoted
	}
	return t
}

// BalancerStats returns the inter-node balancer counters (zero on a
// single-node machine).
func (sys *System) BalancerStats() pageout.BalancerStats {
	if sys.Balancer == nil {
		return pageout.BalancerStats{}
	}
	return sys.Balancer.Stats
}

// SetEvents installs the flight recorder on every layer: the daemons,
// all existing address spaces, and (through System.Events) every
// process and run-time layer created afterwards. Call it before
// processes start — typically from driver.RunConfig.OnSystem — so the
// counter registry agrees with the run's statistics.
func (sys *System) SetEvents(r *events.Recorder) {
	sys.Events = r
	sys.Phys.Events = r
	for _, d := range sys.Daemons {
		d.Events = r
	}
	for _, rel := range sys.Releasers {
		rel.Events = r
	}
	if sys.Balancer != nil {
		sys.Balancer.Events = r
	}
	for _, p := range sys.procs {
		p.AS.Events = r
	}
}

// SetChaos installs the fault injector on every layer with injection
// points: the daemons, the disk array, all existing policy modules,
// and (through System.Chaos) every policy module and run-time layer
// created afterwards. Like SetEvents, call it before processes start
// so the whole run sees the same fault plan.
func (sys *System) SetChaos(in *chaos.Injector) {
	sys.Chaos = in
	for _, d := range sys.Daemons {
		d.Chaos = in
	}
	for _, rel := range sys.Releasers {
		rel.Chaos = in
	}
	sys.Disks.Chaos = in
	for _, pm := range sys.pms {
		pm.Chaos = in
	}
	for _, p := range sys.procs {
		p.AS.Chaos = in
	}
}

// Run executes the simulation until idle, the horizon, or a Stop. It
// returns the stop time.
func (sys *System) Run(horizon sim.Time) sim.Time {
	return sys.Sim.Run(horizon)
}

// Now returns the current virtual time.
func (sys *System) Now() sim.Time { return sys.Sim.Now() }

// Procs returns the processes created so far.
func (sys *System) Procs() []*Process { return sys.procs }

// execCtx implements vm.Exec for one simulated thread.
type execCtx struct {
	sys   *System
	proc  *sim.Proc
	times *[vm.NumBuckets]sim.Time
	flush func() // flush pending user compute before system work
}

// Proc implements vm.Exec.
func (e *execCtx) Proc() *sim.Proc { return e.proc }

// System implements vm.Exec: consume CPU in system mode. Pending user
// computation is flushed first so kernel work lands after the
// computation that preceded it.
func (e *execCtx) System(d sim.Time) {
	e.flush()
	e.consume(d, vm.BucketSystem)
}

// Account implements vm.Exec.
func (e *execCtx) Account(b vm.Bucket, d sim.Time) { e.times[b] += d }

// consume schedules d of CPU time in quantum-sized slices, contending
// with all other runnable threads for the machine's processors.
func (e *execCtx) consume(d sim.Time, b vm.Bucket) {
	for d > 0 {
		w := e.sys.cpus.Acquire(e.proc)
		if w > 0 {
			e.times[vm.BucketStallCPU] += w
		}
		q := d
		if q > e.sys.Cfg.CPUQuantum {
			q = e.sys.Cfg.CPUQuantum
		}
		e.proc.Sleep(q)
		e.sys.cpus.Release()
		e.times[b] += q
		d -= q
	}
}

// Process is a simulated user process: one address space, optionally a
// PagingDirected PM, and one or more threads.
type Process struct {
	Sys  *System
	Name string
	AS   *vm.AS
	PM   *pdpm.PM

	// Node is the process's home memory node: allocations prefer its
	// free list and its daemons service this address space. Processes
	// are placed round-robin; always 0 on a single-node machine.
	Node int

	// Times accumulates the main thread's time buckets; WorkerTimes
	// accumulates all helper threads' (the paper reports the
	// application's own execution time; prefetch service happens on
	// separate threads).
	Times       [vm.NumBuckets]sim.Time
	WorkerTimes [vm.NumBuckets]sim.Time

	StartedAt  sim.Time
	FinishedAt sim.Time
	Done       bool

	main *Thread
}

// NewProcess creates a process with an address space of npages virtual
// pages and registers it with the paging daemon.
func (sys *System) NewProcess(name string, npages int) *Process {
	if npages <= 0 {
		panic(fmt.Sprintf("kernel: process %q needs at least one page", name))
	}
	home := sys.nextID % len(sys.Daemons)
	sys.Phys.SetHome(sys.nextID, home)
	p := &Process{Sys: sys, Name: name, Node: home}
	p.AS = vm.NewAS(name, sys.nextID, npages, sys.swapCursor, sys.Phys, sys.Disks, sys.Cfg.VM)
	p.AS.Events = sys.Events
	p.AS.Far = sys.Far
	p.AS.Chaos = sys.Chaos
	sys.nextID++
	// Offset swap bases by a small prime so different processes do not
	// stripe-align with each other.
	sys.swapCursor += int64(npages) + 7
	p.AS.OverLimit = sys.Daemons[home].Kick
	sys.Daemons[home].Register(p.AS)
	sys.procs = append(sys.procs, p)
	return p
}

// HomeDaemon returns the paging daemon of the process's home node.
func (p *Process) HomeDaemon() *pageout.Daemon { return p.Sys.Daemons[p.Node] }

// HomeReleaser returns the releaser of the process's home node.
func (p *Process) HomeReleaser() *pageout.Releaser { return p.Sys.Releasers[p.Node] }

// AttachPM attaches a PagingDirected policy module to the process's
// whole address space. maxRSS <= 0 means unlimited.
func (p *Process) AttachPM(maxRSS int) *pdpm.PM {
	cfg := p.Sys.Cfg.PM
	cfg.MaxRSS = maxRSS
	p.PM = pdpm.Attach(p.AS, p.Sys.Phys, p.HomeReleaser(), cfg)
	p.PM.Chaos = p.Sys.Chaos
	p.Sys.pms = append(p.Sys.pms, p.PM)
	if maxRSS > 0 {
		p.AS.MaxRSS = maxRSS
	}
	return p.PM
}

// Thread is one simulated thread of a process.
type Thread struct {
	P    *Process
	exec *execCtx

	pendingUser sim.Time
	UserCalls   int64 // number of User() accumulations, for overhead stats
}

// Start launches the process's main thread running body. When body
// returns the process is marked done; if stopSim is true the whole
// simulation stops (used to end an experiment when the measured
// application finishes).
func (p *Process) Start(stopSim bool, body func(t *Thread)) *Thread {
	t := &Thread{P: p}
	p.main = t
	p.StartedAt = p.Sys.Now()
	p.Sys.Sim.Spawn(p.Name, func(proc *sim.Proc) {
		t.exec = &execCtx{sys: p.Sys, proc: proc, times: &p.Times, flush: t.FlushUser}
		body(t)
		t.FlushUser()
		p.FinishedAt = proc.Now()
		p.Done = true
		if stopSim {
			p.Sys.Sim.Stop()
		}
	})
	return t
}

// SpawnThread launches a helper thread (e.g. a prefetch worker) whose
// time is accounted to WorkerTimes.
func (p *Process) SpawnThread(name string, body func(t *Thread)) *Thread {
	t := &Thread{P: p}
	p.Sys.Sim.Spawn(p.Name+"."+name, func(proc *sim.Proc) {
		t.exec = &execCtx{sys: p.Sys, proc: proc, times: &p.WorkerTimes, flush: t.FlushUser}
		body(t)
		t.FlushUser()
	})
	return t
}

// Exec returns the thread's vm.Exec context.
func (t *Thread) Exec() vm.Exec { return t.exec }

// Proc returns the underlying simulated process.
func (t *Thread) Proc() *sim.Proc { return t.exec.proc }

// Now returns the current virtual time.
func (t *Thread) Now() sim.Time { return t.exec.proc.Now() }

// User accumulates d of user-mode computation. The time is scheduled
// lazily (see FlushUser) so that page-granular workloads do not
// generate one event per arithmetic strip.
func (t *Thread) User(d sim.Time) {
	t.pendingUser += d
	t.UserCalls++
	if t.pendingUser >= t.P.Sys.Cfg.UserFlush {
		t.FlushUser()
	}
}

// PendingUser returns user computation accumulated but not yet
// scheduled (bounded by Config.UserFlush).
func (t *Thread) PendingUser() sim.Time { return t.pendingUser }

// FlushUser schedules any accumulated user computation now.
func (t *Thread) FlushUser() {
	if t.pendingUser > 0 {
		d := t.pendingUser
		t.pendingUser = 0
		t.exec.consume(d, vm.BucketUser)
	}
}

// Touch references virtual page vpn, taking faults as needed.
func (t *Thread) Touch(vpn int, write bool) vm.Outcome {
	as := t.P.AS
	if as.ResidentValid(vpn) {
		return as.Touch(t.exec, vpn, write)
	}
	// Slow path: make sure accumulated computation happens first so
	// faults land at the right virtual time.
	t.FlushUser()
	return as.Touch(t.exec, vpn, write)
}

// SleepIdle blocks the thread without consuming CPU (the interactive
// task's think time).
func (t *Thread) SleepIdle(d sim.Time) {
	t.FlushUser()
	t.exec.proc.Sleep(d)
}

// Park blocks until another thread wakes the underlying proc.
func (t *Thread) Park() {
	t.FlushUser()
	t.exec.proc.Park()
}

// TotalTime returns the sum of all buckets for the main thread.
func (p *Process) TotalTime() sim.Time {
	var sum sim.Time
	for _, d := range p.Times {
		sum += d
	}
	return sum
}

// Elapsed returns wall-clock (virtual) run time of the main thread.
func (p *Process) Elapsed() sim.Time {
	if p.Done {
		return p.FinishedAt - p.StartedAt
	}
	return p.Sys.Now() - p.StartedAt
}
