package kernel

import (
	"testing"

	"memhogs/internal/sim"
	"memhogs/internal/vm"
)

func TestDefaultConfigMatchesTable1(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.NCPU != 4 {
		t.Errorf("NCPU = %d, want 4 (Origin 200)", cfg.NCPU)
	}
	if cfg.PageSize != 16<<10 {
		t.Errorf("PageSize = %d, want 16 KB", cfg.PageSize)
	}
	if got := cfg.MemBytes(); got != 75<<20 {
		t.Errorf("user memory = %d bytes, want 75 MB", got)
	}
	if cfg.Disk.NumDisks != 10 || cfg.Disk.NumAdapters != 5 {
		t.Errorf("disks = %d/%d adapters, want 10/5", cfg.Disk.NumDisks, cfg.Disk.NumAdapters)
	}
}

func TestConfigValidateRejectsBadValues(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.NCPU = 0 },
		func(c *Config) { c.PageSize = 1000 }, // not a power of two
		func(c *Config) { c.UserMemPages = 0 },
		func(c *Config) { c.MinFreePages = -1 },
		func(c *Config) { c.TargetFreePages = c.MinFreePages - 1 },
		func(c *Config) { c.Disk.NumDisks = 0 },
		func(c *Config) { c.CPUQuantum = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: bad config passed validation", i)
		}
	}
}

func TestPagesFor(t *testing.T) {
	cfg := DefaultConfig()
	if n := cfg.PagesFor(1); n != 1 {
		t.Errorf("PagesFor(1) = %d, want 1", n)
	}
	if n := cfg.PagesFor(16 << 10); n != 1 {
		t.Errorf("PagesFor(16K) = %d, want 1", n)
	}
	if n := cfg.PagesFor(16<<10 + 1); n != 2 {
		t.Errorf("PagesFor(16K+1) = %d, want 2", n)
	}
}

func TestProcessRunsAndAccountsUserTime(t *testing.T) {
	sys := NewSystem(TestConfig())
	p := sys.NewProcess("app", 16)
	p.Start(true, func(th *Thread) {
		th.User(5 * sim.Millisecond)
	})
	sys.Run(0)
	if !p.Done {
		t.Fatal("process did not finish")
	}
	if p.Times[vm.BucketUser] != 5*sim.Millisecond {
		t.Fatalf("user time = %v, want 5ms", p.Times[vm.BucketUser])
	}
}

func TestTouchFaultsAndAccounts(t *testing.T) {
	sys := NewSystem(TestConfig())
	p := sys.NewProcess("app", 16)
	var out vm.Outcome
	p.Start(true, func(th *Thread) {
		out = th.Touch(0, false)
	})
	sys.Run(0)
	if out != vm.HardFault {
		t.Fatalf("first touch = %v, want hard", out)
	}
	if p.Times[vm.BucketSystem] == 0 || p.Times[vm.BucketStallIO] == 0 {
		t.Fatalf("times = %v", p.Times)
	}
}

func TestCPUContentionAccounted(t *testing.T) {
	cfg := TestConfig()
	cfg.NCPU = 1
	sys := NewSystem(cfg)
	a := sys.NewProcess("a", 4)
	b := sys.NewProcess("b", 4)
	a.Start(false, func(th *Thread) {
		th.User(50 * sim.Millisecond)
		th.FlushUser()
	})
	b.Start(false, func(th *Thread) {
		th.User(50 * sim.Millisecond)
		th.FlushUser()
	})
	sys.Run(0)
	stall := a.Times[vm.BucketStallCPU] + b.Times[vm.BucketStallCPU]
	if stall == 0 {
		t.Fatal("two CPU-bound processes on one CPU recorded no CPU stall")
	}
	// Serialized on one CPU: 100ms of work ends at 100ms.
	if end := sys.Now(); end != 100*sim.Millisecond {
		t.Fatalf("finished at %v, want 100ms", end)
	}
}

func TestFourCPUsRunInParallel(t *testing.T) {
	cfg := TestConfig()
	sys := NewSystem(cfg) // 4 CPUs
	for i := 0; i < 4; i++ {
		p := sys.NewProcess("p", 4)
		p.Start(false, func(th *Thread) {
			th.User(50 * sim.Millisecond)
			th.FlushUser()
		})
	}
	sys.Run(0)
	if end := sys.Now(); end != 50*sim.Millisecond {
		t.Fatalf("4 procs on 4 CPUs finished at %v, want 50ms", end)
	}
}

func TestWorkerThreadTimesSeparate(t *testing.T) {
	sys := NewSystem(TestConfig())
	p := sys.NewProcess("app", 16)
	p.Start(false, func(th *Thread) {
		th.User(sim.Millisecond)
	})
	p.SpawnThread("worker", func(th *Thread) {
		th.User(7 * sim.Millisecond)
	})
	sys.Run(0)
	if p.WorkerTimes[vm.BucketUser] != 7*sim.Millisecond {
		t.Fatalf("worker user = %v, want 7ms", p.WorkerTimes[vm.BucketUser])
	}
	if p.Times[vm.BucketUser] != sim.Millisecond {
		t.Fatalf("main user = %v, want 1ms (worker time leaked in)", p.Times[vm.BucketUser])
	}
}

func TestStopSimOnProcessExit(t *testing.T) {
	sys := NewSystem(TestConfig())
	p := sys.NewProcess("app", 4)
	p.Start(true, func(th *Thread) { th.User(sim.Millisecond) })
	other := sys.NewProcess("bg", 4)
	other.Start(false, func(th *Thread) {
		for i := 0; i < 1000; i++ {
			th.SleepIdle(sim.Second)
		}
	})
	end := sys.Run(10 * sim.Second)
	if end >= 10*sim.Second {
		t.Fatalf("sim did not stop when the measured app finished (end=%v)", end)
	}
}

func TestQuantumInterleaving(t *testing.T) {
	// Two CPU-bound threads on one CPU must interleave at quantum
	// granularity, not run-to-completion: both finish near the end,
	// not one at 50ms and one at 100ms.
	cfg := TestConfig()
	cfg.NCPU = 1
	sys := NewSystem(cfg)
	var doneA, doneB sim.Time
	a := sys.NewProcess("a", 4)
	a.Start(false, func(th *Thread) {
		for i := 0; i < 5; i++ {
			th.User(10 * sim.Millisecond)
			th.FlushUser()
		}
		doneA = th.Now()
	})
	b := sys.NewProcess("b", 4)
	b.Start(false, func(th *Thread) {
		for i := 0; i < 5; i++ {
			th.User(10 * sim.Millisecond)
			th.FlushUser()
		}
		doneB = th.Now()
	})
	sys.Run(0)
	gap := doneA - doneB
	if gap < 0 {
		gap = -gap
	}
	if gap > 15*sim.Millisecond {
		t.Fatalf("no interleaving: finished %v apart (A=%v B=%v)", gap, doneA, doneB)
	}
}

func TestMemoryPressureEndToEnd(t *testing.T) {
	// A process sweeping more pages than physical memory must
	// complete, with the daemon recycling memory behind it.
	cfg := TestConfig() // 256 frames
	sys := NewSystem(cfg)
	p := sys.NewProcess("sweep", 1024)
	p.Start(true, func(th *Thread) {
		for vpn := 0; vpn < 1024; vpn++ {
			th.Touch(vpn, false)
			th.User(10 * sim.Microsecond)
		}
	})
	sys.Run(0)
	if !p.Done {
		t.Fatal("sweep did not complete")
	}
	// Swap clustering (readahead 8) turns the 1024 page-ins into ~128
	// demand faults; every page still arrives from disk exactly once.
	if p.AS.Stats.PageIns != 1024 {
		t.Fatalf("page-ins = %d, want 1024", p.AS.Stats.PageIns)
	}
	if p.AS.Stats.HardFaults > 256 || p.AS.Stats.HardFaults < int64(1024/cfg.VM.Readahead) {
		t.Fatalf("hard faults = %d, expected clustering to cut them to ~%d",
			p.AS.Stats.HardFaults, 1024/cfg.VM.Readahead)
	}
	if sys.Daemon.Stats.Stolen == 0 {
		t.Fatal("daemon never stole despite 4x oversubscription")
	}
	if p.AS.Resident > cfg.UserMemPages {
		t.Fatalf("resident %d exceeds physical memory %d", p.AS.Resident, cfg.UserMemPages)
	}
}

func TestElapsedAndTotalTime(t *testing.T) {
	sys := NewSystem(TestConfig())
	p := sys.NewProcess("app", 4)
	p.Start(true, func(th *Thread) {
		th.User(2 * sim.Millisecond)
		th.SleepIdle(3 * sim.Millisecond)
	})
	sys.Run(0)
	if p.Elapsed() != 5*sim.Millisecond {
		t.Fatalf("elapsed = %v, want 5ms", p.Elapsed())
	}
	if p.TotalTime() != 2*sim.Millisecond {
		t.Fatalf("total accounted = %v, want 2ms", p.TotalTime())
	}
}

func TestAttachPM(t *testing.T) {
	sys := NewSystem(TestConfig())
	p := sys.NewProcess("app", 32)
	pm := p.AttachPM(0)
	p.Start(true, func(th *Thread) {
		th.Touch(0, false)
		if !pm.Shared().Test(0) {
			t.Error("PM bitmap not updated through kernel touch")
		}
	})
	sys.Run(0)
}
