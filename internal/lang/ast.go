// Package lang defines a small loop-nest language for array-based
// scientific programs — the input the paper's SUIF pass consumes. It
// provides the AST, a parser for a C-like surface syntax, scalar and
// affine expression evaluation, and a printer.
//
// The language is deliberately restricted to what the compiler
// analysis (package compiler) can reason about, mirroring the paper:
// perfectly or imperfectly nested counted loops, affine array
// subscripts over loop variables and symbolic parameters, one level of
// indirection (a[b[i]]), and procedures whose formal parameters may
// appear in loop bounds (the MGRID "single version of code" case).
package lang

import (
	"fmt"
	"strings"
)

// Program is a compilation unit.
type Program struct {
	Name   string
	Params []string // runtime symbols (problem sizes, strides)
	Arrays []*Array
	Procs  []*Proc
	Body   []Stmt

	// Known maps the params whose values the compiler may assume at
	// compile time (the paper's compiler is "given the dimensions of
	// the matrix"); unknown params force conservative analysis.
	Known map[string]int64
}

// Array declares an array. Dims are outermost-first extents; layout is
// row-major. ElemSize is in bytes.
type Array struct {
	Name     string
	ElemSize int
	Dims     []Scalar

	// Data, if non-nil, supplies the value of element i for arrays
	// used as indirection indices (e.g. BUK's key array). It is
	// attached by the workload after parsing; the surface syntax does
	// not define data.
	Data func(i int64) int64
}

// NumElems evaluates the total element count under env (nil Known
// entries must be bound). It returns an error if a dimension is
// unresolvable.
func (a *Array) NumElems(env Env) (int64, error) {
	n := int64(1)
	for _, d := range a.Dims {
		v, err := d.Eval(env)
		if err != nil {
			return 0, fmt.Errorf("array %s: %w", a.Name, err)
		}
		if v <= 0 {
			return 0, fmt.Errorf("array %s: non-positive dimension %d", a.Name, v)
		}
		n *= v
	}
	return n, nil
}

// Bytes evaluates the array's total size in bytes.
func (a *Array) Bytes(env Env) (int64, error) {
	n, err := a.NumElems(env)
	if err != nil {
		return 0, err
	}
	return n * int64(a.ElemSize), nil
}

// Proc is a procedure; formals may appear in bounds and subscripts of
// its body. Procedures enable the paper's MGRID pathology: one
// compiled body runs under many different bound bindings.
type Proc struct {
	Name    string
	Formals []string
	Body    []Stmt
	Line    int // source line of the "proc" keyword; 0 if synthesized
}

// Stmt is a statement: Loop, Assign, or Call.
type Stmt interface {
	isStmt()
	print(b *strings.Builder, indent int)
}

// Loop is a counted loop: for Var = Lo .. Hi step Step { Body }, with
// Hi inclusive and Step > 0 (the analyses assume ascending loops, as
// do all the paper's benchmarks after normalization).
type Loop struct {
	Var  string
	Lo   Scalar
	Hi   Scalar
	Step int64
	Body []Stmt
	Line int // source line of the "for" keyword; 0 if synthesized
}

func (*Loop) isStmt() {}

// Assign is an assignment statement whose left side is an array
// reference and whose right side is an arithmetic expression over
// array references, scalars, and numbers. CostNS is the modelled
// user-CPU time of one execution in nanoseconds; when zero the
// compiler derives it from the operation count.
type Assign struct {
	LHS    *Ref
	RHS    ExprNode
	CostNS float64
	Line   int // source line of the statement; 0 if synthesized
}

func (*Assign) isStmt() {}

// Call invokes a procedure with actual scalar arguments.
type Call struct {
	Proc *Proc
	Args []Scalar
}

func (*Call) isStmt() {}

// Ref is an array reference with one subscript per dimension.
type Ref struct {
	Array *Array
	Index []Index
	Write bool
}

// Index is a subscript: either an affine expression or an indirect
// reference through another array.
type Index interface{ isIndex() }

// Affine is c0 + Σ coef·var, where a coefficient may itself be a
// runtime parameter (CoefParam). Symbolic coefficients model the
// FFTPDE stride-change pathology: the compiler cannot see that the
// subscript varies with the loop variable.
type Affine struct {
	Const int64
	Terms []Term
}

func (*Affine) isIndex() {}

// Term is one linear term of an Affine.
type Term struct {
	Var       string
	Coef      int64
	CoefParam string // non-empty: coefficient is param·Coef
}

// Indirect is a subscript read through an index array: Array[Idx].
type Indirect struct {
	Array *Array
	Idx   *Affine
}

func (*Indirect) isIndex() {}

// ExprNode is a right-hand-side arithmetic expression.
type ExprNode interface{ isExpr() }

// BinOp is a binary arithmetic operation.
type BinOp struct {
	Op   byte // '+', '-', '*', '/'
	L, R ExprNode
}

func (*BinOp) isExpr() {}

// RefExpr wraps an array reference used as an operand.
type RefExpr struct{ Ref *Ref }

func (*RefExpr) isExpr() {}

// NumExpr is a numeric literal operand.
type NumExpr struct{ Val float64 }

func (*NumExpr) isExpr() {}

// VarExpr is a scalar variable (loop var or param) operand.
type VarExpr struct{ Name string }

func (*VarExpr) isExpr() {}

// Refs appends every array reference in the expression tree to dst,
// left to right, and returns it.
func Refs(e ExprNode, dst []*Ref) []*Ref {
	switch n := e.(type) {
	case *BinOp:
		dst = Refs(n.L, dst)
		dst = Refs(n.R, dst)
	case *RefExpr:
		dst = append(dst, n.Ref)
	}
	return dst
}

// Ops counts arithmetic operations in the expression tree, the default
// cost model input.
func Ops(e ExprNode) int {
	if b, ok := e.(*BinOp); ok {
		return 1 + Ops(b.L) + Ops(b.R)
	}
	return 0
}

// StmtRefs returns all array references of a statement (LHS first for
// Assign), or nil for non-reference statements.
func StmtRefs(s Stmt) []*Ref {
	a, ok := s.(*Assign)
	if !ok {
		return nil
	}
	refs := []*Ref{a.LHS}
	return Refs(a.RHS, refs)
}

// FindArray returns the declared array with the given name, or nil.
func (p *Program) FindArray(name string) *Array {
	for _, a := range p.Arrays {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// FindProc returns the declared procedure with the given name, or nil.
func (p *Program) FindProc(name string) *Proc {
	for _, pr := range p.Procs {
		if pr.Name == name {
			return pr
		}
	}
	return nil
}

// HasParam reports whether name is a declared runtime parameter.
func (p *Program) HasParam(name string) bool {
	for _, q := range p.Params {
		if q == name {
			return true
		}
	}
	return false
}

// SetData attaches a data generator to the named array (used for
// indirection indices). It panics if the array does not exist, since
// workloads control both sides.
func (p *Program) SetData(array string, fn func(int64) int64) {
	a := p.FindArray(array)
	if a == nil {
		panic("lang: SetData on unknown array " + array)
	}
	a.Data = fn
}
