package lang

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// exampleSeeds returns the checked-in example programs (examples/*.hog)
// so the fuzz corpus starts from complete real sources, not just
// single-feature snippets.
func exampleSeeds(f *testing.F) []string {
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "*.hog"))
	if err != nil {
		f.Fatal(err)
	}
	if len(paths) == 0 {
		f.Fatal("no example .hog sources found under examples/")
	}
	var out []string
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		out = append(out, string(src))
	}
	return out
}

// FuzzParse checks that the parser never panics and that everything it
// accepts round-trips through Format. The seed corpus covers every
// syntactic feature; `go test -fuzz=FuzzParse ./internal/lang` explores
// further.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"program p\narray a[4] of float64\na[0] = 1",
		"program p\nparam N\nknown N = 8\narray a[N] of float64\nfor i = 0 to N-1 { a[i] = a[i] + 1 @ 5 }",
		"program p\nparam N, S\narray a[64] of int32\nfor i = 0 to N-1 { a[S*i] = 2 * a[S*i] }",
		"program p\narray b[8] of int64\narray a[8] of float64\nfor i = 0 to 7 { a[b[i]] = a[b[i]] / 2 }",
		"program p\nparam N\narray u[16] of float64\nproc f(n) { for i = 0 to n-1 { u[i] = 0 } }\ncall f(N/2)",
		"program p\narray a[4][4] of complex128\nfor i = 1 to 2 { for j = 1 to 2 step 2 { a[i+1][j-1] = a[i][j] - 3 } }",
		"program p # comment\n// another\narray a[2] of 8\na[1] = (a[0] + 1) * 2 @ 1.5",
		"program p\n???",
		"program",
		"",
		"program p\narray a[0] of float64",
		"program p\narray a[4] of float64\nfor i = 0 to 3 { }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	for _, s := range exampleSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		text := Format(prog)
		prog2, err := Parse(text)
		if err != nil {
			t.Fatalf("formatted output does not re-parse: %v\n%s", err, text)
		}
		if Format(prog2) != text {
			t.Fatalf("format not a fixed point:\n%q\nvs\n%q", text, Format(prog2))
		}
	})
}

// FuzzAffineEval checks the evaluator against hand-rolled evaluation
// for generated affine expressions.
func FuzzAffineEval(f *testing.F) {
	f.Add(int64(3), int64(-2), int64(7), int64(10), int64(20))
	f.Fuzz(func(t *testing.T, c, ci, cj, vi, vj int64) {
		// Keep numbers small enough to avoid overflow noise.
		c, ci, cj = c%1000, ci%1000, cj%1000
		vi, vj = vi%10000, vj%10000
		a := &Affine{Const: c, Terms: []Term{{Var: "i", Coef: ci}, {Var: "j", Coef: cj}}}
		got, err := a.Eval(Env{"i": vi, "j": vj})
		if err != nil {
			t.Fatal(err)
		}
		want := c + ci*vi + cj*vj
		if got != want {
			t.Fatalf("eval = %d, want %d", got, want)
		}
	})
}

func TestFormatIdempotentOnBenchSources(t *testing.T) {
	// Formatting stability on larger programs.
	src := `
program big
param N, M, S
known N = 64
array A[N][N] of float64
array b[N] of int64
array x[64] of float64
proc f(n, s) {
    for i = 0 to n-1 {
        A[i][0] = A[s*i][0] + x[b[i]] @ 9
    }
}
for t = 0 to M-1 {
    call f(N, S)
}
`
	p1 := MustParse(src)
	f1 := Format(p1)
	f2 := Format(MustParse(f1))
	if f1 != f2 {
		t.Fatalf("not idempotent:\n%s\nvs\n%s", f1, f2)
	}
	if !strings.Contains(f1, "call f(N, S)") {
		t.Fatalf("format lost the call: %s", f1)
	}
}
