// FuzzVet lives in an external test package: it drives the whole
// parse -> compile -> verify pipeline, and internal/hogvet imports
// internal/lang, so an in-package test would be an import cycle.
package lang_test

import (
	"os"
	"path/filepath"
	"testing"

	"memhogs/internal/compiler"
	"memhogs/internal/hogvet"
	"memhogs/internal/lang"
	"memhogs/internal/workload"
)

// FuzzVet extends the parser fuzz harness through the compiler and the
// static verifier: for any accepted source, hogvet.Vet must never
// panic, and its output must be deterministic — byte-identical across
// repeated runs and across a reparse of the same source.
func FuzzVet(f *testing.F) {
	seeds := []string{
		"program p\narray a[4] of float64\na[0] = 1",
		"program p\nparam N\nknown N = 8\narray a[N] of float64\nfor i = 0 to N-1 { a[i] = a[i] + 1 @ 5 }",
		"program p\nparam N, S\narray a[64] of int32\nfor i = 0 to N-1 { a[S*i] = 2 * a[S*i] }",
		"program p\narray b[8] of int64\narray a[8] of float64\nfor i = 0 to 7 { a[b[i]] = a[b[i]] / 2 }",
		"program p\nparam N\narray u[16] of float64\nproc f(n) { for i = 0 to n-1 { u[i] = 0 } }\ncall f(N/2)",
		"program p\narray a[4][4] of complex128\nfor i = 1 to 2 { for j = 1 to 2 step 2 { a[i+1][j-1] = a[i][j] - 3 } }",
		// Pathology shapes: symbolic stride (HV006), unknown bounds
		// with a deep nest (HV007/HV008), overlapping patterns (HV009).
		"program p\nparam nb, m, s\narray x[4096] of float64\nproc f(nb, m, s) { for b = 0 to nb-1 { for k = 0 to m-1 { x[s*b+k] = x[s*b+k] * 2 @ 7 } } }\ncall f(nb, m, s)",
		"program p\nparam N\narray a[4096] of float64\nfor i = 0 to N-1 { for j = 0 to N-1 { for k = 0 to N-1 { a[k] = a[k] + 1 @ 3 } } }",
		"program p\narray a[4096] of float64\narray b[4096] of float64\nfor i = 0 to 999 { b[i] = a[i] + a[2*i] @ 4 }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	// Real programs: the checked-in examples and every built-in
	// benchmark source (full-size and scaled), so the corpus exercises
	// the shapes the compiler actually sees.
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "*.hog"))
	if err != nil || len(paths) == 0 {
		f.Fatalf("no example .hog sources: %v", err)
	}
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	for _, spec := range append(workload.All(), workload.AllScaled()...) {
		f.Add(spec.Source)
	}
	tgt := compiler.DefaultTarget(16<<10, 4800)
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := lang.Parse(src)
		if err != nil {
			return
		}
		c, err := compiler.Compile(prog, tgt)
		if err != nil {
			return // the compiler may reject what the parser accepts
		}
		out := hogvet.Vet(c).String()
		if again := hogvet.Vet(c).String(); again != out {
			t.Fatalf("vet not deterministic on same compilation:\n%q\nvs\n%q", out, again)
		}
		prog2, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
		c2, err := compiler.Compile(prog2, tgt)
		if err != nil {
			t.Fatalf("recompile failed: %v", err)
		}
		if out2 := hogvet.Vet(c2).String(); out2 != out {
			t.Fatalf("vet not deterministic across reparse:\n%q\nvs\n%q", out, out2)
		}
	})
}
