package lang

import (
	"strings"
	"testing"
)

const matvecSrc = `
program matvec
param N, M
known N = 3200
known M = 16384
array A[N][M] of float64
array x[M] of float64
array y[N] of float64

for i = 0 to N-1 {
    for j = 0 to M-1 {
        y[i] = y[i] + A[i][j] * x[j] @ 20
    }
}
`

func TestParseMatvec(t *testing.T) {
	p, err := Parse(matvecSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "matvec" {
		t.Errorf("name = %q", p.Name)
	}
	if len(p.Params) != 2 || len(p.Arrays) != 3 {
		t.Fatalf("params=%v arrays=%d", p.Params, len(p.Arrays))
	}
	if p.Known["N"] != 3200 || p.Known["M"] != 16384 {
		t.Fatalf("known = %v", p.Known)
	}
	a := p.FindArray("A")
	if a == nil || a.ElemSize != 8 || len(a.Dims) != 2 {
		t.Fatalf("array A wrong: %+v", a)
	}
	outer, ok := p.Body[0].(*Loop)
	if !ok {
		t.Fatal("body[0] not a loop")
	}
	inner, ok := outer.Body[0].(*Loop)
	if !ok {
		t.Fatal("inner not a loop")
	}
	asg, ok := inner.Body[0].(*Assign)
	if !ok {
		t.Fatal("innermost not an assignment")
	}
	if asg.CostNS != 20 {
		t.Errorf("cost = %v, want 20", asg.CostNS)
	}
	refs := StmtRefs(asg)
	if len(refs) != 4 { // y (write), y, A, x
		t.Fatalf("refs = %d, want 4", len(refs))
	}
	if !refs[0].Write || refs[1].Write {
		t.Error("write flags wrong")
	}
}

func TestAffineSubscripts(t *testing.T) {
	p := MustParse(`
program stencil
param N
array a[N][N] of float64
for i = 1 to N-2 {
    for j = 1 to N-2 {
        a[i][j] = a[i+1][j-1] + a[i-1][j+1] + 2*i + 1
    }
}
`)
	loop := p.Body[0].(*Loop).Body[0].(*Loop)
	asg := loop.Body[0].(*Assign)
	refs := StmtRefs(asg)
	r1 := refs[1] // a[i+1][j-1]
	i0 := r1.Index[0].(*Affine)
	if c, _ := i0.CoefOf("i"); c != 1 || i0.Const != 1 {
		t.Fatalf("a[i+1] parsed wrong: %+v", i0)
	}
	i1 := r1.Index[1].(*Affine)
	if c, _ := i1.CoefOf("j"); c != 1 || i1.Const != -1 {
		t.Fatalf("a[j-1] parsed wrong: %+v", i1)
	}
}

func TestIndirectSubscript(t *testing.T) {
	p := MustParse(`
program buk
param N
array key[N] of int64
array rank[N] of int64
for i = 0 to N-1 {
    rank[key[i]] = rank[key[i]] + 1
}
`)
	asg := p.Body[0].(*Loop).Body[0].(*Assign)
	ind, ok := asg.LHS.Index[0].(*Indirect)
	if !ok {
		t.Fatal("subscript not indirect")
	}
	if ind.Array.Name != "key" {
		t.Errorf("indirection through %s", ind.Array.Name)
	}
	if c, _ := ind.Idx.CoefOf("i"); c != 1 {
		t.Error("inner affine wrong")
	}
}

func TestSymbolicStrideCoefficient(t *testing.T) {
	p := MustParse(`
program fft
param N, S
array a[N] of float64
for i = 0 to N/2-1 {
    a[S*i] = a[S*i] + 1
}
`)
	asg := p.Body[0].(*Loop).Body[0].(*Assign)
	aff := asg.LHS.Index[0].(*Affine)
	coef, symbolic := aff.CoefOf("i")
	if !symbolic || coef != 1 {
		t.Fatalf("S*i not parsed as symbolic coefficient: %+v", aff)
	}
}

func TestProcAndCall(t *testing.T) {
	p := MustParse(`
program mgrid
param N
array u[N] of float64
proc smooth(n) {
    for i = 0 to n-1 {
        u[i] = u[i] + 1
    }
}
call smooth(N)
call smooth(N/2)
`)
	if len(p.Procs) != 1 {
		t.Fatal("proc not declared")
	}
	c1 := p.Body[0].(*Call)
	c2 := p.Body[1].(*Call)
	if c1.Proc != p.Procs[0] || c2.Proc != p.Procs[0] {
		t.Fatal("calls not bound to proc")
	}
	if c2.Args[0].Div != 2 {
		t.Fatalf("N/2 arg parsed wrong: %+v", c2.Args[0])
	}
}

func TestScalarEval(t *testing.T) {
	env := Env{"N": 100}
	cases := []struct {
		s    Scalar
		want int64
	}{
		{Const(5), 5},
		{Sym("N"), 100},
		{SymOff("N", -1), 99},
		{Scalar{Name: "N", Scale: 2, Offset: 1}, 201},
		{Scalar{Name: "N", Scale: 1, Div: 4, Offset: -1}, 24},
	}
	for _, c := range cases {
		got, err := c.s.Eval(env)
		if err != nil || got != c.want {
			t.Errorf("%v.Eval = %d,%v want %d", c.s, got, err, c.want)
		}
	}
	if _, err := Sym("Q").Eval(env); err == nil {
		t.Error("unbound symbol evaluated")
	}
}

func TestAffineEval(t *testing.T) {
	env := Env{"i": 10, "j": 3, "S": 7}
	a := &Affine{Const: 5, Terms: []Term{{Var: "i", Coef: 2}, {Var: "j", Coef: -1}}}
	v, err := a.Eval(env)
	if err != nil || v != 22 {
		t.Fatalf("eval = %d,%v want 22", v, err)
	}
	sym := &Affine{Terms: []Term{{Var: "i", Coef: 1, CoefParam: "S"}}}
	v, err = sym.Eval(env)
	if err != nil || v != 70 {
		t.Fatalf("symbolic eval = %d,%v want 70", v, err)
	}
}

func TestAffineAlgebra(t *testing.T) {
	a := &Affine{Const: 1, Terms: []Term{{Var: "i", Coef: 2}}}
	b := &Affine{Const: 3, Terms: []Term{{Var: "i", Coef: -2}, {Var: "j", Coef: 5}}}
	sum := AddAffine(a, b)
	if sum.Const != 4 {
		t.Errorf("const = %d", sum.Const)
	}
	if c, _ := sum.CoefOf("i"); c != 0 {
		t.Errorf("i coef = %d, want 0 (cancelled)", c)
	}
	if c, _ := sum.CoefOf("j"); c != 5 {
		t.Errorf("j coef = %d", c)
	}
	sc := ScaleAffine(b, 2)
	if c, _ := sc.CoefOf("j"); c != 10 || sc.Const != 6 {
		t.Errorf("scale wrong: %+v", sc)
	}
}

func TestArraySizes(t *testing.T) {
	p := MustParse(matvecSrc)
	env := Env{"N": 3200, "M": 16384}
	a := p.FindArray("A")
	bytes, err := a.Bytes(env)
	if err != nil {
		t.Fatal(err)
	}
	if bytes != 3200*16384*8 {
		t.Fatalf("A bytes = %d", bytes)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	srcs := []string{matvecSrc, `
program buk
param N
array key[N] of int64
array rank[N] of int64
for i = 0 to N-1 {
    rank[key[i]] = rank[key[i]] + 1
}
`}
	for _, src := range srcs {
		p1 := MustParse(src)
		text := Format(p1)
		p2, err := Parse(text)
		if err != nil {
			t.Fatalf("round-trip parse failed: %v\n%s", err, text)
		}
		if Format(p2) != text {
			t.Fatalf("format not stable:\n--- first\n%s\n--- second\n%s", text, Format(p2))
		}
	}
}

func TestParseErrorsAreDiagnosed(t *testing.T) {
	bad := []string{
		"",                                // no program
		"program p",                       // no statements
		"program p\nfor i = 0 to N-1 { }", // unbound is fine at parse; empty block body runs; but N array missing... empty loop ok
		"program p\narray a of float64\na[0] = 1",                               // array without dims
		"program p\narray a[10] of float64\na[0][1] = 2",                        // too many subscripts
		"program p\narray a[10] of float64\nb[0] = 1",                           // undeclared array
		"program p\nknown N = 3",                                                // known of undeclared param
		"program p\narray a[10] of float64\nfor i = 0 to 9 step 0 { a[i] = 1 }", // zero step
	}
	for i, src := range bad {
		if i == 2 {
			continue // empty loop body is legal
		}
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d: bad source parsed without error:\n%s", i, src)
		}
	}
}

func TestMoreParseErrors(t *testing.T) {
	bad := []string{
		"program p\narray a[10] of nosuchtype\na[0] = 1",
		"program p\narray a[10] of 0\na[0] = 1",                        // zero elem size
		"program p\narray a[10] of float64\narray a[4] of float64",     // redeclared
		"program p\narray a[10] of float64\na[i*j] = 1",                // two non-params multiplied
		"program p\nparam N\narray a[10] of float64\ncall f(N)",        // undeclared proc
		"program p\nproc f(x) { }\ncall f(1, 2)",                       // arity
		"program p\narray a[10] of float64\nfor i = 0 to 9 { a[i] = 1", // unclosed block
		"program p\narray b[4][4] of int64\narray a[10] of float64\nfor i = 0 to 3 { a[b[i][i]] = 1 }", // 2-D indirection array
		"program p\narray a[10] of float64\na[0] = 1 @ x",              // non-numeric cost
		"program p\nknown = 4",                                          // malformed known
		"program p\narray a[10] of float64\nfor i = 0 to {\n}",          // missing bound
	}
	for i, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d parsed without error:\n%s", i, src)
		}
	}
}

func TestTryEvalAndClone(t *testing.T) {
	env := Env{"N": 7}
	if v, ok := Sym("N").TryEval(env); !ok || v != 7 {
		t.Fatalf("TryEval = %d,%v", v, ok)
	}
	if _, ok := Sym("Q").TryEval(env); ok {
		t.Fatal("unbound TryEval succeeded")
	}
	c := env.Clone()
	c["N"] = 9
	if env["N"] != 7 {
		t.Fatal("Clone aliases the original")
	}
}

func TestScalarStringForms(t *testing.T) {
	cases := map[string]Scalar{
		"5":       Const(5),
		"N":       Sym("N"),
		"N-1":     SymOff("N", -1),
		"2*N":     {Name: "N", Scale: 2},
		"N/4":     {Name: "N", Scale: 1, Div: 4},
		"2*N/4+1": {Name: "N", Scale: 2, Div: 4, Offset: 1},
	}
	for want, s := range cases {
		if got := s.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestAffineEvalErrors(t *testing.T) {
	a := &Affine{Terms: []Term{{Var: "i", Coef: 1}}}
	if _, err := a.Eval(Env{}); err == nil {
		t.Fatal("unbound var evaluated")
	}
	sym := &Affine{Terms: []Term{{Var: "i", Coef: 1, CoefParam: "S"}}}
	if _, err := sym.Eval(Env{"i": 1}); err == nil {
		t.Fatal("unbound stride param evaluated")
	}
}

func TestArrayErrors(t *testing.T) {
	a := &Array{Name: "a", ElemSize: 8, Dims: []Scalar{Sym("N")}}
	if _, err := a.NumElems(Env{}); err == nil {
		t.Fatal("unbound dim evaluated")
	}
	if _, err := a.NumElems(Env{"N": -1}); err == nil {
		t.Fatal("negative dim accepted")
	}
	if _, err := a.Bytes(Env{"N": 4}); err != nil {
		t.Fatal(err)
	}
}

func TestCommentsIgnored(t *testing.T) {
	p := MustParse(`
program c
# hash comment
// slash comment
array a[10] of float64
a[0] = 1 // trailing
`)
	if len(p.Body) != 1 {
		t.Fatal("comment handling broke the body")
	}
}

func TestOpsCount(t *testing.T) {
	p := MustParse(`
program ops
array a[10] of float64
a[0] = a[1] + a[2] * a[3] - 1
`)
	asg := p.Body[0].(*Assign)
	if n := Ops(asg.RHS); n != 3 {
		t.Fatalf("Ops = %d, want 3", n)
	}
}

func TestFormatAffineForms(t *testing.T) {
	cases := []struct {
		a    *Affine
		want string
	}{
		{&Affine{Const: 0}, "0"},
		{&Affine{Const: 3, Terms: []Term{{Var: "i", Coef: 1}}}, "i+3"},
		{&Affine{Const: -1, Terms: []Term{{Var: "i", Coef: 1}}}, "i-1"},
		{&Affine{Terms: []Term{{Var: "i", Coef: 1, CoefParam: "S"}}}, "S*i"},
		{&Affine{Terms: []Term{{Var: "i", Coef: -1}}}, "-i"},
	}
	for _, c := range cases {
		if got := FormatAffine(c.a); got != c.want {
			t.Errorf("FormatAffine = %q, want %q", got, c.want)
		}
	}
}

func TestSetDataPanicsOnUnknownArray(t *testing.T) {
	p := MustParse("program q\narray a[4] of float64\na[0] = 1")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	p.SetData("nosuch", func(int64) int64 { return 0 })
}

func TestSetData(t *testing.T) {
	p := MustParse("program q\narray a[4] of float64\na[0] = 1")
	p.SetData("a", func(i int64) int64 { return i * 2 })
	if p.FindArray("a").Data(21) != 42 {
		t.Fatal("data fn not attached")
	}
}

func TestFormatContainsProcAndCall(t *testing.T) {
	p := MustParse(`
program m
param N
array u[N] of float64
proc f(n) {
    for i = 0 to n-1 { u[i] = 0 }
}
call f(N/2)
`)
	out := Format(p)
	if !strings.Contains(out, "proc f(n)") || !strings.Contains(out, "call f(N/2)") {
		t.Fatalf("format missing proc/call:\n%s", out)
	}
}
