package lang

import (
	"fmt"
	"strconv"
	"unicode"
)

// tokKind enumerates token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokPunct // single-character punctuation/operator
)

type token struct {
	kind tokKind
	text string
	num  float64
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokNumber:
		return fmt.Sprintf("number %s", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lexer tokenizes the surface syntax. Comments run from "//" or "#" to
// end of line.
type lexer struct {
	src  []rune
	pos  int
	line int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: []rune(src), line: 1}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, line: l.line})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case unicode.IsLetter(c) || c == '_':
			start := l.pos
			for l.pos < len(l.src) && (unicode.IsLetter(l.src[l.pos]) || unicode.IsDigit(l.src[l.pos]) || l.src[l.pos] == '_') {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokIdent, text: string(l.src[start:l.pos]), line: l.line})
		case unicode.IsDigit(c):
			start := l.pos
			for l.pos < len(l.src) && (unicode.IsDigit(l.src[l.pos]) || l.src[l.pos] == '.' || l.src[l.pos] == 'e' ||
				(l.pos > start && (l.src[l.pos] == '+' || l.src[l.pos] == '-') && l.src[l.pos-1] == 'e')) {
				l.pos++
			}
			text := string(l.src[start:l.pos])
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad number %q", l.line, text)
			}
			l.toks = append(l.toks, token{kind: tokNumber, text: text, num: f, line: l.line})
		default:
			switch c {
			case '(', ')', '[', ']', '{', '}', ',', '=', '+', '-', '*', '/', '@':
				l.toks = append(l.toks, token{kind: tokPunct, text: string(c), line: l.line})
				l.pos++
			default:
				return nil, fmt.Errorf("line %d: unexpected character %q", l.line, string(c))
			}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case unicode.IsSpace(c):
			l.pos++
		case c == '#':
			l.skipLine()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			l.skipLine()
		default:
			return
		}
	}
}

func (l *lexer) skipLine() {
	for l.pos < len(l.src) && l.src[l.pos] != '\n' {
		l.pos++
	}
}
