package lang

import (
	"fmt"
	"strings"
)

// Parse builds a Program from surface syntax:
//
//	program matvec
//	param N, M
//	known N = 3200
//	known M = 16384
//	array A[N][M] of float64
//	array x[M] of float64
//	array y[N] of float64
//
//	proc update(n) {
//	    for i = 0 to n-1 {
//	        y[i] = y[i] + 1 @ 10
//	    }
//	}
//
//	for i = 0 to N-1 {
//	    for j = 0 to M-1 {
//	        y[i] = y[i] + A[i][j] * x[j] @ 20
//	    }
//	}
//	call update(N)
//
// "@ n" attaches an explicit per-execution cost in nanoseconds. Element
// types float64/int64 are 8 bytes; float32/int32 are 4; or a byte
// count can be given directly.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, prog: &Program{Known: map[string]int64{}}}
	if err := p.parseProgram(); err != nil {
		return nil, err
	}
	return p.prog, nil
}

// MustParse is Parse that panics on error; for compiled-in workloads
// and tests.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	toks []token
	pos  int
	prog *Program
	// scope tracks lexically enclosing loop variables; formals tracks
	// the current procedure's formal parameters. Both are in scope for
	// subscripts, but only formals and params may act as symbolic
	// coefficients.
	scope   []string
	formals []string
}

// peek and next clamp at the trailing EOF sentinel: error paths may
// call them after next() has already consumed it (e.g. a source
// truncated mid-declaration).
func (p *parser) peek() token {
	if p.pos >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos]
}

func (p *parser) next() token {
	t := p.peek()
	if p.pos < len(p.toks) {
		p.pos++
	}
	return t
}
func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("line %d: %s", p.peek().line, fmt.Sprintf(format, args...))
}

func (p *parser) accept(text string) bool {
	if p.peek().kind != tokEOF && p.peek().text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return p.errf("expected %q, got %s", text, p.peek())
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier, got %s", t)
	}
	p.pos++
	return t.text, nil
}

func (p *parser) intLit() (int64, error) {
	t := p.peek()
	if t.kind != tokNumber || t.num != float64(int64(t.num)) {
		return 0, p.errf("expected integer, got %s", t)
	}
	p.pos++
	return int64(t.num), nil
}

func (p *parser) parseProgram() error {
	if err := p.expect("program"); err != nil {
		return err
	}
	name, err := p.ident()
	if err != nil {
		return err
	}
	p.prog.Name = name
	for {
		t := p.peek()
		if t.kind == tokEOF {
			break
		}
		switch t.text {
		case "param":
			p.pos++
			for {
				n, err := p.ident()
				if err != nil {
					return err
				}
				p.prog.Params = append(p.prog.Params, n)
				if !p.accept(",") {
					break
				}
			}
		case "known":
			p.pos++
			n, err := p.ident()
			if err != nil {
				return err
			}
			if err := p.expect("="); err != nil {
				return err
			}
			v, err := p.intLit()
			if err != nil {
				return err
			}
			if !p.prog.HasParam(n) {
				return p.errf("known %s: not a declared param", n)
			}
			p.prog.Known[n] = v
		case "array":
			p.pos++
			if err := p.parseArray(); err != nil {
				return err
			}
		case "proc":
			p.pos++
			if err := p.parseProc(); err != nil {
				return err
			}
		default:
			s, err := p.parseStmt()
			if err != nil {
				return err
			}
			p.prog.Body = append(p.prog.Body, s)
		}
	}
	if len(p.prog.Body) == 0 {
		return fmt.Errorf("program %s has no statements", p.prog.Name)
	}
	return nil
}

func (p *parser) parseArray() error {
	name, err := p.ident()
	if err != nil {
		return err
	}
	if p.prog.FindArray(name) != nil {
		return p.errf("array %s redeclared", name)
	}
	a := &Array{Name: name}
	for p.accept("[") {
		s, err := p.parseScalar()
		if err != nil {
			return err
		}
		a.Dims = append(a.Dims, s)
		if err := p.expect("]"); err != nil {
			return err
		}
	}
	if len(a.Dims) == 0 {
		return p.errf("array %s has no dimensions", name)
	}
	if err := p.expect("of"); err != nil {
		return err
	}
	t := p.next()
	switch {
	case t.kind == tokIdent:
		switch t.text {
		case "float64", "int64", "complex32": // complex32: pair of float32? keep 8B
			a.ElemSize = 8
		case "float32", "int32":
			a.ElemSize = 4
		case "complex64":
			a.ElemSize = 8
		case "complex128":
			a.ElemSize = 16
		default:
			return p.errf("unknown element type %q", t.text)
		}
	case t.kind == tokNumber:
		a.ElemSize = int(t.num)
		if a.ElemSize <= 0 {
			return p.errf("bad element size %s", t.text)
		}
	default:
		return p.errf("expected element type, got %s", t)
	}
	p.prog.Arrays = append(p.prog.Arrays, a)
	return nil
}

func (p *parser) parseProc() error {
	line := p.peek().line
	name, err := p.ident()
	if err != nil {
		return err
	}
	pr := &Proc{Name: name, Line: line}
	if err := p.expect("("); err != nil {
		return err
	}
	if !p.accept(")") {
		for {
			f, err := p.ident()
			if err != nil {
				return err
			}
			pr.Formals = append(pr.Formals, f)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return err
		}
	}
	// Register before parsing the body to allow recursion-free lookup;
	// formals enter scope as symbolic (param-like) names.
	p.prog.Procs = append(p.prog.Procs, pr)
	savedFormals := p.formals
	p.formals = append(append([]string{}, p.formals...), pr.Formals...)
	body, err := p.parseBlock()
	p.formals = savedFormals
	if err != nil {
		return err
	}
	pr.Body = body
	return nil
}

func (p *parser) parseBlock() ([]Stmt, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	var out []Stmt
	for !p.accept("}") {
		if p.peek().kind == tokEOF {
			return nil, p.errf("unexpected end of input in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return nil, p.errf("expected statement, got %s", t)
	}
	switch t.text {
	case "for":
		return p.parseFor()
	case "call":
		return p.parseCall()
	default:
		return p.parseAssign()
	}
}

func (p *parser) parseFor() (Stmt, error) {
	line := p.peek().line
	p.pos++ // "for"
	v, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("="); err != nil {
		return nil, err
	}
	lo, err := p.parseScalar()
	if err != nil {
		return nil, err
	}
	if err := p.expect("to"); err != nil {
		return nil, err
	}
	hi, err := p.parseScalar()
	if err != nil {
		return nil, err
	}
	step := int64(1)
	if p.accept("step") {
		step, err = p.intLit()
		if err != nil {
			return nil, err
		}
		if step <= 0 {
			return nil, p.errf("loop step must be positive")
		}
	}
	p.scope = append(p.scope, v)
	body, err := p.parseBlock()
	p.scope = p.scope[:len(p.scope)-1]
	if err != nil {
		return nil, err
	}
	return &Loop{Var: v, Lo: lo, Hi: hi, Step: step, Body: body, Line: line}, nil
}

func (p *parser) parseCall() (Stmt, error) {
	p.pos++ // "call"
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	pr := p.prog.FindProc(name)
	if pr == nil {
		return nil, p.errf("call of undeclared proc %s", name)
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var args []Scalar
	if !p.accept(")") {
		for {
			a, err := p.parseScalar()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	if len(args) != len(pr.Formals) {
		return nil, p.errf("call %s: %d args, want %d", name, len(args), len(pr.Formals))
	}
	return &Call{Proc: pr, Args: args}, nil
}

func (p *parser) parseAssign() (Stmt, error) {
	line := p.peek().line
	lhs, err := p.parseRef(true)
	if err != nil {
		return nil, err
	}
	if err := p.expect("="); err != nil {
		return nil, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	a := &Assign{LHS: lhs, RHS: rhs, Line: line}
	if p.accept("@") {
		t := p.next()
		if t.kind != tokNumber {
			return nil, p.errf("expected cost after @, got %s", t)
		}
		a.CostNS = t.num
	}
	return a, nil
}

// parseScalar parses a restricted scalar expression:
//
//	INT | [INT*] IDENT [/INT] [(+|-) INT]
func (p *parser) parseScalar() (Scalar, error) {
	t := p.peek()
	if t.kind == tokNumber {
		v, err := p.intLit()
		if err != nil {
			return Scalar{}, err
		}
		// allow INT * IDENT
		if p.accept("*") {
			name, err := p.ident()
			if err != nil {
				return Scalar{}, err
			}
			s := Scalar{Name: name, Scale: v}
			return p.scalarSuffix(s)
		}
		return Const(v), nil
	}
	if t.kind == tokIdent {
		name, err := p.ident()
		if err != nil {
			return Scalar{}, err
		}
		return p.scalarSuffix(Scalar{Name: name, Scale: 1})
	}
	return Scalar{}, p.errf("expected scalar, got %s", t)
}

func (p *parser) scalarSuffix(s Scalar) (Scalar, error) {
	if p.accept("/") {
		d, err := p.intLit()
		if err != nil {
			return Scalar{}, err
		}
		if d <= 0 {
			return Scalar{}, p.errf("non-positive divisor")
		}
		s.Div = d
	}
	if p.accept("+") {
		v, err := p.intLit()
		if err != nil {
			return Scalar{}, err
		}
		s.Offset = v
	} else if p.accept("-") {
		v, err := p.intLit()
		if err != nil {
			return Scalar{}, err
		}
		s.Offset = -v
	}
	return s, nil
}

// inScope reports whether name is a lexically enclosing loop variable.
func (p *parser) inScope(name string) bool {
	for _, v := range p.scope {
		if v == name {
			return true
		}
	}
	return false
}

// isSymbolic reports whether name may act as a symbolic coefficient: a
// declared param or a procedure formal, but not a loop variable.
func (p *parser) isSymbolic(name string) bool {
	if p.inScope(name) {
		return false
	}
	if p.prog.HasParam(name) {
		return true
	}
	for _, f := range p.formals {
		if f == name {
			return true
		}
	}
	return false
}

// parseRef parses IDENT[idx][idx]... with affine or indirect
// subscripts.
func (p *parser) parseRef(write bool) (*Ref, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	arr := p.prog.FindArray(name)
	if arr == nil {
		return nil, p.errf("reference to undeclared array %s", name)
	}
	r := &Ref{Array: arr, Write: write}
	for p.accept("[") {
		idx, err := p.parseIndex()
		if err != nil {
			return nil, err
		}
		r.Index = append(r.Index, idx)
		if err := p.expect("]"); err != nil {
			return nil, err
		}
	}
	if len(r.Index) != len(arr.Dims) {
		return nil, p.errf("array %s: %d subscripts, want %d", name, len(r.Index), len(arr.Dims))
	}
	return r, nil
}

// parseIndex parses one subscript: an affine expression, possibly an
// indirect array read. Affine terms:
//
//	INT | IDENT | INT*IDENT | IDENT*IDENT (one must be a param) |
//	ARRAY[affine]
//
// joined with + and -.
func (p *parser) parseIndex() (Index, error) {
	// Indirect if the first token is a declared array name followed by
	// '[' — in which case the whole subscript must be that single
	// indirect term (no arithmetic around indirection; the paper's
	// a[b[i]] form).
	if t := p.peek(); t.kind == tokIdent && p.prog.FindArray(t.text) != nil {
		name, _ := p.ident()
		arr := p.prog.FindArray(name)
		if err := p.expect("["); err != nil {
			return nil, err
		}
		inner, err := p.parseAffine()
		if err != nil {
			return nil, err
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		if len(arr.Dims) != 1 {
			return nil, p.errf("indirection array %s must be one-dimensional", name)
		}
		return &Indirect{Array: arr, Idx: inner}, nil
	}
	return p.parseAffine()
}

func (p *parser) parseAffine() (*Affine, error) {
	a := &Affine{}
	sign := int64(1)
	if p.accept("-") {
		sign = -1
	}
	for {
		if err := p.parseAffineTerm(a, sign); err != nil {
			return nil, err
		}
		if p.accept("+") {
			sign = 1
		} else if p.accept("-") {
			sign = -1
		} else {
			break
		}
	}
	return a.normalize(), nil
}

func (p *parser) parseAffineTerm(a *Affine, sign int64) error {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		v, err := p.intLit()
		if err != nil {
			return err
		}
		if p.accept("*") {
			name, err := p.ident()
			if err != nil {
				return err
			}
			return p.addTerm(a, name, sign*v)
		}
		a.Const += sign * v
		return nil
	case tokIdent:
		name, err := p.ident()
		if err != nil {
			return err
		}
		if p.accept("*") {
			u := p.peek()
			if u.kind == tokNumber {
				v, err := p.intLit()
				if err != nil {
					return err
				}
				return p.addTerm(a, name, sign*v)
			}
			other, err := p.ident()
			if err != nil {
				return err
			}
			// param*var (or var*param): the param becomes a symbolic
			// coefficient.
			nameIsParam := p.isSymbolic(name)
			otherIsParam := p.isSymbolic(other)
			switch {
			case nameIsParam && !otherIsParam:
				a.Terms = append(a.Terms, Term{Var: other, Coef: sign, CoefParam: name})
			case otherIsParam && !nameIsParam:
				a.Terms = append(a.Terms, Term{Var: name, Coef: sign, CoefParam: other})
			default:
				return p.errf("product %s*%s: exactly one factor must be a param", name, other)
			}
			return nil
		}
		return p.addTerm(a, name, sign)
	default:
		return p.errf("expected subscript term, got %s", t)
	}
}

// addTerm adds coef·name, distinguishing loop vars from params: a
// param alone contributes a symbolic additive term, which we fold as a
// variable term too (the evaluator binds params in the same Env).
func (p *parser) addTerm(a *Affine, name string, coef int64) error {
	a.Terms = append(a.Terms, Term{Var: name, Coef: coef})
	return nil
}

// parseExpr parses + and - over terms.
func (p *parser) parseExpr() (ExprNode, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		var op byte
		switch {
		case p.accept("+"):
			op = '+'
		case p.accept("-"):
			op = '-'
		default:
			return l, nil
		}
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: op, L: l, R: r}
	}
}

// parseTerm parses * and / over factors.
func (p *parser) parseTerm() (ExprNode, error) {
	l, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		var op byte
		switch {
		case p.accept("*"):
			op = '*'
		case p.accept("/"):
			op = '/'
		default:
			return l, nil
		}
		r, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: op, L: l, R: r}
	}
}

func (p *parser) parseFactor() (ExprNode, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.pos++
		return &NumExpr{Val: t.num}, nil
	case t.text == "(":
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent:
		if p.prog.FindArray(t.text) != nil {
			r, err := p.parseRef(false)
			if err != nil {
				return nil, err
			}
			return &RefExpr{Ref: r}, nil
		}
		name, _ := p.ident()
		return &VarExpr{Name: name}, nil
	default:
		return nil, p.errf("expected expression, got %s", t)
	}
}

// ParseErrors collects human-readable context for diagnostics.
func ParseErrors(src string, err error) string {
	if err == nil {
		return ""
	}
	return fmt.Sprintf("parse failed: %v\nsource:\n%s", err, strings.TrimSpace(src))
}
