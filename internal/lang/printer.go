package lang

import (
	"fmt"
	"strings"
)

// Format renders a program back to surface syntax. Round-tripping
// through Parse is stable (used by tests), and the compiler's
// transformed-code printer builds on the same statement rendering.
func Format(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", p.Name)
	if len(p.Params) > 0 {
		fmt.Fprintf(&b, "param %s\n", strings.Join(p.Params, ", "))
	}
	for _, name := range p.Params {
		if v, ok := p.Known[name]; ok {
			fmt.Fprintf(&b, "known %s = %d\n", name, v)
		}
	}
	for _, a := range p.Arrays {
		fmt.Fprintf(&b, "array %s", a.Name)
		for _, d := range a.Dims {
			fmt.Fprintf(&b, "[%s]", d)
		}
		fmt.Fprintf(&b, " of %d\n", a.ElemSize)
	}
	for _, pr := range p.Procs {
		fmt.Fprintf(&b, "proc %s(%s) {\n", pr.Name, strings.Join(pr.Formals, ", "))
		for _, s := range pr.Body {
			s.print(&b, 1)
		}
		b.WriteString("}\n")
	}
	for _, s := range p.Body {
		s.print(&b, 0)
	}
	return b.String()
}

func ind(b *strings.Builder, n int) {
	for i := 0; i < n; i++ {
		b.WriteString("    ")
	}
}

func (l *Loop) print(b *strings.Builder, indent int) {
	ind(b, indent)
	fmt.Fprintf(b, "for %s = %s to %s", l.Var, l.Lo, l.Hi)
	if l.Step != 1 {
		fmt.Fprintf(b, " step %d", l.Step)
	}
	b.WriteString(" {\n")
	for _, s := range l.Body {
		s.print(b, indent+1)
	}
	ind(b, indent)
	b.WriteString("}\n")
}

func (a *Assign) print(b *strings.Builder, indent int) {
	ind(b, indent)
	b.WriteString(FormatRef(a.LHS))
	b.WriteString(" = ")
	b.WriteString(FormatExpr(a.RHS))
	if a.CostNS > 0 {
		fmt.Fprintf(b, " @ %g", a.CostNS)
	}
	b.WriteString("\n")
}

func (c *Call) print(b *strings.Builder, indent int) {
	ind(b, indent)
	fmt.Fprintf(b, "call %s(", c.Proc.Name)
	for i, a := range c.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	b.WriteString(")\n")
}

// FormatRef renders an array reference.
func FormatRef(r *Ref) string {
	var b strings.Builder
	b.WriteString(r.Array.Name)
	for _, idx := range r.Index {
		b.WriteString("[")
		b.WriteString(FormatIndex(idx))
		b.WriteString("]")
	}
	return b.String()
}

// FormatIndex renders a subscript.
func FormatIndex(idx Index) string {
	switch x := idx.(type) {
	case *Affine:
		return FormatAffine(x)
	case *Indirect:
		return fmt.Sprintf("%s[%s]", x.Array.Name, FormatAffine(x.Idx))
	default:
		return "?"
	}
}

// FormatAffine renders an affine expression.
func FormatAffine(a *Affine) string {
	var parts []string
	for _, t := range a.Terms {
		var s string
		switch {
		case t.CoefParam != "" && t.Coef == 1:
			s = fmt.Sprintf("%s*%s", t.CoefParam, t.Var)
		case t.CoefParam != "":
			s = fmt.Sprintf("%d*%s*%s", t.Coef, t.CoefParam, t.Var)
		case t.Coef == 1:
			s = t.Var
		case t.Coef == -1:
			s = "-" + t.Var
		default:
			s = fmt.Sprintf("%d*%s", t.Coef, t.Var)
		}
		parts = append(parts, s)
	}
	if a.Const != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("%d", a.Const))
	}
	out := strings.Join(parts, "+")
	return strings.ReplaceAll(out, "+-", "-")
}

// FormatExpr renders an RHS expression.
func FormatExpr(e ExprNode) string {
	switch n := e.(type) {
	case *BinOp:
		return fmt.Sprintf("(%s %c %s)", FormatExpr(n.L), n.Op, FormatExpr(n.R))
	case *RefExpr:
		return FormatRef(n.Ref)
	case *NumExpr:
		return fmt.Sprintf("%g", n.Val)
	case *VarExpr:
		return n.Name
	default:
		return "?"
	}
}
