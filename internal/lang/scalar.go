package lang

import "fmt"

// Env binds scalar names (params, loop variables, procedure formals)
// to values during evaluation and analysis.
type Env map[string]int64

// Clone returns a copy of the environment.
func (e Env) Clone() Env {
	c := make(Env, len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}

// Scalar is an integer-valued expression used in loop bounds and array
// dimensions: Scale·name + Offset, or a plain constant when Name is
// empty. This restricted form covers every bound in the paper's
// benchmarks (N, N-1, n/2, 2*n+1 is out of scope and unneeded).
type Scalar struct {
	Name   string
	Scale  int64
	Div    int64 // divide after scale: (Scale·name)/Div + Offset; 0 means 1
	Offset int64
}

// Const returns a constant Scalar.
func Const(v int64) Scalar { return Scalar{Offset: v} }

// Sym returns the Scalar for a bare symbol.
func Sym(name string) Scalar { return Scalar{Name: name, Scale: 1} }

// SymOff returns name + off.
func SymOff(name string, off int64) Scalar { return Scalar{Name: name, Scale: 1, Offset: off} }

// IsConst reports whether the scalar needs no bindings.
func (s Scalar) IsConst() bool { return s.Name == "" }

// Eval computes the value under env; unresolved names are an error.
func (s Scalar) Eval(env Env) (int64, error) {
	if s.Name == "" {
		return s.Offset, nil
	}
	v, ok := env[s.Name]
	if !ok {
		return 0, fmt.Errorf("lang: unbound symbol %q", s.Name)
	}
	x := s.Scale * v
	if s.Div > 1 {
		x /= s.Div
	}
	return x + s.Offset, nil
}

// TryEval evaluates if possible, reporting success.
func (s Scalar) TryEval(env Env) (int64, bool) {
	v, err := s.Eval(env)
	return v, err == nil
}

// String renders the scalar.
func (s Scalar) String() string {
	if s.Name == "" {
		return fmt.Sprintf("%d", s.Offset)
	}
	out := s.Name
	if s.Scale != 1 {
		out = fmt.Sprintf("%d*%s", s.Scale, s.Name)
	}
	if s.Div > 1 {
		out = fmt.Sprintf("%s/%d", out, s.Div)
	}
	if s.Offset > 0 {
		out = fmt.Sprintf("%s+%d", out, s.Offset)
	} else if s.Offset < 0 {
		out = fmt.Sprintf("%s-%d", out, -s.Offset)
	}
	return out
}

// Eval computes the affine value under env. Symbolic coefficients
// multiply the bound parameter value.
func (a *Affine) Eval(env Env) (int64, error) {
	v := a.Const
	for _, t := range a.Terms {
		x, ok := env[t.Var]
		if !ok {
			return 0, fmt.Errorf("lang: unbound variable %q in subscript", t.Var)
		}
		c := t.Coef
		if t.CoefParam != "" {
			p, ok := env[t.CoefParam]
			if !ok {
				return 0, fmt.Errorf("lang: unbound stride parameter %q", t.CoefParam)
			}
			c *= p
		}
		v += c * x
	}
	return v, nil
}

// CoefOf returns the coefficient of var and whether it is symbolic
// (unknown to the compiler). A missing term is coefficient zero.
func (a *Affine) CoefOf(v string) (coef int64, symbolic bool) {
	for _, t := range a.Terms {
		if t.Var == v {
			return t.Coef, t.CoefParam != ""
		}
	}
	return 0, false
}

// DependsOn reports whether the affine mentions var at all.
func (a *Affine) DependsOn(v string) bool {
	for _, t := range a.Terms {
		if t.Var == v {
			return true
		}
	}
	return false
}

// AddAffine returns a + b (term lists merged).
func AddAffine(a, b *Affine) *Affine {
	out := &Affine{Const: a.Const + b.Const}
	out.Terms = append(out.Terms, a.Terms...)
	for _, t := range b.Terms {
		merged := false
		for i := range out.Terms {
			if out.Terms[i].Var == t.Var && out.Terms[i].CoefParam == t.CoefParam {
				out.Terms[i].Coef += t.Coef
				merged = true
				break
			}
		}
		if !merged {
			out.Terms = append(out.Terms, t)
		}
	}
	return out.normalize()
}

// ScaleAffine returns a scaled by constant k.
func ScaleAffine(a *Affine, k int64) *Affine {
	out := &Affine{Const: a.Const * k}
	for _, t := range a.Terms {
		out.Terms = append(out.Terms, Term{Var: t.Var, Coef: t.Coef * k, CoefParam: t.CoefParam})
	}
	return out.normalize()
}

// normalize drops zero-coefficient terms.
func (a *Affine) normalize() *Affine {
	kept := a.Terms[:0]
	for _, t := range a.Terms {
		if t.Coef != 0 {
			kept = append(kept, t)
		}
	}
	a.Terms = kept
	return a
}
