package mem

import "fmt"

// FarTier is an optional CXL-like far-memory pool between DRAM and
// swap: byte-addressable, so a demoted page keeps its contents and a
// re-fault costs a fixed latency instead of a disk positioning cost.
// Like Phys it is split into node-local regions so demotion stays on
// the faulting process's home node; unlike Phys it never blocks — a
// full tier makes the caller fall back to swap, mirroring how the
// prefetch path discards rather than steals (§3.1.2).
//
// Slots have no rescue semantics: a promoted slot's identity is gone
// the moment it is freed. The exactly-one-tier audit invariant depends
// on that — a page must never be simultaneously far-resident and
// rescuable from the DRAM free list.
type FarTier struct {
	nodes      int
	regionSize int
	slots      []FarSlot
	free       [][]FarSlotID // per-node free stacks (LIFO)
	offlineIDs []FarSlotID   // hot-unplugged slots, LIFO
	nfree      int
	stats      FarStats
}

// FarSlotID identifies one far-tier page slot. NoFarSlot means "none".
type FarSlotID int32

// NoFarSlot is the sentinel for "no far slot".
const NoFarSlot FarSlotID = -1

// FarSlot is one far-tier page slot.
type FarSlot struct {
	ID    FarSlotID
	Owner Owner // nil while the slot is free or offline
	VPN   int
	Dirty bool

	used    bool
	offline bool
}

// InUse reports whether the slot holds a demoted page.
func (s *FarSlot) InUse() bool { return s.used }

// IsOffline reports whether the slot is hot-unplugged.
func (s *FarSlot) IsOffline() bool { return s.offline }

// FarStats counts far-tier traffic.
type FarStats struct {
	Demotions  int64 // pages moved DRAM -> far
	Promotions int64 // pages moved far -> DRAM
	DemoteFull int64 // demotions refused because the tier was full
}

// NewFarTier creates a far tier of n slots split into nodes regions
// (the last node absorbs any remainder), all initially free. nodes is
// clamped to [1, n].
func NewFarTier(n, nodes int) *FarTier {
	if n <= 0 {
		panic("mem: far tier must have at least one slot")
	}
	if nodes < 1 {
		nodes = 1
	}
	if nodes > n {
		nodes = n
	}
	t := &FarTier{
		nodes:      nodes,
		regionSize: n / nodes,
		slots:      make([]FarSlot, n),
		free:       make([][]FarSlotID, nodes),
	}
	for i := range t.slots {
		t.slots[i].ID = FarSlotID(i)
	}
	// Fill each node's stack in descending order so the first
	// allocation takes the region's lowest slot.
	for k := nodes - 1; k >= 0; k-- {
		base, limit := t.NodeRange(k)
		for i := limit - 1; i >= base; i-- {
			t.free[k] = append(t.free[k], FarSlotID(i))
		}
		t.nfree += limit - base
	}
	return t
}

// NumSlots returns the tier's capacity in pages.
func (t *FarTier) NumSlots() int { return len(t.slots) }

// Nodes returns the number of far-tier regions.
func (t *FarTier) Nodes() int { return t.nodes }

// FreeCount returns the number of free slots.
func (t *FarTier) FreeCount() int { return t.nfree }

// UsedCount returns the number of slots holding demoted pages.
func (t *FarTier) UsedCount() int {
	return len(t.slots) - t.nfree - len(t.offlineIDs)
}

// OfflineCount returns the number of hot-unplugged slots.
func (t *FarTier) OfflineCount() int { return len(t.offlineIDs) }

// Slot returns the slot with the given id.
func (t *FarTier) Slot(id FarSlotID) *FarSlot { return &t.slots[id] }

// Stats returns a snapshot of the counters.
func (t *FarTier) Stats() FarStats {
	if t == nil {
		return FarStats{}
	}
	return t.stats
}

// NodeOf returns the origin node of slot i.
func (t *FarTier) NodeOf(i int) int {
	k := i / t.regionSize
	if k >= t.nodes {
		k = t.nodes - 1
	}
	return k
}

// NodeRange returns node k's slot region [base, limit).
func (t *FarTier) NodeRange(k int) (base, limit int) {
	base = k * t.regionSize
	limit = base + t.regionSize
	if k == t.nodes-1 {
		limit = len(t.slots)
	}
	return base, limit
}

// TryAlloc takes a free slot for a page being demoted, preferring the
// home node and falling back to the richest other node. It never
// blocks: a full tier returns false and the caller demotes to swap
// instead.
func (t *FarTier) TryAlloc(home int, owner Owner, vpn int) (*FarSlot, bool) {
	if t == nil || t.nfree == 0 {
		if t != nil {
			t.stats.DemoteFull++
		}
		return nil, false
	}
	if home < 0 || home >= t.nodes {
		home = 0
	}
	node := home
	if len(t.free[node]) == 0 {
		best, bestFree := -1, 0
		for k := 0; k < t.nodes; k++ {
			if len(t.free[k]) > bestFree {
				best, bestFree = k, len(t.free[k])
			}
		}
		node = best
	}
	stack := t.free[node]
	id := stack[len(stack)-1]
	t.free[node] = stack[:len(stack)-1]
	t.nfree--
	s := &t.slots[id]
	s.Owner = owner
	s.VPN = vpn
	s.Dirty = false
	s.used = true
	t.stats.Demotions++
	return s, true
}

// Free returns a slot to its origin node's stack, destroying its
// identity (far slots are never rescued).
func (t *FarTier) Free(s *FarSlot) {
	if !s.used {
		panic(fmt.Sprintf("mem: double free of far slot %d", s.ID))
	}
	if s.offline {
		panic(fmt.Sprintf("mem: free of offline far slot %d", s.ID))
	}
	s.Owner = nil
	s.VPN = 0
	s.Dirty = false
	s.used = false
	node := t.NodeOf(int(s.ID))
	t.free[node] = append(t.free[node], s.ID)
	t.nfree++
	t.stats.Promotions++
}

// Offline hot-unplugs up to n free slots (pages already demoted stay
// where they are, as on a real device being drained). Returns how many
// slots actually went offline.
func (t *FarTier) Offline(n int) int {
	taken := 0
	for taken < n && t.nfree > 0 {
		// Drain the richest node first so a partial unplug stays
		// balanced.
		best, bestFree := -1, 0
		for k := 0; k < t.nodes; k++ {
			if len(t.free[k]) > bestFree {
				best, bestFree = k, len(t.free[k])
			}
		}
		stack := t.free[best]
		id := stack[len(stack)-1]
		t.free[best] = stack[:len(stack)-1]
		t.nfree--
		s := &t.slots[id]
		s.offline = true
		t.offlineIDs = append(t.offlineIDs, id)
		taken++
	}
	return taken
}

// Online brings up to n hot-unplugged slots back to their origin
// node's free stack. Returns how many came back.
func (t *FarTier) Online(n int) int {
	taken := 0
	for taken < n && len(t.offlineIDs) > 0 {
		id := t.offlineIDs[len(t.offlineIDs)-1]
		t.offlineIDs = t.offlineIDs[:len(t.offlineIDs)-1]
		s := &t.slots[id]
		s.offline = false
		node := t.NodeOf(int(id))
		t.free[node] = append(t.free[node], id)
		t.nfree++
		taken++
	}
	return taken
}

// Validate cross-checks the free stacks, offline list and slot flags:
// every free-stack entry must be an unused, online slot with no
// identity; used + free + offline must equal the capacity.
// kernel.Audit runs this as the far-tier invariant pass.
func (t *FarTier) Validate() error {
	if t == nil {
		return nil
	}
	total := 0
	for k := 0; k < t.nodes; k++ {
		for _, id := range t.free[k] {
			s := &t.slots[id]
			if s.used {
				return fmt.Errorf("mem: far free stack %d holds in-use slot %d", k, id)
			}
			if s.offline {
				return fmt.Errorf("mem: far free stack %d holds offline slot %d", k, id)
			}
			if s.Owner != nil {
				return fmt.Errorf("mem: free far slot %d kept identity %s:%d", id, s.Owner.OwnerName(), s.VPN)
			}
			total++
		}
	}
	if total != t.nfree {
		return fmt.Errorf("mem: far free stacks hold %d slots, counter says %d", total, t.nfree)
	}
	for _, id := range t.offlineIDs {
		if !t.slots[id].offline {
			return fmt.Errorf("mem: far offline list holds online slot %d", id)
		}
	}
	used := 0
	for i := range t.slots {
		s := &t.slots[i]
		if s.used {
			if s.offline {
				return fmt.Errorf("mem: far slot %d both in use and offline", i)
			}
			if s.Owner == nil {
				return fmt.Errorf("mem: in-use far slot %d has no owner", i)
			}
			used++
		}
	}
	if used+t.nfree+len(t.offlineIDs) != len(t.slots) {
		return fmt.Errorf("mem: far slots used %d + free %d + offline %d != capacity %d",
			used, t.nfree, len(t.offlineIDs), len(t.slots))
	}
	return nil
}
