// Package mem models physical memory: a fixed pool of page frames
// split into one or more node-local regions (NUMA sharding), each with
// its own free list.
//
// The free lists preserve the identity of freed pages: a frame freed
// by the paging daemon or by an explicit release remembers which
// address space and virtual page it held until the frame is
// reallocated. A subsequent fault on that virtual page can then
// "rescue" the frame cheaply instead of reading it back from swap —
// the mechanism the paper uses to measure how many pages were freed
// too early (Figure 9). Released pages go to the *tail* of the list,
// "giving pages that were released too early a chance to be rescued"
// (§3.1.2), while allocation takes from the head.
//
// Sharding follows an origin-based region-per-node layout: frame i
// belongs to node i/regionSize for its whole life. A free frame may
// temporarily sit on another node's list (the balancer loans frames to
// starved nodes), but freeing always repatriates it to its origin
// node's tail. Allocation prefers the owner's home node and steals
// from the richest other node only when the home list is empty. With
// nodes=1 every path below degenerates to the original single-list
// behavior bit-for-bit (pinned by TestTraceDigests).
package mem

import (
	"fmt"
	"math/bits"

	"memhogs/internal/events"
	"memhogs/internal/sim"
)

// FrameID identifies a physical page frame. NoFrame means "none".
type FrameID int32

// NoFrame is the sentinel for "no frame".
const NoFrame FrameID = -1

// Owner is implemented by address spaces so the physical layer can
// notify the owner when one of its resident pages loses its frame
// (reallocation of a free-listed frame destroys the old identity).
type Owner interface {
	// FrameInvalidated tells the owner that vpn's frame was taken
	// away for good (the page is no longer rescuable).
	FrameInvalidated(vpn int)
	// OwnerName returns a diagnostic name.
	OwnerName() string
	// OwnerID returns a small unique id used in stats maps.
	OwnerID() int
}

// FreeKind says how a frame got onto the free list, for outcome
// accounting.
type FreeKind int8

// Free-list entry origins.
const (
	FreedNone    FreeKind = iota // not on free list
	FreedDaemon                  // stolen by the paging daemon
	FreedRelease                 // freed by an explicit release
	FreedExit                    // owner exited / teardown
)

func (k FreeKind) String() string {
	switch k {
	case FreedDaemon:
		return "daemon"
	case FreedRelease:
		return "release"
	case FreedExit:
		return "exit"
	default:
		return "none"
	}
}

// Frame is one physical page frame. Frames form intrusive doubly
// linked per-node free lists so that free/alloc/rescue are all O(1).
type Frame struct {
	ID    FrameID
	Owner Owner // nil when the frame holds no identifiable page
	VPN   int   // virtual page number within Owner
	Dirty bool

	freeKind   FreeKind
	prev, next FrameID // free-list links, valid when freeKind != FreedNone
	listNode   int32   // which node's free list holds the frame (balancer loans)
	offline    bool    // hot-unplugged: neither free nor allocatable
}

// OnFreeList reports whether the frame is currently on a free list.
func (f *Frame) OnFreeList() bool { return f.freeKind != FreedNone }

// Kind reports how the frame was freed (FreedNone if resident).
func (f *Frame) Kind() FreeKind { return f.freeKind }

// IsOffline reports whether the frame is hot-unplugged.
func (f *Frame) IsOffline() bool { return f.offline }

// Stats tracks free-list outcomes for the paper's Figure 9 and
// Table 3, plus the NUMA counters (all zero with one node).
type Stats struct {
	FreedByDaemon  int64 // frames placed on free list by the paging daemon
	FreedByRelease int64 // frames placed on free list by explicit release
	FreedByExit    int64
	RescuedDaemon  int64 // daemon-freed frames rescued before reallocation
	RescuedRelease int64 // release-freed frames rescued before reallocation
	Reallocated    int64 // allocations that destroyed a previous identity
	Allocations    int64 // total frame allocations
	AllocWaits     int64 // allocations that had to wait for free memory
	AllocWaitTime  sim.Time
	LocalAllocs    int64 // allocations satisfied from the owner's home node (nodes>1)
	RemoteAllocs   int64 // allocations stolen from another node (nodes>1)
	BalancerMoves  int64 // free frames migrated between nodes by the balancer
}

// Phys is the physical memory pool.
type Phys struct {
	sim        *sim.Sim
	frames     []Frame
	nodes      int
	regionSize int
	head, tail []FrameID // per-node free lists: head = next to allocate
	nfreeNode  []int     // free frames currently on each node's list
	nfree      int       // total free frames
	offlineIDs []FrameID // hot-unplugged frames, LIFO
	homes      []int     // owner id -> home node
	stats      Stats

	// alloc is a packed bitmap with one bit per frame, set while the
	// frame is allocated (neither free-listed nor offline). The paging
	// daemons' clock sweeps scan it word-at-a-time instead of walking
	// Frame structs; the frames themselves stay the source of truth
	// (the audit cross-checks the two).
	alloc []uint64

	waiters *sim.Waitq

	// NeedMemory, if non-nil, is invoked with a node index whenever
	// that node's free memory drops to or below LowWater or an
	// allocation has to wait. The paging daemons register their
	// wake-ups here.
	NeedMemory func(node int)

	// FreeChanged, if non-nil, is invoked after every change to the
	// total free count. The kernel uses it for the
	// threshold-notification shared-page variant (§3.1.1's unexplored
	// alternative).
	FreeChanged func(free int)

	// LowWater is the per-node free-frame count at or below which
	// NeedMemory fires.
	LowWater int

	// Events is the flight recorder for node-local/remote allocation
	// events; nil (or a single node) records nothing.
	Events *events.Recorder
}

// New creates a single-node pool of n frames, all initially free with
// no identity.
func New(s *sim.Sim, n int) *Phys { return NewSharded(s, n, 1) }

// NewSharded creates a pool of n frames split into nodes equal
// regions (the last node absorbs any remainder). nodes is clamped to
// [1, n].
func NewSharded(s *sim.Sim, n, nodes int) *Phys {
	if n <= 0 {
		panic("mem: pool must have at least one frame")
	}
	if nodes < 1 {
		nodes = 1
	}
	if nodes > n {
		nodes = n
	}
	p := &Phys{
		sim:        s,
		frames:     make([]Frame, n),
		nodes:      nodes,
		regionSize: n / nodes,
		head:       make([]FrameID, nodes),
		tail:       make([]FrameID, nodes),
		nfreeNode:  make([]int, nodes),
		alloc:      make([]uint64, (n+63)/64),
		waiters:    sim.NewWaitq("phys.alloc"),
	}
	for k := 0; k < nodes; k++ {
		p.head[k] = NoFrame
		p.tail[k] = NoFrame
	}
	for i := range p.frames {
		f := &p.frames[i]
		f.ID = FrameID(i)
		p.pushTail(f, FreedExit)
	}
	// Initial fill is not an interesting statistic.
	p.stats = Stats{}
	return p
}

// NumFrames returns the total number of physical frames.
func (p *Phys) NumFrames() int { return len(p.frames) }

// Nodes returns the number of memory nodes (1 = unsharded).
func (p *Phys) Nodes() int { return p.nodes }

// NodeOf returns the origin node of frame i.
func (p *Phys) NodeOf(i int) int {
	k := i / p.regionSize
	if k >= p.nodes {
		k = p.nodes - 1
	}
	return k
}

// NodeRange returns node k's frame region [base, limit).
func (p *Phys) NodeRange(k int) (base, limit int) {
	base = k * p.regionSize
	limit = base + p.regionSize
	if k == p.nodes-1 {
		limit = len(p.frames)
	}
	return base, limit
}

// FreeCount returns the total length of the free lists.
func (p *Phys) FreeCount() int { return p.nfree }

// FreeCountNode returns the length of node k's free list.
func (p *Phys) FreeCountNode(k int) int { return p.nfreeNode[k] }

// Frame returns the frame with the given id.
func (p *Phys) Frame(id FrameID) *Frame { return &p.frames[id] }

// Stats returns a snapshot of the counters.
func (p *Phys) Stats() Stats { return p.stats }

// ResetStats zeroes the counters.
func (p *Phys) ResetStats() { p.stats = Stats{} }

// SetHome records an owner's home node; allocations for that owner
// prefer the home node's free list. Unset owners default to node 0.
func (p *Phys) SetHome(ownerID, node int) {
	if node < 0 || node >= p.nodes {
		panic(fmt.Sprintf("mem: home node %d out of range", node))
	}
	for len(p.homes) <= ownerID {
		p.homes = append(p.homes, 0)
	}
	p.homes[ownerID] = node
}

// HomeOf returns the home node recorded for an owner id.
func (p *Phys) HomeOf(ownerID int) int {
	if ownerID >= 0 && ownerID < len(p.homes) {
		return p.homes[ownerID]
	}
	return 0
}

func (p *Phys) homeOf(o Owner) int {
	if p.nodes == 1 || o == nil {
		return 0
	}
	return p.HomeOf(o.OwnerID())
}

// FrameAllocated reports whether frame i is allocated (neither on a
// free list nor offline), from the packed bitmap.
func (p *Phys) FrameAllocated(i int) bool {
	return p.alloc[i>>6]&(1<<(uint(i)&63)) != 0
}

// NextAllocated returns the index of the first allocated frame at or
// after start, wrapping past the end of the pool, or -1 when no frame
// is allocated. The scan runs word-at-a-time over the packed bitmap.
//
//simvet:hot
func (p *Phys) NextAllocated(start int) int {
	w := start >> 6
	if word := p.alloc[w] &^ (1<<(uint(start)&63) - 1); word != 0 {
		return w<<6 + bits.TrailingZeros64(word)
	}
	for i := w + 1; i < len(p.alloc); i++ {
		if p.alloc[i] != 0 {
			return i<<6 + bits.TrailingZeros64(p.alloc[i])
		}
	}
	for i := 0; i <= w; i++ {
		if p.alloc[i] != 0 {
			return i<<6 + bits.TrailingZeros64(p.alloc[i])
		}
	}
	return -1
}

// NextAllocatedIn returns the first allocated frame at or after start
// within the region [base, limit), wrapping at limit back to base, or
// -1 when the region has no allocated frame. NextAllocated(start) is
// NextAllocatedIn(start, 0, NumFrames()). Per-node clock hands sweep
// their own region with this.
//
//simvet:hot
func (p *Phys) NextAllocatedIn(start, base, limit int) int {
	if i := p.nextAllocRange(start, limit); i >= 0 {
		return i
	}
	if start > base {
		return p.nextAllocRange(base, start)
	}
	return -1
}

// nextAllocRange returns the first allocated frame in [from, to), or
// -1. Word-at-a-time with partial-word masks at both ends.
//
//simvet:hot
func (p *Phys) nextAllocRange(from, to int) int {
	if from >= to {
		return -1
	}
	w := from >> 6
	last := (to - 1) >> 6
	word := p.alloc[w] &^ (1<<(uint(from)&63) - 1)
	for {
		if w == last {
			if tailBits := uint(to) & 63; tailBits != 0 {
				word &= 1<<tailBits - 1
			}
		}
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
		w++
		if w > last {
			return -1
		}
		word = p.alloc[w]
	}
}

func (p *Phys) pushTail(f *Frame, kind FreeKind) {
	p.pushTailOn(f, p.NodeOf(int(f.ID)), kind)
}

func (p *Phys) pushTailOn(f *Frame, node int, kind FreeKind) {
	p.alloc[f.ID>>6] &^= 1 << (uint(f.ID) & 63)
	f.freeKind = kind
	f.listNode = int32(node)
	f.prev = p.tail[node]
	f.next = NoFrame
	if p.tail[node] != NoFrame {
		p.frames[p.tail[node]].next = f.ID
	} else {
		p.head[node] = f.ID
	}
	p.tail[node] = f.ID
	p.nfreeNode[node]++
	p.nfree++
}

func (p *Phys) unlink(f *Frame) {
	node := int(f.listNode)
	p.alloc[f.ID>>6] |= 1 << (uint(f.ID) & 63)
	if f.prev != NoFrame {
		p.frames[f.prev].next = f.next
	} else {
		p.head[node] = f.next
	}
	if f.next != NoFrame {
		p.frames[f.next].prev = f.prev
	} else {
		p.tail[node] = f.prev
	}
	f.freeKind = FreedNone
	f.prev, f.next = NoFrame, NoFrame
	p.nfreeNode[node]--
	p.nfree--
}

// richestNode returns the node with the most free frames, excluding
// `exclude` (pass -1 to consider all); ties break to the lowest index.
// Returns -1 when every considered node is empty.
func (p *Phys) richestNode(exclude int) int {
	best, bestFree := -1, 0
	for k := 0; k < p.nodes; k++ {
		if k == exclude {
			continue
		}
		if p.nfreeNode[k] > bestFree {
			best, bestFree = k, p.nfreeNode[k]
		}
	}
	return best
}

// Alloc takes the oldest frame from the owner's home-node free list —
// stealing from the richest other node when the home list is empty —
// destroying the frame's old identity (notifying the previous owner).
// If no node has free frames the calling process blocks until memory
// is freed; the wait time is returned so the caller can account it as
// resource stall. proc may be nil only when free frames are known to
// exist (it panics otherwise).
func (p *Phys) Alloc(proc *sim.Proc, newOwner Owner, vpn int) (*Frame, sim.Time) {
	home := p.homeOf(newOwner)
	var waited sim.Time
	for p.nfree == 0 {
		if proc == nil {
			panic("mem: Alloc with nil proc would block")
		}
		p.stats.AllocWaits++
		if p.NeedMemory != nil {
			p.NeedMemory(home)
		}
		start := proc.Now()
		p.waiters.Wait(proc)
		waited += proc.Now() - start
	}
	p.stats.AllocWaitTime += waited
	node := home
	if p.nfreeNode[home] == 0 {
		node = p.richestNode(home)
	}
	f := &p.frames[p.head[node]]
	p.unlink(f)
	if f.Owner != nil {
		f.Owner.FrameInvalidated(f.VPN)
		p.stats.Reallocated++
	}
	f.Owner = newOwner
	f.VPN = vpn
	f.Dirty = false
	p.stats.Allocations++
	if p.nodes > 1 && newOwner != nil {
		if node == home {
			p.stats.LocalAllocs++
			p.Events.Emit(events.AllocLocal, newOwner.OwnerName(), "", vpn, int64(home), 0)
		} else {
			p.stats.RemoteAllocs++
			p.Events.Emit(events.AllocRemote, newOwner.OwnerName(), "", vpn, int64(home), int64(node))
		}
	}
	if p.nfreeNode[home] <= p.LowWater && p.NeedMemory != nil {
		p.NeedMemory(home)
	}
	if p.FreeChanged != nil {
		p.FreeChanged(p.nfree)
	}
	return f, waited
}

// TryAlloc allocates a frame only if one is free, without blocking.
// Used by the prefetch path, which must discard requests rather than
// steal memory when none is free (§3.1.2).
func (p *Phys) TryAlloc(newOwner Owner, vpn int) (*Frame, bool) {
	if p.nfree == 0 {
		return nil, false
	}
	f, _ := p.Alloc(nil, newOwner, vpn)
	return f, true
}

// Free places a frame at the tail of its origin node's free list,
// preserving its identity so it can be rescued. kind records who freed
// it.
func (p *Phys) Free(f *Frame, kind FreeKind) {
	if f.OnFreeList() {
		panic(fmt.Sprintf("mem: double free of frame %d", f.ID))
	}
	if f.offline {
		panic(fmt.Sprintf("mem: free of offline frame %d", f.ID))
	}
	p.pushTail(f, kind)
	switch kind {
	case FreedDaemon:
		p.stats.FreedByDaemon++
	case FreedRelease:
		p.stats.FreedByRelease++
	case FreedExit:
		p.stats.FreedByExit++
	}
	p.waiters.WakeOne()
	if p.FreeChanged != nil {
		p.FreeChanged(p.nfree)
	}
}

// Rescue removes a free-listed frame from its free list and returns it
// to its owner, recording the outcome. The caller must have verified
// that the identity (owner, vpn) still matches.
func (p *Phys) Rescue(f *Frame) {
	switch f.freeKind {
	case FreedDaemon:
		p.stats.RescuedDaemon++
	case FreedRelease:
		p.stats.RescuedRelease++
	case FreedExit:
		// teardown leftovers; not counted
	case FreedNone:
		panic(fmt.Sprintf("mem: rescue of non-free frame %d", f.ID))
	}
	p.unlink(f)
}

// DropIdentity clears a free-listed frame's identity without removing
// it from the free list (used when the owner tears down).
func (p *Phys) DropIdentity(f *Frame) {
	f.Owner = nil
	f.VPN = 0
	f.Dirty = false
}

// Migrate moves up to max free frames from node `from`'s list head to
// node `to`'s list tail, preserving identities and free kinds (a
// loaned frame stays rescuable). It returns how many frames moved.
// The total free count is unchanged, so no waiter or FreeChanged
// notification fires. Only the inter-node balancer calls this.
func (p *Phys) Migrate(from, to, max int) int {
	if from == to {
		return 0
	}
	moved := 0
	for moved < max && p.nfreeNode[from] > 0 {
		f := &p.frames[p.head[from]]
		kind := f.freeKind
		p.unlink(f)
		p.pushTailOn(f, to, kind)
		moved++
	}
	p.stats.BalancerMoves += int64(moved)
	return moved
}

// OfflineCount returns the number of hot-unplugged frames.
func (p *Phys) OfflineCount() int { return len(p.offlineIDs) }

// Offline hot-unplugs up to n frames, taking them from the head of
// the richest node's free list (the oldest identities, which would be
// reallocated next anyway). Only free frames can go offline; the
// return value is how many actually did. Identities are destroyed, so
// pending rescues of those pages become hard faults — exactly the
// degradation a real memory-removal causes.
func (p *Phys) Offline(n int) int { return p.offlineFrom(-1, n) }

// OfflineNode hot-unplugs up to n free frames from node k's free list
// (a per-node unplug leaves the other nodes untouched).
func (p *Phys) OfflineNode(k, n int) int { return p.offlineFrom(k, n) }

func (p *Phys) offlineFrom(node, n int) int {
	taken := 0
	for taken < n {
		k := node
		if k < 0 {
			k = p.richestNode(-1)
		}
		if k < 0 || p.nfreeNode[k] == 0 {
			break
		}
		f := &p.frames[p.head[k]]
		p.unlink(f)
		if f.Owner != nil {
			f.Owner.FrameInvalidated(f.VPN)
			f.Owner = nil
		}
		f.VPN = 0
		f.Dirty = false
		f.offline = true
		p.alloc[f.ID>>6] &^= 1 << (uint(f.ID) & 63)
		p.offlineIDs = append(p.offlineIDs, f.ID)
		taken++
	}
	if taken > 0 {
		if p.NeedMemory != nil {
			for k := 0; k < p.nodes; k++ {
				if p.nfreeNode[k] <= p.LowWater {
					p.NeedMemory(k)
				}
			}
		}
		if p.FreeChanged != nil {
			p.FreeChanged(p.nfree)
		}
	}
	return taken
}

// Online brings up to n hot-unplugged frames back, identity-free, at
// the tail of their origin node's free list, waking allocation
// waiters. It returns how many came back.
func (p *Phys) Online(n int) int { return p.onlineTo(-1, n) }

// OnlineNode brings back up to n hot-unplugged frames whose origin is
// node k (a per-node replug).
func (p *Phys) OnlineNode(k, n int) int { return p.onlineTo(k, n) }

func (p *Phys) onlineTo(node, n int) int {
	taken := 0
	for taken < n && len(p.offlineIDs) > 0 {
		idx := len(p.offlineIDs) - 1
		if node >= 0 {
			for idx >= 0 && p.NodeOf(int(p.offlineIDs[idx])) != node {
				idx--
			}
			if idx < 0 {
				break
			}
		}
		id := p.offlineIDs[idx]
		p.offlineIDs = append(p.offlineIDs[:idx], p.offlineIDs[idx+1:]...)
		f := &p.frames[id]
		// Re-admission must not trust that unplug-time teardown left the
		// frame clean: the PTEs are the source of truth, so any identity
		// or allocated-bitmap bit still attached to an offline frame is
		// drift, and admitting it would let a stale rescue resurrect a
		// dead mapping. Invalidate and scrub before the frame rejoins
		// the pool (the hot-unplug/replug property test cross-checks
		// this against a linear scan).
		if f.Owner != nil {
			f.Owner.FrameInvalidated(f.VPN)
			f.Owner = nil
			f.VPN = 0
			f.Dirty = false
		}
		p.alloc[id>>6] &^= 1 << (uint(id) & 63)
		f.offline = false
		p.pushTail(f, FreedExit)
		p.waiters.WakeOne()
		taken++
	}
	if taken > 0 && p.FreeChanged != nil {
		p.FreeChanged(p.nfree)
	}
	return taken
}

// ValidateFreeLists walks every node's free list and cross-checks it
// against the frame structs, the per-node counters, and the allocated
// bitmap: every listed frame must be free (not offline), recorded on
// this node, correctly back-linked, and clear in the bitmap; the walk
// length must equal the node's counter and the counters must sum to
// the total. kernel.Audit runs this as the per-node invariant pass.
func (p *Phys) ValidateFreeLists() error {
	total := 0
	for k := 0; k < p.nodes; k++ {
		count := 0
		prev := NoFrame
		for id := p.head[k]; id != NoFrame; id = p.frames[id].next {
			f := &p.frames[id]
			if !f.OnFreeList() {
				return fmt.Errorf("mem: node %d free list holds non-free frame %d", k, id)
			}
			if f.offline {
				return fmt.Errorf("mem: node %d free list holds offline frame %d", k, id)
			}
			if int(f.listNode) != k {
				return fmt.Errorf("mem: frame %d on node %d's list but listNode says %d", id, k, f.listNode)
			}
			if f.prev != prev {
				return fmt.Errorf("mem: frame %d back-link %d != %d", id, f.prev, prev)
			}
			if p.FrameAllocated(int(id)) {
				return fmt.Errorf("mem: free frame %d set in allocated bitmap", id)
			}
			prev = id
			count++
			if count > p.nfree {
				return fmt.Errorf("mem: node %d free list longer than total free count %d (cycle?)", k, p.nfree)
			}
		}
		if p.tail[k] != prev {
			return fmt.Errorf("mem: node %d tail %d != last walked frame %d", k, p.tail[k], prev)
		}
		if count != p.nfreeNode[k] {
			return fmt.Errorf("mem: node %d free count %d != %d listed frames", k, p.nfreeNode[k], count)
		}
		total += count
	}
	if total != p.nfree {
		return fmt.Errorf("mem: per-node free counts sum to %d, total says %d", total, p.nfree)
	}
	return nil
}
