// Package mem models physical memory: a fixed pool of page frames and
// the system free list.
//
// The free list preserves the identity of freed pages: a frame freed
// by the paging daemon or by an explicit release remembers which
// address space and virtual page it held until the frame is
// reallocated. A subsequent fault on that virtual page can then
// "rescue" the frame cheaply instead of reading it back from swap —
// the mechanism the paper uses to measure how many pages were freed
// too early (Figure 9). Released pages go to the *tail* of the list,
// "giving pages that were released too early a chance to be rescued"
// (§3.1.2), while allocation takes from the head.
package mem

import (
	"fmt"
	"math/bits"

	"memhogs/internal/sim"
)

// FrameID identifies a physical page frame. NoFrame means "none".
type FrameID int32

// NoFrame is the sentinel for "no frame".
const NoFrame FrameID = -1

// Owner is implemented by address spaces so the physical layer can
// notify the owner when one of its resident pages loses its frame
// (reallocation of a free-listed frame destroys the old identity).
type Owner interface {
	// FrameInvalidated tells the owner that vpn's frame was taken
	// away for good (the page is no longer rescuable).
	FrameInvalidated(vpn int)
	// OwnerName returns a diagnostic name.
	OwnerName() string
	// OwnerID returns a small unique id used in stats maps.
	OwnerID() int
}

// FreeKind says how a frame got onto the free list, for outcome
// accounting.
type FreeKind int8

// Free-list entry origins.
const (
	FreedNone    FreeKind = iota // not on free list
	FreedDaemon                  // stolen by the paging daemon
	FreedRelease                 // freed by an explicit release
	FreedExit                    // owner exited / teardown
)

func (k FreeKind) String() string {
	switch k {
	case FreedDaemon:
		return "daemon"
	case FreedRelease:
		return "release"
	case FreedExit:
		return "exit"
	default:
		return "none"
	}
}

// Frame is one physical page frame. Frames form an intrusive doubly
// linked free list so that free/alloc/rescue are all O(1).
type Frame struct {
	ID    FrameID
	Owner Owner // nil when the frame holds no identifiable page
	VPN   int   // virtual page number within Owner
	Dirty bool

	freeKind   FreeKind
	prev, next FrameID // free-list links, valid when freeKind != FreedNone
	offline    bool    // hot-unplugged: neither free nor allocatable
}

// OnFreeList reports whether the frame is currently on the free list.
func (f *Frame) OnFreeList() bool { return f.freeKind != FreedNone }

// Kind reports how the frame was freed (FreedNone if resident).
func (f *Frame) Kind() FreeKind { return f.freeKind }

// IsOffline reports whether the frame is hot-unplugged.
func (f *Frame) IsOffline() bool { return f.offline }

// Stats tracks free-list outcomes for the paper's Figure 9 and
// Table 3.
type Stats struct {
	FreedByDaemon  int64 // frames placed on free list by the paging daemon
	FreedByRelease int64 // frames placed on free list by explicit release
	FreedByExit    int64
	RescuedDaemon  int64 // daemon-freed frames rescued before reallocation
	RescuedRelease int64 // release-freed frames rescued before reallocation
	Reallocated    int64 // allocations that destroyed a previous identity
	Allocations    int64 // total frame allocations
	AllocWaits     int64 // allocations that had to wait for free memory
	AllocWaitTime  sim.Time
}

// Phys is the physical memory pool.
type Phys struct {
	sim        *sim.Sim
	frames     []Frame
	head, tail FrameID // free list: head = next to allocate
	nfree      int
	offlineIDs []FrameID // hot-unplugged frames, LIFO
	stats      Stats

	// alloc is a packed bitmap with one bit per frame, set while the
	// frame is allocated (neither free-listed nor offline). The paging
	// daemon's clock sweep scans it word-at-a-time instead of walking
	// Frame structs; the frames themselves stay the source of truth
	// (the audit cross-checks the two).
	alloc []uint64

	waiters *sim.Waitq

	// NeedMemory, if non-nil, is invoked whenever free memory drops to
	// or below LowWater or an allocation has to wait. The paging
	// daemon registers its wake-up here.
	NeedMemory func()

	// FreeChanged, if non-nil, is invoked after every change to the
	// free count. The kernel uses it for the threshold-notification
	// shared-page variant (§3.1.1's unexplored alternative).
	FreeChanged func(free int)

	// LowWater is the free-frame count at or below which NeedMemory
	// fires.
	LowWater int
}

// New creates a pool of n frames, all initially free with no identity.
func New(s *sim.Sim, n int) *Phys {
	if n <= 0 {
		panic("mem: pool must have at least one frame")
	}
	p := &Phys{
		sim:     s,
		frames:  make([]Frame, n),
		head:    NoFrame,
		tail:    NoFrame,
		alloc:   make([]uint64, (n+63)/64),
		waiters: sim.NewWaitq("phys.alloc"),
	}
	for i := range p.frames {
		f := &p.frames[i]
		f.ID = FrameID(i)
		p.pushTail(f, FreedExit)
	}
	// Initial fill is not an interesting statistic.
	p.stats = Stats{}
	return p
}

// NumFrames returns the total number of physical frames.
func (p *Phys) NumFrames() int { return len(p.frames) }

// FreeCount returns the current length of the free list.
func (p *Phys) FreeCount() int { return p.nfree }

// Frame returns the frame with the given id.
func (p *Phys) Frame(id FrameID) *Frame { return &p.frames[id] }

// Stats returns a snapshot of the counters.
func (p *Phys) Stats() Stats { return p.stats }

// ResetStats zeroes the counters.
func (p *Phys) ResetStats() { p.stats = Stats{} }

// FrameAllocated reports whether frame i is allocated (neither on the
// free list nor offline), from the packed bitmap.
func (p *Phys) FrameAllocated(i int) bool {
	return p.alloc[i>>6]&(1<<(uint(i)&63)) != 0
}

// NextAllocated returns the index of the first allocated frame at or
// after start, wrapping past the end of the pool, or -1 when no frame
// is allocated. The scan runs word-at-a-time over the packed bitmap.
//
//simvet:hot
func (p *Phys) NextAllocated(start int) int {
	w := start >> 6
	if word := p.alloc[w] &^ (1<<(uint(start)&63) - 1); word != 0 {
		return w<<6 + bits.TrailingZeros64(word)
	}
	for i := w + 1; i < len(p.alloc); i++ {
		if p.alloc[i] != 0 {
			return i<<6 + bits.TrailingZeros64(p.alloc[i])
		}
	}
	for i := 0; i <= w; i++ {
		if p.alloc[i] != 0 {
			return i<<6 + bits.TrailingZeros64(p.alloc[i])
		}
	}
	return -1
}

func (p *Phys) pushTail(f *Frame, kind FreeKind) {
	p.alloc[f.ID>>6] &^= 1 << (uint(f.ID) & 63)
	f.freeKind = kind
	f.prev = p.tail
	f.next = NoFrame
	if p.tail != NoFrame {
		p.frames[p.tail].next = f.ID
	} else {
		p.head = f.ID
	}
	p.tail = f.ID
	p.nfree++
}

func (p *Phys) unlink(f *Frame) {
	p.alloc[f.ID>>6] |= 1 << (uint(f.ID) & 63)
	if f.prev != NoFrame {
		p.frames[f.prev].next = f.next
	} else {
		p.head = f.next
	}
	if f.next != NoFrame {
		p.frames[f.next].prev = f.prev
	} else {
		p.tail = f.prev
	}
	f.freeKind = FreedNone
	f.prev, f.next = NoFrame, NoFrame
	p.nfree--
}

// Alloc takes the oldest frame from the free list, destroying its old
// identity (notifying the previous owner). If the free list is empty
// the calling process blocks until memory is freed; the wait time is
// returned so the caller can account it as resource stall. proc may be
// nil only when free frames are known to exist (it panics otherwise).
func (p *Phys) Alloc(proc *sim.Proc, newOwner Owner, vpn int) (*Frame, sim.Time) {
	var waited sim.Time
	for p.nfree == 0 {
		if proc == nil {
			panic("mem: Alloc with nil proc would block")
		}
		p.stats.AllocWaits++
		if p.NeedMemory != nil {
			p.NeedMemory()
		}
		start := proc.Now()
		p.waiters.Wait(proc)
		waited += proc.Now() - start
	}
	p.stats.AllocWaitTime += waited
	f := &p.frames[p.head]
	p.unlink(f)
	if f.Owner != nil {
		f.Owner.FrameInvalidated(f.VPN)
		p.stats.Reallocated++
	}
	f.Owner = newOwner
	f.VPN = vpn
	f.Dirty = false
	p.stats.Allocations++
	if p.nfree <= p.LowWater && p.NeedMemory != nil {
		p.NeedMemory()
	}
	if p.FreeChanged != nil {
		p.FreeChanged(p.nfree)
	}
	return f, waited
}

// TryAlloc allocates a frame only if one is free, without blocking.
// Used by the prefetch path, which must discard requests rather than
// steal memory when none is free (§3.1.2).
func (p *Phys) TryAlloc(newOwner Owner, vpn int) (*Frame, bool) {
	if p.nfree == 0 {
		return nil, false
	}
	f, _ := p.Alloc(nil, newOwner, vpn)
	return f, true
}

// Free places a frame at the tail of the free list, preserving its
// identity so it can be rescued. kind records who freed it.
func (p *Phys) Free(f *Frame, kind FreeKind) {
	if f.OnFreeList() {
		panic(fmt.Sprintf("mem: double free of frame %d", f.ID))
	}
	if f.offline {
		panic(fmt.Sprintf("mem: free of offline frame %d", f.ID))
	}
	p.pushTail(f, kind)
	switch kind {
	case FreedDaemon:
		p.stats.FreedByDaemon++
	case FreedRelease:
		p.stats.FreedByRelease++
	case FreedExit:
		p.stats.FreedByExit++
	}
	p.waiters.WakeOne()
	if p.FreeChanged != nil {
		p.FreeChanged(p.nfree)
	}
}

// Rescue removes a free-listed frame from the free list and returns it
// to its owner, recording the outcome. The caller must have verified
// that the identity (owner, vpn) still matches.
func (p *Phys) Rescue(f *Frame) {
	switch f.freeKind {
	case FreedDaemon:
		p.stats.RescuedDaemon++
	case FreedRelease:
		p.stats.RescuedRelease++
	case FreedExit:
		// teardown leftovers; not counted
	case FreedNone:
		panic(fmt.Sprintf("mem: rescue of non-free frame %d", f.ID))
	}
	p.unlink(f)
}

// DropIdentity clears a free-listed frame's identity without removing
// it from the free list (used when the owner tears down).
func (p *Phys) DropIdentity(f *Frame) {
	f.Owner = nil
	f.VPN = 0
	f.Dirty = false
}

// OfflineCount returns the number of hot-unplugged frames.
func (p *Phys) OfflineCount() int { return len(p.offlineIDs) }

// Offline hot-unplugs up to n frames, taking them from the head of
// the free list (the oldest identities, which would be reallocated
// next anyway). Only free frames can go offline; the return value is
// how many actually did. Identities are destroyed, so pending rescues
// of those pages become hard faults — exactly the degradation a real
// memory-removal causes.
func (p *Phys) Offline(n int) int {
	taken := 0
	for taken < n && p.nfree > 0 {
		f := &p.frames[p.head]
		p.unlink(f)
		if f.Owner != nil {
			f.Owner.FrameInvalidated(f.VPN)
			f.Owner = nil
		}
		f.VPN = 0
		f.Dirty = false
		f.offline = true
		p.alloc[f.ID>>6] &^= 1 << (uint(f.ID) & 63)
		p.offlineIDs = append(p.offlineIDs, f.ID)
		taken++
	}
	if taken > 0 {
		if p.nfree <= p.LowWater && p.NeedMemory != nil {
			p.NeedMemory()
		}
		if p.FreeChanged != nil {
			p.FreeChanged(p.nfree)
		}
	}
	return taken
}

// Online brings up to n hot-unplugged frames back, identity-free, at
// the tail of the free list, waking allocation waiters. It returns
// how many came back.
func (p *Phys) Online(n int) int {
	taken := 0
	for taken < n && len(p.offlineIDs) > 0 {
		id := p.offlineIDs[len(p.offlineIDs)-1]
		p.offlineIDs = p.offlineIDs[:len(p.offlineIDs)-1]
		f := &p.frames[id]
		f.offline = false
		p.pushTail(f, FreedExit)
		p.waiters.WakeOne()
		taken++
	}
	if taken > 0 && p.FreeChanged != nil {
		p.FreeChanged(p.nfree)
	}
	return taken
}
