package mem

import (
	"testing"
	"testing/quick"

	"memhogs/internal/sim"
)

type fakeOwner struct {
	name        string
	id          int
	invalidated []int
}

func (o *fakeOwner) FrameInvalidated(vpn int) { o.invalidated = append(o.invalidated, vpn) }
func (o *fakeOwner) OwnerName() string        { return o.name }
func (o *fakeOwner) OwnerID() int             { return o.id }

func TestAllFramesInitiallyFree(t *testing.T) {
	s := sim.New()
	p := New(s, 16)
	if p.FreeCount() != 16 {
		t.Fatalf("FreeCount = %d, want 16", p.FreeCount())
	}
	if p.NumFrames() != 16 {
		t.Fatalf("NumFrames = %d, want 16", p.NumFrames())
	}
}

func TestAllocFIFOFromHead(t *testing.T) {
	s := sim.New()
	p := New(s, 4)
	o := &fakeOwner{name: "o"}
	f0, _ := p.Alloc(nil, o, 0)
	f1, _ := p.Alloc(nil, o, 1)
	if f0.ID != 0 || f1.ID != 1 {
		t.Fatalf("allocation order %d,%d; want 0,1", f0.ID, f1.ID)
	}
	// Free f0, then f1: they go to the tail, so the next alloc takes
	// frame 2 (still at the head), not the just-freed ones.
	p.Free(f0, FreedRelease)
	f2, _ := p.Alloc(nil, o, 2)
	if f2.ID != 2 {
		t.Fatalf("expected frame 2 from head, got %d", f2.ID)
	}
}

func TestFreePreservesIdentityUntilRealloc(t *testing.T) {
	s := sim.New()
	p := New(s, 2)
	o := &fakeOwner{name: "o"}
	f, _ := p.Alloc(nil, o, 42)
	p.Free(f, FreedDaemon)
	if f.Owner != o || f.VPN != 42 {
		t.Fatal("identity lost on free")
	}
	// Drain the other free frame, then realloc destroys the identity.
	p.Alloc(nil, o, 1)
	f2, _ := p.Alloc(nil, o, 99)
	if f2 != f {
		t.Fatalf("expected reallocation of frame %d", f.ID)
	}
	if len(o.invalidated) != 1 || o.invalidated[0] != 42 {
		t.Fatalf("owner not notified of invalidation: %v", o.invalidated)
	}
}

func TestRescueOutcomeCounting(t *testing.T) {
	s := sim.New()
	p := New(s, 4)
	o := &fakeOwner{name: "o"}
	fd, _ := p.Alloc(nil, o, 1)
	fr, _ := p.Alloc(nil, o, 2)
	p.Free(fd, FreedDaemon)
	p.Free(fr, FreedRelease)
	p.Rescue(fd)
	p.Rescue(fr)
	st := p.Stats()
	if st.RescuedDaemon != 1 || st.RescuedRelease != 1 {
		t.Fatalf("rescue stats = %+v", st)
	}
	if st.FreedByDaemon != 1 || st.FreedByRelease != 1 {
		t.Fatalf("freed stats = %+v", st)
	}
	if fd.OnFreeList() || fr.OnFreeList() {
		t.Fatal("rescued frames still on free list")
	}
}

func TestDoubleFreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	s := sim.New()
	p := New(s, 2)
	o := &fakeOwner{name: "o"}
	f, _ := p.Alloc(nil, o, 0)
	p.Free(f, FreedRelease)
	p.Free(f, FreedRelease)
}

func TestAllocBlocksUntilFree(t *testing.T) {
	s := sim.New()
	p := New(s, 1)
	o := &fakeOwner{name: "o"}
	f, _ := p.Alloc(nil, o, 0)

	var gotAt sim.Time
	var waited sim.Time
	s.Spawn("waiter", func(proc *sim.Proc) {
		_, w := p.Alloc(proc, o, 1)
		gotAt = proc.Now()
		waited = w
	})
	s.At(5*sim.Millisecond, func() { p.Free(f, FreedRelease) })
	s.Run(0)
	if gotAt != 5*sim.Millisecond {
		t.Fatalf("alloc completed at %v, want 5ms", gotAt)
	}
	if waited != 5*sim.Millisecond {
		t.Fatalf("reported wait %v, want 5ms", waited)
	}
	if p.Stats().AllocWaits != 1 {
		t.Fatalf("AllocWaits = %d, want 1", p.Stats().AllocWaits)
	}
}

func TestNeedMemoryFiresAtLowWater(t *testing.T) {
	s := sim.New()
	p := New(s, 4)
	p.LowWater = 2
	kicks := 0
	p.NeedMemory = func(int) { kicks++ }
	o := &fakeOwner{name: "o"}
	p.Alloc(nil, o, 0) // free 3 > 2: no kick
	if kicks != 0 {
		t.Fatalf("kicked too early: %d", kicks)
	}
	p.Alloc(nil, o, 1) // free 2 <= 2: kick
	if kicks != 1 {
		t.Fatalf("kicks = %d, want 1", kicks)
	}
}

func TestTryAllocDoesNotBlock(t *testing.T) {
	s := sim.New()
	p := New(s, 1)
	o := &fakeOwner{name: "o"}
	if _, ok := p.TryAlloc(o, 0); !ok {
		t.Fatal("TryAlloc failed with a free frame")
	}
	if _, ok := p.TryAlloc(o, 1); ok {
		t.Fatal("TryAlloc succeeded with no free frames")
	}
}

// TestFreeListInvariant property-checks that any sequence of
// alloc/free/rescue operations preserves the free-list invariants:
// FreeCount matches the number of frames marked free, every resident
// frame is reachable by its owner, and no frame is lost.
func TestFreeListInvariant(t *testing.T) {
	o := &fakeOwner{name: "o"}
	check := func(ops []uint8) bool {
		s := sim.New()
		p := New(s, 8)
		var held []*Frame
		for _, op := range ops {
			switch op % 3 {
			case 0: // alloc
				if f, ok := p.TryAlloc(o, int(op)); ok {
					held = append(held, f)
				}
			case 1: // free
				if len(held) > 0 {
					f := held[len(held)-1]
					held = held[:len(held)-1]
					p.Free(f, FreedRelease)
				}
			case 2: // rescue the most recently freed frame, if any
				var newest *Frame
				for i := 0; i < p.NumFrames(); i++ {
					f := p.Frame(FrameID(i))
					if f.OnFreeList() && f.Kind() == FreedRelease {
						newest = f
					}
				}
				if newest != nil {
					p.Rescue(newest)
					held = append(held, newest)
				}
			}
		}
		// Invariant: held + free = all frames, and the free-list count
		// matches the per-frame flags.
		freeFlags := 0
		for i := 0; i < p.NumFrames(); i++ {
			if p.Frame(FrameID(i)).OnFreeList() {
				freeFlags++
			}
		}
		return freeFlags == p.FreeCount() && len(held)+p.FreeCount() == p.NumFrames()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOfflineOnlineRoundTrip(t *testing.T) {
	s := sim.New()
	p := New(s, 16)
	if got := p.Offline(4); got != 4 {
		t.Fatalf("Offline(4) = %d", got)
	}
	if p.FreeCount() != 12 || p.OfflineCount() != 4 {
		t.Fatalf("free %d offline %d, want 12/4", p.FreeCount(), p.OfflineCount())
	}
	offline := 0
	for i := 0; i < p.NumFrames(); i++ {
		f := p.Frame(FrameID(i))
		if f.IsOffline() {
			offline++
			if f.OnFreeList() {
				t.Fatalf("offline frame %d still on free list", f.ID)
			}
			if f.Owner != nil {
				t.Fatalf("offline frame %d retains an owner", f.ID)
			}
		}
	}
	if offline != 4 {
		t.Fatalf("%d frames flagged offline, want 4", offline)
	}
	if got := p.Online(4); got != 4 {
		t.Fatalf("Online(4) = %d", got)
	}
	if p.FreeCount() != 16 || p.OfflineCount() != 0 {
		t.Fatalf("after online: free %d offline %d, want 16/0", p.FreeCount(), p.OfflineCount())
	}
}

func TestOfflineLimitedByFreeFrames(t *testing.T) {
	s := sim.New()
	p := New(s, 4)
	o := &fakeOwner{name: "o"}
	p.Alloc(nil, o, 0)
	p.Alloc(nil, o, 1)
	p.Alloc(nil, o, 2)
	if got := p.Offline(10); got != 1 {
		t.Fatalf("Offline(10) with one free frame = %d, want 1", got)
	}
	// Bringing back more than was taken returns only what is offline.
	if got := p.Online(10); got != 1 {
		t.Fatalf("Online(10) = %d, want 1", got)
	}
}

func TestOfflineDestroysIdentity(t *testing.T) {
	s := sim.New()
	p := New(s, 2)
	o := &fakeOwner{name: "o"}
	f, _ := p.Alloc(nil, o, 42)
	p.Free(f, FreedDaemon) // rescuable: identity retained on the free list
	p.Alloc(nil, o, 1)     // consume the other frame so f is next
	if got := p.Offline(1); got != 1 {
		t.Fatalf("Offline(1) = %d", got)
	}
	if !f.IsOffline() {
		t.Fatal("freed frame not taken offline")
	}
	if len(o.invalidated) != 1 || o.invalidated[0] != 42 {
		t.Fatalf("owner not told its rescuable page died: %v", o.invalidated)
	}
}

func TestOnlineWakesBlockedAllocator(t *testing.T) {
	s := sim.New()
	p := New(s, 2)
	o := &fakeOwner{name: "o"}
	p.Offline(2)

	var gotAt sim.Time
	s.Spawn("waiter", func(proc *sim.Proc) {
		p.Alloc(proc, o, 0)
		gotAt = proc.Now()
	})
	s.At(5*sim.Millisecond, func() { p.Online(1) })
	s.Run(0)
	if gotAt != 5*sim.Millisecond {
		t.Fatalf("alloc completed at %v, want 5ms (hot-plug wake)", gotAt)
	}
}

func TestFreeOfflineFramePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("freeing an offline frame did not panic")
		}
	}()
	s := sim.New()
	p := New(s, 1)
	p.Offline(1)
	p.Free(p.Frame(0), FreedRelease)
}

func TestOfflineKicksDaemonAtLowWater(t *testing.T) {
	s := sim.New()
	p := New(s, 8)
	p.LowWater = 4
	kicks := 0
	p.NeedMemory = func(int) { kicks++ }
	p.Offline(3) // free 5 > 4: no kick
	if kicks != 0 {
		t.Fatalf("kicked too early: %d", kicks)
	}
	p.Offline(1) // free 4 <= 4: kick
	if kicks != 1 {
		t.Fatalf("kicks = %d, want 1", kicks)
	}
}

func TestFreeKindString(t *testing.T) {
	for k, want := range map[FreeKind]string{
		FreedNone: "none", FreedDaemon: "daemon", FreedRelease: "release", FreedExit: "exit",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

// refNextAllocated is a straight per-frame reference for the bitmap
// scan: first frame at or after start (cyclically) that is neither
// free-listed nor offline.
func refNextAllocated(p *Phys, start int) int {
	n := p.NumFrames()
	for k := 0; k < n; k++ {
		i := (start + k) % n
		f := p.Frame(FrameID(i))
		if !f.OnFreeList() && !f.IsOffline() {
			return i
		}
	}
	return -1
}

func TestAllocBitmapTracksFrameState(t *testing.T) {
	// Drive the pool through a random mix of alloc/free/offline/online
	// and cross-check the packed bitmap against the frame structs (the
	// source of truth) plus NextAllocated against a linear scan, at
	// every step. 130 frames spans three bitmap words, so word
	// boundaries and the wrap-around both get exercised.
	s := sim.New()
	p := New(s, 130)
	o := &fakeOwner{name: "o"}
	var held []*Frame
	rng := uint64(42)
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}
	for step := 0; step < 2000; step++ {
		switch next(5) {
		case 0, 1:
			if p.FreeCount() > 0 {
				f, _ := p.Alloc(nil, o, step)
				held = append(held, f)
			}
		case 2:
			if len(held) > 0 {
				i := next(len(held))
				p.Free(held[i], FreedRelease)
				held = append(held[:i], held[i+1:]...)
			}
		case 3:
			p.Offline(1 + next(3))
		case 4:
			p.Online(1 + next(3))
		}
		for i := 0; i < p.NumFrames(); i++ {
			f := p.Frame(FrameID(i))
			want := !f.OnFreeList() && !f.IsOffline()
			if p.FrameAllocated(i) != want {
				t.Fatalf("step %d: frame %d bitmap %v, frame state %v",
					step, i, p.FrameAllocated(i), want)
			}
		}
		start := next(p.NumFrames())
		if got, want := p.NextAllocated(start), refNextAllocated(p, start); got != want {
			t.Fatalf("step %d: NextAllocated(%d) = %d, reference scan = %d", step, start, got, want)
		}
	}
}

// refNextAllocatedIn is the per-frame reference for the region-scoped
// scan: first allocated frame at or after start within [base, limit),
// wrapping at limit back to base.
func refNextAllocatedIn(p *Phys, start, base, limit int) int {
	n := limit - base
	for k := 0; k < n; k++ {
		i := base + (start-base+k)%n
		f := p.Frame(FrameID(i))
		if !f.OnFreeList() && !f.IsOffline() {
			return i
		}
	}
	return -1
}

func TestHotUnplugReplugShardedConsistency(t *testing.T) {
	// Hot-unplug/replug cycles on a sharded pool — scoped to one node
	// and whole-machine — must keep the per-node free lists, the packed
	// allocation bitmap, and both scan primitives consistent with the
	// frame structs (the PTE-facing source of truth) after every
	// operation. Online re-admits frames that unplug-time teardown
	// already scrubbed; this is the regression net for re-admission
	// trusting stale identity or a stale bitmap bit.
	s := sim.New()
	const frames, nodes = 130, 3
	p := NewSharded(s, frames, nodes)
	o := &fakeOwner{name: "o"}
	var held []*Frame
	rng := uint64(99)
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}
	for step := 0; step < 3000; step++ {
		switch next(6) {
		case 0, 1:
			if p.FreeCount() > 0 {
				f, _ := p.Alloc(nil, o, step)
				held = append(held, f)
			}
		case 2:
			if len(held) > 0 {
				i := next(len(held))
				p.Free(held[i], FreedRelease)
				held = append(held[:i], held[i+1:]...)
			}
		case 3:
			p.OfflineNode(next(nodes), 1+next(5))
		case 4:
			p.OnlineNode(next(nodes), 1+next(5))
		case 5:
			if next(2) == 0 {
				p.Offline(1 + next(5))
			} else {
				p.Online(1 + next(5))
			}
		}
		if err := p.ValidateFreeLists(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		for i := 0; i < p.NumFrames(); i++ {
			f := p.Frame(FrameID(i))
			want := !f.OnFreeList() && !f.IsOffline()
			if p.FrameAllocated(i) != want {
				t.Fatalf("step %d: frame %d bitmap %v, frame state %v",
					step, i, p.FrameAllocated(i), want)
			}
			if f.IsOffline() && f.Owner != nil {
				t.Fatalf("step %d: offline frame %d retains identity", step, i)
			}
		}
		start := next(p.NumFrames())
		if got, want := p.NextAllocated(start), refNextAllocated(p, start); got != want {
			t.Fatalf("step %d: NextAllocated(%d) = %d, reference scan = %d", step, start, got, want)
		}
		node := next(nodes)
		base, limit := p.NodeRange(node)
		nstart := base + next(limit-base)
		if got, want := p.NextAllocatedIn(nstart, base, limit), refNextAllocatedIn(p, nstart, base, limit); got != want {
			t.Fatalf("step %d: NextAllocatedIn(%d, %d, %d) = %d, reference scan = %d",
				step, nstart, base, limit, got, want)
		}
	}
}
