// Package memtest is the property-testing harness for the memory
// tiers: it drives randomized demote/promote/release/fault sequences
// against a real kernel.System with a far tier, checks after every
// step that each page lives in exactly one of {DRAM, far, swap, gone},
// that contents (modeled by the dirty bit) survive demote→promote
// round-trips, and that the per-tier counters reconcile with
// kernel.Audit — and shrinks a failing sequence to a minimal one whose
// replay call can be pasted straight into a test.
package memtest

import (
	"fmt"
	"strconv"
	"strings"

	"memhogs/internal/kernel"
	"memhogs/internal/mem"
	"memhogs/internal/sim"
	"memhogs/internal/vm"
)

// NumPages is the harness address-space size: larger than DRAM so
// touches evict, with room for every page to move tiers.
const NumPages = 48

// DRAMPages and FarPages split the harness machine: a tight DRAM so
// the paging daemon interleaves with the sequence, and a far tier
// small enough that demotions hit DemoteFull.
const (
	DRAMPages = 32
	FarPages  = 8
)

// Op is one step of a randomized tier exercise.
type Op struct {
	Kind byte // 't' touch, 'w' write-touch, 'p' prefetch, 'd' demote, 'r' release, 'q' queued release
	VPN  int
	Prio int // eq. 2 reuse priority, 'q' only
}

// String renders the op in the compact form ParseOps reads: "t3",
// "q4:2".
func (o Op) String() string {
	if o.Kind == 'q' {
		return fmt.Sprintf("q%d:%d", o.VPN, o.Prio)
	}
	return fmt.Sprintf("%c%d", o.Kind, o.VPN)
}

// OpsString renders a sequence as a space-separated pasteable string.
func OpsString(ops []Op) string {
	parts := make([]string, len(ops))
	for i, o := range ops {
		parts[i] = o.String()
	}
	return strings.Join(parts, " ")
}

// ParseOps is the inverse of OpsString, for replaying a shrunk repro.
func ParseOps(s string) ([]Op, error) {
	var ops []Op
	for _, tok := range strings.Fields(s) {
		if len(tok) < 2 {
			return nil, fmt.Errorf("memtest: bad op %q", tok)
		}
		op := Op{Kind: tok[0]}
		body := tok[1:]
		switch op.Kind {
		case 't', 'w', 'p', 'd', 'r':
			n, err := strconv.Atoi(body)
			if err != nil {
				return nil, fmt.Errorf("memtest: bad op %q: %v", tok, err)
			}
			op.VPN = n
		case 'q':
			vp, pr, ok := strings.Cut(body, ":")
			if !ok {
				return nil, fmt.Errorf("memtest: bad op %q: want q<vpn>:<prio>", tok)
			}
			var err error
			if op.VPN, err = strconv.Atoi(vp); err != nil {
				return nil, fmt.Errorf("memtest: bad op %q: %v", tok, err)
			}
			if op.Prio, err = strconv.Atoi(pr); err != nil {
				return nil, fmt.Errorf("memtest: bad op %q: %v", tok, err)
			}
		default:
			return nil, fmt.Errorf("memtest: unknown op kind %q", tok)
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// RandomOps derives a reproducible sequence from seed: touch-heavy so
// pages are resident when the demote/release ops land, with queued
// releases carrying mixed priorities so both the far and swap arms of
// the releaser's decision run. Equal seeds give equal sequences.
func RandomOps(seed uint64, n int) []Op {
	rng := sim.NewRand(sim.Hash64(seed) + 1)
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		op := Op{VPN: rng.Intn(NumPages)}
		switch r := rng.Intn(10); {
		case r < 3:
			op.Kind = 't'
		case r < 5:
			op.Kind = 'w'
		case r < 7:
			op.Kind = 'q'
			op.Prio = rng.Intn(4)
		case r < 8:
			op.Kind = 'd'
		case r < 9:
			op.Kind = 'r'
		default:
			op.Kind = 'p'
		}
		ops = append(ops, op)
	}
	return ops
}

// Run replays ops against a fresh far-tiered system and returns the
// far tier's traffic stats next to the first invariant violation (nil
// for a clean pass). Runs are a pure function of ops — the harness is
// deterministic, so a failure shrinks and replays exactly.
func Run(ops []Op) (mem.FarStats, error) {
	cfg := kernel.TestConfig()
	cfg.UserMemPages = DRAMPages
	cfg.Far.Pages = FarPages
	sys := kernel.NewSystem(cfg)
	proc := sys.NewProcess("memtest", NumPages)
	as := proc.AS
	rel := proc.HomeReleaser()

	var failure error
	fail := func(i int, format string, args ...any) bool {
		if failure == nil {
			failure = fmt.Errorf("op %d (%s): %s", i, ops[i], fmt.Sprintf(format, args...))
		}
		return true
	}
	// frameDirty reads the modeled "contents" of a DRAM-resident page.
	frameDirty := func(vpn int) bool {
		return as.Phys().Frame(as.PTE(vpn).Frame).Dirty
	}

	proc.Start(true, func(th *kernel.Thread) {
		p := th.Proc()
		for i, op := range ops {
			pte := as.PTE(op.VPN)
			// Contents-survival bookkeeping: remember the dirty bit of
			// the page we are about to move, so the round-trip check
			// below can compare it on the far side of the transition.
			wasFar := pte.FarSlot != mem.NoFarSlot
			var movedDirty bool
			if wasFar {
				movedDirty = sys.Far.Slot(pte.FarSlot).Dirty
			} else if pte.Present && !pte.Busy {
				movedDirty = frameDirty(op.VPN)
			}

			switch op.Kind {
			case 't', 'w':
				write := op.Kind == 'w'
				out := th.Touch(op.VPN, write)
				if wasFar {
					if out != vm.FarFault {
						fail(i, "touch of far-resident page = %v, want far fault", out)
						return
					}
					// Demote→promote round-trip: the promoted frame
					// must carry the slot's dirty bit (plus this
					// touch's own write).
					if got, want := frameDirty(op.VPN), movedDirty || write; got != want {
						fail(i, "promoted frame dirty = %v, want %v — contents lost in round-trip", got, want)
						return
					}
				}
			case 'p':
				res := as.Prefetch(th.Exec(), op.VPN)
				if res == vm.PrefetchPromoted {
					if !wasFar {
						fail(i, "prefetch promoted a page that was not far-resident")
						return
					}
					if got := frameDirty(op.VPN); got != movedDirty {
						fail(i, "prefetch-promoted frame dirty = %v, want %v", got, movedDirty)
						return
					}
				}
			case 'd':
				as.Memlock.Acquire(p)
				as.InvalidateForRelease(op.VPN)
				demoted, dirty := as.TryDemote(op.VPN)
				if demoted {
					slot := sys.Far.Slot(as.PTE(op.VPN).FarSlot)
					if slot.Dirty != dirty || dirty != movedDirty {
						as.Memlock.Release(p)
						fail(i, "demoted slot dirty = %v, TryDemote said %v, frame had %v", slot.Dirty, dirty, movedDirty)
						return
					}
					if slot.VPN != op.VPN || slot.Owner != mem.Owner(as) {
						as.Memlock.Release(p)
						fail(i, "demoted slot identity %s/%d, want %s/%d", slot.Owner.OwnerName(), slot.VPN, as.OwnerName(), op.VPN)
						return
					}
				}
				as.Memlock.Release(p)
			case 'r':
				as.Memlock.Acquire(p)
				as.InvalidateForRelease(op.VPN)
				as.TryReclaim(op.VPN, mem.FreedRelease)
				as.Memlock.Release(p)
			case 'q':
				// The real release path: the PM invalidates, enqueues
				// with the page's priority, and the releaser decides
				// the tier. Sleep lets the releaser drain so the
				// post-op invariants see the settled state.
				as.Memlock.Acquire(p)
				as.InvalidateForRelease(op.VPN)
				as.Memlock.Release(p)
				rel.Enqueue(as, []int{op.VPN}, []int{op.Prio})
				th.SleepIdle(sim.Millisecond)
			}

			// Exactly-one-tier, counters, free lists, slot backrefs —
			// the kernel audit checks all of it after every op.
			if err := sys.Audit(); err != nil {
				fail(i, "audit: %v", err)
				return
			}
		}
	})
	sys.Run(0)
	fs := sys.Far.Stats()
	if failure != nil {
		return fs, failure
	}
	if err := sys.Audit(); err != nil {
		return fs, fmt.Errorf("final audit: %v", err)
	}
	// Per-tier counters must reconcile three ways: PTE scan, the AS
	// counter, and the tier's own occupancy/stats.
	farPTEs := 0
	for vpn := 0; vpn < NumPages; vpn++ {
		pte := as.PTE(vpn)
		if pte.FarSlot != mem.NoFarSlot {
			farPTEs++
			if pte.Present {
				return fs, fmt.Errorf("vpn %d resident in both DRAM and the far tier", vpn)
			}
		}
	}
	if farPTEs != as.FarResident {
		return fs, fmt.Errorf("%d far-slot PTEs, FarResident counter says %d", farPTEs, as.FarResident)
	}
	if used := sys.Far.UsedCount(); used != farPTEs {
		return fs, fmt.Errorf("far tier holds %d slots, %d PTEs point into it", used, farPTEs)
	}
	if live := fs.Demotions - fs.Promotions; live != int64(farPTEs) {
		return fs, fmt.Errorf("far demotions %d - promotions %d = %d, but %d pages are far-resident",
			fs.Demotions, fs.Promotions, live, farPTEs)
	}
	return fs, nil
}

// Shrink greedily minimizes a failing sequence: any single op whose
// removal keeps the sequence failing is dropped, until no removal
// does. fails must be deterministic (Run is).
func Shrink(ops []Op, fails func([]Op) bool) []Op {
	for {
		shrunk := false
		for i := range ops {
			cand := make([]Op, 0, len(ops)-1)
			cand = append(cand, ops[:i]...)
			cand = append(cand, ops[i+1:]...)
			if fails(cand) {
				ops, shrunk = cand, true
				break
			}
		}
		if !shrunk {
			return ops
		}
	}
}

// Repro renders the exact harness call that replays a failure.
func Repro(ops []Op) string {
	return fmt.Sprintf("memtest.Run(memtest.MustParseOps(%q))", OpsString(ops))
}

// MustParseOps is ParseOps for pasted repro strings known to be valid.
func MustParseOps(s string) []Op {
	ops, err := ParseOps(s)
	if err != nil {
		panic(err)
	}
	return ops
}
