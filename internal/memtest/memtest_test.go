package memtest

import (
	"testing"
)

func fails(cand []Op) bool {
	_, err := Run(cand)
	return err != nil
}

// TestTierInvariants is the tier property test: randomized
// demote/promote/release/fault sequences against a real far-tiered
// system, auditing after every op. A failing seed is greedily shrunk
// to a minimal op sequence and reported as a pasteable repro. The
// accumulated far-tier traffic across the seed set must be nonzero in
// every direction, or the property was never exercised.
func TestTierInvariants(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	var demotions, promotions, full int64
	for seed := uint64(0); seed < uint64(seeds); seed++ {
		ops := RandomOps(seed, 120)
		fs, err := Run(ops)
		demotions += fs.Demotions
		promotions += fs.Promotions
		full += fs.DemoteFull
		if err == nil {
			continue
		}
		min := Shrink(ops, fails)
		_, minErr := Run(min)
		t.Fatalf("seed %d: %v\nshrunk to %d ops (from %d): %v\nrepro: %s",
			seed, err, len(min), len(ops), minErr, Repro(min))
	}
	if demotions == 0 || promotions == 0 || full == 0 {
		t.Fatalf("vacuous seed set: %d demotions, %d promotions, %d tier-full rejections",
			demotions, promotions, full)
	}
}

// TestTierRoundTripDirty pins one concrete contents-survival case:
// write (dirty), queued release at priority 3 (demotes dirty), touch
// (promotes, dirty bit must come back). The harness's in-sequence
// checks fail the Run if the bit is lost.
func TestTierRoundTripDirty(t *testing.T) {
	fs, err := Run(MustParseOps("w5 q5:3 t5"))
	if err != nil {
		t.Fatal(err)
	}
	if fs.Demotions != 1 || fs.Promotions != 1 {
		t.Fatalf("round-trip ran %d demotions / %d promotions, want 1/1", fs.Demotions, fs.Promotions)
	}
	// Priority 0 must NOT demote: the page goes to swap and the next
	// touch is a disk fault, not a far hit.
	fs, err = Run(MustParseOps("w5 q5:0 t5"))
	if err != nil {
		t.Fatal(err)
	}
	if fs.Demotions != 0 {
		t.Fatalf("priority-0 release demoted %d pages, want 0", fs.Demotions)
	}
}

// TestOpsStringRoundTrip pins the repro encoding: parse(render(ops))
// must be identity, so a shrunk failure replays exactly.
func TestOpsStringRoundTrip(t *testing.T) {
	ops := RandomOps(3, 50)
	parsed, err := ParseOps(OpsString(ops))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(ops) {
		t.Fatalf("round-trip length %d, want %d", len(parsed), len(ops))
	}
	for i := range ops {
		if parsed[i] != ops[i] {
			t.Fatalf("op %d round-trips to %v, want %v", i, parsed[i], ops[i])
		}
	}
	if _, err := ParseOps("z9"); err == nil {
		t.Fatal("unknown op kind parsed without error")
	}
	if _, err := ParseOps("q5"); err == nil {
		t.Fatal("queued release without priority parsed without error")
	}
}

// TestShrinkMinimizes checks the shrinker on a synthetic predicate:
// failure iff the sequence still contains both a demote of page 1 and
// a touch of page 2 — the minimal failing sequence is exactly those
// two ops, in order.
func TestShrinkMinimizes(t *testing.T) {
	ops := MustParseOps("t0 d1 w3 t2 p4 q5:1")
	fails := func(cand []Op) bool {
		var d, to bool
		for _, op := range cand {
			if op.Kind == 'd' && op.VPN == 1 {
				d = true
			}
			if op.Kind == 't' && op.VPN == 2 {
				to = true
			}
		}
		return d && to
	}
	min := Shrink(ops, fails)
	if got := OpsString(min); got != "d1 t2" {
		t.Fatalf("shrunk to %q, want \"d1 t2\"", got)
	}
}
