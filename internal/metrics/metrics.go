// Package metrics provides the plain-text table and series formatting
// used to render the paper's tables and figures from experiment
// results.
package metrics

import (
	"fmt"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
	notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// AddNote appends a footnote line printed under the table.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table. Rows may be ragged: a row with more cells
// than there are headers gets the extra columns rendered under empty
// headings rather than panicking.
func (t *Table) String() string {
	ncols := len(t.Headers)
	for _, r := range t.rows {
		if len(r) > ncols {
			ncols = len(r)
		}
	}
	widths := make([]int, ncols)
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	for _, n := range t.notes {
		b.WriteString(n)
		b.WriteString("\n")
	}
	return b.String()
}

// Bar renders a proportional ASCII bar of the given width fraction
// (0..1 of maxWidth characters).
func Bar(frac float64, maxWidth int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(maxWidth) + 0.5)
	return strings.Repeat("#", n)
}

// StackedBar renders segments proportional to their values against
// total, using one rune per segment type. Segment widths use
// largest-remainder rounding: each segment gets the floor of its exact
// width, and the leftover cells (so the bar totals the rounded overall
// length) go to the segments with the largest fractional parts, ties
// broken toward earlier segments. Flooring alone shaved up to one cell
// off every segment, so a bar of many small segments could render
// visibly shorter than a single segment of the same total.
func StackedBar(values []float64, runes []rune, total float64, maxWidth int) string {
	if total <= 0 {
		return ""
	}
	n := make([]int, len(values))
	frac := make([]float64, len(values))
	cells, sum := 0, 0.0
	for i, v := range values {
		if v < 0 {
			v = 0
		}
		exact := v / total * float64(maxWidth)
		n[i] = int(exact)
		frac[i] = exact - float64(n[i])
		cells += n[i]
		sum += exact
	}
	for extra := int(sum + 0.5); cells < extra; cells++ {
		best := -1
		for i, f := range frac {
			if best < 0 || f > frac[best] {
				best = i
			}
		}
		n[best]++
		frac[best] = -1
	}
	var b strings.Builder
	for i := range values {
		r := '?'
		if i < len(runes) {
			r = runes[i]
		}
		for j := 0; j < n[i]; j++ {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Pct formats a ratio as a percentage string.
func Pct(num, den float64) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*num/den)
}

// Ratio formats a normalized value like "3.42x".
func Ratio(num, den float64) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", num/den)
}

// MB formats a byte count in megabytes.
func MB(bytes int64) string {
	return fmt.Sprintf("%.1f MB", float64(bytes)/(1<<20))
}
