package metrics

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tbl := NewTable("title", "name", "value")
	tbl.AddRow("short", 1)
	tbl.AddRow("a-much-longer-name", 23456)
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "title" {
		t.Errorf("title line = %q", lines[0])
	}
	// All data lines share the same width for column one.
	header := lines[1]
	if !strings.HasPrefix(header, "name") {
		t.Errorf("header = %q", header)
	}
	idx := strings.Index(lines[3], "1")
	idx2 := strings.Index(lines[4], "23456")
	if idx != idx2 {
		t.Errorf("columns misaligned: %d vs %d\n%s", idx, idx2, out)
	}
}

func TestTableNotesAndCounts(t *testing.T) {
	tbl := NewTable("t", "a")
	tbl.AddRow("x")
	tbl.AddNote("note %d", 7)
	if tbl.NumRows() != 1 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	if !strings.Contains(tbl.String(), "note 7") {
		t.Fatal("note missing")
	}
}

func TestTableRaggedRow(t *testing.T) {
	// A row with more cells than headers must render (not panic), with
	// the extra cells laid out as additional columns.
	tbl := NewTable("t", "a", "b")
	tbl.AddRow("x", "y", "overflow-cell")
	tbl.AddRow("p")
	out := tbl.String()
	if !strings.Contains(out, "overflow-cell") {
		t.Fatalf("extra cell missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if got := len(lines); got != 5 { // title, header, sep, 2 rows
		t.Fatalf("lines = %d:\n%s", got, out)
	}
}

func TestFloatFormatting(t *testing.T) {
	tbl := NewTable("", "v")
	tbl.AddRow(3.14159)
	if !strings.Contains(tbl.String(), "3.14") {
		t.Fatalf("float not formatted: %s", tbl.String())
	}
}

func TestBar(t *testing.T) {
	if Bar(0.5, 10) != "#####" {
		t.Errorf("Bar(0.5,10) = %q", Bar(0.5, 10))
	}
	if Bar(-1, 10) != "" {
		t.Error("negative fraction not clamped")
	}
	if Bar(2, 4) != "####" {
		t.Error("overflow not clamped")
	}
}

func TestStackedBar(t *testing.T) {
	out := StackedBar([]float64{50, 50}, []rune{'a', 'b'}, 100, 10)
	if out != "aaaaabbbbb" {
		t.Errorf("StackedBar = %q", out)
	}
	if StackedBar([]float64{1}, []rune{'a'}, 0, 10) != "" {
		t.Error("zero total not handled")
	}
}

func TestStackedBarRounding(t *testing.T) {
	// Largest-remainder rounding: {1,2,3}/6 over 10 cells is exactly
	// {1.67, 3.33, 5}; the floors {1,3,5} leave one cell, which goes to
	// the segment with the largest fractional part (the first).
	out := StackedBar([]float64{1, 2, 3}, []rune{'a', 'b', 'c'}, 6, 10)
	if out != "aabbbccccc" {
		t.Errorf("StackedBar = %q, want aabbbccccc", out)
	}
	// The old floor-per-segment code rendered many small equal segments
	// one cell short each; the bar must still total ~maxWidth.
	out = StackedBar([]float64{1, 1, 1, 1, 1, 1, 1}, []rune("abcdefg"), 7, 10)
	if len(out) != 10 {
		t.Errorf("bar length = %d (%q), want 10", len(out), out)
	}
	// Ties in fractional part break toward earlier segments.
	out = StackedBar([]float64{1, 1}, []rune{'a', 'b'}, 2, 5)
	if out != "aaabb" {
		t.Errorf("tie break = %q, want aaabb", out)
	}
}

func TestPctRatioMB(t *testing.T) {
	if Pct(1, 4) != "25.0%" {
		t.Errorf("Pct = %q", Pct(1, 4))
	}
	if Pct(1, 0) != "n/a" {
		t.Error("Pct zero-den")
	}
	if Ratio(3, 2) != "1.50x" {
		t.Errorf("Ratio = %q", Ratio(3, 2))
	}
	if Ratio(1, 0) != "n/a" {
		t.Error("Ratio zero-den")
	}
	if MB(75<<20) != "75.0 MB" {
		t.Errorf("MB = %q", MB(75<<20))
	}
}
