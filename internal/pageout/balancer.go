package pageout

import (
	"strconv"

	"memhogs/internal/events"
	"memhogs/internal/mem"
	"memhogs/internal/sim"
	"memhogs/internal/vm"
)

// BalancerStats counts inter-node free-frame migrations.
type BalancerStats struct {
	Activations int64 // times the balancer found work
	Migrations  int64 // batches moved
	FramesMoved int64 // free frames moved between nodes
}

// Balancer is the inter-node free-memory balancer for a sharded pool:
// when one node's free list falls to its low-water mark while another
// node sits above the steal target, it migrates a batch of free
// frames (identities preserved — a loaned frame stays rescuable) from
// the rich node's head to the poor node's tail. Allocation-time
// stealing still covers the fully-exhausted case; the balancer keeps
// that case rare by smoothing imbalance before allocations hit it.
// The kernel only creates it when the pool has more than one node, so
// single-node runs have no extra process on the sim clock.
type Balancer struct {
	sim  *sim.Sim
	phys *mem.Phys
	exec vm.Exec

	low     int // migrate toward nodes at or below this free count
	target  int // donors must stay above this after giving
	batch   int // frames per migration
	perPage sim.Time

	wake   *sim.Waitq
	kicked bool

	Stats BalancerStats

	// Events is the flight recorder; nil disables recording.
	Events *events.Recorder
}

// balancerBatch bounds one migration so the balancer interleaves with
// the daemons instead of draining a node in one step.
const balancerBatch = 32

// NewBalancer creates the balancer with the per-node daemon
// thresholds: low is the per-node min-free (the wake condition),
// target the per-node desfree (what a donor must keep). perPage is
// the CPU charged per migrated frame.
func NewBalancer(s *sim.Sim, phys *mem.Phys, low, target int, perPage sim.Time) *Balancer {
	return &Balancer{
		sim:     s,
		phys:    phys,
		low:     low,
		target:  target,
		batch:   balancerBatch,
		perPage: perPage,
		wake:    sim.NewWaitq("balancer.wake"),
	}
}

// Kick asks the balancer to check node balance soon. Safe from any
// context; the kernel wires it into mem.Phys.NeedMemory alongside the
// per-node daemon kicks.
func (b *Balancer) Kick() {
	b.kicked = true
	b.wake.WakeOne()
}

// Start launches the balancer process. mk builds the execution
// context (CPU accounting) from its simulated process.
func (b *Balancer) Start(mk func(*sim.Proc) vm.Exec) {
	b.sim.Spawn("balancerd", func(p *sim.Proc) {
		b.exec = mk(p)
		b.loop(p)
	})
}

// plan picks one migration: the poorest node at or below low receives
// from the richest node that can give without dropping to the target.
// It returns (dst, src, frames); frames == 0 means nothing to do.
func (b *Balancer) plan() (dst, src, n int) {
	dst, src = -1, -1
	worst := b.low + 1
	for k := 0; k < b.phys.Nodes(); k++ {
		if free := b.phys.FreeCountNode(k); free < worst {
			worst, dst = free, k
		}
	}
	if dst < 0 {
		return 0, 0, 0
	}
	best := b.target
	for k := 0; k < b.phys.Nodes(); k++ {
		if k == dst {
			continue
		}
		if free := b.phys.FreeCountNode(k); free > best {
			best, src = free, k
		}
	}
	if src < 0 {
		return 0, 0, 0
	}
	n = b.batch
	if surplus := best - b.target; surplus < n {
		n = surplus
	}
	if need := b.target - worst; need > 0 && need < n {
		n = need
	}
	if n < 0 {
		n = 0
	}
	return dst, src, n
}

func (b *Balancer) loop(p *sim.Proc) {
	for {
		for {
			if _, _, n := b.plan(); n > 0 {
				break
			}
			b.kicked = false
			b.wake.Wait(p)
		}
		b.kicked = false
		b.Stats.Activations++
		for {
			dst, src, n := b.plan()
			if n <= 0 {
				break
			}
			b.exec.System(b.perPage * sim.Time(n))
			moved := b.phys.Migrate(src, dst, n)
			if moved == 0 {
				break
			}
			b.Stats.Migrations++
			b.Stats.FramesMoved += int64(moved)
			b.Events.Emit(events.BalancerMigrate, "balancerd", "node"+strconv.Itoa(dst), -1, int64(moved), int64(src))
		}
	}
}
