package pageout

import (
	"fmt"
	"testing"

	"memhogs/internal/sim"
)

// TestClockHandNeverSkipsOrRepeats pins the clock-hand walk invariant
// under hot-unplug: the positions reported by the sweep (scanned frames
// plus skipped runs) must form an exactly +1-mod-nf cyclic walk, even
// while frames go offline and come back in the middle of an active
// sweep. The old implementation stepped the hand back with modular
// arithmetic at batch boundaries; this asserts the hand can never
// retreat, skip, or double-visit a frame no matter when the frame
// population changes.
func TestClockHandNeverSkipsOrRepeats(t *testing.T) {
	r := newRig(48)
	nf := r.phys.NumFrames()

	prev := -1
	visits, scannedVisits, offlined := 0, 0, 0
	var walkErr error
	r.daemon.testVisit = func(frame int, scanned bool) {
		if frame < 0 || frame >= nf {
			t.Fatalf("hand reported out-of-range frame %d", frame)
		}
		if prev >= 0 && frame != (prev+1)%nf && walkErr == nil {
			walkErr = fmt.Errorf("hand jumped from frame %d to %d (nf=%d, visit %d)",
				prev, frame, nf, visits)
		}
		prev = frame
		visits++
		if scanned {
			scannedVisits++
		}
		// Hot-unplug in the middle of the active sweep, and replug a
		// little later, so the allocated bitmap changes under the hand.
		switch visits % 64 {
		case 40:
			offlined += r.phys.Offline(2)
		case 0:
			r.phys.Online(2)
		}
	}

	a := r.newAS("a", 0, 128)
	b := r.newAS("b", 1, 128)
	r.s.Spawn("a", func(p *sim.Proc) {
		x := &testExec{proc: p}
		for round := 0; round < 4; round++ {
			for vpn := 0; vpn < 120; vpn++ {
				a.Touch(x, vpn, false)
			}
		}
	})
	r.s.Spawn("b", func(p *sim.Proc) {
		x := &testExec{proc: p}
		for round := 0; round < 4; round++ {
			for vpn := 0; vpn < 120; vpn++ {
				b.Touch(x, vpn, false)
			}
		}
	})
	r.s.Run(0)

	if walkErr != nil {
		t.Fatal(walkErr)
	}
	if scannedVisits == 0 || r.daemon.Stats.Scanned == 0 {
		t.Fatalf("sweep never examined a frame (visits=%d, stats=%+v)", visits, r.daemon.Stats)
	}
	if visits <= nf {
		t.Fatalf("hand never wrapped the pool (visits=%d, nf=%d): test exercised nothing", visits, nf)
	}
	if offlined == 0 {
		t.Fatal("no frame ever went offline mid-sweep: test exercised nothing")
	}
}
