// Package pageout implements the two system daemons of the model:
//
//   - Daemon, the stock paging daemon ("vhand"): a clock algorithm
//     over physical frames that simulates reference bits in software
//     by invalidating mappings on its first pass and stealing pages
//     whose mapping is still invalid on a later pass. It holds each
//     address space's memory lock for long, batch-sized stretches,
//     which is the source of the lock contention the paper measures.
//   - Releaser, the new daemon added for the PagingDirected policy
//     module: it frees only pages pre-identified by release requests,
//     checking first that they have not been referenced again, in
//     small batches with little per-page work (§3.1.2).
package pageout

import (
	"strconv"

	"memhogs/internal/chaos"
	"memhogs/internal/disk"
	"memhogs/internal/events"
	"memhogs/internal/mem"
	"memhogs/internal/sim"
	"memhogs/internal/vm"
)

// DaemonConfig parameterizes the paging daemon.
type DaemonConfig struct {
	MinFree    int      // wake when free memory falls below this (min_freemem)
	TargetFree int      // steal until free memory reaches this (desfree)
	PerPage    sim.Time // CPU cost per frame examined
	Batch      int      // frames processed per lock hold
}

// DaemonStats counts paging-daemon activity (Table 3, Figure 8).
type DaemonStats struct {
	Activations   int64 // times the daemon had to operate
	Scanned       int64 // frames examined
	Invalidations int64 // reference-bit emulation invalidations
	Stolen        int64 // pages reclaimed
	Writebacks    int64 // dirty pages written back
	Trims         int64 // pages stolen for maxrss enforcement
	Donated       int64 // pages volunteered by reactive donors (§2.2)
}

// Donor is a cooperating process's victim provider for the *reactive*
// application-managed replacement scheme the paper discusses (§2.2,
// the VINO-style approach): when the daemon must reclaim, it first
// asks donors which of their pages to take. The callback must not
// block; it returns up to max virtual page numbers.
type Donor struct {
	AS   *vm.AS
	Pick func(max int) []int
}

// Daemon is the paging daemon.
type Daemon struct {
	sim   *sim.Sim
	phys  *mem.Phys
	disks *disk.Array
	cfg   DaemonConfig
	exec  vm.Exec

	ases   []*vm.AS
	donors []Donor

	// The daemon owns one node's frame region [base, limit); its clock
	// hand never leaves it. With one node the region is the whole pool.
	node        int
	base, limit int
	hand        int
	name        string // "pageoutd" on node 0, "pageoutd<k>" elsewhere

	wake    *sim.Waitq
	kicked  bool
	Stats   DaemonStats
	Enabled bool

	// stormExtra inflates the steal target for the current activation
	// (chaos steal storms); zero outside injected storms.
	stormExtra int

	// Events is the flight recorder; nil disables recording.
	Events *events.Recorder

	// Chaos is the fault injector; nil injects nothing.
	Chaos *chaos.Injector

	// testVisit, when non-nil (tests only), observes every frame
	// position the clock hand moves over: scanned=true for frames
	// examined under the memory lock, false for frames passed over as
	// unscannable. Concatenated across a run the positions are the
	// hand's complete cyclic walk, so the wrap-arithmetic regression
	// test can assert the walk never skips or double-visits a frame.
	testVisit func(frame int, scanned bool)
}

// reportSkips feeds n skipped positions starting at from into the test
// hook, wrapping within the daemon's region; a no-op in production.
func (d *Daemon) reportSkips(from, n int) {
	if d.testVisit == nil {
		return
	}
	rs := d.limit - d.base
	for k := 0; k < n; k++ {
		d.testVisit(d.base+(from-d.base+k)%rs, false)
	}
}

// NewDaemon creates the node-0 paging daemon (with an unsharded pool,
// the daemon for all of physical memory); Start must be called with
// the daemon's execution context before the simulation runs.
func NewDaemon(s *sim.Sim, phys *mem.Phys, disks *disk.Array, cfg DaemonConfig) *Daemon {
	return NewNodeDaemon(s, phys, disks, cfg, 0)
}

// NewNodeDaemon creates the paging daemon for one memory node: its
// clock sweeps only that node's frame region and its free-memory
// thresholds apply to that node's free list.
func NewNodeDaemon(s *sim.Sim, phys *mem.Phys, disks *disk.Array, cfg DaemonConfig, node int) *Daemon {
	base, limit := phys.NodeRange(node)
	d := &Daemon{
		sim:     s,
		phys:    phys,
		disks:   disks,
		cfg:     cfg,
		node:    node,
		base:    base,
		limit:   limit,
		hand:    base,
		name:    daemonName("pageoutd", node),
		wake:    sim.NewWaitq("pageout.wake"),
		Enabled: true,
	}
	return d
}

// daemonName keeps the historical node-0 process names ("pageoutd",
// "releaserd") and suffixes the node index elsewhere.
func daemonName(base string, node int) string {
	if node == 0 {
		return base
	}
	return base + strconv.Itoa(node)
}

// Node returns the memory node this daemon serves.
func (d *Daemon) Node() int { return d.node }

// free is the daemon's view of free memory: its own node's free list.
func (d *Daemon) free() int { return d.phys.FreeCountNode(d.node) }

// Register adds an address space to the daemon's scan set.
func (d *Daemon) Register(as *vm.AS) { d.ases = append(d.ases, as) }

// RegisterDonor adds a reactive victim provider; the daemon consults
// donors before falling back to its clock.
func (d *Daemon) RegisterDonor(dn Donor) { d.donors = append(d.donors, dn) }

// Kick asks the daemon to run soon. Safe from any context; it is wired
// to mem.Phys.NeedMemory.
func (d *Daemon) Kick() {
	d.kicked = true
	d.wake.WakeOne()
}

// Start launches the daemon process. mk builds the daemon's execution
// context (CPU accounting) from its simulated process.
func (d *Daemon) Start(mk func(*sim.Proc) vm.Exec) {
	d.sim.Spawn(d.name, func(p *sim.Proc) {
		d.exec = mk(p)
		d.loop(p)
	})
}

func (d *Daemon) needed() bool {
	if !d.Enabled {
		return false
	}
	if d.free() < d.cfg.MinFree {
		return true
	}
	for _, as := range d.ases {
		if as.Resident > as.MaxRSS {
			return true
		}
	}
	return false
}

func (d *Daemon) loop(p *sim.Proc) {
	for {
		for !d.needed() {
			d.kicked = false
			d.wake.Wait(p)
			if d.needed() {
				break
			}
		}
		d.kicked = false
		d.Stats.Activations++
		d.Events.Emit(events.DaemonWake, d.name, "", -1, int64(d.free()), 0)
		// Chaos: a steal storm inflates this activation's target, so
		// the clock reclaims far past desfree (over-eager vhand).
		d.stormExtra = d.Chaos.FireExtra(chaos.DaemonStorm, d.name)
		d.scan(p)
		d.stormExtra = 0
	}
}

// target is the free-page goal of the current activation: desfree,
// plus any injected storm surplus.
func (d *Daemon) target() int { return d.cfg.TargetFree + d.stormExtra }

// scan steals pages until free memory reaches the target or the clock
// has swept all frames twice (one invalidate pass plus one steal
// pass). Reactive donors are consulted first: pages they volunteer
// spare the clock (and everyone else's pages).
func (d *Daemon) scan(p *sim.Proc) {
	d.askDonors(p)
	limit := 2 * (d.limit - d.base)
	scanned := 0
	for d.free() < d.target() && scanned < limit {
		n := d.scanBatch(p)
		scanned += n
		if n == 0 {
			break
		}
	}
	d.trimMaxRSS(p)
}

// askDonors implements the reactive §2.2 scheme: collect volunteered
// victims from cooperating processes and reclaim exactly those.
func (d *Daemon) askDonors(p *sim.Proc) {
	for _, dn := range d.donors {
		need := d.target() - d.free()
		if need <= 0 {
			return
		}
		vpns := dn.Pick(need)
		if len(vpns) == 0 {
			continue
		}
		dn.AS.Memlock.Acquire(p)
		for _, vpn := range vpns {
			d.exec.System(d.cfg.PerPage)
			dn.AS.InvalidateForRelease(vpn)
			freed, dirty := dn.AS.TryReclaim(vpn, mem.FreedRelease)
			if !freed {
				continue
			}
			d.Stats.Donated++
			d.Events.Emit(events.DaemonDonated, d.name, dn.AS.OwnerName(), vpn, int64(d.free()), 0)
			if dirty {
				d.Stats.Writebacks++
				dn.AS.Stats.Writebacks++
				d.disks.Submit(dn.AS.WritebackSwapPage(vpn), &disk.Request{Op: disk.Write})
			}
		}
		dn.AS.Memlock.Release(p)
	}
}

// scanBatch advances the clock hand over up to Batch frames of a
// single address space, holding that space's memory lock for the whole
// batch (the long lock holds that inflate fault service times in the
// paper). Runs of free or offline frames are skipped word-at-a-time
// over the allocated bitmap; they still charge the batch budget one
// position per frame, so a batch covers the same span the per-frame
// walk did. The hand only ever moves forward, and only past positions
// this batch is done with: a batch boundary (a frame owned by another
// address space) leaves it parked on the boundary frame instead of
// stepping it back with modular arithmetic, so a concurrent hot-unplug
// can never make the hand retreat over (and re-visit or skip) frames.
//
//simvet:hot
func (d *Daemon) scanBatch(p *sim.Proc) int {
	rs := d.limit - d.base
	// Find the first frame owned by an address space, starting at the
	// hand. No virtual time passes in this search, so finding nothing
	// is a stable outcome for the whole sweep: report no progress and
	// let the sweep end.
	var as *vm.AS
	pos := d.hand
	for tries := 0; tries < rs; tries++ {
		i := d.phys.NextAllocatedIn(pos, d.base, d.limit)
		if i < 0 {
			break
		}
		if a, ok := d.phys.Frame(mem.FrameID(i)).Owner.(*vm.AS); ok {
			d.reportSkips(d.hand, (i-d.hand+rs)%rs)
			d.hand = i
			as = a
			break
		}
		pos = d.base + (i+1-d.base)%rs
	}
	if as == nil {
		return 0 // nothing scannable anywhere
	}

	as.Memlock.Acquire(p)
	processed := 0
	for processed < d.cfg.Batch {
		i := d.hand
		if !d.phys.FrameAllocated(i) {
			// A run of free or offline frames: skip straight to the
			// next allocated frame (or spend the rest of the budget).
			gap := d.cfg.Batch - processed
			if next := d.phys.NextAllocatedIn(i, d.base, d.limit); next >= 0 {
				if dist := (next - i + rs) % rs; dist > 0 && dist < gap {
					gap = dist
				}
			}
			d.reportSkips(i, gap)
			d.hand = d.base + (i+gap-d.base)%rs
			processed += gap
			continue
		}
		f := d.phys.Frame(mem.FrameID(i))
		if f.Owner == nil {
			// Allocated but anonymous; pass over it.
			d.reportSkips(i, 1)
			d.hand = d.base + (i+1-d.base)%rs
			processed++
			continue
		}
		fas, ok := f.Owner.(*vm.AS)
		if !ok || fas != as {
			// Crossed into another address space; end the batch with
			// the hand parked on the boundary frame so the next batch
			// starts here under that space's lock.
			break
		}
		d.hand = d.base + (i+1-d.base)%rs
		processed++
		if d.testVisit != nil {
			d.testVisit(i, true)
		}
		d.Stats.Scanned++
		d.exec.System(d.cfg.PerPage)
		vpn := f.VPN
		pte := as.PTE(vpn)
		if pte.Busy {
			continue
		}
		if pte.Valid {
			// First pass over this page: clear the simulated
			// reference bit. A process still using the page will take
			// a soft fault to revalidate it.
			as.ClearValid(vpn, vm.InvalidDaemon)
			d.Stats.Invalidations++
			d.Events.Emit(events.DaemonClear, d.name, as.OwnerName(), vpn, 0, 0)
			continue
		}
		if pte.Why != vm.InvalidDaemon {
			// Invalid for another reason (e.g. prefetched, not yet
			// referenced): start its clock instead of stealing it
			// outright.
			as.MarkClockCandidate(vpn)
			d.Stats.Invalidations++
			d.Events.Emit(events.DaemonClear, d.name, as.OwnerName(), vpn, 1, 0)
			continue
		}
		// Still invalid since the last pass: steal it.
		freed, dirty := as.TryReclaim(vpn, mem.FreedDaemon)
		if freed {
			d.Stats.Stolen++
			d.Events.Emit(events.DaemonSteal, d.name, as.OwnerName(), vpn, int64(d.free()), 0)
			if dirty {
				d.Stats.Writebacks++
				as.Stats.Writebacks++
				//simvet:allow SV006 one request record per writeback; the disk queue owns it
				d.disks.Submit(as.WritebackSwapPage(vpn), &disk.Request{Op: disk.Write})
			}
			if d.free() >= d.target() {
				break
			}
		}
	}
	as.Memlock.Release(p)
	if processed == 0 {
		return 1
	}
	return processed
}

// trimMaxRSS enforces per-process resident-set limits (IRIX maxrss):
// processes above their limit are trimmed with the same
// invalidate-then-steal discipline, scoped to one address space.
func (d *Daemon) trimMaxRSS(p *sim.Proc) {
	for _, as := range d.ases {
		if as.Resident <= as.MaxRSS {
			continue
		}
		d.Stats.Activations++
		d.Events.Emit(events.DaemonWake, d.name, as.OwnerName(), -1, int64(d.free()), 1)
		as.Memlock.Acquire(p)
		// Walk resident pages word-at-a-time over the residency bitmap;
		// everything it skips is exactly what the per-PTE walk skipped
		// (the bitmap mirrors PTE.Present).
		for vpn := as.NextResident(0); vpn >= 0 && as.Resident > as.MaxRSS; vpn = as.NextResident(vpn + 1) {
			pte := as.PTE(vpn)
			if pte.Busy {
				continue
			}
			d.exec.System(d.cfg.PerPage)
			d.Stats.Scanned++
			if pte.Valid {
				as.ClearValid(vpn, vm.InvalidDaemon)
				d.Stats.Invalidations++
				d.Events.Emit(events.DaemonClear, d.name, as.OwnerName(), vpn, 0, 0)
				continue
			}
			if pte.Why != vm.InvalidDaemon {
				as.MarkClockCandidate(vpn)
				d.Stats.Invalidations++
				d.Events.Emit(events.DaemonClear, d.name, as.OwnerName(), vpn, 1, 0)
				continue
			}
			freed, dirty := as.TryReclaim(vpn, mem.FreedDaemon)
			if freed {
				d.Stats.Stolen++
				d.Stats.Trims++
				d.Events.Emit(events.DaemonSteal, d.name, as.OwnerName(), vpn, int64(d.free()), 1)
				if dirty {
					d.Stats.Writebacks++
					as.Stats.Writebacks++
					d.disks.Submit(as.WritebackSwapPage(vpn), &disk.Request{Op: disk.Write})
				}
			}
		}
		as.Memlock.Release(p)
	}
}
