package pageout

import (
	"testing"

	"memhogs/internal/disk"
	"memhogs/internal/mem"
	"memhogs/internal/sim"
	"memhogs/internal/vm"
)

type testExec struct {
	proc  *sim.Proc
	times [vm.NumBuckets]sim.Time
}

func (e *testExec) Proc() *sim.Proc { return e.proc }
func (e *testExec) System(d sim.Time) {
	e.proc.Sleep(d)
	e.times[vm.BucketSystem] += d
}
func (e *testExec) Account(b vm.Bucket, d sim.Time) { e.times[b] += d }

type rig struct {
	s        *sim.Sim
	phys     *mem.Phys
	dk       *disk.Array
	daemon   *Daemon
	releaser *Releaser
}

func newRig(frames int) *rig {
	s := sim.New()
	phys := mem.New(s, frames)
	dk := disk.New(s, disk.Config{
		NumDisks: 2, NumAdapters: 1,
		PosTimeMin: 5 * sim.Millisecond, PosTimeMax: 5 * sim.Millisecond,
		SeqPosTime: 600 * sim.Microsecond, TransferTime: 900 * sim.Microsecond,
		Seed: 1,
	})
	daemon := NewDaemon(s, phys, dk, DaemonConfig{
		MinFree: 4, TargetFree: 8,
		PerPage: 6 * sim.Microsecond, Batch: 16,
	})
	phys.LowWater = 4
	phys.NeedMemory = func(int) { daemon.Kick() }
	releaser := NewReleaser(s, dk, ReleaserConfig{PerPage: 2 * sim.Microsecond, Batch: 8})
	daemon.Start(func(p *sim.Proc) vm.Exec { return &testExec{proc: p} })
	releaser.Start(func(p *sim.Proc) vm.Exec { return &testExec{proc: p} })
	return &rig{s: s, phys: phys, dk: dk, daemon: daemon, releaser: releaser}
}

func (r *rig) newAS(name string, id, pages int) *vm.AS {
	as := vm.NewAS(name, id, pages, int64(id*10000), r.phys, r.dk, vm.Params{
		SoftFaultTime: 30 * sim.Microsecond,
		RescueTime:    80 * sim.Microsecond,
		HardFaultCPU:  200 * sim.Microsecond,
		PageoutCPU:    60 * sim.Microsecond,
	})
	r.daemon.Register(as)
	return as
}

func TestDaemonKeepsMinimumFree(t *testing.T) {
	r := newRig(32)
	as := r.newAS("hog", 0, 128)
	r.s.Spawn("hog", func(p *sim.Proc) {
		x := &testExec{proc: p}
		for vpn := 0; vpn < 100; vpn++ {
			as.Touch(x, vpn, false)
		}
	})
	r.s.Run(0)
	if r.daemon.Stats.Activations == 0 {
		t.Fatal("daemon never activated under memory pressure")
	}
	if r.daemon.Stats.Stolen == 0 {
		t.Fatal("daemon stole nothing")
	}
	if r.phys.FreeCount() == 0 {
		t.Fatalf("free list empty at end: daemon failed (free=%d)", r.phys.FreeCount())
	}
}

func TestDaemonInvalidatesBeforeStealing(t *testing.T) {
	r := newRig(32)
	as := r.newAS("hog", 0, 128)
	r.s.Spawn("hog", func(p *sim.Proc) {
		x := &testExec{proc: p}
		for vpn := 0; vpn < 100; vpn++ {
			as.Touch(x, vpn, false)
		}
	})
	r.s.Run(0)
	if r.daemon.Stats.Invalidations == 0 {
		t.Fatal("daemon never ran its reference-bit (invalidation) pass")
	}
	// Invariant of the clock: a page is only stolen after having been
	// invalidated, so invalidations >= steals is expected for a
	// sweep-through workload.
	if r.daemon.Stats.Invalidations < r.daemon.Stats.Stolen/2 {
		t.Fatalf("implausible invalidate/steal ratio: %+v", r.daemon.Stats)
	}
}

func TestDaemonCausesSoftFaultsForActivePages(t *testing.T) {
	r := newRig(32)
	as := r.newAS("worker", 0, 256)
	// A process with a small hot set re-touches it while a sweeping
	// access pattern forces the daemon to run: the hot pages get
	// invalidated and must be soft-faulted back.
	r.s.Spawn("worker", func(p *sim.Proc) {
		x := &testExec{proc: p}
		for round := 0; round < 20; round++ {
			for vpn := 0; vpn < 4; vpn++ { // hot set
				as.Touch(x, vpn, false)
			}
			for k := 0; k < 8; k++ { // sweep
				as.Touch(x, 8+round*8+k, false)
			}
		}
	})
	r.s.Run(0)
	if as.Stats.SoftFaultsDaemon == 0 {
		t.Fatalf("no daemon-caused soft faults; stats=%+v daemon=%+v", as.Stats, r.daemon.Stats)
	}
}

func TestDaemonStealsFromAllProcesses(t *testing.T) {
	r := newRig(32)
	hog := r.newAS("hog", 0, 256)
	victim := r.newAS("victim", 1, 8)
	r.s.Spawn("victim", func(p *sim.Proc) {
		x := &testExec{proc: p}
		for vpn := 0; vpn < 8; vpn++ {
			victim.Touch(x, vpn, false)
		}
		// Then go idle (like the paper's editor waiting for input).
		p.Sleep(10 * sim.Second)
	})
	r.s.Spawn("hog", func(p *sim.Proc) {
		x := &testExec{proc: p}
		p.Sleep(200 * sim.Millisecond) // let the victim load its pages
		for round := 0; round < 3; round++ {
			for vpn := 0; vpn < 200; vpn++ {
				hog.Touch(x, vpn, false)
			}
		}
	})
	r.s.Run(0)
	if victim.Stats.StolenPages == 0 {
		t.Fatalf("global replacement never stole from the idle victim; victim=%+v", victim.Stats)
	}
}

func TestReleaserFreesRequestedPages(t *testing.T) {
	r := newRig(64)
	as := r.newAS("app", 0, 64)
	r.s.Spawn("app", func(p *sim.Proc) {
		x := &testExec{proc: p}
		for vpn := 0; vpn < 16; vpn++ {
			as.Touch(x, vpn, false)
		}
		vpns := make([]int, 8)
		for i := range vpns {
			vpns[i] = i
			as.InvalidateForRelease(i)
		}
		r.releaser.Enqueue(as, vpns, nil)
	})
	r.s.Run(0)
	if r.releaser.Stats.Freed != 8 {
		t.Fatalf("releaser freed %d, want 8 (%+v)", r.releaser.Stats.Freed, r.releaser.Stats)
	}
	if as.Resident != 8 {
		t.Fatalf("Resident = %d, want 8", as.Resident)
	}
	if r.phys.Stats().FreedByRelease != 8 {
		t.Fatalf("phys counted %d release-frees", r.phys.Stats().FreedByRelease)
	}
}

func TestReleaserSkipsReferencedPages(t *testing.T) {
	r := newRig(64)
	as := r.newAS("app", 0, 64)
	r.s.Spawn("app", func(p *sim.Proc) {
		x := &testExec{proc: p}
		as.Touch(x, 0, false)
		as.Touch(x, 1, false)
		as.InvalidateForRelease(0)
		as.InvalidateForRelease(1)
		// Page 0 is referenced again before the releaser runs.
		as.Touch(x, 0, false)
		r.releaser.Enqueue(as, []int{0, 1}, nil)
	})
	r.s.Run(0)
	if r.releaser.Stats.Freed != 1 || r.releaser.Stats.SkippedRef != 1 {
		t.Fatalf("stats = %+v, want 1 freed / 1 skipped", r.releaser.Stats)
	}
	if !as.IsResident(0) || as.IsResident(1) {
		t.Fatal("wrong page freed")
	}
}

func TestReleaserWritesBackDirtyPages(t *testing.T) {
	r := newRig(64)
	as := r.newAS("app", 0, 64)
	r.s.Spawn("app", func(p *sim.Proc) {
		x := &testExec{proc: p}
		as.Touch(x, 0, true) // dirty
		as.Touch(x, 1, false)
		as.InvalidateForRelease(0)
		as.InvalidateForRelease(1)
		r.releaser.Enqueue(as, []int{0, 1}, nil)
	})
	r.s.Run(0)
	if r.releaser.Stats.Writebacks != 1 {
		t.Fatalf("Writebacks = %d, want 1", r.releaser.Stats.Writebacks)
	}
	if r.dk.Stats().Writes != 1 {
		t.Fatalf("disk writes = %d, want 1", r.dk.Stats().Writes)
	}
}

func TestReleaserSkipsNonResident(t *testing.T) {
	r := newRig(64)
	as := r.newAS("app", 0, 64)
	r.s.Spawn("app", func(p *sim.Proc) {
		r.releaser.Enqueue(as, []int{3, 4}, nil)
	})
	r.s.Run(0)
	if r.releaser.Stats.SkippedGone != 2 {
		t.Fatalf("SkippedGone = %d, want 2", r.releaser.Stats.SkippedGone)
	}
}

func TestReleasedPagesAreRescuable(t *testing.T) {
	r := newRig(64)
	as := r.newAS("app", 0, 64)
	var out vm.Outcome
	r.s.Spawn("app", func(p *sim.Proc) {
		x := &testExec{proc: p}
		as.Touch(x, 0, false)
		as.InvalidateForRelease(0)
		r.releaser.Enqueue(as, []int{0}, nil)
		p.Sleep(10 * sim.Millisecond) // let the releaser run
		out = as.Touch(x, 0, false)   // rescue from the free list
	})
	r.s.Run(0)
	if out != vm.RescueFault {
		t.Fatalf("touch after release = %v, want rescue", out)
	}
	if r.phys.Stats().RescuedRelease != 1 {
		t.Fatalf("phys stats = %+v", r.phys.Stats())
	}
}

func TestMaxRSSTrimming(t *testing.T) {
	r := newRig(64)
	as := r.newAS("limited", 0, 64)
	as.MaxRSS = 8
	as.OverLimit = r.daemon.Kick
	r.s.Spawn("limited", func(p *sim.Proc) {
		x := &testExec{proc: p}
		for vpn := 0; vpn < 32; vpn++ {
			as.Touch(x, vpn, false)
		}
		// Give the daemon a chance to trim.
		p.Sleep(100 * sim.Millisecond)
	})
	r.s.Run(0)
	if r.daemon.Stats.Trims == 0 {
		t.Fatalf("no maxrss trimming happened: %+v (resident=%d)", r.daemon.Stats, as.Resident)
	}
}

func TestPrefetchedPagesGetClockGrace(t *testing.T) {
	// A prefetched-but-unreferenced page (Valid=false, Why=Prefetch)
	// must survive one clock pass: the daemon marks it as a candidate
	// first and steals it only on a later pass.
	r := newRig(32)
	as := r.newAS("app", 0, 64)
	r.s.Spawn("app", func(p *sim.Proc) {
		x := &testExec{proc: p}
		// Prefetch page 0; never reference it.
		as.Prefetch(x, 0)
		// Force memory pressure so the daemon scans.
		for vpn := 1; vpn < 40; vpn++ {
			as.Touch(x, vpn, false)
		}
	})
	r.s.Run(0)
	// Eventually it may be stolen, but only after being marked: the
	// invariant checked here is that invalidations (marking passes)
	// precede steals for such pages — the daemon recorded at least as
	// many invalidations as steals overall in this workload, where
	// every page is swept exactly once.
	if r.daemon.Stats.Stolen > 0 && r.daemon.Stats.Invalidations == 0 {
		t.Fatal("daemon stole without any marking pass")
	}
}

func TestDaemonWritesBackDirtyStolenPages(t *testing.T) {
	r := newRig(24)
	as := r.newAS("app", 0, 64)
	r.s.Spawn("app", func(p *sim.Proc) {
		x := &testExec{proc: p}
		for vpn := 0; vpn < 60; vpn++ {
			as.Touch(x, vpn, true) // dirty everything
		}
	})
	r.s.Run(0)
	if r.daemon.Stats.Stolen == 0 {
		t.Skip("no stealing on this configuration")
	}
	if r.daemon.Stats.Writebacks == 0 {
		t.Fatal("dirty pages stolen without writeback")
	}
	if r.dk.Stats().Writes == 0 {
		t.Fatal("no disk writes submitted")
	}
}

func TestReleaserBatchesBoundLockHolds(t *testing.T) {
	// The releaser must not hold the address-space lock for the whole
	// request: with a batch size of 8 and a 64-page request, the lock
	// is taken at least 8 times.
	r := newRig(128)
	as := r.newAS("app", 0, 128)
	r.s.Spawn("app", func(p *sim.Proc) {
		x := &testExec{proc: p}
		for vpn := 0; vpn < 64; vpn++ {
			as.Touch(x, vpn, false)
		}
		vpns := make([]int, 64)
		for i := range vpns {
			vpns[i] = i
			as.InvalidateForRelease(i)
		}
		before := as.Memlock.Acquisitions
		r.releaser.Enqueue(as, vpns, nil)
		p.Sleep(100 * sim.Millisecond)
		if got := as.Memlock.Acquisitions - before; got < 8 {
			t.Errorf("releaser took the lock %d times for 64 pages; batching broken", got)
		}
	})
	r.s.Run(0)
	if r.releaser.Stats.Freed != 64 {
		t.Fatalf("freed %d, want 64", r.releaser.Stats.Freed)
	}
}

func TestDaemonDisabled(t *testing.T) {
	r := newRig(16)
	r.daemon.Enabled = false
	as := r.newAS("hog", 0, 64)
	r.s.Spawn("hog", func(p *sim.Proc) {
		x := &testExec{proc: p}
		for vpn := 0; vpn < 14; vpn++ {
			as.Touch(x, vpn, false)
		}
	})
	r.s.Run(0)
	if r.daemon.Stats.Stolen != 0 {
		t.Fatal("disabled daemon stole pages")
	}
}
