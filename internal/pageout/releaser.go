package pageout

import (
	"memhogs/internal/chaos"
	"memhogs/internal/disk"
	"memhogs/internal/events"
	"memhogs/internal/mem"
	"memhogs/internal/sim"
	"memhogs/internal/vm"
)

// ReleaserConfig parameterizes the releaser daemon.
type ReleaserConfig struct {
	PerPage sim.Time // CPU per page; smaller than the paging daemon's
	Batch   int      // pages per lock hold; smaller than the daemon's

	// FarMinPrio is the eq. 2 priority threshold for tier demotion:
	// released pages with priority >= FarMinPrio go to the far tier
	// when the run has one, below it (or when the tier is full) they
	// are freed to swap. Irrelevant without a far tier.
	FarMinPrio int
}

// ReleaserStats counts releaser activity.
type ReleaserStats struct {
	Requests       int64 // release requests dequeued
	PagesRequested int64
	Freed          int64
	SkippedRef     int64 // page referenced again since the request
	SkippedGone    int64 // page no longer resident
	Writebacks     int64
	Demoted        int64 // pages demoted to the far tier instead of freed
}

// releaseReq is one queued request from the PagingDirected PM. prios
// carries the eq. 2 reuse priority of each page (parallel to vpns);
// nil means no priority information, which demotes nothing unless
// FarMinPrio is zero.
type releaseReq struct {
	as    *vm.AS
	vpns  []int
	prios []int
}

// Releaser is the system releasing daemon: it "functions similarly to
// the paging daemon, but is specialized to reclaim only the pages
// indicated by the application" (§3.1.2). It holds address-space locks
// for much shorter periods and does less work per page.
type Releaser struct {
	sim   *sim.Sim
	disks *disk.Array
	cfg   ReleaserConfig
	exec  vm.Exec

	node  int
	name  string // "releaserd" on node 0, "releaserd<k>" elsewhere
	queue []releaseReq
	wake  *sim.Waitq

	Stats ReleaserStats

	// Events is the flight recorder; nil disables recording.
	Events *events.Recorder

	// Chaos is the fault injector; nil injects nothing.
	Chaos *chaos.Injector
}

// NewReleaser creates the node-0 releaser; Start must be called
// before the simulation runs.
func NewReleaser(s *sim.Sim, disks *disk.Array, cfg ReleaserConfig) *Releaser {
	return NewNodeReleaser(s, disks, cfg, 0)
}

// NewNodeReleaser creates the releaser daemon serving one memory
// node's processes (each process enqueues to its home node's
// releaser).
func NewNodeReleaser(s *sim.Sim, disks *disk.Array, cfg ReleaserConfig, node int) *Releaser {
	return &Releaser{
		sim:   s,
		disks: disks,
		cfg:   cfg,
		node:  node,
		name:  daemonName("releaserd", node),
		wake:  sim.NewWaitq("releaser.wake"),
	}
}

// Node returns the memory node this releaser serves.
func (r *Releaser) Node() int { return r.node }

// Start launches the releaser process. mk builds the releaser's
// execution context (CPU accounting) from its simulated process.
func (r *Releaser) Start(mk func(*sim.Proc) vm.Exec) {
	r.sim.Spawn(r.name, func(p *sim.Proc) {
		r.exec = mk(p)
		r.loop(p)
	})
}

// Enqueue adds a release request to the work queue. The PM has already
// cleared the shared-page bits and invalidated the mappings. prios
// (may be nil) carries each page's eq. 2 reuse priority, parallel to
// vpns, and steers tier demotion; see ReleaserConfig.FarMinPrio.
func (r *Releaser) Enqueue(as *vm.AS, vpns []int, prios []int) {
	r.queue = append(r.queue, releaseReq{as: as, vpns: vpns, prios: prios})
	r.wake.WakeOne()
}

// QueueLen reports pending requests (for tests and back-pressure
// diagnostics).
func (r *Releaser) QueueLen() int { return len(r.queue) }

func (r *Releaser) loop(p *sim.Proc) {
	for {
		for len(r.queue) == 0 {
			r.wake.Wait(p)
		}
		req := r.queue[0]
		copy(r.queue, r.queue[1:])
		r.queue = r.queue[:len(r.queue)-1]
		r.Stats.Requests++
		r.Stats.PagesRequested += int64(len(req.vpns))
		// Chaos: a stalled releaser sits on the request while the
		// queue grows; the pages stay resident and the paging daemon
		// has to pick up the slack — degraded, never corrupted.
		if stall := r.Chaos.FireDelay(chaos.ReleaserStall, r.name); stall > 0 {
			p.Sleep(stall)
		}
		r.handle(p, req)
	}
}

// handle frees the requested pages in small batches, holding the
// address-space lock only across each batch. Pages whose reuse
// priority clears FarMinPrio are demoted to the far tier (contents
// kept, no writeback: the tier is byte-addressable); the rest — and
// everything when the tier is absent or full — are freed to swap.
func (r *Releaser) handle(p *sim.Proc, req releaseReq) {
	for off := 0; off < len(req.vpns); off += r.cfg.Batch {
		end := off + r.cfg.Batch
		if end > len(req.vpns) {
			end = len(req.vpns)
		}

		req.as.Memlock.Acquire(p)
		for i := off; i < end; i++ {
			vpn := req.vpns[i]
			r.exec.System(r.cfg.PerPage)
			pte := req.as.PTE(vpn)
			if !pte.Present || pte.Busy {
				r.Stats.SkippedGone++
				r.Events.Emit(events.ReleaserSkipGone, r.name, req.as.OwnerName(), vpn, 0, 0)
				continue
			}
			if pte.Valid {
				// "first checking the bit vector to make sure that
				// the pages have not been referenced again (either by
				// a prefetch or a real reference) since the time of
				// the request".
				r.Stats.SkippedRef++
				r.Events.Emit(events.ReleaserSkipRef, r.name, req.as.OwnerName(), vpn, 0, 0)
				continue
			}
			if req.as.Far != nil {
				prio := 0
				if req.prios != nil {
					prio = req.prios[i]
				}
				if prio >= r.cfg.FarMinPrio && !r.Chaos.Fire(chaos.FarDrop, r.name, vpn) {
					if demoted, dirty := req.as.TryDemote(vpn); demoted {
						r.Stats.Demoted++
						var d int64
						if dirty {
							d = 1
						}
						r.Events.Emit(events.TierDemote, r.name, req.as.OwnerName(), vpn, int64(prio), d)
						continue
					}
				}
			}
			freed, dirty := req.as.TryReclaim(vpn, mem.FreedRelease)
			if freed {
				r.Stats.Freed++
				var d int64
				if dirty {
					d = 1
				}
				r.Events.Emit(events.ReleaserFree, r.name, req.as.OwnerName(), vpn, 0, d)
				if dirty {
					r.Stats.Writebacks++
					req.as.Stats.Writebacks++
					r.disks.Submit(req.as.WritebackSwapPage(vpn), &disk.Request{Op: disk.Write})
				}
			}
		}
		req.as.Memlock.Release(p)
	}
}
