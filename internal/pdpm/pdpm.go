// Package pdpm implements the "PagingDirected" policy module the paper
// adds to IRIX 6.5 (§3.1): user-level prefetch and release operations
// on a process's own address space, plus a read-only shared page
// through which the OS publishes a residency bitmap, the process's
// current memory usage, and the upper limit on pages the process
// should use:
//
//	upper limit = min(maxrss, current + tot_freemem - min_freemem)   (1)
//
// The shared page's usage and limit words are refreshed only when the
// process experiences memory-system activity (a fault, a prefetch or
// release request, or a steal), so the run-time layer can observe
// stale values — exactly as in the paper.
package pdpm

import (
	"memhogs/internal/chaos"
	"memhogs/internal/events"
	"memhogs/internal/mem"
	"memhogs/internal/pageout"
	"memhogs/internal/sim"
	"memhogs/internal/vm"
)

// Config parameterizes the policy module.
type Config struct {
	MinFree      int      // system min_freemem, in pages
	MaxRSS       int      // process maxrss, in pages
	PrefetchCall sim.Time // system-call CPU cost of a prefetch request
	ReleaseCall  sim.Time // system-call CPU cost of a release request
	// ImmediateUpdates makes the shared page update eagerly on every
	// change instead of only on memory activity. The paper rejects
	// this as too expensive; it is kept for the ablation bench.
	ImmediateUpdates bool
	// NotifyThreshold, when > 0, refreshes the shared page whenever
	// system free memory has drifted by more than this many pages
	// since the last refresh — the alternative §3.1.1 mentions but
	// does not explore. The kernel feeds free-memory changes through
	// FreeMemChanged.
	NotifyThreshold int
}

// Stats counts PM-level activity.
type Stats struct {
	PrefetchRequests  int64
	PrefetchAlreadyIn int64
	PrefetchDiscarded int64 // no free memory
	PrefetchRescued   int64
	PrefetchRead      int64
	PrefetchPromoted  int64 // promoted from the far tier
	ReleaseRequests   int64
	ReleasePages      int64
	SharedRefreshes   int64
}

// SharedPage is the 16 KB page mapped read-only into the application.
// The first two words are the current number of resident pages and the
// recommended upper limit; the rest is a bitmap indexed by virtual
// page number.
type SharedPage struct {
	Current int
	Limit   int
	bits    []uint64
}

// Test reports bit vpn.
func (sp *SharedPage) Test(vpn int) bool {
	return sp.bits[vpn>>6]&(1<<(uint(vpn)&63)) != 0
}

func (sp *SharedPage) set(vpn int)   { sp.bits[vpn>>6] |= 1 << (uint(vpn) & 63) }
func (sp *SharedPage) clear(vpn int) { sp.bits[vpn>>6] &^= 1 << (uint(vpn) & 63) }

// PopCount returns the number of set bits (for tests).
func (sp *SharedPage) PopCount() int {
	n := 0
	for _, w := range sp.bits {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// PM is a PagingDirected policy module attached to (the whole of) one
// address space.
type PM struct {
	as       *vm.AS
	phys     *mem.Phys
	releaser *pageout.Releaser
	cfg      Config

	shared         SharedPage
	lastNotifyFree int
	Stats          Stats

	// Chaos is the fault injector; nil injects nothing.
	Chaos *chaos.Injector
}

// Attach creates a PM connected to as and installs it as the address
// space's residency watcher. Following §3.1.1, attaching clears the
// bitmap bits for the covered range (nothing is resident yet).
func Attach(as *vm.AS, phys *mem.Phys, releaser *pageout.Releaser, cfg Config) *PM {
	if cfg.MaxRSS <= 0 {
		cfg.MaxRSS = phys.NumFrames() + 1
	}
	pm := &PM{
		as:       as,
		phys:     phys,
		releaser: releaser,
		cfg:      cfg,
	}
	pm.shared.bits = make([]uint64, (as.NumPages()+63)/64)
	for vpn := 0; vpn < as.NumPages(); vpn++ {
		if as.IsResident(vpn) {
			pm.shared.set(vpn)
		}
	}
	pm.refresh()
	as.SetWatcher(pm)
	return pm
}

// Shared returns the shared page for direct (no-syscall) reads by the
// run-time layer.
func (pm *PM) Shared() *SharedPage { return &pm.shared }

// AS returns the attached address space.
func (pm *PM) AS() *vm.AS { return pm.as }

// FreeMemChanged implements the threshold-notification variant: the
// OS tells the PM free memory moved; if it drifted beyond the
// configured threshold since the last refresh, the shared page is
// updated even without memory activity from the owning process.
func (pm *PM) FreeMemChanged(free int) {
	if pm.cfg.NotifyThreshold <= 0 {
		return
	}
	d := free - pm.lastNotifyFree
	if d < 0 {
		d = -d
	}
	if d > pm.cfg.NotifyThreshold {
		pm.refresh()
	}
}

// refresh recomputes the usage and limit words, equation (1).
func (pm *PM) refresh() {
	// Chaos: a stale refresh leaves the previous usage and limit words
	// in place, so the run-time layer plans against lies until the next
	// memory activity. Only advice goes stale — never kernel state.
	if pm.Chaos.Fire(chaos.StaleShared, pm.as.OwnerName(), -1) {
		return
	}
	pm.Stats.SharedRefreshes++
	pm.lastNotifyFree = pm.phys.FreeCount()
	pm.shared.Current = pm.as.Resident
	limit := pm.as.Resident + pm.phys.FreeCount() - pm.cfg.MinFree
	if pm.cfg.MaxRSS < limit {
		limit = pm.cfg.MaxRSS
	}
	if limit < 0 {
		limit = 0
	}
	pm.shared.Limit = limit
	// The recorder lives on the AS so the PM sees it however it was
	// installed (before or after Attach).
	pm.as.Events.Emit(events.PMRefresh, pm.as.OwnerName(), "", -1,
		int64(pm.shared.Current), int64(pm.shared.Limit))
}

// PageIn implements vm.Watcher.
func (pm *PM) PageIn(vpn int) {
	// Chaos: a lost bitmap update makes a resident page look absent —
	// the layer wastes a prefetch that comes back AlreadyIn.
	if pm.Chaos.Fire(chaos.StaleShared, pm.as.OwnerName(), vpn) {
		return
	}
	pm.shared.set(vpn)
	if pm.cfg.ImmediateUpdates {
		pm.refresh()
	}
}

// PageOut implements vm.Watcher.
func (pm *PM) PageOut(vpn int) {
	// Chaos: a lost bitmap update makes an evicted page look resident —
	// the layer filters its prefetch and pays a hard fault instead.
	if pm.Chaos.Fire(chaos.StaleShared, pm.as.OwnerName(), vpn) {
		return
	}
	pm.shared.clear(vpn)
	if pm.cfg.ImmediateUpdates {
		pm.refresh()
	}
}

// Revalidate implements vm.Watcher: a reference after a pending
// release request makes the page visible as "in memory" again, which
// is what the releaser's bit-vector check observes.
func (pm *PM) Revalidate(vpn int) {
	pm.shared.set(vpn)
}

// Activity implements vm.Watcher: memory-system activity refreshes the
// usage and limit words.
func (pm *PM) Activity() { pm.refresh() }

// Prefetch issues a prefetch request for vpn on behalf of worker
// context x (one of the run-time layer's threads).
func (pm *PM) Prefetch(x vm.Exec, vpn int) vm.PrefetchResult {
	pm.Stats.PrefetchRequests++
	x.System(pm.cfg.PrefetchCall)
	res := pm.as.Prefetch(x, vpn)
	pm.as.Events.Emit(events.PMPrefetchCall, pm.as.OwnerName(), "", vpn, int64(res), 0)
	switch res {
	case vm.PrefetchAlreadyIn:
		pm.Stats.PrefetchAlreadyIn++
	case vm.PrefetchDiscarded:
		pm.Stats.PrefetchDiscarded++
	case vm.PrefetchRescued:
		pm.Stats.PrefetchRescued++
	case vm.PrefetchRead:
		pm.Stats.PrefetchRead++
	case vm.PrefetchPromoted:
		pm.Stats.PrefetchPromoted++
	}
	pm.refresh()
	return res
}

// Release issues a release request for the given pages: the PM clears
// their shared-page bits, invalidates their mappings so a later
// reference is observable, and queues the request to the releaser
// daemon (§3.1.2). prios (may be nil) carries the pages' eq. 2 reuse
// priorities, parallel to vpns, which the releaser uses to pick a
// demotion target when the machine has a far tier.
func (pm *PM) Release(x vm.Exec, vpns []int, prios []int) {
	pm.Stats.ReleaseRequests++
	pm.Stats.ReleasePages += int64(len(vpns))
	pm.as.Events.Emit(events.PMReleaseCall, pm.as.OwnerName(), "", -1, int64(len(vpns)), 0)
	x.System(pm.cfg.ReleaseCall)
	batch := make([]int, 0, len(vpns))
	for _, vpn := range vpns {
		pm.shared.clear(vpn)
		pm.as.InvalidateForRelease(vpn)
		batch = append(batch, vpn)
	}
	var pbatch []int
	if prios != nil {
		pbatch = append(pbatch, prios...)
	}
	pm.releaser.Enqueue(pm.as, batch, pbatch)
	pm.refresh()
}
