package pdpm

import (
	"testing"

	"memhogs/internal/disk"
	"memhogs/internal/mem"
	"memhogs/internal/pageout"
	"memhogs/internal/sim"
	"memhogs/internal/vm"
)

type testExec struct {
	proc  *sim.Proc
	times [vm.NumBuckets]sim.Time
}

func (e *testExec) Proc() *sim.Proc { return e.proc }
func (e *testExec) System(d sim.Time) {
	e.proc.Sleep(d)
	e.times[vm.BucketSystem] += d
}
func (e *testExec) Account(b vm.Bucket, d sim.Time) { e.times[b] += d }

type rig struct {
	s        *sim.Sim
	phys     *mem.Phys
	dk       *disk.Array
	releaser *pageout.Releaser
	as       *vm.AS
	pm       *PM
}

func newRig(frames, pages int, cfg Config) *rig {
	s := sim.New()
	phys := mem.New(s, frames)
	dk := disk.New(s, disk.Config{
		NumDisks: 2, NumAdapters: 1,
		PosTimeMin: 5 * sim.Millisecond, PosTimeMax: 5 * sim.Millisecond,
		SeqPosTime: 600 * sim.Microsecond, TransferTime: 900 * sim.Microsecond,
		Seed: 1,
	})
	releaser := pageout.NewReleaser(s, dk, pageout.ReleaserConfig{
		PerPage: 2 * sim.Microsecond, Batch: 8,
	})
	releaser.Start(func(p *sim.Proc) vm.Exec { return &testExec{proc: p} })
	as := vm.NewAS("app", 0, pages, 0, phys, dk, vm.Params{
		SoftFaultTime: 30 * sim.Microsecond,
		RescueTime:    80 * sim.Microsecond,
		HardFaultCPU:  200 * sim.Microsecond,
	})
	if cfg.PrefetchCall == 0 {
		cfg.PrefetchCall = 20 * sim.Microsecond
	}
	if cfg.ReleaseCall == 0 {
		cfg.ReleaseCall = 15 * sim.Microsecond
	}
	pm := Attach(as, phys, releaser, cfg)
	return &rig{s: s, phys: phys, dk: dk, releaser: releaser, as: as, pm: pm}
}

func (r *rig) inProc(body func(x *testExec)) {
	r.s.Spawn("app", func(p *sim.Proc) {
		body(&testExec{proc: p})
	})
	r.s.Run(0)
}

func TestBitmapTracksResidency(t *testing.T) {
	r := newRig(16, 64, Config{MinFree: 2})
	r.inProc(func(x *testExec) {
		r.as.Touch(x, 3, false)
		if !r.pm.Shared().Test(3) {
			t.Error("bit not set after page-in")
		}
		if r.pm.Shared().Test(4) {
			t.Error("bit set for untouched page")
		}
	})
}

func TestSharedPageUsageAndLimit(t *testing.T) {
	r := newRig(16, 64, Config{MinFree: 2})
	r.inProc(func(x *testExec) {
		for vpn := 0; vpn < 4; vpn++ {
			r.as.Touch(x, vpn, false)
		}
		sp := r.pm.Shared()
		if sp.Current != 4 {
			t.Errorf("Current = %d, want 4", sp.Current)
		}
		// Equation (1): current + free - minfree (maxrss unlimited).
		want := 4 + r.phys.FreeCount() - 2
		if sp.Limit != want {
			t.Errorf("Limit = %d, want %d", sp.Limit, want)
		}
	})
}

func TestLimitRespectsMaxRSS(t *testing.T) {
	r := newRig(16, 64, Config{MinFree: 2, MaxRSS: 6})
	r.inProc(func(x *testExec) {
		r.as.Touch(x, 0, false)
		if r.pm.Shared().Limit != 6 {
			t.Errorf("Limit = %d, want maxrss 6", r.pm.Shared().Limit)
		}
	})
}

func TestSharedPageIsStaleWithoutActivity(t *testing.T) {
	r := newRig(16, 64, Config{MinFree: 2})
	r.inProc(func(x *testExec) {
		r.as.Touch(x, 0, false)
		before := r.pm.Shared().Limit
		// Free memory shrinks behind the process's back (another
		// process allocating): the limit word must NOT move until this
		// process has memory-system activity.
		for i := 0; i < 8; i++ {
			r.phys.TryAlloc(nil, 0)
		}
		if r.pm.Shared().Limit != before {
			t.Fatal("shared page updated without memory activity")
		}
		r.as.Touch(x, 1, false) // activity
		if r.pm.Shared().Limit >= before {
			t.Fatalf("limit did not drop after activity: %d >= %d", r.pm.Shared().Limit, before)
		}
	})
}

func TestImmediateUpdatesAblation(t *testing.T) {
	r := newRig(16, 64, Config{MinFree: 2, ImmediateUpdates: true})
	r.inProc(func(x *testExec) {
		r.as.Touch(x, 0, false)
		if r.pm.Shared().Current != 1 {
			t.Fatalf("Current = %d, want 1", r.pm.Shared().Current)
		}
	})
}

func TestPrefetchStatsBreakdown(t *testing.T) {
	r := newRig(4, 64, Config{MinFree: 0})
	r.inProc(func(x *testExec) {
		r.pm.Prefetch(x, 0) // read
		r.pm.Prefetch(x, 0) // already in
		r.pm.Prefetch(x, 1)
		r.pm.Prefetch(x, 2)
		r.pm.Prefetch(x, 3)
		r.pm.Prefetch(x, 4) // memory full: discarded
	})
	st := r.pm.Stats
	if st.PrefetchRead != 4 || st.PrefetchAlreadyIn != 1 || st.PrefetchDiscarded != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if !r.pm.Shared().Test(0) || r.pm.Shared().Test(4) {
		t.Fatal("bitmap wrong after prefetches")
	}
}

func TestReleaseClearsBitsImmediately(t *testing.T) {
	r := newRig(16, 64, Config{MinFree: 2})
	r.inProc(func(x *testExec) {
		r.as.Touch(x, 0, false)
		r.as.Touch(x, 1, false)
		r.pm.Release(x, []int{0, 1}, nil)
		// Bits are cleared at request time, before the releaser runs.
		if r.pm.Shared().Test(0) || r.pm.Shared().Test(1) {
			t.Error("bits not cleared at release-request time")
		}
	})
	// After the sim drains, the releaser has freed both.
	if r.releaser.Stats.Freed != 2 {
		t.Fatalf("releaser freed %d, want 2", r.releaser.Stats.Freed)
	}
}

func TestReferenceAfterReleaseRequestSetsBitAgain(t *testing.T) {
	r := newRig(16, 64, Config{MinFree: 2})
	r.inProc(func(x *testExec) {
		r.as.Touch(x, 0, false)
		r.pm.Release(x, []int{0}, nil)
		// Touch before the releaser runs: the soft fault re-sets the
		// bit, and the releaser must then skip the page.
		r.as.Touch(x, 0, false)
		if !r.pm.Shared().Test(0) {
			t.Error("bit not re-set by reference after release request")
		}
	})
	if r.releaser.Stats.SkippedRef != 1 || r.releaser.Stats.Freed != 0 {
		t.Fatalf("releaser stats = %+v", r.releaser.Stats)
	}
}

func TestPopCount(t *testing.T) {
	r := newRig(16, 64, Config{MinFree: 2})
	r.inProc(func(x *testExec) {
		for vpn := 0; vpn < 5; vpn++ {
			r.as.Touch(x, vpn, false)
		}
		if n := r.pm.Shared().PopCount(); n != 5 {
			t.Errorf("PopCount = %d, want 5", n)
		}
	})
}

func TestThresholdNotification(t *testing.T) {
	r := newRig(64, 64, Config{MinFree: 2, NotifyThreshold: 4})
	r.inProc(func(x *testExec) {
		r.as.Touch(x, 0, false)
		before := r.pm.Shared().Limit
		// Drain free memory behind the process's back; crossing the
		// threshold must refresh the shared page without any activity
		// from the owning process.
		for i := 0; i < 8; i++ {
			r.phys.TryAlloc(nil, i)
		}
		// Simulate the kernel's broadcast.
		r.pm.FreeMemChanged(r.phys.FreeCount())
		if r.pm.Shared().Limit >= before {
			t.Fatalf("threshold notification did not refresh: %d >= %d",
				r.pm.Shared().Limit, before)
		}
	})
}

func TestThresholdNotificationBelowThresholdNoRefresh(t *testing.T) {
	r := newRig(64, 64, Config{MinFree: 2, NotifyThreshold: 100})
	r.inProc(func(x *testExec) {
		r.as.Touch(x, 0, false)
		refreshes := r.pm.Stats.SharedRefreshes
		r.phys.TryAlloc(nil, 1)
		r.pm.FreeMemChanged(r.phys.FreeCount())
		if r.pm.Stats.SharedRefreshes != refreshes {
			t.Fatal("refreshed below the threshold")
		}
	})
}

func TestPrefetchChargesSyscallTime(t *testing.T) {
	r := newRig(16, 64, Config{MinFree: 2})
	var sys sim.Time
	r.inProc(func(x *testExec) {
		r.pm.Prefetch(x, 0)
		sys = x.times[vm.BucketSystem]
	})
	if sys < 20*sim.Microsecond {
		t.Fatalf("prefetch system time %v, want >= syscall cost", sys)
	}
}
