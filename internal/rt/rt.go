// Package rt implements the run-time layer of §3.3: it intercepts the
// compiler-inserted prefetch and release hints, filters the obviously
// useless ones against the shared-page bitmap and a one-request-behind
// per-tag duplicate check, issues prefetches from a pool of worker
// threads (the pthreads of the paper), and implements the two release
// policies the paper compares:
//
//   - Aggressive: every surviving release request is issued to the OS
//     immediately.
//   - Buffered: zero-priority requests are issued immediately; requests
//     with reuse are held in per-tag queues indexed by priority
//     (Figure 6(b)) and drained — lowest priority first, round-robin
//     within a priority level — only when the process nears the memory
//     limit published by the OS, 100 pages at a time.
package rt

import (
	"sort"

	"memhogs/internal/chaos"
	"memhogs/internal/compiler"
	"memhogs/internal/events"
	"memhogs/internal/kernel"
	"memhogs/internal/pageout"
	"memhogs/internal/pdpm"
	"memhogs/internal/sim"
)

// Mode selects the program version of the paper's evaluation.
type Mode int

// Run-time modes: the paper's O, P, R and B bars, plus the reactive
// (VINO-style) design point the paper argues against in §2.2.
const (
	ModeOriginal   Mode = iota // no hints at all
	ModePrefetch               // prefetch only
	ModeAggressive             // prefetch + aggressive releasing
	ModeBuffered               // prefetch + release buffering
	// ModeReactive never releases pro-actively: compiler hints feed
	// per-tag victim queues, and pages leave only when the paging
	// daemon asks ("the OS notifies the application when one or more
	// of its pages is about to be reclaimed", §2.2). The paper
	// predicts it "will not help isolate other applications from a
	// memory-intensive one"; BenchmarkReactiveVsProactive measures it.
	ModeReactive
)

func (m Mode) String() string {
	switch m {
	case ModeOriginal:
		return "O"
	case ModePrefetch:
		return "P"
	case ModeAggressive:
		return "R"
	case ModeReactive:
		return "V"
	default:
		return "B"
	}
}

// UsesPrefetch reports whether the mode runs the prefetch machinery.
func (m Mode) UsesPrefetch() bool { return m != ModeOriginal }

// UsesRelease reports whether the mode consumes release hints.
func (m Mode) UsesRelease() bool {
	return m == ModeAggressive || m == ModeBuffered || m == ModeReactive
}

// Config parameterizes the layer.
type Config struct {
	Mode         Mode
	Workers      int     // prefetch/release worker threads
	ReleaseBatch int     // pages drained per pressure event (paper: 100)
	Headroom     int     // pages below the limit at which draining starts
	PerCallNS    float64 // main-thread overhead per inserted call
	MaxQueue     int     // cap on buffered pages per tag
	MaxPfQueue   int     // cap on the prefetch work queue
}

// DefaultConfig returns the paper's run-time parameters.
func DefaultConfig(mode Mode) Config {
	return Config{
		Mode:         mode,
		Workers:      8,
		ReleaseBatch: 100,
		Headroom:     0,
		PerCallNS:    80,
		MaxQueue:     1 << 17,
		MaxPfQueue:   1 << 14,
	}
}

// Stats counts run-time layer activity.
type Stats struct {
	PrefetchCalls    int64 // pages passed to the layer by compiled code
	PrefetchFiltered int64 // dropped by the bitmap check
	PrefetchIssued   int64 // handed to worker threads
	PrefetchDropped  int64 // work queue overflow

	ReleaseCalls       int64 // release hints seen
	ReleaseDupDropped  int64 // same page as previous request for the tag
	ReleaseNotResident int64 // bitmap said the page is not in memory
	ReleaseIssued      int64 // pages sent to the OS
	ReleaseBuffered    int64 // pages parked in priority queues
	ReleaseOverflow    int64 // buffered pages dropped by the queue cap

	PressureDrains int64 // times the layer decided to release memory
	Donated        int64 // pages handed to the daemon on request (reactive mode)
}

type workKind int8

const (
	workPf workKind = iota
	workRel
)

type workItem struct {
	kind  workKind
	page  int
	pages []int
	prios []int // eq. 2 reuse priority of each released page
}

// relQueue buffers releases for one tag (Figure 6(b)).
type relQueue struct {
	tag   int
	prio  int
	pages []int
}

// relHint is a release hint held back by an injected delay.
type relHint struct {
	tag  int
	prio int
	page int64
}

// maxLateHints bounds the held-back hint buffer; overflow means the
// hints are simply lost (a drop, the milder fault).
const maxLateHints = 4096

// Layer is the run-time layer for one out-of-core process. It
// implements compiler.Hints.
type Layer struct {
	cfg Config
	p   *kernel.Process
	pm  *pdpm.PM
	th  *kernel.Thread

	lastRel map[int]int64
	queues  map[int]*relQueue

	// ev is the system's flight recorder, captured at New; nil when
	// recording is off.
	ev *events.Recorder

	// chaos is the system's fault injector, captured at New; nil when
	// injection is off. lateHints holds hints an injected delay kept
	// from the layer; they arrive after the next undelayed hint.
	chaos     *chaos.Injector
	lateHints []relHint

	work     []workItem
	workWait *sim.Waitq

	userCarry float64
	Stats     Stats
}

var _ compiler.Hints = (*Layer)(nil)

// New creates the run-time layer for process p. pm may be nil only in
// ModeOriginal. Worker threads are spawned for all hinted modes.
func New(p *kernel.Process, pm *pdpm.PM, cfg Config) *Layer {
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.ReleaseBatch <= 0 {
		cfg.ReleaseBatch = 100
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 1 << 17
	}
	if cfg.MaxPfQueue <= 0 {
		cfg.MaxPfQueue = 1 << 14
	}
	if cfg.Headroom < 0 {
		cfg.Headroom = 0
	}
	l := &Layer{
		cfg:      cfg,
		p:        p,
		pm:       pm,
		ev:       p.Sys.Events,
		chaos:    p.Sys.Chaos,
		lastRel:  map[int]int64{},
		queues:   map[int]*relQueue{},
		workWait: sim.NewWaitq(p.Name + ".rtwork"),
	}
	if cfg.Mode.UsesPrefetch() {
		if pm == nil {
			panic("rt: hinted mode requires a PagingDirected PM")
		}
		for i := 0; i < cfg.Workers; i++ {
			p.SpawnThread("pf", l.worker)
		}
	}
	if cfg.Mode == ModeReactive {
		// Donate to the process's home-node daemon: that is the clock
		// that sweeps (and would otherwise steal from) this space.
		p.HomeDaemon().RegisterDonor(pageout.Donor{AS: p.AS, Pick: l.donate})
	}
	return l
}

// donate implements the reactive victim provider: hand the daemon up
// to max buffered pages, lowest priority first.
func (l *Layer) donate(max int) []int {
	var out []int
	// Gather queues by ascending priority (same order as drains).
	byPrio := map[int][]*relQueue{}
	var prios []int
	for _, q := range l.queues {
		if len(q.pages) == 0 {
			continue
		}
		if len(byPrio[q.prio]) == 0 {
			prios = append(prios, q.prio)
		}
		byPrio[q.prio] = append(byPrio[q.prio], q)
	}
	sort.Ints(prios)
	for _, prio := range prios {
		qs := byPrio[prio]
		sort.Slice(qs, func(i, j int) bool { return qs[i].tag < qs[j].tag })
		for len(out) < max {
			progress := false
			for _, q := range qs {
				if len(q.pages) == 0 || len(out) >= max {
					continue
				}
				out = append(out, q.pages[0])
				copy(q.pages, q.pages[1:])
				q.pages = q.pages[:len(q.pages)-1]
				progress = true
			}
			if !progress {
				break
			}
		}
		if len(out) >= max {
			break
		}
	}
	l.Stats.Donated += int64(len(out))
	return out
}

// Bind attaches the main application thread; must be called from the
// thread's body before running compiled code.
func (l *Layer) Bind(th *kernel.Thread) { l.th = th }

// Touch implements compiler.Hints.
func (l *Layer) Touch(page int64, write bool) {
	l.th.Touch(int(page), write)
}

// Work implements compiler.Hints, carrying fractional nanoseconds so
// no computation is lost to truncation.
func (l *Layer) Work(ns float64) {
	ns += l.userCarry
	t := sim.Time(ns)
	l.userCarry = ns - float64(t)
	if t > 0 {
		l.th.User(t)
	}
}

// overhead charges the main thread for executing one inserted call.
func (l *Layer) overhead() {
	if l.cfg.PerCallNS > 0 {
		l.Work(l.cfg.PerCallNS)
	}
}

// Prefetch implements compiler.Hints: bitmap-filter each page and hand
// the misses to the worker threads.
func (l *Layer) Prefetch(tag int, pages []int64) {
	if !l.cfg.Mode.UsesPrefetch() {
		return
	}
	for _, pg := range pages {
		// Chaos: a dropped hint never reaches the layer; a duplicated
		// one arrives twice (the copy usually dies in the bitmap
		// filter or comes back PrefetchAlreadyIn).
		if l.chaos.Fire(chaos.PrefetchDrop, l.p.Name, int(pg)) {
			continue
		}
		l.prefetch1(pg)
		if l.chaos.Fire(chaos.PrefetchDup, l.p.Name, int(pg)) {
			l.prefetch1(pg)
		}
	}
}

// prefetch1 handles the arrival of one prefetch hint.
func (l *Layer) prefetch1(pg int64) {
	l.Stats.PrefetchCalls++
	l.overhead()
	p := int(pg)
	if p < 0 || p >= l.pm.AS().NumPages() {
		return
	}
	// "the bitmap is checked to see if a prefetch is really
	// needed."
	if l.pm.Shared().Test(p) {
		l.Stats.PrefetchFiltered++
		l.ev.Emit(events.RTPrefetchFilter, l.p.Name, "", p, 0, 0)
		return
	}
	if len(l.work) >= l.cfg.MaxPfQueue {
		l.Stats.PrefetchDropped++
		l.ev.Emit(events.RTPrefetchDrop, l.p.Name, "", p, 0, 0)
		return
	}
	l.Stats.PrefetchIssued++
	l.ev.Emit(events.RTPrefetchIssue, l.p.Name, "", p, 0, 0)
	l.work = append(l.work, workItem{kind: workPf, page: p})
	l.workWait.WakeOne()
}

// Release implements compiler.Hints: chaos hint perturbation, then the
// one-request-behind tag filter followed by either immediate issue or
// priority buffering.
func (l *Layer) Release(tag int, prio int, page int64) {
	if !l.cfg.Mode.UsesRelease() {
		return
	}
	// Chaos: hints can be lost before the layer sees them, held back
	// and delivered out of order after a later hint, or delivered
	// twice (the copy dies in the one-request-behind filter).
	if l.chaos.Fire(chaos.ReleaseDrop, l.p.Name, int(page)) {
		return
	}
	if l.chaos.Fire(chaos.ReleaseLate, l.p.Name, int(page)) {
		if len(l.lateHints) < maxLateHints {
			l.lateHints = append(l.lateHints, relHint{tag: tag, prio: prio, page: page})
		}
		return
	}
	l.release1(tag, prio, page)
	if l.chaos.Fire(chaos.ReleaseDup, l.p.Name, int(page)) {
		l.release1(tag, prio, page)
	}
	for len(l.lateHints) > 0 {
		h := l.lateHints[0]
		l.lateHints = l.lateHints[1:]
		l.release1(h.tag, h.prio, h.page)
	}
}

// release1 handles the arrival of one release hint.
func (l *Layer) release1(tag int, prio int, page int64) {
	l.Stats.ReleaseCalls++
	l.overhead()

	// "The first release request for any tag is recorded until the
	// next request for that tag is issued. If a release request
	// identifies the same page as the previous request, it is dropped
	// since the page is obviously still in use."
	prev, ok := l.lastRel[tag]
	if !ok {
		l.lastRel[tag] = page
		return
	}
	if prev == page {
		l.Stats.ReleaseDupDropped++
		l.ev.Emit(events.RTReleaseDup, l.p.Name, "", int(page), 0, 0)
		return
	}
	l.lastRel[tag] = page

	p := int(prev)
	if p < 0 || p >= l.pm.AS().NumPages() {
		return
	}
	// "the requests inserted by the compiler are checked against the
	// bitvector to make sure that the pages are in memory."
	if !l.pm.Shared().Test(p) {
		l.Stats.ReleaseNotResident++
		l.ev.Emit(events.RTReleaseNotRes, l.p.Name, "", p, 0, 0)
		return
	}

	if l.cfg.Mode != ModeReactive && (prio == 0 || l.cfg.Mode == ModeAggressive) {
		// "Requests with no reuse (i.e. a priority of 0) are issued to
		// the OS after passing the simple checks."
		l.issueRelease([]int{p}, []int{prio})
		return
	}

	q := l.queues[tag]
	if q == nil {
		q = &relQueue{tag: tag, prio: prio}
		l.queues[tag] = q
	}
	if len(q.pages) >= l.cfg.MaxQueue {
		l.Stats.ReleaseOverflow++
		l.ev.Emit(events.RTReleaseOverflow, l.p.Name, "", q.pages[0], 0, 0)
		copy(q.pages, q.pages[1:])
		q.pages = q.pages[:len(q.pages)-1]
	}
	q.pages = append(q.pages, p)
	l.Stats.ReleaseBuffered++
	l.ev.Emit(events.RTReleaseBuffer, l.p.Name, "", p, int64(prio), 0)
	if l.cfg.Mode != ModeReactive {
		// Reactive mode never releases pro-actively; pages leave only
		// when the daemon asks through the donor callback.
		l.checkPressure()
	}
}

// checkPressure reads the (possibly stale) shared page and, when usage
// nears the limit, drains ~ReleaseBatch pages from the lowest-priority
// queues, round-robin within a priority level.
func (l *Layer) checkPressure() {
	sp := l.pm.Shared()
	if sp.Current < sp.Limit-l.cfg.Headroom {
		return
	}
	l.checkPressureForced()
}

// checkPressureForced drains one batch unconditionally (tests and
// Flush-like paths).
func (l *Layer) checkPressureForced() {
	l.Stats.PressureDrains++
	if l.ev != nil {
		sp := l.pm.Shared()
		l.ev.Emit(events.RTPressureDrain, l.p.Name, "", -1, int64(sp.Current), int64(sp.Limit))
	}
	need := l.cfg.ReleaseBatch
	var drained, drainedPrios []int

	// Group queues by priority, ascending.
	byPrio := map[int][]*relQueue{}
	var prios []int
	for _, q := range l.queues {
		if len(q.pages) == 0 {
			continue
		}
		if len(byPrio[q.prio]) == 0 {
			prios = append(prios, q.prio)
		}
		byPrio[q.prio] = append(byPrio[q.prio], q)
	}
	sort.Ints(prios)
	for _, prio := range prios {
		qs := byPrio[prio]
		sort.Slice(qs, func(i, j int) bool { return qs[i].tag < qs[j].tag })
		// Round-robin across queues at this priority.
		for need > 0 {
			progress := false
			for _, q := range qs {
				if len(q.pages) == 0 || need == 0 {
					continue
				}
				drained = append(drained, q.pages[0])
				drainedPrios = append(drainedPrios, q.prio)
				copy(q.pages, q.pages[1:])
				q.pages = q.pages[:len(q.pages)-1]
				need--
				progress = true
			}
			if !progress {
				break
			}
		}
		if need == 0 {
			break
		}
	}
	if len(drained) > 0 {
		l.issueRelease(drained, drainedPrios)
	}
}

// issueRelease hands pages (with their parallel reuse priorities) to a
// worker thread for the actual system call ("The same set of pthreads
// are also used to actually issue the release requests to the OS").
func (l *Layer) issueRelease(pages, prios []int) {
	l.Stats.ReleaseIssued += int64(len(pages))
	l.ev.Emit(events.RTReleaseIssue, l.p.Name, "", -1, int64(len(pages)), 0)
	l.work = append(l.work, workItem{kind: workRel, pages: pages, prios: prios})
	l.workWait.WakeOne()
}

// BufferedPages returns the number of release requests currently held
// in the priority queues (for tests and diagnostics).
func (l *Layer) BufferedPages() int {
	n := 0
	for _, q := range l.queues {
		n += len(q.pages)
	}
	return n
}

// Flush drains any remaining buffered releases unconditionally (used
// at the end of a program run in tests; the paper's layer never needs
// this because programs exit).
func (l *Layer) Flush() {
	// Deliver hints chaos held back so "late" stays late, not lost.
	for len(l.lateHints) > 0 {
		h := l.lateHints[0]
		l.lateHints = l.lateHints[1:]
		l.release1(h.tag, h.prio, h.page)
	}
	// Drain in sorted priority order: ranging over the queue map
	// directly would bake random map order into the release batch (and
	// so into disk-queue and event order). Found by simvet SV002.
	var prios []int
	for p := range l.queues {
		prios = append(prios, p)
	}
	sort.Ints(prios)
	var all, allPrios []int
	for _, p := range prios {
		q := l.queues[p]
		for range q.pages {
			allPrios = append(allPrios, q.prio)
		}
		all = append(all, q.pages...)
		q.pages = q.pages[:0]
	}
	if len(all) > 0 {
		l.issueRelease(all, allPrios)
	}
}

// worker is the body of one prefetch/release thread.
func (l *Layer) worker(t *kernel.Thread) {
	for {
		for len(l.work) == 0 {
			l.workWait.Wait(t.Proc())
		}
		item := l.work[0]
		copy(l.work, l.work[1:])
		l.work = l.work[:len(l.work)-1]
		switch item.kind {
		case workPf:
			l.pm.Prefetch(t.Exec(), item.page)
		case workRel:
			l.pm.Release(t.Exec(), item.pages, item.prios)
		}
	}
}
