package rt

import (
	"testing"

	"memhogs/internal/kernel"
	"memhogs/internal/pdpm"
	"memhogs/internal/sim"
)

// rig builds a small machine with one process, its PM, and a layer in
// the given mode. Tests drive the layer from inside the process's main
// thread.
type rig struct {
	sys   *kernel.System
	p     *kernel.Process
	pm    *pdpm.PM
	layer *Layer
}

func newRig(t *testing.T, mode Mode, mutate func(*Config)) *rig {
	t.Helper()
	cfg := kernel.TestConfig()
	sys := kernel.NewSystem(cfg)
	p := sys.NewProcess("app", 128)
	var pm *pdpm.PM
	if mode.UsesPrefetch() {
		pm = p.AttachPM(0)
	}
	rc := DefaultConfig(mode)
	if mutate != nil {
		mutate(&rc)
	}
	return &rig{sys: sys, p: p, pm: pm, layer: New(p, pm, rc)}
}

// drive runs body on the process's main thread and completes the
// simulation.
func (r *rig) drive(body func(th *kernel.Thread)) {
	r.p.Start(true, func(th *kernel.Thread) {
		r.layer.Bind(th)
		body(th)
	})
	r.sys.Run(0)
}

func TestPrefetchFilteredByBitmap(t *testing.T) {
	r := newRig(t, ModePrefetch, nil)
	r.drive(func(th *kernel.Thread) {
		r.layer.Touch(3, false) // page in
		r.layer.Prefetch(0, []int64{3})
	})
	if r.layer.Stats.PrefetchFiltered != 1 {
		t.Fatalf("stats = %+v", r.layer.Stats)
	}
	if r.layer.Stats.PrefetchIssued != 0 {
		t.Fatal("resident page prefetched anyway")
	}
}

func TestPrefetchIssuedThroughWorkers(t *testing.T) {
	r := newRig(t, ModePrefetch, nil)
	r.drive(func(th *kernel.Thread) {
		r.layer.Prefetch(0, []int64{5, 6, 7})
		// Give the workers time to complete the reads.
		th.SleepIdle(100 * sim.Millisecond)
		for _, vpn := range []int{5, 6, 7} {
			if !r.p.AS.IsResident(vpn) {
				t.Errorf("page %d not prefetched", vpn)
			}
		}
	})
	if r.layer.Stats.PrefetchIssued != 3 {
		t.Fatalf("issued = %d, want 3", r.layer.Stats.PrefetchIssued)
	}
	// Prefetch service time lands on worker threads, not the app.
	if r.p.WorkerTimes[1] == 0 { // vm.BucketSystem
		t.Error("workers consumed no system time")
	}
}

func TestReleaseOneBehindFilter(t *testing.T) {
	r := newRig(t, ModeAggressive, nil)
	r.drive(func(th *kernel.Thread) {
		for vpn := 0; vpn < 4; vpn++ {
			r.layer.Touch(int64(vpn), false)
		}
		// First request for a tag is recorded, not issued.
		r.layer.Release(7, 0, 0)
		if r.layer.Stats.ReleaseIssued != 0 {
			t.Error("first request issued immediately")
		}
		// Same page again: dropped.
		r.layer.Release(7, 0, 0)
		if r.layer.Stats.ReleaseDupDropped != 1 {
			t.Error("duplicate not dropped")
		}
		// Different page: the previously recorded page is issued.
		r.layer.Release(7, 0, 1)
		if r.layer.Stats.ReleaseIssued != 1 {
			t.Errorf("previous page not issued: %+v", r.layer.Stats)
		}
		th.SleepIdle(10 * sim.Millisecond)
		if r.p.AS.IsResident(0) {
			t.Error("page 0 not freed")
		}
		if !r.p.AS.IsResident(1) {
			t.Error("page 1 freed too early (it is the recorded page)")
		}
	})
}

func TestReleaseNotResidentDropped(t *testing.T) {
	r := newRig(t, ModeAggressive, nil)
	r.drive(func(th *kernel.Thread) {
		r.layer.Release(1, 0, 40)
		r.layer.Release(1, 0, 41) // would issue 40, but 40 is not resident
	})
	if r.layer.Stats.ReleaseNotResident != 1 {
		t.Fatalf("stats = %+v", r.layer.Stats)
	}
}

func TestBufferedHoldsReuseReleases(t *testing.T) {
	r := newRig(t, ModeBuffered, nil)
	r.drive(func(th *kernel.Thread) {
		for vpn := 0; vpn < 8; vpn++ {
			r.layer.Touch(int64(vpn), false)
		}
		// Priority > 0 requests are buffered, not issued (no memory
		// pressure on the empty machine).
		for vpn := 0; vpn < 8; vpn++ {
			r.layer.Release(3, 2, int64(vpn))
		}
		if r.layer.Stats.ReleaseIssued != 0 {
			t.Errorf("buffered mode issued under no pressure: %+v", r.layer.Stats)
		}
		if r.layer.BufferedPages() != 7 { // one-behind holds one
			t.Errorf("buffered = %d, want 7", r.layer.BufferedPages())
		}
		// Zero-priority requests bypass the buffer.
		r.layer.Release(4, 0, 0)
		r.layer.Release(4, 0, 1)
		if r.layer.Stats.ReleaseIssued != 1 {
			t.Errorf("zero-priority request was buffered: %+v", r.layer.Stats)
		}
	})
}

func TestAggressiveIssuesReuseReleases(t *testing.T) {
	r := newRig(t, ModeAggressive, nil)
	r.drive(func(th *kernel.Thread) {
		for vpn := 0; vpn < 4; vpn++ {
			r.layer.Touch(int64(vpn), false)
		}
		r.layer.Release(3, 2, 0)
		r.layer.Release(3, 2, 1)
		if r.layer.Stats.ReleaseIssued != 1 {
			t.Errorf("aggressive mode buffered a reuse release: %+v", r.layer.Stats)
		}
	})
}

func TestFlushDrainsBuffers(t *testing.T) {
	r := newRig(t, ModeBuffered, nil)
	r.drive(func(th *kernel.Thread) {
		for vpn := 0; vpn < 4; vpn++ {
			r.layer.Touch(int64(vpn), false)
		}
		for vpn := 0; vpn < 4; vpn++ {
			r.layer.Release(1, 3, int64(vpn))
		}
		r.layer.Flush()
		if r.layer.BufferedPages() != 0 {
			t.Error("flush left pages buffered")
		}
		th.SleepIdle(10 * sim.Millisecond)
		if r.p.AS.IsResident(0) {
			t.Error("flushed release not executed")
		}
	})
}

func TestDrainLowestPriorityFirst(t *testing.T) {
	r := newRig(t, ModeBuffered, func(c *Config) { c.ReleaseBatch = 2 })
	r.drive(func(th *kernel.Thread) {
		for vpn := 0; vpn < 12; vpn++ {
			r.layer.Touch(int64(vpn), false)
		}
		// Two tags at different priorities. Feed 4 pages each (one
		// stays recorded per tag).
		for i := 0; i < 4; i++ {
			r.layer.Release(1, 1, int64(i))   // low priority: drain first
			r.layer.Release(2, 8, int64(6+i)) // high priority: retain
		}
		// Force a drain regardless of the (ample) free memory.
		r.layer.checkPressureForced()
		th.SleepIdle(10 * sim.Millisecond)
		// The drained pages must come from the low-priority queue.
		if r.p.AS.IsResident(0) || r.p.AS.IsResident(1) {
			t.Error("low-priority pages not drained first")
		}
		if !r.p.AS.IsResident(6) {
			t.Error("high-priority page drained before low-priority queue emptied")
		}
	})
}

func TestWorkAccumulatesFractions(t *testing.T) {
	r := newRig(t, ModeOriginal, nil)
	r.drive(func(th *kernel.Thread) {
		// 10000 calls of 0.3 ns must accumulate to ~3 us, not zero.
		for i := 0; i < 10000; i++ {
			r.layer.Work(0.3)
		}
		th.FlushUser()
	})
	if got := r.p.Times[0]; got < 2900*sim.Nanosecond || got > 3100*sim.Nanosecond {
		t.Fatalf("user time = %v, want ~3us", got)
	}
}

func TestOriginalModeIgnoresHints(t *testing.T) {
	r := newRig(t, ModeOriginal, nil)
	r.drive(func(th *kernel.Thread) {
		r.layer.Prefetch(0, []int64{1})
		r.layer.Release(0, 0, 1)
		r.layer.Release(0, 0, 2)
	})
	if r.layer.Stats.PrefetchCalls != 0 || r.layer.Stats.ReleaseCalls != 0 {
		t.Fatalf("original mode processed hints: %+v", r.layer.Stats)
	}
}

func TestModeStrings(t *testing.T) {
	want := map[Mode]string{ModeOriginal: "O", ModePrefetch: "P", ModeAggressive: "R", ModeBuffered: "B"}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d = %q, want %q", m, m.String(), s)
		}
	}
	if ModeOriginal.UsesPrefetch() || !ModeBuffered.UsesRelease() || ModePrefetch.UsesRelease() {
		t.Fatal("mode predicates wrong")
	}
}

func TestHintedModeRequiresPM(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic without PM")
		}
	}()
	cfg := kernel.TestConfig()
	sys := kernel.NewSystem(cfg)
	p := sys.NewProcess("app", 16)
	New(p, nil, DefaultConfig(ModePrefetch))
}

func TestPrefetchQueueOverflowDrops(t *testing.T) {
	r := newRig(t, ModePrefetch, func(c *Config) { c.MaxPfQueue = 4; c.Workers = 1 })
	r.drive(func(th *kernel.Thread) {
		pages := make([]int64, 32)
		for i := range pages {
			pages[i] = int64(i)
		}
		r.layer.Prefetch(0, pages)
	})
	if r.layer.Stats.PrefetchDropped == 0 {
		t.Fatalf("no prefetches dropped at the queue cap: %+v", r.layer.Stats)
	}
}

func TestPrefetchOutOfRangeIgnored(t *testing.T) {
	r := newRig(t, ModePrefetch, nil)
	r.drive(func(th *kernel.Thread) {
		r.layer.Prefetch(0, []int64{-1, 1 << 30})
	})
	if r.layer.Stats.PrefetchIssued != 0 {
		t.Fatal("out-of-range prefetch issued")
	}
}

func TestReactiveBuffersZeroPriority(t *testing.T) {
	r := newRig(t, ModeReactive, nil)
	r.drive(func(th *kernel.Thread) {
		for vpn := 0; vpn < 4; vpn++ {
			r.layer.Touch(int64(vpn), false)
		}
		r.layer.Release(1, 0, 0)
		r.layer.Release(1, 0, 1)
		if r.layer.Stats.ReleaseIssued != 0 {
			t.Error("reactive mode issued a pro-active release")
		}
		if r.layer.BufferedPages() != 1 {
			t.Errorf("buffered = %d, want 1", r.layer.BufferedPages())
		}
		// The daemon's donor pull takes the buffered page.
		got := r.layer.donate(10)
		if len(got) != 1 || got[0] != 0 {
			t.Errorf("donate = %v, want [0]", got)
		}
		if r.layer.donate(10) != nil {
			t.Error("empty queues still donated")
		}
	})
	if r.layer.Stats.Donated != 1 {
		t.Fatalf("Donated = %d", r.layer.Stats.Donated)
	}
}

func TestDonatePriorityOrder(t *testing.T) {
	r := newRig(t, ModeReactive, nil)
	r.drive(func(th *kernel.Thread) {
		for vpn := 0; vpn < 8; vpn++ {
			r.layer.Touch(int64(vpn), false)
		}
		// Tag 1 at priority 4, tag 2 at priority 1: donations must
		// come from priority 1 first.
		r.layer.Release(1, 4, 0)
		r.layer.Release(1, 4, 1) // buffers page 0
		r.layer.Release(2, 1, 4)
		r.layer.Release(2, 1, 5) // buffers page 4
		got := r.layer.donate(1)
		if len(got) != 1 || got[0] != 4 {
			t.Fatalf("donate = %v, want [4] (lowest priority first)", got)
		}
	})
}

func TestQueueOverflowDropsOldest(t *testing.T) {
	r := newRig(t, ModeBuffered, func(c *Config) { c.MaxQueue = 4 })
	r.drive(func(th *kernel.Thread) {
		for vpn := 0; vpn < 16; vpn++ {
			r.layer.Touch(int64(vpn), false)
		}
		for i := 0; i < 10; i++ {
			r.layer.Release(1, 2, int64(i))
		}
	})
	if r.layer.Stats.ReleaseOverflow == 0 {
		t.Fatalf("no overflow recorded: %+v", r.layer.Stats)
	}
	if r.layer.BufferedPages() > 4 {
		t.Fatalf("queue exceeded cap: %d", r.layer.BufferedPages())
	}
}
