package sim

import "fmt"

// Proc is a simulated process: a goroutine that runs in lockstep with
// the event loop. At most one Proc goroutine executes at any real
// moment; all others are parked waiting on their resume channel.
//
// Proc methods that advance or block (Sleep, Park, and everything
// built on them) must only be called from within the Proc's own body.
type Proc struct {
	sim      *Sim
	name     string
	resume   chan struct{}
	finished bool

	// parked is true while the process is blocked on a Waitq (as
	// opposed to sleeping on a timer). Used by Waitq bookkeeping.
	parked bool
}

// Name returns the process name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// Sim returns the simulator this process belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.sim.now }

// Spawn creates a process named name running body and schedules it to
// start at the current virtual time. It returns the new Proc, which
// can be woken or inspected but whose blocking methods belong to the
// body goroutine alone.
func (s *Sim) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{sim: s, name: name, resume: make(chan struct{})}
	s.nprocs++
	go func() {
		<-p.resume // wait for first dispatch
		defer func() {
			p.finished = true
			s.nprocs--
			s.yield <- struct{}{}
		}()
		body(p)
	}()
	s.scheduleResume(p, s.now)
	return p
}

// SpawnAt is Spawn with a delayed start time.
func (s *Sim) SpawnAt(t Time, name string, body func(p *Proc)) *Proc {
	p := &Proc{sim: s, name: name, resume: make(chan struct{})}
	s.nprocs++
	go func() {
		<-p.resume
		defer func() {
			p.finished = true
			s.nprocs--
			s.yield <- struct{}{}
		}()
		body(p)
	}()
	s.scheduleResume(p, t)
	return p
}

// yieldToLoop returns control to the event loop and blocks until the
// process is next dispatched.
func (p *Proc) yieldToLoop() {
	p.sim.yield <- struct{}{}
	<-p.resume
}

// Sleep advances virtual time by d for this process. Other events run
// in the meantime.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: %s: negative sleep %d", p.name, d))
	}
	p.sim.scheduleResume(p, p.sim.now+d)
	p.yieldToLoop()
}

// Park blocks the process indefinitely until some other party calls
// Wake. The caller is responsible for having registered itself
// somewhere a waker will find it (Waitq does this automatically).
func (p *Proc) Park() {
	p.parked = true
	p.yieldToLoop()
	p.parked = false
}

// Wake schedules p to resume at the current virtual time. It is safe
// to call from event callbacks or from other processes; the wake-up is
// delivered through the event queue, preserving determinism.
func (p *Proc) Wake() {
	p.sim.scheduleResume(p, p.sim.now)
}

// WakeAt schedules p to resume at time t.
func (p *Proc) WakeAt(t Time) {
	p.sim.scheduleResume(p, t)
}

// Finished reports whether the process body has returned.
func (p *Proc) Finished() bool { return p.finished }
