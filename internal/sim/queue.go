package sim

// The event queue. Scheduling and dispatch are the two innermost
// operations of the whole simulator — every page touch that charges
// CPU, every disk completion, every lock handoff goes through here —
// so the queue is built for zero per-event allocation:
//
//   - Event records live in a preallocated arena with an intrusive
//     free list. Scheduling reuses a free slot; dispatch returns it.
//     The arena grows by doubling only when every slot is in use, so
//     steady-state scheduling never allocates (the old implementation
//     allocated one *event per schedule and boxed it through
//     container/heap's interface{} Push/Pop).
//   - The priority queue is an implicit 4-ary min-heap of small
//     (at, seq, slot) records ordered by (at, seq) — the FIFO
//     tie-break on simultaneous events that determinism relies on.
//     A 4-ary heap halves the tree depth of a binary heap and keeps
//     siblings on one cache line, which measurably speeds the
//     sift-down that dominates dispatch.
//
// The heap's backing array always has capacity for one slot per arena
// record (an event queued = an arena slot owned), so push can extend
// it by reslicing without append's grow path.

// eslot is one heap entry: the ordering key plus the arena index of
// the payload.
type eslot struct {
	at  Time
	seq uint64
	idx int32
}

// event is the payload of a scheduled occurrence: either a plain
// callback run inside the event loop, or the resumption of a parked
// process. The ordering key lives in the heap slot, not here.
type event struct {
	fn   func()
	proc *Proc
	next int32 // free-list link, valid while the slot is free
}

// eventQueue is the zero-allocation event queue.
type eventQueue struct {
	arena []event
	free  int32 // head of the free-slot list, -1 when none
	heap  []eslot
}

const initialQueueCap = 256

// init sets up the arena and free list; called lazily on first push.
func (q *eventQueue) grow() {
	old := len(q.arena)
	n := old * 2
	if n == 0 {
		n = initialQueueCap
	}
	arena := make([]event, n)
	copy(arena, q.arena)
	q.arena = arena
	heap := make([]eslot, len(q.heap), n)
	copy(heap, q.heap)
	q.heap = heap
	// Thread the new slots onto the free list, lowest index first so
	// allocation order is deterministic.
	for i := n - 1; i >= old; i-- {
		q.arena[i].next = q.free
		q.free = int32(i)
	}
}

// push schedules (fn, proc) at key (at, seq). Exactly one of fn and
// proc is non-nil.
//
//simvet:hot
func (q *eventQueue) push(at Time, seq uint64, fn func(), proc *Proc) {
	if q.free < 0 {
		q.grow()
	}
	idx := q.free
	ev := &q.arena[idx]
	q.free = ev.next
	ev.fn = fn
	ev.proc = proc

	// Sift the new key up from the bottom of the 4-ary heap. The
	// backing array always has arena-sized capacity, so the reslice
	// cannot grow.
	i := len(q.heap)
	q.heap = q.heap[:i+1]
	for i > 0 {
		parent := (i - 1) >> 2
		p := q.heap[parent]
		if p.at < at || (p.at == at && p.seq < seq) {
			break
		}
		q.heap[i] = p
		i = parent
	}
	q.heap[i] = eslot{at: at, seq: seq, idx: idx}
}

// peekAt returns the virtual time of the earliest event. The queue
// must be non-empty.
//
//simvet:hot
func (q *eventQueue) peekAt() Time { return q.heap[0].at }

// pop removes the earliest event and returns its payload, releasing
// the arena slot.
//
//simvet:hot
func (q *eventQueue) pop() (func(), *Proc) {
	top := q.heap[0]
	ev := &q.arena[top.idx]
	fn, proc := ev.fn, ev.proc
	ev.fn = nil
	ev.proc = nil
	ev.next = q.free
	q.free = top.idx

	n := len(q.heap) - 1
	last := q.heap[n]
	q.heap = q.heap[:n]
	if n > 0 {
		// Sift the displaced last key down from the root.
		i := 0
		for {
			first := i<<2 + 1
			if first >= n {
				break
			}
			// Smallest of up to four children.
			min := first
			end := first + 4
			if end > n {
				end = n
			}
			for c := first + 1; c < end; c++ {
				if q.heap[c].at < q.heap[min].at ||
					(q.heap[c].at == q.heap[min].at && q.heap[c].seq < q.heap[min].seq) {
					min = c
				}
			}
			m := q.heap[min]
			if last.at < m.at || (last.at == m.at && last.seq < m.seq) {
				break
			}
			q.heap[i] = m
			i = min
		}
		q.heap[i] = last
	}
	return fn, proc
}

// len returns the number of queued events.
func (q *eventQueue) len() int { return len(q.heap) }
