package sim

import "math"

// Rand is a small deterministic pseudo-random generator
// (xorshift64star). Every stochastic component of the model owns its
// own Rand seeded from the run configuration, so that runs are
// reproducible and components do not perturb each other's streams.
type Rand struct{ state uint64 }

// NewRand creates a generator from a non-zero seed; a zero seed is
// replaced with a fixed constant.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Duration returns a pseudo-random Time in [lo, hi).
func (r *Rand) Duration(lo, hi Time) Time {
	if hi <= lo {
		return lo
	}
	return lo + Time(r.Uint64()%uint64(hi-lo))
}

// Exp returns a pseudo-random exponentially distributed Time with the
// given mean (an open-loop Poisson arrival process's inter-arrival
// gap). The draw uses -mean*ln(1-U) with U in [0, 1), so it is fully
// deterministic per stream and never negative.
func (r *Rand) Exp(mean Time) Time {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	// ln(1-u) is finite because u < 1.
	d := -float64(mean) * math.Log(1-u)
	if d >= float64(1<<62) {
		return 1 << 62
	}
	return Time(d)
}

// Hash64 is a deterministic stateless mixer used to derive data values
// (e.g. BUK's random keys) from indices without storing arrays.
func Hash64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
