// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine models virtual time at nanosecond resolution and runs
// simulated processes as goroutines that execute one at a time: the
// event loop hands control to exactly one process goroutine and waits
// for it to block again before dispatching the next event. Together
// with FIFO tie-breaking on simultaneous events this makes every run
// fully deterministic, which the experiment harness relies on.
//
// The rest of the system (disks, daemons, workloads) is built from
// three primitives defined here: timed events, parkable processes, and
// wait queues (from which locks and semaphores are derived).
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point in virtual time, in nanoseconds since the start of
// the simulation.
type Time int64

// Convenient durations expressed in Time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String formats a Time with a unit suited to its magnitude.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis returns the time as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// event is a scheduled occurrence: either a plain callback run inside
// the event loop, or the resumption of a parked process.
type event struct {
	at   Time
	seq  uint64 // FIFO tie-breaker for simultaneous events
	fn   func()
	proc *Proc
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

//simvet:hot
//simvet:allow SV006 heap growth is amortized; popped slots are reused
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }

//simvet:hot
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Sim is a discrete-event simulator. The zero value is not usable; use
// New.
type Sim struct {
	now     Time
	seq     uint64
	events  eventHeap
	yield   chan struct{} // process goroutine -> event loop handoff
	current *Proc         // process currently executing, nil in event loop
	nprocs  int           // live (spawned, not finished) processes
	stopped bool
}

// New creates an empty simulator positioned at time zero.
func New() *Sim {
	return &Sim{yield: make(chan struct{})}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// At schedules fn to run inside the event loop at time t. Scheduling
// in the past is an error in the caller; it is clamped to now so the
// simulation never moves backwards.
//
//simvet:hot
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	//simvet:allow SV006 one record per scheduled event; the heap owns it until dispatch
	heap.Push(&s.events, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now.
//
//simvet:hot
func (s *Sim) After(d Time, fn func()) { s.At(s.now+d, fn) }

// scheduleResume enqueues the resumption of p at time t.
//
//simvet:hot
func (s *Sim) scheduleResume(p *Proc, t Time) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	//simvet:allow SV006 one record per scheduled resumption; the heap owns it until dispatch
	heap.Push(&s.events, &event{at: t, seq: s.seq, proc: p})
}

// Stop makes Run return after the current event completes. Pending
// events remain queued; Run may be called again to continue.
func (s *Sim) Stop() { s.stopped = true }

// Run executes events until the queue drains, the horizon passes, or
// Stop is called. A zero horizon means "run until idle". It returns
// the virtual time at which it stopped.
//
//simvet:hot
func (s *Sim) Run(horizon Time) Time {
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		ev := s.events[0]
		if horizon > 0 && ev.at > horizon {
			s.now = horizon
			break
		}
		heap.Pop(&s.events)
		s.now = ev.at
		if ev.proc != nil {
			s.dispatch(ev.proc)
		} else {
			ev.fn()
		}
	}
	return s.now
}

// dispatch hands control to p's goroutine and blocks until it parks
// again or finishes.
//
//simvet:hot
func (s *Sim) dispatch(p *Proc) {
	if p.finished {
		return
	}
	s.current = p
	p.resume <- struct{}{}
	<-s.yield
	s.current = nil
}

// Current returns the process whose goroutine is executing, or nil if
// control is inside the event loop.
func (s *Sim) Current() *Proc { return s.current }

// Idle reports whether no events remain.
func (s *Sim) Idle() bool { return len(s.events) == 0 }

// LiveProcs returns the number of spawned processes that have not yet
// finished. Useful for detecting deadlock in tests.
func (s *Sim) LiveProcs() int { return s.nprocs }
