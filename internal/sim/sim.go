// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine models virtual time at nanosecond resolution and runs
// simulated processes as goroutines that execute one at a time: the
// event loop hands control to exactly one process goroutine and waits
// for it to block again before dispatching the next event. Together
// with FIFO tie-breaking on simultaneous events this makes every run
// fully deterministic, which the experiment harness relies on.
//
// The rest of the system (disks, daemons, workloads) is built from
// three primitives defined here: timed events, parkable processes, and
// wait queues (from which locks and semaphores are derived).
package sim

import (
	"fmt"
)

// Time is a point in virtual time, in nanoseconds since the start of
// the simulation.
type Time int64

// Convenient durations expressed in Time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String formats a Time with a unit suited to its magnitude.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis returns the time as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Sim is a discrete-event simulator. The zero value is not usable; use
// New.
type Sim struct {
	now     Time
	seq     uint64
	events  eventQueue
	yield   chan struct{} // process goroutine -> event loop handoff
	current *Proc         // process currently executing, nil in event loop
	nprocs  int           // live (spawned, not finished) processes
	stopped bool
	clamps  int64 // past-time schedules clamped to now (caller bugs)
}

// New creates an empty simulator positioned at time zero.
func New() *Sim {
	s := &Sim{yield: make(chan struct{})}
	s.events.free = -1 // empty free list; first push grows the arena
	return s
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// At schedules fn to run inside the event loop at time t. Scheduling
// in the past is an error in the caller; it is clamped to now so the
// simulation never moves backwards, and counted (see ClampedSchedules)
// so the caller bug is observable.
//
//simvet:hot
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
		s.clamps++
	}
	s.seq++
	s.events.push(t, s.seq, fn, nil)
}

// After schedules fn to run d nanoseconds from now.
//
//simvet:hot
func (s *Sim) After(d Time, fn func()) { s.At(s.now+d, fn) }

// scheduleResume enqueues the resumption of p at time t.
//
//simvet:hot
func (s *Sim) scheduleResume(p *Proc, t Time) {
	if t < s.now {
		t = s.now
		s.clamps++
	}
	s.seq++
	s.events.push(t, s.seq, nil, p)
}

// ClampedSchedules returns how many times a schedule (At, After, or a
// process resumption) named a time in the past and was clamped to the
// current time. A nonzero count means some caller computed a stale
// deadline; the standard campaigns assert it stays zero.
func (s *Sim) ClampedSchedules() int64 { return s.clamps }

// Stop makes Run return after the current event completes. Pending
// events remain queued; Run may be called again to continue.
func (s *Sim) Stop() { s.stopped = true }

// Run executes events until the queue drains, the horizon passes, or
// Stop is called. A zero horizon means "run until idle". It returns
// the virtual time at which it stopped.
//
//simvet:hot
func (s *Sim) Run(horizon Time) Time {
	s.stopped = false
	for s.events.len() > 0 && !s.stopped {
		at := s.events.peekAt()
		if horizon > 0 && at > horizon {
			s.now = horizon
			break
		}
		fn, proc := s.events.pop()
		s.now = at
		if proc != nil {
			s.dispatch(proc)
		} else {
			fn()
		}
	}
	return s.now
}

// dispatch hands control to p's goroutine and blocks until it parks
// again or finishes.
//
//simvet:hot
func (s *Sim) dispatch(p *Proc) {
	if p.finished {
		return
	}
	s.current = p
	p.resume <- struct{}{}
	<-s.yield
	s.current = nil
}

// Current returns the process whose goroutine is executing, or nil if
// control is inside the event loop.
func (s *Sim) Current() *Proc { return s.current }

// Idle reports whether no events remain.
func (s *Sim) Idle() bool { return s.events.len() == 0 }

// LiveProcs returns the number of spawned processes that have not yet
// finished. Useful for detecting deadlock in tests.
func (s *Sim) LiveProcs() int { return s.nprocs }
