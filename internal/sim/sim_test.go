package sim

import (
	"container/heap"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.Run(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
	if s.Now() != 30 {
		t.Fatalf("final time = %v, want 30", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", order)
		}
	}
}

func TestHorizonStopsRun(t *testing.T) {
	s := New()
	ran := false
	s.At(100, func() { ran = true })
	end := s.Run(50)
	if ran {
		t.Fatal("event beyond horizon ran")
	}
	if end != 50 {
		t.Fatalf("end = %v, want 50", end)
	}
	// Continuing past the horizon runs the event.
	s.Run(0)
	if !ran {
		t.Fatal("event did not run on resumed Run")
	}
}

func TestStop(t *testing.T) {
	s := New()
	n := 0
	s.At(1, func() { n++; s.Stop() })
	s.At(2, func() { n++ })
	s.Run(0)
	if n != 1 {
		t.Fatalf("Stop did not halt the loop: n=%d", n)
	}
	s.Run(0)
	if n != 2 {
		t.Fatalf("resume after Stop failed: n=%d", n)
	}
}

func TestProcSleep(t *testing.T) {
	s := New()
	var wake Time
	s.Spawn("p", func(p *Proc) {
		p.Sleep(5 * Millisecond)
		wake = p.Now()
	})
	s.Run(0)
	if wake != 5*Millisecond {
		t.Fatalf("woke at %v, want 5ms", wake)
	}
	if s.LiveProcs() != 0 {
		t.Fatalf("live procs = %d, want 0", s.LiveProcs())
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		s := New()
		var log []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			s.Spawn(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					log = append(log, name)
					p.Sleep(Millisecond)
				}
			})
		}
		s.Run(0)
		return log
	}
	first := run()
	for i := 0; i < 3; i++ {
		again := run()
		if len(again) != len(first) {
			t.Fatal("nondeterministic length")
		}
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("nondeterministic interleaving at %d: %v vs %v", j, first, again)
			}
		}
	}
}

func TestParkWake(t *testing.T) {
	s := New()
	var woke Time
	p := s.Spawn("sleeper", func(p *Proc) {
		p.Park()
		woke = p.Now()
	})
	s.At(7*Millisecond, func() { p.Wake() })
	s.Run(0)
	if woke != 7*Millisecond {
		t.Fatalf("woke at %v, want 7ms", woke)
	}
}

func TestWaitqFIFO(t *testing.T) {
	s := New()
	q := NewWaitq("q")
	var order []string
	for _, name := range []string{"first", "second", "third"} {
		name := name
		s.Spawn(name, func(p *Proc) {
			q.Wait(p)
			order = append(order, name)
		})
	}
	s.At(1, func() { q.WakeOne() })
	s.At(2, func() { q.WakeOne() })
	s.At(3, func() { q.WakeOne() })
	s.Run(0)
	want := []string{"first", "second", "third"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order %v, want %v", order, want)
		}
	}
}

func TestLockMutualExclusion(t *testing.T) {
	s := New()
	l := NewLock("l")
	inside := 0
	maxInside := 0
	for i := 0; i < 4; i++ {
		s.Spawn("worker", func(p *Proc) {
			for j := 0; j < 5; j++ {
				l.Acquire(p)
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				p.Sleep(Millisecond)
				inside--
				l.Release(p)
			}
		})
	}
	s.Run(0)
	if maxInside != 1 {
		t.Fatalf("lock admitted %d holders", maxInside)
	}
	if l.Acquisitions != 20 {
		t.Fatalf("acquisitions = %d, want 20", l.Acquisitions)
	}
	if l.Contended == 0 || l.WaitTime == 0 {
		t.Fatal("expected contention to be recorded")
	}
}

func TestLockWaitTimeAccounting(t *testing.T) {
	s := New()
	l := NewLock("l")
	var waited Time
	s.Spawn("holder", func(p *Proc) {
		l.Acquire(p)
		p.Sleep(10 * Millisecond)
		l.Release(p)
	})
	s.Spawn("waiter", func(p *Proc) {
		p.Sleep(Millisecond) // let holder win
		waited = l.Acquire(p)
		l.Release(p)
	})
	s.Run(0)
	if waited != 9*Millisecond {
		t.Fatalf("waited %v, want 9ms", waited)
	}
}

func TestSemLimitsConcurrency(t *testing.T) {
	s := New()
	sem := NewSem("cpu", 2)
	inside, maxInside := 0, 0
	for i := 0; i < 6; i++ {
		s.Spawn("w", func(p *Proc) {
			sem.Acquire(p)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Sleep(Millisecond)
			inside--
			sem.Release()
		})
	}
	s.Run(0)
	if maxInside != 2 {
		t.Fatalf("semaphore admitted %d, want 2", maxInside)
	}
	if sem.Available() != 2 {
		t.Fatalf("tokens not restored: %d", sem.Available())
	}
}

// TestEventOrderProperty property-checks the heap: any multiset of
// scheduled times executes in non-decreasing time order, with FIFO
// order among equal times.
func TestEventOrderProperty(t *testing.T) {
	check := func(times []uint16) bool {
		s := New()
		type rec struct {
			at  Time
			seq int
		}
		var got []rec
		for i, tt := range times {
			at := Time(tt % 64) // force collisions
			i := i
			s.At(at, func() { got = append(got, rec{at: at, seq: i}) })
		}
		s.Run(0)
		if len(got) != len(times) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
			if got[i].at == got[i-1].at && got[i].seq < got[i-1].seq {
				return false // FIFO violated among ties
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRand(1).Uint64() == NewRand(2).Uint64() {
		t.Fatal("different seeds collided immediately")
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		d    Time
		want string
	}{
		{500, "500ns"},
		{2 * Microsecond, "2.000us"},
		{3 * Millisecond, "3.000ms"},
		{4 * Second, "4.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestHash64Stable(t *testing.T) {
	if Hash64(12345) != Hash64(12345) {
		t.Fatal("Hash64 not deterministic")
	}
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		seen[Hash64(i)] = true
	}
	if len(seen) != 1000 {
		t.Fatalf("Hash64 collided within 1000 consecutive inputs: %d unique", len(seen))
	}
}

func TestLockReleaseByNonOwnerPanics(t *testing.T) {
	s := New()
	l := NewLock("l")
	panicked := false
	s.Spawn("owner", func(p *Proc) {
		l.Acquire(p)
		p.Sleep(10 * Millisecond)
		l.Release(p)
	})
	s.Spawn("thief", func(p *Proc) {
		p.Sleep(Millisecond)
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		l.Release(p)
	})
	s.Run(0)
	if !panicked {
		t.Fatal("non-owner release did not panic")
	}
}

func TestLockTryAcquire(t *testing.T) {
	s := New()
	l := NewLock("l")
	s.Spawn("a", func(p *Proc) {
		if !l.TryAcquire(p) {
			t.Error("free lock not acquirable")
		}
		p.Sleep(5 * Millisecond)
		l.Release(p)
	})
	s.Spawn("b", func(p *Proc) {
		p.Sleep(Millisecond)
		if l.TryAcquire(p) {
			t.Error("held lock acquired")
		}
		p.Sleep(10 * Millisecond)
		if !l.TryAcquire(p) {
			t.Error("released lock not acquirable")
		}
		l.Release(p)
	})
	s.Run(0)
}

func TestLockOwnershipHandoffFIFO(t *testing.T) {
	s := New()
	l := NewLock("l")
	var order []string
	for _, name := range []string{"first", "second", "third"} {
		name := name
		s.Spawn(name, func(p *Proc) {
			if name != "first" {
				p.Sleep(Microsecond) // deterministic arrival order
			}
			if name == "third" {
				p.Sleep(Microsecond)
			}
			l.Acquire(p)
			order = append(order, name)
			p.Sleep(Millisecond)
			l.Release(p)
		})
	}
	s.Run(0)
	want := []string{"first", "second", "third"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("handoff order %v, want %v", order, want)
		}
	}
}

func TestWaitqWakeAll(t *testing.T) {
	s := New()
	q := NewWaitq("q")
	woken := 0
	for i := 0; i < 5; i++ {
		s.Spawn("w", func(p *Proc) {
			q.Wait(p)
			woken++
		})
	}
	s.At(Millisecond, func() {
		if q.Len() != 5 {
			t.Errorf("queue length = %d", q.Len())
		}
		q.WakeAll()
	})
	s.Run(0)
	if woken != 5 {
		t.Fatalf("woken = %d, want 5", woken)
	}
	if q.Len() != 0 {
		t.Fatal("queue not emptied")
	}
}

func TestSemWaitingCount(t *testing.T) {
	s := New()
	sem := NewSem("s", 1)
	s.Spawn("holder", func(p *Proc) {
		sem.Acquire(p)
		p.Sleep(10 * Millisecond)
		sem.Release()
	})
	for i := 0; i < 3; i++ {
		s.Spawn("w", func(p *Proc) {
			p.Sleep(Millisecond)
			sem.Acquire(p)
			sem.Release()
		})
	}
	s.At(5*Millisecond, func() {
		if sem.Waiting() != 3 {
			t.Errorf("waiting = %d, want 3", sem.Waiting())
		}
	})
	s.Run(0)
	if sem.Waiting() != 0 || sem.Available() != 1 {
		t.Fatalf("semaphore not restored: %d waiting, %d tokens", sem.Waiting(), sem.Available())
	}
}

func TestRandDurationRange(t *testing.T) {
	r := NewRand(11)
	for i := 0; i < 1000; i++ {
		d := r.Duration(5*Millisecond, 9*Millisecond)
		if d < 5*Millisecond || d >= 9*Millisecond {
			t.Fatalf("Duration out of range: %v", d)
		}
	}
	if r.Duration(5, 5) != 5 {
		t.Fatal("degenerate range not handled")
	}
}

func TestTimeHelpers(t *testing.T) {
	if (2 * Second).Seconds() != 2.0 {
		t.Error("Seconds wrong")
	}
	if (1500 * Microsecond).Millis() != 1.5 {
		t.Error("Millis wrong")
	}
}

func TestSpawnAtDelayedStart(t *testing.T) {
	s := New()
	var started Time = -1
	s.SpawnAt(42*Millisecond, "late", func(p *Proc) { started = p.Now() })
	s.Run(0)
	if started != 42*Millisecond {
		t.Fatalf("started at %v, want 42ms", started)
	}
}

// refEventHeap is the retired container/heap event queue, kept as a
// test oracle: the arena 4-ary heap must dispatch any multiset of
// (time, seq) in exactly the order the old implementation did.
type refEvent struct {
	at  Time
	seq int
}

type refEventHeap []refEvent

func (h refEventHeap) Len() int { return len(h) }
func (h refEventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refEventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refEventHeap) Push(x any)   { *h = append(*h, x.(refEvent)) }
func (h *refEventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// TestEventOrderMatchesRetiredHeap cross-checks the arena queue
// against the container/heap implementation it replaced: the same
// multiset of scheduled times, pushed in the same order, must dispatch
// in the identical sequence.
func TestEventOrderMatchesRetiredHeap(t *testing.T) {
	check := func(times []uint16) bool {
		ref := make(refEventHeap, 0, len(times))
		heap.Init(&ref)
		s := New()
		var got []int
		for i, tt := range times {
			at := Time(tt % 64) // force ties
			heap.Push(&ref, refEvent{at: at, seq: i})
			i := i
			s.At(at, func() { got = append(got, i) })
		}
		s.Run(0)
		if len(got) != len(times) {
			return false
		}
		for i := range got {
			want := heap.Pop(&ref).(refEvent)
			if got[i] != want.seq {
				t.Logf("dispatch %d: got seq %d, retired heap says %d", i, got[i], want.seq)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestScheduleDispatchZeroAllocs pins the arena queue's core promise:
// once the arena has grown to the workload's high-water mark,
// scheduling and dispatching events allocates nothing.
func TestScheduleDispatchZeroAllocs(t *testing.T) {
	s := New()
	fired := 0
	fn := func() { fired++ }
	// Warm the arena past any capacity this test will need.
	for i := 0; i < 256; i++ {
		s.At(Time(i), fn)
	}
	s.Run(0)
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 64; i++ {
			s.At(s.Now()+Time(i), fn)
		}
		s.Run(0)
	})
	if allocs != 0 {
		t.Fatalf("schedule+dispatch allocated %.1f times per run, want 0", allocs)
	}
	if fired == 0 {
		t.Fatal("no events fired")
	}
}

// TestClampCounter pins the clamp observability contract: scheduling
// in the past is executed at "now" and counted, never silent.
func TestClampCounter(t *testing.T) {
	s := New()
	s.At(100, func() {
		s.At(50, func() {}) // stale deadline: clamped to now=100
	})
	s.Run(0)
	if s.ClampedSchedules() != 1 {
		t.Fatalf("ClampedSchedules = %d, want 1", s.ClampedSchedules())
	}
	if s.Now() != 100 {
		t.Fatalf("clamped event ran at %v, want 100", s.Now())
	}
}
