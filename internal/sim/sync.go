package sim

// Waitq is a FIFO queue of parked processes. It is the building block
// for condition-style waiting: a process appends itself and parks;
// wakers pop and wake.
type Waitq struct {
	name  string
	procs []*Proc
}

// NewWaitq creates a named wait queue. The name appears in diagnostics
// only.
func NewWaitq(name string) *Waitq { return &Waitq{name: name} }

// Wait parks p on the queue until a waker releases it. Wake order is
// FIFO.
func (q *Waitq) Wait(p *Proc) {
	q.procs = append(q.procs, p)
	p.Park()
}

// WakeOne wakes the longest-waiting process, if any, and reports
// whether one was woken.
func (q *Waitq) WakeOne() bool {
	if len(q.procs) == 0 {
		return false
	}
	p := q.procs[0]
	copy(q.procs, q.procs[1:])
	q.procs = q.procs[:len(q.procs)-1]
	p.Wake()
	return true
}

// WakeAll wakes every waiting process in FIFO order.
func (q *Waitq) WakeAll() {
	for _, p := range q.procs {
		p.Wake()
	}
	q.procs = q.procs[:0]
}

// Len returns the number of waiting processes.
func (q *Waitq) Len() int { return len(q.procs) }

// Lock is a FIFO mutex for simulated processes. It records aggregate
// wait time and hold time so experiments can attribute lock
// contention (the paper's paging-daemon vs fault-handler interference
// is measured through these counters).
type Lock struct {
	name    string
	owner   *Proc
	waiters []*Proc

	acquiredAt Time

	// Stats, cumulative over the run.
	Acquisitions int64
	Contended    int64 // acquisitions that had to wait
	WaitTime     Time  // total time spent waiting
	HoldTime     Time  // total time held
}

// NewLock creates a named lock.
func NewLock(name string) *Lock { return &Lock{name: name} }

// Name returns the lock's diagnostic name.
func (l *Lock) Name() string { return l.name }

// Acquire blocks p until it owns the lock and returns the time spent
// waiting (zero when uncontended).
func (l *Lock) Acquire(p *Proc) Time {
	l.Acquisitions++
	if l.owner == nil {
		l.owner = p
		l.acquiredAt = p.Now()
		return 0
	}
	l.Contended++
	start := p.Now()
	l.waiters = append(l.waiters, p)
	p.Park()
	// Ownership was transferred to us by Release before the wake.
	if l.owner != p {
		panic("sim: lock ownership not transferred to woken waiter")
	}
	wait := p.Now() - start
	l.WaitTime += wait
	l.acquiredAt = p.Now()
	return wait
}

// TryAcquire acquires the lock if it is free, reporting success.
func (l *Lock) TryAcquire(p *Proc) bool {
	if l.owner != nil {
		return false
	}
	l.Acquisitions++
	l.owner = p
	l.acquiredAt = p.Now()
	return true
}

// Release transfers the lock to the longest-waiting process, or frees
// it. Only the owner may call Release.
func (l *Lock) Release(p *Proc) {
	if l.owner != p {
		panic("sim: release of lock " + l.name + " by non-owner " + p.Name())
	}
	l.HoldTime += p.Now() - l.acquiredAt
	if len(l.waiters) == 0 {
		l.owner = nil
		return
	}
	next := l.waiters[0]
	copy(l.waiters, l.waiters[1:])
	l.waiters = l.waiters[:len(l.waiters)-1]
	l.owner = next
	l.acquiredAt = p.Now() // provisional; fixed up when next resumes
	next.Wake()
}

// Held reports whether any process currently owns the lock.
func (l *Lock) Held() bool { return l.owner != nil }

// HeldBy reports whether p currently owns the lock.
func (l *Lock) HeldBy(p *Proc) bool { return l.owner == p }

// Sem is a FIFO counting semaphore with wait-time accounting.
type Sem struct {
	name    string
	tokens  int
	waiters []*Proc

	Acquisitions int64
	Contended    int64
	WaitTime     Time
}

// NewSem creates a semaphore with n initial tokens.
func NewSem(name string, n int) *Sem { return &Sem{name: name, tokens: n} }

// Acquire takes one token, blocking p if none are available, and
// returns the time spent waiting.
func (m *Sem) Acquire(p *Proc) Time {
	m.Acquisitions++
	if m.tokens > 0 {
		m.tokens--
		return 0
	}
	m.Contended++
	start := p.Now()
	m.waiters = append(m.waiters, p)
	p.Park()
	// The token was handed to us directly by Release.
	wait := p.Now() - start
	m.WaitTime += wait
	return wait
}

// Release returns one token, handing it directly to the
// longest-waiting process if any.
func (m *Sem) Release() {
	if len(m.waiters) > 0 {
		next := m.waiters[0]
		copy(m.waiters, m.waiters[1:])
		m.waiters = m.waiters[:len(m.waiters)-1]
		next.Wake()
		return
	}
	m.tokens++
}

// Available returns the number of free tokens.
func (m *Sem) Available() int { return m.tokens }

// Waiting returns the number of blocked acquirers.
func (m *Sem) Waiting() int { return len(m.waiters) }
