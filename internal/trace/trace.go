// Package trace records the time evolution of the memory system —
// free pages, per-process resident sets, cumulative daemon and
// releaser activity — and renders it as an ASCII timeline. The paper's
// story is about dynamics (the hog sweeping memory, the daemon
// reacting, releases keeping the pool stocked); the timeline makes
// those dynamics visible for any run.
package trace

import (
	"fmt"
	"strings"

	"memhogs/internal/kernel"
	"memhogs/internal/sim"
)

// Sample is one point in time. Resident is parallel to the prefix of
// Recorder.Names that existed when the sample was taken: processes are
// only ever appended, so Resident[i] always belongs to Names[i], and a
// sample taken before process i was created simply has
// len(Resident) <= i.
type Sample struct {
	At        sim.Time
	FreePages int
	Resident  []int // parallel to a prefix of Recorder.Names
	Stolen    int64 // cumulative pages stolen by the paging daemon
	Released  int64 // cumulative pages freed by the releaser
}

// Recorder samples a system at a fixed virtual interval. Like the
// flight recorder, a nil *Recorder is the "tracing off" state: every
// exported method tolerates a nil receiver (enforced by simvet SV004)
// so callers can hold an optional tracer without branching.
//
//simvet:nilsafe
type Recorder struct {
	sys      *kernel.System
	interval sim.Time
	stopped  bool

	Names   []string
	Samples []Sample
}

// Attach starts sampling sys every interval of virtual time, taking
// the first sample immediately so even a run shorter than one interval
// records its initial state. Sampling stops when Stop is called or the
// simulation ends (a pending sample event never blocks Sim.Stop).
func Attach(sys *kernel.System, interval sim.Time) *Recorder {
	if interval <= 0 {
		interval = 100 * sim.Millisecond
	}
	r := &Recorder{sys: sys, interval: interval}
	r.sample()
	r.arm()
	return r
}

// Stop ends sampling.
func (r *Recorder) Stop() {
	if r == nil {
		return
	}
	r.stopped = true
}

func (r *Recorder) arm() {
	r.sys.Sim.After(r.interval, func() {
		if r.stopped {
			return
		}
		r.sample()
		r.arm()
	})
}

func (r *Recorder) sample() {
	// Names grows append-only, keyed by process creation order (the
	// kernel never removes processes), so the Resident columns of
	// samples taken before a process existed stay aligned.
	procs := r.sys.Procs()
	for len(r.Names) < len(procs) {
		r.Names = append(r.Names, procs[len(r.Names)].Name)
	}
	s := Sample{
		At:        r.sys.Now(),
		FreePages: r.sys.Phys.FreeCount(),
		Stolen:    r.sys.DaemonStats().Stolen,
		Released:  r.sys.ReleaserStats().Freed,
	}
	for _, p := range procs {
		s.Resident = append(s.Resident, p.AS.Resident)
	}
	r.Samples = append(r.Samples, s)
}

// gauge renders v against max as a fixed-width bar.
func gauge(v, max, width int) string {
	if max <= 0 {
		max = 1
	}
	n := v * width / max
	if n > width {
		n = width
	}
	if n < 0 {
		n = 0
	}
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

// Render draws the timeline: one row per sample, a bar for free
// memory, one for each process's resident set, and the cumulative
// daemon/releaser counters.
func (r *Recorder) Render(maxRows int) string {
	if r == nil {
		return "tracing disabled\n"
	}
	var b strings.Builder
	total := r.sys.Phys.NumFrames()
	fmt.Fprintf(&b, "memory timeline (%d frames", total)
	for _, n := range r.Names {
		fmt.Fprintf(&b, "; resident[%s]", n)
	}
	b.WriteString("; cumulative stolen/released)\n")

	samples := r.Samples
	stride := 1
	if maxRows > 0 && len(samples) > maxRows {
		stride = (len(samples) + maxRows - 1) / maxRows
	}
	const width = 24
	last := -1
	row := func(s Sample) {
		fmt.Fprintf(&b, "%9s  free %s %4d", s.At, gauge(s.FreePages, total, width), s.FreePages)
		for j, name := range r.Names {
			if j < len(s.Resident) {
				fmt.Fprintf(&b, "  %s %s %4d", name, gauge(s.Resident[j], total, width), s.Resident[j])
			} else {
				// Process did not exist yet at this sample.
				fmt.Fprintf(&b, "  %s %s %4s", name, strings.Repeat(".", width), "-")
			}
		}
		fmt.Fprintf(&b, "  stolen %6d  released %6d\n", s.Stolen, s.Released)
	}
	for i := 0; i < len(samples); i += stride {
		row(samples[i])
		last = i
	}
	// The stride can skip the final sample; always emit it so the last
	// row agrees with Summary()'s end state.
	if n := len(samples); n > 0 && last != n-1 {
		row(samples[n-1])
	}
	return b.String()
}

// Summary reports extremes over the run.
func (r *Recorder) Summary() string {
	if r == nil || len(r.Samples) == 0 {
		return "no samples"
	}
	minFree, maxFree := r.Samples[0].FreePages, r.Samples[0].FreePages
	for _, s := range r.Samples {
		if s.FreePages < minFree {
			minFree = s.FreePages
		}
		if s.FreePages > maxFree {
			maxFree = s.FreePages
		}
	}
	last := r.Samples[len(r.Samples)-1]
	return fmt.Sprintf("samples %d, free %d-%d pages, stolen %d, released %d",
		len(r.Samples), minFree, maxFree, last.Stolen, last.Released)
}
