package trace

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"

	"memhogs/internal/kernel"
	"memhogs/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestRecorderSamples(t *testing.T) {
	sys := kernel.NewSystem(kernel.TestConfig())
	p := sys.NewProcess("app", 64)
	rec := Attach(sys, 10*sim.Millisecond)
	p.Start(false, func(th *kernel.Thread) {
		for vpn := 0; vpn < 32; vpn++ {
			th.Touch(vpn, false)
			th.User(5 * sim.Millisecond)
		}
	})
	sys.Run(500 * sim.Millisecond)
	if len(rec.Samples) < 10 {
		t.Fatalf("samples = %d, want >= 10", len(rec.Samples))
	}
	// Free memory must shrink as the app faults pages in.
	first, last := rec.Samples[0], rec.Samples[len(rec.Samples)-1]
	if last.FreePages >= first.FreePages {
		t.Fatalf("free did not shrink: %d -> %d", first.FreePages, last.FreePages)
	}
	// Resident set of the app must grow.
	if len(last.Resident) == 0 || last.Resident[0] <= first.Resident[0] {
		t.Fatalf("resident did not grow: %v -> %v", first.Resident, last.Resident)
	}
}

func TestRenderAndSummary(t *testing.T) {
	sys := kernel.NewSystem(kernel.TestConfig())
	p := sys.NewProcess("app", 32)
	rec := Attach(sys, 5*sim.Millisecond)
	p.Start(false, func(th *kernel.Thread) {
		for vpn := 0; vpn < 8; vpn++ {
			th.Touch(vpn, false)
		}
	})
	sys.Run(100 * sim.Millisecond)
	out := rec.Render(10)
	if !strings.Contains(out, "free") || !strings.Contains(out, "app") {
		t.Fatalf("render malformed:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines > 12 {
		t.Fatalf("render did not downsample: %d lines", lines)
	}
	if !strings.Contains(rec.Summary(), "samples") {
		t.Fatalf("summary malformed: %s", rec.Summary())
	}
}

func TestStopEndsSampling(t *testing.T) {
	sys := kernel.NewSystem(kernel.TestConfig())
	rec := Attach(sys, sim.Millisecond)
	sys.Run(10 * sim.Millisecond)
	n := len(rec.Samples)
	rec.Stop()
	sys.Run(20 * sim.Millisecond)
	if len(rec.Samples) > n+1 {
		t.Fatalf("samples kept accumulating after Stop: %d -> %d", n, len(rec.Samples))
	}
}

// A run shorter than the sampling interval must still record the
// initial state (the first sample is taken at attach time).
func TestAttachSamplesImmediately(t *testing.T) {
	sys := kernel.NewSystem(kernel.TestConfig())
	sys.NewProcess("app", 16)
	rec := Attach(sys, 100*sim.Millisecond)
	sys.Run(10 * sim.Millisecond) // shorter than the interval
	if len(rec.Samples) == 0 {
		t.Fatal("no samples from a run shorter than the interval")
	}
	if rec.Samples[0].At != 0 {
		t.Fatalf("first sample at %s, want attach time 0", rec.Samples[0].At)
	}
	if rec.Summary() == "no samples" {
		t.Fatal("Summary reports no samples")
	}
}

// The downsampling stride must never skip the final sample: the
// rendered timeline's last row has to agree with Summary()'s end
// state.
func TestRenderIncludesLastSample(t *testing.T) {
	sys := kernel.NewSystem(kernel.TestConfig())
	p := sys.NewProcess("app", 64)
	rec := Attach(sys, sim.Millisecond)
	p.Start(false, func(th *kernel.Thread) {
		for vpn := 0; vpn < 48; vpn++ {
			th.Touch(vpn, false)
			th.User(sim.Millisecond)
		}
	})
	sys.Run(200 * sim.Millisecond)
	// Pick a row budget that makes ceil(len/maxRows) stride past the
	// final sample.
	for maxRows := 3; maxRows <= 13; maxRows++ {
		out := rec.Render(maxRows)
		lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
		lastRow := lines[len(lines)-1]
		last := rec.Samples[len(rec.Samples)-1]
		want := fmt.Sprintf("stolen %6d  released %6d", last.Stolen, last.Released)
		if !strings.Contains(lastRow, want) || !strings.Contains(lastRow, last.At.String()) {
			t.Fatalf("maxRows=%d: last rendered row disagrees with the final sample %s:\n%s",
				maxRows, last.At, out)
		}
	}
}

// Processes created mid-run must not shift the Resident columns of
// earlier samples: Names is keyed by creation order and samples taken
// before a process existed are padded in the rendering.
func TestMidRunProcessCreationKeepsColumnsStable(t *testing.T) {
	sys := kernel.NewSystem(kernel.TestConfig())
	a := sys.NewProcess("alpha", 32)
	rec := Attach(sys, 5*sim.Millisecond)
	a.Start(false, func(th *kernel.Thread) {
		for vpn := 0; vpn < 32; vpn++ {
			th.Touch(vpn, false)
			th.User(2 * sim.Millisecond)
		}
	})
	sys.Sim.After(20*sim.Millisecond, func() {
		b := sys.NewProcess("beta", 16)
		b.Start(false, func(th *kernel.Thread) {
			for vpn := 0; vpn < 16; vpn++ {
				th.Touch(vpn, false)
				th.User(2 * sim.Millisecond)
			}
		})
	})
	sys.Run(200 * sim.Millisecond)

	if len(rec.Names) != 2 || rec.Names[0] != "alpha" || rec.Names[1] != "beta" {
		t.Fatalf("Names = %v, want [alpha beta]", rec.Names)
	}
	sawShort := false
	for _, s := range rec.Samples {
		switch len(s.Resident) {
		case 1:
			sawShort = true
		case 2:
			// After beta existed; fine.
		default:
			t.Fatalf("sample at %s has %d resident columns", s.At, len(s.Resident))
		}
	}
	if !sawShort {
		t.Fatal("no sample taken before the second process was created")
	}
	// Early samples keep their alpha column; rendering pads beta's.
	out := rec.Render(0)
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "alpha") || !strings.Contains(lines[1], "beta") {
		t.Fatalf("first row missing stable columns:\n%s", out)
	}
	if !strings.Contains(lines[1], " -") {
		t.Fatalf("first row should pad the not-yet-created process:\n%s", out)
	}
}

// TestGoldenTimeline locks the rendered timeline's exact bytes for a
// deterministic scenario covering all three fixes (immediate first
// sample, mid-run process creation, last row emitted). Regenerate with
// `go test ./internal/trace -run Golden -update`.
func TestGoldenTimeline(t *testing.T) {
	sys := kernel.NewSystem(kernel.TestConfig())
	rec := Attach(sys, 10*sim.Millisecond) // before any process exists
	a := sys.NewProcess("alpha", 48)
	a.Start(false, func(th *kernel.Thread) {
		for vpn := 0; vpn < 48; vpn++ {
			th.Touch(vpn, false)
			th.User(2 * sim.Millisecond)
		}
	})
	sys.Sim.After(40*sim.Millisecond, func() {
		b := sys.NewProcess("beta", 24)
		b.Start(false, func(th *kernel.Thread) {
			for vpn := 0; vpn < 24; vpn++ {
				th.Touch(vpn, false)
				th.User(3 * sim.Millisecond)
			}
		})
	})
	sys.Run(300 * sim.Millisecond)

	got := rec.Render(7) + rec.Summary() + "\n"
	const path = "testdata/timeline.golden"
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Fatalf("timeline drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestGaugeClamps(t *testing.T) {
	if gauge(5, 10, 10) != "#####....." {
		t.Errorf("gauge(5,10,10) = %q", gauge(5, 10, 10))
	}
	if gauge(100, 10, 4) != "####" {
		t.Error("overflow not clamped")
	}
	if gauge(-1, 10, 4) != "...." {
		t.Error("negative not clamped")
	}
	if gauge(1, 0, 4) == "" {
		t.Error("zero max not handled")
	}
}

// TestNilRecorder pins the one-branch-when-off contract simvet SV004
// enforces statically: a nil *Recorder (tracing off) must be safe to
// stop and render.
func TestNilRecorder(t *testing.T) {
	var r *Recorder
	r.Stop() // must not panic
	if got := r.Render(10); got != "tracing disabled\n" {
		t.Errorf("nil Render = %q", got)
	}
	if got := r.Summary(); got != "no samples" {
		t.Errorf("nil Summary = %q", got)
	}
}
