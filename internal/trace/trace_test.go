package trace

import (
	"strings"
	"testing"

	"memhogs/internal/kernel"
	"memhogs/internal/sim"
)

func TestRecorderSamples(t *testing.T) {
	sys := kernel.NewSystem(kernel.TestConfig())
	p := sys.NewProcess("app", 64)
	rec := Attach(sys, 10*sim.Millisecond)
	p.Start(false, func(th *kernel.Thread) {
		for vpn := 0; vpn < 32; vpn++ {
			th.Touch(vpn, false)
			th.User(5 * sim.Millisecond)
		}
	})
	sys.Run(500 * sim.Millisecond)
	if len(rec.Samples) < 10 {
		t.Fatalf("samples = %d, want >= 10", len(rec.Samples))
	}
	// Free memory must shrink as the app faults pages in.
	first, last := rec.Samples[0], rec.Samples[len(rec.Samples)-1]
	if last.FreePages >= first.FreePages {
		t.Fatalf("free did not shrink: %d -> %d", first.FreePages, last.FreePages)
	}
	// Resident set of the app must grow.
	if len(last.Resident) == 0 || last.Resident[0] <= first.Resident[0] {
		t.Fatalf("resident did not grow: %v -> %v", first.Resident, last.Resident)
	}
}

func TestRenderAndSummary(t *testing.T) {
	sys := kernel.NewSystem(kernel.TestConfig())
	p := sys.NewProcess("app", 32)
	rec := Attach(sys, 5*sim.Millisecond)
	p.Start(false, func(th *kernel.Thread) {
		for vpn := 0; vpn < 8; vpn++ {
			th.Touch(vpn, false)
		}
	})
	sys.Run(100 * sim.Millisecond)
	out := rec.Render(10)
	if !strings.Contains(out, "free") || !strings.Contains(out, "app") {
		t.Fatalf("render malformed:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines > 12 {
		t.Fatalf("render did not downsample: %d lines", lines)
	}
	if !strings.Contains(rec.Summary(), "samples") {
		t.Fatalf("summary malformed: %s", rec.Summary())
	}
}

func TestStopEndsSampling(t *testing.T) {
	sys := kernel.NewSystem(kernel.TestConfig())
	rec := Attach(sys, sim.Millisecond)
	sys.Run(10 * sim.Millisecond)
	n := len(rec.Samples)
	rec.Stop()
	sys.Run(20 * sim.Millisecond)
	if len(rec.Samples) > n+1 {
		t.Fatalf("samples kept accumulating after Stop: %d -> %d", n, len(rec.Samples))
	}
}

func TestGaugeClamps(t *testing.T) {
	if gauge(5, 10, 10) != "#####....." {
		t.Errorf("gauge(5,10,10) = %q", gauge(5, 10, 10))
	}
	if gauge(100, 10, 4) != "####" {
		t.Error("overflow not clamped")
	}
	if gauge(-1, 10, 4) != "...." {
		t.Error("negative not clamped")
	}
	if gauge(1, 0, 4) == "" {
		t.Error("zero max not handled")
	}
}
