// Package vm implements per-process virtual memory: dense page tables,
// the fault paths (soft, rescue, hard), reference-bit emulation in
// software, and page-in/page-out against the striped swap.
//
// The model follows IRIX 6.5 on MIPS as described in the paper:
//
//   - The TLB has no reference bits, so the paging daemon simulates
//     them by invalidating mappings (clearing the Valid bit); a later
//     access takes a cheap *soft fault* that revalidates the page.
//     Figure 8 of the paper counts exactly these faults.
//   - A fault on a page whose old frame is still on the free list is
//     *rescued* without I/O.
//   - Fault handling and the paging daemon contend for a per-address-
//     space memory lock; the lock is dropped during disk I/O.
package vm

import (
	"fmt"
	"math/bits"

	"memhogs/internal/chaos"
	"memhogs/internal/disk"
	"memhogs/internal/events"
	"memhogs/internal/mem"
	"memhogs/internal/sim"
)

// Bucket classifies where a process's time goes. The paper's Figure 7
// bars are built from these: user, system, stall-resources
// (memory+locks+CPU) and stall-I/O.
type Bucket int

// Time buckets.
const (
	BucketUser Bucket = iota
	BucketSystem
	BucketStallMem  // waiting for free physical memory
	BucketStallLock // waiting for memory-system locks
	BucketStallCPU  // waiting for a CPU
	BucketStallIO   // waiting for page I/O
	NumBuckets
)

func (b Bucket) String() string {
	switch b {
	case BucketUser:
		return "user"
	case BucketSystem:
		return "system"
	case BucketStallMem:
		return "stall-mem"
	case BucketStallLock:
		return "stall-lock"
	case BucketStallCPU:
		return "stall-cpu"
	case BucketStallIO:
		return "stall-io"
	default:
		return fmt.Sprintf("bucket(%d)", int(b))
	}
}

// Exec is the execution context a simulated thread supplies to the VM
// layer: it consumes CPU in system mode and attributes stall time.
// The kernel package provides implementations backed by its CPU
// scheduler and per-process time accounting.
type Exec interface {
	// Proc returns the simulated process to block on.
	Proc() *sim.Proc
	// System consumes d of CPU time in system mode (contending for a
	// CPU with everyone else).
	System(d sim.Time)
	// Account attributes d of elapsed stall time to bucket b.
	Account(b Bucket, d sim.Time)
}

// InvalidReason records why a resident page's Valid bit is clear, so
// the resulting soft fault can be attributed (Figure 8 counts
// daemon-caused soft faults).
type InvalidReason int8

// Reasons a mapping can be invalid.
const (
	InvalidNone     InvalidReason = iota // page is valid
	InvalidDaemon                        // paging daemon reference-bit pass
	InvalidRelease                       // pending explicit release request
	InvalidPrefetch                      // prefetched but never referenced
)

// PTE is a page-table entry.
type PTE struct {
	Frame   mem.FrameID // physical frame; survives unmapping for rescue
	Present bool        // page is resident and owned
	Valid   bool        // mapping validated (reference-bit emulation)
	Busy    bool        // page-in in flight
	Why     InvalidReason

	// FarSlot is the page's far-tier slot when it has been demoted
	// (NoFarSlot otherwise). A far-resident page is never Present and
	// holds no frame — each page lives in exactly one tier, an
	// invariant kernel.Audit enforces.
	FarSlot mem.FarSlotID
}

// Outcome classifies a Touch.
type Outcome int8

// Touch outcomes.
const (
	Hit Outcome = iota
	SoftFault
	RescueFault
	HardFault
	FarFault // resolved from the far tier at far-tier latency
)

func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case SoftFault:
		return "soft"
	case RescueFault:
		return "rescue"
	case FarFault:
		return "far"
	default:
		return "hard"
	}
}

// Watcher receives residency-change notifications; the PagingDirected
// policy module uses it to keep the shared page's bitmap current
// (§3.1.1: "All updates to the shared page are handled by the OS").
type Watcher interface {
	// PageIn is called when vpn becomes resident (fault or prefetch).
	PageIn(vpn int)
	// PageOut is called when vpn loses residency (steal or release).
	PageOut(vpn int)
	// Revalidate is called when a soft fault re-validates vpn.
	Revalidate(vpn int)
	// Activity is called on any memory-system activity by the owning
	// process, which is when the OS refreshes the shared page's usage
	// and limit words (§3.1.1: estimates are updated "only when the
	// process experiences some type of memory system activity").
	Activity()
}

// Params are the VM cost parameters (see kernel.Config for the
// platform defaults).
type Params struct {
	SoftFaultTime sim.Time // revalidation fault service (CPU)
	RescueTime    sim.Time // free-list rescue fault service (CPU)
	HardFaultCPU  sim.Time // CPU portion of a fault requiring I/O
	PageoutCPU    sim.Time // CPU to initiate a page writeback
	// Readahead is the swap-in cluster size: a demand fault also
	// starts asynchronous reads for the following pages (IRIX swap
	// klustering). 0 or 1 disables. Readahead pages arrive unvalidated
	// and are dropped when no free memory exists, like prefetches.
	Readahead int

	// NoRescue disables free-list rescues (ablation): a fault on a
	// freed-but-unreallocated page reads it back from swap instead.
	NoRescue bool

	// HardwareRefBits models a TLB with hardware reference bits
	// (the paper's closing question): the paging daemon's
	// reference-bit pass no longer causes software soft faults —
	// revalidation after a daemon invalidation is free and uncounted.
	HardwareRefBits bool

	// FarLatency is the fixed access latency for promoting a page out
	// of the far tier (byte-addressable: no positioning cost). Only
	// used when the address space has a far tier attached.
	FarLatency sim.Time
	// FarCPU is the CPU portion of a far-tier fault or demotion.
	FarCPU sim.Time
}

// Stats are per-address-space VM counters.
type Stats struct {
	Touches          int64
	SoftFaults       int64
	SoftFaultsDaemon int64 // caused by the daemon's invalidation pass
	RescueFaults     int64
	HardFaults       int64 // faults requiring disk I/O
	ReadaheadIns     int64 // pages brought in by swap clustering
	PageIns          int64
	Writebacks       int64
	StolenPages      int64 // taken by the paging daemon
	ReleasedPages    int64 // freed by the releaser
	PeakResident     int64 // high-water mark of the resident set, in pages
	FarFaults        int64 // faults resolved from the far tier (far hits)
	Demotions        int64 // pages moved DRAM -> far
	Promotions       int64 // pages moved far -> DRAM (faults + prefetches)
	PeakFarResident  int64 // high-water mark of the far-tier resident set, in pages
}

// AS is an address space: a dense page table over a fixed number of
// virtual pages, plus the machinery shared with the paging and
// releaser daemons.
type AS struct {
	name string
	id   int

	ptes        []PTE
	Resident    int // resident page count (DRAM only)
	FarResident int // pages currently demoted to the far tier
	MaxRSS      int // trim threshold (frames); default: no limit

	// resBits/valBits are packed bitmaps mirroring the Present and
	// Valid bits of the page table, one bit per vpn, so daemons can
	// scan residency word-at-a-time instead of walking PTE structs.
	// The PTE array stays the source of truth (the audit cross-checks
	// bitmap against PTEs); every Present/Valid mutation updates both.
	resBits []uint64
	valBits []uint64

	// Memlock is the per-AS memory-system lock contended by fault
	// handling, the paging daemon and the releaser.
	Memlock *sim.Lock

	phys   *mem.Phys
	disks  *disk.Array
	params Params

	swapBase int64 // global swap page offset for striping

	ioWait  *sim.Waitq // waiters on in-flight page-ins
	watcher Watcher

	// inflight registers every page-in operation (demand fault,
	// readahead, prefetch) for the whole time its PTE is Busy —
	// including the wait for a free frame before the disk read is
	// even submitted. The audit uses it to prove that a Busy bit
	// always corresponds to a real outstanding page-in.
	inflight map[int]bool

	// OverLimit, if non-nil, is invoked whenever the resident set
	// grows beyond MaxRSS; the kernel wires it to the paging daemon's
	// kick so maxrss trimming happens promptly.
	OverLimit func()

	// Events is the flight recorder; nil (the default) disables
	// recording at near-zero cost.
	Events *events.Recorder

	// Far is the optional far-memory tier (nil = no tier; demotion
	// requests fail and every fault path behaves exactly as before).
	// The kernel wires it when the configuration enables the tier.
	Far *mem.FarTier

	// Chaos is the fault injector; nil injects nothing.
	Chaos *chaos.Injector

	Stats Stats
}

// NewAS creates an address space with npages virtual pages backed by
// swap starting at swapBase.
func NewAS(name string, id int, npages int, swapBase int64, phys *mem.Phys, disks *disk.Array, params Params) *AS {
	as := &AS{
		name:     name,
		id:       id,
		ptes:     make([]PTE, npages),
		resBits:  make([]uint64, (npages+63)/64),
		valBits:  make([]uint64, (npages+63)/64),
		MaxRSS:   phys.NumFrames() + 1, // effectively unlimited
		Memlock:  sim.NewLock(name + ".memlock"),
		phys:     phys,
		disks:    disks,
		params:   params,
		swapBase: swapBase,
		ioWait:   sim.NewWaitq(name + ".iowait"),
		inflight: map[int]bool{},
	}
	for i := range as.ptes {
		as.ptes[i].Frame = mem.NoFrame
		as.ptes[i].FarSlot = mem.NoFarSlot
	}
	return as
}

// OwnerName implements mem.Owner.
func (as *AS) OwnerName() string { return as.name }

// OwnerID implements mem.Owner.
func (as *AS) OwnerID() int { return as.id }

// FrameInvalidated implements mem.Owner: the free-listed frame that
// still held vpn's data was reallocated, so the page can no longer be
// rescued.
func (as *AS) FrameInvalidated(vpn int) {
	as.ptes[vpn].Frame = mem.NoFrame
}

// SetWatcher installs the residency watcher (at most one; the
// PagingDirected PM).
func (as *AS) SetWatcher(w Watcher) { as.watcher = w }

// NumPages returns the size of the page table.
func (as *AS) NumPages() int { return len(as.ptes) }

// PTE returns the page-table entry for vpn (for daemons and tests).
func (as *AS) PTE(vpn int) *PTE { return &as.ptes[vpn] }

// setPresent/setValid mirror the named PTE bit into the packed bitmap
// alongside the field write. All Present/Valid mutations go through
// these so bitmap and page table cannot drift (the audit checks).
//
//simvet:hot
func (as *AS) setPresent(pte *PTE, vpn int, v bool) {
	pte.Present = v
	if v {
		as.resBits[vpn>>6] |= 1 << (uint(vpn) & 63)
	} else {
		as.resBits[vpn>>6] &^= 1 << (uint(vpn) & 63)
	}
}

//simvet:hot
func (as *AS) setValid(pte *PTE, vpn int, v bool) {
	pte.Valid = v
	if v {
		as.valBits[vpn>>6] |= 1 << (uint(vpn) & 63)
	} else {
		as.valBits[vpn>>6] &^= 1 << (uint(vpn) & 63)
	}
}

// ResidentBit reports vpn's bit in the packed residency bitmap (for
// the audit's bitmap-vs-PTE cross-check).
func (as *AS) ResidentBit(vpn int) bool {
	return as.resBits[vpn>>6]&(1<<(uint(vpn)&63)) != 0
}

// ValidBit reports vpn's bit in the packed validity bitmap.
func (as *AS) ValidBit(vpn int) bool {
	return as.valBits[vpn>>6]&(1<<(uint(vpn)&63)) != 0
}

// NextResident returns the first resident vpn at or after from, or -1
// when none remains, scanning the packed bitmap word-at-a-time.
//
//simvet:hot
func (as *AS) NextResident(from int) int {
	if from >= len(as.ptes) {
		return -1
	}
	w := from >> 6
	if word := as.resBits[w] &^ (1<<(uint(from)&63) - 1); word != 0 {
		return w<<6 + bits.TrailingZeros64(word)
	}
	for i := w + 1; i < len(as.resBits); i++ {
		if as.resBits[i] != 0 {
			return i<<6 + bits.TrailingZeros64(as.resBits[i])
		}
	}
	return -1
}

// beginPageIn/endPageIn bracket a page-in operation; they are always
// paired with setting/clearing the PTE's Busy bit.
func (as *AS) beginPageIn(vpn int) { as.inflight[vpn] = true }
func (as *AS) endPageIn(vpn int)   { delete(as.inflight, vpn) }

// PageInInFlight reports whether a page-in operation (fault,
// readahead or prefetch) is outstanding for vpn.
func (as *AS) PageInInFlight(vpn int) bool { return as.inflight[vpn] }

// InFlightPageIns returns the number of outstanding page-in
// operations.
func (as *AS) InFlightPageIns() int { return len(as.inflight) }

// ResidentValid reports whether vpn is resident with a valid mapping —
// the no-cost fast path.
func (as *AS) ResidentValid(vpn int) bool {
	pte := &as.ptes[vpn]
	return pte.Present && pte.Valid
}

// IsResident reports whether vpn is resident (the PM bitmap state,
// modulo pending release requests which clear bits early).
func (as *AS) IsResident(vpn int) bool { return as.ptes[vpn].Present }

func (as *AS) swapPage(vpn int) int64 { return as.swapBase + int64(vpn) }

// grew bumps the resident count and kicks the trimmer when the
// process exceeds its maxrss.
func (as *AS) grew() {
	as.Resident++
	if int64(as.Resident) > as.Stats.PeakResident {
		as.Stats.PeakResident = int64(as.Resident)
	}
	if as.Resident > as.MaxRSS && as.OverLimit != nil {
		as.OverLimit()
	}
}

func (as *AS) notifyIn(vpn int) {
	if as.watcher != nil {
		as.watcher.PageIn(vpn)
	}
}

func (as *AS) notifyOut(vpn int) {
	if as.watcher != nil {
		as.watcher.PageOut(vpn)
	}
}

func (as *AS) notifyActivity() {
	if as.watcher != nil {
		as.watcher.Activity()
	}
}

// Touch references vpn, taking whatever fault is needed. write marks
// the page dirty. The fast path (resident and valid) costs nothing and
// allocates nothing.
//simvet:hot
func (as *AS) Touch(x Exec, vpn int, write bool) Outcome {
	as.Stats.Touches++
	pte := &as.ptes[vpn]
	if pte.Present && pte.Valid {
		if write {
			as.phys.Frame(pte.Frame).Dirty = true
		}
		return Hit
	}
	return as.fault(x, vpn, write)
}

// fault is the slow path of Touch.
func (as *AS) fault(x Exec, vpn int, write bool) Outcome {
	p := x.Proc()
	pte := &as.ptes[vpn]
	outcome := Hit

	// Wait out any in-flight page-in first (e.g. our own prefetch or a
	// readahead): the process is stalled on I/O that is already
	// happening. The page can become busy *again* while we queue for
	// the memory lock — the lock's previous holder may have started a
	// readahead for it — so re-check after acquiring and go back to
	// waiting if so.
	for {
		for pte.Busy {
			start := p.Now()
			as.ioWait.Wait(p)
			x.Account(BucketStallIO, p.Now()-start)
		}
		wait := as.Memlock.Acquire(p)
		x.Account(BucketStallLock, wait)
		if !pte.Busy {
			break
		}
		as.Memlock.Release(p)
	}

	switch {
	case pte.Present && pte.Valid:
		// Resolved while we waited for the lock.
	case pte.Present:
		if as.params.HardwareRefBits && pte.Why == InvalidDaemon {
			// With hardware reference bits the daemon's scan just
			// cleared a bit the hardware sets again for free: no
			// software fault happens.
			as.setValid(pte, vpn, true)
			pte.Why = InvalidNone
			if as.watcher != nil {
				as.watcher.Revalidate(vpn)
			}
			break
		}
		// Soft fault: revalidate the mapping.
		outcome = SoftFault
		as.Stats.SoftFaults++
		var daemonCaused int64
		if pte.Why == InvalidDaemon {
			as.Stats.SoftFaultsDaemon++
			daemonCaused = 1
		}
		as.Events.Emit(events.FaultSoft, as.name, "", vpn, daemonCaused, 0)
		x.System(as.params.SoftFaultTime)
		as.setValid(pte, vpn, true)
		pte.Why = InvalidNone
		if as.watcher != nil {
			as.watcher.Revalidate(vpn)
		}
	case pte.FarSlot != mem.NoFarSlot:
		// Far-tier hit: promote the page back to DRAM at the tier's
		// fixed latency instead of paying a disk fault. The slot is
		// freed up front — identity travels with the in-flight page-in
		// (Busy bit), so the page is never in two tiers at once.
		outcome = FarFault
		as.Stats.FarFaults++
		as.Events.Emit(events.FaultFar, as.name, "", vpn, 0, 0)
		x.System(as.params.FarCPU)
		slot := as.Far.Slot(pte.FarSlot)
		wasDirty := slot.Dirty
		as.Far.Free(slot)
		pte.FarSlot = mem.NoFarSlot
		as.FarResident-- // with the slot gone, before any sleep: audits must see counter == slot PTEs
		pte.Busy = true
		as.beginPageIn(vpn)
		as.Memlock.Release(p)

		frame, memWait := as.phys.Alloc(p, as, vpn)
		x.Account(BucketStallMem, memWait)

		lat := as.params.FarLatency
		if extra := as.Chaos.FireDelay(chaos.FarSlow, as.name); extra > 0 {
			lat += extra
		}
		start := p.Now()
		p.Sleep(lat)
		x.Account(BucketStallIO, p.Now()-start)

		relock := as.Memlock.Acquire(p)
		x.Account(BucketStallLock, relock)
		pte.Frame = frame.ID
		frame.Dirty = wasDirty
		as.setPresent(pte, vpn, true)
		as.setValid(pte, vpn, true)
		pte.Busy = false
		as.endPageIn(vpn)
		pte.Why = InvalidNone
		as.Stats.Promotions++
		var d int64
		if wasDirty {
			d = 1
		}
		as.Events.Emit(events.TierPromote, as.name, "", vpn, 0, d)
		as.grew()
		as.notifyIn(vpn)
		as.ioWait.WakeAll()
	case pte.Frame != mem.NoFrame && !as.params.NoRescue:
		// The old frame is still on the free list: rescue it.
		outcome = RescueFault
		as.Stats.RescueFaults++
		as.Events.Emit(events.FaultRescue, as.name, "", vpn, 0, 0)
		x.System(as.params.RescueTime)
		if pte.Frame == mem.NoFrame {
			// Charging the rescue time descheduled us, and another
			// process's Alloc took the frame off the free list and
			// invalidated the mapping (FrameInvalidated does not take
			// the memory lock). The rescue has failed; retry the
			// fault from scratch — it will take the hard-fault path.
			as.Memlock.Release(p)
			as.notifyActivity()
			return as.fault(x, vpn, write)
		}
		as.phys.Rescue(as.phys.Frame(pte.Frame))
		as.setPresent(pte, vpn, true)
		as.setValid(pte, vpn, true)
		pte.Why = InvalidNone
		as.grew()
		as.notifyIn(vpn)
	default:
		// Hard fault: allocate a frame and read from swap.
		if pte.Frame != mem.NoFrame {
			// NoRescue ablation: sever the old free-listed frame's
			// identity so its eventual reallocation cannot clobber
			// the new mapping.
			as.phys.DropIdentity(as.phys.Frame(pte.Frame))
			pte.Frame = mem.NoFrame
		}
		outcome = HardFault
		as.Stats.HardFaults++
		as.Events.Emit(events.FaultHard, as.name, "", vpn, 0, 0)
		x.System(as.params.HardFaultCPU)
		pte.Busy = true
		as.beginPageIn(vpn)
		// Swap-in clustering: start asynchronous reads for the
		// following pages while we still hold the lock.
		for k := 1; k < as.params.Readahead; k++ {
			as.readahead(vpn + k)
		}
		as.Memlock.Release(p)

		frame, memWait := as.phys.Alloc(p, as, vpn)
		x.Account(BucketStallMem, memWait)

		start := p.Now()
		done := false
		as.disks.Submit(as.swapPage(vpn), &disk.Request{
			Op: disk.Read,
			Done: func() {
				done = true
				p.Wake()
			},
		})
		for !done {
			p.Park()
		}
		x.Account(BucketStallIO, p.Now()-start)
		as.Stats.PageIns++
		as.Events.Emit(events.PageIn, as.name, "", vpn, 0, 0)

		relock := as.Memlock.Acquire(p)
		x.Account(BucketStallLock, relock)
		pte.Frame = frame.ID
		as.setPresent(pte, vpn, true)
		as.setValid(pte, vpn, true)
		pte.Busy = false
		as.endPageIn(vpn)
		pte.Why = InvalidNone
		as.grew()
		as.notifyIn(vpn)
		as.ioWait.WakeAll()
	}

	if write && pte.Present {
		as.phys.Frame(pte.Frame).Dirty = true
	}
	as.Memlock.Release(p)
	as.notifyActivity()
	return outcome
}

// readahead starts an asynchronous swap-in of vpn if it is absent,
// idle, unrescuable, and a free frame is available. The page arrives
// resident but unvalidated; completion runs in the event loop (no
// blocking), which is safe in the single-threaded simulation.
func (as *AS) readahead(vpn int) {
	if vpn < 0 || vpn >= len(as.ptes) {
		return
	}
	pte := &as.ptes[vpn]
	if pte.Present || pte.Busy || pte.Frame != mem.NoFrame || pte.FarSlot != mem.NoFarSlot {
		return
	}
	frame, ok := as.phys.TryAlloc(as, vpn)
	if !ok {
		return
	}
	pte.Busy = true
	as.beginPageIn(vpn)
	as.Stats.ReadaheadIns++
	as.disks.Submit(as.swapPage(vpn), &disk.Request{
		Op: disk.Read,
		Done: func() {
			pte.Frame = frame.ID
			as.setPresent(pte, vpn, true)
			as.setValid(pte, vpn, false)
			pte.Why = InvalidPrefetch
			pte.Busy = false
			as.endPageIn(vpn)
			as.grew()
			as.Stats.PageIns++
			as.Events.Emit(events.PageIn, as.name, "", vpn, 1, 0)
			as.notifyIn(vpn)
			as.ioWait.WakeAll()
		},
	})
}

// PrefetchResult classifies what a prefetch request did.
type PrefetchResult int8

// Prefetch outcomes.
const (
	PrefetchAlreadyIn PrefetchResult = iota
	PrefetchDiscarded                // no free memory (§3.1.2)
	PrefetchRescued
	PrefetchRead
	PrefetchPromoted // promoted from the far tier at far-tier latency
)

// Prefetch brings vpn into memory on behalf of the owning process,
// performing "actions similar to those that occur for a page fault,
// with two notable exceptions": it is discarded immediately when no
// free memory exists, and the page is left *invalid* (no TLB entry) so
// the first real reference revalidates it (§3.1.2). The caller is a
// prefetch worker thread, whose stall time is deliberately not charged
// to the application.
func (as *AS) Prefetch(x Exec, vpn int) PrefetchResult {
	p := x.Proc()
	pte := &as.ptes[vpn]
	if pte.Busy || (pte.Present) {
		return PrefetchAlreadyIn
	}

	wait := as.Memlock.Acquire(p)
	x.Account(BucketStallLock, wait)
	defer as.notifyActivity()

	if pte.Busy || pte.Present {
		as.Memlock.Release(p)
		return PrefetchAlreadyIn
	}
	if pte.FarSlot != mem.NoFarSlot {
		// Demoted page: promote it out of the far tier instead of
		// reading the stale swap copy. Like every prefetch, this is
		// discarded rather than stealing memory when DRAM is full.
		frame, ok := as.phys.TryAlloc(as, vpn)
		if !ok {
			as.Memlock.Release(p)
			return PrefetchDiscarded
		}
		slot := as.Far.Slot(pte.FarSlot)
		wasDirty := slot.Dirty
		as.Far.Free(slot)
		pte.FarSlot = mem.NoFarSlot
		as.FarResident-- // with the slot gone, before any sleep: audits must see counter == slot PTEs
		pte.Busy = true
		as.beginPageIn(vpn)
		x.System(as.params.FarCPU)
		as.Memlock.Release(p)

		lat := as.params.FarLatency
		if extra := as.Chaos.FireDelay(chaos.FarSlow, as.name); extra > 0 {
			lat += extra
		}
		start := p.Now()
		p.Sleep(lat)
		x.Account(BucketStallIO, p.Now()-start)

		wait = as.Memlock.Acquire(p)
		x.Account(BucketStallLock, wait)
		pte.Frame = frame.ID
		frame.Dirty = wasDirty
		as.setPresent(pte, vpn, true)
		as.setValid(pte, vpn, false) // not validated; no TLB entry
		pte.Why = InvalidPrefetch
		pte.Busy = false
		as.endPageIn(vpn)
		as.Stats.Promotions++
		var d int64
		if wasDirty {
			d = 1
		}
		as.Events.Emit(events.TierPromote, as.name, "", vpn, 1, d)
		as.grew()
		as.notifyIn(vpn)
		as.ioWait.WakeAll()
		as.Memlock.Release(p)
		return PrefetchPromoted
	}
	if pte.Frame != mem.NoFrame && as.params.NoRescue {
		as.phys.DropIdentity(as.phys.Frame(pte.Frame))
		pte.Frame = mem.NoFrame
	}
	if pte.Frame != mem.NoFrame {
		// Rescue from the free list; cheap, no I/O.
		x.System(as.params.RescueTime)
		as.phys.Rescue(as.phys.Frame(pte.Frame))
		as.setPresent(pte, vpn, true)
		as.setValid(pte, vpn, false)
		pte.Why = InvalidPrefetch
		as.grew()
		as.Stats.RescueFaults++
		as.Events.Emit(events.FaultRescue, as.name, "", vpn, 1, 0)
		as.notifyIn(vpn)
		as.Memlock.Release(p)
		return PrefetchRescued
	}

	// "If there is no free memory, the request is discarded
	// immediately. This feature prevents memory from being stolen to
	// satisfy prefetches when the demand for memory is high."
	frame, ok := as.phys.TryAlloc(as, vpn)
	if !ok {
		as.Memlock.Release(p)
		return PrefetchDiscarded
	}

	// Mark the page in flight before anything can block (the System
	// charge yields the CPU): the allocated frame must always be
	// traceable through the Busy bit.
	pte.Busy = true
	as.beginPageIn(vpn)
	x.System(as.params.HardFaultCPU)
	// "performs actions similar to those that occur for a page fault":
	// that includes swap-in clustering.
	for k := 1; k < as.params.Readahead; k++ {
		as.readahead(vpn + k)
	}
	as.Memlock.Release(p)

	start := p.Now()
	done := false
	as.disks.Submit(as.swapPage(vpn), &disk.Request{
		Op: disk.Read,
		Done: func() {
			done = true
			p.Wake()
		},
	})
	for !done {
		p.Park()
	}
	x.Account(BucketStallIO, p.Now()-start)
	as.Stats.PageIns++
	as.Events.Emit(events.PageIn, as.name, "", vpn, 2, 0)

	wait = as.Memlock.Acquire(p)
	x.Account(BucketStallLock, wait)
	pte.Frame = frame.ID
	as.setPresent(pte, vpn, true)
	as.setValid(pte, vpn, false) // not validated; no TLB entry
	pte.Why = InvalidPrefetch
	pte.Busy = false
	as.endPageIn(vpn)
	as.grew()
	as.notifyIn(vpn)
	as.ioWait.WakeAll()
	as.Memlock.Release(p)
	return PrefetchRead
}

// InvalidateForRelease clears the mapping validity for a pending
// release request so that a subsequent real reference is observable
// (the releaser skips pages referenced after the request). Called by
// the PM with the request, before queueing to the releaser. It does
// not free anything.
//simvet:hot
func (as *AS) InvalidateForRelease(vpn int) {
	pte := &as.ptes[vpn]
	if pte.Present && pte.Valid {
		as.setValid(pte, vpn, false)
		pte.Why = InvalidRelease
	}
}

// TryReclaim is used by the releaser daemon: it frees vpn's frame if
// the page is still resident and has not been referenced (validated)
// since the release request. The caller must hold Memlock. It returns
// (freed, needWriteback): when needWriteback is true the caller must
// write the returned swap page to disk before the free is final (we
// model the writeback before freeing, as the releaser "performs all
// actions needed to free the pages, including writing back dirty
// pages").
func (as *AS) TryReclaim(vpn int, kind mem.FreeKind) (freed bool, dirty bool) {
	pte := &as.ptes[vpn]
	if !pte.Present || pte.Busy {
		return false, false
	}
	if pte.Valid {
		// Referenced again since the request; still in use.
		return false, false
	}
	frame := as.phys.Frame(pte.Frame)
	dirty = frame.Dirty
	as.setPresent(pte, vpn, false)
	as.setValid(pte, vpn, false)
	pte.Why = InvalidNone
	as.Resident--
	// Identity stays in pte.Frame and the frame itself, enabling
	// rescue until reallocation.
	frame.Dirty = false
	as.phys.Free(frame, kind)
	if kind == mem.FreedDaemon {
		as.Stats.StolenPages++
	} else {
		as.Stats.ReleasedPages++
	}
	as.notifyOut(vpn)
	return true, dirty
}

// TryDemote moves vpn's page from DRAM to the far tier, used by the
// releaser when a release hint carries enough reuse priority that the
// page is worth keeping closer than swap. Eligibility is exactly
// TryReclaim's (resident, idle, not referenced since the request); on
// top of that the far tier must have a free slot — a full tier returns
// false and the caller falls back to swap. The DRAM frame's identity
// is dropped before it is freed so the page is never simultaneously
// far-resident and rescuable. The page keeps its contents (the tier is
// byte-addressable), so a dirty page needs no swap writeback. The
// caller must hold Memlock.
func (as *AS) TryDemote(vpn int) (demoted bool, dirty bool) {
	if as.Far == nil {
		return false, false
	}
	pte := &as.ptes[vpn]
	if !pte.Present || pte.Busy || pte.Valid {
		return false, false
	}
	slot, ok := as.Far.TryAlloc(as.phys.HomeOf(as.id), as, vpn)
	if !ok {
		return false, false
	}
	frame := as.phys.Frame(pte.Frame)
	dirty = frame.Dirty
	slot.Dirty = dirty
	as.phys.DropIdentity(frame)
	as.phys.Free(frame, mem.FreedRelease)
	pte.Frame = mem.NoFrame
	as.setPresent(pte, vpn, false)
	as.setValid(pte, vpn, false)
	pte.Why = InvalidNone
	pte.FarSlot = slot.ID
	as.Resident--
	as.FarResident++
	as.Stats.Demotions++
	if int64(as.FarResident) > as.Stats.PeakFarResident {
		as.Stats.PeakFarResident = int64(as.FarResident)
	}
	as.notifyOut(vpn)
	return true, dirty
}

// ClearValid clears the Valid bit with the given reason (the paging
// daemon's reference-bit emulation pass). Caller holds Memlock.
//simvet:hot
func (as *AS) ClearValid(vpn int, why InvalidReason) bool {
	pte := &as.ptes[vpn]
	if pte.Present && pte.Valid && !pte.Busy {
		as.setValid(pte, vpn, false)
		pte.Why = why
		return true
	}
	return false
}

// MarkClockCandidate re-attributes an already-invalid mapping to the
// paging daemon's clock, giving pages that are invalid for other
// reasons (e.g. prefetched but not yet referenced) one full clock pass
// of grace before they become steal candidates. Caller holds Memlock.
//simvet:hot
func (as *AS) MarkClockCandidate(vpn int) {
	pte := &as.ptes[vpn]
	if pte.Present && !pte.Valid && !pte.Busy {
		pte.Why = InvalidDaemon
	}
}

// WritebackSwapPage returns the striped swap page number for vpn, for
// daemons issuing writebacks.
func (as *AS) WritebackSwapPage(vpn int) int64 { return as.swapPage(vpn) }

// Disks exposes the disk array (for daemons sharing the AS's backing
// store).
func (as *AS) Disks() *disk.Array { return as.disks }

// Phys exposes the physical pool.
func (as *AS) Phys() *mem.Phys { return as.phys }
